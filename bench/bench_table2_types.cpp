//===- bench_table2_types.cpp - Reproduces Table 2 (bottom) ----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Table 2 (bottom): full-type prediction for Java expressions. Ground
/// truth comes from the MiniJava type checker (the stand-in for the
/// paper's global type-inference oracle); the naive baseline predicts
/// java.lang.String for every expression (§5.3.3).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  Corpus C = benchCorpus(Language::Java, 72);
  CrfExperimentOptions Options = tunedOptions(Language::Java,
                                              Task::FullTypes);
  ExperimentResult Types = runCrfTypeExperiment(C, Options);
  ExperimentResult Naive = runStringTypeBaseline(C, 0.25, BenchSeed);

  TablePrinter Table("Table 2 (bottom): full type prediction, Java");
  Table.setHeader({"Language", "Naive baseline (always String)",
                   "AST paths (this work)", "Params (len/width)",
                   "Typed expressions"});
  Table.addRow({"Java", TablePrinter::percent(Naive.Accuracy),
                TablePrinter::percent(Types.Accuracy),
                paramsText(Options.Extraction),
                std::to_string(Types.Predictions)});
  Table.print(std::cout);
  std::cout << "\nPaper's values: naive 24.1% vs AST paths 69.1% at "
               "params 4/1.\n";
  writeBenchSidecar("bench_table2_types");
  return 0;
}
