//===- bench_parallel.cpp - Serial vs sharded pipeline speedup --------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Times the sharded pipeline stages (corpus parse, path-context
/// extraction) at one thread and at the pool's worker count, verifies the
/// results are byte-identical, and reports the speedup. The speedup
/// gauges land in the metrics sidecar so perf PRs can diff them; the
/// identity checks make this bench double as a determinism smoke test.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <numeric>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main() {
  const Language Lang = Language::JavaScript;
  // The acceptance bar is measured at 4 threads; a larger machine (or an
  // explicit PIGEON_THREADS / --threads override) may use more.
  const size_t Threads = std::max<size_t>(parallel::defaultThreads(), 4);

  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, bench::BenchSeed);
  Spec.NumProjects = 64;
  std::vector<datagen::SourceFile> Sources;
  {
    telemetry::TraceScope Phase("datagen");
    Sources = datagen::generateCorpus(Spec);
  }

  // Parse: serial baseline, then sharded.
  double T0 = now();
  Corpus Serial = parseCorpus(Sources, Lang, /*Threads=*/1);
  double SerialParse = now() - T0;
  T0 = now();
  Corpus Sharded = parseCorpus(Sources, Lang, Threads);
  double ParallelParse = now() - T0;

  bool ParseIdentical =
      Serial.Files.size() == Sharded.Files.size() &&
      Serial.SourceBytes == Sharded.SourceBytes &&
      Serial.Interner->size() == Sharded.Interner->size();
  for (size_t F = 0; ParseIdentical && F < Serial.Files.size(); ++F) {
    const ast::Tree &A = Serial.Files[F].Tree;
    const ast::Tree &B = Sharded.Files[F].Tree;
    ParseIdentical = A.size() == B.size();
    for (ast::NodeId N = 0; ParseIdentical && N < A.size(); ++N)
      ParseIdentical = A.node(N).Kind.index() == B.node(N).Kind.index() &&
                       A.node(N).Value.index() == B.node(N).Value.index();
  }

  // Extract: same corpus, serial vs sharded tables.
  CrfExperimentOptions Options = bench::tunedOptions(Lang, Task::VariableNames);
  std::vector<size_t> Indices(Serial.Files.size());
  std::iota(Indices.begin(), Indices.end(), size_t(0));

  Options.Threads = 1;
  paths::PathTable SerialTable;
  T0 = now();
  auto SerialCtx = extractCorpusContexts(Serial, Indices, Options, SerialTable);
  double SerialExtract = now() - T0;

  Options.Threads = Threads;
  paths::PathTable ShardedTable;
  T0 = now();
  auto ShardedCtx =
      extractCorpusContexts(Serial, Indices, Options, ShardedTable);
  double ParallelExtract = now() - T0;

  bool ExtractIdentical = SerialTable.size() == ShardedTable.size() &&
                          SerialCtx.size() == ShardedCtx.size();
  for (size_t F = 0; ExtractIdentical && F < SerialCtx.size(); ++F) {
    ExtractIdentical =
        SerialCtx[F].Contexts.size() == ShardedCtx[F].Contexts.size();
    for (size_t I = 0; ExtractIdentical && I < SerialCtx[F].Contexts.size();
         ++I)
      ExtractIdentical =
          SerialCtx[F].Contexts[I].Path == ShardedCtx[F].Contexts[I].Path;
  }

  double ParseSpeedup = ParallelParse > 0 ? SerialParse / ParallelParse : 0;
  double ExtractSpeedup =
      ParallelExtract > 0 ? SerialExtract / ParallelExtract : 0;

  TablePrinter Out("sharded pipeline: serial vs " +
                   std::to_string(Threads) + " threads (" +
                   std::to_string(Serial.Files.size()) + " files)");
  Out.setHeader({"Stage", "Serial (s)", "Parallel (s)", "Speedup",
                 "Identical"});
  char Buffer[64];
  auto Fmt = [&](double X) {
    std::snprintf(Buffer, sizeof(Buffer), "%.3f", X);
    return std::string(Buffer);
  };
  Out.addRow({"parse", Fmt(SerialParse), Fmt(ParallelParse),
              Fmt(ParseSpeedup) + "x", ParseIdentical ? "yes" : "NO"});
  Out.addRow({"extract", Fmt(SerialExtract), Fmt(ParallelExtract),
              Fmt(ExtractSpeedup) + "x", ExtractIdentical ? "yes" : "NO"});
  Out.print(std::cout);

  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("parallel.bench.threads").set(static_cast<double>(Threads));
  Reg.gauge("parallel.parse.speedup").set(ParseSpeedup);
  Reg.gauge("parallel.extract.speedup").set(ExtractSpeedup);
  bench::writeBenchSidecar("bench_parallel");

  if (!ParseIdentical || !ExtractIdentical) {
    std::fprintf(stderr,
                 "error: sharded results differ from the serial baseline\n");
    return 1;
  }
  return 0;
}
