//===- bench_parallel.cpp - Serial vs sharded pipeline speedup --------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Times the sharded pipeline stages (corpus parse, path-context
/// extraction) at one thread and at the pool's worker count, verifies the
/// results are byte-identical, and reports the speedup. The speedup
/// gauges land in the metrics sidecar — together with the
/// `parallel.bench.cores` gauge — so bench_report's speedup floor and
/// trajectory diff can gate them; the identity checks make this bench
/// double as a determinism smoke test.
///
/// PIGEON_BENCH_MIN_PARSE_SPEEDUP / PIGEON_BENCH_MIN_EXTRACT_SPEEDUP set
/// hard per-stage floors the bench itself fails on (CI sets them on
/// multi-core runners). On a single-core machine the floors are skipped:
/// there is no parallel speedup to measure, only scheduling overhead.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <numeric>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Floor from the environment; 0 (no variable / unparsable) disables it.
double envFloor(const char *Name) {
  const char *V = std::getenv(Name);
  return V && *V ? std::atof(V) : 0.0;
}

} // namespace

int main() {
  const Language Lang = Language::JavaScript;
  // The acceptance bar is measured at 4 threads; a larger machine (or an
  // explicit PIGEON_THREADS / --threads override) may use more.
  const size_t Threads = std::max<size_t>(parallel::defaultThreads(), 4);
  const size_t Cores = parallel::availableConcurrency();

  // Thousands of files: enough work per chunk that the measured speedup
  // reflects the pipeline, not pool startup or a 100ms corpus.
  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, bench::BenchSeed);
  Spec.NumProjects = 256;
  std::vector<datagen::SourceFile> Sources;
  {
    telemetry::TraceScope Phase("datagen");
    Sources = datagen::generateCorpus(Spec);
  }

  // Parse: serial baseline vs sharded, best of a few alternating timed
  // repetitions after an untimed warm-up. Without the warm-up the arm
  // that runs first pays the page-cache and allocator cold costs alone,
  // which once inflated the "speedup" of whichever arm ran second.
  {
    Corpus Warmup = parseCorpus(Sources, Lang, /*Threads=*/1);
  }
  constexpr int Reps = 2;
  double SerialParse = 1e30, ParallelParse = 1e30;
  Corpus Serial, Sharded;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    double T0 = now();
    Corpus S = parseCorpus(Sources, Lang, /*Threads=*/1);
    SerialParse = std::min(SerialParse, now() - T0);
    Serial = std::move(S);
    T0 = now();
    Corpus P = parseCorpus(Sources, Lang, Threads);
    ParallelParse = std::min(ParallelParse, now() - T0);
    Sharded = std::move(P);
  }

  bool ParseIdentical =
      Serial.Files.size() == Sharded.Files.size() &&
      Serial.SourceBytes == Sharded.SourceBytes &&
      Serial.Interner->size() == Sharded.Interner->size();
  for (size_t F = 0; ParseIdentical && F < Serial.Files.size(); ++F) {
    const ast::Tree &A = Serial.Files[F].Tree;
    const ast::Tree &B = Sharded.Files[F].Tree;
    ParseIdentical = A.size() == B.size();
    for (ast::NodeId N = 0; ParseIdentical && N < A.size(); ++N)
      ParseIdentical = A.node(N).Kind.index() == B.node(N).Kind.index() &&
                       A.node(N).Value.index() == B.node(N).Value.index();
  }

  // Extract: same corpus, serial vs sharded tables.
  CrfExperimentOptions Options = bench::tunedOptions(Lang, Task::VariableNames);
  std::vector<size_t> Indices(Serial.Files.size());
  std::iota(Indices.begin(), Indices.end(), size_t(0));

  double SerialExtract = 1e30, ParallelExtract = 1e30;
  paths::PathTable SerialTable, ShardedTable;
  std::vector<core::FileContexts> SerialCtx, ShardedCtx;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    Options.Threads = 1;
    paths::PathTable ST;
    double T0 = now();
    auto SC = extractCorpusContexts(Serial, Indices, Options, ST);
    SerialExtract = std::min(SerialExtract, now() - T0);
    SerialTable = std::move(ST);
    SerialCtx = std::move(SC);

    Options.Threads = Threads;
    paths::PathTable PT;
    T0 = now();
    auto PC = extractCorpusContexts(Serial, Indices, Options, PT);
    ParallelExtract = std::min(ParallelExtract, now() - T0);
    ShardedTable = std::move(PT);
    ShardedCtx = std::move(PC);
  }

  bool ExtractIdentical = SerialTable.size() == ShardedTable.size() &&
                          SerialCtx.size() == ShardedCtx.size();
  for (size_t F = 0; ExtractIdentical && F < SerialCtx.size(); ++F) {
    ExtractIdentical =
        SerialCtx[F].Contexts.size() == ShardedCtx[F].Contexts.size();
    for (size_t I = 0; ExtractIdentical && I < SerialCtx[F].Contexts.size();
         ++I)
      ExtractIdentical =
          SerialCtx[F].Contexts[I].Path == ShardedCtx[F].Contexts[I].Path;
  }

  double ParseSpeedup = ParallelParse > 0 ? SerialParse / ParallelParse : 0;
  double ExtractSpeedup =
      ParallelExtract > 0 ? SerialExtract / ParallelExtract : 0;

  TablePrinter Out("sharded pipeline: serial vs " +
                   std::to_string(Threads) + " threads (" +
                   std::to_string(Serial.Files.size()) + " files)");
  Out.setHeader({"Stage", "Serial (s)", "Parallel (s)", "Speedup",
                 "Identical"});
  char Buffer[64];
  auto Fmt = [&](double X) {
    std::snprintf(Buffer, sizeof(Buffer), "%.3f", X);
    return std::string(Buffer);
  };
  Out.addRow({"parse", Fmt(SerialParse), Fmt(ParallelParse),
              Fmt(ParseSpeedup) + "x", ParseIdentical ? "yes" : "NO"});
  Out.addRow({"extract", Fmt(SerialExtract), Fmt(ParallelExtract),
              Fmt(ExtractSpeedup) + "x", ExtractIdentical ? "yes" : "NO"});
  Out.print(std::cout);

  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("parallel.bench.threads").set(static_cast<double>(Threads));
  Reg.gauge("parallel.bench.cores").set(static_cast<double>(Cores));
  Reg.gauge("parallel.parse.speedup").set(ParseSpeedup);
  Reg.gauge("parallel.extract.speedup").set(ExtractSpeedup);
  bench::writeBenchSidecar("bench_parallel");

  if (!ParseIdentical || !ExtractIdentical) {
    std::fprintf(stderr,
                 "error: sharded results differ from the serial baseline\n");
    return 1;
  }

  // Hard speedup floors, opted into via the environment (CI). Only
  // meaningful with real parallel hardware: on one core the sharded run
  // can at best tie the serial one.
  if (Cores < 2) {
    std::fprintf(stderr,
                 "note: %zu core(s) available; speedup floors not applied\n",
                 Cores);
    return 0;
  }
  int Failures = 0;
  auto CheckFloor = [&](const char *Stage, const char *Env, double Got) {
    double Min = envFloor(Env);
    if (Min > 0 && Got < Min) {
      std::fprintf(stderr, "error: %s speedup %.2fx below the %.2fx floor\n",
                   Stage, Got, Min);
      ++Failures;
    }
  };
  CheckFloor("parse", "PIGEON_BENCH_MIN_PARSE_SPEEDUP", ParseSpeedup);
  CheckFloor("extract", "PIGEON_BENCH_MIN_EXTRACT_SPEEDUP", ExtractSpeedup);
  return Failures ? 1 : 0;
}
