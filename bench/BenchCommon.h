//===- BenchCommon.h - Shared plumbing for the table/figure benches --------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Corpus construction and formatting shared by the bench binaries that
/// regenerate the paper's tables and figures. Every bench uses the same
/// seeds, so all printed numbers are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_BENCH_BENCHCOMMON_H
#define PIGEON_BENCH_BENCHCOMMON_H

#include "core/Experiments.h"
#include "core/Pipeline.h"
#include "support/EventLog.h"
#include "support/TablePrinter.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pigeon {
namespace bench {

inline constexpr uint64_t BenchSeed = 2018; // PLDI 2018.

/// The evaluation corpus for one language at bench scale.
inline core::Corpus benchCorpus(lang::Language Lang, int Projects = 48) {
  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, BenchSeed);
  Spec.NumProjects = Projects;
  std::vector<datagen::SourceFile> Sources;
  {
    telemetry::TraceScope Phase("datagen");
    Sources = datagen::generateCorpus(Spec);
  }
  return core::parseCorpus(Sources, Lang);
}

/// Writes the process metrics snapshot as `<bench>.metrics.json` next to
/// the printed table (PIGEON_METRICS overrides the path), so every bench
/// run leaves a machine-readable baseline future perf PRs diff against —
/// tools/bench_report folds the sidecars into the BENCH_<stamp>.json
/// trajectory.
inline void writeBenchSidecar(const std::string &BenchName) {
  std::string Path = BenchName + ".metrics.json";
  if (const char *Env = std::getenv("PIGEON_METRICS"))
    if (*Env)
      Path = Env;
  // Process-level gauges the trajectory report keys on, sampled as late
  // as possible so they cover the whole run.
  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("process.rss.peak.kb")
      .set(static_cast<double>(telemetry::peakRssKb()));
  Reg.gauge("process.cpu.seconds").set(telemetry::processCpuSeconds());
  if (telemetry::MetricsRegistry::global().writeJsonFile(Path))
    std::fprintf(stderr, "metrics sidecar written to %s\n", Path.c_str());
  else
    std::fprintf(stderr, "error: cannot write metrics sidecar %s\n",
                 Path.c_str());
}

/// Standard CRF experiment options at the validation-tuned parameters.
inline core::CrfExperimentOptions tunedOptions(lang::Language Lang,
                                               core::Task Task) {
  core::CrfExperimentOptions Options;
  Options.Extraction = core::tunedExtraction(Lang, Task);
  Options.Crf.Epochs = 4;
  Options.Seed = BenchSeed;
  return Options;
}

/// "length/width" cell text for the params column.
inline std::string paramsText(const paths::ExtractionConfig &Config) {
  return std::to_string(Config.MaxLength) + "/" +
         std::to_string(Config.MaxWidth);
}

} // namespace bench
} // namespace pigeon

#endif // PIGEON_BENCH_BENCHCOMMON_H
