//===- bench_ablations.cpp - Ablations of DESIGN.md's design choices -------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Ablation benches for the design choices DESIGN.md calls out:
///   * unary factors on/off — the paper reports its unary-factor
///     extension is worth ~1.5% (§5.1);
///   * semi-paths on/off — semi-paths add generalization (§5);
///   * unknown-unknown (joint) factors on/off;
///   * path-lift feature pruning on/off;
///   * the empirical vote prior on/off.
/// All on JavaScript variable naming with the tuned parameters.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <functional>
#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  Corpus C = benchCorpus(Language::JavaScript);

  TablePrinter Table("Ablations (JS variable naming, CRFs)");
  Table.setHeader({"Configuration", "Accuracy", "Features",
                   "Training time (s)"});

  struct Ablation {
    const char *Name;
    std::function<void(CrfExperimentOptions &)> Apply;
  };
  const Ablation Ablations[] = {
      {"full configuration", [](CrfExperimentOptions &) {}},
      {"no unary factors (pre-§5.1 Nice2Predict)",
       [](CrfExperimentOptions &O) { O.Crf.UnaryFactors = false; }},
      {"no semi-paths (leafwise only)",
       [](CrfExperimentOptions &O) { O.Extraction.IncludeSemiPaths = false; }},
      {"no unknown-unknown factors (independent nodes)",
       [](CrfExperimentOptions &O) { O.Crf.UnknownUnknownFactors = false; }},
      {"path-lift pruning on (min lift 1.8)",
       [](CrfExperimentOptions &O) { O.Crf.MinPathLift = 1.8; }},
      {"no empirical vote prior (weights only)",
       [](CrfExperimentOptions &O) { O.Crf.VotePrior = 0.0; }},
      {"single inference pass",
       [](CrfExperimentOptions &O) { O.Crf.InferencePasses = 1; }},
      {"with 3-wise contexts (n-wise generalization, §4)",
       [](CrfExperimentOptions &O) { O.TriContexts = true; }},
  };

  for (const Ablation &A : Ablations) {
    CrfExperimentOptions Options =
        tunedOptions(Language::JavaScript, Task::VariableNames);
    A.Apply(Options);
    ExperimentResult R =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Table.addRow({A.Name, TablePrinter::percent(R.Accuracy),
                  std::to_string(R.NumFeatures),
                  TablePrinter::num(R.TrainSeconds, 2)});
  }
  Table.print(std::cout);

  // Method-name ablation: internal-only paths. The paper reports that
  // dropping external (call-site) paths costs only ~1% (§5.3.2); with
  // single-function files our corpora are internal-only by construction,
  // so here we report the method-name number for the record.
  {
    CrfExperimentOptions Options =
        tunedOptions(Language::JavaScript, Task::MethodNames);
    ExperimentResult R =
        runCrfNameExperiment(C, Task::MethodNames, Options);
    std::cout << "\nMethod names (internal paths only): "
              << TablePrinter::percent(R.Accuracy) << "\n";
  }
  writeBenchSidecar("bench_ablations");
  return 0;
}
