//===- bench_fig10_length_width.cpp - Reproduces Fig. 10 -------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Fig. 10: accuracy of CRF variable naming in JavaScript as a function
/// of max_length, for several max_width values, with the UnuglifyJS
/// (single-statement relations) baseline as the reference line. The
/// paper's curve rises with length; ours rises to its optimum and then
/// declines earlier because the synthetic functions are smaller than real
/// GitHub functions (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  Corpus C = benchCorpus(Language::JavaScript);

  TablePrinter Table("Fig. 10: accuracy vs max_length and max_width "
                     "(JS variable naming, CRFs)");
  Table.setHeader({"max_length", "width=1", "width=2", "width=3"});

  for (int Length = 2; Length <= 7; ++Length) {
    std::vector<std::string> Row = {std::to_string(Length)};
    for (int Width = 1; Width <= 3; ++Width) {
      // Mean over two project splits smooths split noise.
      double Sum = 0;
      for (uint64_t Seed : {BenchSeed, BenchSeed + 1}) {
        CrfExperimentOptions Options =
            tunedOptions(Language::JavaScript, Task::VariableNames);
        Options.Extraction.MaxLength = Length;
        Options.Extraction.MaxWidth = Width;
        Options.Seed = Seed;
        Sum += runCrfNameExperiment(C, Task::VariableNames, Options)
                   .Accuracy;
      }
      Row.push_back(TablePrinter::percent(Sum / 2));
    }
    Table.addRow(Row);
  }
  Table.addSeparator();
  {
    CrfExperimentOptions Options =
        tunedOptions(Language::JavaScript, Task::VariableNames);
    Options.Repr = Representation::IntraStatement;
    ExperimentResult R =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Table.addRow({"UnuglifyJS (reference)", "", "",
                  TablePrinter::percent(R.Accuracy)});
  }
  Table.print(std::cout);
  std::cout << "\nPaper's shape: accuracy rises with max_length (50% → "
               "~67% over lengths 3..7) and the best setting beats "
               "UnuglifyJS's 60%; width adds a minor positive effect.\n";
  writeBenchSidecar("bench_fig10_length_width");
  return 0;
}
