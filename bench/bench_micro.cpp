//===- bench_micro.cpp - Microbenchmarks of the core primitives ------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenches for the throughput-critical primitives:
/// parsing, path extraction (by length), CRF inference, and SGNS training
/// steps. These back the §5.3 discussion of training-cost tradeoffs.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/MappedBundle.h"
#include "core/ModelIO.h"
#include "lang/js/JsParser.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include <unistd.h>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

const std::vector<datagen::SourceFile> &sources() {
  static const std::vector<datagen::SourceFile> Files = [] {
    datagen::CorpusSpec Spec =
        datagen::defaultSpec(Language::JavaScript, BenchSeed);
    Spec.NumProjects = 8;
    return datagen::generateCorpus(Spec);
  }();
  return Files;
}

const Corpus &corpus() {
  static const Corpus C = parseCorpus(sources(), Language::JavaScript);
  return C;
}

void BM_ParseJs(benchmark::State &State) {
  const auto &Files = sources();
  size_t Bytes = 0;
  for (auto _ : State) {
    StringInterner SI;
    for (const datagen::SourceFile &File : Files) {
      lang::ParseResult R = js::parse(File.Text, SI);
      benchmark::DoNotOptimize(R.Tree);
      Bytes += File.Text.size();
    }
  }
  State.SetBytesProcessed(static_cast<int64_t>(Bytes));
}
BENCHMARK(BM_ParseJs);

void BM_ExtractPaths(benchmark::State &State) {
  const Corpus &C = corpus();
  paths::ExtractionConfig Config;
  Config.MaxLength = static_cast<int>(State.range(0));
  size_t Contexts = 0;
  for (auto _ : State) {
    paths::PathTable Table;
    for (const ParsedFile &File : C.Files)
      Contexts +=
          paths::extractPathContexts(File.Tree, Config, Table).size();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Contexts));
}
BENCHMARK(BM_ExtractPaths)->Arg(4)->Arg(7)->Arg(10);

void BM_CrfTrainEpoch(benchmark::State &State) {
  const Corpus &C = corpus();
  paths::PathTable Table;
  paths::ExtractionConfig Config =
      tunedExtraction(Language::JavaScript, Task::VariableNames);
  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  std::vector<crf::CrfGraph> Graphs;
  for (const ParsedFile &File : C.Files)
    Graphs.push_back(crf::buildGraph(
        File.Tree, paths::extractPathContexts(File.Tree, Config, Table),
        Selector));
  for (auto _ : State) {
    crf::CrfConfig CC;
    CC.Epochs = 1;
    crf::CrfModel Model(CC);
    Model.train(Graphs);
    benchmark::DoNotOptimize(Model.numFeatures());
  }
}
BENCHMARK(BM_CrfTrainEpoch);

void BM_CrfPredict(benchmark::State &State) {
  const Corpus &C = corpus();
  paths::PathTable Table;
  paths::ExtractionConfig Config =
      tunedExtraction(Language::JavaScript, Task::VariableNames);
  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  std::vector<crf::CrfGraph> Graphs;
  for (const ParsedFile &File : C.Files)
    Graphs.push_back(crf::buildGraph(
        File.Tree, paths::extractPathContexts(File.Tree, Config, Table),
        Selector));
  crf::CrfModel Model;
  Model.train(Graphs);
  size_t Predictions = 0;
  for (auto _ : State) {
    for (const crf::CrfGraph &G : Graphs) {
      auto Pred = Model.predict(G);
      Predictions += G.Unknowns.size();
      benchmark::DoNotOptimize(Pred);
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Predictions));
}
BENCHMARK(BM_CrfPredict);

void BM_SgnsTrain(benchmark::State &State) {
  // Synthetic pair corpus: 64 words x 8 contexts each.
  std::vector<w2v::Pair> Pairs;
  pigeon::Rng R(BenchSeed);
  for (int I = 0; I < 20000; ++I) {
    uint32_t W = static_cast<uint32_t>(R.nextBelow(64));
    Pairs.push_back({W, 8 * W + static_cast<uint32_t>(R.nextBelow(8))});
  }
  for (auto _ : State) {
    w2v::SgnsConfig Config;
    Config.Epochs = 1;
    w2v::Sgns Model(Config);
    Model.train(Pairs, 64, 512);
    benchmark::DoNotOptimize(Model.numWords());
  }
  State.SetItemsProcessed(
      static_cast<int64_t>(Pairs.size() * State.iterations()));
}
BENCHMARK(BM_SgnsTrain);

/// Repeated full-corpus parses into the global registry, so the `parse`
/// phase in the sidecar carries real percentiles. corpus() contributes a
/// single observation, which made p50/p90/p99 all equal that one run —
/// a distribution of one, useless for spotting tail regressions.
void recordParsePhase() {
  const auto &Files = sources();
  for (int Rep = 0; Rep < 8; ++Rep) {
    // parseCorpus opens its own "parse" phase; each run is one histogram
    // observation.
    Corpus C = parseCorpus(Files, Language::JavaScript);
    benchmark::DoNotOptimize(C.Files.size());
  }
}

/// Measured extraction pass for the trajectory gate: contexts/sec through
/// the packed hot path and the packed-bytes cost per context. Gauges whose
/// names contain `per_sec` are throughput-gated by tools/bench_report, so
/// a regression in the string-free extraction path fails CI.
void recordExtractionThroughput() {
  const Corpus &C = corpus();
  paths::ExtractionConfig Config =
      tunedExtraction(Language::JavaScript, Task::VariableNames);
  // Warm-up pass, then take the best of a few timed repetitions so the
  // gauge is not at the mercy of one scheduler hiccup.
  double BestSeconds = 1e30;
  size_t Contexts = 0;
  uint64_t PackedBytes = 0;
  for (int Rep = 0; Rep < 4; ++Rep) {
    paths::PathTable Table;
    size_t RepContexts = 0;
    uint64_t RepBytes = 0;
    auto Start = std::chrono::steady_clock::now();
    for (const ParsedFile &File : C.Files) {
      auto Cs = paths::extractPathContexts(File.Tree, Config, Table);
      RepContexts += Cs.size();
      for (const paths::PathContext &Ctx : Cs)
        RepBytes += Table.bytes(Ctx.Path).size();
    }
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    if (Rep == 0)
      continue; // Warm-up: caches and allocator state settle.
    BestSeconds = std::min(BestSeconds, Seconds);
    Contexts = RepContexts;
    PackedBytes = RepBytes;
  }
  auto &Reg = telemetry::MetricsRegistry::global();
  if (BestSeconds > 0.0 && Contexts > 0) {
    Reg.gauge("paths.extract.contexts_per_sec")
        .set(static_cast<double>(Contexts) / BestSeconds);
    Reg.gauge("paths.extract.packed_bytes_per_context")
        .set(static_cast<double>(PackedBytes) /
             static_cast<double>(Contexts));
  }
}

/// Model-load cost, v2 stream vs v3 mmap, for the trajectory gate. Both
/// formats of the same trained bundle are written to temp files, loaded
/// repeatedly (best-of, after a warm-up), and the wall times plus the
/// per-format RSS deltas land as gauges. `model.load.speedup` folds into
/// the pigeon.bench.v1 trajectory as a throughput metric, so a >threshold
/// drop against the committed baseline fails bench_report; the optional
/// PIGEON_BENCH_MIN_LOAD_SPEEDUP env floor fails this binary directly.
int recordModelLoadCost() {
  core::ModelBundle Bundle;
  Bundle.Lang = Language::JavaScript;
  Bundle.Interner = std::make_unique<StringInterner>();
  Bundle.TaskKind = core::Task::VariableNames;
  Bundle.Extraction =
      core::tunedExtraction(Language::JavaScript, core::Task::VariableNames);
  {
    // Re-parse with the bundle's own interner so saved ids are dense.
    crf::ElementSelector Selector =
        core::selectorFor(core::Task::VariableNames);
    std::vector<crf::CrfGraph> Graphs;
    for (const datagen::SourceFile &File : sources()) {
      lang::ParseResult R = js::parse(File.Text, *Bundle.Interner);
      auto Contexts = paths::extractPathContexts(*R.Tree, Bundle.Extraction,
                                                 Bundle.Table);
      Graphs.push_back(crf::buildGraph(*R.Tree, Contexts, Selector));
    }
    Bundle.Model.train(Graphs);
  }

  char V2Path[] = "/tmp/pigeon_bench_v2_XXXXXX";
  char V3Path[] = "/tmp/pigeon_bench_v3_XXXXXX";
  int Fd2 = ::mkstemp(V2Path), Fd3 = ::mkstemp(V3Path);
  if (Fd2 < 0 || Fd3 < 0)
    return 1;
  ::close(Fd2);
  ::close(Fd3);
  {
    std::ofstream O2(V2Path, std::ios::binary);
    core::saveModel(O2, Bundle);
    std::ofstream O3(V3Path, std::ios::binary);
    core::saveModelV3(O3, Bundle);
  }

  auto BestLoadSeconds = [](const std::string &Path) {
    double Best = 1e30;
    for (int Rep = 0; Rep < 12; ++Rep) {
      auto Start = std::chrono::steady_clock::now();
      auto B = core::loadModelFile(Path);
      double Seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
      if (!B)
        return -1.0;
      benchmark::DoNotOptimize(B->Model.numFeatures());
      if (Rep > 0) // First load warms the page cache / allocator.
        Best = std::min(Best, Seconds);
    }
    return Best;
  };

  // RSS deltas around a single held-open load of each format. The
  // allocator is trimmed first so pages freed by earlier phases (training
  // ran in this process) are returned to the kernel — otherwise the v2
  // deserialization is served from recycled heap and its delta reads 0.
  auto RssDeltaOf = [](const std::string &Path, uint64_t &Delta) {
#if defined(__GLIBC__)
    ::malloc_trim(0);
#endif
    uint64_t Before = telemetry::currentRssKb();
    auto B = core::loadModelFile(Path);
    uint64_t After = telemetry::currentRssKb();
    Delta = After > Before ? After - Before : 0;
    return B != nullptr;
  };
  uint64_t RssDelta3, RssDelta2;
  if (!RssDeltaOf(V3Path, RssDelta3) || !RssDeltaOf(V2Path, RssDelta2))
    return 1;

  double V2Seconds = BestLoadSeconds(V2Path);
  double V3Seconds = BestLoadSeconds(V3Path);
  ::unlink(V2Path);
  ::unlink(V3Path);
  if (V2Seconds <= 0 || V3Seconds <= 0) {
    std::fprintf(stderr, "error: model load bench failed to load bundles\n");
    return 1;
  }
  double Speedup = V2Seconds / V3Seconds;

  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("model.load.v2_stream.seconds").set(V2Seconds);
  Reg.gauge("model.load.v3_mmap.seconds").set(V3Seconds);
  Reg.gauge("model.load.speedup").set(Speedup);
  Reg.gauge("model.load.v2_stream.rss_delta.kb")
      .set(static_cast<double>(RssDelta2));
  Reg.gauge("model.load.v3_mmap.rss_delta.kb")
      .set(static_cast<double>(RssDelta3));
  std::fprintf(stderr,
               "model load: v2 stream %.3f ms, v3 mmap %.3f ms (%.1fx), "
               "rss delta v2 %llu KiB vs v3 %llu KiB\n",
               V2Seconds * 1e3, V3Seconds * 1e3, Speedup,
               static_cast<unsigned long long>(RssDelta2),
               static_cast<unsigned long long>(RssDelta3));

  if (const char *Env = std::getenv("PIGEON_BENCH_MIN_LOAD_SPEEDUP")) {
    double Floor = std::atof(Env);
    if (Floor > 0 && Speedup < Floor) {
      std::fprintf(stderr,
                   "error: v3 mmap load speedup %.2fx below the %.2fx "
                   "floor\n",
                   Speedup, Floor);
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  recordParsePhase();
  recordExtractionThroughput();
  int RC = recordModelLoadCost();
  pigeon::bench::writeBenchSidecar("bench_micro");
  return RC;
}
