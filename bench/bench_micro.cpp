//===- bench_micro.cpp - Microbenchmarks of the core primitives ------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenches for the throughput-critical primitives:
/// parsing, path extraction (by length), CRF inference, and SGNS training
/// steps. These back the §5.3 discussion of training-cost tradeoffs.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "lang/js/JsParser.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

const std::vector<datagen::SourceFile> &sources() {
  static const std::vector<datagen::SourceFile> Files = [] {
    datagen::CorpusSpec Spec =
        datagen::defaultSpec(Language::JavaScript, BenchSeed);
    Spec.NumProjects = 8;
    return datagen::generateCorpus(Spec);
  }();
  return Files;
}

const Corpus &corpus() {
  static const Corpus C = parseCorpus(sources(), Language::JavaScript);
  return C;
}

void BM_ParseJs(benchmark::State &State) {
  const auto &Files = sources();
  size_t Bytes = 0;
  for (auto _ : State) {
    StringInterner SI;
    for (const datagen::SourceFile &File : Files) {
      lang::ParseResult R = js::parse(File.Text, SI);
      benchmark::DoNotOptimize(R.Tree);
      Bytes += File.Text.size();
    }
  }
  State.SetBytesProcessed(static_cast<int64_t>(Bytes));
}
BENCHMARK(BM_ParseJs);

void BM_ExtractPaths(benchmark::State &State) {
  const Corpus &C = corpus();
  paths::ExtractionConfig Config;
  Config.MaxLength = static_cast<int>(State.range(0));
  size_t Contexts = 0;
  for (auto _ : State) {
    paths::PathTable Table;
    for (const ParsedFile &File : C.Files)
      Contexts +=
          paths::extractPathContexts(File.Tree, Config, Table).size();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Contexts));
}
BENCHMARK(BM_ExtractPaths)->Arg(4)->Arg(7)->Arg(10);

void BM_CrfTrainEpoch(benchmark::State &State) {
  const Corpus &C = corpus();
  paths::PathTable Table;
  paths::ExtractionConfig Config =
      tunedExtraction(Language::JavaScript, Task::VariableNames);
  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  std::vector<crf::CrfGraph> Graphs;
  for (const ParsedFile &File : C.Files)
    Graphs.push_back(crf::buildGraph(
        File.Tree, paths::extractPathContexts(File.Tree, Config, Table),
        Selector));
  for (auto _ : State) {
    crf::CrfConfig CC;
    CC.Epochs = 1;
    crf::CrfModel Model(CC);
    Model.train(Graphs);
    benchmark::DoNotOptimize(Model.numFeatures());
  }
}
BENCHMARK(BM_CrfTrainEpoch);

void BM_CrfPredict(benchmark::State &State) {
  const Corpus &C = corpus();
  paths::PathTable Table;
  paths::ExtractionConfig Config =
      tunedExtraction(Language::JavaScript, Task::VariableNames);
  crf::ElementSelector Selector = selectorFor(Task::VariableNames);
  std::vector<crf::CrfGraph> Graphs;
  for (const ParsedFile &File : C.Files)
    Graphs.push_back(crf::buildGraph(
        File.Tree, paths::extractPathContexts(File.Tree, Config, Table),
        Selector));
  crf::CrfModel Model;
  Model.train(Graphs);
  size_t Predictions = 0;
  for (auto _ : State) {
    for (const crf::CrfGraph &G : Graphs) {
      auto Pred = Model.predict(G);
      Predictions += G.Unknowns.size();
      benchmark::DoNotOptimize(Pred);
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Predictions));
}
BENCHMARK(BM_CrfPredict);

void BM_SgnsTrain(benchmark::State &State) {
  // Synthetic pair corpus: 64 words x 8 contexts each.
  std::vector<w2v::Pair> Pairs;
  pigeon::Rng R(BenchSeed);
  for (int I = 0; I < 20000; ++I) {
    uint32_t W = static_cast<uint32_t>(R.nextBelow(64));
    Pairs.push_back({W, 8 * W + static_cast<uint32_t>(R.nextBelow(8))});
  }
  for (auto _ : State) {
    w2v::SgnsConfig Config;
    Config.Epochs = 1;
    w2v::Sgns Model(Config);
    Model.train(Pairs, 64, 512);
    benchmark::DoNotOptimize(Model.numWords());
  }
  State.SetItemsProcessed(
      static_cast<int64_t>(Pairs.size() * State.iterations()));
}
BENCHMARK(BM_SgnsTrain);

/// Repeated full-corpus parses into the global registry, so the `parse`
/// phase in the sidecar carries real percentiles. corpus() contributes a
/// single observation, which made p50/p90/p99 all equal that one run —
/// a distribution of one, useless for spotting tail regressions.
void recordParsePhase() {
  const auto &Files = sources();
  for (int Rep = 0; Rep < 8; ++Rep) {
    // parseCorpus opens its own "parse" phase; each run is one histogram
    // observation.
    Corpus C = parseCorpus(Files, Language::JavaScript);
    benchmark::DoNotOptimize(C.Files.size());
  }
}

/// Measured extraction pass for the trajectory gate: contexts/sec through
/// the packed hot path and the packed-bytes cost per context. Gauges whose
/// names contain `per_sec` are throughput-gated by tools/bench_report, so
/// a regression in the string-free extraction path fails CI.
void recordExtractionThroughput() {
  const Corpus &C = corpus();
  paths::ExtractionConfig Config =
      tunedExtraction(Language::JavaScript, Task::VariableNames);
  // Warm-up pass, then take the best of a few timed repetitions so the
  // gauge is not at the mercy of one scheduler hiccup.
  double BestSeconds = 1e30;
  size_t Contexts = 0;
  uint64_t PackedBytes = 0;
  for (int Rep = 0; Rep < 4; ++Rep) {
    paths::PathTable Table;
    size_t RepContexts = 0;
    uint64_t RepBytes = 0;
    auto Start = std::chrono::steady_clock::now();
    for (const ParsedFile &File : C.Files) {
      auto Cs = paths::extractPathContexts(File.Tree, Config, Table);
      RepContexts += Cs.size();
      for (const paths::PathContext &Ctx : Cs)
        RepBytes += Table.bytes(Ctx.Path).size();
    }
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    if (Rep == 0)
      continue; // Warm-up: caches and allocator state settle.
    BestSeconds = std::min(BestSeconds, Seconds);
    Contexts = RepContexts;
    PackedBytes = RepBytes;
  }
  auto &Reg = telemetry::MetricsRegistry::global();
  if (BestSeconds > 0.0 && Contexts > 0) {
    Reg.gauge("paths.extract.contexts_per_sec")
        .set(static_cast<double>(Contexts) / BestSeconds);
    Reg.gauge("paths.extract.packed_bytes_per_context")
        .set(static_cast<double>(PackedBytes) /
             static_cast<double>(Contexts));
  }
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  recordParsePhase();
  recordExtractionThroughput();
  pigeon::bench::writeBenchSidecar("bench_micro");
  return 0;
}
