//===- bench_fig11_downsampling.cpp - Reproduces Fig. 11 -------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Fig. 11: randomly dropping training path-contexts with keep
/// probability p trades training time for (little) accuracy. The paper
/// found p=0.8 costs no accuracy while cutting training time ~25%, and
/// even p=0.2 stays above the UnuglifyJS baseline.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  Corpus C = benchCorpus(Language::JavaScript);

  TablePrinter Table("Fig. 11: downsampling path-contexts "
                     "(JS variable naming, CRFs)");
  Table.setHeader({"keep probability p", "Accuracy", "Train contexts",
                   "Training time (s)"});

  for (double P : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double Sum = 0, Seconds = 0;
    size_t Contexts = 0;
    for (uint64_t Seed : {BenchSeed, BenchSeed + 1}) {
      CrfExperimentOptions Options =
          tunedOptions(Language::JavaScript, Task::VariableNames);
      Options.DownsampleP = P;
      Options.Seed = Seed;
      ExperimentResult R =
          runCrfNameExperiment(C, Task::VariableNames, Options);
      Sum += R.Accuracy;
      Seconds += R.TrainSeconds;
      Contexts += R.TrainContexts;
    }
    Table.addRow({TablePrinter::num(P, 1),
                  TablePrinter::percent(Sum / 2),
                  std::to_string(Contexts / 2),
                  TablePrinter::num(Seconds / 2, 2)});
  }
  Table.addSeparator();
  {
    CrfExperimentOptions Options =
        tunedOptions(Language::JavaScript, Task::VariableNames);
    Options.Repr = Representation::IntraStatement;
    ExperimentResult R =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Table.addRow({"UnuglifyJS (reference)",
                  TablePrinter::percent(R.Accuracy), "-", "-"});
  }
  Table.print(std::cout);
  std::cout << "\nPaper's shape: accuracy nearly flat down to p=0.8, mild "
               "decline to p=0.2 while remaining above UnuglifyJS; "
               "training time falls with p.\n";
  writeBenchSidecar("bench_fig11_downsampling");
  return 0;
}
