//===- bench_table1_datasets.cpp - Reproduces Table 1 ----------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Table 1 of the paper reports the data used per language (repos, files,
/// size, train/test split). This bench prints the same columns for the
/// synthetic corpora that substitute for the GitHub datasets. Absolute
/// sizes are laptop-scale by design; the *relative* emphasis matches the
/// paper (Java gets the largest corpus — the paper needed an order of
/// magnitude more Java data to reach comparable accuracy).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  TablePrinter Table(
      "Table 1: corpora used for the experimental evaluation");
  Table.setHeader({"Language", "Projects", "Files", "Size (KB)",
                   "Train files", "Test files", "Parse failures"});

  struct Row {
    Language Lang;
    int Projects;
  };
  // Java gets the biggest corpus, mirroring the paper's observation that
  // it needed far more data than the other languages.
  const Row Rows[] = {
      {Language::Java, 72},
      {Language::JavaScript, 48},
      {Language::Python, 48},
      {Language::CSharp, 40},
  };

  for (const Row &R : Rows) {
    Corpus C = benchCorpus(R.Lang, R.Projects);
    Split S = splitByProject(C, 0.25, BenchSeed);
    Table.addRow({lang::languageName(R.Lang),
                  std::to_string(C.numProjects()),
                  std::to_string(C.Files.size()),
                  TablePrinter::num(static_cast<double>(C.SourceBytes) /
                                        1024.0,
                                    1),
                  std::to_string(S.Train.size()),
                  std::to_string(S.Test.size()),
                  std::to_string(C.ParseFailures)});
  }
  Table.print(std::cout);
  std::cout << "\n(Substitutes the paper's GitHub corpora: 10,081 Java "
               "repos / 16 GB etc. Shape preserved: Java largest; "
               "per-project train/test split.)\n";
  writeBenchSidecar("bench_table1_datasets");
  return 0;
}
