//===- bench_table2_varnames.cpp - Reproduces Table 2 (top) ----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Table 2 (top): variable-name prediction accuracy with CRFs across the
/// four languages, against the paper's baselines —
///   JavaScript: no-paths ("bag of near identifiers") and UnuglifyJS
///               (single-statement relations);
///   Java:       rule-based heuristics and CRFs + 4-grams;
///   Python:     no-paths;
///   C#:         AST paths only (as in the paper).
/// The params column is the validation-tuned max_length/max_width.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  TablePrinter Table("Table 2 (top): variable name prediction with CRFs");
  Table.setHeader({"Language", "Baselines", "AST paths (this work)",
                   "Params (len/width)"});

  // JavaScript -------------------------------------------------------------
  {
    Corpus C = benchCorpus(Language::JavaScript);
    CrfExperimentOptions Options =
        tunedOptions(Language::JavaScript, Task::VariableNames);
    ExperimentResult Paths =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Options.Repr = Representation::NoPaths;
    ExperimentResult NoPaths =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Options.Repr = Representation::IntraStatement;
    ExperimentResult Unuglify =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Table.addRow({"JavaScript",
                  TablePrinter::percent(NoPaths.Accuracy) + " (no-paths)  " +
                      TablePrinter::percent(Unuglify.Accuracy) +
                      " (UnuglifyJS)",
                  TablePrinter::percent(Paths.Accuracy),
                  paramsText(Options.Extraction)});
  }

  // Java --------------------------------------------------------------------
  {
    Corpus C = benchCorpus(Language::Java, 72);
    CrfExperimentOptions Options =
        tunedOptions(Language::Java, Task::VariableNames);
    ExperimentResult Paths =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    ExperimentResult Rules = runRuleBasedJava(C, 0.25, BenchSeed);
    Options.Repr = Representation::Ngrams;
    Options.NgramN = 4;
    ExperimentResult Ngrams =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Table.addRow({"Java",
                  TablePrinter::percent(Rules.Accuracy) + " (rule-based)  " +
                      TablePrinter::percent(Ngrams.Accuracy) +
                      " (CRFs+4-grams)",
                  TablePrinter::percent(Paths.Accuracy),
                  paramsText(Options.Extraction)});
  }

  // Python ------------------------------------------------------------------
  {
    Corpus C = benchCorpus(Language::Python);
    CrfExperimentOptions Options =
        tunedOptions(Language::Python, Task::VariableNames);
    ExperimentResult Paths =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Options.Repr = Representation::NoPaths;
    ExperimentResult NoPaths =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Table.addRow({"Python",
                  TablePrinter::percent(NoPaths.Accuracy) + " (no-paths)",
                  TablePrinter::percent(Paths.Accuracy),
                  paramsText(Options.Extraction)});
  }

  // C# ----------------------------------------------------------------------
  {
    Corpus C = benchCorpus(Language::CSharp, 40);
    CrfExperimentOptions Options =
        tunedOptions(Language::CSharp, Task::VariableNames);
    ExperimentResult Paths =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Table.addRow({"C#", "-", TablePrinter::percent(Paths.Accuracy),
                  paramsText(Options.Extraction)});
  }

  Table.print(std::cout);
  std::cout << "\nPaper's values: JS 24.9% (no-paths) / 60.0% (UnuglifyJS) "
               "vs 67.3%; Java 23.7% (rule-based) / 50.1% (4-grams) vs "
               "58.2%; Python 35.2% (no-paths) vs 56.7%; C# 56.1%.\n";
  writeBenchSidecar("bench_table2_varnames");
  return 0;
}
