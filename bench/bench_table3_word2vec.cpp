//===- bench_table3_word2vec.cpp - Reproduces Table 3 ----------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Table 3: variable-name prediction in JavaScript with word2vec (SGNS +
/// Eq. 4) under three context encodings — linear token-stream,
/// path-neighbors-without-paths, and AST paths. The paper's point: the
/// advantage of AST paths over the token stream is not only wider span
/// but the representation of the path itself (96% relative improvement).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  Corpus C = benchCorpus(Language::JavaScript);

  TablePrinter Table(
      "Table 3: variable name prediction with word2vec, JavaScript");
  Table.setHeader({"Model", "Names accuracy"});

  W2vExperimentOptions Options;
  Options.Extraction =
      tunedExtraction(Language::JavaScript, Task::VariableNames);
  Options.Sgns.Epochs = 6;
  Options.Seed = BenchSeed;

  for (W2vContexts Kind : {W2vContexts::TokenStream,
                           W2vContexts::PathNeighbors,
                           W2vContexts::AstPaths}) {
    Options.Contexts = Kind;
    ExperimentResult R = runW2vNameExperiment(C, Options);
    Table.addRow({std::string(w2vContextsName(Kind)) + " + word2vec",
                  TablePrinter::percent(R.Accuracy)});
  }
  Table.print(std::cout);
  std::cout << "\nPaper's values: token-stream 20.6%, path-neighbors "
               "23.2%, AST paths 40.4%.\n";
  writeBenchSidecar("bench_table3_word2vec");
  return 0;
}
