//===- bench_table4_topk.cpp - Reproduces Table 4 --------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Table 4a: the top candidates a trained CRF suggests for the variable
/// `d` of the paper's Fig. 1a snippet — all of which should be
/// flag-flavoured names (done, finished, ...). Table 4b: semantic
/// similarities between names, read off the word2vec embedding space as
/// nearest neighbours.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "lang/js/JsParser.h"
#include "ml/word2vec/Sgns.h"

#include <iostream>
#include <unordered_map>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  Corpus C = benchCorpus(Language::JavaScript);

  // Table 4a -----------------------------------------------------------------
  {
    TrainedNameModel Model(
        C, Task::VariableNames,
        tunedOptions(Language::JavaScript, Task::VariableNames));
    lang::ParseResult R = js::parse(
        "function waitUntilReady() { trace('start'); var d = false; while "
        "(!d) { if (check()) { d = true; } } return d; }",
        *C.Interner);
    if (!R.Tree) {
      std::cerr << "failed to parse the Fig. 1a snippet\n";
      return 1;
    }
    TablePrinter Table(
        "Table 4a: top candidates for `d` in the Fig. 1a loop");
    Table.setHeader({"Rank", "Candidate", "Score"});
    for (ElementId E = 0; E < R.Tree->elements().size(); ++E) {
      if (C.Interner->str(R.Tree->element(E).Name) != "d")
        continue;
      auto Top = Model.topKFor(*R.Tree, E, 8);
      int Rank = 1;
      for (const auto &[Label, Score] : Top)
        Table.addRow({std::to_string(Rank++),
                      std::string(C.Interner->str(Label)),
                      TablePrinter::num(Score, 2)});
    }
    Table.print(std::cout);
    std::cout << "(Paper's candidates: done, ended, complete, found, "
                 "finished, stop, end, success.)\n\n";
  }

  // Table 4b -----------------------------------------------------------------
  {
    // Train SGNS over (name, abstract path-context) pairs from the whole
    // corpus, then read nearest neighbours in the embedding space.
    paths::PathTable Table;
    paths::ExtractionConfig Extraction =
        tunedExtraction(Language::JavaScript, Task::VariableNames);
    crf::ElementSelector Selector = selectorFor(Task::VariableNames);
    std::unordered_map<Symbol, uint32_t> WordIds;
    std::vector<Symbol> Words;
    StringInterner CtxInterner;
    std::vector<w2v::Pair> Pairs;
    for (const ParsedFile &File : C.Files) {
      const Tree &T = File.Tree;
      auto Contexts = paths::extractPathContexts(T, Extraction, Table);
      for (const paths::PathContext &Ctx : Contexts) {
        const Node &Start = T.node(Ctx.Start);
        if (Start.Element == InvalidElement ||
            !Selector(T.element(Start.Element)))
          continue;
        Symbol Name = T.element(Start.Element).Name;
        auto [It, Inserted] =
            WordIds.emplace(Name, static_cast<uint32_t>(Words.size()));
        if (Inserted)
          Words.push_back(Name);
        std::string CtxString =
            Table.render(Ctx.Path, *C.Interner) + "|" +
            std::string(C.Interner->str(paths::endValue(T, Ctx.End)));
        Pairs.push_back({It->second, CtxInterner.intern(CtxString).index()});
      }
    }
    w2v::SgnsConfig Config;
    Config.Epochs = 6;
    Config.Seed = BenchSeed;
    w2v::Sgns Model(Config);
    Model.train(Pairs, static_cast<uint32_t>(Words.size()),
                static_cast<uint32_t>(CtxInterner.size()));

    TablePrinter Sim("Table 4b: semantic similarities between names "
                     "(embedding nearest neighbours)");
    Sim.setHeader({"Name", "Nearest names"});
    for (const char *Probe :
         {"done", "items", "count", "item", "request", "result", "i"}) {
      Symbol S = C.Interner->lookup(Probe);
      auto It = S.isValid() ? WordIds.find(S) : WordIds.end();
      if (It == WordIds.end())
        continue;
      auto Near = Model.similarWords(It->second, 4);
      std::string Cell;
      for (const auto &[W, Cos] : Near) {
        if (!Cell.empty())
          Cell += " ~ ";
        Cell += C.Interner->str(Words[W]);
      }
      Sim.addRow({Probe, Cell});
    }
    Sim.print(std::cout);
    std::cout << "(Paper's examples: req~request~client, "
                 "items~values~objects~keys~elements, array~arr~ary~list, "
                 "count~counter~total, i~j~index.)\n";
  }
  writeBenchSidecar("bench_table4_topk");
  return 0;
}
