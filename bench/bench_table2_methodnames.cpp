//===- bench_table2_methodnames.cpp - Reproduces Table 2 (middle) ----------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Table 2 (middle): method-name prediction with CRFs for JavaScript,
/// Java and Python. For Java the paper compares against the
/// convolutional-attention model of Allamanis et al. [7] on both exact
/// accuracy and sub-token F1; our stand-in is the sub-token bag namer.
/// JS/Python baselines are no-paths, as in the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  TablePrinter Table("Table 2 (middle): method name prediction with CRFs");
  Table.setHeader({"Language", "Baseline", "AST paths (this work)",
                   "Params (len/width)"});

  for (Language Lang :
       {Language::JavaScript, Language::Java, Language::Python}) {
    Corpus C = benchCorpus(Lang, Lang == Language::Java ? 72 : 48);
    CrfExperimentOptions Options = tunedOptions(Lang, Task::MethodNames);
    ExperimentResult Paths =
        runCrfNameExperiment(C, Task::MethodNames, Options);

    std::string Baseline;
    if (Lang == Language::Java) {
      ExperimentResult Sub = runSubtokenMethodNamer(C, 0.25, BenchSeed);
      Baseline = TablePrinter::percent(Sub.Accuracy) + ", F1: " +
                 TablePrinter::num(Sub.SubtokenF1 * 100, 1) +
                 " (sub-token namer)";
    } else {
      Options.Repr = Representation::NoPaths;
      ExperimentResult NoPaths =
          runCrfNameExperiment(C, Task::MethodNames, Options);
      Baseline = TablePrinter::percent(NoPaths.Accuracy) + " (no-paths)";
    }
    std::string Ours = TablePrinter::percent(Paths.Accuracy);
    if (Lang == Language::Java)
      Ours += ", F1: " + TablePrinter::num(Paths.SubtokenF1 * 100, 1);
    Table.addRow({lang::languageName(Lang), Baseline, Ours,
                  paramsText(tunedExtraction(Lang, Task::MethodNames))});
  }
  Table.print(std::cout);
  std::cout << "\nPaper's values: JS 44.1% (no-paths) vs 53.1%; Java 16.5% "
               "F1 33.9 (Allamanis et al.) vs 47.3% F1 49.9; Python 41.6% "
               "(no-paths) vs 51.1%.\n";
  writeBenchSidecar("bench_table2_methodnames");
  return 0;
}
