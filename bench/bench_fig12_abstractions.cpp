//===- bench_fig12_abstractions.cpp - Reproduces Fig. 12 -------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Fig. 12: accuracy vs training time for the abstraction ladder of §5.6
/// (no-path → first-last → top → first-top-last → forget-order →
/// no-arrows → full), for Java variable naming with the training corpus
/// and iteration count held fixed. The paper's "sweet spot" is
/// first-top-last: ~95% of full accuracy at half the training time.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::bench;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  Corpus C = benchCorpus(Language::Java, 72);

  TablePrinter Table("Fig. 12: abstractions of AST paths "
                     "(Java variable naming, CRFs)");
  Table.setHeader({"Abstraction", "Accuracy", "Distinct paths",
                   "Model features", "Training time (s)"});

  for (paths::Abstraction A : paths::AllAbstractions) {
    CrfExperimentOptions Options =
        tunedOptions(Language::Java, Task::VariableNames);
    Options.Extraction.Abst = A;
    // §5.6's no-path rung is a bag of surrounding *identifiers*;
    // semi-path ancestors are node kinds, not identifiers, so they are
    // dropped for that rung (Representation::NoPaths does exactly this).
    if (A == paths::Abstraction::NoPath)
      Options.Repr = Representation::NoPaths;
    ExperimentResult R =
        runCrfNameExperiment(C, Task::VariableNames, Options);
    Table.addRow({paths::abstractionName(A),
                  TablePrinter::percent(R.Accuracy),
                  std::to_string(R.DistinctPaths),
                  std::to_string(R.NumFeatures),
                  TablePrinter::num(R.TrainSeconds, 2)});
  }
  Table.print(std::cout);
  std::cout << "\nPaper's shape: accuracy grows along the ladder (no-path "
               "~37% ... full ~58%), training time grows with the number "
               "of distinct paths; first-top-last is the sweet spot "
               "(~95% of full accuracy, half the training time).\n";
  writeBenchSidecar("bench_fig12_abstractions");
  return 0;
}
