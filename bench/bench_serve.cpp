//===- bench_serve.cpp - Resident service throughput bench -----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures the resident prediction service three ways over the same
/// trained bundle:
///
///  1. Closed loop, one sequential client (per-request floor).
///  2. Closed loop, several concurrent clients — the number
///     micro-batching exists for; the bench fails (exit 1) if it does
///     not beat the sequential client.
///  3. Open loop: a load generator submits at fixed offered rates on a
///     schedule that never waits for responses, so queueing delay shows
///     up in the latency numbers instead of silently throttling the
///     client (the coordinated-omission problem closed loops have).
///     Latency is measured from each request's *scheduled* arrival
///     time; the highest offered rate the service sustains (achieved ≥
///     95% of offered, ~every response ok, p99 under 150 ms) is
///     reported as `serve.openloop.max_sustained_per_sec`.
///
/// Sidecar gauges (`serve.requests_per_sec*`, `serve.openloop.*`) feed
/// the bench-trajectory throughput/latency gates like every other
/// `per_sec` / `latency_ms` metric.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ContextsIO.h"
#include "core/ModelIO.h"
#include "serve/Serve.h"
#include "serve/SlowLog.h"
#include "support/Parallel.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

/// Requests are held-out sources: a fresh seed the training corpus never
/// saw, exercising the novel-symbol remap path like real traffic would.
std::vector<std::string> requestLines(int Count) {
  datagen::CorpusSpec Spec =
      datagen::defaultSpec(Language::JavaScript, bench::BenchSeed + 1);
  Spec.NumProjects = 8;
  std::vector<datagen::SourceFile> Files = datagen::generateCorpus(Spec);
  std::vector<std::string> Lines;
  for (int I = 0; I < Count; ++I)
    Lines.push_back(
        "{\"id\":" + std::to_string(I) + ",\"lang\":\"js\",\"source\":" +
        telemetry::jsonString(Files[I % Files.size()].Text) + "}");
  return Lines;
}

std::string savedBundle() {
  Corpus C = bench::benchCorpus(Language::JavaScript, /*Projects=*/24);
  ContextsArtifact Art = buildContextsArtifact(
      C, Task::VariableNames,
      bench::tunedOptions(Language::JavaScript, Task::VariableNames));
  ModelBundle Bundle;
  Bundle.Lang = Art.Lang;
  Bundle.TaskKind = Art.TaskKind;
  Bundle.Extraction = Art.Extraction;
  Bundle.Interner = std::move(Art.Interner);
  Bundle.Table = std::move(Art.Table);
  crf::ElementSelector Selector = selectorFor(Art.TaskKind);
  std::vector<crf::CrfGraph> Graphs;
  for (const FileRecord &Rec : Art.Files)
    Graphs.push_back(buildGraphFromRecord(Rec, Selector));
  {
    telemetry::TraceScope Phase("train");
    Bundle.Model.train(Graphs);
  }
  std::stringstream Buffer;
  saveModel(Buffer, Bundle);
  return Buffer.str();
}

std::unique_ptr<ModelBundle> loadBundle(const std::string &Bytes) {
  std::stringstream Buffer(Bytes);
  return loadModel(Buffer);
}

/// Closed-loop percentile over per-request milliseconds (nearest-rank on
/// the sorted sample — exact for these small Ns, no bucketing error).
double latencyPercentile(std::vector<double> LatenciesMs, double P) {
  if (LatenciesMs.empty())
    return 0;
  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  size_t Rank = static_cast<size_t>(P * static_cast<double>(
                                            LatenciesMs.size() - 1));
  return LatenciesMs[Rank];
}

double requestMs(serve::Service &S, const std::string &Line) {
  auto T0 = std::chrono::steady_clock::now();
  S.handleOne(Line);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

double runSingle(serve::Service &S, const std::vector<std::string> &Lines,
                 std::vector<double> &LatenciesMs) {
  telemetry::TraceScope Phase("serve.bench.single");
  LatenciesMs.reserve(Lines.size());
  auto Start = std::chrono::steady_clock::now();
  for (const std::string &Line : Lines)
    LatenciesMs.push_back(requestMs(S, Line));
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return static_cast<double>(Lines.size()) / Wall;
}

double runConcurrent(serve::Service &S, const std::vector<std::string> &Lines,
                     int Clients, std::vector<double> &LatenciesMs) {
  telemetry::TraceScope Phase("serve.bench.concurrent");
  LatenciesMs.assign(Lines.size(), 0);
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (int T = 0; T < Clients; ++T)
    Threads.emplace_back([&S, &Lines, &LatenciesMs, T, Clients] {
      for (size_t I = static_cast<size_t>(T); I < Lines.size();
           I += static_cast<size_t>(Clients))
        LatenciesMs[I] = requestMs(S, Lines[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return static_cast<double>(Lines.size()) / Wall;
}

/// One open-loop measurement at a fixed offered rate.
struct OpenLoopPoint {
  double OfferedRps = 0;
  double AchievedRps = 0; ///< Ok responses per wall second.
  double OkFraction = 0;  ///< Ok responses / submitted requests.
  double P50Ms = 0, P99Ms = 0;
  bool Sustained = false;
};

/// Drives a fresh Service at OfferedRps from a scheduled-arrival
/// generator. sleep_until a request's scheduled time, submit, never
/// wait for the response: when the service falls behind, requests pile
/// into the queue (or bounce as overloaded) and the latency — measured
/// from the *scheduled* time, not the possibly-late submit — records
/// the pileup. A closed loop would instead slow its own offered rate
/// and report flattering tails.
OpenLoopPoint runOpenLoop(const std::string &Bytes,
                          const std::vector<std::string> &Lines,
                          double OfferedRps) {
  using Clock = std::chrono::steady_clock;
  OpenLoopPoint Point;
  Point.OfferedRps = OfferedRps;
  // About one second of traffic per rate point, bounded so high rates
  // stay affordable and low rates stay statistically meaningful.
  size_t Total = static_cast<size_t>(
      std::min(1200.0, std::max(200.0, OfferedRps)));

  serve::Service S(loadBundle(Bytes));
  std::vector<double> LatMs(Total, -1);
  std::vector<char> Ok(Total, 0);
  std::atomic<size_t> Answered{0};

  auto Interval = std::chrono::duration<double>(1.0 / OfferedRps);
  auto Start = Clock::now();
  {
    telemetry::TraceScope Phase("serve.bench.openloop");
    for (size_t I = 0; I < Total; ++I) {
      auto Scheduled =
          Start + std::chrono::duration_cast<Clock::duration>(
                      Interval * static_cast<double>(I));
      std::this_thread::sleep_until(Scheduled); // No-op once behind.
      S.submit(Lines[I % Lines.size()],
               [&LatMs, &Ok, &Answered, I, Scheduled](std::string Resp) {
                 LatMs[I] = std::chrono::duration<double, std::milli>(
                                Clock::now() - Scheduled)
                                .count();
                 Ok[I] =
                     Resp.find("\"ok\":true") != std::string::npos ? 1 : 0;
                 Answered.fetch_add(1, std::memory_order_relaxed);
               });
    }
    S.drain(); // Every callback has run once drain returns.
  }
  double Wall =
      std::chrono::duration<double>(Clock::now() - Start).count();

  size_t OkCount = 0;
  std::vector<double> OkLat;
  OkLat.reserve(Total);
  for (size_t I = 0; I < Total; ++I)
    if (Ok[I]) {
      ++OkCount;
      OkLat.push_back(LatMs[I]);
    }
  Point.AchievedRps = static_cast<double>(OkCount) / Wall;
  Point.OkFraction =
      static_cast<double>(OkCount) / static_cast<double>(Total);
  Point.P50Ms = latencyPercentile(OkLat, 0.50);
  Point.P99Ms = latencyPercentile(OkLat, 0.99);
  Point.Sustained = Point.AchievedRps >= 0.95 * OfferedRps &&
                    Point.OkFraction >= 0.99 && Point.P99Ms <= 150.0;
  return Point;
}

} // namespace

int main() {
  const std::string Bytes = savedBundle();
  const std::vector<std::string> Lines = requestLines(96);
  const int Clients = 8;

  // Open-loop ladder first, scaled off a quick closed-loop calibration
  // probe: offered rates as multiples of the closed-loop concurrent
  // number, which is machine-relative — the interesting question is how
  // far past the closed-loop ceiling the sharded batcher can be pushed
  // before the queue (not the clients) gives out.
  double ProbeRps;
  {
    serve::ServeConfig Probe;
    Probe.MaxBatch = Clients;
    serve::Service S(loadBundle(Bytes), Probe);
    std::vector<double> Ms;
    ProbeRps = runConcurrent(S, Lines, Clients, Ms);
  }
  const double Multipliers[] = {0.5, 1.0, 2.0, 3.0, 4.0};
  std::vector<OpenLoopPoint> Ladder;
  for (double M : Multipliers)
    Ladder.push_back(runOpenLoop(Bytes, Lines, M * ProbeRps));
  const OpenLoopPoint *Best = nullptr;
  for (const OpenLoopPoint &P : Ladder)
    if (P.Sustained && (!Best || P.OfferedRps > Best->OfferedRps))
      Best = &P;
  // Nothing sustained: report the gentlest point so the latency gauges
  // still describe a real measurement instead of vanishing.
  if (!Best)
    Best = &Ladder.front();

  // The ladder deliberately drives the service deep into overload;
  // wipe its traffic out of the registry so the stage/phase histograms
  // below describe the closed-loop runs alone — the same semantics the
  // committed trajectory baselines were recorded with. (The train-time
  // spans from savedBundle() are wiped with it; the training benches
  // own those numbers.)
  telemetry::MetricsRegistry::global().reset();

  // Sequential client: flush immediately — with exactly one request in
  // flight, waiting for stragglers is pure added latency.
  serve::ServeConfig SingleConfig;
  SingleConfig.FlushMicros = 0;
  double SingleRps;
  std::vector<double> SingleMs;
  {
    serve::Service S(loadBundle(Bytes), SingleConfig);
    SingleRps = runSingle(S, Lines, SingleMs);
  }

  // Concurrent clients: batch size matched to the closed-loop client
  // count so full batches flush on size, not on the straggler deadline
  // — with N blocking clients there are never more than N requests in
  // flight, so a larger MaxBatch would wait out FlushMicros every round.
  serve::ServeConfig ConcurrentConfig;
  ConcurrentConfig.MaxBatch = Clients;
  double ConcurrentRps;
  std::vector<double> ConcurrentMs;
  {
    serve::Service S(loadBundle(Bytes), ConcurrentConfig);
    ConcurrentRps = runConcurrent(S, Lines, Clients, ConcurrentMs);
  }

  double SingleP50 = latencyPercentile(SingleMs, 0.50);
  double SingleP99 = latencyPercentile(SingleMs, 0.99);
  double ConcurrentP50 = latencyPercentile(ConcurrentMs, 0.50);
  double ConcurrentP99 = latencyPercentile(ConcurrentMs, 0.99);

  // Worker scaling: the same closed-loop concurrent load against a
  // single batcher worker. Only meaningful (and only emitted) with ≥2
  // cores — on one core the "speedup" would just measure contention.
  size_t Cores = parallel::availableConcurrency();
  double WorkerSpeedup = 0;
  double OneWorkerRps = 0;
  if (Cores >= 2) {
    serve::ServeConfig OneWorker;
    OneWorker.MaxBatch = Clients;
    OneWorker.Workers = 1;
    serve::Service S(loadBundle(Bytes), OneWorker);
    std::vector<double> Ms;
    OneWorkerRps = runConcurrent(S, Lines, Clients, Ms);
    if (OneWorkerRps > 0)
      WorkerSpeedup = ConcurrentRps / OneWorkerRps;
  }

  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("parallel.bench.cores").set(static_cast<double>(Cores));
  if (WorkerSpeedup > 0)
    Reg.gauge("serve.workers.speedup").set(WorkerSpeedup);
  Reg.gauge("serve.openloop.max_sustained_per_sec")
      .set(Best->Sustained ? Best->OfferedRps : 0.0);
  Reg.gauge("serve.openloop.offered_per_sec").set(Best->OfferedRps);
  Reg.gauge("serve.openloop.achieved_per_sec").set(Best->AchievedRps);
  Reg.gauge("serve.openloop.latency_ms.p50").set(Best->P50Ms);
  Reg.gauge("serve.openloop.latency_ms.p99").set(Best->P99Ms);
  Reg.gauge("serve.requests_per_sec").set(ConcurrentRps);
  Reg.gauge("serve.requests_per_sec.single").set(SingleRps);
  Reg.gauge("serve.requests_per_sec.concurrent").set(ConcurrentRps);
  // Closed-loop latency beside throughput, so the trajectory gate can
  // catch a change that holds rps but trades away tail latency.
  Reg.gauge("serve.latency_ms.p50").set(ConcurrentP50);
  Reg.gauge("serve.latency_ms.p99").set(ConcurrentP99);
  Reg.gauge("serve.latency_ms.p50.single").set(SingleP50);
  Reg.gauge("serve.latency_ms.p99.single").set(SingleP99);
  Reg.gauge("serve.latency_ms.p50.concurrent").set(ConcurrentP50);
  Reg.gauge("serve.latency_ms.p99.concurrent").set(ConcurrentP99);

  TablePrinter Out("pigeon serve throughput (" +
                   std::to_string(Lines.size()) + " requests)");
  Out.setHeader({"Mode", "Clients", "Requests/s", "p50 ms", "p99 ms"});
  char Buf[32], P50Buf[32], P99Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", SingleRps);
  std::snprintf(P50Buf, sizeof(P50Buf), "%.2f", SingleP50);
  std::snprintf(P99Buf, sizeof(P99Buf), "%.2f", SingleP99);
  Out.addRow({"sequential", "1", Buf, P50Buf, P99Buf});
  std::snprintf(Buf, sizeof(Buf), "%.1f", ConcurrentRps);
  std::snprintf(P50Buf, sizeof(P50Buf), "%.2f", ConcurrentP50);
  std::snprintf(P99Buf, sizeof(P99Buf), "%.2f", ConcurrentP99);
  Out.addRow({"concurrent", std::to_string(Clients), Buf, P50Buf, P99Buf});
  Out.print(std::cout);

  TablePrinter OpenLoop("open-loop offered-rate ladder (" +
                        std::to_string(Cores) + " cores, " +
                        std::to_string(parallel::hardwareConcurrency()) +
                        " hw threads)");
  OpenLoop.setHeader(
      {"Offered rps", "Achieved rps", "Ok %", "p50 ms", "p99 ms",
       "Sustained"});
  for (const OpenLoopPoint &P : Ladder) {
    char Off[32], Ach[32], OkPct[32];
    std::snprintf(Off, sizeof(Off), "%.0f", P.OfferedRps);
    std::snprintf(Ach, sizeof(Ach), "%.0f", P.AchievedRps);
    std::snprintf(OkPct, sizeof(OkPct), "%.1f", 100.0 * P.OkFraction);
    std::snprintf(P50Buf, sizeof(P50Buf), "%.2f", P.P50Ms);
    std::snprintf(P99Buf, sizeof(P99Buf), "%.2f", P.P99Ms);
    OpenLoop.addRow({Off, Ach, OkPct, P50Buf, P99Buf,
                     P.Sustained ? "yes" : "no"});
  }
  OpenLoop.print(std::cout);

  // Where the milliseconds went: the serve.stage.* histograms both
  // Service instances observed into, one row per pipeline stage.
  TablePrinter Stages("per-stage latency, all " +
                      std::to_string(2 * Lines.size()) + " requests");
  Stages.setHeader({"Stage", "p50 ms", "p99 ms", "Count"});
  for (const char *Stage : serve::StageNames) {
    auto &H = Reg.histogram("serve.stage." + std::string(Stage) + ".seconds",
                            telemetry::timeBounds());
    if (H.count() == 0)
      continue;
    std::snprintf(P50Buf, sizeof(P50Buf), "%.3f", H.percentile(0.50) * 1e3);
    std::snprintf(P99Buf, sizeof(P99Buf), "%.3f", H.percentile(0.99) * 1e3);
    Stages.addRow({Stage, P50Buf, P99Buf, std::to_string(H.count())});
  }
  Stages.print(std::cout);

  bench::writeBenchSidecar("bench_serve");

  // Multi-core acceptance floor, opt-in so single-core containers don't
  // fail vacuously: PIGEON_BENCH_MIN_OPENLOOP_X=3 demands the open-loop
  // max-sustained rate reach 3× the *single-worker* closed-loop
  // concurrent number — the old single-batcher baseline, re-measured on
  // this machine — on ≥4 cores.
  if (const char *Env = std::getenv("PIGEON_BENCH_MIN_OPENLOOP_X")) {
    double MinX = std::atof(Env);
    if (MinX > 0 && Cores >= 4 && OneWorkerRps > 0) {
      double MaxSustained = Best->Sustained ? Best->OfferedRps : 0.0;
      if (MaxSustained < MinX * OneWorkerRps) {
        std::fprintf(stderr,
                     "error: open-loop max sustained rate (%.1f rps) is "
                     "below %.1fx the single-worker concurrent rate (%.1f "
                     "rps) on %zu cores\n",
                     MaxSustained, MinX, OneWorkerRps, Cores);
        return 1;
      }
    }
  }

  if (ConcurrentRps <= SingleRps) {
    std::fprintf(stderr,
                 "error: concurrent throughput (%.1f rps) did not beat the "
                 "sequential client (%.1f rps) — batching is not paying for "
                 "itself\n",
                 ConcurrentRps, SingleRps);
    return 1;
  }
  return 0;
}
