//===- bench_serve.cpp - Resident service throughput bench -----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures the resident prediction service: requests/second for one
/// sequential client versus several concurrent clients over the same
/// trained bundle. The concurrent number is the one micro-batching
/// exists for — overlapping clients coalesce into predictBatch calls
/// and the parallel parse front-half — so the bench fails (exit 1) if
/// concurrency does not beat the sequential client: that would mean the
/// batching pipeline costs more than it amortizes.
///
/// Sidecar gauges (`serve.requests_per_sec*`) feed the bench-trajectory
/// throughput gate like every other `per_sec` metric.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ContextsIO.h"
#include "core/ModelIO.h"
#include "serve/Serve.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

/// Requests are held-out sources: a fresh seed the training corpus never
/// saw, exercising the novel-symbol remap path like real traffic would.
std::vector<std::string> requestLines(int Count) {
  datagen::CorpusSpec Spec =
      datagen::defaultSpec(Language::JavaScript, bench::BenchSeed + 1);
  Spec.NumProjects = 8;
  std::vector<datagen::SourceFile> Files = datagen::generateCorpus(Spec);
  std::vector<std::string> Lines;
  for (int I = 0; I < Count; ++I)
    Lines.push_back(
        "{\"id\":" + std::to_string(I) + ",\"lang\":\"js\",\"source\":" +
        telemetry::jsonString(Files[I % Files.size()].Text) + "}");
  return Lines;
}

std::string savedBundle() {
  Corpus C = bench::benchCorpus(Language::JavaScript, /*Projects=*/24);
  ContextsArtifact Art = buildContextsArtifact(
      C, Task::VariableNames,
      bench::tunedOptions(Language::JavaScript, Task::VariableNames));
  ModelBundle Bundle;
  Bundle.Lang = Art.Lang;
  Bundle.TaskKind = Art.TaskKind;
  Bundle.Extraction = Art.Extraction;
  Bundle.Interner = std::move(Art.Interner);
  Bundle.Table = std::move(Art.Table);
  crf::ElementSelector Selector = selectorFor(Art.TaskKind);
  std::vector<crf::CrfGraph> Graphs;
  for (const FileRecord &Rec : Art.Files)
    Graphs.push_back(buildGraphFromRecord(Rec, Selector));
  {
    telemetry::TraceScope Phase("train");
    Bundle.Model.train(Graphs);
  }
  std::stringstream Buffer;
  saveModel(Buffer, Bundle);
  return Buffer.str();
}

std::unique_ptr<ModelBundle> loadBundle(const std::string &Bytes) {
  std::stringstream Buffer(Bytes);
  return loadModel(Buffer);
}

double runSingle(serve::Service &S, const std::vector<std::string> &Lines) {
  telemetry::TraceScope Phase("serve.bench.single");
  auto Start = std::chrono::steady_clock::now();
  for (const std::string &Line : Lines)
    S.handleOne(Line);
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return static_cast<double>(Lines.size()) / Wall;
}

double runConcurrent(serve::Service &S, const std::vector<std::string> &Lines,
                     int Clients) {
  telemetry::TraceScope Phase("serve.bench.concurrent");
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (int T = 0; T < Clients; ++T)
    Threads.emplace_back([&S, &Lines, T, Clients] {
      for (size_t I = static_cast<size_t>(T); I < Lines.size();
           I += static_cast<size_t>(Clients))
        S.handleOne(Lines[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return static_cast<double>(Lines.size()) / Wall;
}

} // namespace

int main() {
  const std::string Bytes = savedBundle();
  const std::vector<std::string> Lines = requestLines(96);
  const int Clients = 8;

  // Sequential client: flush immediately — with exactly one request in
  // flight, waiting for stragglers is pure added latency.
  serve::ServeConfig SingleConfig;
  SingleConfig.FlushMicros = 0;
  double SingleRps;
  {
    serve::Service S(loadBundle(Bytes), SingleConfig);
    SingleRps = runSingle(S, Lines);
  }

  // Concurrent clients: batch size matched to the closed-loop client
  // count so full batches flush on size, not on the straggler deadline
  // — with N blocking clients there are never more than N requests in
  // flight, so a larger MaxBatch would wait out FlushMicros every round.
  serve::ServeConfig ConcurrentConfig;
  ConcurrentConfig.MaxBatch = Clients;
  double ConcurrentRps;
  {
    serve::Service S(loadBundle(Bytes), ConcurrentConfig);
    ConcurrentRps = runConcurrent(S, Lines, Clients);
  }

  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("serve.requests_per_sec").set(ConcurrentRps);
  Reg.gauge("serve.requests_per_sec.single").set(SingleRps);
  Reg.gauge("serve.requests_per_sec.concurrent").set(ConcurrentRps);

  TablePrinter Out("pigeon serve throughput (" +
                   std::to_string(Lines.size()) + " requests)");
  Out.setHeader({"Mode", "Clients", "Requests/s"});
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", SingleRps);
  Out.addRow({"sequential", "1", Buf});
  std::snprintf(Buf, sizeof(Buf), "%.1f", ConcurrentRps);
  Out.addRow({"concurrent", std::to_string(Clients), Buf});
  Out.print(std::cout);

  bench::writeBenchSidecar("bench_serve");

  if (ConcurrentRps <= SingleRps) {
    std::fprintf(stderr,
                 "error: concurrent throughput (%.1f rps) did not beat the "
                 "sequential client (%.1f rps) — batching is not paying for "
                 "itself\n",
                 ConcurrentRps, SingleRps);
    return 1;
  }
  return 0;
}
