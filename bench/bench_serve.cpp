//===- bench_serve.cpp - Resident service throughput bench -----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures the resident prediction service: requests/second for one
/// sequential client versus several concurrent clients over the same
/// trained bundle. The concurrent number is the one micro-batching
/// exists for — overlapping clients coalesce into predictBatch calls
/// and the parallel parse front-half — so the bench fails (exit 1) if
/// concurrency does not beat the sequential client: that would mean the
/// batching pipeline costs more than it amortizes.
///
/// Sidecar gauges (`serve.requests_per_sec*`) feed the bench-trajectory
/// throughput gate like every other `per_sec` metric.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ContextsIO.h"
#include "core/ModelIO.h"
#include "serve/Serve.h"
#include "serve/SlowLog.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

/// Requests are held-out sources: a fresh seed the training corpus never
/// saw, exercising the novel-symbol remap path like real traffic would.
std::vector<std::string> requestLines(int Count) {
  datagen::CorpusSpec Spec =
      datagen::defaultSpec(Language::JavaScript, bench::BenchSeed + 1);
  Spec.NumProjects = 8;
  std::vector<datagen::SourceFile> Files = datagen::generateCorpus(Spec);
  std::vector<std::string> Lines;
  for (int I = 0; I < Count; ++I)
    Lines.push_back(
        "{\"id\":" + std::to_string(I) + ",\"lang\":\"js\",\"source\":" +
        telemetry::jsonString(Files[I % Files.size()].Text) + "}");
  return Lines;
}

std::string savedBundle() {
  Corpus C = bench::benchCorpus(Language::JavaScript, /*Projects=*/24);
  ContextsArtifact Art = buildContextsArtifact(
      C, Task::VariableNames,
      bench::tunedOptions(Language::JavaScript, Task::VariableNames));
  ModelBundle Bundle;
  Bundle.Lang = Art.Lang;
  Bundle.TaskKind = Art.TaskKind;
  Bundle.Extraction = Art.Extraction;
  Bundle.Interner = std::move(Art.Interner);
  Bundle.Table = std::move(Art.Table);
  crf::ElementSelector Selector = selectorFor(Art.TaskKind);
  std::vector<crf::CrfGraph> Graphs;
  for (const FileRecord &Rec : Art.Files)
    Graphs.push_back(buildGraphFromRecord(Rec, Selector));
  {
    telemetry::TraceScope Phase("train");
    Bundle.Model.train(Graphs);
  }
  std::stringstream Buffer;
  saveModel(Buffer, Bundle);
  return Buffer.str();
}

std::unique_ptr<ModelBundle> loadBundle(const std::string &Bytes) {
  std::stringstream Buffer(Bytes);
  return loadModel(Buffer);
}

/// Closed-loop percentile over per-request milliseconds (nearest-rank on
/// the sorted sample — exact for these small Ns, no bucketing error).
double latencyPercentile(std::vector<double> LatenciesMs, double P) {
  if (LatenciesMs.empty())
    return 0;
  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  size_t Rank = static_cast<size_t>(P * static_cast<double>(
                                            LatenciesMs.size() - 1));
  return LatenciesMs[Rank];
}

double requestMs(serve::Service &S, const std::string &Line) {
  auto T0 = std::chrono::steady_clock::now();
  S.handleOne(Line);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

double runSingle(serve::Service &S, const std::vector<std::string> &Lines,
                 std::vector<double> &LatenciesMs) {
  telemetry::TraceScope Phase("serve.bench.single");
  LatenciesMs.reserve(Lines.size());
  auto Start = std::chrono::steady_clock::now();
  for (const std::string &Line : Lines)
    LatenciesMs.push_back(requestMs(S, Line));
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return static_cast<double>(Lines.size()) / Wall;
}

double runConcurrent(serve::Service &S, const std::vector<std::string> &Lines,
                     int Clients, std::vector<double> &LatenciesMs) {
  telemetry::TraceScope Phase("serve.bench.concurrent");
  LatenciesMs.assign(Lines.size(), 0);
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (int T = 0; T < Clients; ++T)
    Threads.emplace_back([&S, &Lines, &LatenciesMs, T, Clients] {
      for (size_t I = static_cast<size_t>(T); I < Lines.size();
           I += static_cast<size_t>(Clients))
        LatenciesMs[I] = requestMs(S, Lines[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return static_cast<double>(Lines.size()) / Wall;
}

} // namespace

int main() {
  const std::string Bytes = savedBundle();
  const std::vector<std::string> Lines = requestLines(96);
  const int Clients = 8;

  // Sequential client: flush immediately — with exactly one request in
  // flight, waiting for stragglers is pure added latency.
  serve::ServeConfig SingleConfig;
  SingleConfig.FlushMicros = 0;
  double SingleRps;
  std::vector<double> SingleMs;
  {
    serve::Service S(loadBundle(Bytes), SingleConfig);
    SingleRps = runSingle(S, Lines, SingleMs);
  }

  // Concurrent clients: batch size matched to the closed-loop client
  // count so full batches flush on size, not on the straggler deadline
  // — with N blocking clients there are never more than N requests in
  // flight, so a larger MaxBatch would wait out FlushMicros every round.
  serve::ServeConfig ConcurrentConfig;
  ConcurrentConfig.MaxBatch = Clients;
  double ConcurrentRps;
  std::vector<double> ConcurrentMs;
  {
    serve::Service S(loadBundle(Bytes), ConcurrentConfig);
    ConcurrentRps = runConcurrent(S, Lines, Clients, ConcurrentMs);
  }

  double SingleP50 = latencyPercentile(SingleMs, 0.50);
  double SingleP99 = latencyPercentile(SingleMs, 0.99);
  double ConcurrentP50 = latencyPercentile(ConcurrentMs, 0.50);
  double ConcurrentP99 = latencyPercentile(ConcurrentMs, 0.99);

  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.gauge("serve.requests_per_sec").set(ConcurrentRps);
  Reg.gauge("serve.requests_per_sec.single").set(SingleRps);
  Reg.gauge("serve.requests_per_sec.concurrent").set(ConcurrentRps);
  // Closed-loop latency beside throughput, so the trajectory gate can
  // catch a change that holds rps but trades away tail latency.
  Reg.gauge("serve.latency_ms.p50").set(ConcurrentP50);
  Reg.gauge("serve.latency_ms.p99").set(ConcurrentP99);
  Reg.gauge("serve.latency_ms.p50.single").set(SingleP50);
  Reg.gauge("serve.latency_ms.p99.single").set(SingleP99);
  Reg.gauge("serve.latency_ms.p50.concurrent").set(ConcurrentP50);
  Reg.gauge("serve.latency_ms.p99.concurrent").set(ConcurrentP99);

  TablePrinter Out("pigeon serve throughput (" +
                   std::to_string(Lines.size()) + " requests)");
  Out.setHeader({"Mode", "Clients", "Requests/s", "p50 ms", "p99 ms"});
  char Buf[32], P50Buf[32], P99Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", SingleRps);
  std::snprintf(P50Buf, sizeof(P50Buf), "%.2f", SingleP50);
  std::snprintf(P99Buf, sizeof(P99Buf), "%.2f", SingleP99);
  Out.addRow({"sequential", "1", Buf, P50Buf, P99Buf});
  std::snprintf(Buf, sizeof(Buf), "%.1f", ConcurrentRps);
  std::snprintf(P50Buf, sizeof(P50Buf), "%.2f", ConcurrentP50);
  std::snprintf(P99Buf, sizeof(P99Buf), "%.2f", ConcurrentP99);
  Out.addRow({"concurrent", std::to_string(Clients), Buf, P50Buf, P99Buf});
  Out.print(std::cout);

  // Where the milliseconds went: the serve.stage.* histograms both
  // Service instances observed into, one row per pipeline stage.
  TablePrinter Stages("per-stage latency, all " +
                      std::to_string(2 * Lines.size()) + " requests");
  Stages.setHeader({"Stage", "p50 ms", "p99 ms", "Count"});
  for (const char *Stage : serve::StageNames) {
    auto &H = Reg.histogram("serve.stage." + std::string(Stage) + ".seconds",
                            telemetry::timeBounds());
    if (H.count() == 0)
      continue;
    std::snprintf(P50Buf, sizeof(P50Buf), "%.3f", H.percentile(0.50) * 1e3);
    std::snprintf(P99Buf, sizeof(P99Buf), "%.3f", H.percentile(0.99) * 1e3);
    Stages.addRow({Stage, P50Buf, P99Buf, std::to_string(H.count())});
  }
  Stages.print(std::cout);

  bench::writeBenchSidecar("bench_serve");

  if (ConcurrentRps <= SingleRps) {
    std::fprintf(stderr,
                 "error: concurrent throughput (%.1f rps) did not beat the "
                 "sequential client (%.1f rps) — batching is not paying for "
                 "itself\n",
                 ConcurrentRps, SingleRps);
    return 1;
  }
  return 0;
}
