//===- SlowLog.cpp - Tail-latency forensics for pigeon serve ---------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "serve/SlowLog.h"

#include "support/EventLog.h"
#include "support/TablePrinter.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>

using namespace pigeon;
using namespace pigeon::serve;

const std::array<const char *, NumStages> serve::StageNames = {
    "queue", "seal", "parse", "remap", "predict", "render"};

//===----------------------------------------------------------------------===//
// Entry rendering / parsing
//===----------------------------------------------------------------------===//

std::string serve::renderSlowLogEntry(const RequestSample &S,
                                      const std::vector<uint64_t> &BatchRids,
                                      double UptimeSeconds) {
  std::string Out = "{\"schema\":\"pigeon.slowlog.v1\",\"rid\":" +
                    std::to_string(S.Rid) + ",\"id\":" + S.IdJson +
                    ",\"ok\":" + (S.Ok ? "true" : "false") + ",\"code\":" +
                    (S.Ok ? std::string("null") : telemetry::jsonString(S.Code)) +
                    ",\"total_ms\":" + telemetry::jsonNumber(S.TotalMs);
  for (size_t I = 0; I < NumStages; ++I) {
    Out += ",\"";
    Out += StageNames[I];
    Out += "_ms\":";
    Out += telemetry::jsonNumber(S.StageMs[I]);
  }
  Out += ",\"batch_size\":" + std::to_string(S.BatchSize) +
         ",\"depth_at_admit\":" + std::to_string(S.DepthAtAdmit) +
         ",\"batch_rids\":[";
  for (size_t I = 0; I < BatchRids.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(BatchRids[I]);
  }
  Out += "],\"uptime_seconds\":" + telemetry::jsonNumber(UptimeSeconds) + "}";
  return Out;
}

namespace {

/// Re-renders a scalar JSON value (request-id echoes) back to text.
std::string rerenderScalar(const json::Value &V) {
  switch (V.kind()) {
  case json::Value::Kind::Bool:
    return V.boolean() ? "true" : "false";
  case json::Value::Kind::Number:
    return telemetry::jsonNumber(V.number());
  case json::Value::Kind::String:
    return telemetry::jsonString(V.str());
  default:
    return "null";
  }
}

double numField(const json::Value &Doc, const char *Key, double Default) {
  const json::Value *V = Doc.find(Key);
  return V && V->isNumber() ? V->number() : Default;
}

} // namespace

std::optional<RequestSample>
serve::parseRequestSample(const json::Value &Doc) {
  if (!Doc.isObject())
    return std::nullopt;

  auto Common = [&](RequestSample &S) {
    S.Rid = static_cast<uint64_t>(numField(Doc, "rid", 0));
    if (const json::Value *Id = Doc.find("id"))
      S.IdJson = rerenderScalar(*Id);
    if (const json::Value *Ok = Doc.find("ok"))
      S.Ok = Ok->isBool() ? Ok->boolean() : true;
    if (const json::Value *Code = Doc.find("code"))
      if (Code->isString())
        S.Code = Code->str();
    S.BatchSize = static_cast<uint64_t>(numField(Doc, "batch_size", 0));
    S.DepthAtAdmit =
        static_cast<uint64_t>(numField(Doc, "depth_at_admit", 0));
  };

  const json::Value *Schema = Doc.find("schema");
  if (Schema && Schema->isString() && Schema->str() == "pigeon.slowlog.v1") {
    RequestSample S;
    Common(S);
    S.TotalMs = numField(Doc, "total_ms", 0);
    for (size_t I = 0; I < NumStages; ++I)
      S.StageMs[I] =
          numField(Doc, (std::string(StageNames[I]) + "_ms").c_str(), 0);
    return S;
  }

  const json::Value *Event = Doc.find("event");
  if (Event && Event->isString() && Event->str() == "serve.request") {
    // Event records carry seconds (the stream's native unit); batch
    // context uses the short field names of pigeon.events.v1.
    RequestSample S;
    Common(S);
    S.TotalMs = numField(Doc, "wall", 0) * 1000.0;
    for (size_t I = 0; I < NumStages; ++I)
      S.StageMs[I] = numField(Doc, StageNames[I], 0) * 1000.0;
    S.BatchSize = static_cast<uint64_t>(numField(Doc, "batch", 0));
    S.DepthAtAdmit = static_cast<uint64_t>(numField(Doc, "depth", 0));
    return S;
  }

  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// SlowLog
//===----------------------------------------------------------------------===//

SlowLog &SlowLog::global() {
  static SlowLog Instance;
  return Instance;
}

void SlowLog::open(const std::string &OpenPath, size_t Cap) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Path = OpenPath;
  MaxBytes = Cap;
  CurBytes = 0;
  Dirty = false;
  Entries.clear();
  Appended.store(0, std::memory_order_relaxed);
  Evicted.store(0, std::memory_order_relaxed);
  On.store(true, std::memory_order_release);
}

void SlowLog::close() {
  flush();
  std::lock_guard<std::mutex> Lock(Mutex);
  On.store(false, std::memory_order_release);
  Entries.clear();
  CurBytes = 0;
  Path.clear();
}

void SlowLog::append(std::string Line) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  CurBytes += Line.size() + 1;
  Entries.push_back(std::move(Line));
  // Byte-capped ring: evict oldest first, but always keep the newest
  // entry even when it alone exceeds the cap.
  while (CurBytes > MaxBytes && Entries.size() > 1) {
    CurBytes -= Entries.front().size() + 1;
    Entries.pop_front();
    Evicted.fetch_add(1, std::memory_order_relaxed);
  }
  Appended.fetch_add(1, std::memory_order_relaxed);
  Dirty = true;
}

bool SlowLog::flush() {
  std::string Body, Dest;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!On.load(std::memory_order_acquire) || !Dirty)
      return true;
    for (const std::string &E : Entries) {
      Body += E;
      Body += '\n';
    }
    Dest = Path;
    Dirty = false;
  }
  return telemetry::writeFileAtomic(Dest, Body);
}

std::vector<std::string> SlowLog::lines() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return {Entries.begin(), Entries.end()};
}

//===----------------------------------------------------------------------===//
// Report folding
//===----------------------------------------------------------------------===//

namespace {

/// Nearest-rank percentile over a sorted sample vector (the same rule
/// bench_serve applies to its latency gauges).
double percentileSorted(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(
      std::ceil(Q * static_cast<double>(Sorted.size())));
  if (Rank == 0)
    Rank = 1;
  return Sorted[std::min(Rank, Sorted.size()) - 1];
}

} // namespace

LatencyReport serve::foldSamples(std::vector<RequestSample> Samples,
                                 size_t TopK) {
  LatencyReport R;
  R.Samples = Samples.size();
  if (Samples.empty())
    return R;

  std::vector<double> Totals;
  Totals.reserve(Samples.size());
  double GrandTotal = 0;
  std::array<std::vector<double>, NumStages> PerStage;
  std::array<double, NumStages> StageSum{};
  for (const RequestSample &S : Samples) {
    Totals.push_back(S.TotalMs);
    GrandTotal += S.TotalMs;
    for (size_t I = 0; I < NumStages; ++I) {
      PerStage[I].push_back(S.StageMs[I]);
      StageSum[I] += S.StageMs[I];
    }
  }
  std::sort(Totals.begin(), Totals.end());
  R.TotalP50Ms = percentileSorted(Totals, 0.50);
  R.TotalP99Ms = percentileSorted(Totals, 0.99);

  for (size_t I = 0; I < NumStages; ++I) {
    std::vector<double> &V = PerStage[I];
    std::sort(V.begin(), V.end());
    StageStats &St = R.Stages[I];
    St.Count = V.size();
    St.MeanMs = StageSum[I] / static_cast<double>(V.size());
    St.P50Ms = percentileSorted(V, 0.50);
    St.P99Ms = percentileSorted(V, 0.99);
    St.MaxMs = V.back();
    St.Share = GrandTotal > 0 ? StageSum[I] / GrandTotal : 0;
  }

  std::sort(Samples.begin(), Samples.end(),
            [](const RequestSample &A, const RequestSample &B) {
              if (A.TotalMs != B.TotalMs)
                return A.TotalMs > B.TotalMs;
              return A.Rid < B.Rid;
            });
  if (Samples.size() > TopK)
    Samples.resize(TopK);
  R.Slowest = std::move(Samples);
  return R;
}

void serve::renderLatencyReport(std::ostream &OS, const LatencyReport &R) {
  TablePrinter Decomp("latency decomposition (" + std::to_string(R.Samples) +
                      " requests, total p50 " +
                      TablePrinter::num(R.TotalP50Ms, 3) + " ms / p99 " +
                      TablePrinter::num(R.TotalP99Ms, 3) + " ms)");
  Decomp.setHeader(
      {"stage", "p50 ms", "p99 ms", "mean ms", "max ms", "share"});
  for (size_t I = 0; I < NumStages; ++I) {
    const StageStats &St = R.Stages[I];
    Decomp.addRow({StageNames[I], TablePrinter::num(St.P50Ms, 3),
                   TablePrinter::num(St.P99Ms, 3),
                   TablePrinter::num(St.MeanMs, 3),
                   TablePrinter::num(St.MaxMs, 3),
                   TablePrinter::percent(St.Share)});
  }
  Decomp.print(OS);

  if (R.Slowest.empty())
    return;
  OS << "\n";
  TablePrinter Slow("slowest requests");
  std::vector<std::string> Header = {"rid", "id", "total ms"};
  for (const char *Stage : StageNames)
    Header.push_back(Stage);
  Header.push_back("batch");
  Header.push_back("ok");
  Slow.setHeader(std::move(Header));
  for (const RequestSample &S : R.Slowest) {
    std::vector<std::string> Row = {std::to_string(S.Rid), S.IdJson,
                                    TablePrinter::num(S.TotalMs, 3)};
    for (size_t I = 0; I < NumStages; ++I)
      Row.push_back(TablePrinter::num(S.StageMs[I], 3));
    Row.push_back(std::to_string(S.BatchSize));
    Row.push_back(S.Ok ? "yes" : S.Code.empty() ? "no" : S.Code);
    Slow.addRow(std::move(Row));
  }
  Slow.print(OS);
}
