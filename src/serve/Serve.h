//===- Serve.h - Resident prediction service --------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident inference path behind `pigeon serve`: load a model bundle
/// once, then answer newline-delimited JSON requests for as long as the
/// process lives — the serving shape of the paper's pitch (JSNice-style
/// interactive queries over real codebases) and of the ROADMAP's
/// heavy-traffic north star. One-shot `pigeon predict` pays process
/// startup plus full bundle deserialization per prediction; the service
/// pays them once.
///
/// Protocol (schema `pigeon.serve.v1`), one JSON object per line:
///
///   request:  {"id": <scalar, optional>, "lang": "js", "task": "vars",
///              "source": "...", "k": 3, "explain": false,
///              "deadline_ms": 50, "timing": false}
///   response: {"schema": "pigeon.serve.v1", "rid": 7, "id": <echo>,
///              "ok": true,
///              "predictions": [{"element": ..., "kind": ...,
///                "candidates": [{"label": ..., "score": ...}, ...],
///                "explain": [...]}]}
///   error:    {"schema": "pigeon.serve.v1", "rid": 7, "id": <echo>,
///              "ok": false,
///              "error": {"code": "unknown_lang", "message": "..."}}
///
/// `rid` is the request id the service assigned at admission: unique
/// across every connection of the serving process, in admission order,
/// and the join key between a response, its `serve.request` event
/// record, and its slow-log capture. Admission-time rejections
/// (`overloaded`, `shutting_down`) happen before a rid is assigned and
/// omit the field.
///
/// `task` defaults to the loaded bundle's task; `k` to ServeConfig's
/// DefaultK. A request that fails to decode or validate produces a
/// structured error record and never takes the server down.
///
/// Execution model: requests enter a bounded admission queue sharded
/// across ServeConfig::Workers batcher workers (a full queue answers
/// `overloaded` immediately instead of blocking the reader; admission
/// picks the shallowest shard). Each worker accumulates its shard into
/// micro-batches — flushed when MaxBatch requests are pending or
/// FlushMicros elapsed since the batch opened — then runs the pipeline
/// per batch:
///
///   decode (serial) → parse (support/Parallel pool, one private
///   interner per request) → extract+assemble (per-request delta
///   overlays of the bundle's path table) → predict
///   (CrfModel::predictBatch, sharded) → render + deliver in admission
///   order within the batch.
///
/// Nothing in this pipeline writes the resident bundle: parsing and
/// extraction intern novel strings/paths into *per-request* delta
/// overlays that are dropped with the request, so N workers share the
/// bundle read-only (share-nothing scaling, and a hostile stream of
/// novel identifiers cannot grow the resident tables). The overlay
/// assigns provisional ids in the same first-encounter order a fresh
/// bundle would, novel features carry no trained weight either way, and
/// rendering resolves ids back through strings — so a served response
/// is byte-identical to a one-shot `pigeon predict` at any worker count
/// and for any batch composition (pinned by serve_test). Per-request
/// deadlines are enforced at decode time; a request whose deadline
/// passed while queued answers `deadline_exceeded` without paying for
/// parse or inference.
///
/// Everything is wired into Telemetry/EventLog: `serve.requests`,
/// `serve.batch.size`, per-phase `serve.<phase>.wall.seconds`
/// histograms (p50/p99 in every sidecar), and per-request
/// `serve.request` event records nested under `serve.batch` spans.
/// Request latency, batch size and queue depth additionally feed
/// sliding-window histograms (WindowedHistogram) so a resident server
/// exposes live last-minute percentiles, not just since-start ones.
///
/// Request lifecycle: the batcher stamps a monotonic timestamp at each
/// pipeline boundary — t_admit, t_batch_open, t_batch_seal,
/// t_parse_done, t_remap_done, t_predict_done, t_respond — and the six
/// consecutive differences are the stage durations `queue` (admission
/// queue wait), `seal` (straggler-flush wait), `parse` (decode + parse),
/// `remap` (bundle-space remap + extract + graph assembly), `predict`,
/// `render`. By construction they sum to the request's total latency.
/// Each stage feeds `serve.stage.<name>.seconds` (cumulative + windowed)
/// and rides on the `serve.request` event record; `"timing": true` in a
/// request echoes the same decomposition inline as a `"timing"` object
/// on the (ok) response. Requests slower than ServeConfig::SlowTraceMs
/// (fallback: SloP99Ms) are additionally captured to the process
/// SlowLog (see SlowLog.h) with their batch context. Responses without
/// `"timing"` are unchanged by all of this except the `rid` field.
///
/// The service also enables the EventLog flight recorder (a ring of the
/// last ServeConfig::FlightRecorder event records, captured even without
/// `--trace`) so the admin plane and fatal-path diagnostics can always
/// show the moments before an incident.
///
/// Admin protocol (schema `pigeon.admin.v1`): a request line carrying an
/// `"admin"` field instead of `lang`/`source` is answered synchronously
/// on the submitting thread — before admission control, so introspection
/// works during overload and drain, and admin traffic never counts
/// against `serve.requests` or occupies queue slots:
///
///   {"id": 7, "admin": "metrics"}  → full pigeon.metrics.v1 snapshot
///   {"admin": "health"}            → bundle identity, uptime, in-flight
///                                    count, queue + drain state, plus a
///                                    `window` object with the live
///                                    request rate and error rate
///   {"admin": "slo"}               → `--slo-p99-ms` target vs. the
///                                    windowed p99 of serve.request.seconds
///   {"admin": "profile"}           → phase-profiler folded stacks
///   {"admin": "prom"}              → Prometheus text exposition (string)
///   {"admin": "flightrec"}         → flight-recorder snapshot: the last
///                                    N event records, embedded verbatim
///
/// Unknown verbs answer a structured `bad_request` error under the
/// pigeon.admin.v1 schema.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SERVE_SERVE_H
#define PIGEON_SERVE_SERVE_H

#include "core/ModelIO.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace pigeon {
namespace serve {

/// Tuning knobs of the resident service. The defaults favour latency:
/// a couple of milliseconds of batching delay buys amortized inference
/// without a human-visible stall.
struct ServeConfig {
  /// Parallel batcher workers, each with its own admission-queue shard.
  /// 0 (the default) resolves to the hardware thread count.
  size_t Workers = 0;
  /// Flush a batch once this many requests are pending.
  size_t MaxBatch = 16;
  /// Flush an incomplete batch this many microseconds after it opened.
  long FlushMicros = 2000;
  /// Admission-queue bound; requests beyond it answer `overloaded`.
  size_t QueueCapacity = 256;
  /// Requests with a larger `source` answer `source_too_large`.
  size_t MaxSourceBytes = 1u << 20;
  /// Top-k candidates returned when the request does not set `k`.
  int DefaultK = 3;
  /// Upper bound accepted for a request's `k`.
  int MaxK = 64;
  /// Attribution entries per element for `"explain": true` responses.
  int ExplainPaths = 5;
  /// SLO target for the windowed p99 of `serve.request.seconds`, in
  /// milliseconds; <= 0 means no target (admin:"slo" reports disabled).
  double SloP99Ms = 0;
  /// Slow-request capture threshold in milliseconds: when the process
  /// SlowLog is open, a request whose total latency exceeds it is
  /// captured with its stage timeline and batch context. Negative (the
  /// default) falls back to SloP99Ms when that is set; with neither set,
  /// every request is captured (threshold 0 — the ring cap bounds it).
  double SlowTraceMs = -1;
  /// Capacity (records) of the EventLog flight-recorder ring the service
  /// enables on construction; 0 leaves the ring untouched.
  size_t FlightRecorder = 256;
  /// Sliding-window shape for the live serve histograms: WindowSlices
  /// ring slices of WindowSliceSeconds each (default: last minute).
  size_t WindowSlices = 6;
  double WindowSliceSeconds = 10.0;
};

/// Structured error codes of the serve protocol (stable strings, part of
/// pigeon.serve.v1).
enum class ErrorCode {
  BadRequest,       ///< Malformed JSON / wrong field types.
  UnknownLang,      ///< `lang` is not a language PIGEON knows.
  LangMismatch,     ///< Known language, but not the loaded bundle's.
  UnknownTask,      ///< `task` is not a task PIGEON knows.
  TaskMismatch,     ///< Known task, but not the loaded bundle's.
  SourceTooLarge,   ///< `source` exceeds ServeConfig::MaxSourceBytes.
  ParseFailed,      ///< The frontend produced no tree at all.
  DeadlineExceeded, ///< `deadline_ms` elapsed before processing began.
  Overloaded,       ///< Admission queue full.
  ShuttingDown,     ///< Submitted after shutdown began.
};

/// The protocol string of \p Code ("bad_request", "overloaded", ...).
const char *errorCodeName(ErrorCode Code);

/// A resident prediction service over one loaded model bundle.
///
/// Thread-safety: submit()/handleOne() may be called from any number of
/// threads; callbacks are invoked from a batcher worker thread (or from
/// the submitting thread for admission-time rejections) and must be
/// thread-safe themselves if they share state.
class Service {
public:
  /// Response callback: receives the rendered response line (no trailing
  /// newline). Invoked exactly once per submitted request.
  using Callback = std::function<void(std::string)>;

  /// Takes ownership of \p Bundle (loaded once, resident for the
  /// service's lifetime) and starts the batcher workers.
  explicit Service(std::unique_ptr<core::ModelBundle> Bundle,
                   ServeConfig Config = ServeConfig());
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Enqueues one raw request line. Never blocks: when the admission
  /// queue is full (or the service is shutting down) \p Done is invoked
  /// synchronously with a structured `overloaded` / `shutting_down`
  /// error; otherwise it is invoked later from a batcher worker.
  void submit(std::string Line, Callback Done);

  /// submit() + wait: processes one request synchronously through the
  /// same batching pipeline. The convenience API for benches and tests.
  std::string handleOne(const std::string &Line);

  /// Blocks until every admitted request has been answered.
  void drain();

  /// drain() + stop the batcher workers. Idempotent; the destructor
  /// calls it. Requests submitted afterwards answer `shutting_down`.
  void shutdown();

  /// Holds every batcher worker *before* it opens its next batch
  /// (in-flight batches finish). While paused, requests accumulate in
  /// the admission queue — which is how tests deterministically exercise
  /// batching, queue-full and deadline behaviour — and a drain() waits
  /// until someone calls resume().
  void pause();
  void resume();

  /// The resident bundle. Strictly read-only while serving: novel
  /// symbols and paths live in per-request delta overlays, never in the
  /// resident tables.
  const core::ModelBundle &bundle() const { return *Bundle; }

  /// Resolved batcher worker count (ServeConfig::Workers, defaulted).
  size_t workers() const { return Shards.size(); }

  /// Requests currently waiting in the admission queue (all shards).
  size_t queueDepth() const;

  /// Requests admitted but not yet answered (queued + in-batch).
  size_t inFlight() const { return InFlight.load(std::memory_order_relaxed); }

  /// Seconds since the service was constructed.
  double uptimeSeconds() const;

private:
  struct Pending {
    uint64_t Seq = 0; ///< The request id (rid): admission order, unique.
    std::string Line;
    Callback Done;
    std::chrono::steady_clock::time_point Arrival;   ///< t_admit.
    std::chrono::steady_clock::time_point BatchOpen; ///< Popped into a batch.
    size_t DepthAtAdmit = 0; ///< Queue depth seen at admission.
  };

  /// One admission-queue shard, owned by one batcher worker. All shards
  /// are guarded by the service Mutex; the per-shard condition variable
  /// is what lets each worker sleep on (and straggler-wait on) its own
  /// queue without thundering the whole pool awake per request.
  struct Shard {
    std::deque<Pending> Queue;
    std::condition_variable WorkCV;
  };

  void batcherLoop(size_t Worker);
  void processBatch(std::vector<Pending> Batch);

  /// Total requests queued across all shards. Caller holds Mutex.
  size_t queuedLocked() const;

  /// Detects and answers a pigeon.admin.v1 request synchronously.
  /// \returns true when \p Line was an admin request (Done has been
  /// invoked); false to continue down the normal serve path.
  bool tryHandleAdmin(const std::string &Line, const Callback &Done);

  std::unique_ptr<core::ModelBundle> Bundle;
  ServeConfig Config;
  std::chrono::steady_clock::time_point Started;
  std::atomic<size_t> InFlight{0};

  mutable std::mutex Mutex;
  std::condition_variable IdleCV;  ///< Wakes drain() waiters.
  std::vector<std::unique_ptr<Shard>> Shards;
  uint64_t NextSeq = 1;
  size_t QueueHighWater = 0; ///< Deepest total queue ever seen.
  size_t ActiveBatches = 0;  ///< Batches currently being processed.
  bool Paused = false;
  bool Stopping = false;
  std::vector<std::thread> Batchers;
};

/// Reads newline-delimited requests from \p In, writes responses to
/// \p Out (one per line, flushed), drains on EOF. \returns the process
/// exit code (0 on clean EOF). The istream front-end used by tests.
int serveStream(Service &S, std::istream &In, std::ostream &Out);

/// Writes all of \p Data to \p Fd, retrying writes interrupted by a
/// signal (EINTR) and polling for writability on would-block (EAGAIN).
/// \returns true once every byte landed; false only on a real error
/// (EPIPE/ECONNRESET/...: the peer is gone). A frame is therefore
/// either delivered whole or abandoned whole — a signal landing
/// mid-write can never truncate a response and corrupt the
/// newline-delimited stream (regression-pinned by serve_test).
bool writeAll(int Fd, std::string_view Data);

/// poll()-driven line loop over raw file descriptors, checking \p Stop
/// (set by the CLI's SIGTERM/SIGINT handler) every 200 ms so a signal
/// produces a clean drain + telemetry flush instead of an abort. Used by
/// `pigeon serve --stdio` (fds 0/1). \returns 0 on clean EOF or stop.
int serveFdLoop(Service &S, int InFd, int OutFd,
                const std::atomic<bool> &Stop);

/// Listens on a Unix domain socket at \p Path (an existing socket file is
/// replaced), multiplexing every accepted connection on one event loop
/// (no thread per connection) until \p Stop is set or the listener
/// fails. A connection's responses are fully written before its fd
/// closes, even when the client half-closed first. \returns 0 on a
/// clean stop, nonzero when the socket could not be created.
int serveSocket(Service &S, const std::string &Path,
                const std::atomic<bool> &Stop);

/// Listens on a TCP socket at \p HostPort ("HOST:PORT"; port 0 binds an
/// ephemeral port), sharing the framed protocol, admin plane, drain
/// semantics and connection multiplexer with serveSocket(). The bound
/// port is published to \p BoundPort (when given) and printed to stderr
/// once listening. \returns 0 on a clean stop, nonzero when the address
/// could not be bound.
int serveTcp(Service &S, const std::string &HostPort,
             const std::atomic<bool> &Stop,
             std::atomic<int> *BoundPort = nullptr);

} // namespace serve
} // namespace pigeon

#endif // PIGEON_SERVE_SERVE_H
