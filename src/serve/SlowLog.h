//===- SlowLog.h - Tail-latency forensics for pigeon serve ------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tail-sampling side of the serve observability plane. Three pieces
/// share this header because they share one data shape — the per-request
/// stage timeline the batcher stamps (see Serve.cpp):
///
///  * RequestSample — one request's decomposition: rid, total latency and
///    the six stage durations (`queue`, `seal`, `parse`, `remap`,
///    `predict`, `render`) whose sum is the total by construction, plus
///    the batch context (batch size, queue depth at admit).
///
///  * SlowLog — a bounded on-disk ring of slow-request captures (JSONL,
///    schema `pigeon.slowlog.v1`). Entries accumulate in memory under a
///    byte cap (oldest evicted first) and flush() rewrites the capture
///    file atomically via writeFileAtomic — the same tmp+rename machinery
///    the metric sidecars use, so a scraper never reads a torn file and
///    the capture never grows without bound in a resident process.
///    Process-wide singleton opened by `pigeon serve --slow-log FILE`.
///
///  * trace_report folding — parseRequestSample() reads a sample back
///    out of either a `serve.request` event record (pigeon.events.v1) or
///    a slow-log entry; foldSamples()/renderLatencyReport() turn a pile
///    of samples into the latency-decomposition table `tools/trace_report`
///    prints (per-stage p50/p99 plus the top-K slowest timelines).
///
/// Slow-log entry schema (`pigeon.slowlog.v1`), one object per line:
///
///   {"schema":"pigeon.slowlog.v1","rid":7,"id":<echo>,"ok":true,
///    "code":null,"total_ms":12.4,"queue_ms":...,"seal_ms":...,
///    "parse_ms":...,"remap_ms":...,"predict_ms":...,"render_ms":...,
///    "batch_size":4,"depth_at_admit":3,"batch_rids":[5,6,7,8],
///    "uptime_seconds":123.4}
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SERVE_SLOWLOG_H
#define PIGEON_SERVE_SLOWLOG_H

#include "support/Json.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace pigeon {
namespace serve {

/// Number of pipeline stages in a request timeline.
inline constexpr size_t NumStages = 6;

/// Stage names in pipeline order; also the metric/JSON key stems
/// (`serve.stage.<name>.seconds`, `<name>_ms`).
extern const std::array<const char *, NumStages> StageNames;

/// One request's latency decomposition plus batch context.
struct RequestSample {
  uint64_t Rid = 0;
  std::string IdJson = "null"; ///< Pre-rendered echo of the request id.
  bool Ok = true;
  std::string Code; ///< Error code; empty when Ok.
  double TotalMs = 0;
  std::array<double, NumStages> StageMs{}; ///< Sums to TotalMs.
  uint64_t BatchSize = 0;
  uint64_t DepthAtAdmit = 0;
};

/// Renders \p S as one pigeon.slowlog.v1 line (no trailing newline).
/// \p BatchRids are the rids co-batched with this request (itself
/// included); \p UptimeSeconds stamps when the capture happened relative
/// to service start.
std::string renderSlowLogEntry(const RequestSample &S,
                               const std::vector<uint64_t> &BatchRids,
                               double UptimeSeconds);

/// Reads a sample back out of a parsed JSONL line: either a slow-log
/// entry (schema pigeon.slowlog.v1, stage fields in ms) or a
/// `serve.request` event record (pigeon.events.v1, stage fields in
/// seconds). Lines of any other shape — span records, stream framing,
/// foreign documents — return nullopt.
std::optional<RequestSample> parseRequestSample(const json::Value &Doc);

/// Bounded slow-request capture: a byte-capped in-memory ring of
/// rendered JSONL entries, atomically rewritten to one file on flush().
/// All members are thread-safe; append() while disabled is a no-op.
class SlowLog {
public:
  static constexpr size_t DefaultMaxBytes = 4u << 20;

  SlowLog() = default;

  /// The process-wide instance (the one `--slow-log` opens).
  static SlowLog &global();

  /// Starts capturing to \p Path with an in-memory ring capped at
  /// \p MaxBytes. Clears any previous capture state.
  void open(const std::string &Path, size_t MaxBytes = DefaultMaxBytes);

  /// flush() + stop capturing. Idempotent.
  void close();

  /// True between open() and close().
  bool enabled() const { return On.load(std::memory_order_acquire); }

  /// Appends one rendered entry, evicting the oldest entries once the
  /// ring exceeds its byte cap.
  void append(std::string Line);

  /// Rewrites the capture file atomically when entries changed since the
  /// last flush. \returns false only when the write itself failed.
  bool flush();

  /// The retained entries, oldest first.
  std::vector<std::string> lines() const;

  /// Total entries ever appended / evicted by the byte cap.
  uint64_t appended() const { return Appended.load(std::memory_order_relaxed); }
  uint64_t evicted() const { return Evicted.load(std::memory_order_relaxed); }

private:
  mutable std::mutex Mutex;
  std::atomic<bool> On{false};
  std::atomic<uint64_t> Appended{0};
  std::atomic<uint64_t> Evicted{0};
  std::string Path;
  size_t MaxBytes = DefaultMaxBytes;
  size_t CurBytes = 0;
  bool Dirty = false;
  std::deque<std::string> Entries;
};

/// Aggregated stats of one stage across a sample set.
struct StageStats {
  uint64_t Count = 0;
  double MeanMs = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  double MaxMs = 0;
  double Share = 0; ///< Fraction of summed total latency spent here.
};

/// What trace_report prints: the per-stage decomposition plus the
/// slowest requests with their full timelines.
struct LatencyReport {
  size_t Samples = 0;
  double TotalP50Ms = 0;
  double TotalP99Ms = 0;
  std::array<StageStats, NumStages> Stages;
  std::vector<RequestSample> Slowest; ///< Top-K by TotalMs, slowest first.
};

/// Folds \p Samples into a LatencyReport keeping the \p TopK slowest.
LatencyReport foldSamples(std::vector<RequestSample> Samples,
                          size_t TopK = 5);

/// Renders \p R as the two aligned tables trace_report prints.
void renderLatencyReport(std::ostream &OS, const LatencyReport &R);

} // namespace serve
} // namespace pigeon

#endif // PIGEON_SERVE_SLOWLOG_H
