//===- Serve.cpp - Resident prediction service -----------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "core/Experiments.h"
#include "serve/SlowLog.h"
#include "lang/csharp/CsParser.h"
#include "lang/java/JavaParser.h"
#include "lang/js/JsParser.h"
#include "lang/python/PyParser.h"
#include "support/EventLog.h"
#include "support/Json.h"
#include "support/Parallel.h"
#include "support/PhaseProfiler.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <cstring>
#include <future>
#include <map>
#include <sstream>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pigeon;
using namespace pigeon::serve;
using pigeon::lang::Language;

const char *serve::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::BadRequest:
    return "bad_request";
  case ErrorCode::UnknownLang:
    return "unknown_lang";
  case ErrorCode::LangMismatch:
    return "lang_mismatch";
  case ErrorCode::UnknownTask:
    return "unknown_task";
  case ErrorCode::TaskMismatch:
    return "task_mismatch";
  case ErrorCode::SourceTooLarge:
    return "source_too_large";
  case ErrorCode::ParseFailed:
    return "parse_failed";
  case ErrorCode::DeadlineExceeded:
    return "deadline_exceeded";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::ShuttingDown:
    return "shutting_down";
  }
  return "internal";
}

namespace {

/// One request after JSON decoding, before pipeline work.
struct Decoded {
  std::string IdJson = "null"; ///< Pre-rendered echo of the request id.
  Language Lang = Language::JavaScript;
  std::string Source;
  int K = 3;
  bool Explain = false;
  bool Timing = false; ///< Echo the stage decomposition inline.
  double DeadlineMs = -1; ///< Negative = no deadline.
};

/// Renders the stable response envelope prefix. \p Rid 0 omits the field
/// — admission-time rejections are answered before a rid exists.
std::string renderHead(uint64_t Rid, const std::string &IdJson) {
  std::string Out = "{\"schema\":\"pigeon.serve.v1\",";
  if (Rid)
    Out += "\"rid\":" + std::to_string(Rid) + ",";
  Out += "\"id\":" + IdJson + ",";
  return Out;
}

std::string renderError(const std::string &IdJson, ErrorCode Code,
                        const std::string &Message, uint64_t Rid = 0) {
  std::string Out = renderHead(Rid, IdJson) + "\"ok\":false,\"error\":{\"code\":\"";
  Out += errorCodeName(Code);
  Out += "\",\"message\":";
  Out += telemetry::jsonString(Message);
  Out += "}}";
  return Out;
}

/// Renders the scalar request id back out; non-scalar kinds are the
/// caller's problem (rejected as bad_request before this runs).
std::string renderIdEcho(const json::Value &Id) {
  switch (Id.kind()) {
  case json::Value::Kind::Null:
    return "null";
  case json::Value::Kind::Bool:
    return Id.boolean() ? "true" : "false";
  case json::Value::Kind::Number:
    return telemetry::jsonNumber(Id.number());
  case json::Value::Kind::String:
    return telemetry::jsonString(Id.str());
  default:
    return "null";
  }
}

std::optional<Language> languageFromRequest(const std::string &Name) {
  if (Name == "js" || Name == "javascript")
    return Language::JavaScript;
  if (Name == "java")
    return Language::Java;
  if (Name == "py" || Name == "python")
    return Language::Python;
  if (Name == "cs" || Name == "csharp")
    return Language::CSharp;
  return std::nullopt;
}

std::optional<core::Task> taskFromRequest(const std::string &Name) {
  if (Name == "vars")
    return core::Task::VariableNames;
  if (Name == "methods")
    return core::Task::MethodNames;
  if (Name == "types")
    return core::Task::FullTypes;
  return std::nullopt;
}

/// Inverse of languageFromRequest / taskFromRequest: the canonical
/// protocol token, so admin:"health" reports values a client can feed
/// straight back into a request's "lang"/"task" fields.
const char *languageToken(Language Lang) {
  switch (Lang) {
  case Language::JavaScript:
    return "js";
  case Language::Java:
    return "java";
  case Language::Python:
    return "py";
  case Language::CSharp:
    return "cs";
  }
  return "js";
}

const char *taskToken(core::Task T) {
  switch (T) {
  case core::Task::VariableNames:
    return "vars";
  case core::Task::MethodNames:
    return "methods";
  case core::Task::FullTypes:
    return "types";
  }
  return "vars";
}

lang::ParseResult parseAs(Language Lang, const std::string &Text,
                          StringInterner &SI) {
  switch (Lang) {
  case Language::JavaScript:
    return js::parse(Text, SI);
  case Language::Java:
    return java::parse(Text, SI);
  case Language::Python:
    return py::parse(Text, SI);
  case Language::CSharp:
    return cs::parse(Text, SI);
  }
  return {};
}

/// Decodes and validates one request line against \p Bundle and
/// \p Config. On failure returns the rendered error response (and leaves
/// \p Out partially filled — only IdJson is meaningful then).
std::optional<std::string> decodeRequest(const std::string &Line,
                                         const core::ModelBundle &Bundle,
                                         const ServeConfig &Config,
                                         uint64_t Rid, Decoded &Out) {
  auto Err = [&](ErrorCode Code, const std::string &Message) {
    return renderError(Out.IdJson, Code, Message, Rid);
  };
  std::string ParseError;
  std::optional<json::Value> Doc = json::parse(Line, &ParseError);
  if (!Doc)
    return Err(ErrorCode::BadRequest,
               "malformed JSON: " + ParseError);
  if (!Doc->isObject())
    return Err(ErrorCode::BadRequest,
               "request must be a JSON object");

  if (const json::Value *Id = Doc->find("id")) {
    if (Id->isArray() || Id->isObject())
      return Err(ErrorCode::BadRequest,
                 "id must be a scalar");
    Out.IdJson = renderIdEcho(*Id);
  }

  const json::Value *Lang = Doc->find("lang");
  if (!Lang || !Lang->isString())
    return Err(ErrorCode::BadRequest,
               "missing string field \"lang\"");
  std::optional<Language> L = languageFromRequest(Lang->str());
  if (!L)
    return Err(ErrorCode::UnknownLang,
               "unknown language \"" + Lang->str() + "\"");
  if (*L != Bundle.Lang)
    return Err(ErrorCode::LangMismatch,
               std::string("model serves ") +
               lang::languageName(Bundle.Lang) + ", not " +
               lang::languageName(*L));
  Out.Lang = *L;

  if (const json::Value *Task = Doc->find("task")) {
    if (!Task->isString())
      return Err(ErrorCode::BadRequest,
                 "task must be a string");
    std::optional<core::Task> T = taskFromRequest(Task->str());
    if (!T)
      return Err(ErrorCode::UnknownTask,
                 "unknown task \"" + Task->str() + "\"");
    if (*T != Bundle.TaskKind)
      return Err(ErrorCode::TaskMismatch,
                 std::string("model serves the ") +
                 core::taskName(Bundle.TaskKind) + " task");
  }

  const json::Value *Source = Doc->find("source");
  if (!Source || !Source->isString())
    return Err(ErrorCode::BadRequest,
               "missing string field \"source\"");
  if (Source->str().size() > Config.MaxSourceBytes)
    return Err(ErrorCode::SourceTooLarge,
               "source is " + std::to_string(Source->str().size()) +
               " bytes; limit is " +
               std::to_string(Config.MaxSourceBytes));
  Out.Source = Source->str();

  Out.K = Config.DefaultK;
  if (const json::Value *K = Doc->find("k")) {
    if (!K->isNumber() || K->number() < 1 ||
        K->number() > static_cast<double>(Config.MaxK))
      return Err(ErrorCode::BadRequest,
                 "k must be a number in [1, " +
                 std::to_string(Config.MaxK) + "]");
    Out.K = static_cast<int>(K->number());
  }

  if (const json::Value *Explain = Doc->find("explain")) {
    if (!Explain->isBool())
      return Err(ErrorCode::BadRequest,
                 "explain must be a boolean");
    Out.Explain = Explain->boolean();
  }

  if (const json::Value *Timing = Doc->find("timing")) {
    if (!Timing->isBool())
      return Err(ErrorCode::BadRequest,
                 "timing must be a boolean");
    Out.Timing = Timing->boolean();
  }

  if (const json::Value *Deadline = Doc->find("deadline_ms")) {
    if (!Deadline->isNumber() || Deadline->number() < 0)
      return Err(ErrorCode::BadRequest,
                 "deadline_ms must be a non-negative number");
    Out.DeadlineMs = Deadline->number();
  }
  return std::nullopt;
}

/// Bucket bounds for queue-depth histograms: powers of two up to the
/// default capacity, so saturation shape survives aggregation.
std::vector<double> depthBounds() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
}

/// The windowed error series only needs counts and rates, not a shape:
/// one bucket.
std::vector<double> errorBounds() { return {1}; }

/// Metric name of one pipeline stage's latency series.
std::string stageMetricName(size_t Stage) {
  return std::string("serve.stage.") + StageNames[Stage] + ".seconds";
}

} // namespace

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

Service::Service(std::unique_ptr<core::ModelBundle> Bundle,
                 ServeConfig Config)
    : Bundle(std::move(Bundle)), Config(Config),
      Started(std::chrono::steady_clock::now()) {
  // Register the sliding windows up front so admin:"metrics" shows them
  // (empty) before the first request arrives.
  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.windowed("serve.request.seconds", telemetry::timeBounds(),
               Config.WindowSlices, Config.WindowSliceSeconds);
  Reg.windowed("serve.batch.size", telemetry::linearBounds(1, 32),
               Config.WindowSlices, Config.WindowSliceSeconds);
  Reg.windowed("serve.queue.depth", depthBounds(), Config.WindowSlices,
               Config.WindowSliceSeconds);
  for (size_t I = 0; I < NumStages; ++I)
    Reg.windowed(stageMetricName(I), telemetry::timeBounds(),
                 Config.WindowSlices, Config.WindowSliceSeconds);
  // Errors/sec for admin:"health": every error response observes 1 here.
  Reg.windowed("serve.responses.error", errorBounds(), Config.WindowSlices,
               Config.WindowSliceSeconds);
  // Flight recorder: keep the last N event records in memory even when
  // --trace is off, for admin:"flightrec" and fatal-path dumps.
  if (Config.FlightRecorder > 0)
    telemetry::EventLog::global().enableRing(Config.FlightRecorder);
  size_t Workers =
      this->Config.Workers ? this->Config.Workers
                           : parallel::hardwareConcurrency();
  Reg.gauge("serve.workers").set(static_cast<double>(Workers));
  for (size_t W = 0; W < Workers; ++W)
    Shards.push_back(std::make_unique<Shard>());
  for (size_t W = 0; W < Workers; ++W)
    Batchers.emplace_back([this, W] { batcherLoop(W); });
}

Service::~Service() { shutdown(); }

size_t Service::queuedLocked() const {
  size_t Total = 0;
  for (const std::unique_ptr<Shard> &Sh : Shards)
    Total += Sh->Queue.size();
  return Total;
}

size_t Service::queueDepth() const {
  std::lock_guard<std::mutex> L(Mutex);
  return queuedLocked();
}

double Service::uptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Started)
      .count();
}

void Service::submit(std::string Line, Callback Done) {
  // Admin introspection is answered synchronously before admission
  // control: observability must keep working when the queue is full or
  // the service is draining, and must not distort the serve metrics.
  // The substring probe keeps the JSON parse off the normal hot path.
  if (Line.find("\"admin\"") != std::string::npos &&
      tryHandleAdmin(Line, Done))
    return;

  auto &Reg = telemetry::MetricsRegistry::global();
  auto CountError = [&] {
    Reg.counter("serve.responses.error").inc();
    Reg.windowed("serve.responses.error", errorBounds(), Config.WindowSlices,
                 Config.WindowSliceSeconds)
        .observe(1);
  };
  Reg.counter("serve.requests").inc();
  std::unique_lock<std::mutex> L(Mutex);
  if (Stopping) {
    L.unlock();
    CountError();
    Done(renderError("null", ErrorCode::ShuttingDown,
                     "service is shutting down"));
    return;
  }
  size_t Queued = queuedLocked();
  if (Queued >= Config.QueueCapacity) {
    L.unlock();
    // Admission-time rejection: the id is inside the line we refuse to
    // parse under load, so overloaded responses carry a null id.
    Reg.counter("serve.overloaded").inc();
    CountError();
    Done(renderError("null", ErrorCode::Overloaded,
                     "admission queue full (capacity " +
                         std::to_string(Config.QueueCapacity) + ")"));
    return;
  }
  // Shallowest shard wins (ties: lowest index). The rid stays a single
  // global admission-order sequence; only the *processing* is sharded.
  Shard *Target = Shards.front().get();
  for (const std::unique_ptr<Shard> &Sh : Shards)
    if (Sh->Queue.size() < Target->Queue.size())
      Target = Sh.get();
  Pending P;
  P.Seq = NextSeq++;
  P.Line = std::move(Line);
  P.Done = std::move(Done);
  P.Arrival = std::chrono::steady_clock::now();
  P.DepthAtAdmit = Queued;
  Target->Queue.push_back(std::move(P));
  InFlight.fetch_add(1, std::memory_order_relaxed);
  size_t Depth = Queued + 1;
  Reg.gauge("serve.queue.depth").set(static_cast<double>(Depth));
  if (Depth > QueueHighWater) {
    QueueHighWater = Depth;
    Reg.gauge("serve.queue.depth.max").set(static_cast<double>(Depth));
  }
  L.unlock();
  Target->WorkCV.notify_one();
}

namespace {

std::string renderAdminError(const std::string &IdJson,
                             const std::string &Message) {
  return "{\"schema\":\"pigeon.admin.v1\",\"id\":" + IdJson +
         ",\"ok\":false,\"error\":{\"code\":\"bad_request\",\"message\":" +
         telemetry::jsonString(Message) + "}}";
}

} // namespace

bool Service::tryHandleAdmin(const std::string &Line, const Callback &Done) {
  std::optional<json::Value> Doc = json::parse(Line);
  if (!Doc || !Doc->isObject())
    return false; // Not valid JSON: let the serve path answer bad_request.
  const json::Value *Admin = Doc->find("admin");
  if (!Admin)
    return false; // A serve request that merely mentions "admin".

  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.counter("serve.admin.requests").inc();

  std::string IdJson = "null";
  if (const json::Value *Id = Doc->find("id")) {
    if (Id->isArray() || Id->isObject()) {
      Done(renderAdminError(IdJson, "id must be a scalar"));
      return true;
    }
    IdJson = renderIdEcho(*Id);
  }
  if (!Admin->isString()) {
    Done(renderAdminError(IdJson, "admin must be a string verb"));
    return true;
  }
  const std::string &Verb = Admin->str();
  auto Head = [&] {
    return "{\"schema\":\"pigeon.admin.v1\",\"id\":" + IdJson +
           ",\"ok\":true,\"admin\":\"" + Verb + "\",";
  };

  if (Verb == "metrics") {
    Reg.counter("serve.admin.metrics").inc();
    std::string Snap = Reg.jsonSnapshot();
    while (!Snap.empty() && Snap.back() == '\n')
      Snap.pop_back();
    Done(Head() + "\"metrics\":" + Snap + "}");
    return true;
  }

  if (Verb == "health") {
    Reg.counter("serve.admin.health").inc();
    size_t Depth, HighWater;
    bool IsPaused, Draining;
    {
      std::lock_guard<std::mutex> L(Mutex);
      Depth = queuedLocked();
      HighWater = QueueHighWater;
      IsPaused = Paused;
      Draining = Stopping;
    }
    // Live rates for the scraper: completed requests and errors over the
    // sliding window, next to the p99 admin:"slo" already reports.
    auto ReqSnap =
        Reg.windowed("serve.request.seconds", telemetry::timeBounds(),
                     Config.WindowSlices, Config.WindowSliceSeconds)
            .snapshot();
    auto ErrSnap = Reg.windowed("serve.responses.error", errorBounds(),
                                Config.WindowSlices, Config.WindowSliceSeconds)
                       .snapshot();
    std::string Out = Head() + "\"health\":{\"status\":\"";
    Out += Draining ? "draining" : "ok";
    Out += "\",\"lang\":" +
           telemetry::jsonString(languageToken(Bundle->Lang)) +
           ",\"task\":" + telemetry::jsonString(taskToken(Bundle->TaskKind)) +
           ",\"features\":" + std::to_string(Bundle->Model.numFeatures()) +
           ",\"symbols\":" + std::to_string(Bundle->Interner->size()) +
           ",\"uptime_seconds\":" + telemetry::jsonNumber(uptimeSeconds()) +
           ",\"in_flight\":" + std::to_string(inFlight()) +
           ",\"queue_depth\":" + std::to_string(Depth) +
           ",\"queue_high_water\":" + std::to_string(HighWater) +
           ",\"queue_capacity\":" + std::to_string(Config.QueueCapacity) +
           ",\"window\":{\"seconds\":" +
           telemetry::jsonNumber(ReqSnap.WindowSeconds) +
           ",\"requests\":" + std::to_string(ReqSnap.Count) +
           ",\"rate_per_sec\":" + telemetry::jsonNumber(ReqSnap.RatePerSec) +
           ",\"errors\":" + std::to_string(ErrSnap.Count) +
           ",\"error_rate_per_sec\":" +
           telemetry::jsonNumber(ErrSnap.RatePerSec) + "}" +
           ",\"paused\":" + (IsPaused ? "true" : "false") +
           ",\"draining\":" + (Draining ? "true" : "false") + "}}";
    Done(std::move(Out));
    return true;
  }

  if (Verb == "slo") {
    Reg.counter("serve.admin.slo").inc();
    auto Snap = Reg.windowed("serve.request.seconds", telemetry::timeBounds(),
                             Config.WindowSlices, Config.WindowSliceSeconds)
                    .snapshot();
    bool HasTarget = Config.SloP99Ms > 0;
    double P99Ms = Snap.P99 * 1000.0; // NaN on an empty window.
    std::string Ok = "null"; // Unknown: no target, or no recent traffic.
    if (HasTarget && Snap.Count > 0)
      Ok = P99Ms <= Config.SloP99Ms ? "true" : "false";
    std::string Out =
        Head() + "\"slo\":{\"target_p99_ms\":" +
        (HasTarget ? telemetry::jsonNumber(Config.SloP99Ms)
                   : std::string("null")) +
        ",\"window_seconds\":" + telemetry::jsonNumber(Snap.WindowSeconds) +
        ",\"count\":" + std::to_string(Snap.Count) +
        ",\"rate_per_sec\":" + telemetry::jsonNumber(Snap.RatePerSec) +
        ",\"p50_ms\":" + telemetry::jsonNumber(Snap.P50 * 1000.0) +
        ",\"p99_ms\":" + telemetry::jsonNumber(P99Ms) + ",\"ok\":" + Ok +
        "}}";
    Done(std::move(Out));
    return true;
  }

  if (Verb == "profile") {
    Reg.counter("serve.admin.profile").inc();
    auto &Prof = telemetry::PhaseProfiler::global();
    telemetry::PhaseProfiler::Report R = Prof.report();
    std::string Out = Head() + "\"profile\":{\"running\":";
    Out += Prof.running() ? "true" : "false";
    Out += ",\"hz\":" + telemetry::jsonNumber(R.Hz) +
           ",\"samples\":" + std::to_string(R.Samples) +
           ",\"attributed\":" + std::to_string(R.Attributed) +
           ",\"lines\":[";
    for (size_t I = 0; I < R.Lines.size(); ++I) {
      if (I)
        Out += ",";
      Out += "{\"stack\":" + telemetry::jsonString(R.Lines[I].Stack) +
             ",\"count\":" + std::to_string(R.Lines[I].Count) + "}";
    }
    Out += "],\"folded\":" + telemetry::jsonString(Prof.folded()) + "}}";
    Done(std::move(Out));
    return true;
  }

  if (Verb == "prom") {
    Reg.counter("serve.admin.prom").inc();
    Done(Head() +
         "\"prom\":" + telemetry::jsonString(Reg.prometheusSnapshot()) + "}");
    return true;
  }

  if (Verb == "flightrec") {
    Reg.counter("serve.admin.flightrec").inc();
    auto &Log = telemetry::EventLog::global();
    std::vector<std::string> Lines = Log.ringSnapshot();
    std::string Out = Head() + "\"flightrec\":{\"capacity\":" +
                      std::to_string(Log.ringCapacity()) +
                      ",\"total\":" + std::to_string(Log.ringTotal()) +
                      ",\"count\":" + std::to_string(Lines.size()) +
                      ",\"records\":[";
    // Ring entries are complete rendered JSON objects: embed verbatim.
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (I)
        Out += ",";
      Out += Lines[I];
    }
    Out += "]}}";
    Done(std::move(Out));
    return true;
  }

  Reg.counter("serve.admin.bad_request").inc();
  Done(renderAdminError(IdJson, "unknown admin verb \"" + Verb + "\""));
  return true;
}

std::string Service::handleOne(const std::string &Line) {
  auto Result = std::make_shared<std::promise<std::string>>();
  std::future<std::string> F = Result->get_future();
  submit(Line,
         [Result](std::string Response) { Result->set_value(std::move(Response)); });
  return F.get();
}

void Service::drain() {
  std::unique_lock<std::mutex> L(Mutex);
  IdleCV.wait(L, [&] { return queuedLocked() == 0 && ActiveBatches == 0; });
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Stopping = true;
    Paused = false;
  }
  for (std::unique_ptr<Shard> &Sh : Shards)
    Sh->WorkCV.notify_all();
  for (std::thread &T : Batchers)
    if (T.joinable())
      T.join();
}

void Service::pause() {
  std::lock_guard<std::mutex> L(Mutex);
  Paused = true;
}

void Service::resume() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Paused = false;
  }
  for (std::unique_ptr<Shard> &Sh : Shards)
    Sh->WorkCV.notify_all();
}

void Service::batcherLoop(size_t Worker) {
  Shard &Sh = *Shards[Worker];
  std::unique_lock<std::mutex> L(Mutex);
  while (true) {
    Sh.WorkCV.wait(L, [&] {
      return (Stopping && Sh.Queue.empty()) ||
             (!Paused && !Sh.Queue.empty());
    });
    if (Sh.Queue.empty())
      return; // Stopping with nothing left: clean exit.

    // Per-flush depth sample: the total depth seen when a worker wakes
    // is the saturation signal the enqueue-time gauge aliases away.
    {
      auto &Reg = telemetry::MetricsRegistry::global();
      double Depth = static_cast<double>(queuedLocked());
      Reg.histogram("serve.queue.depth.flush", depthBounds()).observe(Depth);
      Reg.windowed("serve.queue.depth", depthBounds(), Config.WindowSlices,
                   Config.WindowSliceSeconds)
          .observe(Depth);
    }

    // Open a batch: take what this shard holds, then give stragglers
    // FlushMicros to coalesce before paying a predictBatch dispatch.
    // The batch is in flight from this point — the straggler wait below
    // releases the mutex while requests sit in the local Batch, and
    // drain() must not mistake empty queues for an idle service.
    ++ActiveBatches;
    auto FlushAt = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(Config.FlushMicros);
    std::vector<Pending> Batch;
    while (Batch.size() < Config.MaxBatch) {
      if (Sh.Queue.empty()) {
        bool More = Sh.WorkCV.wait_until(
            L, FlushAt, [&] { return !Sh.Queue.empty() || Stopping; });
        if (!More || Sh.Queue.empty())
          break;
      }
      Batch.push_back(std::move(Sh.Queue.front()));
      Batch.back().BatchOpen = std::chrono::steady_clock::now();
      Sh.Queue.pop_front();
    }
    telemetry::MetricsRegistry::global()
        .gauge("serve.queue.depth")
        .set(static_cast<double>(queuedLocked()));
    L.unlock();
    processBatch(std::move(Batch));
    L.lock();
    --ActiveBatches;
    IdleCV.notify_all();
  }
}

void Service::processBatch(std::vector<Pending> Batch) {
  // t_batch_seal: the straggler window closed the moment the batcher
  // handed the batch over. Later pipeline boundaries are stamped after
  // their stage blocks; the six consecutive differences are the stage
  // durations and sum to each request's total latency by construction.
  const auto TSeal = std::chrono::steady_clock::now();
  auto &Reg = telemetry::MetricsRegistry::global();
  telemetry::TraceScope BatchScope("serve.batch");
  Reg.histogram("serve.batch.size", telemetry::linearBounds(1, 32))
      .observe(static_cast<double>(Batch.size()));
  Reg.windowed("serve.batch.size", telemetry::linearBounds(1, 32),
               Config.WindowSlices, Config.WindowSliceSeconds)
      .observe(static_cast<double>(Batch.size()));

  struct Item {
    Pending P;
    Decoded D;
    std::string Response; ///< Non-empty once the item failed (or finished).
    ErrorCode Code = ErrorCode::BadRequest; ///< Meaningful when failed.
    bool Failed = false;
    std::unique_ptr<StringInterner> LocalSI;
    std::unique_ptr<paths::PathTable> LocalTable;
    lang::ParseResult R;
    crf::CrfGraph G;
    size_t GraphIndex = ~size_t(0);
  };
  std::vector<Item> Items(Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I)
    Items[I].P = std::move(Batch[I]);

  auto fail = [&](Item &It, ErrorCode Code, const std::string &Message) {
    It.Failed = true;
    It.Code = Code;
    It.Response = renderError(It.D.IdJson, Code, Message, It.P.Seq);
  };

  // Decode + deadline check (serial; JSON decoding is cheap next to
  // parsing, and failing before the parallel stage keeps malformed input
  // from ever touching the pipeline).
  {
    parallel::StageTimer Timer("serve.decode");
    auto Now = std::chrono::steady_clock::now();
    for (Item &It : Items) {
      if (auto Error =
              decodeRequest(It.P.Line, *Bundle, Config, It.P.Seq, It.D)) {
        It.Failed = true;
        It.Response = std::move(*Error);
        continue;
      }
      if (It.D.DeadlineMs >= 0) {
        double WaitedMs =
            std::chrono::duration<double, std::milli>(Now - It.P.Arrival)
                .count();
        if (WaitedMs > It.D.DeadlineMs)
          fail(It, ErrorCode::DeadlineExceeded,
               "deadline of " + telemetry::jsonNumber(It.D.DeadlineMs) +
                   " ms passed after " + telemetry::jsonNumber(WaitedMs) +
                   " ms in queue");
      }
    }
  }

  // Parse on the worker pool. Each request parses against a private
  // delta overlay of the bundle interner: symbols the bundle already
  // knows resolve to their final ids lock-free, only novel strings land
  // in the overlay. The resident interner is never written while
  // serving, so overlay reads stay exact even while other batcher
  // workers process their own batches.
  {
    parallel::StageTimer Timer("serve.parse");
    parallel::parallelFor(Items.size(), 0, [&](size_t I) {
      Item &It = Items[I];
      if (It.Failed)
        return;
      It.LocalSI = std::make_unique<StringInterner>(StringInterner::Delta,
                                                    *Bundle->Interner);
      It.R = parseAs(It.D.Lang, It.D.Source, *It.LocalSI);
    });
    for (Item &It : Items)
      if (!It.Failed && !It.R.Tree) {
        std::string Reason =
            It.R.Diags.empty() ? "no tree produced" : It.R.Diags[0].str();
        fail(It, ErrorCode::ParseFailed, "parse failed: " + Reason);
      }
  }
  const auto TParse = std::chrono::steady_clock::now(); // t_parse_done.

  // Extract + assemble against per-request delta overlays of the
  // bundle's path table — nothing here (or anywhere in the pipeline)
  // writes the resident bundle, which is what lets N batcher workers
  // process batches concurrently over one shared bundle. Known paths
  // resolve to their final table ids; novel paths (and the novel
  // symbols inside them) stay provisional in the overlay, assigned in
  // the same first-encounter order a fresh bundle would use. Their
  // hash-keyed features carry no trained weight either way, provisional
  // ids sort after every trained id exactly like freshly-committed ones
  // do, and rendering resolves ids back through strings — so responses
  // stay byte-identical to one-shot `pigeon predict` without the serial
  // commit the single-batcher design needed. Share-nothing items also
  // make the stage safe to run on the pool.
  std::vector<crf::CrfGraph> Graphs;
  {
    parallel::StageTimer Timer("serve.extract");
    parallel::parallelFor(Items.size(), 0, [&](size_t I) {
      Item &It = Items[I];
      if (It.Failed)
        return;
      It.LocalTable = std::make_unique<paths::PathTable>(
          paths::PathTable::Delta, Bundle->Table);
      auto Contexts = paths::extractPathContexts(
          *It.R.Tree, Bundle->Extraction, *It.LocalTable);
      It.G = crf::buildGraph(*It.R.Tree, Contexts,
                             core::selectorFor(Bundle->TaskKind));
    });
    for (Item &It : Items) {
      if (It.Failed)
        continue;
      It.GraphIndex = Graphs.size();
      Graphs.push_back(It.G);
    }
  }
  const auto TRemap = std::chrono::steady_clock::now(); // t_remap_done.

  // Inference, sharded inside predictBatch.
  std::vector<std::vector<Symbol>> Preds;
  {
    parallel::StageTimer Timer("serve.predict");
    Preds = Bundle->Model.predictBatch(Graphs);
  }
  const auto TPredict = std::chrono::steady_clock::now(); // t_predict_done.

  // Render + deliver in admission order.
  parallel::StageTimer RenderTimer("serve.render");

  // Per-stage latency series, resolved once per batch.
  std::array<telemetry::Histogram *, NumStages> StageHist;
  std::array<telemetry::WindowedHistogram *, NumStages> StageWin;
  for (size_t S = 0; S < NumStages; ++S) {
    StageHist[S] = &Reg.histogram(stageMetricName(S), telemetry::timeBounds());
    StageWin[S] = &Reg.windowed(stageMetricName(S), telemetry::timeBounds(),
                                Config.WindowSlices, Config.WindowSliceSeconds);
  }

  // Batch context for slow-request captures: who shared the batch.
  std::vector<uint64_t> BatchRids;
  BatchRids.reserve(Items.size());
  for (const Item &It : Items)
    BatchRids.push_back(It.P.Seq);
  auto &Slow = SlowLog::global();
  double SlowThresholdMs =
      Config.SlowTraceMs >= 0
          ? Config.SlowTraceMs
          : (Config.SloP99Ms > 0 ? Config.SloP99Ms : 0.0);

  for (Item &It : Items) {
    std::string Out;
    if (!It.Failed) {
      // Strings resolve through the request's own overlay: bundle
      // symbols delegate to the shared base, provisional ones to the
      // overlay's private storage.
      const StringInterner &SI = *It.LocalSI;
      const std::vector<Symbol> &Pred = Preds[It.GraphIndex];
      Out = renderHead(It.P.Seq, It.D.IdJson) + "\"ok\":true,\"predictions\":[";
      bool FirstNode = true;
      for (uint32_t N : It.G.Unknowns) {
        const crf::GraphNode &Node = It.G.Nodes[N];
        if (!FirstNode)
          Out += ",";
        FirstNode = false;
        Out += "{\"element\":" + telemetry::jsonString(SI.str(Node.Gold));
        Out += ",\"kind\":";
        Out += telemetry::jsonString(
            Node.Element != ast::InvalidElement
                ? ast::elementKindName(
                      It.R.Tree->element(Node.Element).Kind)
                : "?");
        Out += ",\"candidates\":[";
        auto Top = Bundle->Model.topK(It.G, N, Pred, It.D.K);
        bool FirstCand = true;
        for (const auto &[Label, Score] : Top) {
          if (!FirstCand)
            Out += ",";
          FirstCand = false;
          Out += "{\"label\":" + telemetry::jsonString(SI.str(Label)) +
                 ",\"score\":" + telemetry::jsonNumber(Score) + "}";
        }
        Out += "]";
        if (It.D.Explain && Pred[N].isValid()) {
          crf::NodeExplanation E = Bundle->Model.explain(
              It.G, N, Pred[N], Pred, Config.ExplainPaths);
          Out += ",\"explain\":{\"total\":" +
                 telemetry::jsonNumber(E.Total) +
                 ",\"bias\":" + telemetry::jsonNumber(E.Bias) +
                 ",\"paths\":[";
          bool FirstPath = true;
          for (const crf::Attribution &A : E.Paths) {
            if (!FirstPath)
              Out += ",";
            FirstPath = false;
            Out += "{\"path\":" +
                   telemetry::jsonString(It.LocalTable->render(A.Path, SI)) +
                   ",\"neighbor\":" +
                   (A.Neighbor.isValid()
                        ? telemetry::jsonString(SI.str(A.Neighbor))
                        : "null") +
                   ",\"unary\":" + (A.Unary ? "true" : "false") +
                   ",\"score\":" + telemetry::jsonNumber(A.Score) + "}";
          }
          Out += "]}";
        }
        Out += "}";
      }
      Out += "]";
    }

    // t_respond: stamped once this request's predictions are rendered —
    // the timing echo below describes a closed timeline, so the stage
    // durations sum to total_ms exactly.
    const auto TRespond = std::chrono::steady_clock::now();
    auto Sec = [](std::chrono::steady_clock::time_point A,
                  std::chrono::steady_clock::time_point B) {
      return std::chrono::duration<double>(B - A).count();
    };
    const std::array<double, NumStages> StageS = {
        Sec(It.P.Arrival, It.P.BatchOpen), // queue
        Sec(It.P.BatchOpen, TSeal),        // seal
        Sec(TSeal, TParse),                // parse (incl. decode)
        Sec(TParse, TRemap),               // remap (+ extract + assemble)
        Sec(TRemap, TPredict),             // predict
        Sec(TPredict, TRespond),           // render
    };
    const double Wall = Sec(It.P.Arrival, TRespond);

    if (!It.Failed) {
      if (It.D.Timing) {
        Out += ",\"timing\":{";
        for (size_t S = 0; S < NumStages; ++S) {
          Out += "\"";
          Out += StageNames[S];
          Out += "_ms\":" + telemetry::jsonNumber(StageS[S] * 1000.0) + ",";
        }
        Out += "\"total_ms\":" + telemetry::jsonNumber(Wall * 1000.0) +
               ",\"batch_size\":" + std::to_string(Items.size()) +
               ",\"depth_at_admit\":" + std::to_string(It.P.DepthAtAdmit) +
               "}";
      }
      Out += "}";
      It.Response = std::move(Out);
    }

    for (size_t S = 0; S < NumStages; ++S) {
      StageHist[S]->observe(StageS[S]);
      StageWin[S]->observe(StageS[S]);
    }
    Reg.histogram("serve.request.seconds", telemetry::timeBounds())
        .observe(Wall);
    Reg.windowed("serve.request.seconds", telemetry::timeBounds(),
                 Config.WindowSlices, Config.WindowSliceSeconds)
        .observe(Wall);
    Reg.counter(It.Failed ? "serve.responses.error" : "serve.responses.ok")
        .inc();
    if (It.Failed) {
      Reg.counter(std::string("serve.responses.error.") +
                  errorCodeName(It.Code))
          .inc();
      Reg.windowed("serve.responses.error", errorBounds(),
                   Config.WindowSlices, Config.WindowSliceSeconds)
          .observe(1);
    }
    auto &Log = telemetry::EventLog::global();
    if (Log.enabled())
      Log.record("serve.request",
                 {{"rid", std::to_string(It.P.Seq)},
                  {"id", It.D.IdJson},
                  {"ok", It.Failed ? "false" : "true"},
                  {"code",
                   It.Failed
                       ? telemetry::jsonString(errorCodeName(It.Code))
                       : std::string("null")},
                  {"wall", telemetry::jsonNumber(Wall)},
                  {"queue", telemetry::jsonNumber(StageS[0])},
                  {"seal", telemetry::jsonNumber(StageS[1])},
                  {"parse", telemetry::jsonNumber(StageS[2])},
                  {"remap", telemetry::jsonNumber(StageS[3])},
                  {"predict", telemetry::jsonNumber(StageS[4])},
                  {"render", telemetry::jsonNumber(StageS[5])},
                  {"batch", std::to_string(Items.size())},
                  {"depth", std::to_string(It.P.DepthAtAdmit)}});

    // Tail sampling: capture the full timeline + batch context of any
    // request slower than the threshold.
    if (Slow.enabled() && Wall * 1000.0 > SlowThresholdMs) {
      RequestSample Sample;
      Sample.Rid = It.P.Seq;
      Sample.IdJson = It.D.IdJson;
      Sample.Ok = !It.Failed;
      if (It.Failed)
        Sample.Code = errorCodeName(It.Code);
      Sample.TotalMs = Wall * 1000.0;
      for (size_t S = 0; S < NumStages; ++S)
        Sample.StageMs[S] = StageS[S] * 1000.0;
      Sample.BatchSize = Items.size();
      Sample.DepthAtAdmit = It.P.DepthAtAdmit;
      Slow.append(renderSlowLogEntry(Sample, BatchRids, uptimeSeconds()));
      Reg.counter("serve.slow.requests").inc();
    }

    It.P.Done(std::move(It.Response));
    InFlight.fetch_sub(1, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// Front-ends
//===----------------------------------------------------------------------===//

int serve::serveStream(Service &S, std::istream &In, std::ostream &Out) {
  std::mutex WriteMutex;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    S.submit(std::move(Line), [&WriteMutex, &Out](std::string Response) {
      std::lock_guard<std::mutex> L(WriteMutex);
      Out << Response << "\n" << std::flush;
    });
    Line.clear();
  }
  S.drain();
  return 0;
}

bool serve::writeAll(int Fd, std::string_view Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill
    // the process — the serve binary ignores SIGPIPE, but this library
    // must not depend on that. Non-sockets (stdio, pipes) reject send()
    // with ENOTSOCK; fall back to plain write() for them.
    ssize_t W = ::send(Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
    if (W < 0 && errno == ENOTSOCK)
      W = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (W > 0) {
      Off += static_cast<size_t>(W);
      continue;
    }
    // A signal landing mid-write interrupts the syscall without losing
    // the bytes already sent — abandoning here would leave a torn frame
    // in the newline-delimited stream. Only a real error (EPIPE,
    // ECONNRESET, EBADF, ...) means the peer is gone.
    if (W < 0 && errno == EINTR)
      continue;
    if (W == 0 || errno == EAGAIN || errno == EWOULDBLOCK) {
      // Non-blocking fd with a full buffer: wait for writability
      // instead of busy-spinning; POLLERR/POLLNVAL is a dead peer.
      struct pollfd Pfd = {Fd, POLLOUT, 0};
      int Ready = ::poll(&Pfd, 1, /*timeout_ms=*/1000);
      if (Ready < 0 && errno != EINTR)
        return false;
      if (Ready > 0 && (Pfd.revents & (POLLERR | POLLNVAL)))
        return false;
      continue;
    }
    return false;
  }
  return true;
}

namespace {

/// Restores per-stream FIFO delivery on top of the sharded batcher:
/// with N workers, responses complete in shard order, not admission
/// order, but a client that pipelines requests down one stream must
/// read its responses in the order it sent them (the single-batcher
/// contract, and what keeps `serve --stdio` output byte-identical at
/// any worker count). Sequence numbers are assigned at submit time on
/// the single reader thread; deliver() buffers a completed frame until
/// everything before it has been written. Frames are written (or, if
/// the peer is gone, dropped by writeAll) under the same lock that
/// orders them, so two callbacks can never race each other past the
/// buffer.
struct OrderedWriter {
  std::mutex M;
  uint64_t NextWrite = 0;
  std::map<uint64_t, std::string> Held;

  /// Returns how many frames were consumed (written or abandoned) so
  /// the caller can balance its in-flight accounting.
  size_t deliver(int Fd, uint64_t Seq, std::string Frame) {
    std::lock_guard<std::mutex> L(M);
    Held.emplace(Seq, std::move(Frame));
    size_t Consumed = 0;
    while (!Held.empty() && Held.begin()->first == NextWrite) {
      // Whole frame or nothing: writeAll retries interrupted/short
      // writes and gives up only when the peer is really gone.
      writeAll(Fd, Held.begin()->second);
      Held.erase(Held.begin());
      ++NextWrite;
      ++Consumed;
    }
    return Consumed;
  }
};

} // namespace

int serve::serveFdLoop(Service &S, int InFd, int OutFd,
                       const std::atomic<bool> &Stop) {
  auto Writer = std::make_shared<OrderedWriter>();
  uint64_t SubmitSeq = 0; // Reader thread only.
  auto Submit = [&S, &SubmitSeq, Writer, OutFd](std::string Line) {
    const uint64_t Seq = SubmitSeq++;
    S.submit(std::move(Line), [Writer, OutFd, Seq](std::string Response) {
      Response += '\n';
      Writer->deliver(OutFd, Seq, std::move(Response));
    });
  };

  std::string Buffer;
  char Chunk[4096];
  while (!Stop.load(std::memory_order_relaxed)) {
    struct pollfd Pfd = {InFd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, /*timeout_ms=*/200);
    if (Ready < 0) {
      if (errno == EINTR)
        continue; // A signal landed; re-check Stop.
      break;
    }
    if (Ready == 0)
      continue; // Timeout: re-check Stop.
    ssize_t N = ::read(InFd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      break; // EOF.
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Pos;
    while ((Pos = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Pos);
      Buffer.erase(0, Pos + 1);
      if (!Line.empty())
        Submit(std::move(Line));
    }
  }
  // An unterminated final line is still a request.
  if (!Buffer.empty())
    Submit(std::move(Buffer));
  S.drain();
  return 0;
}

namespace {

/// Per-connection state of the socket multiplexer. Shared (via
/// shared_ptr) with the response callbacks of its in-flight requests:
/// the event loop may see the client vanish while responses are still
/// being rendered on a batcher worker, and the fd must stay open until
/// the last of them was written — a response is delivered whole or not
/// at all, never as a torn frame.
struct MuxConn {
  int Fd = -1;
  std::string Buffer;    ///< Partial-line accumulator (event-loop only).
  uint64_t SubmitSeq = 0; ///< Per-connection submit order (event-loop only).
  OrderedWriter Writer;  ///< FIFO-orders + serializes frames on Fd.
  std::atomic<size_t> PendingWrites{0}; ///< Submitted, not yet written.
  std::atomic<bool> ReadClosed{false};  ///< EOF or hard read error seen.
};

/// Accept + read multiplexer shared by the AF_UNIX and TCP transports:
/// one poll() loop over the listener and every live connection instead
/// of a thread per connection (whose handles the old accept loop only
/// reaped at shutdown — an unbounded leak on a long-lived server).
/// Closes the listener before returning; the caller keeps ownership of
/// its address (socket file / port).
int muxLoop(Service &S, int Listener, const std::atomic<bool> &Stop) {
  auto &Reg = telemetry::MetricsRegistry::global();
  std::vector<std::shared_ptr<MuxConn>> Conns;
  char Chunk[4096];

  auto SubmitLine = [&S](const std::shared_ptr<MuxConn> &C,
                         std::string Line) {
    const uint64_t Seq = C->SubmitSeq++;
    C->PendingWrites.fetch_add(1, std::memory_order_acq_rel);
    S.submit(std::move(Line), [C, Seq](std::string Response) {
      Response += '\n';
      // deliver() may flush frames buffered by earlier callbacks too;
      // decrement once per frame actually consumed so the reaper keeps
      // the fd open until the last buffered response is on the wire.
      size_t Consumed = C->Writer.deliver(C->Fd, Seq, std::move(Response));
      C->PendingWrites.fetch_sub(Consumed, std::memory_order_acq_rel);
    });
  };

  while (!Stop.load(std::memory_order_relaxed)) {
    std::vector<struct pollfd> Pfds;
    std::vector<size_t> ConnAt; // Pfds[I + 1] watches Conns[ConnAt[I]].
    Pfds.push_back({Listener, POLLIN, 0});
    for (size_t I = 0; I < Conns.size(); ++I)
      if (!Conns[I]->ReadClosed.load(std::memory_order_relaxed)) {
        Pfds.push_back({Conns[I]->Fd, POLLIN, 0});
        ConnAt.push_back(I);
      }
    int Ready = ::poll(Pfds.data(), static_cast<nfds_t>(Pfds.size()),
                       /*timeout_ms=*/200);
    if (Ready < 0) {
      if (errno == EINTR)
        continue; // A signal landed; re-check Stop.
      break;
    }
    if (Pfds[0].revents & POLLIN) {
      int Fd = ::accept(Listener, nullptr, nullptr);
      if (Fd >= 0) {
        Reg.counter("serve.connections").inc();
        // Response frames should not sit in Nagle's buffer behind a
        // request/response round-trip; a no-op on AF_UNIX.
        int One = 1;
        ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
        auto C = std::make_shared<MuxConn>();
        C->Fd = Fd;
        Conns.push_back(std::move(C));
      }
    }
    for (size_t I = 0; I < ConnAt.size(); ++I) {
      if (!(Pfds[I + 1].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      const std::shared_ptr<MuxConn> &C = Conns[ConnAt[I]];
      ssize_t N = ::read(C->Fd, Chunk, sizeof(Chunk));
      if (N < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;
        C->ReadClosed.store(true, std::memory_order_release);
        continue;
      }
      if (N == 0) {
        // EOF (possibly a half-close: the client may still be reading).
        // An unterminated final line is still a request; responses
        // already in flight drain before the reaper closes the fd.
        if (!C->Buffer.empty())
          SubmitLine(C, std::move(C->Buffer));
        C->ReadClosed.store(true, std::memory_order_release);
        continue;
      }
      C->Buffer.append(Chunk, static_cast<size_t>(N));
      size_t Pos;
      while ((Pos = C->Buffer.find('\n')) != std::string::npos) {
        std::string Line = C->Buffer.substr(0, Pos);
        C->Buffer.erase(0, Pos + 1);
        if (!Line.empty())
          SubmitLine(C, std::move(Line));
      }
    }
    // Reap: a connection whose read side ended and whose last response
    // was written closes *now*, not at shutdown.
    for (auto It = Conns.begin(); It != Conns.end();)
      if ((*It)->ReadClosed.load(std::memory_order_acquire) &&
          (*It)->PendingWrites.load(std::memory_order_acquire) == 0) {
        ::close((*It)->Fd);
        It = Conns.erase(It);
      } else {
        ++It;
      }
  }
  ::close(Listener);
  // Stop/failure: answer everything already admitted, flush it to the
  // surviving connections, then close them.
  S.drain();
  for (const std::shared_ptr<MuxConn> &C : Conns)
    ::close(C->Fd);
  return 0;
}

} // namespace

int serve::serveSocket(Service &S, const std::string &Path,
                       const std::atomic<bool> &Stop) {
  int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::fprintf(stderr, "error: cannot create socket: %s\n",
                 std::strerror(errno));
    return 1;
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n", Path.c_str());
    ::close(Listener);
    return 1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  ::unlink(Path.c_str()); // Replace a stale socket from a previous run.
  if (::bind(Listener, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(Listener, 64) < 0) {
    std::fprintf(stderr, "error: cannot listen on %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Listener);
    return 1;
  }
  int Rc = muxLoop(S, Listener, Stop);
  ::unlink(Path.c_str());
  return Rc;
}

int serve::serveTcp(Service &S, const std::string &HostPort,
                    const std::atomic<bool> &Stop,
                    std::atomic<int> *BoundPort) {
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == HostPort.size()) {
    std::fprintf(stderr, "error: --tcp expects HOST:PORT, got %s\n",
                 HostPort.c_str());
    return 1;
  }
  std::string Host = HostPort.substr(0, Colon);
  std::string Port = HostPort.substr(Colon + 1);

  struct addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  struct addrinfo *Infos = nullptr;
  int Err = ::getaddrinfo(Host.empty() ? nullptr : Host.c_str(),
                          Port.c_str(), &Hints, &Infos);
  if (Err != 0) {
    std::fprintf(stderr, "error: cannot resolve %s: %s\n", HostPort.c_str(),
                 ::gai_strerror(Err));
    return 1;
  }
  int Listener = -1;
  for (struct addrinfo *AI = Infos; AI; AI = AI->ai_next) {
    Listener = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Listener < 0)
      continue;
    int One = 1;
    ::setsockopt(Listener, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(Listener, AI->ai_addr, AI->ai_addrlen) == 0 &&
        ::listen(Listener, 64) == 0)
      break;
    ::close(Listener);
    Listener = -1;
  }
  ::freeaddrinfo(Infos);
  if (Listener < 0) {
    std::fprintf(stderr, "error: cannot listen on %s: %s\n",
                 HostPort.c_str(), std::strerror(errno));
    return 1;
  }
  // Resolve the actual port (":0" binds an ephemeral one) and announce
  // it — tests and scripts discover the address from this line.
  int PortNum = 0;
  struct sockaddr_storage Bound;
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Listener, reinterpret_cast<struct sockaddr *>(&Bound),
                    &BoundLen) == 0) {
    if (Bound.ss_family == AF_INET)
      PortNum = ntohs(reinterpret_cast<struct sockaddr_in *>(&Bound)
                          ->sin_port);
    else if (Bound.ss_family == AF_INET6)
      PortNum = ntohs(reinterpret_cast<struct sockaddr_in6 *>(&Bound)
                          ->sin6_port);
  }
  if (BoundPort)
    BoundPort->store(PortNum, std::memory_order_release);
  std::fprintf(stderr, "pigeon serve: tcp listening on %s:%d\n",
               Host.empty() ? "0.0.0.0" : Host.c_str(), PortNum);
  return muxLoop(S, Listener, Stop);
}
