//===- Render.cpp - Rendering sketches to source text --------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "datagen/Names.h"
#include "datagen/Sketch.h"

#include <cassert>
#include <set>

using namespace pigeon;
using namespace pigeon::datagen;
using pigeon::lang::Language;

namespace {

/// Indentation-aware source writer.
class Writer {
public:
  explicit Writer(int InitialIndent = 0) : Indent(InitialIndent) {}

  void line(const std::string &Text) {
    Out.append(2 * static_cast<size_t>(Indent), ' ');
    Out += Text;
    Out += '\n';
  }
  void blank() { Out += '\n'; }
  void open(const std::string &Text) {
    line(Text);
    ++Indent;
  }
  void close(const std::string &Text = "}") {
    --Indent;
    line(Text);
  }
  /// Python-style: just indentation control.
  void indent() { ++Indent; }
  void dedent() { --Indent; }

  std::string take() { return std::move(Out); }

  /// Appends pre-rendered text verbatim.
  void raw(const std::string &Text) { Out += Text; }

private:
  std::string Out;
  int Indent = 0;
};

/// Inserts \p Statement as the first body line of a rendered function
/// (after its header line), matching the indentation of the original
/// first body line. Real code logs/traces on entry; structurally this
/// keeps function boundaries apart so long-range paths between unrelated
/// functions hit constant context rather than role variables.
std::string withPrologue(std::string Text, const std::string &Statement) {
  size_t HeaderEnd = Text.find('\n');
  if (HeaderEnd == std::string::npos)
    return Text;
  size_t BodyStart = HeaderEnd + 1;
  size_t IndentEnd = BodyStart;
  while (IndentEnd < Text.size() &&
         (Text[IndentEnd] == ' ' || Text[IndentEnd] == '\t'))
    ++IndentEnd;
  std::string IndentStr = Text.substr(BodyStart, IndentEnd - BodyStart);
  Text.insert(BodyStart, IndentStr + Statement + "\n");
  return Text;
}

/// Slots whose names are *known helpers* (external APIs), never renamed
/// when stripping.
bool isHelperSlot(const std::string &Slot) {
  return Slot == "check" || Slot == "init" || Slot == "use";
}

/// Resolves slot names, optionally replacing prediction-target names with
/// minified placeholders a, b, c, ...
class Namer {
public:
  Namer(const IdiomInstance &Inst, bool Strip) : Inst(Inst), Strip(Strip) {}

  std::string operator()(const std::string &Slot) {
    const std::string &Real = Inst.name(Slot);
    if (!Strip || isHelperSlot(Slot))
      return Real;
    auto It = Stripped.find(Slot);
    if (It != Stripped.end())
      return It->second;
    std::string Placeholder(1, static_cast<char>('a' + Stripped.size()));
    Stripped.emplace(Slot, Placeholder);
    return Placeholder;
  }

private:
  const IdiomInstance &Inst;
  bool Strip;
  std::map<std::string, std::string> Stripped;
};

/// C-family increment statement under a structural variant.
std::string increment(const std::string &Var, int Variant) {
  return Variant ? Var + " += 1;" : Var + "++;";
}

//===----------------------------------------------------------------------===//
// JavaScript
//===----------------------------------------------------------------------===//

void renderJsFunction(Writer &W, const IdiomInstance &F, bool Strip) {
  Namer N(F, Strip);
  const std::string &Fn = F.MethodName;
  switch (F.Kind) {
  case IdiomKind::LoopFlag:
    W.open("function " + Fn + "() {");
    W.line("var " + N("flag") + " = false;");
    W.open("while (!" + N("flag") + ") {");
    if (F.ExtraLog)
      W.line("step();");
    W.open("if (" + F.name("check") + "()) {");
    W.line(N("flag") + " = true;");
    W.close();
    W.close();
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::SearchFlag:
    W.open("function " + Fn + "(" + N("items") + ", " + N("target") +
           ") {");
    W.line("var " + N("flag") + " = false;");
    W.open("for (var " + N("item") + " of " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("log(" + N("item") + ");");
    W.open("if (" + N("item") + " " + (F.Variant ? "==" : "===") + " " +
           N("target") + ") {");
    W.line(N("flag") + " = true;");
    if (F.Variant)
      W.line("break;");
    W.close();
    W.close();
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::ConfigFlag:
    W.open("function " + Fn + "() {");
    W.line(F.name("init") + "();");
    W.line("var " + N("flag") + " = false;");
    if (F.Variant) {
      W.line(N("flag") + " = true;");
      W.line(F.name("use") + "();");
    } else {
      W.line(F.name("use") + "();");
      W.line(N("flag") + " = true;");
    }
    if (F.ExtraLog)
      W.line("log(" + N("flag") + ");");
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::CountMatches:
    W.open("function " + Fn + "(" + N("items") + ", " + N("target") +
           ") {");
    W.line("var " + N("counter") + " = 0;");
    W.open("for (var " + N("item") + " of " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("log(" + N("item") + ");");
    W.open("if (" + N("item") + " === " + N("target") + ") {");
    W.line(increment(N("counter"), F.Variant));
    W.close();
    W.close();
    W.line("return " + N("counter") + ";");
    W.close();
    break;
  case IdiomKind::SumValues:
    W.open("function " + Fn + "(" + N("values") + ") {");
    W.line("var " + N("acc") + " = 0;");
    if (F.Variant) {
      W.open("for (var " + N("item") + " of " + N("values") + ") {");
      W.line(N("acc") + " += " + N("item") + ";");
      W.close();
    } else {
      W.open("for (var " + N("index") + " = 0; " + N("index") + " < " +
             N("values") + ".length; " + N("index") + "++) {");
      W.line(N("acc") + " += " + N("values") + "[" + N("index") + "];");
      W.close();
    }
    if (F.ExtraLog)
      W.line("emit(" + N("acc") + ");");
    W.line("return " + N("acc") + ";");
    W.close();
    break;
  case IdiomKind::FindMax:
    W.open("function " + Fn + "(" + N("items") + ") {");
    W.line("var " + N("best") + " = 0;");
    W.open("for (var " + N("item") + " of " + N("items") + ") {");
    W.open("if (" + N("item") + " " + (F.Variant ? ">=" : ">") + " " +
           N("best") + ") {");
    W.line(N("best") + " = " + N("item") + ";");
    W.close();
    W.close();
    if (F.ExtraLog)
      W.line("log(" + N("best") + ");");
    W.line("return " + N("best") + ";");
    W.close();
    break;
  case IdiomKind::IndexOf:
    W.open("function " + Fn + "(" + N("items") + ", " + N("target") +
           ") {");
    W.open("for (var " + N("index") + " = 0; " + N("index") + " < " +
           N("items") + ".length; " + N("index") + "++) {");
    W.open("if (" + N("items") + "[" + N("index") + "] === " + N("target") +
           ") {");
    W.line("return " + N("index") + ";");
    W.close();
    W.close();
    W.line("return -1;");
    W.close();
    break;
  case IdiomKind::BuildList:
    W.open("function " + Fn + "(" + N("items") + ", " + N("limit") + ") {");
    W.line("var " + N("results") + " = [];");
    W.open("for (var " + N("item") + " of " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("log(" + N("item") + ");");
    W.open("if (" + N("item") + " " + (F.Variant ? ">=" : ">") + " " +
           N("limit") + ") {");
    W.line(N("results") + ".push(" + N("item") + ");");
    W.close();
    W.close();
    W.line("return " + N("results") + ";");
    W.close();
    break;
  case IdiomKind::JoinStrings:
    W.open("function " + Fn + "(" + N("items") + ", " + N("sep") + ") {");
    W.line("var " + N("builder") + " = '';");
    W.open("for (var " + N("item") + " of " + N("items") + ") {");
    if (F.Variant) {
      W.line(N("builder") + " += " + N("item") + ";");
      W.line(N("builder") + " += " + N("sep") + ";");
    } else {
      W.line(N("builder") + " += " + N("item") + " + " + N("sep") + ";");
    }
    W.close();
    W.line("return " + N("builder") + ";");
    W.close();
    break;
  case IdiomKind::HttpRequest:
    W.open("function " + Fn + "(" + N("url") + ", " + N("callback") +
           ") {");
    W.line("var " + N("request") + " = new XMLHttpRequest();");
    W.line(N("request") + ".open('GET', " + N("url") + ", false);");
    W.line(N("request") + ".send(" + N("callback") + ");");
    W.close();
    break;
  case IdiomKind::ParseNumber:
    W.open("function " + Fn + "(" + N("text") + ", " + N("fallback") +
           ") {");
    W.line("var " + N("value") + " = parseInt(" + N("text") + ", 10);");
    W.open("if (isNaN(" + N("value") + ")) {");
    W.line("return " + N("fallback") + ";");
    W.close();
    W.line("return " + N("value") + ";");
    W.close();
    break;
  case IdiomKind::MapLookup:
    W.open("function " + Fn + "(" + N("map") + ", " + N("key") + ", " +
           N("fallback") + ") {");
    if (F.Variant) {
      W.open("if (!" + N("map") + "[" + N("key") + "]) {");
      W.line("return " + N("fallback") + ";");
      W.close();
      W.line("return " + N("map") + "[" + N("key") + "];");
    } else {
      W.open("if (" + N("map") + "[" + N("key") + "]) {");
      W.line("return " + N("map") + "[" + N("key") + "];");
      W.close();
      W.line("return " + N("fallback") + ";");
    }
    W.close();
    break;
  case IdiomKind::ScoreAccum:
    W.open("function " + Fn + "(" + N("first") + ", " + N("second") +
           ") {");
    W.line("var " + N("acc") + " = 0;");
    if (F.Variant) {
      W.line(N("acc") + " = " + N("acc") + " + " + N("first") + ";");
      W.line(N("acc") + " = " + N("acc") + " + " + N("second") + ";");
    } else {
      W.line(N("acc") + " += " + N("first") + ";");
      W.line(N("acc") + " += " + N("second") + ";");
    }
    if (F.ExtraLog)
      W.line("emit(" + N("acc") + ");");
    W.line("return " + N("acc") + ";");
    W.close();
    break;
  case IdiomKind::GetterSetter:
  case IdiomKind::ReadLines:
    assert(false && "idiom not available in JavaScript");
    break;
  }
  W.blank();
}

std::string renderJs(const FileSketch &Sketch, bool Strip) {
  Writer W;
  bool First = true;
  for (const IdiomInstance &F : Sketch.Functions) {
    // Registration calls between top-level functions, as real modules
    // have (exports, constants, wiring). Structurally they separate
    // adjacent functions so long paths cross them instead of role variables.
    if (!First)
      W.line("register('" + Sketch.Project + "');");
    First = false;
    Writer FW;
    renderJsFunction(FW, F, Strip);
    W.raw(withPrologue(FW.take(), "trace('start');"));
  }
  return W.take();
}

//===----------------------------------------------------------------------===//
// Java
//===----------------------------------------------------------------------===//

void renderJavaMethod(Writer &W, const IdiomInstance &F, bool Strip) {
  Namer N(F, Strip);
  const std::string &Fn = F.MethodName;
  switch (F.Kind) {
  case IdiomKind::LoopFlag:
    W.open("boolean " + Fn + "() {");
    W.line("boolean " + N("flag") + " = false;");
    W.open("while (!" + N("flag") + ") {");
    if (F.ExtraLog)
      W.line("step();");
    W.open("if (" + F.name("check") + "()) {");
    W.line(N("flag") + " = true;");
    W.close();
    W.close();
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::SearchFlag:
    W.open("boolean " + Fn + "(List<Integer> " + N("items") + ", int " +
           N("target") + ") {");
    W.line("boolean " + N("flag") + " = false;");
    W.open("for (int " + N("item") + " : " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("System.out.println(" + N("item") + ");");
    W.open("if (" + N("item") + " == " + N("target") + ") {");
    W.line(N("flag") + " = true;");
    if (F.Variant)
      W.line("break;");
    W.close();
    W.close();
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::ConfigFlag:
    W.open("boolean " + Fn + "() {");
    W.line(F.name("init") + "();");
    W.line("boolean " + N("flag") + " = false;");
    if (F.Variant) {
      W.line(N("flag") + " = true;");
      W.line(F.name("use") + "();");
    } else {
      W.line(F.name("use") + "();");
      W.line(N("flag") + " = true;");
    }
    if (F.ExtraLog)
      W.line("System.out.println(" + N("flag") + ");");
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::CountMatches:
    W.open("int " + Fn + "(List<Integer> " + N("items") + ", int " +
           N("target") + ") {");
    W.line("int " + N("counter") + " = 0;");
    W.open("for (int " + N("item") + " : " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("System.out.println(" + N("item") + ");");
    W.open("if (" + N("item") + " == " + N("target") + ") {");
    W.line(increment(N("counter"), F.Variant));
    W.close();
    W.close();
    W.line("return " + N("counter") + ";");
    W.close();
    break;
  case IdiomKind::SumValues:
    W.open("int " + Fn + "(int[] " + N("values") + ") {");
    W.line("int " + N("acc") + " = 0;");
    if (F.Variant) {
      W.open("for (int " + N("item") + " : " + N("values") + ") {");
      W.line(N("acc") + " += " + N("item") + ";");
      W.close();
    } else {
      W.open("for (int " + N("index") + " = 0; " + N("index") + " < " +
             N("values") + ".length; " + N("index") + "++) {");
      W.line(N("acc") + " += " + N("values") + "[" + N("index") + "];");
      W.close();
    }
    if (F.ExtraLog)
      W.line("System.out.println(" + N("acc") + ");");
    W.line("return " + N("acc") + ";");
    W.close();
    break;
  case IdiomKind::FindMax:
    W.open("int " + Fn + "(List<Integer> " + N("items") + ") {");
    W.line("int " + N("best") + " = 0;");
    W.open("for (int " + N("item") + " : " + N("items") + ") {");
    W.open("if (" + N("item") + " " + (F.Variant ? ">=" : ">") + " " +
           N("best") + ") {");
    W.line(N("best") + " = " + N("item") + ";");
    W.close();
    W.close();
    if (F.ExtraLog)
      W.line("System.out.println(" + N("best") + ");");
    W.line("return " + N("best") + ";");
    W.close();
    break;
  case IdiomKind::IndexOf:
    W.open("int " + Fn + "(int[] " + N("items") + ", int " + N("target") +
           ") {");
    W.open("for (int " + N("index") + " = 0; " + N("index") + " < " +
           N("items") + ".length; " + N("index") + "++) {");
    W.open("if (" + N("items") + "[" + N("index") + "] == " + N("target") +
           ") {");
    W.line("return " + N("index") + ";");
    W.close();
    W.close();
    W.line("return -1;");
    W.close();
    break;
  case IdiomKind::BuildList:
    W.open("List<Integer> " + Fn + "(List<Integer> " + N("items") +
           ", int " + N("limit") + ") {");
    W.line("List<Integer> " + N("results") +
           " = new ArrayList<Integer>();");
    W.open("for (int " + N("item") + " : " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("System.out.println(" + N("item") + ");");
    W.open("if (" + N("item") + " " + (F.Variant ? ">=" : ">") + " " +
           N("limit") + ") {");
    W.line(N("results") + ".add(" + N("item") + ");");
    W.close();
    W.close();
    W.line("return " + N("results") + ";");
    W.close();
    break;
  case IdiomKind::JoinStrings:
    W.open("String " + Fn + "(List<String> " + N("items") + ", String " +
           N("sep") + ") {");
    W.line("StringBuilder " + N("builder") + " = new StringBuilder();");
    W.open("for (String " + N("item") + " : " + N("items") + ") {");
    W.line(N("builder") + ".append(" + N("item") + ");");
    W.line(N("builder") + ".append(" + N("sep") + ");");
    W.close();
    W.line("return " + N("builder") + ".toString();");
    W.close();
    break;
  case IdiomKind::HttpRequest:
    W.open("String " + Fn + "(HttpClient " + N("client") + ", String " +
           N("url") + ") {");
    W.line("HttpRequest " + N("request") + " = new HttpRequest(" +
           N("url") + ");");
    W.line("HttpResponse " + N("response") + " = " + N("client") +
           ".execute(" + N("request") + ");");
    W.line("return " + N("response") + ".getBody();");
    W.close();
    break;
  case IdiomKind::ParseNumber:
    W.open("int " + Fn + "(String " + N("text") + ", int " + N("fallback") +
           ") {");
    W.open("try {");
    W.line("int " + N("value") + " = Integer.parseInt(" + N("text") +
           ");");
    W.line("return " + N("value") + ";");
    W.close();
    W.open("catch (NumberFormatException " + N("error") + ") {");
    W.line("return " + N("fallback") + ";");
    W.close();
    W.close();
    break;
  case IdiomKind::MapLookup:
  {
    // The map's value type varies per instance, so the type of
    // `map.get(...)` is not locally determined — the realistic hard case
    // for the full-type task.
    std::string ValueType = F.Variant ? "Integer" : "String";
    std::string ReturnType = F.Variant ? "int" : "String";
    W.open(ReturnType + " " + Fn + "(Map<String, " + ValueType + "> " +
           N("map") + ", String " + N("key") + ", " + ReturnType + " " +
           N("fallback") + ") {");
    if (F.ExtraLog) {
      W.open("if (!" + N("map") + ".containsKey(" + N("key") + ")) {");
      W.line("return " + N("fallback") + ";");
      W.close();
      W.line("return " + N("map") + ".get(" + N("key") + ");");
    } else {
      W.open("if (" + N("map") + ".containsKey(" + N("key") + ")) {");
      W.line("return " + N("map") + ".get(" + N("key") + ");");
      W.close();
      W.line("return " + N("fallback") + ";");
    }
    W.close();
    break;
  }
  case IdiomKind::GetterSetter: {
    std::string Field = N("field");
    std::string Cap = capitalize(F.name("field"));
    W.line("private int " + Field + ";");
    W.blank();
    W.open("int get" + Cap + "() {");
    W.line("return " + Field + ";");
    W.close();
    W.blank();
    W.open("void set" + Cap + "(int " + Field + ") {");
    W.line("this." + F.name("field") + " = " + Field + ";");
    W.close();
    break;
  }
  case IdiomKind::ReadLines:
    W.open("int " + Fn + "(BufferedReader " + N("reader") + ") {");
    W.line("int " + N("counter") + " = 0;");
    W.open("try {");
    W.line("String " + N("line") + " = " + N("reader") + ".readLine();");
    W.open("while (" + N("line") + " != null) {");
    W.line(N("counter") + "++;");
    W.line(N("line") + " = " + N("reader") + ".readLine();");
    W.close();
    W.close();
    W.open("catch (IOException ioe) {");
    W.line("return " + N("counter") + ";");
    W.close();
    W.line("return " + N("counter") + ";");
    W.close();
    break;
  case IdiomKind::ScoreAccum:
    W.open("int " + Fn + "(int " + N("first") + ", int " + N("second") +
           ") {");
    W.line("int " + N("acc") + " = 0;");
    if (F.Variant) {
      W.line(N("acc") + " = " + N("acc") + " + " + N("first") + ";");
      W.line(N("acc") + " = " + N("acc") + " + " + N("second") + ";");
    } else {
      W.line(N("acc") + " += " + N("first") + ";");
      W.line(N("acc") + " += " + N("second") + ";");
    }
    if (F.ExtraLog)
      W.line("System.out.println(" + N("acc") + ");");
    W.line("return " + N("acc") + ";");
    W.close();
    break;
  }
  W.blank();
}

std::string renderJava(const FileSketch &Sketch, bool Strip) {
  std::set<std::string> Imports;
  for (const IdiomInstance &F : Sketch.Functions) {
    switch (F.Kind) {
    case IdiomKind::SearchFlag:
    case IdiomKind::CountMatches:
    case IdiomKind::FindMax:
      Imports.insert("java.util.List");
      break;
    case IdiomKind::BuildList:
      Imports.insert("java.util.List");
      Imports.insert("java.util.ArrayList");
      break;
    case IdiomKind::JoinStrings:
      Imports.insert("java.util.List");
      break;
    case IdiomKind::MapLookup:
      Imports.insert("java.util.Map");
      break;
    case IdiomKind::ReadLines:
      Imports.insert("java.io.BufferedReader");
      Imports.insert("java.io.IOException");
      break;
    case IdiomKind::HttpRequest:
      Imports.insert("com.example.http.HttpClient");
      Imports.insert("com.example.http.HttpRequest");
      Imports.insert("com.example.http.HttpResponse");
      break;
    default:
      break;
    }
  }
  Writer W;
  W.line("package com." + Sketch.Project + ";");
  W.blank();
  for (const std::string &Import : Imports)
    W.line("import " + Import + ";");
  if (!Imports.empty())
    W.blank();
  W.open("public class " + Sketch.ClassName + " {");
  for (const IdiomInstance &F : Sketch.Functions) {
    Writer FW(/*InitialIndent=*/1);
    renderJavaMethod(FW, F, Strip);
    std::string Text = FW.take();
    if (F.Kind != IdiomKind::GetterSetter)
      Text = withPrologue(Text, "System.out.println(\"start\");");
    W.raw(Text);
  }
  W.close();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Python
//===----------------------------------------------------------------------===//

void renderPyFunction(Writer &W, const IdiomInstance &F, bool Strip) {
  Namer RawN(F, Strip);
  auto N = [&](const std::string &Slot) { return toSnakeCase(RawN(Slot)); };
  auto Helper = [&](const std::string &Slot) {
    return toSnakeCase(F.name(Slot));
  };
  std::string Fn = toSnakeCase(F.MethodName);
  switch (F.Kind) {
  case IdiomKind::LoopFlag:
    W.line("def " + Fn + "():");
    W.indent();
    W.line(N("flag") + " = False");
    W.line("while not " + N("flag") + ":");
    W.indent();
    if (F.ExtraLog)
      W.line("step()");
    W.line("if " + Helper("check") + "():");
    W.indent();
    W.line(N("flag") + " = True");
    W.dedent();
    W.dedent();
    W.line("return " + N("flag"));
    W.dedent();
    break;
  case IdiomKind::SearchFlag:
    W.line("def " + Fn + "(" + N("items") + ", " + N("target") + "):");
    W.indent();
    W.line(N("flag") + " = False");
    W.line("for " + N("item") + " in " + N("items") + ":");
    W.indent();
    if (F.ExtraLog)
      W.line("log(" + N("item") + ")");
    W.line("if " + N("item") + " == " + N("target") + ":");
    W.indent();
    W.line(N("flag") + " = True");
    if (F.Variant)
      W.line("break");
    W.dedent();
    W.dedent();
    W.line("return " + N("flag"));
    W.dedent();
    break;
  case IdiomKind::ConfigFlag:
    W.line("def " + Fn + "():");
    W.indent();
    W.line(Helper("init") + "()");
    W.line(N("flag") + " = False");
    if (F.Variant) {
      W.line(N("flag") + " = True");
      W.line(Helper("use") + "()");
    } else {
      W.line(Helper("use") + "()");
      W.line(N("flag") + " = True");
    }
    W.line("return " + N("flag"));
    W.dedent();
    break;
  case IdiomKind::CountMatches:
    W.line("def " + Fn + "(" + N("items") + ", " + N("target") + "):");
    W.indent();
    W.line(N("counter") + " = 0");
    W.line("for " + N("item") + " in " + N("items") + ":");
    W.indent();
    if (F.ExtraLog)
      W.line("log(" + N("item") + ")");
    W.line("if " + N("item") + " == " + N("target") + ":");
    W.indent();
    W.line(F.Variant ? N("counter") + " = " + N("counter") + " + 1"
                     : N("counter") + " += 1");
    W.dedent();
    W.dedent();
    W.line("return " + N("counter"));
    W.dedent();
    break;
  case IdiomKind::SumValues:
    W.line("def " + Fn + "(" + N("values") + "):");
    W.indent();
    W.line(N("acc") + " = 0");
    if (F.Variant) {
      W.line("for " + N("item") + " in " + N("values") + ":");
      W.indent();
      W.line(N("acc") + " += " + N("item"));
      W.dedent();
    } else {
      W.line("for " + N("index") + " in range(len(" + N("values") +
             ")):");
      W.indent();
      W.line(N("acc") + " += " + N("values") + "[" + N("index") + "]");
      W.dedent();
    }
    if (F.ExtraLog)
      W.line("emit(" + N("acc") + ")");
    W.line("return " + N("acc"));
    W.dedent();
    break;
  case IdiomKind::FindMax:
    W.line("def " + Fn + "(" + N("items") + "):");
    W.indent();
    W.line(N("best") + " = 0");
    W.line("for " + N("item") + " in " + N("items") + ":");
    W.indent();
    W.line("if " + N("item") + " " + (F.Variant ? ">=" : ">") + " " +
           N("best") + ":");
    W.indent();
    W.line(N("best") + " = " + N("item"));
    W.dedent();
    W.dedent();
    W.line("return " + N("best"));
    W.dedent();
    break;
  case IdiomKind::IndexOf:
    W.line("def " + Fn + "(" + N("items") + ", " + N("target") + "):");
    W.indent();
    W.line("for " + N("index") + " in range(len(" + N("items") + ")):");
    W.indent();
    W.line("if " + N("items") + "[" + N("index") + "] == " + N("target") +
           ":");
    W.indent();
    W.line("return " + N("index"));
    W.dedent();
    W.dedent();
    W.line("return -1");
    W.dedent();
    break;
  case IdiomKind::BuildList:
    W.line("def " + Fn + "(" + N("items") + ", " + N("limit") + "):");
    W.indent();
    W.line(N("results") + " = []");
    W.line("for " + N("item") + " in " + N("items") + ":");
    W.indent();
    if (F.ExtraLog)
      W.line("log(" + N("item") + ")");
    W.line("if " + N("item") + " " + (F.Variant ? ">=" : ">") + " " +
           N("limit") + ":");
    W.indent();
    W.line(N("results") + ".append(" + N("item") + ")");
    W.dedent();
    W.dedent();
    W.line("return " + N("results"));
    W.dedent();
    break;
  case IdiomKind::JoinStrings:
    W.line("def " + Fn + "(" + N("items") + ", " + N("sep") + "):");
    W.indent();
    W.line(N("builder") + " = ''");
    W.line("for " + N("item") + " in " + N("items") + ":");
    W.indent();
    W.line(N("builder") + " += " + N("item") + " + " + N("sep"));
    W.dedent();
    W.line("return " + N("builder"));
    W.dedent();
    break;
  case IdiomKind::ParseNumber:
    W.line("def " + Fn + "(" + N("text") + ", " + N("fallback") + "):");
    W.indent();
    W.line("try:");
    W.indent();
    W.line(N("value") + " = int(" + N("text") + ")");
    W.line("return " + N("value"));
    W.dedent();
    W.line("except ValueError as " + N("error") + ":");
    W.indent();
    W.line("return " + N("fallback"));
    W.dedent();
    W.dedent();
    break;
  case IdiomKind::MapLookup:
    W.line("def " + Fn + "(" + N("map") + ", " + N("key") + ", " +
           N("fallback") + "):");
    W.indent();
    if (F.Variant) {
      W.line("if " + N("key") + " not in " + N("map") + ":");
      W.indent();
      W.line("return " + N("fallback"));
      W.dedent();
      W.line("return " + N("map") + "[" + N("key") + "]");
    } else {
      W.line("if " + N("key") + " in " + N("map") + ":");
      W.indent();
      W.line("return " + N("map") + "[" + N("key") + "]");
      W.dedent();
      W.line("return " + N("fallback"));
    }
    W.dedent();
    break;
  case IdiomKind::GetterSetter: {
    std::string Field = N("field");
    std::string Real = toSnakeCase(F.name("field"));
    W.line("class Holder:");
    W.indent();
    W.line("def __init__(self):");
    W.indent();
    W.line("self." + Real + " = 0");
    W.dedent();
    W.blank();
    W.line("def get_" + Real + "(self):");
    W.indent();
    W.line("return self." + Real);
    W.dedent();
    W.blank();
    W.line("def set_" + Real + "(self, " + Field + "):");
    W.indent();
    W.line("self." + Real + " = " + Field);
    W.dedent();
    W.dedent();
    break;
  }
  case IdiomKind::ReadLines:
    W.line("def " + Fn + "(" + N("reader") + "):");
    W.indent();
    W.line(N("counter") + " = 0");
    W.line(N("line") + " = " + N("reader") + ".readline()");
    W.line("while " + N("line") + ":");
    W.indent();
    W.line(N("counter") + " += 1");
    W.line(N("line") + " = " + N("reader") + ".readline()");
    W.dedent();
    W.line("return " + N("counter"));
    W.dedent();
    break;
  case IdiomKind::ScoreAccum:
    W.line("def " + Fn + "(" + N("first") + ", " + N("second") + "):");
    W.indent();
    W.line(N("acc") + " = 0");
    if (F.Variant) {
      W.line(N("acc") + " = " + N("acc") + " + " + N("first"));
      W.line(N("acc") + " = " + N("acc") + " + " + N("second"));
    } else {
      W.line(N("acc") + " += " + N("first"));
      W.line(N("acc") + " += " + N("second"));
    }
    if (F.ExtraLog)
      W.line("emit(" + N("acc") + ")");
    W.line("return " + N("acc"));
    W.dedent();
    break;
  case IdiomKind::HttpRequest:
    assert(false && "idiom not available in Python");
    break;
  }
  W.blank();
}

std::string renderPython(const FileSketch &Sketch, bool Strip) {
  Writer W;
  for (const IdiomInstance &F : Sketch.Functions) {
    Writer FW;
    renderPyFunction(FW, F, Strip);
    std::string Text = FW.take();
    if (F.Kind != IdiomKind::GetterSetter)
      Text = withPrologue(Text, "print('start')");
    W.raw(Text);
  }
  return W.take();
}

//===----------------------------------------------------------------------===//
// C#
//===----------------------------------------------------------------------===//

void renderCsMethod(Writer &W, const IdiomInstance &F, bool Strip) {
  Namer N(F, Strip);
  auto Helper = [&](const std::string &Slot) {
    return toPascalCase(F.name(Slot));
  };
  std::string Fn = toPascalCase(F.MethodName);
  switch (F.Kind) {
  case IdiomKind::LoopFlag:
    W.open("bool " + Fn + "() {");
    W.line("bool " + N("flag") + " = false;");
    W.open("while (!" + N("flag") + ") {");
    if (F.ExtraLog)
      W.line("Step();");
    W.open("if (" + Helper("check") + "()) {");
    W.line(N("flag") + " = true;");
    W.close();
    W.close();
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::SearchFlag:
    W.open("bool " + Fn + "(List<int> " + N("items") + ", int " +
           N("target") + ") {");
    W.line("bool " + N("flag") + " = false;");
    W.open("foreach (var " + N("item") + " in " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("Console.WriteLine(" + N("item") + ");");
    W.open("if (" + N("item") + " == " + N("target") + ") {");
    W.line(N("flag") + " = true;");
    if (F.Variant)
      W.line("break;");
    W.close();
    W.close();
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::ConfigFlag:
    W.open("bool " + Fn + "() {");
    W.line(Helper("init") + "();");
    W.line("bool " + N("flag") + " = false;");
    if (F.Variant) {
      W.line(N("flag") + " = true;");
      W.line(Helper("use") + "();");
    } else {
      W.line(Helper("use") + "();");
      W.line(N("flag") + " = true;");
    }
    if (F.ExtraLog)
      W.line("Console.WriteLine(" + N("flag") + ");");
    W.line("return " + N("flag") + ";");
    W.close();
    break;
  case IdiomKind::CountMatches:
    W.open("int " + Fn + "(List<int> " + N("items") + ", int " +
           N("target") + ") {");
    W.line("int " + N("counter") + " = 0;");
    W.open("foreach (var " + N("item") + " in " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("Console.WriteLine(" + N("item") + ");");
    W.open("if (" + N("item") + " == " + N("target") + ") {");
    W.line(increment(N("counter"), F.Variant));
    W.close();
    W.close();
    W.line("return " + N("counter") + ";");
    W.close();
    break;
  case IdiomKind::SumValues:
    W.open("int " + Fn + "(int[] " + N("values") + ") {");
    W.line("int " + N("acc") + " = 0;");
    if (F.Variant) {
      W.open("foreach (var " + N("item") + " in " + N("values") + ") {");
      W.line(N("acc") + " += " + N("item") + ";");
      W.close();
    } else {
      W.open("for (int " + N("index") + " = 0; " + N("index") + " < " +
             N("values") + ".Length; " + N("index") + "++) {");
      W.line(N("acc") + " += " + N("values") + "[" + N("index") + "];");
      W.close();
    }
    if (F.ExtraLog)
      W.line("Console.WriteLine(" + N("acc") + ");");
    W.line("return " + N("acc") + ";");
    W.close();
    break;
  case IdiomKind::FindMax:
    W.open("int " + Fn + "(List<int> " + N("items") + ") {");
    W.line("int " + N("best") + " = 0;");
    W.open("foreach (var " + N("item") + " in " + N("items") + ") {");
    W.open("if (" + N("item") + " " + (F.Variant ? ">=" : ">") + " " +
           N("best") + ") {");
    W.line(N("best") + " = " + N("item") + ";");
    W.close();
    W.close();
    W.line("return " + N("best") + ";");
    W.close();
    break;
  case IdiomKind::IndexOf:
    W.open("int " + Fn + "(int[] " + N("items") + ", int " + N("target") +
           ") {");
    W.open("for (int " + N("index") + " = 0; " + N("index") + " < " +
           N("items") + ".Length; " + N("index") + "++) {");
    W.open("if (" + N("items") + "[" + N("index") + "] == " + N("target") +
           ") {");
    W.line("return " + N("index") + ";");
    W.close();
    W.close();
    W.line("return -1;");
    W.close();
    break;
  case IdiomKind::BuildList:
    W.open("List<int> " + Fn + "(List<int> " + N("items") + ", int " +
           N("limit") + ") {");
    W.line("var " + N("results") + " = new List<int>();");
    W.open("foreach (var " + N("item") + " in " + N("items") + ") {");
    if (F.ExtraLog)
      W.line("Console.WriteLine(" + N("item") + ");");
    W.open("if (" + N("item") + " " + (F.Variant ? ">=" : ">") + " " +
           N("limit") + ") {");
    W.line(N("results") + ".Add(" + N("item") + ");");
    W.close();
    W.close();
    W.line("return " + N("results") + ";");
    W.close();
    break;
  case IdiomKind::JoinStrings:
    W.open("string " + Fn + "(List<string> " + N("items") + ", string " +
           N("sep") + ") {");
    W.line("var " + N("builder") + " = new StringBuilder();");
    W.open("foreach (var " + N("item") + " in " + N("items") + ") {");
    W.line(N("builder") + ".Append(" + N("item") + ");");
    W.line(N("builder") + ".Append(" + N("sep") + ");");
    W.close();
    W.line("return " + N("builder") + ".ToString();");
    W.close();
    break;
  case IdiomKind::HttpRequest:
    W.open("string " + Fn + "(HttpClient " + N("client") + ", string " +
           N("url") + ") {");
    W.line("var " + N("request") + " = new HttpRequest(" + N("url") +
           ");");
    W.line("var " + N("response") + " = " + N("client") + ".Execute(" +
           N("request") + ");");
    W.line("return " + N("response") + ".GetBody();");
    W.close();
    break;
  case IdiomKind::ParseNumber:
    W.open("int " + Fn + "(string " + N("text") + ", int " + N("fallback") +
           ") {");
    W.open("try {");
    W.line("int " + N("value") + " = Convert.ToInt32(" + N("text") + ");");
    W.line("return " + N("value") + ";");
    W.close();
    W.open("catch (FormatException " + N("error") + ") {");
    W.line("return " + N("fallback") + ";");
    W.close();
    W.close();
    break;
  case IdiomKind::MapLookup: {
    std::string ValueType = F.Variant ? "int" : "string";
    W.open(ValueType + " " + Fn + "(Dictionary<string, " + ValueType +
           "> " + N("map") + ", string " + N("key") + ", " + ValueType +
           " " + N("fallback") + ") {");
    if (F.ExtraLog) {
      W.open("if (!" + N("map") + ".ContainsKey(" + N("key") + ")) {");
      W.line("return " + N("fallback") + ";");
      W.close();
      W.line("return " + N("map") + "[" + N("key") + "];");
    } else {
      W.open("if (" + N("map") + ".ContainsKey(" + N("key") + ")) {");
      W.line("return " + N("map") + "[" + N("key") + "];");
      W.close();
      W.line("return " + N("fallback") + ";");
    }
    W.close();
    break;
  }
  case IdiomKind::GetterSetter: {
    std::string Field = N("field");
    std::string Cap = toPascalCase(F.name("field"));
    W.line("private int " + Field + ";");
    W.blank();
    W.line("public int " + Cap + " { get; set; }");
    W.blank();
    W.open("int Get" + Cap + "() {");
    W.line("return " + Field + ";");
    W.close();
    W.blank();
    W.open("void Set" + Cap + "(int " + Field + ") {");
    W.line("this." + F.name("field") + " = " + Field + ";");
    W.close();
    break;
  }
  case IdiomKind::ScoreAccum:
    W.open("int " + Fn + "(int " + N("first") + ", int " + N("second") +
           ") {");
    W.line("int " + N("acc") + " = 0;");
    if (F.Variant) {
      W.line(N("acc") + " = " + N("acc") + " + " + N("first") + ";");
      W.line(N("acc") + " = " + N("acc") + " + " + N("second") + ";");
    } else {
      W.line(N("acc") + " += " + N("first") + ";");
      W.line(N("acc") + " += " + N("second") + ";");
    }
    if (F.ExtraLog)
      W.line("Console.WriteLine(" + N("acc") + ");");
    W.line("return " + N("acc") + ";");
    W.close();
    break;
  case IdiomKind::ReadLines:
    assert(false && "idiom not available in C#");
    break;
  }
  W.blank();
}

std::string renderCs(const FileSketch &Sketch, bool Strip) {
  Writer W;
  W.line("using System;");
  W.line("using System.Collections.Generic;");
  W.line("using System.Text;");
  W.blank();
  W.open("namespace " + toPascalCase(Sketch.Project) + " {");
  W.open("class " + Sketch.ClassName + " {");
  for (const IdiomInstance &F : Sketch.Functions) {
    Writer FW(/*InitialIndent=*/2);
    renderCsMethod(FW, F, Strip);
    std::string Text = FW.take();
    if (F.Kind != IdiomKind::GetterSetter)
      Text = withPrologue(Text, "Console.WriteLine(\"start\");");
    W.raw(Text);
  }
  W.close();
  W.close();
  return W.take();
}

} // namespace

std::string datagen::render(const FileSketch &Sketch, Language Lang,
                            bool StripNames) {
  switch (Lang) {
  case Language::JavaScript:
    return renderJs(Sketch, StripNames);
  case Language::Java:
    return renderJava(Sketch, StripNames);
  case Language::Python:
    return renderPython(Sketch, StripNames);
  case Language::CSharp:
    return renderCs(Sketch, StripNames);
  }
  return "";
}
