//===- Sketch.h - Language-agnostic program sketches -------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus substrate. The paper trains on GitHub corpora; offline we
/// synthesize them. A *sketch* is a language-agnostic program: a file of
/// idiom instances (loop-flags, counters, accumulators, getters, request
/// handlers, ...) whose variable and method names are drawn from
/// role-conditioned distributions with per-project drift and noise.
/// Renderers turn sketches into real JavaScript / Java / Python / C#
/// source text, which the frontends then re-parse — so the learners see
/// exactly the joint (names × syntax) distribution the paper exploits.
///
/// Crucially, several idiom groups are *statement-locally identical* and
/// differ only in surrounding control flow (e.g. LoopFlag vs SearchFlag
/// vs ConfigFlag all contain `flag = false; ...; flag = true;`). These
/// reproduce the paper's Fig. 3 argument: single-statement relation
/// models (UnuglifyJS) cannot separate them, AST paths can.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_DATAGEN_SKETCH_H
#define PIGEON_DATAGEN_SKETCH_H

#include "lang/common/Frontend.h"

#include <map>
#include <string>
#include <vector>

namespace pigeon {
namespace datagen {

/// Semantic role of a variable; names are sampled conditioned on role.
enum class Role {
  LoopFlag,   ///< done / finished / complete / stop.
  FoundFlag,  ///< found / exists / has / matched.
  ConfigFlag, ///< enabled / active / verbose / debug.
  Counter,    ///< count / counter / total / num.
  Index,      ///< i / j / index / idx / pos.
  Accumulator,///< sum / total / acc.
  Best,       ///< max / best / largest / highest.
  Collection, ///< items / values / list / elements / array / data.
  Item,       ///< item / value / element / elem / entry.
  Target,     ///< target / value / key / wanted.
  Results,    ///< results / matches / filtered / output.
  Builder,    ///< sb / builder / buf / result.
  Separator,  ///< sep / delim / separator.
  Text,       ///< text / s / str / input / line.
  Number,     ///< value / num / n / parsed.
  Request,    ///< request / req.
  Response,   ///< response / res / resp.
  Url,        ///< url / uri / endpoint / address.
  Callback,   ///< callback / cb / handler.
  Client,     ///< client / conn / connection.
  Map,        ///< map / cache / table / dict / lookup.
  Key,        ///< key / k / id / name.
  Default,    ///< fallback / default value names.
  Error,      ///< e / err / error / ex.
  Limit,      ///< n / limit / size / len.
  Reader,     ///< reader / file / stream / f.
  Line,       ///< line / row / text.
  Field,      ///< width / height / name / size / color / title / status.
  Score,      ///< score / rating / weight / priority (straight-line sums).
};

/// The idiom templates the generator composes files from.
enum class IdiomKind {
  LoopFlag,     ///< flag loop waiting for a condition.
  SearchFlag,   ///< flag set when an element matches a target.
  ConfigFlag,   ///< straight-line flag toggling (Fig. 3b's shape).
  CountMatches, ///< count elements equal to a target.
  SumValues,    ///< accumulate a numeric total.
  FindMax,      ///< track the maximum element.
  IndexOf,      ///< return the index of a target, else -1.
  BuildList,    ///< filter elements above a limit into a result list.
  JoinStrings,  ///< concatenate elements with a separator.
  HttpRequest,  ///< issue a request to a url (web-flavoured).
  ParseNumber,  ///< string → number with error handling.
  MapLookup,    ///< guarded map lookup with a default.
  GetterSetter, ///< field with get/set accessors (class languages).
  ReadLines,    ///< read and process lines from a reader.
  ScoreAccum,   ///< straight-line accumulation (no loop) — locally
                ///< identical to SumValues' `+=` lines; only the missing
                ///< enclosing loop (a long-range cue) tells them apart.
};

/// All idioms, for iteration.
inline constexpr IdiomKind AllIdioms[] = {
    IdiomKind::LoopFlag,   IdiomKind::SearchFlag,   IdiomKind::ConfigFlag,
    IdiomKind::CountMatches, IdiomKind::SumValues,  IdiomKind::FindMax,
    IdiomKind::IndexOf,    IdiomKind::BuildList,    IdiomKind::JoinStrings,
    IdiomKind::HttpRequest, IdiomKind::ParseNumber, IdiomKind::MapLookup,
    IdiomKind::GetterSetter, IdiomKind::ReadLines, IdiomKind::ScoreAccum,
};

/// \returns a short identifier for \p Kind (for logs and DESIGN docs).
const char *idiomName(IdiomKind Kind);

/// One concrete idiom instance: the sampled method name and a map from
/// the idiom's slot names to the sampled identifier names.
struct IdiomInstance {
  IdiomKind Kind;
  /// Canonical camelCase method name; renderers convert to the language's
  /// convention (snake_case for Python, PascalCase for C# methods).
  std::string MethodName;
  /// Slot → sampled identifier (canonical camelCase).
  std::map<std::string, std::string> Names;
  /// Structural micro-variant (0/1): increment style, loop style, guard
  /// placement. Real code varies structurally within an idiom; without
  /// this the corpus would make even bag-of-words features deterministic
  /// fingerprints of the idiom.
  int Variant = 0;
  /// Emit an extra logging call inside the loop/body.
  bool ExtraLog = false;

  /// The sampled name for \p Slot (must exist).
  const std::string &name(const std::string &Slot) const;
};

/// One source file of a project.
struct FileSketch {
  std::string Project;
  std::string FileName;
  /// Class name used by class-based languages.
  std::string ClassName;
  std::vector<IdiomInstance> Functions;
};

/// Corpus generation parameters.
struct CorpusSpec {
  lang::Language Lang = lang::Language::JavaScript;
  int NumProjects = 20;
  int FilesPerProject = 6;
  int FunctionsPerFile = 4;
  uint64_t Seed = 42;
  /// Probability of replacing a sampled name with an uninformative one
  /// (x, tmp, a, data) — models low-quality code (highest for Python,
  /// per the paper's §5.3 discussion).
  double NoiseProb = 0.03;
  /// Probability of compound-name composition (count → itemCount) —
  /// models Java's IDE-driven compound naming (§5.3 discussion).
  double CompoundProb = 0.0;
  /// Strength of per-project synonym preference.
  double DriftProb = 0.15;
};

/// A rendered source file plus its generating sketch.
struct SourceFile {
  std::string Project;
  std::string FileName;
  std::string Text;
  FileSketch Sketch;
};

/// Deterministically generates a corpus for \p Spec.
std::vector<SourceFile> generateCorpus(const CorpusSpec &Spec);

/// Renders \p Sketch in the given language. \p StripNames replaces every
/// sampled variable name with a minified placeholder (a, b, c, ...) —
/// used by the deobfuscation examples and figures 7-9.
std::string render(const FileSketch &Sketch, lang::Language Lang,
                   bool StripNames = false);

/// Per-language default spec tuned to land accuracies in the paper's
/// bands (JS most regular; Java/C# compound-named; Python noisiest).
CorpusSpec defaultSpec(lang::Language Lang, uint64_t Seed = 42);

} // namespace datagen
} // namespace pigeon

#endif // PIGEON_DATAGEN_SKETCH_H
