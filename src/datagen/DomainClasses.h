//===- DomainClasses.h - Classpath entries for generated code ----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic Java corpora import a small fictional HTTP library
/// (com.example.http.*). Registering it on the type checker's classpath
/// plays the role of the project dependencies a real global inference
/// engine would resolve.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_DATAGEN_DOMAINCLASSES_H
#define PIGEON_DATAGEN_DOMAINCLASSES_H

#include "lang/java/ClassPath.h"

namespace pigeon {
namespace datagen {

/// Adds the corpus's domain classes (com.example.http.*) to \p CP.
inline void addDomainClasses(java::ClassPath &CP) {
  java::ClassDef Client;
  Client.QualifiedName = "com.example.http.HttpClient";
  Client.Super = "java.lang.Object";
  Client.Methods = {{"execute", "com.example.http.HttpResponse"},
                    {"close", "void"}};
  CP.addClass(std::move(Client));

  java::ClassDef Request;
  Request.QualifiedName = "com.example.http.HttpRequest";
  Request.Super = "java.lang.Object";
  Request.Methods = {{"getUrl", "java.lang.String"}};
  CP.addClass(std::move(Request));

  java::ClassDef Response;
  Response.QualifiedName = "com.example.http.HttpResponse";
  Response.Super = "java.lang.Object";
  Response.Methods = {{"getBody", "java.lang.String"},
                      {"getStatus", "int"}};
  CP.addClass(std::move(Response));
}

} // namespace datagen
} // namespace pigeon

#endif // PIGEON_DATAGEN_DOMAINCLASSES_H
