//===- Names.cpp - Role-conditioned name sampling ----------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "datagen/Names.h"

#include "support/SubToken.h"

#include <cassert>
#include <cctype>

using namespace pigeon;
using namespace pigeon::datagen;
using pigeon::lang::Language;

std::string datagen::capitalize(const std::string &Name) {
  if (Name.empty())
    return Name;
  std::string Out = Name;
  Out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(Out[0])));
  return Out;
}

std::string datagen::toSnakeCase(const std::string &Name) {
  std::vector<std::string> Parts = splitSubTokens(Name);
  std::string Out;
  for (const std::string &P : Parts) {
    if (!Out.empty())
      Out += '_';
    Out += P;
  }
  return Out.empty() ? Name : Out;
}

std::string datagen::toPascalCase(const std::string &Name) {
  std::vector<std::string> Parts = splitSubTokens(Name);
  std::string Out;
  for (const std::string &P : Parts)
    Out += capitalize(P);
  return Out.empty() ? capitalize(Name) : Out;
}

namespace {

NamePool makePool(std::initializer_list<std::pair<const char *, double>> L) {
  NamePool P;
  for (const auto &[Name, W] : L)
    P.Entries.emplace_back(Name, W);
  return P;
}

} // namespace

const NamePool &datagen::rolePool(Role R, Language Lang) {
  // Shared pools; a handful of roles specialize per language below.
  static const NamePool LoopFlagP = makePool({{"done", 8.0},
                                              {"finished", 1.2},
                                              {"complete", 0.9},
                                              {"stop", 0.7},
                                              {"ready", 0.7}});
  static const NamePool FoundFlagP = makePool({{"found", 7.5},
                                               {"exists", 1.3},
                                               {"has", 0.7},
                                               {"matched", 1.0},
                                               {"seen", 1.0}});
  static const NamePool ConfigFlagP = makePool({{"enabled", 7.5},
                                                {"active", 1.6},
                                                {"verbose", 1.0},
                                                {"debug", 1.0},
                                                {"strict", 0.9}});
  static const NamePool CounterP = makePool({{"count", 8.0},
                                             {"counter", 1.4},
                                             {"total", 1.2},
                                             {"num", 0.8},
                                             {"matches", 0.6}});
  static const NamePool IndexP = makePool({{"i", 8.5},
                                           {"j", 0.8},
                                           {"index", 1.4},
                                           {"idx", 0.7},
                                           {"pos", 0.6}});
  static const NamePool AccumulatorP = makePool({{"sum", 7.5},
                                                 {"total", 1.8},
                                                 {"acc", 0.9},
                                                 {"result", 1.3}});
  static const NamePool BestP = makePool({{"max", 7.5},
                                          {"best", 2.2},
                                          {"largest", 1.0},
                                          {"highest", 0.9},
                                          {"top", 0.9}});
  static const NamePool CollectionP = makePool({{"items", 7.5},
                                                {"values", 2.2},
                                                {"list", 1.1},
                                                {"elements", 0.8},
                                                {"data", 0.8},
                                                {"entries", 0.5}});
  static const NamePool CollectionJsP = makePool({{"items", 7.2},
                                                  {"values", 1.0},
                                                  {"array", 1.4},
                                                  {"arr", 0.9},
                                                  {"list", 0.9},
                                                  {"data", 0.6}});
  static const NamePool ItemP = makePool({{"item", 7.5},
                                          {"value", 1.6},
                                          {"element", 1.0},
                                          {"elem", 0.6},
                                          {"entry", 0.7},
                                          {"v", 0.5}});
  static const NamePool TargetP = makePool({{"target", 7.5},
                                            {"value", 1.0},
                                            {"wanted", 0.7},
                                            {"needle", 0.6},
                                            {"key", 1.0},
                                            {"expected", 0.7}});
  static const NamePool ResultsP = makePool({{"results", 7.5},
                                             {"matches", 1.6},
                                             {"filtered", 1.0},
                                             {"output", 1.0},
                                             {"selected", 0.8}});
  static const NamePool BuilderP = makePool({{"result", 7.0},
                                             {"builder", 1.4},
                                             {"sb", 1.0},
                                             {"buf", 0.5},
                                             {"out", 0.8}});
  static const NamePool SeparatorP = makePool({{"sep", 7.0},
                                               {"delim", 1.0},
                                               {"separator", 1.6},
                                               {"glue", 0.5}});
  static const NamePool TextP = makePool({{"text", 7.0},
                                          {"str", 1.6},
                                          {"s", 1.4},
                                          {"input", 1.4},
                                          {"value", 0.8},
                                          {"raw", 0.6}});
  static const NamePool NumberP = makePool({{"value", 7.0},
                                            {"num", 1.2},
                                            {"number", 1.4},
                                            {"parsed", 1.2},
                                            {"n", 0.8}});
  static const NamePool RequestP = makePool({{"request", 7.0},
                                             {"req", 2.6},
                                             {"xhr", 0.9}});
  static const NamePool ResponseP = makePool({{"response", 7.0},
                                              {"res", 1.8},
                                              {"resp", 1.2},
                                              {"reply", 0.6}});
  static const NamePool UrlP = makePool({{"url", 7.0},
                                         {"uri", 1.2},
                                         {"endpoint", 1.0},
                                         {"address", 0.7},
                                         {"source", 0.6}});
  static const NamePool CallbackP = makePool({{"callback", 7.0},
                                              {"cb", 1.6},
                                              {"handler", 1.4},
                                              {"fn", 0.6}});
  static const NamePool ClientP = makePool({{"client", 7.0},
                                            {"conn", 1.1},
                                            {"connection", 1.6},
                                            {"session", 0.8}});
  static const NamePool MapP = makePool({{"map", 7.0},
                                         {"cache", 1.4},
                                         {"table", 1.0},
                                         {"lookup", 0.9},
                                         {"index", 0.7}});
  static const NamePool MapPyP = makePool({{"cache", 6.0},
                                           {"mapping", 1.2},
                                           {"table", 1.2},
                                           {"lookup", 1.0},
                                           {"data", 1.0},
                                           {"index", 0.8}});
  static const NamePool KeyP = makePool({{"key", 7.5},
                                         {"id", 1.6},
                                         {"name", 1.4},
                                         {"k", 0.8}});
  static const NamePool DefaultP = makePool({{"fallback", 6.5},
                                             {"missing", 1.4},
                                             {"placeholder", 1.0},
                                             {"initial", 1.2}});
  static const NamePool ErrorP = makePool({{"e", 6.5},
                                           {"err", 1.6},
                                           {"error", 2.0},
                                           {"ex", 1.2}});
  static const NamePool LimitP = makePool({{"limit", 6.5},
                                           {"n", 1.0},
                                           {"size", 1.2},
                                           {"threshold", 1.4},
                                           {"len", 0.8}});
  static const NamePool ReaderP = makePool({{"reader", 7.0},
                                            {"file", 2.0},
                                            {"stream", 1.2},
                                            {"f", 1.0}});
  static const NamePool LineP = makePool({{"line", 7.5},
                                          {"row", 1.2},
                                          {"text", 1.0},
                                          {"entry", 0.6}});
  static const NamePool ScoreP = makePool({{"score", 7.0},
                                           {"rating", 1.2},
                                           {"weight", 1.0},
                                           {"priority", 0.8}});
  static const NamePool FieldP = makePool({{"name", 2.0},
                                           {"size", 1.6},
                                           {"width", 1.2},
                                           {"height", 1.2},
                                           {"title", 1.2},
                                           {"status", 1.2},
                                           {"color", 1.0},
                                           {"label", 1.0}});

  switch (R) {
  case Role::LoopFlag:
    return LoopFlagP;
  case Role::FoundFlag:
    return FoundFlagP;
  case Role::ConfigFlag:
    return ConfigFlagP;
  case Role::Counter:
    return CounterP;
  case Role::Index:
    return IndexP;
  case Role::Accumulator:
    return AccumulatorP;
  case Role::Best:
    return BestP;
  case Role::Collection:
    return Lang == Language::JavaScript ? CollectionJsP : CollectionP;
  case Role::Item:
    return ItemP;
  case Role::Target:
    return TargetP;
  case Role::Results:
    return ResultsP;
  case Role::Builder:
    return BuilderP;
  case Role::Separator:
    return SeparatorP;
  case Role::Text:
    return TextP;
  case Role::Number:
    return NumberP;
  case Role::Request:
    return RequestP;
  case Role::Response:
    return ResponseP;
  case Role::Url:
    return UrlP;
  case Role::Callback:
    return CallbackP;
  case Role::Client:
    return ClientP;
  case Role::Map:
    return Lang == Language::Python ? MapPyP : MapP;
  case Role::Key:
    return KeyP;
  case Role::Default:
    return DefaultP;
  case Role::Error:
    return ErrorP;
  case Role::Limit:
    return LimitP;
  case Role::Reader:
    return ReaderP;
  case Role::Line:
    return LineP;
  case Role::Field:
    return FieldP;
  case Role::Score:
    return ScoreP;
  }
  return ItemP;
}

NameSampler::NameSampler(const CorpusSpec &Spec, uint64_t ProjectSalt,
                         Rng &R)
    : Spec(Spec), R(R) {
  // Project drift preferences are derived from a salt so they are stable
  // per project regardless of sampling order.
  (void)ProjectSalt;
}

size_t NameSampler::preferredIndex(Role Role) {
  int Key = static_cast<int>(Role);
  auto It = Preferred.find(Key);
  if (It != Preferred.end())
    return It->second;
  const NamePool &Pool = rolePool(Role, Spec.Lang);
  std::vector<double> Weights;
  Weights.reserve(Pool.Entries.size());
  for (const auto &[Name, W] : Pool.Entries)
    Weights.push_back(W);
  size_t Idx = R.pickWeighted(Weights);
  Preferred.emplace(Key, Idx);
  return Idx;
}

std::string NameSampler::sample(Role Role, const std::string &CompoundHint) {
  static const char *NoiseNames[] = {"x", "tmp", "val", "data", "obj", "a"};
  if (R.nextBool(Spec.NoiseProb))
    return NoiseNames[R.nextBelow(6)];

  const NamePool &Pool = rolePool(Role, Spec.Lang);
  std::string Base;
  if (R.nextBool(Spec.DriftProb)) {
    Base = Pool.Entries[preferredIndex(Role)].first;
  } else {
    std::vector<double> Weights;
    Weights.reserve(Pool.Entries.size());
    for (const auto &[Name, W] : Pool.Entries)
      Weights.push_back(W);
    Base = Pool.Entries[R.pickWeighted(Weights)].first;
  }

  // Compound composition (Java/C# IDE-style names): count -> itemCount,
  // items -> itemList, ...
  if (!CompoundHint.empty() && Base.size() > 1 &&
      R.nextBool(Spec.CompoundProb))
    return CompoundHint + capitalize(Base);
  return Base;
}
