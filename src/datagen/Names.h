//===- Names.h - Role-conditioned name sampling ------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Role → name distributions and the sampler that applies per-project
/// drift, compound composition and noise. The modal mass of each pool is
/// what bounds achievable prediction accuracy, so pools are tuned per
/// language to land in the paper's accuracy bands (§5.3's discussion of
/// why JS > Java ≈ C# ≈ Python).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_DATAGEN_NAMES_H
#define PIGEON_DATAGEN_NAMES_H

#include "datagen/Sketch.h"
#include "support/Rng.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace pigeon {
namespace datagen {

/// A weighted name pool.
struct NamePool {
  std::vector<std::pair<std::string, double>> Entries;
};

/// The pool for \p R in language \p Lang.
const NamePool &rolePool(Role R, lang::Language Lang);

/// Samples names for one project: applies drift (a project-preferred
/// synonym per role), compound composition and noise per the spec.
class NameSampler {
public:
  NameSampler(const CorpusSpec &Spec, uint64_t ProjectSalt, Rng &R);

  /// Samples a name for \p R. \p CompoundHint, when non-empty, is a
  /// context word compound names compose with (itemCount, valueList...).
  std::string sample(Role R, const std::string &CompoundHint = "");

private:
  const CorpusSpec &Spec;
  Rng &R;
  /// Project-preferred synonym index per role.
  std::unordered_map<int, size_t> Preferred;

  size_t preferredIndex(Role Role);
};

/// Capitalizes the first character ("count" -> "Count").
std::string capitalize(const std::string &Name);

/// camelCase → snake_case ("countItems" -> "count_items").
std::string toSnakeCase(const std::string &Name);

/// camelCase → PascalCase ("countItems" -> "CountItems").
std::string toPascalCase(const std::string &Name);

} // namespace datagen
} // namespace pigeon

#endif // PIGEON_DATAGEN_NAMES_H
