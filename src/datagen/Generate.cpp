//===- Generate.cpp - Corpus sketch sampling ----------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "datagen/Names.h"
#include "datagen/Sketch.h"

#include "support/Rng.h"

#include <cassert>

using namespace pigeon;
using namespace pigeon::datagen;
using pigeon::lang::Language;

const char *datagen::idiomName(IdiomKind Kind) {
  switch (Kind) {
  case IdiomKind::LoopFlag:
    return "loop-flag";
  case IdiomKind::SearchFlag:
    return "search-flag";
  case IdiomKind::ConfigFlag:
    return "config-flag";
  case IdiomKind::CountMatches:
    return "count-matches";
  case IdiomKind::SumValues:
    return "sum-values";
  case IdiomKind::FindMax:
    return "find-max";
  case IdiomKind::IndexOf:
    return "index-of";
  case IdiomKind::BuildList:
    return "build-list";
  case IdiomKind::JoinStrings:
    return "join-strings";
  case IdiomKind::HttpRequest:
    return "http-request";
  case IdiomKind::ParseNumber:
    return "parse-number";
  case IdiomKind::MapLookup:
    return "map-lookup";
  case IdiomKind::GetterSetter:
    return "getter-setter";
  case IdiomKind::ReadLines:
    return "read-lines";
  case IdiomKind::ScoreAccum:
    return "score-accum";
  }
  return "invalid";
}

const std::string &IdiomInstance::name(const std::string &Slot) const {
  auto It = Names.find(Slot);
  assert(It != Names.end() && "unknown idiom slot");
  return It->second;
}

namespace {

/// Idioms available per language (JS has no classes in MiniJS; C# has no
/// ReadLines; otherwise everything is shared).
std::vector<IdiomKind> idiomsFor(Language Lang) {
  std::vector<IdiomKind> Out;
  for (IdiomKind K : AllIdioms) {
    if (Lang == Language::JavaScript &&
        (K == IdiomKind::GetterSetter || K == IdiomKind::ReadLines))
      continue;
    if (Lang == Language::CSharp && K == IdiomKind::ReadLines)
      continue;
    if (Lang == Language::Python && K == IdiomKind::HttpRequest)
      continue;
    Out.push_back(K);
  }
  return Out;
}

double idiomWeight(IdiomKind K) {
  // Getter/setter names are trivially predictable; keep them a modest
  // share so they don't inflate method-name accuracy.
  if (K == IdiomKind::GetterSetter)
    return 0.6;
  // Flag loops and accumulators dominate real control-flow code; they
  // are also the patterns whose names depend on *long-range* context
  // (the Fig. 3 argument), so they anchor the corpus.
  switch (K) {
  case IdiomKind::LoopFlag:
  case IdiomKind::SearchFlag:
  case IdiomKind::ConfigFlag:
  case IdiomKind::SumValues:
  case IdiomKind::ScoreAccum:
    return 1.8;
  default:
    return 1.0;
  }
}

NamePool methodPool(IdiomKind K) {
  using P = std::initializer_list<std::pair<const char *, double>>;
  auto Make = [](P L) {
    NamePool Pool;
    for (const auto &[N, W] : L)
      Pool.Entries.emplace_back(N, W);
    return Pool;
  };
  switch (K) {
  case IdiomKind::LoopFlag:
    return Make({{"waitUntilReady", 4.5},
                 {"poll", 1.6},
                 {"waitForCompletion", 1.4},
                 {"spin", 0.9},
                 {"runLoop", 1.1}});
  case IdiomKind::SearchFlag:
    return Make({{"contains", 4.8},
                 {"hasMatch", 1.5},
                 {"anyMatch", 1.3},
                 {"includes", 1.2}});
  case IdiomKind::ConfigFlag:
    return Make({{"configure", 4.2},
                 {"setup", 1.8},
                 {"init", 1.4},
                 {"applySettings", 1.0}});
  case IdiomKind::CountMatches:
    return Make({{"countMatches", 4.8},
                 {"getCount", 1.4},
                 {"countItems", 1.2},
                 {"tally", 0.8},
                 {"numMatches", 0.8}});
  case IdiomKind::SumValues:
    return Make({{"sumValues", 4.6},
                 {"getTotal", 1.6},
                 {"computeSum", 1.2},
                 {"addAll", 0.8}});
  case IdiomKind::FindMax:
    return Make({{"findMax", 4.6},
                 {"getMax", 1.6},
                 {"maxValue", 1.2},
                 {"largest", 0.8}});
  case IdiomKind::IndexOf:
    return Make({{"indexOf", 4.8},
                 {"findIndex", 1.8},
                 {"positionOf", 0.8},
                 {"locate", 0.8}});
  case IdiomKind::BuildList:
    return Make({{"filterItems", 4.2},
                 {"collect", 1.6},
                 {"selectAbove", 1.0},
                 {"pickLarge", 0.6}});
  case IdiomKind::JoinStrings:
    return Make({{"join", 4.6},
                 {"joinStrings", 1.4},
                 {"concatAll", 1.0},
                 {"buildString", 1.0}});
  case IdiomKind::HttpRequest:
    return Make({{"sendRequest", 4.4},
                 {"fetchData", 1.8},
                 {"loadUrl", 1.0},
                 {"download", 0.8}});
  case IdiomKind::ParseNumber:
    return Make({{"parseNumber", 4.4},
                 {"toInt", 1.6},
                 {"parseValue", 1.2},
                 {"readNumber", 0.8}});
  case IdiomKind::MapLookup:
    return Make({{"lookup", 4.4},
                 {"getOrDefault", 1.8},
                 {"findValue", 1.0},
                 {"resolve", 0.8}});
  case IdiomKind::GetterSetter:
    return Make({{"get", 1.0}}); // Composed with the field name.
  case IdiomKind::ReadLines:
    return Make({{"readLines", 4.4},
                 {"countLines", 1.6},
                 {"processFile", 1.2},
                 {"loadFile", 0.8}});
  case IdiomKind::ScoreAccum:
    return Make({{"computeScore", 4.4},
                 {"rate", 1.4},
                 {"weigh", 0.8},
                 {"evaluate", 1.6}});
  }
  return Make({{"run", 1.0}});
}

std::string sampleFromPool(const NamePool &Pool, Rng &R) {
  std::vector<double> Weights;
  Weights.reserve(Pool.Entries.size());
  for (const auto &[N, W] : Pool.Entries)
    Weights.push_back(W);
  return Pool.Entries[R.pickWeighted(Weights)].first;
}

/// Known helper-function names (never prediction targets). One shared
/// pool for every idiom: if each idiom had its own helper vocabulary, a
/// bag-of-identifiers baseline could read the idiom straight off the
/// helper names, which real corpora do not allow.
std::string sampleHelperName(Rng &R) {
  static const char *Pool[] = {"process", "handle",  "check",  "update",
                               "refresh", "apply",   "notify", "run",
                               "sync",    "validate"};
  return Pool[R.nextBelow(10)];
}
std::string sampleCheckName(Rng &R) { return sampleHelperName(R); }
std::string sampleInitName(Rng &R) { return sampleHelperName(R); }
std::string sampleUseName(Rng &R) { return sampleHelperName(R); }

IdiomInstance sampleIdiom(IdiomKind K, NameSampler &Sampler, Rng &R) {
  IdiomInstance Inst;
  Inst.Kind = K;
  Inst.MethodName = sampleFromPool(methodPool(K), R);
  Inst.Variant = static_cast<int>(R.nextBelow(2));
  Inst.ExtraLog = R.nextBool(0.35);
  auto Set = [&](const char *Slot, Role Role,
                 const std::string &Hint = "") {
    Inst.Names.emplace(Slot, Sampler.sample(Role, Hint));
  };
  switch (K) {
  case IdiomKind::LoopFlag:
    Set("flag", Role::LoopFlag);
    Inst.Names.emplace("check", sampleCheckName(R));
    break;
  case IdiomKind::SearchFlag:
    Set("item", Role::Item);
    Set("flag", Role::FoundFlag);
    Set("items", Role::Collection, Inst.name("item"));
    Set("target", Role::Target);
    break;
  case IdiomKind::ConfigFlag:
    Set("flag", Role::ConfigFlag);
    Inst.Names.emplace("init", sampleInitName(R));
    Inst.Names.emplace("use", sampleUseName(R));
    break;
  case IdiomKind::CountMatches:
    Set("item", Role::Item);
    Set("counter", Role::Counter, Inst.name("item"));
    Set("items", Role::Collection, Inst.name("item"));
    Set("target", Role::Target);
    break;
  case IdiomKind::SumValues:
    Set("acc", Role::Accumulator);
    Set("values", Role::Collection);
    Set("index", Role::Index);
    Set("item", Role::Item);
    break;
  case IdiomKind::FindMax:
    Set("item", Role::Item);
    Set("best", Role::Best, Inst.name("item"));
    Set("items", Role::Collection, Inst.name("item"));
    break;
  case IdiomKind::IndexOf:
    Set("items", Role::Collection);
    Set("index", Role::Index);
    Set("target", Role::Target);
    break;
  case IdiomKind::BuildList:
    Set("item", Role::Item);
    Set("results", Role::Results);
    Set("items", Role::Collection, Inst.name("item"));
    Set("limit", Role::Limit);
    break;
  case IdiomKind::JoinStrings:
    Set("builder", Role::Builder);
    Set("items", Role::Collection);
    Set("item", Role::Item);
    Set("sep", Role::Separator);
    break;
  case IdiomKind::HttpRequest:
    Set("request", Role::Request);
    Set("response", Role::Response);
    Set("url", Role::Url);
    Set("callback", Role::Callback);
    Set("client", Role::Client);
    break;
  case IdiomKind::ParseNumber:
    Set("text", Role::Text);
    Set("value", Role::Number);
    Set("fallback", Role::Default);
    Set("error", Role::Error);
    break;
  case IdiomKind::MapLookup:
    Set("map", Role::Map);
    Set("key", Role::Key);
    Set("fallback", Role::Default);
    break;
  case IdiomKind::GetterSetter:
    Set("field", Role::Field);
    Inst.MethodName = "get" + capitalize(Inst.name("field"));
    break;
  case IdiomKind::ReadLines:
    Set("reader", Role::Reader);
    Set("line", Role::Line);
    Set("counter", Role::Counter, Inst.name("line"));
    break;
  case IdiomKind::ScoreAccum:
    // Parameters deliberately share the Item/Target pools so the bag of
    // neighbours matches SumValues; only structure separates them.
    Set("acc", Role::Score);
    Set("first", Role::Item);
    Set("second", Role::Target);
    break;
  }
  return Inst;
}

std::string projectNameFor(int Index) {
  static const char *Adjectives[] = {"rapid", "solid",  "micro", "hyper",
                                     "quiet", "bright", "lucid", "prime"};
  static const char *Nouns[] = {"engine", "server", "tools", "kit",
                                "stack",  "works",  "forge", "base"};
  return std::string(Adjectives[Index % 8]) + Nouns[(Index / 8) % 8] +
         std::to_string(Index);
}

} // namespace

std::vector<SourceFile> datagen::generateCorpus(const CorpusSpec &Spec) {
  std::vector<SourceFile> Out;
  std::vector<IdiomKind> Available = idiomsFor(Spec.Lang);
  std::vector<double> IdiomWeights;
  IdiomWeights.reserve(Available.size());
  for (IdiomKind K : Available)
    IdiomWeights.push_back(idiomWeight(K));

  for (int P = 0; P < Spec.NumProjects; ++P) {
    Rng ProjectRng = Rng::forStream(
        Spec.Seed, "project-" + std::to_string(P) + "-" +
                       lang::languageName(Spec.Lang));
    NameSampler Sampler(Spec, static_cast<uint64_t>(P), ProjectRng);
    std::string Project = projectNameFor(P);
    for (int F = 0; F < Spec.FilesPerProject; ++F) {
      FileSketch Sketch;
      Sketch.Project = Project;
      Sketch.FileName = Project + "_file" + std::to_string(F);
      Sketch.ClassName = "Module" + std::to_string(P) + "x" +
                         std::to_string(F);
      bool HasGetter = false;
      for (int Fn = 0; Fn < Spec.FunctionsPerFile; ++Fn) {
        IdiomKind K = Available[ProjectRng.pickWeighted(IdiomWeights)];
        // At most one getter/setter pair per file keeps fields tidy.
        if (K == IdiomKind::GetterSetter) {
          if (HasGetter) {
            --Fn;
            continue;
          }
          HasGetter = true;
        }
        Sketch.Functions.push_back(sampleIdiom(K, Sampler, ProjectRng));
      }
      SourceFile File;
      File.Project = Project;
      File.FileName = Sketch.FileName;
      File.Text = render(Sketch, Spec.Lang);
      File.Sketch = std::move(Sketch);
      Out.push_back(std::move(File));
    }
  }
  return Out;
}

CorpusSpec datagen::defaultSpec(Language Lang, uint64_t Seed) {
  CorpusSpec Spec;
  Spec.Lang = Lang;
  Spec.Seed = Seed;
  // Small single-function files: function boundaries are file boundaries,
  // as in the per-snippet training regime; see DESIGN.md.
  Spec.FunctionsPerFile = 1;
  Spec.FilesPerProject = 16;
  switch (Lang) {
  case Language::JavaScript:
    // Domain-specific, regular naming (§5.3: JS corpora are web-heavy and
    // names are short and standard).
    Spec.NoiseProb = 0.02;
    Spec.CompoundProb = 0.0;
    break;
  case Language::Java:
    // Compound, IDE-suggested names make the label space wider (§5.3).
    Spec.NoiseProb = 0.03;
    Spec.CompoundProb = 0.22;
    break;
  case Language::Python:
    // Noisier, less standardized code (§5.3).
    Spec.NoiseProb = 0.10;
    Spec.CompoundProb = 0.05;
    break;
  case Language::CSharp:
    Spec.NoiseProb = 0.03;
    Spec.CompoundProb = 0.20;
    break;
  }
  return Spec;
}
