//===- Baselines.h - The paper's comparison systems --------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementations of the baselines the paper compares against (§5.3):
///
///  * UnuglifyJS / Raychev et al. [40]: handcrafted relations that "span
///    only a single statement" — modelled here by filtering AST-path
///    contexts to those that do not cross a statement/control boundary,
///    then feeding them to the same CRF. This preserves the baseline's
///    defining limitation (Fig. 3's indistinguishable pair).
///  * CRFs + n-grams: sequential token n-gram factors instead of paths.
///  * The rule-based Java namer (§5.3.1's pattern heuristics).
///  * A sub-token bag method namer standing in for the conv-attention
///    model of Allamanis et al. [7].
///
/// The remaining baselines are representation choices reused elsewhere:
/// "no-paths" is Abstraction::NoPath; the word2vec token-stream and
/// path-neighbors contexts live in the core pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_BASELINES_BASELINES_H
#define PIGEON_BASELINES_BASELINES_H

#include "ast/Ast.h"
#include "lang/common/Frontend.h"
#include "paths/Paths.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pigeon {
namespace baselines {

//===----------------------------------------------------------------------===//
// UnuglifyJS-style single-statement relations
//===----------------------------------------------------------------------===//

/// Keeps only path-contexts that stay within one statement: no node on
/// the path (pivot included) is a block/control/function boundary. This
/// is the faithful abstraction of Raychev et al.'s relations, whose
/// "possible relationships span only a single statement, and do not
/// include relationships that involve conditional statements or loops".
std::vector<paths::PathContext>
filterIntraStatement(const ast::Tree &Tree,
                     const std::vector<paths::PathContext> &Contexts);

/// \returns true if \p Kind is a statement/control boundary node kind in
/// any of the four frontends' vocabularies.
bool isBoundaryKind(std::string_view Kind);

//===----------------------------------------------------------------------===//
// Token n-gram factors (the paper's "CRFs + n-grams" Java baseline)
//===----------------------------------------------------------------------===//

/// Produces pseudo path-contexts connecting terminals at token distance
/// 1..N-1, with the "path" encoding only the distance ("ngram:<d>"). Fed
/// into the same CRF machinery so the only difference from PIGEON is the
/// representation, as in the paper.
std::vector<paths::PathContext> ngramContexts(const ast::Tree &Tree, int N,
                                              paths::PathTable &Table);

//===----------------------------------------------------------------------===//
// Rule-based Java namer (§5.3.1)
//===----------------------------------------------------------------------===//

/// Predicts names for predictable locals/params of a parsed MiniJava tree
/// using the paper's pattern heuristics: `for (int i = ...)` → i,
/// `this.<field> = <param>` → field, `catch (... e)` → e,
/// `void set<Field>(... x)` → field, otherwise the lowercased last word
/// of the declared type (HttpClient client).
/// \returns element id → predicted name.
std::unordered_map<ast::ElementId, std::string>
ruleBasedJavaNames(const ast::Tree &Tree);

//===----------------------------------------------------------------------===//
// Sub-token bag method namer (stand-in for Allamanis et al. [7])
//===----------------------------------------------------------------------===//

/// Predicts method names from the bag of identifier sub-tokens in the
/// method body: each candidate name keeps a centroid of body sub-token
/// counts from training; prediction is the cosine-nearest centroid.
class SubtokenMethodNamer {
public:
  /// One training/test example: a method's gold name plus the identifier
  /// values appearing in its body.
  struct Example {
    std::string Name;
    std::vector<std::string> BodyIdentifiers;
  };

  void train(const std::vector<Example> &Examples);

  /// \returns the predicted name, or "" if untrained.
  std::string predict(const std::vector<std::string> &BodyIdentifiers) const;

  size_t numNames() const { return Centroids.size(); }

private:
  // name -> (subtoken -> count), plus cached norms.
  std::unordered_map<std::string, std::unordered_map<std::string, double>>
      Centroids;
  std::unordered_map<std::string, double> Norms;
};

/// Collects SubtokenMethodNamer examples from a parsed tree: one per
/// predictable method element, with the terminal values inside the
/// method's subtree as body identifiers.
std::vector<SubtokenMethodNamer::Example>
methodExamples(const ast::Tree &Tree);

} // namespace baselines
} // namespace pigeon

#endif // PIGEON_BASELINES_BASELINES_H
