//===- Baselines.cpp - The paper's comparison systems -------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "support/SubToken.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::baselines;
using namespace pigeon::paths;

//===----------------------------------------------------------------------===//
// UnuglifyJS-style single-statement relations
//===----------------------------------------------------------------------===//

bool baselines::isBoundaryKind(std::string_view Kind) {
  static const std::set<std::string, std::less<>> Boundaries = {
      // JavaScript (UglifyJS-style).
      "Toplevel", "Block", "If", "While", "Do", "For", "ForIn", "ForOf",
      "Try", "Catch", "Finally", "Defun", "Function",
      // Java (JavaParser-style).
      "CompilationUnit", "ClassOrInterfaceDeclaration",
      "InterfaceDeclaration", "BlockStmt", "IfStmt", "WhileStmt", "DoStmt",
      "ForStmt", "ForEachStmt", "TryStmt", "CatchClause", "FinallyBlock",
      "MethodDeclaration", "ConstructorDeclaration",
      // Python (CPython-ast-style). "If"/"While"/"For"/"Try" shared above.
      "Module", "Body", "OrElse", "ExceptHandler", "FinallyBody",
      "FunctionDef", "ClassDef",
      // C# (Roslyn-style).
      "NamespaceDeclaration", "ClassDeclaration", "IfStatement",
      "ElseClause", "WhileStatement", "DoStatement", "ForStatement",
      "ForEachStatement", "TryStatement", "FinallyClause",
      "PropertyDeclaration", "AccessorList", "GetAccessor", "SetAccessor",
  };
  return Boundaries.count(Kind) != 0;
}

namespace {

/// True if any node on the chain from \p From (exclusive) up to \p To
/// (inclusive) is a boundary.
bool chainCrossesBoundary(const Tree &T, NodeId From, NodeId To) {
  for (NodeId N = T.node(From).Parent;; N = T.node(N).Parent) {
    if (N == InvalidNode)
      return false;
    if (isBoundaryKind(T.interner().str(T.node(N).Kind)))
      return true;
    if (N == To)
      return false;
  }
}

} // namespace

std::vector<PathContext>
baselines::filterIntraStatement(const Tree &Tree,
                                const std::vector<PathContext> &Contexts) {
  std::vector<PathContext> Out;
  for (const PathContext &Ctx : Contexts) {
    if (Ctx.Semi) {
      // Ancestor chain must stay inside the statement, including the
      // ancestor end itself.
      if (isBoundaryKind(
              Tree.interner().str(Tree.node(Ctx.End).Kind)))
        continue;
      if (chainCrossesBoundary(Tree, Ctx.Start, Ctx.End))
        continue;
      Out.push_back(Ctx);
      continue;
    }
    PathShape Shape = pathShape(Tree, Ctx.Start, Ctx.End);
    if (isBoundaryKind(Tree.interner().str(Tree.node(Shape.Pivot).Kind)))
      continue;
    if (chainCrossesBoundary(Tree, Ctx.Start, Shape.Pivot) ||
        chainCrossesBoundary(Tree, Ctx.End, Shape.Pivot))
      continue;
    Out.push_back(Ctx);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Token n-gram factors
//===----------------------------------------------------------------------===//

std::vector<PathContext> baselines::ngramContexts(const Tree &Tree, int N,
                                                  PathTable &Table) {
  std::vector<PathContext> Out;
  const std::vector<NodeId> &Leaves = Tree.terminals();
  std::vector<PathId> DistanceIds;
  for (int D = 1; D < N; ++D)
    DistanceIds.push_back(Table.internString("ngram:" + std::to_string(D)));
  for (size_t I = 0; I < Leaves.size(); ++I) {
    for (int D = 1; D < N && I + static_cast<size_t>(D) < Leaves.size();
         ++D) {
      PathContext Ctx;
      Ctx.Start = Leaves[I];
      Ctx.End = Leaves[I + static_cast<size_t>(D)];
      Ctx.Path = DistanceIds[static_cast<size_t>(D - 1)];
      Out.push_back(Ctx);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Rule-based Java namer
//===----------------------------------------------------------------------===//

namespace {

/// Lowercased last sub-token of a type name: HttpClient -> client,
/// List -> list, StringBuilder -> builder.
std::string nameFromTypeText(const std::string &TypeText) {
  std::vector<std::string> Parts = splitSubTokens(TypeText);
  if (Parts.empty())
    return "value";
  return Parts.back();
}

/// Renders the declared-type terminal under a Type subtree.
std::string typeTextOf(const Tree &T, NodeId TypeNode) {
  const StringInterner &SI = T.interner();
  const Node &N = T.node(TypeNode);
  std::string_view Kind = SI.str(N.Kind);
  if (Kind == "PrimitiveType" || Kind == "PredefinedType")
    return std::string(SI.str(N.Value));
  if (Kind == "ArrayType") {
    auto Kids = T.children(TypeNode);
    return Kids.empty() ? "values" : typeTextOf(T, Kids[0]) + "s";
  }
  if (Kind == "ClassOrInterfaceType") {
    auto Kids = T.children(TypeNode);
    if (!Kids.empty()) {
      // Last segment of the (possibly dotted) TypeName.
      std::string Full(SI.str(T.node(Kids[0]).Value));
      size_t Dot = Full.rfind('.');
      return Dot == std::string::npos ? Full : Full.substr(Dot + 1);
    }
  }
  return "value";
}

std::string primitiveDefault(const std::string &Prim) {
  if (Prim == "boolean" || Prim == "bool")
    return "flag";
  if (Prim == "char")
    return "c";
  return "value";
}

} // namespace

std::unordered_map<ElementId, std::string>
baselines::ruleBasedJavaNames(const Tree &T) {
  const StringInterner &SI = T.interner();
  std::unordered_map<ElementId, std::string> Out;
  auto KindOf = [&](NodeId Id) -> std::string_view {
    return SI.str(T.node(Id).Kind);
  };

  // Default: type-derived names from the declaration site.
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    const ElementInfo &Info = T.element(E);
    if (!Info.Predictable || (Info.Kind != ElementKind::LocalVar &&
                              Info.Kind != ElementKind::Parameter))
      continue;
    auto Occs = T.occurrences(E);
    if (Occs.empty())
      continue;
    NodeId Decl = Occs.front();
    NodeId Parent = T.node(Decl).Parent;
    if (Parent == InvalidNode)
      continue;
    NodeId TypeNode = InvalidNode;
    if (KindOf(Parent) == "Parameter") {
      TypeNode = T.children(Parent).front();
    } else if (KindOf(Parent) == "VariableDeclarator") {
      NodeId GrandParent = T.node(Parent).Parent;
      if (GrandParent != InvalidNode &&
          KindOf(GrandParent) == "VariableDeclarationExpr")
        TypeNode = T.children(GrandParent).front();
    }
    if (TypeNode == InvalidNode)
      continue;
    std::string TypeText = typeTextOf(T, TypeNode);
    std::string_view TypeKind = KindOf(TypeNode);
    std::string Guess = (TypeKind == "PrimitiveType")
                            ? primitiveDefault(TypeText)
                            : nameFromTypeText(TypeText);

    // Rule: `for (int i = ...)` — loop-header declarations are "i".
    if (KindOf(Parent) == "VariableDeclarator") {
      NodeId DeclExpr = T.node(Parent).Parent;
      NodeId MaybeFor =
          DeclExpr == InvalidNode ? InvalidNode : T.node(DeclExpr).Parent;
      if (MaybeFor != InvalidNode && KindOf(MaybeFor) == "ForStmt" &&
          T.node(DeclExpr).IndexInParent == 0)
        Guess = "i";
    }
    // Rule: `catch (... e)`.
    if (KindOf(Parent) == "Parameter") {
      NodeId GrandParent = T.node(Parent).Parent;
      if (GrandParent != InvalidNode && KindOf(GrandParent) == "CatchClause")
        Guess = "e";
    }
    Out[E] = Guess;
  }

  // Rule: `this.<field> = <x>` — name x after the field. Also covers the
  // paper's `void set<Field>(... <field>)` heuristic since our setters
  // have exactly this body.
  for (NodeId Id = 0; Id < T.size(); ++Id) {
    if (KindOf(Id) != "Assign=")
      continue;
    auto Kids = T.children(Id);
    if (Kids.size() != 2)
      continue;
    if (KindOf(Kids[0]) != "FieldAccessExpr" || KindOf(Kids[1]) != "NameExpr")
      continue;
    auto LhsKids = T.children(Kids[0]);
    if (LhsKids.size() != 2 || KindOf(LhsKids[0]) != "ThisExpr")
      continue;
    NodeId FieldName = LhsKids[1];
    auto RhsKids = T.children(Kids[1]);
    if (RhsKids.empty())
      continue;
    const Node &Rhs = T.node(RhsKids[0]);
    if (Rhs.Element == InvalidElement)
      continue;
    const ElementInfo &Info = T.element(Rhs.Element);
    if (Info.Predictable && (Info.Kind == ElementKind::Parameter ||
                             Info.Kind == ElementKind::LocalVar))
      Out[Rhs.Element] = SI.str(T.node(FieldName).Value);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Sub-token bag method namer
//===----------------------------------------------------------------------===//

void SubtokenMethodNamer::train(const std::vector<Example> &Examples) {
  Centroids.clear();
  Norms.clear();
  for (const Example &Ex : Examples) {
    auto &Centroid = Centroids[Ex.Name];
    for (const std::string &Ident : Ex.BodyIdentifiers)
      for (const std::string &Tok : splitSubTokens(Ident))
        Centroid[Tok] += 1.0;
  }
  for (const auto &[Name, Centroid] : Centroids) {
    double Sq = 0;
    for (const auto &[Tok, W] : Centroid)
      Sq += W * W;
    Norms[Name] = std::sqrt(Sq);
  }
}

std::string SubtokenMethodNamer::predict(
    const std::vector<std::string> &BodyIdentifiers) const {
  if (Centroids.empty())
    return "";
  std::unordered_map<std::string, double> Query;
  for (const std::string &Ident : BodyIdentifiers)
    for (const std::string &Tok : splitSubTokens(Ident))
      Query[Tok] += 1.0;
  double QNorm = 0;
  for (const auto &[Tok, W] : Query)
    QNorm += W * W;
  QNorm = std::sqrt(QNorm);

  std::string Best;
  double BestScore = -1;
  for (const auto &[Name, Centroid] : Centroids) {
    double Dot = 0;
    for (const auto &[Tok, W] : Query) {
      auto It = Centroid.find(Tok);
      if (It != Centroid.end())
        Dot += W * It->second;
    }
    double Denominator = Norms.at(Name) * QNorm;
    double Score = Denominator > 0 ? Dot / Denominator : 0;
    if (Score > BestScore || (Score == BestScore && Name < Best)) {
      BestScore = Score;
      Best = Name;
    }
  }
  return Best;
}

std::vector<SubtokenMethodNamer::Example>
baselines::methodExamples(const Tree &T) {
  const StringInterner &SI = T.interner();
  static const std::set<std::string, std::less<>> DefKinds = {
      "MethodDeclaration", "ConstructorDeclaration", "Defun", "Function",
      "FunctionDef"};
  std::vector<SubtokenMethodNamer::Example> Out;
  for (ElementId E = 0; E < T.elements().size(); ++E) {
    const ElementInfo &Info = T.element(E);
    if (!Info.Predictable || Info.Kind != ElementKind::Method)
      continue;
    // Find the occurrence that names a definition.
    for (NodeId Occ : T.occurrences(E)) {
      NodeId Def = T.node(Occ).Parent;
      if (Def == InvalidNode || !DefKinds.count(SI.str(T.node(Def).Kind)))
        continue;
      SubtokenMethodNamer::Example Ex;
      Ex.Name = SI.str(Info.Name);
      // Preorder ids are contiguous per subtree: everything after Def
      // until we escape its depth belongs to the definition.
      uint32_t DefDepth = T.node(Def).Depth;
      for (NodeId Id = Def + 1;
           Id < T.size() && T.node(Id).Depth > DefDepth; ++Id) {
        const Node &N = T.node(Id);
        if (Id != Occ && N.isTerminal())
          Ex.BodyIdentifiers.emplace_back(SI.str(N.Value));
      }
      Out.push_back(std::move(Ex));
      break;
    }
  }
  return Out;
}
