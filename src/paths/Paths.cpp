//===- Paths.cpp - AST path extraction --------------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "paths/Paths.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::paths;

const char *paths::abstractionName(Abstraction A) {
  switch (A) {
  case Abstraction::Full:
    return "full";
  case Abstraction::NoArrows:
    return "no-arrows";
  case Abstraction::ForgetOrder:
    return "forget-order";
  case Abstraction::FirstTopLast:
    return "first-top-last";
  case Abstraction::FirstLast:
    return "first-last";
  case Abstraction::Top:
    return "top";
  case Abstraction::NoPath:
    return "no-path";
  }
  return "invalid";
}

PathShape paths::pathShape(const Tree &Tree, NodeId A, NodeId B) {
  PathShape Shape;
  NodeId Pivot = Tree.lca(A, B);
  Shape.Pivot = Pivot;
  const Node &NA = Tree.node(A);
  const Node &NB = Tree.node(B);
  const Node &NP = Tree.node(Pivot);
  Shape.Length = static_cast<int>(NA.Depth - NP.Depth) +
                 static_cast<int>(NB.Depth - NP.Depth);
  // Width (Fig. 5): sibling-index gap of the pivot's two children through
  // which the path passes. Chains (semi-paths) have width 0.
  if (Pivot == A || Pivot == B)
    return Shape;
  NodeId ChildA = A;
  while (Tree.node(ChildA).Parent != Pivot)
    ChildA = Tree.node(ChildA).Parent;
  NodeId ChildB = B;
  while (Tree.node(ChildB).Parent != Pivot)
    ChildB = Tree.node(ChildB).Parent;
  int IdxA = static_cast<int>(Tree.node(ChildA).IndexInParent);
  int IdxB = static_cast<int>(Tree.node(ChildB).IndexInParent);
  Shape.Width = std::abs(IdxA - IdxB);
  return Shape;
}

namespace {

/// Collects the kind symbols along the path A → pivot → B.
/// \p Ups receives A..pivot-exclusive (ascending), \p Pivot the pivot,
/// \p Downs pivot-exclusive..B (descending order from pivot's child to B).
void collectChains(const Tree &Tree, NodeId A, NodeId B, NodeId Pivot,
                   std::vector<Symbol> &Ups, std::vector<Symbol> &Downs) {
  for (NodeId N = A; N != Pivot; N = Tree.node(N).Parent)
    Ups.push_back(Tree.node(N).Kind);
  // Downward chain, collected from B up, then reversed.
  size_t Mark = Downs.size();
  for (NodeId N = B; N != Pivot; N = Tree.node(N).Parent)
    Downs.push_back(Tree.node(N).Kind);
  std::reverse(Downs.begin() + Mark, Downs.end());
}

} // namespace

std::string paths::pathString(const Tree &Tree, NodeId A, NodeId B,
                              Abstraction Abst) {
  if (Abst == Abstraction::NoPath)
    return "rel";

  NodeId Pivot = Tree.lca(A, B);
  std::vector<Symbol> Ups, Downs;
  collectChains(Tree, A, B, Pivot, Ups, Downs);
  Symbol PivotKind = Tree.node(Pivot).Kind;
  const StringInterner &SI = Tree.interner();

  switch (Abst) {
  case Abstraction::Full: {
    std::string Out;
    for (Symbol S : Ups) {
      Out += SI.str(S);
      Out += '^';
    }
    Out += SI.str(PivotKind);
    for (Symbol S : Downs) {
      Out += '_';
      Out += SI.str(S);
    }
    return Out;
  }
  case Abstraction::NoArrows: {
    std::string Out;
    for (Symbol S : Ups) {
      Out += SI.str(S);
      Out += ' ';
    }
    Out += SI.str(PivotKind);
    for (Symbol S : Downs) {
      Out += ' ';
      Out += SI.str(S);
    }
    return Out;
  }
  case Abstraction::ForgetOrder: {
    std::vector<std::string> Names;
    Names.reserve(Ups.size() + Downs.size() + 1);
    for (Symbol S : Ups)
      Names.push_back(SI.str(S));
    Names.push_back(SI.str(PivotKind));
    for (Symbol S : Downs)
      Names.push_back(SI.str(S));
    std::sort(Names.begin(), Names.end());
    std::string Out;
    for (const std::string &N : Names) {
      if (!Out.empty())
        Out += ' ';
      Out += N;
    }
    return Out;
  }
  case Abstraction::FirstTopLast: {
    Symbol First = Ups.empty() ? PivotKind : Ups.front();
    Symbol Last = Downs.empty() ? PivotKind : Downs.back();
    return SI.str(First) + "^" + SI.str(PivotKind) + "_" + SI.str(Last);
  }
  case Abstraction::FirstLast: {
    Symbol First = Ups.empty() ? PivotKind : Ups.front();
    Symbol Last = Downs.empty() ? PivotKind : Downs.back();
    return SI.str(First) + ".." + SI.str(Last);
  }
  case Abstraction::Top:
    return SI.str(PivotKind);
  case Abstraction::NoPath:
    break;
  }
  return "rel";
}

Symbol paths::endValue(const Tree &Tree, NodeId Node) {
  const ast::Node &N = Tree.node(Node);
  return N.isTerminal() ? N.Value : N.Kind;
}

namespace {

/// Cached handles into the global registry. Extraction is a hot path
/// (BM_ExtractPaths); after first use each update is one relaxed atomic.
struct ExtractionMetrics {
  telemetry::Counter &Contexts;
  telemetry::Counter &SemiContexts;
  telemetry::Counter &TriContextsCount;
  telemetry::Histogram &Length;
  telemetry::Histogram &Width;

  static ExtractionMetrics &get() {
    static ExtractionMetrics M = [] {
      auto &Reg = telemetry::MetricsRegistry::global();
      return ExtractionMetrics{
          Reg.counter("paths.contexts"),
          Reg.counter("paths.contexts.semi"),
          Reg.counter("paths.tri_contexts"),
          Reg.histogram("paths.length", telemetry::linearBounds(1, 12)),
          Reg.histogram("paths.width", telemetry::linearBounds(0, 8))};
    }();
    return M;
  }
};

/// Per-call tally of small integer shape values. The extraction loops are
/// the hottest instrumented code (BM_ExtractPaths, ~150 ns/context);
/// counting locally and flushing once per call via observeN keeps the
/// per-context cost to two array increments instead of ~10 atomic RMWs.
struct ShapeTally {
  static constexpr int MaxSmall = 32;
  uint64_t Counts[MaxSmall] = {};
  telemetry::Histogram &Sink;

  explicit ShapeTally(telemetry::Histogram &Sink) : Sink(Sink) {}
  ShapeTally(const ShapeTally &) = delete;
  ShapeTally &operator=(const ShapeTally &) = delete;
  ~ShapeTally() {
    for (int V = 0; V < MaxSmall; ++V)
      Sink.observeN(V, Counts[V]);
  }

  void record(int V) {
    if (V >= 0 && V < MaxSmall)
      ++Counts[V];
    else
      Sink.observe(V);
  }
};

} // namespace

std::vector<PathContext>
paths::extractPathContexts(const Tree &Tree, const ExtractionConfig &Config,
                           PathTable &Table) {
  std::vector<PathContext> Out;
  const std::vector<NodeId> &Leaves = Tree.terminals();
  ExtractionMetrics &Metrics = ExtractionMetrics::get();
  ShapeTally Lengths(Metrics.Length), Widths(Metrics.Width);

  // Pairwise leafwise paths.
  for (size_t I = 0; I < Leaves.size(); ++I) {
    for (size_t J = I + 1; J < Leaves.size(); ++J) {
      PathShape Shape = pathShape(Tree, Leaves[I], Leaves[J]);
      if (Shape.Length > Config.MaxLength || Shape.Width > Config.MaxWidth)
        continue;
      PathContext Ctx;
      Ctx.Start = Leaves[I];
      Ctx.End = Leaves[J];
      Ctx.Path =
          Table.intern(pathString(Tree, Leaves[I], Leaves[J], Config.Abst));
      Out.push_back(Ctx);
      Lengths.record(Shape.Length);
      Widths.record(Shape.Width);
    }
  }

  // Semi-paths: terminal → each ancestor within MaxLength edges.
  if (Config.IncludeSemiPaths) {
    size_t FirstSemi = Out.size();
    for (NodeId Leaf : Leaves) {
      int Hops = 0;
      for (NodeId N = Tree.node(Leaf).Parent;
           N != InvalidNode && Hops < Config.MaxLength;
           N = Tree.node(N).Parent) {
        ++Hops;
        PathContext Ctx;
        Ctx.Start = Leaf;
        Ctx.End = N;
        Ctx.Semi = true;
        Ctx.Path = Table.intern(pathString(Tree, Leaf, N, Config.Abst));
        Out.push_back(Ctx);
        Lengths.record(Hops);
        Widths.record(0);
      }
    }
    Metrics.SemiContexts.add(Out.size() - FirstSemi);
  }
  Metrics.Contexts.add(Out.size());
  return Out;
}

std::vector<PathContext>
paths::extractPathsToNode(const Tree &Tree, NodeId Target,
                          const ExtractionConfig &Config, PathTable &Table) {
  std::vector<PathContext> Out;
  ExtractionMetrics &Metrics = ExtractionMetrics::get();
  ShapeTally Lengths(Metrics.Length), Widths(Metrics.Width);
  for (NodeId Leaf : Tree.terminals()) {
    if (Leaf == Target)
      continue;
    PathShape Shape = pathShape(Tree, Leaf, Target);
    if (Shape.Length > Config.MaxLength || Shape.Width > Config.MaxWidth)
      continue;
    Lengths.record(Shape.Length);
    Widths.record(Shape.Width);
    // Skip leaves *inside* the target expression of distance 0: a path
    // from a leaf of the target up to the target itself is fine (it is a
    // semi-path) and is in fact the most informative context for type
    // prediction, so keep it.
    PathContext Ctx;
    Ctx.Start = Leaf;
    Ctx.End = Target;
    Ctx.Semi = (Shape.Pivot == Target);
    Ctx.Path = Table.intern(pathString(Tree, Leaf, Target, Config.Abst));
    Out.push_back(Ctx);
  }
  Metrics.Contexts.add(Out.size());
  return Out;
}

std::string paths::triPathString(const Tree &Tree, NodeId A, NodeId B,
                                 NodeId C, Abstraction Abst) {
  if (Abst == Abstraction::NoPath)
    return "rel3";
  NodeId M = Tree.lca(A, Tree.lca(B, C));
  const StringInterner &SI = Tree.interner();

  auto UpChain = [&](NodeId From) {
    std::string Out;
    for (NodeId N = From; N != M; N = Tree.node(N).Parent) {
      Out += SI.str(Tree.node(N).Kind);
      Out += '^';
    }
    return Out;
  };
  auto DownBranch = [&](NodeId To) {
    // Collect M→To exclusive of M, in downward order.
    std::vector<Symbol> Chain;
    for (NodeId N = To; N != M; N = Tree.node(N).Parent)
      Chain.push_back(Tree.node(N).Kind);
    std::string Out;
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
      Out += '_';
      Out += SI.str(*It);
    }
    return Out;
  };

  // Coarse abstractions reuse the pairwise ladder on the end nodes.
  switch (Abst) {
  case Abstraction::Top:
    return SI.str(Tree.node(M).Kind);
  case Abstraction::FirstLast:
    return SI.str(Tree.node(A).Kind) + ".." + SI.str(Tree.node(C).Kind);
  case Abstraction::FirstTopLast:
    return SI.str(Tree.node(A).Kind) + "^" + SI.str(Tree.node(M).Kind) +
           "_" + SI.str(Tree.node(C).Kind);
  default:
    break;
  }
  std::string Out = UpChain(A) + SI.str(Tree.node(M).Kind) + "(" +
                    DownBranch(B) + ")(" + DownBranch(C) + ")";
  if (Abst == Abstraction::Full)
    return Out;
  // NoArrows / ForgetOrder: strip movement/structure markers.
  std::string Flat;
  for (char Ch : Out) {
    if (Ch == '^' || Ch == '_' || Ch == '(' || Ch == ')')
      Flat += ' ';
    else
      Flat += Ch;
  }
  if (Abst == Abstraction::ForgetOrder) {
    // Sort the node names as a bag.
    std::vector<std::string> Names;
    std::string Cur;
    for (char Ch : Flat) {
      if (Ch == ' ') {
        if (!Cur.empty())
          Names.push_back(Cur);
        Cur.clear();
      } else {
        Cur += Ch;
      }
    }
    if (!Cur.empty())
      Names.push_back(Cur);
    std::sort(Names.begin(), Names.end());
    std::string Sorted;
    for (const std::string &N : Names) {
      if (!Sorted.empty())
        Sorted += ' ';
      Sorted += N;
    }
    return Sorted;
  }
  return Flat;
}

std::vector<TriContext>
paths::extractTriContexts(const Tree &Tree, const ExtractionConfig &Config,
                          PathTable &Table) {
  std::vector<TriContext> Out;
  const std::vector<NodeId> &Leaves = Tree.terminals();
  for (size_t I = 0; I + 2 < Leaves.size(); ++I) {
    NodeId A = Leaves[I], B = Leaves[I + 1], C = Leaves[I + 2];
    PathShape Extreme = pathShape(Tree, A, C);
    if (Extreme.Length > Config.MaxLength ||
        Extreme.Width > Config.MaxWidth)
      continue;
    TriContext Ctx;
    Ctx.A = A;
    Ctx.B = B;
    Ctx.C = C;
    Ctx.Path = Table.intern(triPathString(Tree, A, B, C, Config.Abst));
    Out.push_back(Ctx);
  }
  ExtractionMetrics::get().TriContextsCount.add(Out.size());
  return Out;
}
