//===- Paths.cpp - AST path extraction --------------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "paths/Paths.h"

#include "support/BinaryIO.h"
#include "support/Hashing.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::paths;

const char *paths::abstractionName(Abstraction A) {
  switch (A) {
  case Abstraction::Full:
    return "full";
  case Abstraction::NoArrows:
    return "no-arrows";
  case Abstraction::ForgetOrder:
    return "forget-order";
  case Abstraction::FirstTopLast:
    return "first-top-last";
  case Abstraction::FirstLast:
    return "first-last";
  case Abstraction::Top:
    return "top";
  case Abstraction::NoPath:
    return "no-path";
  }
  return "invalid";
}

PathShape paths::pathShape(const Tree &Tree, NodeId A, NodeId B) {
  PathShape Shape;
  NodeId Pivot = Tree.lca(A, B);
  Shape.Pivot = Pivot;
  const Node &NA = Tree.node(A);
  const Node &NB = Tree.node(B);
  const Node &NP = Tree.node(Pivot);
  Shape.Length = static_cast<int>(NA.Depth - NP.Depth) +
                 static_cast<int>(NB.Depth - NP.Depth);
  // Width (Fig. 5): sibling-index gap of the pivot's two children through
  // which the path passes. Chains (semi-paths) have width 0.
  if (Pivot == A || Pivot == B)
    return Shape;
  NodeId ChildA = A;
  while (Tree.node(ChildA).Parent != Pivot)
    ChildA = Tree.node(ChildA).Parent;
  NodeId ChildB = B;
  while (Tree.node(ChildB).Parent != Pivot)
    ChildB = Tree.node(ChildB).Parent;
  int IdxA = static_cast<int>(Tree.node(ChildA).IndexInParent);
  int IdxB = static_cast<int>(Tree.node(ChildB).IndexInParent);
  Shape.Width = std::abs(IdxA - IdxB);
  return Shape;
}

//===----------------------------------------------------------------------===//
// PathTable storage
//===----------------------------------------------------------------------===//

PathId PathTable::internString(std::string_view Str) {
  // Raw-tagged paths carry the string verbatim; a small stack buffer
  // covers typical keys, longer ones take one transient heap vector.
  constexpr size_t StackCap = 256;
  if (Str.size() < StackCap) {
    uint8_t Buf[StackCap];
    Buf[0] = static_cast<uint8_t>(PathTag::Raw);
    std::memcpy(Buf + 1, Str.data(), Str.size());
    return intern(std::span<const uint8_t>(Buf, Str.size() + 1));
  }
  std::vector<uint8_t> Bytes;
  Bytes.reserve(Str.size() + 1);
  Bytes.push_back(static_cast<uint8_t>(PathTag::Raw));
  Bytes.insert(Bytes.end(), Str.begin(), Str.end());
  return intern(Bytes);
}

std::span<const uint8_t>
PathTable::store(std::span<const uint8_t> Packed) {
  constexpr size_t BlockSize = 64u << 10;
  if (Blocks.empty() || Packed.size() > BlockCap - BlockUsed) {
    size_t Cap = std::max(Packed.size(), BlockSize);
    Blocks.push_back(std::make_unique<uint8_t[]>(Cap));
    BlockCap = Cap;
    BlockUsed = 0;
  }
  uint8_t *Dst = Blocks.back().get() + BlockUsed;
  if (!Packed.empty())
    std::memcpy(Dst, Packed.data(), Packed.size());
  BlockUsed += Packed.size();
  return {Dst, Packed.size()};
}

PathId PathTable::findFrozen(std::span<const uint8_t> Packed) const {
  if (!FV.Slots)
    return 0;
  uint64_t Hash = stableHashBytes(Packed.data(), Packed.size());
  // Probe count is bounded by the table size so a hostile stored index
  // with no empty slot terminates instead of spinning.
  for (uint64_t I = Hash & FV.Mask, Probes = 0; Probes <= FV.Mask;
       ++Probes, I = (I + 1) & FV.Mask) {
    uint32_t Id = FV.Slots[I];
    if (Id == 0)
      return 0;
    std::span<const uint8_t> Stored(FV.Bytes + FV.Offsets[Id - 1],
                                    FV.Offsets[Id] - FV.Offsets[Id - 1]);
    if (Stored.size() == Packed.size() &&
        (Packed.empty() ||
         std::memcmp(Stored.data(), Packed.data(), Packed.size()) == 0))
      return Id;
  }
  return 0;
}

std::vector<PathId> PathTable::absorb(const PathTable &Shard) {
  // Byte-wise merge: every locally-stored shard path is re-looked-up
  // (and stored on first encounter) directly from its packed bytes — no
  // per-path string or buffer materialization. Reading Shard.Paths
  // directly keeps this correct for delta overlays, whose local arena
  // holds exactly the novel paths (bytes() would route final ids to the
  // base).
  std::vector<PathId> Map(Shard.size() + 1, InvalidPath);
  for (PathId Id = 1; Id <= Shard.size(); ++Id)
    Map[Id] = intern(Shard.Paths[Id]);
  return Map;
}

//===----------------------------------------------------------------------===//
// Packed encoding
//===----------------------------------------------------------------------===//

namespace {

/// Collects the kind symbols along the path A → pivot → B.
/// \p Ups receives A..pivot-exclusive (ascending), \p Downs
/// pivot-exclusive..B (descending order from pivot's child to B).
void collectChains(const Tree &Tree, NodeId A, NodeId B, NodeId Pivot,
                   std::vector<Symbol> &Ups, std::vector<Symbol> &Downs) {
  for (NodeId N = A; N != Pivot; N = Tree.node(N).Parent)
    Ups.push_back(Tree.node(N).Kind);
  // Downward chain, collected from B up, then reversed.
  size_t Mark = Downs.size();
  for (NodeId N = B; N != Pivot; N = Tree.node(N).Parent)
    Downs.push_back(Tree.node(N).Kind);
  std::reverse(Downs.begin() + Mark, Downs.end());
}

void packRaw(std::vector<uint8_t> &Out, std::string_view Str) {
  Out.push_back(static_cast<uint8_t>(PathTag::Raw));
  Out.insert(Out.end(), Str.begin(), Str.end());
}

void appendSymbol(std::vector<uint8_t> &Out, Symbol S) {
  io::appendVarint(Out, S.index());
}

/// Legacy rendering of the 3-wise full path "ups^M(_branchB)(_branchC)",
/// the base form the flat/bag 3-wise abstractions re-tokenize.
std::string triFullString(const Tree &Tree, NodeId A, NodeId B, NodeId C,
                          NodeId M) {
  const StringInterner &SI = Tree.interner();
  std::string Out;
  for (NodeId N = A; N != M; N = Tree.node(N).Parent) {
    Out += SI.str(Tree.node(N).Kind);
    Out += '^';
  }
  Out += SI.str(Tree.node(M).Kind);
  auto DownBranch = [&](NodeId To) {
    std::vector<Symbol> Chain;
    for (NodeId N = To; N != M; N = Tree.node(N).Parent)
      Chain.push_back(Tree.node(N).Kind);
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
      Out += '_';
      Out += SI.str(*It);
    }
  };
  Out += '(';
  DownBranch(B);
  Out += ")(";
  DownBranch(C);
  Out += ')';
  return Out;
}

} // namespace

void paths::packPath(const Tree &Tree, NodeId A, NodeId B, Abstraction Abst,
                     PathScratch &S, NodeId PivotHint) {
  S.Bytes.clear();
  if (Abst == Abstraction::NoPath) {
    packRaw(S.Bytes, "rel");
    return;
  }

  NodeId Pivot = PivotHint != InvalidNode ? PivotHint : Tree.lca(A, B);
  S.Ups.clear();
  S.Downs.clear();
  collectChains(Tree, A, B, Pivot, S.Ups, S.Downs);
  Symbol PivotKind = Tree.node(Pivot).Kind;

  switch (Abst) {
  case Abstraction::Full:
    // The up-count makes the (ups, pivot, downs) split positional, like
    // the arrows in "A^P_B" do.
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::PairFull));
    io::appendVarint(S.Bytes, static_cast<uint32_t>(S.Ups.size()));
    for (Symbol Sym : S.Ups)
      appendSymbol(S.Bytes, Sym);
    appendSymbol(S.Bytes, PivotKind);
    for (Symbol Sym : S.Downs)
      appendSymbol(S.Bytes, Sym);
    return;
  case Abstraction::NoArrows:
    // No up-count: the space-joined rendering cannot tell where the
    // pivot sits, so the packed form must not either.
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::PairFlat));
    for (Symbol Sym : S.Ups)
      appendSymbol(S.Bytes, Sym);
    appendSymbol(S.Bytes, PivotKind);
    for (Symbol Sym : S.Downs)
      appendSymbol(S.Bytes, Sym);
    return;
  case Abstraction::ForgetOrder:
    // Multiset of kinds, canonicalized by symbol id. Two bags of symbols
    // are equal iff their name-sorted renderings are equal, so the dedup
    // classes match the legacy sorted-string form.
    S.Ups.push_back(PivotKind);
    S.Ups.insert(S.Ups.end(), S.Downs.begin(), S.Downs.end());
    std::sort(S.Ups.begin(), S.Ups.end());
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::Bag));
    for (Symbol Sym : S.Ups)
      appendSymbol(S.Bytes, Sym);
    return;
  case Abstraction::FirstTopLast: {
    Symbol First = S.Ups.empty() ? PivotKind : S.Ups.front();
    Symbol Last = S.Downs.empty() ? PivotKind : S.Downs.back();
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::FirstTopLast));
    appendSymbol(S.Bytes, First);
    appendSymbol(S.Bytes, PivotKind);
    appendSymbol(S.Bytes, Last);
    return;
  }
  case Abstraction::FirstLast: {
    Symbol First = S.Ups.empty() ? PivotKind : S.Ups.front();
    Symbol Last = S.Downs.empty() ? PivotKind : S.Downs.back();
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::FirstLast));
    appendSymbol(S.Bytes, First);
    appendSymbol(S.Bytes, Last);
    return;
  }
  case Abstraction::Top:
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::Top));
    appendSymbol(S.Bytes, PivotKind);
    return;
  case Abstraction::NoPath:
    break;
  }
  packRaw(S.Bytes, "rel");
}

void paths::packTriPath(const Tree &Tree, NodeId A, NodeId B, NodeId C,
                        Abstraction Abst, PathScratch &S) {
  S.Bytes.clear();
  if (Abst == Abstraction::NoPath) {
    packRaw(S.Bytes, "rel3");
    return;
  }
  NodeId M = Tree.lca(A, Tree.lca(B, C));

  // Coarse abstractions reuse the pairwise tags on the end nodes: their
  // legacy renderings share the pairwise formats, so identical symbol
  // tuples must dedup together across pairwise and 3-wise paths.
  switch (Abst) {
  case Abstraction::Top:
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::Top));
    appendSymbol(S.Bytes, Tree.node(M).Kind);
    return;
  case Abstraction::FirstLast:
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::FirstLast));
    appendSymbol(S.Bytes, Tree.node(A).Kind);
    appendSymbol(S.Bytes, Tree.node(C).Kind);
    return;
  case Abstraction::FirstTopLast:
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::FirstTopLast));
    appendSymbol(S.Bytes, Tree.node(A).Kind);
    appendSymbol(S.Bytes, Tree.node(M).Kind);
    appendSymbol(S.Bytes, Tree.node(C).Kind);
    return;
  default:
    break;
  }

  if (Abst == Abstraction::Full) {
    S.Bytes.push_back(static_cast<uint8_t>(PathTag::TriFull));
    S.Ups.clear();
    for (NodeId N = A; N != M; N = Tree.node(N).Parent)
      S.Ups.push_back(Tree.node(N).Kind);
    io::appendVarint(S.Bytes, static_cast<uint32_t>(S.Ups.size()));
    for (Symbol Sym : S.Ups)
      appendSymbol(S.Bytes, Sym);
    appendSymbol(S.Bytes, Tree.node(M).Kind);
    S.Downs.clear();
    collectChains(Tree, M, B, M, S.Ups /*unused*/, S.Downs);
    io::appendVarint(S.Bytes, static_cast<uint32_t>(S.Downs.size()));
    for (Symbol Sym : S.Downs)
      appendSymbol(S.Bytes, Sym);
    S.Downs.clear();
    collectChains(Tree, M, C, M, S.Ups /*unused*/, S.Downs);
    for (Symbol Sym : S.Downs)
      appendSymbol(S.Bytes, Sym);
    return;
  }

  // NoArrows / ForgetOrder flatten the full rendering's movement markers
  // to spaces (and ForgetOrder then sorts the space-separated tokens).
  // That re-tokenizes node names, so the strings themselves are the only
  // faithful identity — pack them Raw. 3-wise extraction is O(leaves)
  // per tree, so this is not the pairwise hot path.
  std::string Full = triFullString(Tree, A, B, C, M);
  S.Str.clear();
  for (char Ch : Full)
    S.Str += (Ch == '^' || Ch == '_' || Ch == '(' || Ch == ')') ? ' ' : Ch;
  if (Abst == Abstraction::ForgetOrder) {
    std::vector<std::string> Names;
    std::string Cur;
    for (char Ch : S.Str) {
      if (Ch == ' ') {
        if (!Cur.empty())
          Names.push_back(Cur);
        Cur.clear();
      } else {
        Cur += Ch;
      }
    }
    if (!Cur.empty())
      Names.push_back(Cur);
    std::sort(Names.begin(), Names.end());
    S.Str.clear();
    for (const std::string &N : Names) {
      if (!S.Str.empty())
        S.Str += ' ';
      S.Str += N;
    }
  }
  packRaw(S.Bytes, S.Str);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *BadPath = "<bad-path>";

bool readSymbolName(io::ByteReader &R, const StringInterner &SI,
                    std::string &Out) {
  uint32_t Idx = 0;
  if (!R.readVarint(Idx) || Idx >= SI.size())
    return false;
  Out += SI.str(Symbol::fromIndex(Idx));
  return true;
}

} // namespace

std::string paths::renderPackedPath(std::span<const uint8_t> Packed,
                                    const StringInterner &SI) {
  io::ByteReader R(Packed);
  uint8_t TagByte = 0;
  if (!R.readByte(TagByte))
    return BadPath;
  std::string Out;
  switch (static_cast<PathTag>(TagByte)) {
  case PathTag::Raw:
    return std::string(
        reinterpret_cast<const char *>(Packed.data()) + 1,
        Packed.size() - 1);
  case PathTag::PairFull: {
    uint32_t NumUps = 0;
    if (!R.readVarint(NumUps))
      return BadPath;
    for (uint32_t I = 0; I < NumUps; ++I) {
      if (!readSymbolName(R, SI, Out))
        return BadPath;
      Out += '^';
    }
    if (!readSymbolName(R, SI, Out))
      return BadPath;
    while (!R.atEnd()) {
      Out += '_';
      if (!readSymbolName(R, SI, Out))
        return BadPath;
    }
    return Out;
  }
  case PathTag::PairFlat:
    while (!R.atEnd()) {
      if (!Out.empty())
        Out += ' ';
      if (!readSymbolName(R, SI, Out))
        return BadPath;
    }
    return Out;
  case PathTag::Bag: {
    // Canonical order in bytes is by symbol id; the rendering sorts by
    // name, matching the legacy sorted-string form.
    std::vector<std::string> Names;
    while (!R.atEnd()) {
      std::string Name;
      if (!readSymbolName(R, SI, Name))
        return BadPath;
      Names.push_back(std::move(Name));
    }
    std::sort(Names.begin(), Names.end());
    for (const std::string &N : Names) {
      if (!Out.empty())
        Out += ' ';
      Out += N;
    }
    return Out;
  }
  case PathTag::FirstTopLast: {
    if (!readSymbolName(R, SI, Out))
      return BadPath;
    Out += '^';
    if (!readSymbolName(R, SI, Out))
      return BadPath;
    Out += '_';
    if (!readSymbolName(R, SI, Out) || !R.atEnd())
      return BadPath;
    return Out;
  }
  case PathTag::FirstLast: {
    if (!readSymbolName(R, SI, Out))
      return BadPath;
    Out += "..";
    if (!readSymbolName(R, SI, Out) || !R.atEnd())
      return BadPath;
    return Out;
  }
  case PathTag::Top:
    if (!readSymbolName(R, SI, Out) || !R.atEnd())
      return BadPath;
    return Out;
  case PathTag::TriFull: {
    uint32_t NumUps = 0;
    if (!R.readVarint(NumUps))
      return BadPath;
    for (uint32_t I = 0; I < NumUps; ++I) {
      if (!readSymbolName(R, SI, Out))
        return BadPath;
      Out += '^';
    }
    if (!readSymbolName(R, SI, Out))
      return BadPath;
    uint32_t NumB = 0;
    if (!R.readVarint(NumB))
      return BadPath;
    Out += '(';
    for (uint32_t I = 0; I < NumB; ++I) {
      Out += '_';
      if (!readSymbolName(R, SI, Out))
        return BadPath;
    }
    Out += ")(";
    while (!R.atEnd()) {
      Out += '_';
      if (!readSymbolName(R, SI, Out))
        return BadPath;
    }
    Out += ')';
    return Out;
  }
  }
  return BadPath;
}

bool paths::remapPackedPath(std::span<const uint8_t> Packed,
                            const std::vector<Symbol> &Map,
                            std::vector<uint8_t> &Out) {
  Out.clear();
  io::ByteReader R(Packed);
  uint8_t TagByte = 0;
  if (!R.readByte(TagByte))
    return false;
  Out.push_back(TagByte);
  auto MapSymbols = [&](size_t Count) {
    for (size_t I = 0; I < Count; ++I) {
      uint32_t Idx = 0;
      if (!R.readVarint(Idx) || Idx >= Map.size())
        return false;
      io::appendVarint(Out, Map[Idx].index());
    }
    return true;
  };
  auto MapToEnd = [&] {
    while (!R.atEnd())
      if (!MapSymbols(1))
        return false;
    return true;
  };
  switch (static_cast<PathTag>(TagByte)) {
  case PathTag::Raw:
    Out.insert(Out.end(), Packed.begin() + 1, Packed.end());
    return true;
  case PathTag::PairFull: {
    uint32_t NumUps = 0;
    if (!R.readVarint(NumUps))
      return false;
    io::appendVarint(Out, NumUps);
    return MapToEnd();
  }
  case PathTag::PairFlat:
    return MapToEnd();
  case PathTag::Bag: {
    // Canonical order is by symbol id, which the remap permutes: collect,
    // map, re-sort, emit.
    std::vector<Symbol> Syms;
    while (!R.atEnd()) {
      uint32_t Idx = 0;
      if (!R.readVarint(Idx) || Idx >= Map.size())
        return false;
      Syms.push_back(Map[Idx]);
    }
    std::sort(Syms.begin(), Syms.end());
    for (Symbol S : Syms)
      io::appendVarint(Out, S.index());
    return true;
  }
  case PathTag::FirstTopLast:
    return MapSymbols(3) && R.atEnd();
  case PathTag::FirstLast:
    return MapSymbols(2) && R.atEnd();
  case PathTag::Top:
    return MapSymbols(1) && R.atEnd();
  case PathTag::TriFull: {
    uint32_t NumUps = 0;
    if (!R.readVarint(NumUps))
      return false;
    io::appendVarint(Out, NumUps);
    if (!MapSymbols(NumUps) || !MapSymbols(1))
      return false;
    uint32_t NumB = 0;
    if (!R.readVarint(NumB))
      return false;
    io::appendVarint(Out, NumB);
    return MapSymbols(NumB) && MapToEnd();
  }
  }
  return false;
}

std::string paths::pathString(const Tree &Tree, NodeId A, NodeId B,
                              Abstraction Abst) {
  PathScratch S;
  packPath(Tree, A, B, Abst, S);
  return renderPackedPath(S.Bytes, Tree.interner());
}

std::string paths::triPathString(const Tree &Tree, NodeId A, NodeId B,
                                 NodeId C, Abstraction Abst) {
  PathScratch S;
  packTriPath(Tree, A, B, C, Abst, S);
  return renderPackedPath(S.Bytes, Tree.interner());
}

Symbol paths::endValue(const Tree &Tree, NodeId Node) {
  const ast::Node &N = Tree.node(Node);
  return N.isTerminal() ? N.Value : N.Kind;
}

//===----------------------------------------------------------------------===//
// Extraction
//===----------------------------------------------------------------------===//

namespace {

/// Cached handles into the global registry. Extraction is a hot path
/// (BM_ExtractPaths); after first use each update is one relaxed atomic.
struct ExtractionMetrics {
  telemetry::Counter &Contexts;
  telemetry::Counter &SemiContexts;
  telemetry::Counter &TriContextsCount;
  telemetry::Histogram &Length;
  telemetry::Histogram &Width;

  static ExtractionMetrics &get() {
    static ExtractionMetrics M = [] {
      auto &Reg = telemetry::MetricsRegistry::global();
      return ExtractionMetrics{
          Reg.counter("paths.contexts"),
          Reg.counter("paths.contexts.semi"),
          Reg.counter("paths.tri_contexts"),
          Reg.histogram("paths.length", telemetry::linearBounds(1, 12)),
          Reg.histogram("paths.width", telemetry::linearBounds(0, 8))};
    }();
    return M;
  }
};

/// Per-call tally of small integer shape values. The extraction loops are
/// the hottest instrumented code (BM_ExtractPaths, ~150 ns/context);
/// counting locally and flushing once per call via observeN keeps the
/// per-context cost to two array increments instead of ~10 atomic RMWs.
struct ShapeTally {
  static constexpr int MaxSmall = 32;
  uint64_t Counts[MaxSmall] = {};
  telemetry::Histogram &Sink;

  explicit ShapeTally(telemetry::Histogram &Sink) : Sink(Sink) {}
  ShapeTally(const ShapeTally &) = delete;
  ShapeTally &operator=(const ShapeTally &) = delete;
  ~ShapeTally() {
    for (int V = 0; V < MaxSmall; ++V)
      Sink.observeN(V, Counts[V]);
  }

  void record(int V) {
    if (V >= 0 && V < MaxSmall)
      ++Counts[V];
    else
      Sink.observe(V);
  }
};

} // namespace

std::vector<PathContext>
paths::extractPathContexts(const Tree &Tree, const ExtractionConfig &Config,
                           PathTable &Table) {
  std::vector<PathContext> Out;
  const std::vector<NodeId> &Leaves = Tree.terminals();
  ExtractionMetrics &Metrics = ExtractionMetrics::get();
  ShapeTally Lengths(Metrics.Length), Widths(Metrics.Width);
  PathScratch Scratch;

  // Pairwise leafwise paths. Each path is packed into the reused scratch
  // buffer and interned by byte equality — no string per context.
  for (size_t I = 0; I < Leaves.size(); ++I) {
    for (size_t J = I + 1; J < Leaves.size(); ++J) {
      PathShape Shape = pathShape(Tree, Leaves[I], Leaves[J]);
      if (Shape.Length > Config.MaxLength || Shape.Width > Config.MaxWidth)
        continue;
      PathContext Ctx;
      Ctx.Start = Leaves[I];
      Ctx.End = Leaves[J];
      packPath(Tree, Leaves[I], Leaves[J], Config.Abst, Scratch,
               Shape.Pivot);
      Ctx.Path = Table.intern(Scratch.Bytes);
      Out.push_back(Ctx);
      Lengths.record(Shape.Length);
      Widths.record(Shape.Width);
    }
  }

  // Semi-paths: terminal → each ancestor within MaxLength edges. The
  // ancestor is the pivot of its own chain.
  if (Config.IncludeSemiPaths) {
    size_t FirstSemi = Out.size();
    for (NodeId Leaf : Leaves) {
      int Hops = 0;
      for (NodeId N = Tree.node(Leaf).Parent;
           N != InvalidNode && Hops < Config.MaxLength;
           N = Tree.node(N).Parent) {
        ++Hops;
        PathContext Ctx;
        Ctx.Start = Leaf;
        Ctx.End = N;
        Ctx.Semi = true;
        packPath(Tree, Leaf, N, Config.Abst, Scratch, /*PivotHint=*/N);
        Ctx.Path = Table.intern(Scratch.Bytes);
        Out.push_back(Ctx);
        Lengths.record(Hops);
        Widths.record(0);
      }
    }
    Metrics.SemiContexts.add(Out.size() - FirstSemi);
  }
  Metrics.Contexts.add(Out.size());
  return Out;
}

std::vector<PathContext>
paths::extractPathsToNode(const Tree &Tree, NodeId Target,
                          const ExtractionConfig &Config, PathTable &Table) {
  std::vector<PathContext> Out;
  ExtractionMetrics &Metrics = ExtractionMetrics::get();
  ShapeTally Lengths(Metrics.Length), Widths(Metrics.Width);
  PathScratch Scratch;
  for (NodeId Leaf : Tree.terminals()) {
    if (Leaf == Target)
      continue;
    PathShape Shape = pathShape(Tree, Leaf, Target);
    if (Shape.Length > Config.MaxLength || Shape.Width > Config.MaxWidth)
      continue;
    Lengths.record(Shape.Length);
    Widths.record(Shape.Width);
    // Skip leaves *inside* the target expression of distance 0: a path
    // from a leaf of the target up to the target itself is fine (it is a
    // semi-path) and is in fact the most informative context for type
    // prediction, so keep it.
    PathContext Ctx;
    Ctx.Start = Leaf;
    Ctx.End = Target;
    Ctx.Semi = (Shape.Pivot == Target);
    packPath(Tree, Leaf, Target, Config.Abst, Scratch, Shape.Pivot);
    Ctx.Path = Table.intern(Scratch.Bytes);
    Out.push_back(Ctx);
  }
  Metrics.Contexts.add(Out.size());
  return Out;
}

std::vector<TriContext>
paths::extractTriContexts(const Tree &Tree, const ExtractionConfig &Config,
                          PathTable &Table) {
  std::vector<TriContext> Out;
  const std::vector<NodeId> &Leaves = Tree.terminals();
  PathScratch Scratch;
  for (size_t I = 0; I + 2 < Leaves.size(); ++I) {
    NodeId A = Leaves[I], B = Leaves[I + 1], C = Leaves[I + 2];
    PathShape Extreme = pathShape(Tree, A, C);
    if (Extreme.Length > Config.MaxLength ||
        Extreme.Width > Config.MaxWidth)
      continue;
    TriContext Ctx;
    Ctx.A = A;
    Ctx.B = B;
    Ctx.C = C;
    packTriPath(Tree, A, B, C, Config.Abst, Scratch);
    Ctx.Path = Table.intern(Scratch.Bytes);
    Out.push_back(Ctx);
  }
  ExtractionMetrics::get().TriContextsCount.add(Out.size());
  return Out;
}
