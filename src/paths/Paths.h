//===- Paths.h - AST path extraction (the paper's core) ---------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: AST paths (§4). An AST-path of length
/// k is a sequence n1 d1 ... nk dk n(k+1) of nodes and up/down movements
/// (Def. 4.2); a path-context is ⟨x_s, p, x_f⟩ — the path plus the values
/// at its ends (Def. 4.3); an abstract path-context applies an abstraction
/// function α to the path (Def. 4.4).
///
/// This module implements:
///  * pairwise leafwise paths (between AST terminals),
///  * semi-paths (terminal → ancestor, §5 "Leafwise and semi-paths"),
///  * leaf → nonterminal paths for the full-type task (§5.3.3),
///  * the max_length / max_width hyper-parameters (§4.2, Fig. 5),
///  * the abstraction ladder of §5.6: full, no-arrows, forget-order,
///    first-top-last, first-last, top, no-path.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_PATHS_PATHS_H
#define PIGEON_PATHS_PATHS_H

#include "ast/Ast.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pigeon {
namespace paths {

/// Abstraction functions α of §5.6, ordered from most to least expressive.
enum class Abstraction : uint8_t {
  Full,         ///< α_id: every node, with ↑/↓ arrows.
  NoArrows,     ///< Full encoding minus the movement arrows.
  ForgetOrder,  ///< Bag of nodes: sorted, no arrows.
  FirstTopLast, ///< First, pivot ("top") and last nodes only.
  FirstLast,    ///< First and last nodes only.
  Top,          ///< Pivot node only.
  NoPath,       ///< All relations equal ("bag of near identifiers").
};

/// \returns the §5.6 name of \p A ("full", "no-arrows", ...).
const char *abstractionName(Abstraction A);

/// All abstractions, in the order Fig. 12 plots them.
inline constexpr Abstraction AllAbstractions[] = {
    Abstraction::NoPath,      Abstraction::FirstLast,
    Abstraction::Top,         Abstraction::FirstTopLast,
    Abstraction::ForgetOrder, Abstraction::NoArrows,
    Abstraction::Full,
};

/// Extraction hyper-parameters (§4.2).
struct ExtractionConfig {
  /// Maximal number of edges in a path (the paper's max_length).
  int MaxLength = 7;
  /// Maximal sibling-index gap at the pivot node (the paper's max_width,
  /// Fig. 5).
  int MaxWidth = 3;
  Abstraction Abst = Abstraction::Full;
  /// Also emit semi-paths (terminal → ancestor). Semi-paths generalize
  /// across programs even when full leaf-to-leaf paths do not recur.
  bool IncludeSemiPaths = true;
};

/// Interned id of an abstracted path string.
using PathId = uint32_t;
inline constexpr PathId InvalidPath = ~0u;

/// Interns abstracted path strings into dense PathIds, shared across all
/// trees of one corpus so that identical paths in different programs get
/// the same id (which is what lets the models generalize).
class PathTable {
public:
  PathId intern(const std::string &Path) {
    return Interner.intern(Path).index();
  }
  const std::string &str(PathId Id) const {
    return Interner.str(Symbol::fromIndex(Id));
  }
  /// Number of distinct paths (§5.6 reports model size through this).
  size_t size() const { return Interner.size() - 1; }

  /// Interns every path of \p Shard, in shard-local id order, and returns
  /// the remap shard-id → this-table-id (index 0 is unused). Absorbing
  /// contiguous shard tables in shard order reproduces the exact ids a
  /// serial extraction over the same files would have assigned — the
  /// determinism contract of the parallel extraction stage.
  std::vector<PathId> absorb(const PathTable &Shard) {
    std::vector<PathId> Map(Shard.size() + 1, InvalidPath);
    for (PathId Id = 1; Id <= Shard.size(); ++Id)
      Map[Id] = intern(Shard.str(Id));
    return Map;
  }

private:
  StringInterner Interner;
};

/// One extracted path-context: the path and its two end nodes. Ends are
/// terminals for leafwise paths; End is an ancestor nonterminal for
/// semi-paths and a target expression node for type-task paths.
struct PathContext {
  ast::NodeId Start = ast::InvalidNode;
  ast::NodeId End = ast::InvalidNode;
  PathId Path = InvalidPath;
  /// True if this is a semi-path (End is an ancestor of Start).
  bool Semi = false;
};

/// Geometric shape of the path between two nodes.
struct PathShape {
  int Length = 0;        ///< Number of edges.
  int Width = 0;         ///< Sibling-index gap at the pivot (0 for chains).
  ast::NodeId Pivot = ast::InvalidNode; ///< The LCA ("top" node).
};

/// Computes length/width/pivot for the path between \p A and \p B.
PathShape pathShape(const ast::Tree &Tree, ast::NodeId A, ast::NodeId B);

/// Renders the abstracted path between \p A and \p B. The rendering uses
/// "^" for up-movements and "_" for down-movements (ASCII stand-ins for
/// the paper's ↑/↓).
std::string pathString(const ast::Tree &Tree, ast::NodeId A, ast::NodeId B,
                       Abstraction Abst);

/// \returns the value of a path-context end: the terminal's value, or the
/// node kind for nonterminal ends.
Symbol endValue(const ast::Tree &Tree, ast::NodeId Node);

/// Extracts all leafwise path-contexts (and semi-paths if configured)
/// of \p Tree that satisfy the length/width limits. Paths are interned
/// into \p Table under the configured abstraction.
std::vector<PathContext> extractPathContexts(const ast::Tree &Tree,
                                             const ExtractionConfig &Config,
                                             PathTable &Table);

/// Extracts paths from terminals to a specific target node (used by the
/// full-type task, where the prediction target is an expression
/// nonterminal). Only terminals within the length/width limits contribute.
std::vector<PathContext> extractPathsToNode(const ast::Tree &Tree,
                                            ast::NodeId Target,
                                            const ExtractionConfig &Config,
                                            PathTable &Table);

//===----------------------------------------------------------------------===//
// n-wise paths (§4's generalization beyond pairwise)
//===----------------------------------------------------------------------===//

/// A 3-wise path-context: three terminals joined through their common
/// ancestor. The paper's family "contains n-wise paths, which do not
/// necessarily span between leaves"; this is its n = 3 instantiation over
/// consecutive leaf triples.
struct TriContext {
  ast::NodeId A = ast::InvalidNode;
  ast::NodeId B = ast::InvalidNode;
  ast::NodeId C = ast::InvalidNode;
  PathId Path = InvalidPath;
};

/// Renders the 3-wise path: the chain from \p A up to the common ancestor
/// of all three nodes, then the two downward branches to \p B and \p C:
/// "up-chain^M(_branchB)(_branchC)".
std::string triPathString(const ast::Tree &Tree, ast::NodeId A,
                          ast::NodeId B, ast::NodeId C, Abstraction Abst);

/// Extracts 3-wise contexts over consecutive terminal triples whose
/// extreme pair satisfies the length/width limits.
std::vector<TriContext> extractTriContexts(const ast::Tree &Tree,
                                           const ExtractionConfig &Config,
                                           PathTable &Table);

} // namespace paths
} // namespace pigeon

#endif // PIGEON_PATHS_PATHS_H
