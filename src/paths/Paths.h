//===- Paths.h - AST path extraction (the paper's core) ---------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: AST paths (§4). An AST-path of length
/// k is a sequence n1 d1 ... nk dk n(k+1) of nodes and up/down movements
/// (Def. 4.2); a path-context is ⟨x_s, p, x_f⟩ — the path plus the values
/// at its ends (Def. 4.3); an abstract path-context applies an abstraction
/// function α to the path (Def. 4.4).
///
/// This module implements:
///  * pairwise leafwise paths (between AST terminals),
///  * semi-paths (terminal → ancestor, §5 "Leafwise and semi-paths"),
///  * leaf → nonterminal paths for the full-type task (§5.3.3),
///  * the max_length / max_width hyper-parameters (§4.2, Fig. 5),
///  * the abstraction ladder of §5.6: full, no-arrows, forget-order,
///    first-top-last, first-last, top, no-path.
///
/// Representation: every abstracted path is a *packed* byte sequence (a
/// tag byte plus varint-coded node-kind symbols — see PathTag), interned
/// by byte equality into dense PathIds. The learners only ever consume
/// PathIds; the human-readable "A^P_B" string form is rendered lazily
/// from the packed bytes (renderPackedPath / PathTable::render) for
/// `pigeon explain`, table output and tests. Extraction therefore never
/// materializes a path string: packPath() writes into a reusable
/// PathScratch buffer and PathTable::intern() hashes the bytes directly.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_PATHS_PATHS_H
#define PIGEON_PATHS_PATHS_H

#include "ast/Ast.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pigeon {
namespace paths {

/// Abstraction functions α of §5.6, ordered from most to least expressive.
enum class Abstraction : uint8_t {
  Full,         ///< α_id: every node, with ↑/↓ arrows.
  NoArrows,     ///< Full encoding minus the movement arrows.
  ForgetOrder,  ///< Bag of nodes: sorted, no arrows.
  FirstTopLast, ///< First, pivot ("top") and last nodes only.
  FirstLast,    ///< First and last nodes only.
  Top,          ///< Pivot node only.
  NoPath,       ///< All relations equal ("bag of near identifiers").
};

/// \returns the §5.6 name of \p A ("full", "no-arrows", ...).
const char *abstractionName(Abstraction A);

/// All abstractions, in the order Fig. 12 plots them.
inline constexpr Abstraction AllAbstractions[] = {
    Abstraction::NoPath,      Abstraction::FirstLast,
    Abstraction::Top,         Abstraction::FirstTopLast,
    Abstraction::ForgetOrder, Abstraction::NoArrows,
    Abstraction::Full,
};

/// Extraction hyper-parameters (§4.2).
struct ExtractionConfig {
  /// Maximal number of edges in a path (the paper's max_length).
  int MaxLength = 7;
  /// Maximal sibling-index gap at the pivot node (the paper's max_width,
  /// Fig. 5).
  int MaxWidth = 3;
  Abstraction Abst = Abstraction::Full;
  /// Also emit semi-paths (terminal → ancestor). Semi-paths generalize
  /// across programs even when full leaf-to-leaf paths do not recur.
  bool IncludeSemiPaths = true;
};

/// Interned id of an abstracted (packed) path.
using PathId = uint32_t;
inline constexpr PathId InvalidPath = ~0u;

//===----------------------------------------------------------------------===//
// Packed path encoding
//===----------------------------------------------------------------------===//

/// First byte of every packed path. The payload after the tag is a
/// sequence of LEB128 varints over node-kind Symbol indices (counts where
/// noted). Encodings are chosen so that byte equality of two packed paths
/// coincides exactly with string equality of their legacy renderings —
/// the dedup classes (and hence PathId numbering) are unchanged:
///
///  * PairFull keeps an explicit up-count because "A^P_B" is positional;
///  * PairFlat drops direction entirely, because the space-joined
///    no-arrows string cannot distinguish where the pivot sits;
///  * Bag sorts symbols by id — two multisets of kinds are equal iff
///    their name-sorted renderings are equal;
///  * coarse tags (FirstTopLast/FirstLast/Top) are shared between
///    pairwise and 3-wise paths, which render identically;
///  * Raw carries an opaque string (the "rel"/"rel3" no-path markers,
///    n-gram baseline keys, and the 3-wise flat/bag forms whose legacy
///    strings re-tokenize node names and so have no faithful symbol
///    encoding).
enum class PathTag : uint8_t {
  Raw = 0,
  PairFull = 1,
  PairFlat = 2,
  Bag = 3,
  FirstTopLast = 4,
  FirstLast = 5,
  Top = 6,
  TriFull = 7,
};

/// Reusable scratch state for packed-path construction. One instance per
/// extraction loop: the buffers warm up after a few contexts, after which
/// packing a path performs zero heap allocations.
struct PathScratch {
  /// The packed path, overwritten by each packPath/packTriPath call.
  std::vector<uint8_t> Bytes;
  std::vector<Symbol> Ups, Downs;
  /// Reused for the Raw-encoded 3-wise flat/bag renderings.
  std::string Str;
};

/// Packs the abstracted path A → B into \p Scratch.Bytes (overwritten).
/// \p PivotHint, when valid, must be lca(A, B) and saves recomputing it.
void packPath(const ast::Tree &Tree, ast::NodeId A, ast::NodeId B,
              Abstraction Abst, PathScratch &Scratch,
              ast::NodeId PivotHint = ast::InvalidNode);

/// Packs the 3-wise path through the common ancestor of A, B, C into
/// \p Scratch.Bytes (overwritten).
void packTriPath(const ast::Tree &Tree, ast::NodeId A, ast::NodeId B,
                 ast::NodeId C, Abstraction Abst, PathScratch &Scratch);

/// Renders packed bytes to the legacy human-readable path string ("^" for
/// up-movements, "_" for down-movements — ASCII stand-ins for the paper's
/// ↑/↓). Malformed bytes render as "<bad-path>".
std::string renderPackedPath(std::span<const uint8_t> Packed,
                             const StringInterner &SI);

/// Rewrites \p Packed into \p Out with every symbol index mapped through
/// \p Map (Map[old index] = symbol in the target interner). Used when
/// merging paths across interner spaces, e.g. loading a contexts artifact
/// into a model bundle: byte equality only means path equality within one
/// symbol space. Bag payloads are re-sorted by the mapped ids so the
/// canonical form holds in the target space. Raw payloads copy verbatim.
/// \returns false on malformed bytes or an index outside \p Map.
bool remapPackedPath(std::span<const uint8_t> Packed,
                     const std::vector<Symbol> &Map,
                     std::vector<uint8_t> &Out);

/// Interns packed abstracted paths into dense PathIds by byte equality,
/// shared across all trees of one corpus so that identical paths in
/// different programs get the same id (which is what lets the models
/// generalize). Ids are dense from 1; id 0 is unused and InvalidPath is
/// the sentinel. Distinct path bytes live in an append-only arena, so a
/// lookup hit costs one hash of the scratch bytes and no allocation.
class PathTable {
public:
  /// Tag type selecting the delta-overlay constructor.
  struct DeltaTag {};
  static constexpr DeltaTag Delta{};

  /// Tag type selecting the frozen-view constructor.
  struct FrozenTag {};
  static constexpr FrozenTag Frozen{};

  /// Provisional-path marker: ids returned by a delta overlay for paths
  /// missing from its base carry this bit over the overlay-local id (see
  /// intern()). InvalidPath also has the bit set — always test for it
  /// first. absorb() maps local ids to final base ids.
  static constexpr PathId ProvisionalBit = 0x80000000u;

  /// External storage of a frozen-view table (an mmap'ed bundle section
  /// in practice; nothing is copied, the caller keeps the memory alive).
  /// Offsets[I] is the arena start of path id I+1, so id Id spans
  /// [Offsets[Id-1], Offsets[Id]). The stored index is open-addressed
  /// linear probing over stableHashBytes, slot value 0 = empty, any
  /// other value is the path id itself (ids start at 1).
  struct FrozenPaths {
    const uint8_t *Bytes = nullptr;    ///< Concatenated packed-path arena.
    const uint64_t *Offsets = nullptr; ///< NumPaths+1 entries, [0] == 0.
    const uint32_t *Slots = nullptr;   ///< Stored index, value = path id.
    uint64_t Mask = 0;                 ///< Slot count - 1 (power of two).
    uint32_t NumPaths = 0;             ///< Ids 1..NumPaths are frozen.
  };

  PathTable() : Paths(1) {}

  /// A delta overlay over \p Base: intern() hits resolve to Base's
  /// (final) ids, misses intern privately and come back provisional.
  /// \p Base must stay alive and frozen while the overlay is used — the
  /// sharded extraction stages uphold this by only writing the shared
  /// table outside parallel regions.
  PathTable(DeltaTag, const PathTable &Base) : PathTable() {
    this->Base = &Base;
  }

  /// A frozen-view table over \p View: ids 1..NumPaths serve their bytes
  /// straight from the external arena, lookups probe the stored index
  /// (no re-interning at load), and novel paths still intern locally
  /// with ids continuing after the frozen range — exactly the ids a
  /// stream-loaded table would assign.
  PathTable(FrozenTag, const FrozenPaths &View) : PathTable() {
    FV = View;
  }

  PathTable(PathTable &&) = default;
  PathTable &operator=(PathTable &&) = default;

  /// Interns \p Packed (tag byte + payload), returning its id. Idempotent.
  /// On a delta overlay the result is the base's id when the bytes are
  /// already interned there, and a provisional id otherwise.
  PathId intern(std::span<const uint8_t> Packed) {
    if (Base) {
      if (PathId Final = Base->lookup(Packed); Final != InvalidPath)
        return Final;
      return ProvisionalBit | internLocal(Packed);
    }
    return internLocal(Packed);
  }

  /// \returns the id of \p Packed if interned in this table (base paths
  /// only — provisional overlay entries are private), InvalidPath
  /// otherwise. Read-only: safe concurrently with other readers.
  PathId lookup(std::span<const uint8_t> Packed) const {
    if (PathId Id = findFrozen(Packed))
      return Id;
    auto It = Index.find(viewOf(Packed));
    return It == Index.end() ? InvalidPath : It->second;
  }

  /// Interns an opaque path string (Raw encoding). Used by the n-gram
  /// baseline and tests; equivalent packed bytes produced elsewhere
  /// dedup against it.
  PathId internString(std::string_view Str);

  /// The packed bytes of \p Id. Valid for the table's lifetime. On a
  /// delta overlay, provisional ids resolve against the overlay's private
  /// arena and final ids against the base; on a frozen view, frozen ids
  /// resolve against the external arena.
  std::span<const uint8_t> bytes(PathId Id) const {
    if (Base && !(Id & ProvisionalBit))
      return Base->bytes(Id);
    Id &= ~ProvisionalBit;
    if (Id >= 1 && Id <= FV.NumPaths)
      return std::span<const uint8_t>(FV.Bytes + FV.Offsets[Id - 1],
                                      FV.Offsets[Id] - FV.Offsets[Id - 1]);
    Id -= FV.NumPaths;
    assert(Id >= 1 && Id < Paths.size() && "path from another table?");
    return Paths[Id];
  }

  /// Renders \p Id to the legacy path string (lazy; not on any hot path).
  std::string render(PathId Id, const StringInterner &SI) const {
    return renderPackedPath(bytes(Id), SI);
  }

  /// Number of distinct paths (§5.6 reports model size through this).
  /// On a delta overlay this counts only overlay-local (novel) paths.
  size_t size() const { return FV.NumPaths + Paths.size() - 1; }

  /// Number of frozen (arena-backed) paths of a frozen view, 0 otherwise.
  uint32_t frozenCount() const { return FV.NumPaths; }

  /// Interns every locally-stored path of \p Shard, in shard-local id
  /// order, and returns the remap shard-id → this-table-id (index 0 is
  /// unused). Merging is byte-wise — no per-path string materialization.
  /// For a delta overlay shard only the *novel* paths are local, so the
  /// merge cost is proportional to new-path discovery, not to extraction
  /// volume. Absorbing contiguous shard overlays in shard order
  /// reproduces the exact ids a serial extraction over the same files
  /// would have assigned — the determinism contract of the parallel
  /// extraction stage.
  std::vector<PathId> absorb(const PathTable &Shard);

private:
  PathId internLocal(std::span<const uint8_t> Packed) {
    if (PathId Id = findFrozen(Packed))
      return Id;
    std::string_view Key = viewOf(Packed);
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    std::span<const uint8_t> Stored = store(Packed);
    PathId Id = FV.NumPaths + static_cast<PathId>(Paths.size());
    Paths.push_back(Stored);
    Index.emplace(viewOf(Stored), Id);
    return Id;
  }

  /// Probes the stored frozen index (see FrozenPaths). \returns the
  /// frozen id, 0 on a miss or when there is no frozen view. Implemented
  /// in Paths.cpp (needs the stable hash).
  PathId findFrozen(std::span<const uint8_t> Packed) const;
  static std::string_view viewOf(std::span<const uint8_t> Bytes) {
    return Bytes.empty()
               ? std::string_view()
               : std::string_view(
                     reinterpret_cast<const char *>(Bytes.data()),
                     Bytes.size());
  }

  /// Copies \p Packed into the arena, returning the stable stored span.
  std::span<const uint8_t> store(std::span<const uint8_t> Packed);

  /// Frozen base table of a delta overlay; nullptr for a root table.
  const PathTable *Base = nullptr;
  /// External arena of a frozen-view table (NumPaths == 0 otherwise).
  FrozenPaths FV;
  // Append-only chunked arena: blocks never move, so spans and the
  // string_view index keys stay valid for the table's lifetime.
  std::vector<std::unique_ptr<uint8_t[]>> Blocks;
  size_t BlockCap = 0;
  size_t BlockUsed = 0;
  /// Packed bytes per id; entry 0 is the unused reserved slot.
  std::vector<std::span<const uint8_t>> Paths;
  std::unordered_map<std::string_view, PathId> Index;
};

/// One extracted path-context: the path and its two end nodes. Ends are
/// terminals for leafwise paths; End is an ancestor nonterminal for
/// semi-paths and a target expression node for type-task paths.
struct PathContext {
  ast::NodeId Start = ast::InvalidNode;
  ast::NodeId End = ast::InvalidNode;
  PathId Path = InvalidPath;
  /// True if this is a semi-path (End is an ancestor of Start).
  bool Semi = false;
};

/// Geometric shape of the path between two nodes.
struct PathShape {
  int Length = 0;        ///< Number of edges.
  int Width = 0;         ///< Sibling-index gap at the pivot (0 for chains).
  ast::NodeId Pivot = ast::InvalidNode; ///< The LCA ("top" node).
};

/// Computes length/width/pivot for the path between \p A and \p B.
PathShape pathShape(const ast::Tree &Tree, ast::NodeId A, ast::NodeId B);

/// Renders the abstracted path between \p A and \p B (pack + render; use
/// packPath/renderPackedPath separately on hot paths).
std::string pathString(const ast::Tree &Tree, ast::NodeId A, ast::NodeId B,
                       Abstraction Abst);

/// \returns the value of a path-context end: the terminal's value, or the
/// node kind for nonterminal ends.
Symbol endValue(const ast::Tree &Tree, ast::NodeId Node);

/// Extracts all leafwise path-contexts (and semi-paths if configured)
/// of \p Tree that satisfy the length/width limits. Paths are packed
/// under the configured abstraction and interned into \p Table.
std::vector<PathContext> extractPathContexts(const ast::Tree &Tree,
                                             const ExtractionConfig &Config,
                                             PathTable &Table);

/// Extracts paths from terminals to a specific target node (used by the
/// full-type task, where the prediction target is an expression
/// nonterminal). Only terminals within the length/width limits contribute.
std::vector<PathContext> extractPathsToNode(const ast::Tree &Tree,
                                            ast::NodeId Target,
                                            const ExtractionConfig &Config,
                                            PathTable &Table);

//===----------------------------------------------------------------------===//
// n-wise paths (§4's generalization beyond pairwise)
//===----------------------------------------------------------------------===//

/// A 3-wise path-context: three terminals joined through their common
/// ancestor. The paper's family "contains n-wise paths, which do not
/// necessarily span between leaves"; this is its n = 3 instantiation over
/// consecutive leaf triples.
struct TriContext {
  ast::NodeId A = ast::InvalidNode;
  ast::NodeId B = ast::InvalidNode;
  ast::NodeId C = ast::InvalidNode;
  PathId Path = InvalidPath;
};

/// Renders the 3-wise path: the chain from \p A up to the common ancestor
/// of all three nodes, then the two downward branches to \p B and \p C:
/// "up-chain^M(_branchB)(_branchC)". (pack + render, like pathString.)
std::string triPathString(const ast::Tree &Tree, ast::NodeId A,
                          ast::NodeId B, ast::NodeId C, Abstraction Abst);

/// Extracts 3-wise contexts over consecutive terminal triples whose
/// extreme pair satisfies the length/width limits.
std::vector<TriContext> extractTriContexts(const ast::Tree &Tree,
                                           const ExtractionConfig &Config,
                                           PathTable &Table);

} // namespace paths
} // namespace pigeon

#endif // PIGEON_PATHS_PATHS_H
