//===- Ast.cpp - Generic abstract syntax tree ------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

#include <algorithm>

using namespace pigeon;
using namespace pigeon::ast;

const char *ast::elementKindName(ElementKind Kind) {
  switch (Kind) {
  case ElementKind::LocalVar:
    return "local";
  case ElementKind::Parameter:
    return "param";
  case ElementKind::Method:
    return "method";
  case ElementKind::Field:
    return "field";
  case ElementKind::Class:
    return "class";
  case ElementKind::Property:
    return "property";
  case ElementKind::Literal:
    return "literal";
  case ElementKind::Unknown:
    return "unknown";
  }
  return "invalid";
}

std::vector<NodeId> Tree::typedNodes() const {
  std::vector<NodeId> Ids;
  Ids.reserve(Types.size());
  for (const auto &[Id, Type] : Types)
    Ids.push_back(Id);
  std::sort(Ids.begin(), Ids.end());
  return Ids;
}

NodeId Tree::lca(NodeId A, NodeId B) const {
  assert(A < Nodes.size() && B < Nodes.size() && "node id out of range");
  while (Nodes[A].Depth > Nodes[B].Depth)
    A = Nodes[A].Parent;
  while (Nodes[B].Depth > Nodes[A].Depth)
    B = Nodes[B].Parent;
  while (A != B) {
    A = Nodes[A].Parent;
    B = Nodes[B].Parent;
  }
  return A;
}

void Tree::remapSymbols(const std::vector<uint32_t> &Map,
                        StringInterner &NewInterner) {
  assert(!Map.empty() && Map[0] == 0 && "invalid symbol must map to itself");
  auto Remap = [&](Symbol S) {
    assert(S.index() < Map.size() && "symbol outside the remap table");
    return Symbol::fromIndex(Map[S.index()]);
  };
  for (Node &N : Nodes) {
    N.Kind = Remap(N.Kind);
    N.Value = Remap(N.Value);
  }
  for (ElementInfo &E : Elements)
    E.Name = Remap(E.Name);
  for (auto &[Id, Type] : Types)
    Type = Remap(Type);
  Interner = &NewInterner;
}

void Tree::remapProvisional(const std::vector<uint32_t> &Map,
                            StringInterner &NewInterner) {
  constexpr uint32_t Bit = StringInterner::ProvisionalBit;
  auto Remap = [&](Symbol S) {
    uint32_t Id = S.index();
    if (!(Id & Bit))
      return S; // Resolved against the overlay's base: already final.
    assert((Id & ~Bit) < Map.size() && "symbol outside the remap table");
    return Symbol::fromIndex(Map[Id & ~Bit]);
  };
  for (Node &N : Nodes) {
    N.Kind = Remap(N.Kind);
    N.Value = Remap(N.Value);
  }
  for (ElementInfo &E : Elements)
    E.Name = Remap(E.Name);
  for (auto &[Id, Type] : Types)
    Type = Remap(Type);
  Interner = &NewInterner;
}

std::string Tree::dump() const {
  std::string Out;
  // Preorder ids mean a simple scan prints the tree correctly with depth
  // indentation.
  for (NodeId Id = 0; Id < Nodes.size(); ++Id) {
    const Node &N = Nodes[Id];
    Out.append(2 * N.Depth, ' ');
    Out += Interner->str(N.Kind);
    if (N.Value.isValid()) {
      Out += ": ";
      Out += Interner->str(N.Value);
    }
    Out += '\n';
  }
  return Out;
}

void Tree::sexprNode(NodeId Id, std::string &Out) const {
  const Node &N = Nodes[Id];
  if (N.isTerminal()) {
    Out += '(';
    Out += Interner->str(N.Kind);
    Out += ' ';
    Out += Interner->str(N.Value);
    Out += ')';
    return;
  }
  Out += '(';
  Out += Interner->str(N.Kind);
  for (NodeId Child : children(Id)) {
    Out += ' ';
    sexprNode(Child, Out);
  }
  Out += ')';
}

std::string Tree::sexpr() const {
  std::string Out;
  sexprNode(root(), Out);
  return Out;
}

NodeId TreeBuilder::begin(Symbol Kind) {
  assert(Kind.isValid() && "nonterminal needs a kind");
  NodeId Id = static_cast<NodeId>(Protos.size());
  Protos.push_back({Kind, Symbol(), InvalidElement, {}});
  if (!Stack.empty())
    Protos[Stack.back()].Children.push_back(Id);
  else
    assert(Id == 0 && "a tree has exactly one root");
  Stack.push_back(Id);
  return Id;
}

void TreeBuilder::end() {
  assert(!Stack.empty() && "end() without begin()");
  Stack.pop_back();
}

NodeId TreeBuilder::terminal(Symbol Kind, Symbol Value, ElementId Element) {
  assert(!Stack.empty() && "terminal outside any nonterminal");
  assert(Kind.isValid() && Value.isValid() && "terminal needs kind + value");
  assert((Element == InvalidElement || Element < Elements.size()) &&
         "unregistered element");
  NodeId Id = static_cast<NodeId>(Protos.size());
  Protos.push_back({Kind, Value, Element, {}});
  Protos[Stack.back()].Children.push_back(Id);
  return Id;
}

ElementId TreeBuilder::addElement(Symbol Name, ElementKind Kind,
                                  bool Predictable) {
  ElementId Id = static_cast<ElementId>(Elements.size());
  Elements.push_back({Name, Kind, Predictable});
  return Id;
}

Tree TreeBuilder::finish() && {
  assert(Stack.empty() && "unbalanced begin()/end()");
  assert(!Protos.empty() && "empty tree");

  Tree T;
  T.Interner = Interner;
  T.Nodes.resize(Protos.size());
  T.Elements = std::move(Elements);
  T.OccRanges.resize(T.Elements.size());

  // First pass: flatten child lists; count element occurrences.
  std::vector<uint32_t> OccCounts(T.Elements.size(), 0);
  for (NodeId Id = 0; Id < Protos.size(); ++Id) {
    Proto &P = Protos[Id];
    Node &N = T.Nodes[Id];
    N.Kind = P.Kind;
    N.Value = P.Value;
    N.Element = P.Element;
    N.FirstChild = static_cast<uint32_t>(T.ChildStorage.size());
    N.NumChildren = static_cast<uint32_t>(P.Children.size());
    T.ChildStorage.insert(T.ChildStorage.end(), P.Children.begin(),
                          P.Children.end());
    if (P.Element != InvalidElement)
      ++OccCounts[P.Element];
  }

  // Second pass: parent links, depths, child indices. Preorder ids
  // guarantee parents precede children.
  for (NodeId Id = 0; Id < T.Nodes.size(); ++Id) {
    const Node &N = T.Nodes[Id];
    for (uint32_t I = 0; I < N.NumChildren; ++I) {
      NodeId Child = T.ChildStorage[N.FirstChild + I];
      assert(Child > Id && "children must follow parents in preorder");
      T.Nodes[Child].Parent = Id;
      T.Nodes[Child].IndexInParent = I;
      T.Nodes[Child].Depth = N.Depth + 1;
    }
  }

  // Occurrence ranges.
  uint32_t Offset = 0;
  for (size_t E = 0; E < T.Elements.size(); ++E) {
    T.OccRanges[E].First = Offset;
    Offset += OccCounts[E];
  }
  T.OccStorage.resize(Offset);
  std::vector<uint32_t> Fill(T.Elements.size(), 0);
  for (NodeId Id = 0; Id < T.Nodes.size(); ++Id) {
    const Node &N = T.Nodes[Id];
    if (N.isTerminal())
      T.Terminals.push_back(Id);
    if (N.Element == InvalidElement)
      continue;
    Tree::OccRange &R = T.OccRanges[N.Element];
    T.OccStorage[R.First + Fill[N.Element]++] = Id;
    ++R.Count;
  }
  return T;
}
