//===- Ast.h - Generic abstract syntax tree ---------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's generic AST (Definition 4.1): a tuple ⟨N, T, X, s, δ, val⟩
/// of nonterminals, terminals, terminal values, a root, a children map and
/// a value map. Every language frontend lowers into this representation;
/// path extraction, the learners and the baselines only ever see this tree.
///
/// Beyond Def. 4.1 the tree carries two annotations the tasks need:
///   * program-element identity: terminals that are occurrences of the same
///     element (e.g. the two uses of variable `d`) share an ElementId, and
///     elements are marked predictable (unknown names the model must infer)
///     or known (given context);
///   * optional per-node type labels, filled by the Java type checker and
///     consumed by the full-type prediction task.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_AST_AST_H
#define PIGEON_AST_AST_H

#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pigeon {
namespace ast {

/// Dense node handle within one Tree. Node 0 is always the root.
using NodeId = uint32_t;
inline constexpr NodeId InvalidNode = ~0u;

/// Dense handle for a program element (a named entity whose occurrences
/// are linked across the tree).
using ElementId = uint32_t;
inline constexpr ElementId InvalidElement = ~0u;

/// What kind of program entity an element is. Used by tasks to select
/// which elements to predict (e.g. variable naming predicts locals and
/// parameters; method naming predicts methods).
enum class ElementKind : uint8_t {
  LocalVar,
  Parameter,
  Method,
  Field,
  Class,
  Property, // C# property.
  Literal,  // Constants; never predicted, always known context.
  Unknown,
};

/// \returns a human-readable name for \p Kind.
const char *elementKindName(ElementKind Kind);

/// Metadata for one program element.
struct ElementInfo {
  /// The element's (ground-truth) name.
  Symbol Name;
  ElementKind Kind = ElementKind::Unknown;
  /// True if a prediction task may be asked to infer this element's name.
  bool Predictable = false;
};

/// One node of the tree. Terminals have a valid Value and no children.
struct Node {
  /// Node kind label (e.g. "While", "Assign=", "SymbolRef").
  Symbol Kind;
  /// Terminal value; invalid for nonterminals.
  Symbol Value;
  NodeId Parent = InvalidNode;
  /// Position of this node in its parent's child list.
  uint32_t IndexInParent = 0;
  /// Offset into Tree's child storage.
  uint32_t FirstChild = 0;
  uint32_t NumChildren = 0;
  /// Distance from the root (root has depth 0).
  uint32_t Depth = 0;
  /// Program element this terminal refers to, if any.
  ElementId Element = InvalidElement;

  bool isTerminal() const { return NumChildren == 0 && Value.isValid(); }
};

/// An immutable AST. Construct via TreeBuilder.
class Tree {
public:
  /// \returns the interner holding all kind/value/name symbols of this tree.
  StringInterner &interner() const { return *Interner; }

  NodeId root() const { return 0; }
  size_t size() const { return Nodes.size(); }

  const Node &node(NodeId Id) const {
    assert(Id < Nodes.size() && "node id out of range");
    return Nodes[Id];
  }

  /// Children of \p Id in order.
  std::span<const NodeId> children(NodeId Id) const {
    const Node &N = node(Id);
    return {ChildStorage.data() + N.FirstChild, N.NumChildren};
  }

  /// All terminal nodes in source (left-to-right) order.
  const std::vector<NodeId> &terminals() const { return Terminals; }

  /// Registered program elements.
  const std::vector<ElementInfo> &elements() const { return Elements; }

  const ElementInfo &element(ElementId Id) const {
    assert(Id < Elements.size() && "element id out of range");
    return Elements[Id];
  }

  /// All terminal occurrences of element \p Id, in source order.
  std::span<const NodeId> occurrences(ElementId Id) const {
    assert(Id < Elements.size() && "element id out of range");
    const OccRange &R = OccRanges[Id];
    return {OccStorage.data() + R.First, R.Count};
  }

  /// \returns the ground-truth type label attached to \p Id, or an invalid
  /// symbol if none. Filled by the Java type checker.
  Symbol typeOf(NodeId Id) const {
    auto It = Types.find(Id);
    return It == Types.end() ? Symbol() : It->second;
  }

  /// Nodes that carry a type label, in id order.
  std::vector<NodeId> typedNodes() const;

  /// Attaches a ground-truth type label to \p Id.
  void setType(NodeId Id, Symbol Type) {
    assert(Id < Nodes.size() && "node id out of range");
    Types[Id] = Type;
  }

  /// Lowest common ancestor of \p A and \p B.
  NodeId lca(NodeId A, NodeId B) const;

  /// Rewrites every symbol of this tree (node kinds and values, element
  /// names, type labels) through \p Map — old symbol index → new symbol
  /// index — and repoints the tree at \p NewInterner. Map[0] must be 0
  /// (the reserved invalid symbol). This is the merge step of the sharded
  /// corpus parse: trees built against a shard-local interner are remapped
  /// onto the merged corpus interner (see core::parseCorpus).
  void remapSymbols(const std::vector<uint32_t> &Map,
                    StringInterner &NewInterner);

  /// Rewrites only *provisional* symbols (StringInterner::ProvisionalBit
  /// set — produced by parsing against a delta overlay) through \p Map —
  /// overlay-local index → final index in \p NewInterner — and repoints
  /// the tree at \p NewInterner. Symbols that resolved against the
  /// overlay's base are already final and pass through untouched. This is
  /// the merge step of the shared-interner sharded parse: cost is
  /// proportional to the shard's *novel* symbols, not to the corpus
  /// vocabulary (see core::parseCorpus).
  void remapProvisional(const std::vector<uint32_t> &Map,
                        StringInterner &NewInterner);

  /// Pretty-prints the tree (one node per line, indented) for debugging.
  std::string dump() const;

  /// Renders the tree as a compact s-expression, e.g.
  /// `(While (UnaryPrefix! (SymbolRef d)) ...)`. Used heavily in tests.
  std::string sexpr() const;

private:
  friend class TreeBuilder;
  Tree() = default;

  struct OccRange {
    uint32_t First = 0;
    uint32_t Count = 0;
  };

  StringInterner *Interner = nullptr;
  std::vector<Node> Nodes;
  std::vector<NodeId> ChildStorage;
  std::vector<NodeId> Terminals;
  std::vector<ElementInfo> Elements;
  std::vector<OccRange> OccRanges;
  std::vector<NodeId> OccStorage;
  std::unordered_map<NodeId, Symbol> Types;

  void sexprNode(NodeId Id, std::string &Out) const;
};

/// Incremental construction of a Tree in preorder:
/// \code
///   TreeBuilder B(Interner);
///   B.begin("While");
///   B.begin("UnaryPrefix!");
///   B.terminal("SymbolRef", "d");
///   B.end();
///   ...
///   B.end();
///   Tree T = std::move(B).finish();
/// \endcode
class TreeBuilder {
public:
  explicit TreeBuilder(StringInterner &Interner) : Interner(&Interner) {}

  /// Opens a nonterminal with kind \p Kind; must be matched by end().
  NodeId begin(Symbol Kind);
  NodeId begin(std::string_view Kind) { return begin(Interner->intern(Kind)); }

  /// Closes the innermost open nonterminal.
  void end();

  /// Adds a terminal with the given kind and value under the innermost open
  /// nonterminal. \returns its node id (stable into the finished tree).
  NodeId terminal(Symbol Kind, Symbol Value,
                  ElementId Element = InvalidElement);
  NodeId terminal(std::string_view Kind, std::string_view Value,
                  ElementId Element = InvalidElement) {
    return terminal(Interner->intern(Kind), Interner->intern(Value), Element);
  }

  /// Registers a program element; occurrences are linked by passing the
  /// returned id to terminal().
  ElementId addElement(Symbol Name, ElementKind Kind, bool Predictable);
  ElementId addElement(std::string_view Name, ElementKind Kind,
                       bool Predictable) {
    return addElement(Interner->intern(Name), Kind, Predictable);
  }

  /// Number of elements registered so far.
  size_t numElements() const { return Elements.size(); }

  /// True while at least one nonterminal is open.
  bool insideNode() const { return !Stack.empty(); }

  /// Finalizes and returns the tree. The builder must be balanced (every
  /// begin() matched by an end()) and nonempty.
  Tree finish() &&;

private:
  struct Proto {
    Symbol Kind;
    Symbol Value;
    ElementId Element = InvalidElement;
    std::vector<NodeId> Children;
  };

  StringInterner *Interner;
  std::vector<Proto> Protos;
  std::vector<NodeId> Stack;
  std::vector<ElementInfo> Elements;
};

} // namespace ast
} // namespace pigeon

#endif // PIGEON_AST_AST_H
