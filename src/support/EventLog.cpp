//===- EventLog.cpp - Structured JSONL event stream --------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include "support/Telemetry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/time.h>
#include <unistd.h>
#endif

using namespace pigeon;
using namespace pigeon::telemetry;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::string telemetry::jsonString(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  return Out;
}

std::string telemetry::jsonNumber(double X) {
  if (!std::isfinite(X))
    return "null";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.12g", X);
  return Buf;
}

namespace {

/// VmHWM from /proc/self/status, in KiB; 0 when unavailable. Fallback
/// for containers/sandboxes where getrusage() reports ru_maxrss as 0.
uint64_t procStatusHwmKb() {
#if defined(__linux__)
  std::ifstream Status("/proc/self/status");
  std::string Line;
  while (std::getline(Status, Line))
    if (Line.rfind("VmHWM:", 0) == 0)
      return static_cast<uint64_t>(
          std::strtoull(Line.c_str() + 6, nullptr, 10));
#endif
  return 0;
}

} // namespace

uint64_t telemetry::peakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return procStatusHwmKb();
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<uint64_t>(Usage.ru_maxrss) / 1024;
#else
  uint64_t Kb = static_cast<uint64_t>(Usage.ru_maxrss);
  return Kb > 0 ? Kb : procStatusHwmKb();
#endif
#else
  return 0;
#endif
}

uint64_t telemetry::currentRssKb() {
#if defined(__linux__)
  std::ifstream Status("/proc/self/status");
  std::string Line;
  while (std::getline(Status, Line))
    if (Line.rfind("VmRSS:", 0) == 0)
      return static_cast<uint64_t>(
          std::strtoull(Line.c_str() + 6, nullptr, 10));
#endif
  return 0;
}

double telemetry::threadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec Ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts) != 0)
    return -1.0;
  return static_cast<double>(Ts.tv_sec) +
         static_cast<double>(Ts.tv_nsec) * 1e-9;
#else
  return -1.0;
#endif
}

double telemetry::processCpuSeconds() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0.0;
  auto Secs = [](const struct timeval &Tv) {
    return static_cast<double>(Tv.tv_sec) +
           static_cast<double>(Tv.tv_usec) * 1e-6;
  };
  return Secs(Usage.ru_utime) + Secs(Usage.ru_stime);
#else
  return 0.0;
#endif
}

namespace {

/// Small sequential per-OS-thread id, assigned on first use. The main
/// thread gets 0 when it emits first, which it does in practice (the
/// stream.begin record).
uint64_t threadId() {
  static std::atomic<uint64_t> NextTid{0};
  thread_local uint64_t Tid = NextTid.fetch_add(1);
  return Tid;
}

} // namespace

//===----------------------------------------------------------------------===//
// EventLog
//===----------------------------------------------------------------------===//

EventLog &EventLog::global() {
  static EventLog Instance;
  return Instance;
}

bool EventLog::open(const std::string &OpenPath) {
  close();
  auto File = std::make_unique<std::ofstream>(OpenPath, std::ios::binary);
  if (!*File)
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  OwnedFile = std::move(File);
  Out = OwnedFile.get();
  Path = OpenPath;
  Epoch = Clock::now();
  Records.store(0);
  SegmentBytes = 0;
  SegmentIdx = 0;
  Enabled.store(true, std::memory_order_release);
  beginStreamLocked();
  return true;
}

void EventLog::attach(std::ostream &OS) {
  close();
  std::lock_guard<std::mutex> Lock(Mutex);
  OwnedFile.reset();
  Out = &OS;
  Path.clear();
  Epoch = Clock::now();
  Records.store(0);
  SegmentBytes = 0;
  SegmentIdx = 0;
  Enabled.store(true, std::memory_order_release);
  beginStreamLocked();
}

void EventLog::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Enabled.load(std::memory_order_acquire))
    return;
  endStreamLocked();
  Enabled.store(false, std::memory_order_release);
  Out->flush();
  Out = nullptr;
  OwnedFile.reset();
  Path.clear();
}

void EventLog::flush() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Enabled.load(std::memory_order_acquire) || !Out)
    return;
  Out->flush();
}

void EventLog::setRotation(uint64_t MaxBytes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  RotateBytes = MaxBytes;
}

uint64_t EventLog::segmentIndex() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return SegmentIdx;
}

void EventLog::enableRing(size_t Capacity) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Ring.clear();
  RingCap = Capacity;
  RingCount = 0;
  RingOn.store(Capacity > 0, std::memory_order_release);
}

void EventLog::disableRing() {
  std::lock_guard<std::mutex> Lock(Mutex);
  RingOn.store(false, std::memory_order_release);
  Ring.clear();
  RingCap = 0;
  RingCount = 0;
}

size_t EventLog::ringCapacity() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return RingCap;
}

uint64_t EventLog::ringTotal() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return RingCount;
}

std::vector<std::string> EventLog::ringSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Lines;
  Lines.reserve(Ring.size());
  // Ring[RingCount % RingCap] is the next overwrite target, i.e. the
  // oldest retained record once the ring has wrapped.
  size_t Start = RingCount > Ring.size() ? RingCount % RingCap : 0;
  for (size_t I = 0; I < Ring.size(); ++I)
    Lines.push_back(Ring[(Start + I) % Ring.size()]);
  return Lines;
}

bool EventLog::dumpRing(const std::string &DumpPath) const {
  std::vector<std::string> Lines = ringSnapshot();
  if (Lines.empty())
    return false;
  std::string Body;
  for (const std::string &Line : Lines) {
    Body += Line;
    Body += '\n';
  }
  return writeFileAtomic(DumpPath, Body);
}

void EventLog::beginStreamLocked() {
  writeLineLocked("stream.begin",
                  {{"schema", jsonString("pigeon.events.v1")},
                   {"pid", std::to_string(
#if defined(__unix__) || defined(__APPLE__)
                               static_cast<long>(getpid())
#else
                               0L
#endif
                                   )},
                   {"segment", std::to_string(SegmentIdx)}});
  // `records` in the trailer counts the payload lines between the two
  // frame records; the stream.begin line itself is not payload.
  Records.store(0, std::memory_order_relaxed);
}

void EventLog::rotateLocked() {
  endStreamLocked();
  OwnedFile->flush();
  OwnedFile.reset();
  Out = nullptr;
  // One previous segment is retained, so the stream's disk footprint is
  // bounded by roughly two caps regardless of uptime.
  std::string Prev = Path + ".1";
  std::remove(Prev.c_str());
  std::rename(Path.c_str(), Prev.c_str());
  auto File = std::make_unique<std::ofstream>(Path, std::ios::binary);
  if (!*File) {
    // Can't reopen (disk gone?): stream side goes quiet, the ring (if
    // enabled) keeps recording.
    Enabled.store(false, std::memory_order_release);
    return;
  }
  OwnedFile = std::move(File);
  Out = OwnedFile.get();
  SegmentBytes = 0;
  ++SegmentIdx;
  beginStreamLocked();
}

void EventLog::endStreamLocked() {
  // Emit the trailer directly: writeLine would re-take the mutex.
  char Ts[32];
  std::snprintf(Ts, sizeof(Ts), "%.6f",
                std::chrono::duration<double>(Clock::now() - Epoch).count());
  *Out << "{\"event\":\"stream.end\",\"ts\":" << Ts
       << ",\"tid\":" << threadId()
       << ",\"records\":" << Records.load(std::memory_order_relaxed)
       << ",\"cpu\":" << jsonNumber(processCpuSeconds())
       << ",\"rss_kb\":" << peakRssKb() << "}\n";
}

void EventLog::writeLine(std::string_view Event,
                         const std::vector<EventField> &Fields) {
  std::lock_guard<std::mutex> Lock(Mutex);
  writeLineLocked(Event, Fields);
}

void EventLog::writeLineLocked(std::string_view Event,
                               const std::vector<EventField> &Fields) {
  bool StreamOn = Enabled.load(std::memory_order_acquire) && Out;
  bool ToRing = RingOn.load(std::memory_order_acquire);
  if (!StreamOn && !ToRing)
    return;
  char Ts[32];
  std::snprintf(Ts, sizeof(Ts), "%.6f",
                std::chrono::duration<double>(Clock::now() - Epoch).count());
  std::string Line;
  Line.reserve(64 + Fields.size() * 24);
  Line += "{\"event\":\"";
  Line += jsonEscape(Event);
  Line += "\",\"ts\":";
  Line += Ts;
  Line += ",\"tid\":";
  Line += std::to_string(threadId());
  for (const EventField &F : Fields) {
    Line += ",\"";
    Line += jsonEscape(F.Key);
    Line += "\":";
    Line += F.Json;
  }
  Line += '}';
  if (StreamOn) {
    *Out << Line << '\n';
    Records.fetch_add(1, std::memory_order_relaxed);
    SegmentBytes += Line.size() + 1;
    if (OwnedFile && RotateBytes && SegmentBytes >= RotateBytes)
      rotateLocked();
  }
  if (ToRing) {
    if (Ring.size() < RingCap)
      Ring.push_back(std::move(Line));
    else
      Ring[RingCount % RingCap] = std::move(Line);
    ++RingCount;
  }
}

void EventLog::spanBegin(uint64_t Id, uint64_t Parent, std::string_view Name,
                         const std::vector<EventField> &Extra) {
  if (!enabled())
    return;
  std::vector<EventField> Fields;
  Fields.reserve(Extra.size() + 3);
  Fields.push_back({"span", std::to_string(Id)});
  Fields.push_back({"parent", std::to_string(Parent)});
  Fields.push_back({"name", jsonString(Name)});
  Fields.insert(Fields.end(), Extra.begin(), Extra.end());
  writeLine("span.begin", Fields);
}

void EventLog::spanEnd(uint64_t Id, uint64_t Parent, std::string_view Name,
                       double Wall, double Cpu,
                       const std::vector<EventField> &Extra) {
  if (!enabled())
    return;
  std::vector<EventField> Fields;
  Fields.reserve(Extra.size() + 6);
  Fields.push_back({"span", std::to_string(Id)});
  Fields.push_back({"parent", std::to_string(Parent)});
  Fields.push_back({"name", jsonString(Name)});
  Fields.push_back({"wall", jsonNumber(Wall)});
  if (Cpu >= 0)
    Fields.push_back({"cpu", jsonNumber(Cpu)});
  Fields.push_back({"rss_kb", std::to_string(peakRssKb())});
  Fields.insert(Fields.end(), Extra.begin(), Extra.end());
  writeLine("span.end", Fields);
}

void EventLog::record(std::string_view Event,
                      const std::vector<EventField> &Fields) {
  if (!enabled())
    return;
  writeLine(Event, Fields);
}
