//===- StringInterner.h - Symbol table for interned strings ----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense 32-bit \c Symbol handles. Symbols are the
/// currency of the whole system: AST node kinds, terminal values, names,
/// labels and path components are all symbols, so equality and hashing are
/// O(1) everywhere downstream.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_STRINGINTERNER_H
#define PIGEON_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pigeon {

/// A handle to an interned string. Symbols from the same interner compare
/// equal iff their strings are equal. Value 0 is reserved for the empty
/// invalid symbol.
class Symbol {
public:
  Symbol() = default;

  /// \returns true if this symbol refers to an interned string.
  bool isValid() const { return Id != 0; }

  /// Raw dense index, usable as an array key. Index 0 is the invalid symbol.
  uint32_t index() const { return Id; }

  /// Rebuilds a symbol from a raw index previously obtained via index().
  static Symbol fromIndex(uint32_t Index) { return Symbol(Index); }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  explicit Symbol(uint32_t Id) : Id(Id) {}
  friend class StringInterner;

  uint32_t Id = 0;
};

/// Bidirectional map between strings and dense Symbol ids.
///
/// Not thread-safe; each pipeline owns one interner (or a few, e.g. one for
/// AST vocabulary and one for model labels).
class StringInterner {
public:
  StringInterner() {
    // Reserve id 0 so that a default-constructed Symbol is never returned.
    Strings.emplace_back("");
  }

  /// Interns \p Str, returning its symbol. Idempotent.
  Symbol intern(std::string_view Str) {
    auto It = Index.find(Str);
    if (It != Index.end())
      return Symbol(It->second);
    uint32_t Id = static_cast<uint32_t>(Strings.size());
    Strings.emplace_back(Str);
    // string_view key must point into our stable storage, not the caller's.
    Index.emplace(Strings.back(), Id);
    return Symbol(Id);
  }

  /// \returns the symbol for \p Str if already interned, invalid otherwise.
  Symbol lookup(std::string_view Str) const {
    auto It = Index.find(Str);
    if (It == Index.end())
      return Symbol();
    return Symbol(It->second);
  }

  /// \returns the string for \p Sym. The reference stays valid for the
  /// lifetime of the interner.
  const std::string &str(Symbol Sym) const {
    assert(Sym.index() < Strings.size() && "symbol from another interner?");
    return Strings[Sym.index()];
  }

  /// Number of interned strings, including the reserved empty slot.
  size_t size() const { return Strings.size(); }

private:
  // A deque never moves elements on growth, so string_view keys into the
  // stored strings (including SSO buffers) stay valid for the interner's
  // lifetime. Entries are never erased.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace pigeon

namespace std {
template <> struct hash<pigeon::Symbol> {
  size_t operator()(pigeon::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.index());
  }
};
} // namespace std

#endif // PIGEON_SUPPORT_STRINGINTERNER_H
