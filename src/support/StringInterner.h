//===- StringInterner.h - Symbol table for interned strings ----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense 32-bit \c Symbol handles. Symbols are the
/// currency of the whole system: AST node kinds, terminal values, names,
/// labels and path components are all symbols, so equality and hashing are
/// O(1) everywhere downstream.
///
/// The interner is *read-mostly shared*: lookup() and str() are lock-free
/// and may run concurrently with intern() on other threads. The read path
/// probes an open-addressing table of atomic slot ids published through an
/// atomic pointer; strings live in append-only pages that never move, so a
/// Symbol obtained on any thread can be resolved on any other without
/// synchronization. intern() serializes writers on a small mutex, which is
/// off the hot path by design: the sharded pipeline stages only read the
/// shared interner while parallel work is in flight.
///
/// Parallel shards avoid writer contention — and keep symbol ids
/// deterministic — with *delta overlays*: a delta interner resolves hits
/// against a frozen base interner and interns misses privately, returning
/// provisional symbols (top bit set). After the parallel region the deltas
/// are committed into the base in shard order (commitDelta), which replays
/// the serial first-encounter order, and only provisional symbols need
/// remapping — the merge cost is proportional to the number of *novel*
/// strings, not to the corpus (see DESIGN.md §Parallelism).
///
/// A third mode serves mmap'ed model bundles (format v3): a *frozen view*
/// interner resolves ids below FrozenStrings::Count against an external
/// arena — an offset table plus concatenated bytes, typically pages of a
/// mapped file the interner does not own — through a stored
/// open-addressed index probed with the stable FNV-1a hash
/// (stableHashBytes). No strings are copied or re-hashed at load; novel
/// strings still intern normally and take ids after the frozen range, so
/// a mapped bundle keeps the exact "new ids follow saved ids" contract of
/// a stream-loaded one (see DESIGN.md §Bundle format v3).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_STRINGINTERNER_H
#define PIGEON_SUPPORT_STRINGINTERNER_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pigeon {

/// A handle to an interned string. Symbols from the same interner compare
/// equal iff their strings are equal. Value 0 is reserved for the empty
/// invalid symbol.
class Symbol {
public:
  Symbol() = default;

  /// \returns true if this symbol refers to an interned string.
  bool isValid() const { return Id != 0; }

  /// Raw dense index, usable as an array key. Index 0 is the invalid symbol.
  uint32_t index() const { return Id; }

  /// Rebuilds a symbol from a raw index previously obtained via index().
  static Symbol fromIndex(uint32_t Index) { return Symbol(Index); }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  explicit Symbol(uint32_t Id) : Id(Id) {}
  friend class StringInterner;

  uint32_t Id = 0;
};

/// Bidirectional map between strings and dense Symbol ids.
///
/// Concurrency contract:
///  * lookup(), str(), contains() and size() are lock-free and safe to
///    call from any thread, concurrently with intern() on other threads;
///  * intern() is safe to call concurrently from multiple threads, but
///    the id assigned to a novel string then depends on interleaving —
///    deterministic pipelines intern through delta overlays instead;
///  * a delta overlay is single-owner (not itself thread-safe), but many
///    overlays over one frozen base may run in parallel.
class StringInterner {
public:
  /// Tag type selecting the delta-overlay constructor.
  struct DeltaTag {};
  static constexpr DeltaTag Delta{};

  /// Tag type selecting the frozen-view constructor.
  struct FrozenTag {};
  static constexpr FrozenTag Frozen{};

  /// Provisional-symbol marker: symbols returned by a delta overlay for
  /// strings missing from its base carry this bit over the overlay-local
  /// id. commitDelta() maps local ids to final base ids.
  static constexpr uint32_t ProvisionalBit = 0x80000000u;

  /// External storage of a frozen-view interner. All pointers reference
  /// memory the caller keeps alive for the interner's lifetime (an
  /// mmap'ed bundle section in practice); nothing is copied.
  ///
  /// The stored index is an open-addressed linear-probe table: slot value
  /// 0 is empty, any other value V names id V-1 (the +1 bias lets id
  /// ranges that legitimately contain an interned empty string — id 0 is
  /// *also* the reserved empty slot — coexist with the 0-is-empty
  /// sentinel). Probing starts at stableHashBytes(str) & Mask; the writer
  /// (ModelIO) inserts ids 1..Count-1 in id order with the same hash and
  /// probe sequence.
  struct FrozenStrings {
    const char *Bytes = nullptr;       ///< Concatenated string arena.
    const uint64_t *Offsets = nullptr; ///< Count+1 entries, Offsets[0]==0.
    const uint32_t *Slots = nullptr;   ///< Stored index, value = id + 1.
    uint64_t Mask = 0;                 ///< Slot count - 1 (power of two).
    uint32_t Count = 0;                ///< Ids [0, Count) are frozen.
  };

  StringInterner();

  /// A delta overlay over \p Base: hits resolve to Base's (final) ids,
  /// misses intern privately and come back provisional. \p Base must stay
  /// alive and — for exact results — frozen while the overlay is used.
  StringInterner(DeltaTag, const StringInterner &Base);

  /// A frozen-view interner over \p View (Count must be >= 1: id 0 is
  /// the reserved empty slot). Ids below View.Count resolve against the
  /// external arena with zero copies; intern() still accepts novel
  /// strings, which take ids from View.Count up exactly as they would
  /// after a stream load.
  StringInterner(FrozenTag, const FrozenStrings &View);

  ~StringInterner();

  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p Str, returning its symbol. Idempotent. On a delta
  /// overlay the result is the base's symbol when \p Str is already
  /// interned there, and a provisional symbol otherwise.
  Symbol intern(std::string_view Str);

  /// \returns the symbol for \p Str if already interned, invalid
  /// otherwise. Lock-free; on a delta overlay checks base then overlay.
  Symbol lookup(std::string_view Str) const;

  /// \returns the string for \p Sym. The view stays valid for the
  /// lifetime of the interner (it references an interner-owned page or,
  /// on a frozen view, the external arena). Lock-free; resolves
  /// provisional symbols against the overlay's private storage.
  std::string_view str(Symbol Sym) const;

  /// Number of interned strings, including the reserved empty slot. On a
  /// delta overlay this counts only overlay-local (novel) strings.
  size_t size() const { return Count.load(std::memory_order_acquire); }

  /// Number of novel strings a commit of this overlay would append to its
  /// base (0 for a root interner or an overlay that only saw hits).
  size_t deltaSize() const { return BaseI ? size() - 1 : 0; }

  /// \returns the base interner of a delta overlay, or nullptr.
  const StringInterner *base() const { return BaseI; }

  /// Number of frozen (arena-backed) ids of a frozen-view interner, 0
  /// otherwise.
  uint32_t frozenCount() const { return FV.Count; }

  /// Interns every novel string of \p Overlay into this interner, in
  /// overlay-local id order, and returns the map overlay-local id →
  /// final id (index 0 unused, maps to 0). Committing the overlays of
  /// contiguous shards in shard order replays the ids a serial pass over
  /// the same inputs would have assigned — the determinism contract of
  /// the sharded pipeline stages.
  std::vector<uint32_t> commitDelta(const StringInterner &Overlay);

private:
  /// Geometric string pages: page P holds PageZero << P strings, so 32
  /// page slots cover the whole 31-bit id space while an interner that
  /// only ever sees a handful of strings allocates one small page.
  /// Pages never move, which is what keeps str() lock-free and the
  /// returned references stable.
  static constexpr uint32_t PageZero = 16; // must be a power of two
  static constexpr size_t MaxPages = 28;

  /// Open-addressing index: slot values are symbol ids (0 = empty), keys
  /// are the id's strings. Readers probe the table published in `Table`;
  /// the single writer (under Mutex) inserts with release stores and
  /// republishes on growth, retiring old tables until destruction so
  /// in-flight readers stay valid.
  struct IndexTable {
    size_t Mask = 0;
    std::unique_ptr<std::atomic<uint32_t>[]> Slots;
    explicit IndexTable(size_t Cap);
  };

  static std::pair<size_t, uint32_t> pageOf(uint32_t Id);

  const std::string &localStr(uint32_t Id) const;
  std::string_view frozenStr(uint32_t Id) const {
    return std::string_view(FV.Bytes + FV.Offsets[Id],
                            FV.Offsets[Id + 1] - FV.Offsets[Id]);
  }
  /// Probes the stored frozen index. \returns the frozen id, 0 on miss.
  uint32_t findFrozen(std::string_view Str) const;
  uint32_t findIn(const IndexTable *T, std::string_view Str,
                  size_t Hash) const;
  /// Appends \p Str with the next id; caller holds Mutex.
  uint32_t append(std::string_view Str, size_t Hash);
  void growLocked(size_t NeedEntries);

  const StringInterner *BaseI = nullptr;
  /// External arena of a frozen-view interner (Count == 0 otherwise).
  FrozenStrings FV;
  /// Id of local page slot 0 minus zero — ids >= LocalBias + 1 live in
  /// the owned pages at slot Id - LocalBias; slot 0 is the reserved
  /// empty string. 0 for a root/overlay interner, Count - 1 for a frozen
  /// view (whose first novel id Count lands in slot 1).
  uint32_t LocalBias = 0;
  std::atomic<IndexTable *> Table{nullptr};
  std::atomic<std::string *> Pages[MaxPages] = {};
  std::atomic<uint32_t> Count{0};
  std::vector<std::unique_ptr<IndexTable>> Retired;
  std::mutex Mutex;
};

} // namespace pigeon

namespace std {
template <> struct hash<pigeon::Symbol> {
  size_t operator()(pigeon::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.index());
  }
};
} // namespace std

#endif // PIGEON_SUPPORT_STRINGINTERNER_H
