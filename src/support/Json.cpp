//===- Json.cpp - Minimal JSON document parser -------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace pigeon;
using namespace pigeon::json;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

Value Value::makeBool(bool B) {
  Value V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

Value Value::makeNumber(double N) {
  Value V;
  V.K = Kind::Number;
  V.N = N;
  return V;
}

Value Value::makeString(std::string S) {
  Value V;
  V.K = Kind::String;
  V.S = std::move(S);
  return V;
}

Value Value::makeArray(std::vector<Value> Elems) {
  Value V;
  V.K = Kind::Array;
  V.Elems = std::move(Elems);
  return V;
}

Value Value::makeObject(std::vector<std::pair<std::string, Value>> Members) {
  Value V;
  V.K = Kind::Object;
  V.Members = std::move(Members);
  return V;
}

bool Value::boolean() const {
  assert(isBool() && "not a bool");
  return B;
}

double Value::number() const {
  assert(isNumber() && "not a number");
  return N;
}

const std::string &Value::str() const {
  assert(isString() && "not a string");
  return S;
}

const std::vector<Value> &Value::array() const {
  assert(isArray() && "not an array");
  return Elems;
}

const std::vector<std::pair<std::string, Value>> &Value::object() const {
  assert(isObject() && "not an object");
  return Members;
}

const Value *Value::find(std::string_view Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[Name, Member] : Members)
    if (Name == Key)
      return &Member;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<Value> parseDocument() {
    skipWhitespace();
    std::optional<Value> V = parseValue();
    if (!V)
      return std::nullopt;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return V;
  }

private:
  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
  /// Parse depth cap: our own documents nest a handful of levels; 256
  /// protects the recursive descent against stack exhaustion on hostile
  /// or corrupt input.
  static constexpr int MaxDepth = 256;
  int Depth = 0;

  std::nullopt_t fail(const std::string &Why) {
    if (Error && Error->empty())
      *Error = Why + " at offset " + std::to_string(Pos);
    return std::nullopt;
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWhitespace() {
    while (!atEnd() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                        Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consumeLiteral(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  std::optional<Value> parseValue() {
    if (atEnd())
      return fail("unexpected end of input");
    if (++Depth > MaxDepth) {
      --Depth;
      return fail("nesting too deep");
    }
    std::optional<Value> V;
    switch (peek()) {
    case 'n':
      V = consumeLiteral("null") ? std::optional<Value>(Value())
                                 : fail("bad literal");
      break;
    case 't':
      V = consumeLiteral("true") ? std::optional<Value>(Value::makeBool(true))
                                 : fail("bad literal");
      break;
    case 'f':
      V = consumeLiteral("false")
              ? std::optional<Value>(Value::makeBool(false))
              : fail("bad literal");
      break;
    case '"':
      V = parseString();
      break;
    case '[':
      V = parseArray();
      break;
    case '{':
      V = parseObject();
      break;
    default:
      V = parseNumber();
    }
    --Depth;
    return V;
  }

  std::optional<Value> parseNumber() {
    size_t Start = Pos;
    if (!atEnd() && peek() == '-')
      ++Pos;
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("invalid number");
    // RFC 8259 int: "0" or a nonzero digit followed by digits — "01" is
    // not a number.
    if (peek() == '0') {
      ++Pos;
      if (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        return fail("leading zero in number");
    } else {
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!atEnd() && peek() == '.') {
      ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("invalid fraction");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("invalid exponent");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    std::string Token(Text.substr(Start, Pos - Start));
    return Value::makeNumber(std::strtod(Token.c_str(), nullptr));
  }

  /// Appends the UTF-8 encoding of \p Code to \p Out.
  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  std::optional<unsigned> parseHex4() {
    if (Pos + 4 > Text.size())
      return std::nullopt;
    unsigned Code = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + static_cast<size_t>(I)];
      Code <<= 4;
      if (C >= '0' && C <= '9')
        Code |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Code |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Code |= static_cast<unsigned>(C - 'A' + 10);
      else
        return std::nullopt;
    }
    Pos += 4;
    return Code;
  }

  std::optional<Value> parseString() {
    ++Pos; // opening quote
    std::string Out;
    for (;;) {
      if (atEnd())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Value::makeString(std::move(Out));
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (atEnd())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        std::optional<unsigned> Code = parseHex4();
        if (!Code)
          return fail("invalid \\u escape");
        unsigned Point = *Code;
        // Surrogate pair?
        if (Point >= 0xD800 && Point <= 0xDBFF &&
            Text.substr(Pos, 2) == "\\u") {
          size_t Save = Pos;
          Pos += 2;
          std::optional<unsigned> Low = parseHex4();
          if (Low && *Low >= 0xDC00 && *Low <= 0xDFFF)
            Point = 0x10000 + ((Point - 0xD800) << 10) + (*Low - 0xDC00);
          else
            Pos = Save; // lone high surrogate: emit as-is
        }
        appendUtf8(Out, Point);
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
  }

  std::optional<Value> parseArray() {
    ++Pos; // '['
    std::vector<Value> Elems;
    skipWhitespace();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return Value::makeArray(std::move(Elems));
    }
    for (;;) {
      skipWhitespace();
      std::optional<Value> V = parseValue();
      if (!V)
        return std::nullopt;
      Elems.push_back(std::move(*V));
      skipWhitespace();
      if (atEnd())
        return fail("unterminated array");
      char C = Text[Pos++];
      if (C == ']')
        return Value::makeArray(std::move(Elems));
      if (C != ',')
        return fail("expected ',' or ']' in array");
    }
  }

  std::optional<Value> parseObject() {
    ++Pos; // '{'
    std::vector<std::pair<std::string, Value>> Members;
    skipWhitespace();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return Value::makeObject(std::move(Members));
    }
    for (;;) {
      skipWhitespace();
      if (atEnd() || peek() != '"')
        return fail("expected member name");
      std::optional<Value> Key = parseString();
      if (!Key)
        return std::nullopt;
      skipWhitespace();
      if (atEnd() || Text[Pos++] != ':')
        return fail("expected ':' after member name");
      skipWhitespace();
      std::optional<Value> V = parseValue();
      if (!V)
        return std::nullopt;
      Members.emplace_back(Key->str(), std::move(*V));
      skipWhitespace();
      if (atEnd())
        return fail("unterminated object");
      char C = Text[Pos++];
      if (C == '}')
        return Value::makeObject(std::move(Members));
      if (C != ',')
        return fail("expected ',' or '}' in object");
    }
  }
};

} // namespace

std::optional<Value> json::parse(std::string_view Text, std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).parseDocument();
}

std::optional<Value> json::parseFile(const std::string &Path,
                                     std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Error)
      *Error = "cannot read " + Path;
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parse(Buffer.str(), Error);
}
