//===- WindowedHistogram.h - Sliding-window histograms ----------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ring-of-slices sliding-window histogram: the companion to the
/// cumulative telemetry::Histogram for *resident* processes. A histogram
/// that has been accumulating since process start answers "what was the
/// p99 over the server's lifetime" — useless for a `pigeon serve` that
/// has been up for a week. This one answers "what was the p99 over the
/// last minute".
///
/// Time is cut into fixed slices (default 6 × 10 s). Each slice is a
/// small fixed-bucket histogram (bucket counts + count/sum/min/max);
/// observations land in the slice containing "now", and slices older
/// than the window are cleared lazily the next time the ring slot they
/// occupy is touched (by an observation or a snapshot). A snapshot
/// aggregates the live slices and estimates percentiles exactly the way
/// telemetry::Histogram does (linear interpolation inside the containing
/// bucket, clamped to the window's observed min/max).
///
/// Clock semantics: callers normally use observe()/snapshot(), which
/// read the monotonic clock. The *At variants take an explicit
/// seconds-since-epoch value so tests can drive rotation
/// deterministically. Time never runs backwards inside one instance: a
/// caller-supplied timestamp earlier than the last seen one is clamped
/// forward (monotonic-jump tolerance — a scheduling hiccup must not
/// resurrect or wrongly expire slices). A forward jump larger than the
/// whole window simply expires everything, as it should.
///
/// Thread-safety: every member is safe to call from any thread; one
/// mutex serializes observation and snapshotting. The expected write
/// rate is per-request/per-batch (thousands per second), not per-path —
/// the hot extraction loops keep using the lock-free cumulative
/// histograms.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_WINDOWEDHISTOGRAM_H
#define PIGEON_SUPPORT_WINDOWEDHISTOGRAM_H

#include <cstdint>
#include <mutex>
#include <vector>

namespace pigeon {
namespace telemetry {

class WindowedHistogram {
public:
  /// \param UpperBounds inclusive bucket upper bounds, strictly
  ///        ascending (an implicit overflow bucket catches the rest).
  /// \param Slices number of ring slices (>= 1).
  /// \param SliceSeconds width of one slice; the window covers
  ///        Slices * SliceSeconds.
  explicit WindowedHistogram(std::vector<double> UpperBounds,
                             size_t Slices = 6, double SliceSeconds = 10.0);

  /// Records \p X at the current monotonic time.
  void observe(double X);
  /// Records \p X at the explicit time \p NowSeconds (tests).
  void observeAt(double NowSeconds, double X);

  struct Bucket {
    double UpperBound; ///< +inf for the overflow bucket.
    uint64_t Count;
  };

  /// Aggregate view over the live window. Empty windows have NaN
  /// percentiles/min/max (serialized as `null`), matching the cumulative
  /// Histogram's contract — there is no p99 of nothing.
  struct Snapshot {
    uint64_t Count = 0;
    double Sum = 0;
    double Min = 0, Max = 0;     ///< NaN when Count == 0.
    double P50 = 0, P90 = 0, P99 = 0;
    double WindowSeconds = 0;    ///< Slices * SliceSeconds (capacity).
    double RatePerSec = 0;       ///< Count / WindowSeconds.
    std::vector<Bucket> Buckets; ///< Aggregated over live slices.
  };

  /// Snapshot at the current monotonic time. Rotation happens here too,
  /// so a window that stopped receiving observations still decays.
  Snapshot snapshot() const;
  Snapshot snapshotAt(double NowSeconds) const;

  size_t numSlices() const { return Ring.size(); }
  double sliceSeconds() const { return SliceWidth; }
  double windowSeconds() const {
    return SliceWidth * static_cast<double>(Ring.size());
  }

  /// Clears every slice (registry reset).
  void resetValue();

private:
  struct Slice {
    int64_t Epoch = -1; ///< floor(time / SliceWidth); -1 = never used.
    std::vector<uint64_t> Counts; ///< Bounds.size() + 1.
    uint64_t Count = 0;
    double Sum = 0;
    double Min = 0, Max = 0; ///< Valid only when Count > 0.
  };

  /// Returns the slice for \p Epoch, clearing a stale occupant of its
  /// ring slot. Callers hold Mutex.
  Slice &sliceFor(int64_t Epoch) const;
  /// Clamps \p NowSeconds to be monotonic w.r.t. the last seen time.
  double monotonicNow(double NowSeconds) const;

  std::vector<double> Bounds;
  double SliceWidth;
  // Snapshotting rotates (expires stale slices), so the ring state is
  // mutable behind the mutex even on the const read path.
  mutable std::mutex Mutex;
  mutable std::vector<Slice> Ring;
  mutable double LastNow = 0;
  mutable bool Touched = false; ///< LastNow is meaningful only after use.
};

} // namespace telemetry
} // namespace pigeon

#endif // PIGEON_SUPPORT_WINDOWEDHISTOGRAM_H
