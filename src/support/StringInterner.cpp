//===- StringInterner.cpp - Symbol table for interned strings ---------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include "support/Hashing.h"

#include <bit>

using namespace pigeon;

StringInterner::IndexTable::IndexTable(size_t Cap)
    : Mask(Cap - 1), Slots(new std::atomic<uint32_t>[Cap]) {
  assert((Cap & Mask) == 0 && "capacity must be a power of two");
  for (size_t I = 0; I < Cap; ++I)
    Slots[I].store(0, std::memory_order_relaxed);
}

std::pair<size_t, uint32_t> StringInterner::pageOf(uint32_t Id) {
  // Page P starts at PageZero * (2^P - 1) and holds PageZero << P slots.
  uint32_t Biased = Id / PageZero + 1;
  size_t P = static_cast<size_t>(std::bit_width(Biased)) - 1;
  uint32_t Start = ((1u << P) - 1) * PageZero;
  return {P, Id - Start};
}

StringInterner::StringInterner() {
  // Reserve id 0 so that a default-constructed Symbol is never returned:
  // page 0 exists from birth with the empty string in slot 0.
  Pages[0].store(new std::string[PageZero], std::memory_order_release);
  Count.store(1, std::memory_order_release);
}

StringInterner::StringInterner(DeltaTag, const StringInterner &Base)
    : StringInterner() {
  BaseI = &Base;
}

StringInterner::StringInterner(FrozenTag, const FrozenStrings &View)
    : StringInterner() {
  assert(View.Count >= 1 && "frozen view must cover the reserved id 0");
  FV = View;
  LocalBias = View.Count - 1;
  Count.store(View.Count, std::memory_order_release);
}

StringInterner::~StringInterner() {
  delete Table.load(std::memory_order_relaxed);
  for (std::atomic<std::string *> &Page : Pages)
    delete[] Page.load(std::memory_order_relaxed);
}

const std::string &StringInterner::localStr(uint32_t Id) const {
  assert(Id < Count.load(std::memory_order_acquire) &&
         "symbol from another interner?");
  assert((Id == 0 || Id > LocalBias) && "frozen id has no local storage");
  auto [P, Offset] = pageOf(Id - (Id == 0 ? 0 : LocalBias));
  const std::string *Page = Pages[P].load(std::memory_order_acquire);
  assert(Page && "unpublished string page");
  return Page[Offset];
}

std::string_view StringInterner::str(Symbol Sym) const {
  uint32_t Id = Sym.index();
  if (Id & ProvisionalBit) {
    assert(BaseI && "provisional symbol outside a delta overlay");
    return localStr(Id & ~ProvisionalBit);
  }
  if (BaseI)
    return BaseI->str(Sym);
  if (Id < FV.Count)
    return frozenStr(Id);
  return localStr(Id);
}

uint32_t StringInterner::findFrozen(std::string_view Str) const {
  if (!FV.Slots)
    return 0;
  uint64_t Hash = stableHashBytes(Str.data(), Str.size());
  // Probe count is bounded by the table size so a hostile stored index
  // with no empty slot terminates instead of spinning.
  for (uint64_t I = Hash & FV.Mask, Probes = 0; Probes <= FV.Mask;
       ++Probes, I = (I + 1) & FV.Mask) {
    uint32_t Biased = FV.Slots[I];
    if (Biased == 0)
      return 0;
    if (frozenStr(Biased - 1) == Str)
      return Biased - 1;
  }
  return 0;
}

uint32_t StringInterner::findIn(const IndexTable *T, std::string_view Str,
                                size_t Hash) const {
  if (!T)
    return 0;
  for (size_t I = Hash & T->Mask;; I = (I + 1) & T->Mask) {
    uint32_t Id = T->Slots[I].load(std::memory_order_acquire);
    if (Id == 0)
      return 0;
    if (localStr(Id) == Str)
      return Id;
  }
}

Symbol StringInterner::lookup(std::string_view Str) const {
  size_t Hash = std::hash<std::string_view>{}(Str);
  if (BaseI) {
    if (Symbol S = BaseI->lookup(Str); S.isValid())
      return S;
    uint32_t Local =
        findIn(Table.load(std::memory_order_acquire), Str, Hash);
    return Local ? Symbol::fromIndex(ProvisionalBit | Local) : Symbol();
  }
  if (uint32_t Id = findFrozen(Str))
    return Symbol::fromIndex(Id);
  return Symbol::fromIndex(
      findIn(Table.load(std::memory_order_acquire), Str, Hash));
}

void StringInterner::growLocked(size_t NeedEntries) {
  IndexTable *Old = Table.load(std::memory_order_relaxed);
  // Keep the load factor under ~7/8 after inserting NeedEntries.
  size_t Cap = Old ? (Old->Mask + 1) : 64;
  while (NeedEntries * 8 >= Cap * 7)
    Cap *= 2;
  if (Old && Cap == Old->Mask + 1)
    return;
  auto Next = std::make_unique<IndexTable>(Cap);
  uint32_t N = Count.load(std::memory_order_relaxed);
  // Only locally-stored ids live in the live index; frozen ids resolve
  // through the stored index of the external arena.
  for (uint32_t Id = LocalBias + 1; Id < N; ++Id) {
    size_t Hash = std::hash<std::string_view>{}(localStr(Id));
    size_t I = Hash & Next->Mask;
    while (Next->Slots[I].load(std::memory_order_relaxed) != 0)
      I = (I + 1) & Next->Mask;
    Next->Slots[I].store(Id, std::memory_order_relaxed);
  }
  // Publish, and retire the old table: a reader that loaded it before the
  // swap may still be probing it, so it must stay alive until destruction.
  Table.store(Next.get(), std::memory_order_release);
  if (Old)
    Retired.emplace_back(Old);
  Next.release();
}

uint32_t StringInterner::append(std::string_view Str, size_t Hash) {
  uint32_t Id = Count.load(std::memory_order_relaxed);
  assert(Id < ProvisionalBit && "interner full");
  auto [P, Offset] = pageOf(Id - LocalBias);
  assert(P < MaxPages && "interner full");
  std::string *Page = Pages[P].load(std::memory_order_relaxed);
  if (!Page) {
    Page = new std::string[size_t(PageZero) << P];
    Pages[P].store(Page, std::memory_order_release);
  }
  Page[Offset] = std::string(Str);
  growLocked(size_t(Id - LocalBias) + 1);
  IndexTable *T = Table.load(std::memory_order_relaxed);
  size_t I = Hash & T->Mask;
  while (T->Slots[I].load(std::memory_order_relaxed) != 0)
    I = (I + 1) & T->Mask;
  // Count first, slot second, both release: the string assignment and
  // page publication above happen-before any reader that acquires either.
  // A reader that wins the race on the slot must already see Id < Count
  // (localStr's contract); the reverse order would let findIn probe a
  // published slot whose id looks out of range for one instant.
  Count.store(Id + 1, std::memory_order_release);
  T->Slots[I].store(Id, std::memory_order_release);
  return Id;
}

Symbol StringInterner::intern(std::string_view Str) {
  size_t Hash = std::hash<std::string_view>{}(Str);
  if (BaseI) {
    // Delta overlay: resolve against the frozen base first, then the
    // private overlay. Overlays are single-owner, so no locking.
    if (Symbol S = BaseI->lookup(Str); S.isValid())
      return S;
    if (uint32_t Local =
            findIn(Table.load(std::memory_order_relaxed), Str, Hash))
      return Symbol::fromIndex(ProvisionalBit | Local);
    std::lock_guard<std::mutex> Lock(Mutex);
    return Symbol::fromIndex(ProvisionalBit | append(Str, Hash));
  }
  // Frozen hits first: the stored index is immutable, so this path never
  // contends with writers at all.
  if (uint32_t Id = findFrozen(Str))
    return Symbol::fromIndex(Id);
  // Lock-free fast path: published strings are found without the mutex.
  if (uint32_t Id = findIn(Table.load(std::memory_order_acquire), Str, Hash))
    return Symbol::fromIndex(Id);
  std::lock_guard<std::mutex> Lock(Mutex);
  // Re-check: another writer may have interned Str before we got the lock.
  if (uint32_t Id = findIn(Table.load(std::memory_order_relaxed), Str, Hash))
    return Symbol::fromIndex(Id);
  return Symbol::fromIndex(append(Str, Hash));
}

std::vector<uint32_t> StringInterner::commitDelta(
    const StringInterner &Overlay) {
  assert(Overlay.BaseI == this && "overlay committed into a foreign base");
  uint32_t N = Overlay.Count.load(std::memory_order_acquire);
  std::vector<uint32_t> Map(N, 0);
  for (uint32_t Local = 1; Local < N; ++Local)
    Map[Local] = intern(Overlay.localStr(Local)).index();
  return Map;
}
