//===- WindowedHistogram.cpp - Sliding-window histograms --------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/WindowedHistogram.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

using namespace pigeon;
using namespace pigeon::telemetry;

namespace {

double steadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

WindowedHistogram::WindowedHistogram(std::vector<double> UpperBounds,
                                     size_t Slices, double SliceSeconds)
    : Bounds(std::move(UpperBounds)),
      SliceWidth(SliceSeconds > 0 ? SliceSeconds : 1.0),
      Ring(std::max<size_t>(Slices, 1)) {
  for (Slice &S : Ring)
    S.Counts.assign(Bounds.size() + 1, 0);
}

double WindowedHistogram::monotonicNow(double NowSeconds) const {
  if (Touched && NowSeconds < LastNow)
    NowSeconds = LastNow; // Clock went backwards: clamp, never regress.
  LastNow = NowSeconds;
  Touched = true;
  return NowSeconds;
}

WindowedHistogram::Slice &WindowedHistogram::sliceFor(int64_t Epoch) const {
  Slice &S = Ring[static_cast<size_t>(Epoch) % Ring.size()];
  if (S.Epoch != Epoch) {
    // The slot's previous occupant is at least one full ring older;
    // recycle it for the new epoch.
    std::fill(S.Counts.begin(), S.Counts.end(), 0);
    S.Count = 0;
    S.Sum = 0;
    S.Min = 0;
    S.Max = 0;
    S.Epoch = Epoch;
  }
  return S;
}

void WindowedHistogram::observe(double X) {
  observeAt(steadyNowSeconds(), X);
}

void WindowedHistogram::observeAt(double NowSeconds, double X) {
  std::lock_guard<std::mutex> Lock(Mutex);
  double Now = monotonicNow(NowSeconds);
  int64_t Epoch = static_cast<int64_t>(std::floor(Now / SliceWidth));
  Slice &S = sliceFor(Epoch);
  size_t B = 0;
  while (B < Bounds.size() && X > Bounds[B])
    ++B;
  S.Counts[B] += 1;
  if (S.Count == 0) {
    S.Min = X;
    S.Max = X;
  } else {
    S.Min = std::min(S.Min, X);
    S.Max = std::max(S.Max, X);
  }
  S.Count += 1;
  S.Sum += X;
}

WindowedHistogram::Snapshot WindowedHistogram::snapshot() const {
  return snapshotAt(steadyNowSeconds());
}

WindowedHistogram::Snapshot
WindowedHistogram::snapshotAt(double NowSeconds) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  double Now = monotonicNow(NowSeconds);
  int64_t Epoch = static_cast<int64_t>(std::floor(Now / SliceWidth));
  int64_t Oldest = Epoch - static_cast<int64_t>(Ring.size()) + 1;

  Snapshot Out;
  Out.WindowSeconds = windowSeconds();
  std::vector<uint64_t> Agg(Bounds.size() + 1, 0);
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
  for (const Slice &S : Ring) {
    if (S.Epoch < Oldest || S.Epoch > Epoch || S.Count == 0)
      continue; // Expired slice (cleared lazily on slot reuse) or empty.
    for (size_t B = 0; B < Agg.size(); ++B)
      Agg[B] += S.Counts[B];
    Out.Count += S.Count;
    Out.Sum += S.Sum;
    Min = std::min(Min, S.Min);
    Max = std::max(Max, S.Max);
  }

  Out.Buckets.reserve(Agg.size());
  for (size_t B = 0; B < Agg.size(); ++B)
    Out.Buckets.push_back({B < Bounds.size()
                               ? Bounds[B]
                               : std::numeric_limits<double>::infinity(),
                           Agg[B]});

  if (Out.Count == 0) {
    double NaN = std::numeric_limits<double>::quiet_NaN();
    Out.Min = Out.Max = Out.P50 = Out.P90 = Out.P99 = NaN;
    return Out;
  }
  Out.Min = Min;
  Out.Max = Max;
  Out.RatePerSec = static_cast<double>(Out.Count) / Out.WindowSeconds;

  // Same estimator as telemetry::Histogram::percentile: linear
  // interpolation inside the containing bucket, clamped to extrema.
  auto Percentile = [&](double P) {
    double Rank = std::clamp(P, 0.0, 1.0) * static_cast<double>(Out.Count);
    uint64_t Cumulative = 0;
    for (size_t B = 0; B < Agg.size(); ++B) {
      uint64_t InBucket = Agg[B];
      if (InBucket == 0)
        continue;
      if (static_cast<double>(Cumulative + InBucket) >= Rank) {
        double Lower = B == 0 ? Min : Bounds[B - 1];
        double Upper = B < Bounds.size() ? Bounds[B] : Max;
        Lower = std::clamp(Lower, Min, Max);
        Upper = std::clamp(Upper, Min, Max);
        double Frac = (Rank - static_cast<double>(Cumulative)) /
                      static_cast<double>(InBucket);
        return Lower + std::clamp(Frac, 0.0, 1.0) * (Upper - Lower);
      }
      Cumulative += InBucket;
    }
    return Max;
  };
  Out.P50 = Percentile(0.50);
  Out.P90 = Percentile(0.90);
  Out.P99 = Percentile(0.99);
  return Out;
}

void WindowedHistogram::resetValue() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (Slice &S : Ring) {
    std::fill(S.Counts.begin(), S.Counts.end(), 0);
    S.Count = 0;
    S.Sum = 0;
    S.Min = 0;
    S.Max = 0;
    S.Epoch = -1;
  }
  Touched = false;
  LastNow = 0;
}
