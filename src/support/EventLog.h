//===- EventLog.h - Structured JSONL event stream ---------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe append-only event stream (schema `pigeon.events.v1`),
/// one JSON object per line. Where the metrics registry aggregates —
/// "parse took 12 s total across 812 files" — the event log keeps the
/// *sequence*: which span ran on which thread, under which parent, for
/// how long, and what the model attributed each prediction to.
///
/// Record kinds:
///  * `stream.begin` — first line; carries the schema tag and a process
///    epoch so `ts` fields are interpretable.
///  * `span.begin` / `span.end` — emitted by TraceScope (Telemetry.cpp)
///    and by the per-chunk instrumentation in Parallel.cpp. `span.end`
///    carries wall seconds, thread-CPU seconds and a peak-RSS sample.
///  * `prediction` / `attribution` — provenance records written by the
///    evaluation loops and `pigeon explain` (see Experiments.cpp): one
///    `prediction` per explained node, one `attribution` per
///    contributing AST path.
///  * `stream.end` — final line with process totals.
///
/// Every record carries `ts` (seconds since stream open), `tid` (a small
/// sequential id assigned per OS thread on first use) and `event`. The
/// stream is line-buffered under one mutex: records from concurrent
/// threads interleave but each line is whole, so a reader can parse the
/// file line-by-line with support/Json.h (see tests/eventlog_test.cpp).
///
/// The log is a process-wide singleton, disabled (all calls cheap no-ops)
/// until `pigeon --trace FILE` / `PIGEON_TRACE` opens it. Hot paths must
/// check enabled() before building field vectors.
///
/// Two long-running-process extensions ride on the same emit path:
///
///  * Segment rotation (`--trace-max-mb`): in owned-file mode the log
///    tracks bytes written to the current segment; past the cap it writes
///    the `stream.end` trailer, renames the segment to `<path>.1`
///    (replacing the previous rollover, so disk stays bounded at about
///    two segments) and reopens `<path>` with a fresh `stream.begin`
///    carrying an incremented `segment` field. `ts` keeps counting from
///    the original process epoch across segments.
///
///  * Flight recorder (`enableRing`): a bounded in-memory ring of the
///    last N rendered records, independent of any output stream — with
///    the ring on, records are captured even when `--trace` is not.
///    Entries are pre-rendered lines, so keeping one costs a string move
///    under the same single-line mutex the stream write already holds.
///    `pigeon serve` enables it on construction; `admin:"flightrec"`
///    snapshots it live and the CLI dumps it next to the best-effort
///    metric flush on terminate/fatal paths.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_EVENTLOG_H
#define PIGEON_SUPPORT_EVENTLOG_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pigeon {
namespace telemetry {

/// One extra field of an event record. \c Json is the already-rendered
/// JSON value text ("3.14", "\"quoted\"", "null", ...) — use jsonString()
/// / jsonNumber() to build it. Pre-rendering keeps the log's emit path a
/// single formatted write under the mutex.
struct EventField {
  std::string Key;
  std::string Json;
};

/// Renders \p S as a quoted JSON string literal (quotes included).
std::string jsonString(std::string_view S);

/// Renders \p X as a JSON number, or `null` when non-finite.
std::string jsonNumber(double X);

/// Peak resident set size of this process in KiB (getrusage ru_maxrss);
/// 0 when unavailable.
uint64_t peakRssKb();

/// Current resident set size of this process in KiB (/proc/self/status
/// VmRSS); 0 when unavailable. Unlike peakRssKb this can go down, which
/// is what makes before/after deltas around a load meaningful.
uint64_t currentRssKb();

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID);
/// negative when unavailable.
double threadCpuSeconds();

/// CPU seconds consumed by the whole process, user + system.
double processCpuSeconds();

/// The append-only JSONL event stream. All members are safe to call from
/// any thread; when the log is not open every emit is a cheap no-op.
class EventLog {
public:
  EventLog() = default;
  ~EventLog() { close(); }

  EventLog(const EventLog &) = delete;
  EventLog &operator=(const EventLog &) = delete;

  /// The process-wide instance (the one `--trace` opens).
  static EventLog &global();

  /// Opens \p Path for appending events and writes the `stream.begin`
  /// record. \returns false (log stays disabled) if the file cannot be
  /// created. Reopening an open log closes the previous stream first.
  bool open(const std::string &Path);

  /// Caps owned-file segments at \p MaxBytes (0 disables rotation, the
  /// default). When a write pushes the current segment past the cap the
  /// log writes the segment trailer, renames the file to `<path>.1` and
  /// starts a fresh segment at `<path>`. Attached streams never rotate.
  void setRotation(uint64_t MaxBytes);

  /// 0-based index of the current segment (increments per rotation).
  uint64_t segmentIndex() const;

  /// Attaches to a caller-owned stream (tests use std::ostringstream).
  /// The caller must keep \p OS alive until close().
  void attach(std::ostream &OS);

  /// Writes the `stream.end` record and detaches. Idempotent.
  void close();

  /// Flushes buffered records to the underlying stream without closing
  /// it — the periodic-flush path of a resident `pigeon serve`, so a
  /// crash loses at most one flush interval of events. No-op when the
  /// log is disabled.
  void flush();

  /// True while any sink is live: an open()/attach() stream, or the
  /// flight-recorder ring. Hot paths gate record construction on this.
  bool enabled() const {
    return Enabled.load(std::memory_order_acquire) ||
           RingOn.load(std::memory_order_acquire);
  }

  /// Turns the flight recorder on: the last \p Capacity rendered records
  /// are retained in memory (oldest overwritten first), whether or not a
  /// stream is open. Re-enabling with a new capacity clears the ring.
  void enableRing(size_t Capacity);

  /// Turns the flight recorder off and drops its contents.
  void disableRing();

  /// True while the flight recorder is capturing.
  bool ringEnabled() const { return RingOn.load(std::memory_order_acquire); }

  /// Ring capacity in records (0 when disabled).
  size_t ringCapacity() const;

  /// Records pushed into the ring since enableRing (including ones
  /// already overwritten).
  uint64_t ringTotal() const;

  /// The retained records, oldest first. Each entry is one complete JSON
  /// object (no trailing newline), exactly as it was (or would have
  /// been) written to the stream.
  std::vector<std::string> ringSnapshot() const;

  /// Writes the ring snapshot as JSONL to \p Path via writeFileAtomic.
  /// \returns false when the ring is off/empty or the write fails.
  bool dumpRing(const std::string &Path) const;

  /// Allocates a process-unique span id (valid ids start at 1; 0 means
  /// "no span" / top level).
  uint64_t nextSpanId() { return NextSpan.fetch_add(1) + 1; }

  /// Emits a `span.begin` record for span \p Id named \p Name nested
  /// under \p Parent (0 = top level).
  void spanBegin(uint64_t Id, uint64_t Parent, std::string_view Name,
                 const std::vector<EventField> &Extra = {});

  /// Emits the matching `span.end` with wall seconds \p Wall, thread-CPU
  /// seconds \p Cpu (negative = omit) and a peak-RSS sample.
  void spanEnd(uint64_t Id, uint64_t Parent, std::string_view Name,
               double Wall, double Cpu,
               const std::vector<EventField> &Extra = {});

  /// Emits a generic record `{"event":Event, ...Fields}`.
  void record(std::string_view Event, const std::vector<EventField> &Fields);

private:
  void writeLine(std::string_view Event, const std::vector<EventField> &Fields);
  void writeLineLocked(std::string_view Event,
                       const std::vector<EventField> &Fields);
  void beginStreamLocked();
  void endStreamLocked();
  void rotateLocked();

  using Clock = std::chrono::steady_clock;

  mutable std::mutex Mutex;
  std::atomic<bool> Enabled{false};
  std::atomic<bool> RingOn{false};
  std::atomic<uint64_t> NextSpan{0};
  std::atomic<uint64_t> Records{0};
  std::unique_ptr<std::ofstream> OwnedFile;
  std::ostream *Out = nullptr; ///< OwnedFile.get() or an attached stream.
  std::string Path;            ///< Owned-file path (empty when attached).
  Clock::time_point Epoch;

  // Rotation state (guarded by Mutex).
  uint64_t RotateBytes = 0;  ///< Segment cap; 0 = never rotate.
  uint64_t SegmentBytes = 0; ///< Bytes written to the current segment.
  uint64_t SegmentIdx = 0;

  // Flight-recorder ring (guarded by Mutex; RingOn is the fast gate).
  std::vector<std::string> Ring;
  size_t RingCap = 0;
  uint64_t RingCount = 0; ///< Total pushes; Ring[RingCount % RingCap] is next.
};

} // namespace telemetry
} // namespace pigeon

#endif // PIGEON_SUPPORT_EVENTLOG_H
