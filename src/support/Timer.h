//===- Timer.h - Wall-clock stopwatch ---------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal stopwatch used by the experiment harness to report training
/// times (Figs. 11 and 12 plot accuracy against training time).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_TIMER_H
#define PIGEON_SUPPORT_TIMER_H

#include <chrono>

namespace pigeon {

/// Wall-clock stopwatch; starts running on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace pigeon

#endif // PIGEON_SUPPORT_TIMER_H
