//===- Parallel.cpp - Chunked thread pool for the pipeline ------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include "support/EventLog.h"
#include "support/PhaseProfiler.h"
#include "support/Telemetry.h"

#include <atomic>
#include <chrono>
#if defined(__linux__)
#include <sched.h>
#endif
#include <condition_variable>
#include <cstdlib>
#include <ctime>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

using namespace pigeon;
using namespace pigeon::parallel;

namespace {

/// Hard cap on pool size: a PIGEON_THREADS typo must not fork-bomb.
constexpr size_t MaxThreads = 256;

std::atomic<size_t> DefaultOverride{0};

size_t envThreads() {
  static const size_t Cached = [] {
    const char *Env = std::getenv("PIGEON_THREADS");
    if (!Env || !*Env)
      return size_t(0);
    long N = std::atol(Env);
    return N > 0 ? static_cast<size_t>(N) : size_t(0);
  }();
  return Cached;
}

thread_local bool InRegion = false;

/// One parallel region: a chunk counter shared by every executor (pool
/// workers and the calling thread), a completion counter the caller waits
/// on, and the first exception any chunk threw.
struct Region {
  size_t Total = 0;
  const std::function<void(size_t)> *Fn = nullptr;
  /// Trace position of the spawning thread. Installed on every executor
  /// for the duration of participate(), so TraceScopes opened inside a
  /// chunk — and the chunk spans themselves — nest under the stage that
  /// started the region instead of floating at a worker's top level.
  telemetry::TraceContext Ctx;
  /// The spawner's profiler phase stack, installed alongside Ctx so the
  /// sampling profiler attributes worker time to the spawning stage.
  std::vector<const char *> ProfStack;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};
  std::mutex Mutex;
  std::condition_variable Finished;
  std::exception_ptr Error;

  bool exhausted() const {
    return Next.load(std::memory_order_relaxed) >= Total;
  }

  /// Pulls and runs chunks until none remain. Any executor may call this.
  void participate() {
    bool Saved = InRegion;
    InRegion = true;
    telemetry::TraceContext Prev = telemetry::setCurrentTraceContext(Ctx);
    telemetry::ProfilerStackGuard ProfGuard(ProfStack);
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Total)
        break;
      try {
        (*Fn)(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (!Error)
          Error = std::current_exception();
      }
      if (Done.fetch_add(1, std::memory_order_acq_rel) + 1 == Total) {
        std::lock_guard<std::mutex> Lock(Mutex);
        Finished.notify_all();
      }
    }
    telemetry::setCurrentTraceContext(Prev);
    InRegion = Saved;
  }

  void wait() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Finished.wait(Lock, [&] {
      return Done.load(std::memory_order_acquire) >= Total;
    });
  }
};

/// The process-wide pool. Workers are started lazily and grow on demand
/// up to the largest concurrency any region asked for (capped).
class Pool {
public:
  static Pool &instance() {
    static Pool P;
    return P;
  }

  void run(size_t Chunks, size_t Threads,
           const std::function<void(size_t)> &Fn) {
    auto R = std::make_shared<Region>();
    R->Total = Chunks;
    R->Fn = &Fn;
    R->Ctx = telemetry::currentTraceContext(); // run() is the spawner.
    R->ProfStack = telemetry::profilerCaptureStack();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      size_t Want = std::min(std::min(Threads, Chunks), MaxThreads);
      while (Workers.size() + 1 < Want)
        Workers.emplace_back([this] { workerLoop(); });
      Pending.push_back(R);
    }
    WorkAvailable.notify_all();
    R->participate();
    R->wait();
    {
      // Drop the region from the pending list if no worker got to it.
      std::lock_guard<std::mutex> Lock(Mutex);
      for (auto It = Pending.begin(); It != Pending.end(); ++It)
        if (It->get() == R.get()) {
          Pending.erase(It);
          break;
        }
    }
    if (R->Error)
      std::rethrow_exception(R->Error);
  }

private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stop = true;
    }
    WorkAvailable.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  void workerLoop() {
    for (;;) {
      std::shared_ptr<Region> R;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkAvailable.wait(Lock, [&] { return Stop || !Pending.empty(); });
        if (Stop)
          return;
        R = Pending.front();
        if (R->exhausted()) {
          Pending.pop_front();
          continue;
        }
      }
      R->participate();
    }
  }

  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::deque<std::shared_ptr<Region>> Pending;
  std::vector<std::thread> Workers;
  bool Stop = false;
};

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double cpuSeconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

} // namespace

size_t parallel::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<size_t>(N);
}

size_t parallel::availableConcurrency() {
#if defined(__linux__)
  cpu_set_t Mask;
  if (sched_getaffinity(0, sizeof(Mask), &Mask) == 0) {
    int N = CPU_COUNT(&Mask);
    if (N > 0)
      return static_cast<size_t>(N);
  }
#endif
  return hardwareConcurrency();
}

size_t parallel::defaultThreads() {
  size_t Override = DefaultOverride.load(std::memory_order_relaxed);
  if (Override > 0)
    return std::min(Override, MaxThreads);
  size_t Env = envThreads();
  if (Env > 0)
    return std::min(Env, MaxThreads);
  return hardwareConcurrency();
}

void parallel::setDefaultThreads(size_t N) {
  DefaultOverride.store(std::min(N, MaxThreads), std::memory_order_relaxed);
}

size_t parallel::resolveThreads(size_t Requested) {
  size_t N = Requested > 0 ? std::min(Requested, MaxThreads)
                           : defaultThreads();
  if (N == 0)
    N = 1;
  telemetry::MetricsRegistry::global()
      .gauge("parallel.threads")
      .set(static_cast<double>(N));
  return N;
}

bool parallel::inParallelRegion() { return InRegion; }

namespace {

/// RAII event-log span around one chunk execution. Chunk spans exist only
/// in the event stream, never in the merged trace tree: the number of
/// chunks depends on the thread count, and the trace tree must stay
/// thread-count invariant (the determinism contract). While open, the
/// chunk span is the thread's current span, so TraceScopes inside the
/// chunk body nest under it.
class ChunkSpan {
public:
  ChunkSpan(size_t Chunk, size_t Begin, size_t End)
      : Log(telemetry::EventLog::global()) {
    if (!Log.enabled())
      return;
    Prev = telemetry::currentTraceContext();
    Id = Log.nextSpanId();
    Log.spanBegin(Id, Prev.Span, "parallel.chunk",
                  {{"chunk", std::to_string(Chunk)},
                   {"begin", std::to_string(Begin)},
                   {"end", std::to_string(End)}});
    telemetry::setCurrentTraceContext({Prev.Phase, Id});
    CpuStart = telemetry::threadCpuSeconds();
    Start = std::chrono::steady_clock::now();
  }

  ~ChunkSpan() {
    if (Id == 0)
      return;
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    double Cpu =
        CpuStart >= 0 ? telemetry::threadCpuSeconds() - CpuStart : -1.0;
    Log.spanEnd(Id, Prev.Span, "parallel.chunk", Wall, Cpu);
    telemetry::setCurrentTraceContext(Prev);
  }

private:
  telemetry::EventLog &Log;
  telemetry::TraceContext Prev;
  uint64_t Id = 0;
  double CpuStart = -1;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

ChunkPlan parallel::planChunks(size_t N, size_t Threads,
                               std::span<const uint64_t> Costs) {
  ChunkPlan Plan;
  if (N == 0)
    return Plan;
  size_t T = resolveThreads(Threads);
  size_t Chunks = chunkCountFor(N, T);
  Plan.Bounds.resize(Chunks + 1);
  Plan.Bounds[0] = 0;
  Plan.Bounds[Chunks] = N;

  uint64_t Total = 0;
  if (Costs.size() == N)
    for (uint64_t C : Costs)
      Total += C;
  if (Total == 0) {
    // No (or degenerate) costs: split by item count.
    for (size_t C = 1; C < Chunks; ++C)
      Plan.Bounds[C] = C * N / Chunks;
    return Plan;
  }
  // Cost-balanced boundaries: each chunk aims for an equal share of the
  // cost still unassigned (Remaining / ChunksLeft, compared exactly via
  // cross-multiplication — no division, no rounding drift). Re-deriving
  // the share from what *remains* is what keeps an outsized item from
  // wrecking the rest of the plan: once it is consumed, later shares are
  // computed from the small remainder, so the tail still spreads evenly
  // across the leftover chunks instead of piling into the last one.
  size_t Item = 0;
  uint64_t Remaining = Total;
  for (size_t C = 0; C + 1 < Chunks; ++C) {
    uint64_t ChunksLeft = Chunks - C;
    uint64_t Load = 0;
    size_t First = Item;
    auto FitsShare = [&](uint64_t L) {
      return static_cast<unsigned __int128>(L) * ChunksLeft <= Remaining;
    };
    while (Item < N && FitsShare(Load + Costs[Item]))
      Load += Costs[Item++];
    if (Item < N) {
      uint64_t WithNext = Load + Costs[Item];
      // The next item straddles the share. Take it when that lands the
      // chunk closer to its share than stopping short — or when the
      // chunk would otherwise be empty, which isolates a single item
      // too big for any share in a chunk of its own.
      bool Closer =
          static_cast<unsigned __int128>(Load + WithNext) * ChunksLeft <
          static_cast<unsigned __int128>(2) * Remaining;
      if (Item == First || Closer) {
        Load = WithNext;
        ++Item;
      }
    }
    Remaining -= Load;
    Plan.Bounds[C + 1] = Item;
  }
  return Plan;
}

void parallel::parallelChunks(
    const ChunkPlan &Plan, size_t Threads,
    const std::function<void(size_t, size_t, size_t)> &Fn,
    size_t FirstChunk) {
  size_t Chunks = Plan.count();
  if (FirstChunk >= Chunks)
    return;
  size_t T = resolveThreads(Threads);
  auto RunChunk = [&](size_t I) {
    size_t C = FirstChunk + I;
    size_t Begin = Plan.begin(C);
    size_t End = Plan.end(C);
    if (Begin == End)
      return; // Cost-balanced plans may produce empty chunks.
    ChunkSpan Span(C, Begin, End);
    Fn(C, Begin, End);
  };
  size_t Pending = Chunks - FirstChunk;
  if (Pending <= 1 || T <= 1 || InRegion) {
    // Serial / nested: same chunk structure, caller's thread, in order.
    for (size_t I = 0; I < Pending; ++I)
      RunChunk(I);
    return;
  }
  telemetry::Counter &Regions =
      telemetry::MetricsRegistry::global().counter("parallel.regions");
  Regions.inc();
  Pool::instance().run(Pending, T, RunChunk);
}

void parallel::parallelChunks(
    size_t N, size_t Threads,
    const std::function<void(size_t, size_t, size_t)> &Fn) {
  if (N == 0)
    return;
  parallelChunks(planChunks(N, Threads), Threads, Fn);
}

void parallel::parallelFor(size_t N, size_t Threads,
                           const std::function<void(size_t)> &Fn) {
  parallelChunks(N, Threads, [&](size_t, size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Fn(I);
  });
}

StageTimer::StageTimer(std::string Stage)
    : Stage(std::move(Stage)), WallStart(nowSeconds()),
      CpuStart(cpuSeconds()) {
  telemetry::profilerPushFrame(this->Stage);
}

StageTimer::~StageTimer() {
  telemetry::profilerPopFrame();
  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.histogram(Stage + ".wall.seconds", telemetry::timeBounds())
      .observe(nowSeconds() - WallStart);
  Reg.histogram(Stage + ".cpu.seconds", telemetry::timeBounds())
      .observe(cpuSeconds() - CpuStart);
}
