//===- BinaryIO.h - Varint + length-prefixed binary IO ----------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small-integer (LEB128 varint) and length-prefixed byte-string codecs
/// shared by every on-disk format: the model bundle (ModelIO) and the
/// extracted-contexts artifact (ContextsIO), plus the in-memory packed
/// path encoding (paths::PathTable). Two surfaces:
///
///  * stream functions over std::ostream/std::istream for the artifacts,
///    with size guards against corrupted lengths;
///  * allocation-free inline append/read over byte buffers for the packed
///    path hot path.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_BINARYIO_H
#define PIGEON_SUPPORT_BINARYIO_H

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pigeon {
namespace io {

/// Upper bound accepted for any single length-prefixed string or byte
/// string; corrupted streams with absurd lengths fail fast instead of
/// attempting a huge allocation.
inline constexpr size_t MaxChunkBytes = 64u << 20;

/// Overflow-checked \p A + \p B. \returns false (leaving \p Out
/// untouched) when the sum wraps. Every section-end computation over
/// untrusted offsets must go through this: a crafted offset near
/// UINT64_MAX would otherwise wrap the end below the start and slip past
/// a naive `end <= size` bounds check.
inline bool checkedAdd(uint64_t A, uint64_t B, uint64_t &Out) {
  if (A > UINT64_MAX - B)
    return false;
  Out = A + B;
  return true;
}

//===----------------------------------------------------------------------===//
// Stream codecs
//===----------------------------------------------------------------------===//

/// Writes \p Value as an LEB128 varint (1 byte for values < 128).
void writeVarint(std::ostream &OS, uint64_t Value);

/// Reads an LEB128 varint. \returns false on EOF or an overlong encoding
/// (more than 10 bytes).
bool readVarint(std::istream &IS, uint64_t &Value);

/// Writes varint(size) followed by the raw bytes.
void writeBytes(std::ostream &OS, std::span<const uint8_t> Bytes);

/// Reads a length-prefixed byte string written by writeBytes into \p Out
/// (replacing its contents). \returns false on EOF or a length beyond
/// \p MaxSize.
bool readBytes(std::istream &IS, std::vector<uint8_t> &Out,
               size_t MaxSize = MaxChunkBytes);

/// Writes varint(size) followed by the characters.
void writeString(std::ostream &OS, std::string_view Str);

/// Reads a length-prefixed string written by writeString. \returns false
/// on EOF or a length beyond \p MaxSize.
bool readString(std::istream &IS, std::string &Out,
                size_t MaxSize = MaxChunkBytes);

//===----------------------------------------------------------------------===//
// Buffer codecs (hot path: no streams, no allocation)
//===----------------------------------------------------------------------===//

/// Appends \p Value to \p Out as an LEB128 varint.
inline void appendVarint(std::vector<uint8_t> &Out, uint32_t Value) {
  while (Value >= 0x80) {
    Out.push_back(static_cast<uint8_t>(Value) | 0x80);
    Value >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(Value));
}

/// Sequential reader over an in-memory byte span (used to decode packed
/// paths). Reads past the end fail rather than assert: packed bytes can
/// come from disk.
class ByteReader {
public:
  explicit ByteReader(std::span<const uint8_t> Bytes) : Bytes(Bytes) {}

  bool atEnd() const { return Pos >= Bytes.size(); }
  size_t remaining() const { return Bytes.size() - Pos; }

  bool readByte(uint8_t &Out) {
    if (atEnd())
      return false;
    Out = Bytes[Pos++];
    return true;
  }

  bool readVarint(uint32_t &Out) {
    uint32_t Value = 0;
    for (int Shift = 0; Shift <= 28; Shift += 7) {
      uint8_t Byte = 0;
      if (!readByte(Byte))
        return false;
      // The 5th byte holds bits 28..31 only: a set continuation bit would
      // make the encoding longer than 5 bytes, and payload bits above
      // 2^32 would be shifted past bit 31 and silently dropped — letting
      // distinct byte strings decode to the same value, which breaks
      // every equality-by-bytes artifact built on top of this codec.
      if (Shift == 28 && (Byte & 0xF0) != 0)
        return false;
      Value |= static_cast<uint32_t>(Byte & 0x7F) << Shift;
      if ((Byte & 0x80) == 0) {
        Out = Value;
        return true;
      }
    }
    return false; // Unreachable: the 5th byte either returns or rejects.
  }

private:
  std::span<const uint8_t> Bytes;
  size_t Pos = 0;
};

} // namespace io
} // namespace pigeon

#endif // PIGEON_SUPPORT_BINARYIO_H
