//===- Trajectory.h - Bench trajectory format and regression gate -*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bench-trajectory layer behind `tools/bench_report`. Every bench
/// binary writes a `<bench>.metrics.json` sidecar (pigeon.metrics.v1);
/// this module folds those sidecars into one dated trajectory document
/// (schema `pigeon.bench.v1`, committed as `BENCH_<stamp>.json` at the
/// repo root) and diffs trajectories so CI can fail on a throughput
/// regression instead of letting performance drift invisibly.
///
/// Folding rules (sidecar → BenchRecord):
///  * throughput — every gauge whose name contains `per_sec` or ends in
///    `.speedup`, plus a derived `<stage>.per_sec` (= count / sum) for
///    every `<stage>.wall.seconds` histogram with positive sum;
///  * phases — p50/p90/p99/sum/count of every `<stage>.wall.seconds`
///    histogram;
///  * accuracy — every gauge whose name contains `accuracy`;
///  * latency — every gauge whose name contains `latency_ms`
///    (bench_serve's `serve.latency_ms.{p50,p99}{,.single,.concurrent}`
///    family), kept separate from throughput because the gate direction
///    flips: latency that *rises* is the regression;
///  * rss_peak_kb — the `process.rss.peak.kb` gauge when present;
///  * cores — the `parallel.bench.cores` gauge (CPUs the bench actually
///    had, from sched_getaffinity) when present.
///
/// Gates (phase times and RSS are reported but not gated — too
/// machine-sensitive):
///  * the *trajectory* gate: a throughput metric that drops below
///    (1 - threshold) × its previous value is a regression, and a
///    latency metric that rises above (1 + threshold) × its previous
///    value is too;
///  * the *speedup floor*: any `parallel.*.speedup` metric below 1.0 in
///    the current snapshot alone is a failure — parallelism that makes
///    the pipeline slower than serial is a bug regardless of history.
///    Records whose Cores == 1 are exempt (on a one-core machine every
///    honest speedup is ≈ 1.0 and the floor would only measure noise);
///    records that never recorded a core count are *not* exempt;
///  * the *latency ceiling*: any `*.p99` / `*.p99.concurrent` latency
///    metric above an absolute ceiling (ms) in the current snapshot
///    alone is a failure — tail latency needs no history to be wrong.
///    Single-client series (`.p99.single`) are exempt: the ceiling
///    targets the batched tail the SLO is written against.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_TRAJECTORY_H
#define PIGEON_SUPPORT_TRAJECTORY_H

#include "support/Json.h"

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace pigeon {
namespace bench {

/// Summary of one `<stage>.wall.seconds` histogram.
struct PhaseStats {
  double P50 = 0;
  double P90 = 0;
  double P99 = 0;
  double Sum = 0;
  uint64_t Count = 0;
};

/// Everything the trajectory keeps about one bench run. Maps are ordered
/// so the serialized document is stable.
struct BenchRecord {
  std::string Bench;
  std::map<std::string, double> Throughput;
  std::map<std::string, PhaseStats> Phases;
  std::map<std::string, double> Accuracy;
  /// Latency gauges (milliseconds, lower is better) — gated in the
  /// opposite direction from Throughput by compareTrajectories and by
  /// the absolute latencyCeiling().
  std::map<std::string, double> Latency;
  uint64_t RssPeakKb = 0;
  /// CPUs the bench process was actually allowed to run on (0 = the
  /// bench predates the gauge / didn't record it).
  uint64_t Cores = 0;
};

/// One dated snapshot across all benches (the `BENCH_<stamp>.json` file).
struct Trajectory {
  std::string Stamp; ///< e.g. "2026-08-06" — lexicographic order = age.
  std::vector<BenchRecord> Benches;
};

/// Folds one parsed pigeon.metrics.v1 sidecar into a BenchRecord named
/// \p BenchName, per the rules in the file comment. Unknown or malformed
/// members are skipped, never fatal.
BenchRecord foldSidecar(const std::string &BenchName, const json::Value &Doc);

/// Serializes \p T as schema pigeon.bench.v1.
void writeTrajectory(std::ostream &OS, const Trajectory &T);

/// writeTrajectory() to \p Path. \returns false when not writable.
bool writeTrajectoryFile(const std::string &Path, const Trajectory &T);

/// Reads a pigeon.bench.v1 document back. \returns nullopt when \p Doc
/// is not a trajectory (wrong schema / shape).
std::optional<Trajectory> parseTrajectory(const json::Value &Doc);

/// One gated metric that got worse: for throughput,
/// \c After < (1 - threshold) × \c Before; for latency,
/// \c After > (1 + threshold) × \c Before.
struct Regression {
  std::string Bench;
  std::string Metric;
  double Before = 0;
  double After = 0;
  /// After / Before — 0.8 means a throughput metric lost 20%; 1.2 means
  /// a latency metric gained 20%.
  double Ratio = 0;
};

/// Diffs the throughput and latency metrics of \p Cur against \p Prev
/// (matched by bench name, then metric name; metrics present on only
/// one side are ignored). \p Threshold is the tolerated fractional
/// drift, e.g. 0.10 for the CI gate's 10% — applied as a floor to
/// throughput and a ceiling to latency.
std::vector<Regression> compareTrajectories(const Trajectory &Prev,
                                            const Trajectory &Cur,
                                            double Threshold);

/// Absolute floor on `parallel.*.speedup` metrics in \p Cur: every such
/// metric below \p Floor is returned as a Regression (Before = the
/// floor, After = the measured value) — no previous snapshot needed, so
/// a negative speedup fails even on a repo's very first bench run.
/// Benches whose record says Cores == 1 are skipped (see file comment);
/// Cores == 0 (unrecorded) is gated.
std::vector<Regression> speedupFloor(const Trajectory &Cur,
                                     double Floor = 1.0);

/// Absolute ceiling on tail-latency metrics in \p Cur: every latency
/// metric ending in `.p99` or `.p99.concurrent` above \p CeilingMs is
/// returned as a Regression (Before = the ceiling, After = the measured
/// value) — no previous snapshot needed. Single-client percentiles
/// (`*.single`) are exempt; see the file comment.
std::vector<Regression> latencyCeiling(const Trajectory &Cur,
                                       double CeilingMs);

} // namespace bench
} // namespace pigeon

#endif // PIGEON_SUPPORT_TRAJECTORY_H
