//===- Parallel.h - Chunked thread pool for the pipeline --------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel execution layer behind the sharded pipeline stages
/// (parse → extract → infer). A small process-wide thread pool executes
/// *chunked* loops: the iteration space [0, N) is cut into contiguous
/// chunks, and workers (plus the calling thread) self-schedule chunks
/// from a shared counter. Chunks are deliberately *oversubscribed* —
/// several per worker — so a thread that drew cheap chunks steals the
/// remaining ones instead of idling behind a straggler, and planChunks()
/// can additionally balance chunk boundaries by per-item cost (file
/// bytes, tree sizes). Contiguous chunks are what make the deterministic
/// shard merges possible — each shard worker sees its items in global
/// order, so shard-local overlays can be committed back into the exact
/// serial interning order (see DESIGN.md §Parallelism).
///
/// Thread-count resolution, in priority order:
///   1. an explicit per-call `Threads` argument (> 0),
///   2. setDefaultThreads() — the CLI's `--threads` flag,
///   3. the PIGEON_THREADS environment variable,
///   4. std::thread::hardware_concurrency().
///
/// Guarantees:
///   * a resolved count of 1 runs inline on the caller, no pool involved;
///   * nested parallel regions run inline (no deadlock, no oversubscribe);
///   * the first exception thrown by any chunk is rethrown on the caller;
///   * determinism is the *callers'* contract: this layer only promises
///     stable chunk boundaries for a given (N, threads) pair;
///   * workers inherit the spawning thread's telemetry::TraceContext, so
///     TraceScopes opened inside chunks nest under the spawning stage in
///     the merged trace tree (thread-count invariant), and when the event
///     log is open each chunk emits a `parallel.chunk` span nested under
///     that stage (event stream only — chunk count varies with threads).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_PARALLEL_H
#define PIGEON_SUPPORT_PARALLEL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace pigeon {
namespace parallel {

/// Number of hardware threads (at least 1).
size_t hardwareConcurrency();

/// Number of cores actually available to this process (CPU affinity
/// mask on Linux, hardwareConcurrency() elsewhere; at least 1). The
/// bench speedup gates key on this: a 4-thread run on a 1-core box
/// cannot speed anything up, and must not be graded as if it could.
size_t availableConcurrency();

/// The process default worker count: the setDefaultThreads() override if
/// set, else PIGEON_THREADS (parsed once), else hardwareConcurrency().
size_t defaultThreads();

/// Sets the process default (the CLI's `--threads`). 0 restores the
/// automatic PIGEON_THREADS/hardware resolution.
void setDefaultThreads(size_t N);

/// Resolves a per-call request: 0 means defaultThreads(); the result is
/// clamped to at least 1. Also publishes the `parallel.threads` gauge.
size_t resolveThreads(size_t Requested);

/// Chunks per worker thread. Oversubscribing the chunk count is the
/// work-stealing mechanism: chunks are claimed dynamically from a shared
/// counter, so a skewed chunk only delays its own thread by one chunk's
/// worth of work instead of serializing the whole region behind it.
inline constexpr size_t ChunkOversubscription = 8;

/// Number of chunks a parallel loop over \p N items uses at \p Threads
/// resolved threads: min(N, Threads × ChunkOversubscription), except
/// that a single thread always gets a single chunk. Callers that keep
/// per-chunk state (shard interner overlays, shard path tables) size
/// their arrays with this.
inline size_t chunkCountFor(size_t N, size_t Threads) {
  size_t Chunks = Threads <= 1 ? 1 : Threads * ChunkOversubscription;
  return N < Chunks ? N : Chunks;
}

/// Contiguous chunk boundaries for one parallel loop: chunk C is
/// [begin(C), end(C)), chunks cover [0, N) in index order. Boundaries are
/// a pure function of (N, resolved threads, costs) — never of timing —
/// which is what lets sharded stages commit per-chunk results in chunk
/// index order and reproduce the serial output bit for bit.
struct ChunkPlan {
  /// count() + 1 monotone offsets into [0, N].
  std::vector<size_t> Bounds;

  size_t count() const { return Bounds.empty() ? 0 : Bounds.size() - 1; }
  size_t items() const { return Bounds.empty() ? 0 : Bounds.back(); }
  size_t begin(size_t Chunk) const { return Bounds[Chunk]; }
  size_t end(size_t Chunk) const { return Bounds[Chunk + 1]; }
};

/// Plans chunkCountFor(N, resolveThreads(Threads)) contiguous chunks over
/// [0, N). With \p Costs (one weight per item, e.g. source bytes or tree
/// nodes) boundaries equalize total cost per chunk, so one pathological
/// item ends up isolated in its own chunk instead of dragging a whole
/// fixed-size chunk; without costs the split is by item count. Chunks may
/// be empty when a single item outweighs a whole chunk budget.
ChunkPlan planChunks(size_t N, size_t Threads,
                     std::span<const uint64_t> Costs = {});

/// True while the current thread is executing a chunk of some parallel
/// region (worker or participating caller). Nested regions run inline.
bool inParallelRegion();

/// Runs \p Fn(Chunk, Begin, End) for every chunk of [0, N) cut into
/// chunkCountFor(N, resolveThreads(Threads)) contiguous pieces. Chunk
/// boundaries are a function of (N, resolved threads) only. Blocks until
/// every chunk finished; rethrows the first chunk exception. With one
/// chunk — or when called from inside another parallel region — the
/// chunks run inline on the caller, in index order.
void parallelChunks(size_t N, size_t Threads,
                    const std::function<void(size_t Chunk, size_t Begin,
                                             size_t End)> &Fn);

/// Runs \p Fn(Chunk, Begin, End) for the chunks [FirstChunk, count()) of
/// a pre-computed \p Plan. \p FirstChunk lets pipeline stages run chunk 0
/// serially first (warming a shared interner the remaining chunks then
/// read lock-free) without perturbing the chunk numbering. Blocks until
/// every chunk finished; rethrows the first chunk exception.
void parallelChunks(const ChunkPlan &Plan, size_t Threads,
                    const std::function<void(size_t Chunk, size_t Begin,
                                             size_t End)> &Fn,
                    size_t FirstChunk = 0);

/// Element-wise loop on top of parallelChunks: Fn(I) for I in [0, N).
void parallelFor(size_t N, size_t Threads,
                 const std::function<void(size_t)> &Fn);

/// Maps [0, N) through \p Fn into a vector, element I at index I.
template <typename Fn>
auto parallelMap(size_t N, size_t Threads, Fn &&F)
    -> std::vector<decltype(F(size_t(0)))> {
  std::vector<decltype(F(size_t(0)))> Out(N);
  parallelFor(N, Threads, [&](size_t I) { Out[I] = F(I); });
  return Out;
}

/// RAII stage meter: on destruction observes the stage's wall seconds and
/// process-CPU seconds into the `<stage>.wall.seconds` and
/// `<stage>.cpu.seconds` histograms. CPU ≈ wall × utilized threads, so
/// the pair makes parallel speedup visible in every metrics sidecar.
class StageTimer {
public:
  explicit StageTimer(std::string Stage);
  ~StageTimer();

  StageTimer(const StageTimer &) = delete;
  StageTimer &operator=(const StageTimer &) = delete;

private:
  std::string Stage;
  double WallStart;
  double CpuStart;
};

} // namespace parallel
} // namespace pigeon

#endif // PIGEON_SUPPORT_PARALLEL_H
