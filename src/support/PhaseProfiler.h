//===- PhaseProfiler.h - Phase-sampling wall-time profiler -----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sampling profiler over *phase names*, not stack frames. The trace
/// tree (telemetry::TraceScope) already names every interesting region —
/// parse, extract, train, serve.batch, serve.predict — and the parallel
/// layer propagates the spawning thread's context onto pool workers. So
/// instead of unwinding native frames (fragile, needs frame pointers and
/// symbolization), each thread keeps a tiny lock-free stack of interned
/// phase-name pointers, and a sampler thread walks every live stack at a
/// fixed rate (default ~97 Hz — prime, to avoid lockstep with 10 ms
/// timers) attributing one tick of wall time to the folded phase path
/// ("parse;parallel.chunk" style `a;b` joins). The result renders as
/// flamegraph.pl-compatible folded stacks: `phase;subphase count`.
///
/// Who pushes frames:
///  * TraceScope (Telemetry.cpp) — every phase in the trace tree;
///  * parallel::StageTimer (Parallel.cpp) — the serve pipeline stages;
///  * parallel workers — the spawner's captured stack is installed for
///    the duration of each region (ProfilerStackGuard), so worker time
///    lands under the stage that spawned it.
///
/// Thread-safety contract with TraceContext: the per-thread stacks hold
/// pointers to *interned* names that live for the process lifetime, so a
/// sampler racing a push/pop can read a frame from the neighbouring
/// epoch but never a dangling pointer. Depth is published with release
/// ordering after the frame pointer, so a read of depth D implies frames
/// [0, D) are valid. A torn sample (pop+push between the depth read and
/// the frame reads) mis-attributes at most that one tick — noise, not
/// corruption, which is the usual statistical-profiler bargain.
///
/// The per-thread stacks are maintained unconditionally (two relaxed
/// stores per push; interning is a thread-locally cached lookup), so the
/// profiler can be started at any time — including mid-serve via the
/// admin protocol — and immediately sees the live phase of every thread.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_PHASEPROFILER_H
#define PIGEON_SUPPORT_PHASEPROFILER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pigeon {
namespace telemetry {

/// Pushes a frame named \p Name onto the calling thread's phase stack.
/// Must be balanced by profilerPopFrame() on the same thread (RAII
/// callers: TraceScope, StageTimer). Beyond the fixed depth limit the
/// stack records depth only, so unbalanced deep recursion degrades
/// gracefully instead of overflowing.
void profilerPushFrame(std::string_view Name);
void profilerPopFrame();

/// The calling thread's current phase stack as interned name pointers
/// (outermost first). The pointers are stable for the process lifetime.
std::vector<const char *> profilerCaptureStack();

/// Replaces the calling thread's phase stack with \p Frames for the
/// guard's lifetime and restores the previous depth on destruction.
/// Safe only when \p Frames is either (a) installed on a thread whose
/// own stack is a prefix of it, or (b) the thread's own captured stack —
/// which is exactly the parallel-region caller/worker split.
class ProfilerStackGuard {
public:
  explicit ProfilerStackGuard(const std::vector<const char *> &Frames);
  ~ProfilerStackGuard();

  ProfilerStackGuard(const ProfilerStackGuard &) = delete;
  ProfilerStackGuard &operator=(const ProfilerStackGuard &) = delete;

private:
  uint32_t SavedDepth;
};

/// The process-wide sampler. start() spawns the sampling thread; stop()
/// joins it. Counts accumulate across start/stop cycles until reset().
class PhaseProfiler {
public:
  static PhaseProfiler &global();

  /// Starts sampling at \p Hz (clamped to [1, 1000]). Idempotent while
  /// running (the first rate wins until stop()).
  void start(double Hz = 97.0);
  void stop();
  bool running() const;
  double hz() const;

  /// Zeroes the accumulated counts (keeps the sampler running).
  void reset();

  struct FoldedLine {
    std::string Stack; ///< "phase;subphase" folded path.
    uint64_t Count;    ///< Sampler ticks attributed to it.
  };
  struct Report {
    uint64_t Samples = 0;    ///< Thread-samples taken (one per live
                             ///< thread per tick).
    uint64_t Attributed = 0; ///< Samples that landed in a named phase;
                             ///< the rest caught threads outside any
                             ///< TraceScope (idle workers, startup).
    double Hz = 0;
    std::vector<FoldedLine> Lines; ///< Sorted by count desc, then name.
  };
  Report report() const;

  /// flamegraph.pl-compatible rendering: one "stack count" line each.
  std::string folded() const;
  /// folded() to \p Path. \returns false if the file cannot be written.
  bool writeFolded(const std::string &Path) const;

private:
  PhaseProfiler() = default;
};

} // namespace telemetry
} // namespace pigeon

#endif // PIGEON_SUPPORT_PHASEPROFILER_H
