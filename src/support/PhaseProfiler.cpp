//===- PhaseProfiler.cpp - Phase-sampling wall-time profiler ----------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/PhaseProfiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

using namespace pigeon;
using namespace pigeon::telemetry;

namespace {

constexpr uint32_t MaxDepth = 48;

/// One thread's phase stack. Frames are stored before the depth is
/// published (release), so a sampler that reads Depth (acquire) sees
/// valid pointers for every slot below it. Slots are interned-name
/// pointers that live forever, so stale reads are safe.
struct ThreadStack {
  std::atomic<const char *> Frames[MaxDepth];
  std::atomic<uint32_t> Depth{0};
  std::atomic<bool> Dead{false};

  ThreadStack() {
    for (auto &F : Frames)
      F.store(nullptr, std::memory_order_relaxed);
  }
};

/// Registry of every thread stack ever created, plus the name interner
/// and the sampler's accumulated counts — one mutex guards all three
/// (push-side interning hits it only on a per-thread cache miss, and the
/// sampler at ~97 Hz).
struct ProfilerState {
  std::mutex Mutex;
  std::vector<ThreadStack *> Stacks;           // Never freed (see below).
  std::unordered_set<std::string> Names;       // Interned frame names.
  std::map<std::string, uint64_t> Counts;      // Folded stack -> ticks.
  uint64_t Samples = 0;
  uint64_t Attributed = 0;
  double Hz = 0;

  std::thread Sampler;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
};

/// Leaked on purpose: threads may push frames during static destruction
/// (pool workers wind down late), so the stacks and interned names must
/// outlive every destructor. The allocation is bounded by the number of
/// threads the process ever creates times ~400 bytes.
ProfilerState &state() {
  static ProfilerState *S = new ProfilerState;
  return *S;
}

/// Registers this thread's stack on first use and marks it dead when the
/// thread exits (the sampler then skips it; the memory stays valid).
struct ThreadRegistration {
  ThreadStack *Stack;

  ThreadRegistration() : Stack(new ThreadStack) {
    ProfilerState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Stacks.push_back(Stack);
  }
  ~ThreadRegistration() { Stack->Dead.store(true, std::memory_order_release); }
};

ThreadStack &localStack() {
  thread_local ThreadRegistration Reg;
  return *Reg.Stack;
}

const char *internName(std::string_view Name) {
  // Per-thread cache: the set of phase names is tiny and repetitive, so
  // after warm-up a push never touches the global mutex.
  thread_local std::unordered_map<std::string, const char *> Cache;
  auto It = Cache.find(std::string(Name));
  if (It != Cache.end())
    return It->second;
  ProfilerState &S = state();
  const char *Interned;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Interned = S.Names.emplace(Name).first->c_str();
  }
  Cache.emplace(std::string(Name), Interned);
  return Interned;
}

} // namespace

void telemetry::profilerPushFrame(std::string_view Name) {
  ThreadStack &S = localStack();
  uint32_t D = S.Depth.load(std::memory_order_relaxed);
  if (D < MaxDepth)
    S.Frames[D].store(internName(Name), std::memory_order_relaxed);
  // Depth is the publication point: released after the frame store.
  S.Depth.store(D + 1, std::memory_order_release);
}

void telemetry::profilerPopFrame() {
  ThreadStack &S = localStack();
  uint32_t D = S.Depth.load(std::memory_order_relaxed);
  if (D > 0)
    S.Depth.store(D - 1, std::memory_order_release);
}

std::vector<const char *> telemetry::profilerCaptureStack() {
  ThreadStack &S = localStack();
  uint32_t D = std::min(S.Depth.load(std::memory_order_relaxed), MaxDepth);
  std::vector<const char *> Out;
  Out.reserve(D);
  for (uint32_t I = 0; I < D; ++I)
    Out.push_back(S.Frames[I].load(std::memory_order_relaxed));
  return Out;
}

ProfilerStackGuard::ProfilerStackGuard(
    const std::vector<const char *> &Frames) {
  ThreadStack &S = localStack();
  SavedDepth = S.Depth.load(std::memory_order_relaxed);
  uint32_t D = 0;
  for (const char *F : Frames) {
    if (D >= MaxDepth)
      break;
    S.Frames[D].store(F, std::memory_order_relaxed);
    ++D;
  }
  S.Depth.store(D, std::memory_order_release);
}

ProfilerStackGuard::~ProfilerStackGuard() {
  localStack().Depth.store(SavedDepth, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Sampler
//===----------------------------------------------------------------------===//

namespace {

void sampleOnce(ProfilerState &S) {
  std::lock_guard<std::mutex> Lock(S.Mutex);
  std::string Key;
  for (ThreadStack *T : S.Stacks) {
    if (T->Dead.load(std::memory_order_acquire))
      continue;
    uint32_t D = std::min(T->Depth.load(std::memory_order_acquire), MaxDepth);
    S.Samples += 1;
    if (D == 0)
      continue; // Thread outside any phase: unattributed tick.
    Key.clear();
    bool Complete = true;
    for (uint32_t I = 0; I < D; ++I) {
      const char *F = T->Frames[I].load(std::memory_order_acquire);
      if (!F) {
        Complete = false; // Torn read during a racing push; drop the tick.
        break;
      }
      if (I)
        Key += ';';
      Key += F;
    }
    if (!Complete || Key.empty())
      continue;
    S.Attributed += 1;
    S.Counts[Key] += 1;
  }
}

void samplerLoop(double Hz) {
  ProfilerState &S = state();
  auto Interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / Hz));
  auto Next = std::chrono::steady_clock::now() + Interval;
  while (!S.StopFlag.load(std::memory_order_acquire)) {
    std::this_thread::sleep_until(Next);
    if (S.StopFlag.load(std::memory_order_acquire))
      break;
    sampleOnce(S);
    Next += Interval;
    auto Now = std::chrono::steady_clock::now();
    if (Next < Now)
      Next = Now + Interval; // Fell behind (suspend/preemption): resync.
  }
}

} // namespace

PhaseProfiler &PhaseProfiler::global() {
  static PhaseProfiler Instance;
  return Instance;
}

void PhaseProfiler::start(double Hz) {
  ProfilerState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Running.load(std::memory_order_relaxed))
    return;
  Hz = std::clamp(Hz, 1.0, 1000.0);
  S.Hz = Hz;
  S.StopFlag.store(false, std::memory_order_release);
  S.Sampler = std::thread([Hz] { samplerLoop(Hz); });
  S.Running.store(true, std::memory_order_release);
}

void PhaseProfiler::stop() {
  ProfilerState &S = state();
  std::thread Joinable;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    if (!S.Running.load(std::memory_order_relaxed))
      return;
    S.StopFlag.store(true, std::memory_order_release);
    Joinable = std::move(S.Sampler);
    S.Running.store(false, std::memory_order_release);
  }
  if (Joinable.joinable())
    Joinable.join();
}

bool PhaseProfiler::running() const {
  return state().Running.load(std::memory_order_acquire);
}

double PhaseProfiler::hz() const {
  ProfilerState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Hz;
}

void PhaseProfiler::reset() {
  ProfilerState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Counts.clear();
  S.Samples = 0;
  S.Attributed = 0;
}

PhaseProfiler::Report PhaseProfiler::report() const {
  ProfilerState &S = state();
  Report Out;
  std::lock_guard<std::mutex> Lock(S.Mutex);
  Out.Samples = S.Samples;
  Out.Attributed = S.Attributed;
  Out.Hz = S.Hz;
  Out.Lines.reserve(S.Counts.size());
  for (const auto &[Stack, Count] : S.Counts)
    Out.Lines.push_back({Stack, Count});
  std::sort(Out.Lines.begin(), Out.Lines.end(),
            [](const FoldedLine &A, const FoldedLine &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.Stack < B.Stack;
            });
  return Out;
}

std::string PhaseProfiler::folded() const {
  Report R = report();
  std::string Out;
  for (const FoldedLine &L : R.Lines) {
    Out += L.Stack;
    Out += ' ';
    Out += std::to_string(L.Count);
    Out += '\n';
  }
  return Out;
}

bool PhaseProfiler::writeFolded(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << folded();
  Out.flush();
  return Out.good();
}
