//===- TablePrinter.cpp - Aligned console tables --------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>

using namespace pigeon;

void TablePrinter::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), false});
}

void TablePrinter::addSeparator() {
  Rows.push_back({{}, true});
}

std::string TablePrinter::percent(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Fraction * 100.0);
  return Buf;
}

std::string TablePrinter::num(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

void TablePrinter::print(std::ostream &OS) const {
  size_t NumCols = Header.size();
  for (const Row &R : Rows)
    NumCols = std::max(NumCols, R.Cells.size());

  std::vector<size_t> Widths(NumCols, 0);
  auto Widen = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Widen(Header);
  for (const Row &R : Rows)
    Widen(R.Cells);

  auto PrintCells = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < NumCols; ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : "";
      Cell.resize(Widths[I], ' ');
      OS << Cell;
      if (I + 1 != NumCols)
        OS << "  ";
    }
    OS << '\n';
  };
  auto PrintRule = [&] {
    for (size_t I = 0; I < NumCols; ++I) {
      OS << std::string(Widths[I], '-');
      if (I + 1 != NumCols)
        OS << "  ";
    }
    OS << '\n';
  };

  if (!Title.empty())
    OS << "== " << Title << " ==\n";
  if (!Header.empty()) {
    PrintCells(Header);
    PrintRule();
  }
  for (const Row &R : Rows) {
    if (R.Separator) {
      PrintRule();
      continue;
    }
    PrintCells(R.Cells);
  }
}

void TablePrinter::printCsv(std::ostream &OS) const {
  auto Escape = [](const std::string &Cell) {
    if (Cell.find_first_of(",\"\n") == std::string::npos)
      return Cell;
    std::string Out = "\"";
    for (char C : Cell) {
      if (C == '"')
        Out += '"';
      Out += C;
    }
    Out += '"';
    return Out;
  };
  auto PrintCells = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      if (I)
        OS << ',';
      OS << Escape(Cells[I]);
    }
    OS << '\n';
  };
  if (!Header.empty())
    PrintCells(Header);
  for (const Row &R : Rows)
    if (!R.Separator)
      PrintCells(R.Cells);
}
