//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic RNG. Every stochastic component of the
/// system (corpus generation, downsampling, SGNS negative sampling, data
/// splits) draws from a named stream derived from a master seed, so a fixed
/// seed reproduces every experiment byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_RNG_H
#define PIGEON_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pigeon {

/// SplitMix64: tiny, fast, passes BigCrush; ideal for reproducible
/// simulation workloads (not for cryptography).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Derives an independent stream from a parent seed and a stream name,
  /// so components can't perturb each other's sequences.
  static Rng forStream(uint64_t Seed, std::string_view Name) {
    uint64_t H = 1469598103934665603ULL; // FNV offset basis.
    for (char C : Name)
      H = (H ^ static_cast<uint8_t>(C)) * 1099511628211ULL;
    return Rng(Seed ^ H);
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Bounded rejection-free mapping (Lemire); bias is negligible for our
    // bounds (all far below 2^32).
    return (static_cast<__uint128_t>(next()) * Bound) >> 64;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Picks an index according to non-negative \p Weights (need not sum
  /// to 1). At least one weight must be positive.
  size_t pickWeighted(const std::vector<double> &Weights) {
    double Total = 0;
    for (double W : Weights) {
      assert(W >= 0 && "negative weight");
      Total += W;
    }
    assert(Total > 0 && "all weights zero");
    double X = nextDouble() * Total;
    for (size_t I = 0; I < Weights.size(); ++I) {
      X -= Weights[I];
      if (X < 0)
        return I;
    }
    return Weights.size() - 1; // Floating-point slack.
  }

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick from empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    if (Items.empty())
      return;
    for (size_t I = Items.size() - 1; I > 0; --I)
      std::swap(Items[I], Items[nextBelow(I + 1)]);
  }

private:
  uint64_t State;
};

} // namespace pigeon

#endif // PIGEON_SUPPORT_RNG_H
