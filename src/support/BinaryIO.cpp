//===- BinaryIO.cpp - Varint + length-prefixed binary IO ---------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryIO.h"

#include <istream>
#include <ostream>

using namespace pigeon;

void io::writeVarint(std::ostream &OS, uint64_t Value) {
  while (Value >= 0x80) {
    OS.put(static_cast<char>(static_cast<uint8_t>(Value) | 0x80));
    Value >>= 7;
  }
  OS.put(static_cast<char>(static_cast<uint8_t>(Value)));
}

bool io::readVarint(std::istream &IS, uint64_t &Value) {
  uint64_t Out = 0;
  for (int Shift = 0; Shift < 70; Shift += 7) {
    int Ch = IS.get();
    if (Ch == std::char_traits<char>::eof())
      return false;
    uint8_t Byte = static_cast<uint8_t>(Ch);
    Out |= static_cast<uint64_t>(Byte & 0x7F) << Shift;
    if ((Byte & 0x80) == 0) {
      Value = Out;
      return true;
    }
  }
  return false; // Overlong encoding.
}

void io::writeBytes(std::ostream &OS, std::span<const uint8_t> Bytes) {
  writeVarint(OS, Bytes.size());
  OS.write(reinterpret_cast<const char *>(Bytes.data()),
           static_cast<std::streamsize>(Bytes.size()));
}

bool io::readBytes(std::istream &IS, std::vector<uint8_t> &Out,
                   size_t MaxSize) {
  uint64_t Size = 0;
  if (!readVarint(IS, Size) || Size > MaxSize)
    return false;
  Out.resize(Size);
  IS.read(reinterpret_cast<char *>(Out.data()),
          static_cast<std::streamsize>(Size));
  return static_cast<bool>(IS);
}

void io::writeString(std::ostream &OS, std::string_view Str) {
  writeVarint(OS, Str.size());
  OS.write(Str.data(), static_cast<std::streamsize>(Str.size()));
}

bool io::readString(std::istream &IS, std::string &Out, size_t MaxSize) {
  uint64_t Size = 0;
  if (!readVarint(IS, Size) || Size > MaxSize)
    return false;
  Out.resize(Size);
  IS.read(Out.data(), static_cast<std::streamsize>(Size));
  return static_cast<bool>(IS);
}
