//===- Trajectory.cpp - Bench trajectory format and regression gate ----------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Trajectory.h"

#include "support/EventLog.h"
#include "support/Telemetry.h"

#include <cmath>
#include <fstream>

using namespace pigeon;
using namespace pigeon::bench;

//===----------------------------------------------------------------------===//
// Folding
//===----------------------------------------------------------------------===//

namespace {

constexpr std::string_view WallSuffix = ".wall.seconds";

bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

} // namespace

BenchRecord bench::foldSidecar(const std::string &BenchName,
                               const json::Value &Doc) {
  BenchRecord Rec;
  Rec.Bench = BenchName;
  if (const json::Value *Gauges = Doc.find("gauges");
      Gauges && Gauges->isObject()) {
    for (const auto &[Name, V] : Gauges->object()) {
      if (!V.isNumber() || !std::isfinite(V.number()))
        continue;
      if (Name.find("per_sec") != std::string::npos ||
          endsWith(Name, ".speedup"))
        Rec.Throughput[Name] = V.number();
      if (Name.find("accuracy") != std::string::npos)
        Rec.Accuracy[Name] = V.number();
      if (Name.find("latency_ms") != std::string::npos)
        Rec.Latency[Name] = V.number();
      if (Name == "process.rss.peak.kb")
        Rec.RssPeakKb = static_cast<uint64_t>(V.number());
      if (Name == "parallel.bench.cores")
        Rec.Cores = static_cast<uint64_t>(V.number());
    }
  }
  if (const json::Value *Hists = Doc.find("histograms");
      Hists && Hists->isObject()) {
    for (const auto &[Name, H] : Hists->object()) {
      if (!endsWith(Name, WallSuffix) || !H.isObject())
        continue;
      std::string Stage = Name.substr(0, Name.size() - WallSuffix.size());
      PhaseStats Stats;
      auto Num = [&H](std::string_view Key) {
        const json::Value *V = H.find(Key);
        return V ? V->numberOr(0.0) : 0.0;
      };
      Stats.P50 = Num("p50");
      Stats.P90 = Num("p90");
      Stats.P99 = Num("p99");
      Stats.Sum = Num("sum");
      Stats.Count = static_cast<uint64_t>(Num("count"));
      Rec.Phases[Stage] = Stats;
      // Derived throughput: iterations per wall second of the stage.
      if (Stats.Sum > 0 && Stats.Count > 0)
        Rec.Throughput[Stage + ".per_sec"] =
            static_cast<double>(Stats.Count) / Stats.Sum;
    }
  }
  return Rec;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

void bench::writeTrajectory(std::ostream &OS, const Trajectory &T) {
  using telemetry::jsonEscape;
  using telemetry::jsonNumber;
  OS << "{\"schema\":\"pigeon.bench.v1\",\"stamp\":\""
     << jsonEscape(T.Stamp) << "\",\"benches\":[";
  for (size_t I = 0; I < T.Benches.size(); ++I) {
    const BenchRecord &Rec = T.Benches[I];
    if (I)
      OS << ",";
    OS << "\n  {\"bench\":\"" << jsonEscape(Rec.Bench)
       << "\",\"throughput\":{";
    bool First = true;
    for (const auto &[Name, V] : Rec.Throughput) {
      OS << (First ? "" : ",") << "\"" << jsonEscape(Name)
         << "\":" << jsonNumber(V);
      First = false;
    }
    OS << "},\"phases\":{";
    First = true;
    for (const auto &[Stage, S] : Rec.Phases) {
      OS << (First ? "" : ",") << "\"" << jsonEscape(Stage) << "\":{"
         << "\"p50\":" << jsonNumber(S.P50)
         << ",\"p90\":" << jsonNumber(S.P90)
         << ",\"p99\":" << jsonNumber(S.P99)
         << ",\"sum\":" << jsonNumber(S.Sum) << ",\"count\":" << S.Count
         << "}";
      First = false;
    }
    OS << "},\"accuracy\":{";
    First = true;
    for (const auto &[Name, V] : Rec.Accuracy) {
      OS << (First ? "" : ",") << "\"" << jsonEscape(Name)
         << "\":" << jsonNumber(V);
      First = false;
    }
    OS << "},\"latency\":{";
    First = true;
    for (const auto &[Name, V] : Rec.Latency) {
      OS << (First ? "" : ",") << "\"" << jsonEscape(Name)
         << "\":" << jsonNumber(V);
      First = false;
    }
    OS << "},\"rss_peak_kb\":" << Rec.RssPeakKb
       << ",\"cores\":" << Rec.Cores << "}";
  }
  OS << "\n]}\n";
}

bool bench::writeTrajectoryFile(const std::string &Path,
                                const Trajectory &T) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  writeTrajectory(Out, T);
  return Out.good();
}

std::optional<Trajectory> bench::parseTrajectory(const json::Value &Doc) {
  const json::Value *Schema = Doc.find("schema");
  if (!Schema || !Schema->isString() || Schema->str() != "pigeon.bench.v1")
    return std::nullopt;
  const json::Value *Benches = Doc.find("benches");
  if (!Benches || !Benches->isArray())
    return std::nullopt;
  Trajectory T;
  if (const json::Value *Stamp = Doc.find("stamp"))
    T.Stamp = Stamp->strOr("");
  for (const json::Value &B : Benches->array()) {
    if (!B.isObject())
      continue;
    BenchRecord Rec;
    if (const json::Value *Name = B.find("bench"))
      Rec.Bench = Name->strOr("");
    if (const json::Value *Tp = B.find("throughput"); Tp && Tp->isObject())
      for (const auto &[Name, V] : Tp->object())
        if (V.isNumber())
          Rec.Throughput[Name] = V.number();
    if (const json::Value *Ph = B.find("phases"); Ph && Ph->isObject())
      for (const auto &[Stage, S] : Ph->object()) {
        if (!S.isObject())
          continue;
        PhaseStats Stats;
        auto Num = [&S](std::string_view Key) {
          const json::Value *V = S.find(Key);
          return V ? V->numberOr(0.0) : 0.0;
        };
        Stats.P50 = Num("p50");
        Stats.P90 = Num("p90");
        Stats.P99 = Num("p99");
        Stats.Sum = Num("sum");
        Stats.Count = static_cast<uint64_t>(Num("count"));
        Rec.Phases[Stage] = Stats;
      }
    if (const json::Value *Acc = B.find("accuracy"); Acc && Acc->isObject())
      for (const auto &[Name, V] : Acc->object())
        if (V.isNumber())
          Rec.Accuracy[Name] = V.number();
    if (const json::Value *Lat = B.find("latency"); Lat && Lat->isObject())
      for (const auto &[Name, V] : Lat->object())
        if (V.isNumber())
          Rec.Latency[Name] = V.number();
    if (const json::Value *Rss = B.find("rss_peak_kb"))
      Rec.RssPeakKb = static_cast<uint64_t>(Rss->numberOr(0.0));
    if (const json::Value *Cores = B.find("cores"))
      Rec.Cores = static_cast<uint64_t>(Cores->numberOr(0.0));
    T.Benches.push_back(std::move(Rec));
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Regression gate
//===----------------------------------------------------------------------===//

std::vector<Regression> bench::compareTrajectories(const Trajectory &Prev,
                                                   const Trajectory &Cur,
                                                   double Threshold) {
  std::vector<Regression> Out;
  for (const BenchRecord &CurRec : Cur.Benches) {
    const BenchRecord *PrevRec = nullptr;
    for (const BenchRecord &Cand : Prev.Benches)
      if (Cand.Bench == CurRec.Bench) {
        PrevRec = &Cand;
        break;
      }
    if (!PrevRec)
      continue; // New bench: nothing to compare against.
    for (const auto &[Metric, After] : CurRec.Throughput) {
      auto It = PrevRec->Throughput.find(Metric);
      if (It == PrevRec->Throughput.end())
        continue;
      // Speedups measured on one core (parallel stage speedups,
      // serve.workers.speedup, ...) are scheduler noise around 1.0 on
      // both sides of the diff — the same reasoning that exempts the
      // parallel ones from the absolute floor in speedupFloor().
      if ((CurRec.Cores == 1 || PrevRec->Cores == 1) &&
          endsWith(Metric, ".speedup"))
        continue;
      double Before = It->second;
      if (!(Before > 0) || !std::isfinite(Before) || !std::isfinite(After))
        continue;
      if (After < Before * (1.0 - Threshold))
        Out.push_back({CurRec.Bench, Metric, Before, After, After / Before});
    }
    // Latency gates in the opposite direction: rising is the regression.
    for (const auto &[Metric, After] : CurRec.Latency) {
      auto It = PrevRec->Latency.find(Metric);
      if (It == PrevRec->Latency.end())
        continue;
      double Before = It->second;
      if (!(Before > 0) || !std::isfinite(Before) || !std::isfinite(After))
        continue;
      if (After > Before * (1.0 + Threshold))
        Out.push_back({CurRec.Bench, Metric, Before, After, After / Before});
    }
  }
  return Out;
}

std::vector<Regression> bench::speedupFloor(const Trajectory &Cur,
                                            double Floor) {
  std::vector<Regression> Out;
  for (const BenchRecord &Rec : Cur.Benches) {
    if (Rec.Cores == 1)
      continue; // One core: speedup ≈ 1.0 is the honest best case.
    for (const auto &[Metric, Value] : Rec.Throughput) {
      if (Metric.rfind("parallel.", 0) != 0 || !endsWith(Metric, ".speedup"))
        continue;
      if (!std::isfinite(Value) || Value < Floor)
        Out.push_back({Rec.Bench, Metric, Floor, Value,
                       Floor > 0 ? Value / Floor : 0.0});
    }
  }
  return Out;
}

std::vector<Regression> bench::latencyCeiling(const Trajectory &Cur,
                                              double CeilingMs) {
  std::vector<Regression> Out;
  if (!(CeilingMs > 0))
    return Out;
  for (const BenchRecord &Rec : Cur.Benches) {
    for (const auto &[Metric, Value] : Rec.Latency) {
      if (!endsWith(Metric, ".p99") && !endsWith(Metric, ".p99.concurrent"))
        continue;
      if (!std::isfinite(Value) || Value > CeilingMs)
        Out.push_back({Rec.Bench, Metric, CeilingMs, Value,
                       Value / CeilingMs});
    }
  }
  return Out;
}
