//===- TablePrinter.h - Aligned console tables ------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper's tables and figure series as aligned plain-text
/// tables (and optionally CSV), so each bench binary prints the same rows
/// the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_TABLEPRINTER_H
#define PIGEON_SUPPORT_TABLEPRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace pigeon {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
public:
  /// \param Title caption printed above the table.
  explicit TablePrinter(std::string Title) : Title(std::move(Title)) {}

  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may be ragged; short rows are padded.
  void addRow(std::vector<std::string> Cells);

  /// Inserts a horizontal separator before the next row.
  void addSeparator();

  /// Renders the table.
  void print(std::ostream &OS) const;

  /// Renders the table as CSV (no title, header first).
  void printCsv(std::ostream &OS) const;

  /// Formats a fraction as a percentage with one decimal, e.g. "67.3%".
  static std::string percent(double Fraction);

  /// Formats a double with \p Decimals fractional digits.
  static std::string num(double Value, int Decimals = 2);

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };

  std::string Title;
  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace pigeon

#endif // PIGEON_SUPPORT_TABLEPRINTER_H
