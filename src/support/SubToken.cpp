//===- SubToken.cpp - Identifier normalisation and splitting -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/SubToken.h"

#include <algorithm>
#include <cctype>
#include <map>

using namespace pigeon;

std::string pigeon::normalizeName(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    if (std::isalnum(static_cast<unsigned char>(C)))
      Out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(C))));
  }
  return Out;
}

bool pigeon::namesMatch(std::string_view Predicted, std::string_view Actual) {
  return normalizeName(Predicted) == normalizeName(Actual);
}

static bool isUpper(char C) {
  return std::isupper(static_cast<unsigned char>(C));
}
static bool isLower(char C) {
  return std::islower(static_cast<unsigned char>(C));
}
static bool isDigit(char C) {
  return std::isdigit(static_cast<unsigned char>(C));
}

std::vector<std::string> pigeon::splitSubTokens(std::string_view Name) {
  std::vector<std::string> Tokens;
  std::string Cur;
  auto Flush = [&] {
    if (Cur.empty())
      return;
    std::transform(Cur.begin(), Cur.end(), Cur.begin(), [](unsigned char C) {
      return static_cast<char>(std::tolower(C));
    });
    Tokens.push_back(Cur);
    Cur.clear();
  };

  for (size_t I = 0; I < Name.size(); ++I) {
    char C = Name[I];
    if (C == '_' || C == '$' || C == '.' || C == '-') {
      Flush();
      continue;
    }
    if (!Cur.empty()) {
      char Prev = Cur.back();
      bool Boundary = false;
      // aB -> a|B, 1a -> 1|a, a1 -> a|1.
      if (isUpper(C) && isLower(Prev))
        Boundary = true;
      else if (isDigit(C) != isDigit(Prev))
        Boundary = true;
      // HTTPServer -> HTTP|Server: an upper followed by a lower terminates
      // the preceding acronym run.
      else if (isLower(C) && isUpper(Prev) && Cur.size() > 1 &&
               isUpper(Cur[Cur.size() - 2])) {
        char Last = Cur.back();
        Cur.pop_back();
        Flush();
        Cur.push_back(Last);
      }
      if (Boundary)
        Flush();
    }
    Cur.push_back(C);
  }
  Flush();
  return Tokens;
}

SubTokenScore pigeon::scoreSubTokens(std::string_view Predicted,
                                     std::string_view Actual) {
  std::vector<std::string> P = splitSubTokens(Predicted);
  std::vector<std::string> A = splitSubTokens(Actual);
  SubTokenScore Score;
  if (P.empty() || A.empty())
    return Score;

  std::map<std::string, int> Counts;
  for (const std::string &T : A)
    ++Counts[T];
  int Hits = 0;
  for (const std::string &T : P) {
    auto It = Counts.find(T);
    if (It != Counts.end() && It->second > 0) {
      --It->second;
      ++Hits;
    }
  }
  Score.Precision = static_cast<double>(Hits) / static_cast<double>(P.size());
  Score.Recall = static_cast<double>(Hits) / static_cast<double>(A.size());
  if (Score.Precision + Score.Recall > 0)
    Score.F1 = 2 * Score.Precision * Score.Recall /
               (Score.Precision + Score.Recall);
  return Score;
}
