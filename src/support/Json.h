//===- Json.h - Minimal JSON document parser --------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser producing an immutable DOM. It
/// exists to read back PIGEON's *own* machine-readable output — metrics
/// sidecars (pigeon.metrics.v1), event streams (pigeon.events.v1) and
/// bench trajectories (pigeon.bench.v1) — in `bench_report` and in the
/// tests that round-trip those formats. It accepts strict JSON (RFC 8259)
/// with one producer-driven extension: bare `NaN` / `Infinity` tokens are
/// *rejected* (our writers emit `null` for non-finite numbers, and the
/// parser holds them to that).
///
/// Not a general-purpose library: no comments, no trailing commas, no
/// streaming. Object member order is preserved.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_JSON_H
#define PIGEON_SUPPORT_JSON_H

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pigeon {
namespace json {

/// One parsed JSON value. Arrays and objects own their children; objects
/// keep members in document order (duplicate keys keep every occurrence,
/// find() returns the first).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : K(Kind::Null) {}
  static Value makeBool(bool B);
  static Value makeNumber(double N);
  static Value makeString(std::string S);
  static Value makeArray(std::vector<Value> Elems);
  static Value makeObject(std::vector<std::pair<std::string, Value>> Members);

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (asserted), except the *Or forms which substitute a default.
  bool boolean() const;
  double number() const;
  const std::string &str() const;
  const std::vector<Value> &array() const;
  const std::vector<std::pair<std::string, Value>> &object() const;

  double numberOr(double Default) const {
    return isNumber() ? number() : Default;
  }
  std::string strOr(std::string Default) const {
    return isString() ? str() : std::move(Default);
  }

  /// First member named \p Key (objects only), nullptr when absent or
  /// when this value is not an object.
  const Value *find(std::string_view Key) const;

private:
  Kind K;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Parses one JSON document from \p Text (surrounding whitespace allowed,
/// trailing garbage rejected). \returns nullopt on any syntax error; when
/// \p Error is non-null it receives a short human-readable reason with a
/// byte offset.
std::optional<Value> parse(std::string_view Text, std::string *Error = nullptr);

/// parse() over the contents of \p Path; nullopt when the file cannot be
/// read or does not parse.
std::optional<Value> parseFile(const std::string &Path,
                               std::string *Error = nullptr);

} // namespace json
} // namespace pigeon

#endif // PIGEON_SUPPORT_JSON_H
