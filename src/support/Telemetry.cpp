//===- Telemetry.cpp - Metrics registry and phase-trace timers --------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/EventLog.h"
#include "support/PhaseProfiler.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

using namespace pigeon;
using namespace pigeon::telemetry;

//===----------------------------------------------------------------------===//
// Gauge
//===----------------------------------------------------------------------===//

void Gauge::add(double X) {
  double Cur = Value.load(std::memory_order_relaxed);
  while (!Value.compare_exchange_weak(Cur, Cur + X,
                                      std::memory_order_relaxed)) {
  }
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)), BucketCounts(Bounds.size() + 1),
      Min(std::numeric_limits<double>::infinity()),
      Max(-std::numeric_limits<double>::infinity()) {}

namespace {

void atomicMin(std::atomic<double> &A, double X) {
  double Cur = A.load(std::memory_order_relaxed);
  while (X < Cur &&
         !A.compare_exchange_weak(Cur, X, std::memory_order_relaxed)) {
  }
}

void atomicMax(std::atomic<double> &A, double X) {
  double Cur = A.load(std::memory_order_relaxed);
  while (X > Cur &&
         !A.compare_exchange_weak(Cur, X, std::memory_order_relaxed)) {
  }
}

void atomicAdd(std::atomic<double> &A, double X) {
  double Cur = A.load(std::memory_order_relaxed);
  while (!A.compare_exchange_weak(Cur, Cur + X,
                                  std::memory_order_relaxed)) {
  }
}

} // namespace

void Histogram::observe(double X) {
  // Buckets are few (≤ ~20); a linear scan beats binary search here.
  size_t B = 0;
  while (B < Bounds.size() && X > Bounds[B])
    ++B;
  BucketCounts[B].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(Sum, X);
  atomicMin(Min, X);
  atomicMax(Max, X);
}

void Histogram::observeN(double X, uint64_t N) {
  if (N == 0)
    return;
  size_t B = 0;
  while (B < Bounds.size() && X > Bounds[B])
    ++B;
  BucketCounts[B].fetch_add(N, std::memory_order_relaxed);
  Count.fetch_add(N, std::memory_order_relaxed);
  atomicAdd(Sum, X * static_cast<double>(N));
  atomicMin(Min, X);
  atomicMax(Max, X);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : Min.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : Max.load(std::memory_order_relaxed);
}

double Histogram::percentile(double P) const {
  uint64_t Total = count();
  if (Total == 0)
    return std::numeric_limits<double>::quiet_NaN();
  P = std::clamp(P, 0.0, 1.0);
  double Lo = min(), Hi = max();
  // Rank of the requested quantile, 1-based.
  double Rank = P * static_cast<double>(Total);
  uint64_t Cumulative = 0;
  for (size_t B = 0; B < BucketCounts.size(); ++B) {
    uint64_t InBucket = BucketCounts[B].load(std::memory_order_relaxed);
    if (InBucket == 0)
      continue;
    if (static_cast<double>(Cumulative + InBucket) >= Rank) {
      double Lower = B == 0 ? Lo : Bounds[B - 1];
      double Upper = B < Bounds.size() ? Bounds[B] : Hi;
      Lower = std::clamp(Lower, Lo, Hi);
      Upper = std::clamp(Upper, Lo, Hi);
      double Frac = (Rank - static_cast<double>(Cumulative)) /
                    static_cast<double>(InBucket);
      return Lower + std::clamp(Frac, 0.0, 1.0) * (Upper - Lower);
    }
    Cumulative += InBucket;
  }
  return Hi;
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> Out;
  Out.reserve(BucketCounts.size());
  for (size_t B = 0; B < BucketCounts.size(); ++B)
    Out.push_back({B < Bounds.size()
                       ? Bounds[B]
                       : std::numeric_limits<double>::infinity(),
                   BucketCounts[B].load(std::memory_order_relaxed)});
  return Out;
}

void Histogram::resetValue() {
  for (auto &C : BucketCounts)
    C.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
  Min.store(std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  Max.store(-std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
}

std::vector<double> telemetry::timeBounds() {
  // 1e-4 s up through ~2 minutes, roughly 3 buckets per decade.
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
          0.1,  0.25,   0.5,  1.0,  2.5,    5.0,  10.0, 30.0,  120.0};
}

std::vector<double> telemetry::linearBounds(double Lo, double Hi,
                                            double Step) {
  std::vector<double> Out;
  for (double X = Lo; X <= Hi + Step * 1e-9; X += Step)
    Out.push_back(X);
  return Out;
}

//===----------------------------------------------------------------------===//
// TraceScope
//===----------------------------------------------------------------------===//

namespace {

/// The phase this thread is currently inside (nullptr = top level).
thread_local TraceNode *CurrentPhase = nullptr;

/// The event-log span this thread is currently inside (0 = none). Kept
/// beside CurrentPhase so the two always move together; TraceContext is
/// the pair.
thread_local uint64_t CurrentSpan = 0;

TraceNode *findOrCreateChild(TraceNode &Parent, std::string_view Name) {
  for (const auto &Child : Parent.Children)
    if (Child->Name == Name)
      return Child.get();
  Parent.Children.push_back(std::make_unique<TraceNode>());
  Parent.Children.back()->Name = std::string(Name);
  return Parent.Children.back().get();
}

} // namespace

TraceContext telemetry::currentTraceContext() {
  return {CurrentPhase, CurrentSpan};
}

TraceContext telemetry::setCurrentTraceContext(TraceContext Ctx) {
  TraceContext Prev{CurrentPhase, CurrentSpan};
  CurrentPhase = Ctx.Phase;
  CurrentSpan = Ctx.Span;
  return Prev;
}

TraceScope::TraceScope(std::string_view Name)
    : TraceScope(MetricsRegistry::global(), Name) {}

TraceScope::TraceScope(MetricsRegistry &Registry, std::string_view Name)
    : Registry(Registry), Parent(CurrentPhase), ParentSpan(CurrentSpan) {
  {
    std::lock_guard<std::mutex> Lock(Registry.Mutex);
    TraceNode &Under = Parent ? *Parent : Registry.Root;
    Node = findOrCreateChild(Under, Name);
    CurrentPhase = Node;
  }
  profilerPushFrame(Name);
  EventLog &Log = EventLog::global();
  if (Log.enabled()) {
    Span = Log.nextSpanId();
    CurrentSpan = Span;
    CpuStart = threadCpuSeconds();
    Log.spanBegin(Span, ParentSpan, Name);
  }
  Start = Clock::now();
}

TraceScope::~TraceScope() {
  profilerPopFrame();
  double Elapsed =
      std::chrono::duration<double>(Clock::now() - Start).count();
  if (Span != 0) {
    // Opened with the log enabled; emit the end record even if the log
    // was closed meanwhile (spanEnd no-ops in that case).
    double Cpu = CpuStart >= 0 ? threadCpuSeconds() - CpuStart : -1.0;
    EventLog::global().spanEnd(Span, ParentSpan, Node->Name, Elapsed, Cpu);
    CurrentSpan = ParentSpan;
  }
  std::lock_guard<std::mutex> Lock(Registry.Mutex);
  Node->Calls += 1;
  Node->Seconds += Elapsed;
  CurrentPhase = Parent;
}

double TraceScope::seconds() const {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Instance;
  return Instance;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name,
                                      std::vector<double> Bounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(std::string(Name),
                      std::make_unique<Histogram>(std::move(Bounds)))
             .first;
  return *It->second;
}

WindowedHistogram &MetricsRegistry::windowed(std::string_view Name,
                                             std::vector<double> Bounds,
                                             size_t Slices,
                                             double SliceSeconds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Windowed.find(Name);
  if (It == Windowed.end())
    It = Windowed
             .emplace(std::string(Name),
                      std::make_unique<WindowedHistogram>(
                          std::move(Bounds), Slices, SliceSeconds))
             .first;
  return *It->second;
}

size_t MetricsRegistry::numCounters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.size();
}

size_t MetricsRegistry::numGauges() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Gauges.size();
}

size_t MetricsRegistry::numHistograms() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Histograms.size();
}

size_t MetricsRegistry::numWindowed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Windowed.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C->resetValue();
  for (auto &[Name, G] : Gauges)
    G->resetValue();
  for (auto &[Name, H] : Histograms)
    H->resetValue();
  for (auto &[Name, W] : Windowed)
    W->resetValue();
  Root.Children.clear();
  Root.Calls = 0;
  Root.Seconds = 0;
}

//===----------------------------------------------------------------------===//
// JSON emission
//===----------------------------------------------------------------------===//

std::string telemetry::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(Ch)));
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  return Out;
}

namespace {

// jsonNumber lives in EventLog.cpp now (shared with the event stream);
// non-finite values — NaN gauges, empty-histogram percentiles, the
// overflow-bucket bound — all render as null.

void writeTraceJson(std::ostream &OS, const TraceNode &Node) {
  OS << "{\"name\":\"" << jsonEscape(Node.Name)
     << "\",\"calls\":" << Node.Calls
     << ",\"seconds\":" << jsonNumber(Node.Seconds) << ",\"children\":[";
  for (size_t I = 0; I < Node.Children.size(); ++I) {
    if (I)
      OS << ",";
    writeTraceJson(OS, *Node.Children[I]);
  }
  OS << "]}";
}

} // namespace

void MetricsRegistry::writeJson(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  OS << "{\"schema\":\"pigeon.metrics.v1\",\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    OS << (First ? "" : ",") << "\"" << jsonEscape(Name)
       << "\":" << C->value();
    First = false;
  }
  OS << "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    OS << (First ? "" : ",") << "\"" << jsonEscape(Name)
       << "\":" << jsonNumber(G->value());
    First = false;
  }
  OS << "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    bool Empty = H->count() == 0;
    // min()/max() return 0.0 on empty for API compatibility; in the JSON
    // snapshot an empty histogram has no extrema, so emit null (matching
    // the NaN percentiles) rather than a fake 0.
    OS << (First ? "" : ",") << "\"" << jsonEscape(Name) << "\":{"
       << "\"count\":" << H->count() << ",\"sum\":" << jsonNumber(H->sum())
       << ",\"min\":" << (Empty ? "null" : jsonNumber(H->min()))
       << ",\"max\":" << (Empty ? "null" : jsonNumber(H->max()))
       << ",\"p50\":" << jsonNumber(H->percentile(0.50))
       << ",\"p90\":" << jsonNumber(H->percentile(0.90))
       << ",\"p99\":" << jsonNumber(H->percentile(0.99)) << ",\"buckets\":[";
    const auto Buckets = H->buckets();
    for (size_t B = 0; B < Buckets.size(); ++B) {
      if (B)
        OS << ",";
      OS << "{\"le\":" << jsonNumber(Buckets[B].UpperBound)
         << ",\"count\":" << Buckets[B].Count << "}";
    }
    OS << "]}";
    First = false;
  }
  OS << "},\"windowed\":{";
  First = true;
  for (const auto &[Name, W] : Windowed) {
    WindowedHistogram::Snapshot Snap = W->snapshot();
    bool Empty = Snap.Count == 0;
    OS << (First ? "" : ",") << "\"" << jsonEscape(Name) << "\":{"
       << "\"window_seconds\":" << jsonNumber(Snap.WindowSeconds)
       << ",\"count\":" << Snap.Count << ",\"sum\":" << jsonNumber(Snap.Sum)
       << ",\"rate_per_sec\":" << jsonNumber(Snap.RatePerSec)
       << ",\"min\":" << (Empty ? "null" : jsonNumber(Snap.Min))
       << ",\"max\":" << (Empty ? "null" : jsonNumber(Snap.Max))
       << ",\"p50\":" << jsonNumber(Snap.P50)
       << ",\"p90\":" << jsonNumber(Snap.P90)
       << ",\"p99\":" << jsonNumber(Snap.P99) << ",\"buckets\":[";
    for (size_t B = 0; B < Snap.Buckets.size(); ++B) {
      if (B)
        OS << ",";
      OS << "{\"le\":" << jsonNumber(Snap.Buckets[B].UpperBound)
         << ",\"count\":" << Snap.Buckets[B].Count << "}";
    }
    OS << "]}";
    First = false;
  }
  OS << "},\"trace\":";
  writeTraceJson(OS, Root);
  OS << "}\n";
}

bool MetricsRegistry::writeJsonFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  writeJson(Out);
  return Out.good();
}

std::string MetricsRegistry::jsonSnapshot() const {
  std::ostringstream OS;
  writeJson(OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition (format v0.0.4)
//===----------------------------------------------------------------------===//

std::string telemetry::promMetricName(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size() + 1);
  for (size_t I = 0; I < Name.size(); ++I) {
    char Ch = Name[I];
    bool Valid = (Ch >= 'a' && Ch <= 'z') || (Ch >= 'A' && Ch <= 'Z') ||
                 Ch == '_' || Ch == ':' || (Ch >= '0' && Ch <= '9');
    if (Ch >= '0' && Ch <= '9' && I == 0)
      Out += '_'; // Names must not start with a digit.
    Out += Valid ? Ch : '_';
  }
  if (Out.empty())
    Out = "_";
  return Out;
}

std::string telemetry::promEscapeLabel(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += Ch;
    }
  }
  return Out;
}

namespace {

/// Prometheus sample values: plain decimal, with the non-finite spellings
/// the exposition format defines (`NaN`, `+Inf`, `-Inf`) instead of the
/// JSON `null`.
std::string promNumber(double X) {
  if (std::isnan(X))
    return "NaN";
  if (std::isinf(X))
    return X > 0 ? "+Inf" : "-Inf";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", X);
  return Buf;
}

void promHeader(std::ostream &OS, const std::string &Name,
                std::string_view Help, std::string_view Type) {
  OS << "# HELP " << Name << " " << Help << "\n";
  OS << "# TYPE " << Name << " " << Type << "\n";
}

} // namespace

void MetricsRegistry::writePrometheus(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &[Name, C] : Counters) {
    std::string Prom = promMetricName(Name);
    // Convention: counters carry a _total suffix (unless already there).
    if (Prom.size() < 6 || Prom.compare(Prom.size() - 6, 6, "_total") != 0)
      Prom += "_total";
    promHeader(OS, Prom, "pigeon counter " + std::string(Name), "counter");
    OS << Prom << " " << C->value() << "\n";
  }
  for (const auto &[Name, G] : Gauges) {
    std::string Prom = promMetricName(Name);
    promHeader(OS, Prom, "pigeon gauge " + std::string(Name), "gauge");
    OS << Prom << " " << promNumber(G->value()) << "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    std::string Prom = promMetricName(Name);
    promHeader(OS, Prom, "pigeon histogram " + std::string(Name),
               "histogram");
    // _bucket counts are cumulative: each le bucket includes everything
    // below it, and le="+Inf" equals _count.
    uint64_t Cumulative = 0;
    for (const Histogram::Bucket &B : H->buckets()) {
      Cumulative += B.Count;
      OS << Prom << "_bucket{le=\"" << promNumber(B.UpperBound) << "\"} "
         << Cumulative << "\n";
    }
    OS << Prom << "_sum " << promNumber(H->sum()) << "\n";
    OS << Prom << "_count " << H->count() << "\n";
  }
  for (const auto &[Name, W] : Windowed) {
    WindowedHistogram::Snapshot Snap = W->snapshot();
    // The _window suffix keeps the summary distinct from a cumulative
    // histogram exported under the same dotted name.
    std::string Prom = promMetricName(Name) + "_window";
    promHeader(OS, Prom,
               "pigeon sliding-window summary " + std::string(Name) +
                   " (last " + promNumber(Snap.WindowSeconds) + "s)",
               "summary");
    OS << Prom << "{quantile=\"0.5\"} " << promNumber(Snap.P50) << "\n";
    OS << Prom << "{quantile=\"0.9\"} " << promNumber(Snap.P90) << "\n";
    OS << Prom << "{quantile=\"0.99\"} " << promNumber(Snap.P99) << "\n";
    OS << Prom << "_sum " << promNumber(Snap.Sum) << "\n";
    OS << Prom << "_count " << Snap.Count << "\n";
    std::string Rate = promMetricName(Name) + "_window_rate_per_sec";
    promHeader(OS, Rate,
               "pigeon windowed rate of " + std::string(Name), "gauge");
    OS << Rate << " " << promNumber(Snap.RatePerSec) << "\n";
  }
}

std::string MetricsRegistry::prometheusSnapshot() const {
  std::ostringstream OS;
  writePrometheus(OS);
  return OS.str();
}

bool telemetry::writeFileAtomic(const std::string &Path,
                                std::string_view Content) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Content.data(),
              static_cast<std::streamsize>(Content.size()));
    Out.flush();
    if (!Out.good())
      return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Table emission
//===----------------------------------------------------------------------===//

void MetricsRegistry::printTable(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Counters.empty() || !Gauges.empty()) {
    TablePrinter Table("Metrics");
    Table.setHeader({"Metric", "Value"});
    for (const auto &[Name, C] : Counters)
      Table.addRow({Name, std::to_string(C->value())});
    for (const auto &[Name, G] : Gauges)
      Table.addRow({Name, TablePrinter::num(G->value(), 3)});
    Table.print(OS);
  }
  if (!Histograms.empty()) {
    TablePrinter Table("Histograms");
    Table.setHeader(
        {"Metric", "Count", "Sum", "Min", "p50", "p90", "p99", "Max"});
    for (const auto &[Name, H] : Histograms) {
      if (H->count() == 0) {
        Table.addRow({Name, "0", "-", "-", "-", "-", "-", "-"});
        continue;
      }
      Table.addRow({Name, std::to_string(H->count()),
                    TablePrinter::num(H->sum(), 3),
                    TablePrinter::num(H->min(), 3),
                    TablePrinter::num(H->percentile(0.50), 3),
                    TablePrinter::num(H->percentile(0.90), 3),
                    TablePrinter::num(H->percentile(0.99), 3),
                    TablePrinter::num(H->max(), 3)});
    }
    Table.print(OS);
  }
  if (!Windowed.empty()) {
    TablePrinter Table("Windowed (sliding)");
    Table.setHeader(
        {"Metric", "Window s", "Count", "Rate/s", "p50", "p90", "p99"});
    for (const auto &[Name, W] : Windowed) {
      WindowedHistogram::Snapshot Snap = W->snapshot();
      if (Snap.Count == 0) {
        Table.addRow({Name, TablePrinter::num(Snap.WindowSeconds, 0), "0",
                      "-", "-", "-", "-"});
        continue;
      }
      Table.addRow({Name, TablePrinter::num(Snap.WindowSeconds, 0),
                    std::to_string(Snap.Count),
                    TablePrinter::num(Snap.RatePerSec, 3),
                    TablePrinter::num(Snap.P50, 3),
                    TablePrinter::num(Snap.P90, 3),
                    TablePrinter::num(Snap.P99, 3)});
    }
    Table.print(OS);
  }
}

namespace {

void addTraceRows(TablePrinter &Table, const TraceNode &Node, int Depth,
                  double ParentSeconds) {
  std::string Indent(static_cast<size_t>(Depth) * 2, ' ');
  std::string Share =
      ParentSeconds > 0
          ? TablePrinter::percent(Node.Seconds / ParentSeconds)
          : "-";
  Table.addRow({Indent + Node.Name, std::to_string(Node.Calls),
                TablePrinter::num(Node.Seconds, 3), Share});
  for (const auto &Child : Node.Children)
    addTraceRows(Table, *Child, Depth + 1, Node.Seconds);
}

} // namespace

void MetricsRegistry::printTraceTable(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  TablePrinter Table("Phase timings");
  Table.setHeader({"Phase", "Calls", "Seconds", "% of parent"});
  double Total = 0;
  for (const auto &Child : Root.Children)
    Total += Child->Seconds;
  for (const auto &Child : Root.Children)
    addTraceRows(Table, *Child, 0, Total);
  Table.print(OS);
}
