//===- Telemetry.h - Metrics registry and phase-trace timers ----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide observability: a registry of named counters, gauges and
/// fixed-bucket histograms, plus RAII phase timers that nest into a trace
/// tree (datagen → parse → extract → train → eval). The paper's evaluation
/// is about trade-off curves — accuracy vs. training time (Figs. 11-12),
/// path length/width vs. cost (Fig. 10) — and this module is how the
/// pipeline accounts for where the time and the contexts go.
///
/// Design constraints:
///  * cheap enough to leave on: metric handles are stable references
///    (look up once, then lock-free relaxed atomics per update);
///  * machine-readable: every snapshot serializes to stable JSON
///    ("pigeon.metrics.v1") so benches and the `pigeon` tool can emit
///    sidecars that future perf work diffs against;
///  * human-readable: the same snapshot renders as aligned tables via
///    TablePrinter.
///
/// Metric naming scheme: lower-case dotted components,
/// `<subsystem>.<noun>[.<qualifier>]` — e.g. `parse.files.ok`,
/// `paths.contexts`, `crf.epoch.seconds`. See DESIGN.md §Telemetry.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_TELEMETRY_H
#define PIGEON_SUPPORT_TELEMETRY_H

#include "support/WindowedHistogram.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pigeon {
namespace telemetry {

//===----------------------------------------------------------------------===//
// Metric kinds
//===----------------------------------------------------------------------===//

/// Monotonically increasing event count. Updates are relaxed atomics.
class Counter {
public:
  void inc() { add(1); }
  void add(uint64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void resetValue() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Last-written scalar (model size, pairs/sec, ...).
class Gauge {
public:
  void set(double X) { Value.store(X, std::memory_order_relaxed); }
  void add(double X);
  double value() const { return Value.load(std::memory_order_relaxed); }
  void resetValue() { Value.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// Fixed-bucket histogram with running count/sum/min/max. Bucket upper
/// bounds are fixed at registration; an implicit overflow bucket catches
/// everything above the last bound. Percentiles are estimated by linear
/// interpolation inside the containing bucket (clamped to observed
/// min/max), which is exact enough for the p50/p90/p99 summaries the
/// benches report.
class Histogram {
public:
  /// \param UpperBounds inclusive bucket upper bounds, strictly ascending.
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);
  /// Records \p N observations of the value \p X in one shot — for hot
  /// loops that tally identical values locally and flush once.
  void observeN(double X, uint64_t N);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value (0 when empty).
  double min() const;
  double max() const;
  /// Estimated value at quantile \p P in [0, 1]. NaN when the histogram
  /// is empty — there is no meaningful quantile of nothing, and NaN
  /// serializes as `null` (a previous version returned 0.0, which JSON
  /// consumers could not tell apart from a real zero percentile).
  double percentile(double P) const;

  struct Bucket {
    double UpperBound; ///< +inf for the overflow bucket.
    uint64_t Count;
  };
  std::vector<Bucket> buckets() const;

  void resetValue();

private:
  std::vector<double> Bounds;
  std::vector<std::atomic<uint64_t>> BucketCounts; // Bounds.size() + 1.
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Min;
  std::atomic<double> Max;
};

/// Exponential bucket bounds for wall-clock seconds: 100µs ... ~2 min.
std::vector<double> timeBounds();

/// Linear bucket bounds {Lo, Lo+Step, ..., Hi}.
std::vector<double> linearBounds(double Lo, double Hi, double Step = 1.0);

//===----------------------------------------------------------------------===//
// Trace tree
//===----------------------------------------------------------------------===//

/// One phase in the trace tree. Children are created on first entry and
/// merged by name, so a phase entered N times is one node with Calls = N.
struct TraceNode {
  std::string Name;
  uint64_t Calls = 0;
  double Seconds = 0;
  std::vector<std::unique_ptr<TraceNode>> Children;
};

class MetricsRegistry;

/// The trace position of a thread: the phase node it is currently inside
/// (nullptr = top level) and the event-log span id of that phase (0 = no
/// open span). Parallel regions capture the spawning thread's context and
/// install it on workers so their scopes — and their per-chunk spans in
/// the event stream — nest under the stage that spawned them rather than
/// floating at top level. See Parallel.cpp.
struct TraceContext {
  TraceNode *Phase = nullptr;
  uint64_t Span = 0;
};

/// Reads / replaces the calling thread's trace position. setCurrent...
/// returns the previous context so callers can restore it (RAII-style)
/// when the borrowed context ends.
TraceContext currentTraceContext();
TraceContext setCurrentTraceContext(TraceContext Ctx);

/// RAII phase timer. Construction pushes a node under the current phase of
/// this thread (or the registry root at top level); destruction pops it
/// and accumulates the elapsed wall time. Scopes from different threads
/// each nest under their own thread's current phase.
///
/// When the global EventLog is open, every scope additionally emits a
/// span.begin/span.end pair carrying wall time, thread-CPU time and a
/// peak-RSS sample; spans link to their parent via the thread's current
/// span id. The trace tree merges re-entries by name; the event stream
/// keeps each entry distinct.
class TraceScope {
public:
  /// Opens a phase in the global registry's trace tree.
  explicit TraceScope(std::string_view Name);
  /// Opens a phase in \p Registry (tests use private registries).
  TraceScope(MetricsRegistry &Registry, std::string_view Name);
  ~TraceScope();

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

  /// Elapsed seconds since the scope opened (the Timer replacement: read
  /// mid-scope to report a phase's duration while it is still running).
  double seconds() const;

private:
  using Clock = std::chrono::steady_clock;
  MetricsRegistry &Registry;
  TraceNode *Node;
  TraceNode *Parent;       ///< Thread-local current node to restore.
  uint64_t Span = 0;       ///< Event-log span id (0 = log disabled).
  uint64_t ParentSpan = 0; ///< Thread-local current span to restore.
  double CpuStart = -1;    ///< Thread-CPU seconds at open.
  Clock::time_point Start;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Owns every metric and the trace tree. Handles returned by counter() /
/// gauge() / histogram() are stable for the registry's lifetime — cache
/// them (function-local static references in hot paths) and update
/// lock-free. The process-wide instance is global().
class MetricsRegistry {
public:
  MetricsRegistry() { Root.Name = "total"; }

  static MetricsRegistry &global();

  /// Find-or-create by name. The first registration of a histogram fixes
  /// its bucket bounds; later calls with the same name ignore \p Bounds.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name, std::vector<double> Bounds);

  /// Find-or-create a sliding-window histogram. As with histogram(), the
  /// first registration fixes bounds and window shape (\p Slices ring
  /// slices of \p SliceSeconds each); later calls ignore them.
  WindowedHistogram &windowed(std::string_view Name,
                              std::vector<double> Bounds, size_t Slices = 6,
                              double SliceSeconds = 10.0);

  /// Number of registered metrics of each kind (tests / introspection).
  size_t numCounters() const;
  size_t numGauges() const;
  size_t numHistograms() const;
  size_t numWindowed() const;

  const TraceNode &traceRoot() const { return Root; }

  /// Zeroes every metric and clears the trace tree. Registered metric
  /// objects stay alive, so cached handles remain valid.
  void reset();

  /// Writes the full snapshot as stable JSON (schema pigeon.metrics.v1:
  /// {"schema", "counters", "gauges", "histograms", "trace"}).
  void writeJson(std::ostream &OS) const;

  /// writeJson() to \p Path. \returns false if the file cannot be written.
  bool writeJsonFile(const std::string &Path) const;

  /// writeJson() rendered to a string (identical bytes, including the
  /// trailing newline) — for callers that buffer before an atomic write.
  std::string jsonSnapshot() const;

  /// Renders every metric in Prometheus text exposition format v0.0.4:
  /// counters as `<name>_total`, gauges as-is, histograms with cumulative
  /// `_bucket{le=...}` plus `_sum`/`_count`, windowed histograms as
  /// summaries (`<name>_window{quantile=...}`) with a `_rate_per_sec`
  /// gauge. Metric names are sanitized to the Prometheus charset (dots
  /// become underscores).
  void writePrometheus(std::ostream &OS) const;

  /// writePrometheus() rendered to a string.
  std::string prometheusSnapshot() const;

  /// Renders counters, gauges and histogram summaries as aligned tables.
  void printTable(std::ostream &OS) const;

  /// Renders the trace tree as an indented per-phase timing table.
  void printTraceTable(std::ostream &OS) const;

private:
  friend class TraceScope;

  mutable std::mutex Mutex;
  // std::map: stable iteration order makes the JSON output stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      Windowed;
  TraceNode Root;
};

/// Escapes \p S for inclusion in a JSON string literal (quotes excluded).
std::string jsonEscape(std::string_view S);

/// Maps a dotted metric name onto the Prometheus metric-name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots and other invalid characters become
/// underscores; a leading digit gets an underscore prefix.
std::string promMetricName(std::string_view Name);

/// Escapes \p S for a Prometheus label value (backslash, quote, newline).
std::string promEscapeLabel(std::string_view S);

/// Writes \p Content to \p Path atomically: write to `<Path>.tmp`, then
/// rename over \p Path, so readers never observe a torn file. \returns
/// false (leaving any previous file intact) on any failure.
bool writeFileAtomic(const std::string &Path, std::string_view Content);

} // namespace telemetry
} // namespace pigeon

#endif // PIGEON_SUPPORT_TELEMETRY_H
