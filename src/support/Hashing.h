//===- Hashing.h - Hash combinators ------------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash combinators used for composite keys (path sequences,
/// (feature, label) pairs, path-contexts).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_HASHING_H
#define PIGEON_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace pigeon {

/// Mixes \p Value into \p Seed (boost::hash_combine style with a 64-bit
/// avalanche).
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  Value *= 0xff51afd7ed558ccdULL;
  Value ^= Value >> 33;
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  return Seed;
}

/// FNV-1a over raw bytes. Unlike std::hash this is *stable*: the value is
/// pinned by the algorithm, not the standard library build, so it is safe
/// to persist — the stored open-addressed indexes of bundle format v3
/// (frozen interner / path table) are probed with exactly this hash by
/// whatever binary maps them later.
inline uint64_t stableHashBytes(const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Finalizer for 64-bit hashes (MurmurHash3 fmix64).
inline uint64_t hashFinalize(uint64_t H) {
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ULL;
  H ^= H >> 33;
  return H;
}

} // namespace pigeon

#endif // PIGEON_SUPPORT_HASHING_H
