//===- SubToken.h - Identifier normalisation and splitting -----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Utilities for comparing identifiers the way the paper's evaluation does
/// (§5.2): exact match is case-insensitive and ignores non-alphabetical
/// characters, so `totalCount` matches `total_count`. Sub-token splitting
/// (camelCase / snake_case / digits) supports the sub-token F1 metric used
/// for the Java method-name comparison against Allamanis et al.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_SUPPORT_SUBTOKEN_H
#define PIGEON_SUPPORT_SUBTOKEN_H

#include <string>
#include <string_view>
#include <vector>

namespace pigeon {

/// Lowercases \p Name and strips every non-alphanumeric character, yielding
/// the canonical form used for exact-match accuracy. `total_count` and
/// `totalCount` both normalise to `totalcount`.
std::string normalizeName(std::string_view Name);

/// \returns true if \p Predicted and \p Actual match under the paper's
/// exact-match metric (case- and separator-insensitive).
bool namesMatch(std::string_view Predicted, std::string_view Actual);

/// Splits an identifier into lowercase sub-tokens at camelCase humps,
/// underscores, dollar signs and letter/digit boundaries.
/// `multithreadedHttpConnection_manager2` ->
/// {multithreaded, http, connection, manager, 2}.
std::vector<std::string> splitSubTokens(std::string_view Name);

/// Sub-token precision/recall/F1 between a predicted and an actual name,
/// treating each name as a multiset of sub-tokens.
struct SubTokenScore {
  double Precision = 0;
  double Recall = 0;
  double F1 = 0;
};
SubTokenScore scoreSubTokens(std::string_view Predicted,
                             std::string_view Actual);

} // namespace pigeon

#endif // PIGEON_SUPPORT_SUBTOKEN_H
