//===- Experiments.cpp - Experiment runners for the evaluation ---------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include "baselines/Baselines.h"
#include "ml/common/Metrics.h"
#include "support/EventLog.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <optional>

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using namespace pigeon::crf;
using namespace pigeon::paths;

const char *core::representationName(Representation R) {
  switch (R) {
  case Representation::AstPaths:
    return "AST paths";
  case Representation::NoPaths:
    return "no-paths";
  case Representation::IntraStatement:
    return "single-statement relations (UnuglifyJS-style)";
  case Representation::Ngrams:
    return "token n-grams";
  }
  return "invalid";
}

const char *core::w2vContextsName(W2vContexts C) {
  switch (C) {
  case W2vContexts::AstPaths:
    return "AST paths";
  case W2vContexts::TokenStream:
    return "linear token-stream";
  case W2vContexts::PathNeighbors:
    return "path-neighbors, no-paths";
  }
  return "invalid";
}

namespace {

/// Extracts the contexts a representation feeds to the CRF.
std::vector<PathContext> contextsFor(const Tree &Tree,
                                     const CrfExperimentOptions &Options,
                                     PathTable &Table) {
  switch (Options.Repr) {
  case Representation::AstPaths:
    return extractPathContexts(Tree, Options.Extraction, Table);
  case Representation::NoPaths: {
    // The paper's no-path baseline is a "bag of near identifiers": the
    // neighbours' names without any syntactic relation. Semi-paths would
    // leak ancestor kinds (structure) into the bag, so they are off.
    ExtractionConfig Config = Options.Extraction;
    Config.Abst = Abstraction::NoPath;
    Config.IncludeSemiPaths = false;
    return extractPathContexts(Tree, Config, Table);
  }
  case Representation::IntraStatement: {
    auto All = extractPathContexts(Tree, Options.Extraction, Table);
    return baselines::filterIntraStatement(Tree, All);
  }
  case Representation::Ngrams:
    return baselines::ngramContexts(Tree, Options.NgramN, Table);
  }
  return {};
}

void downsample(std::vector<PathContext> &Contexts, double KeepP, Rng &R) {
  if (KeepP >= 1.0)
    return;
  std::vector<PathContext> Kept;
  Kept.reserve(Contexts.size());
  for (const PathContext &Ctx : Contexts)
    if (R.nextBool(KeepP))
      Kept.push_back(Ctx);
  Contexts = std::move(Kept);
}

/// Short task tag for metric/event names (`eval.<tag>.accuracy`,
/// provenance records).
const char *metricTaskTag(Task T) {
  switch (T) {
  case Task::VariableNames:
    return "vars";
  case Task::MethodNames:
    return "methods";
  case Task::FullTypes:
    return "types";
  }
  return "task";
}

/// Bare variable reads and arithmetic are trivially typed by a nearby
/// declaration or operand; the regime the paper's type task evaluates is
/// API-shaped expressions whose types require signature knowledge.
bool isApiTypeTarget(const Corpus &Corpus, const Tree &T, NodeId Id) {
  std::string_view K = Corpus.Interner->str(T.node(Id).Kind);
  return K == "MethodCallExpr" || K == "FieldAccessExpr" ||
         K == "ObjectCreationExpr" || K == "CastExpr" ||
         K == "ArrayCreationExpr";
}

} // namespace

std::vector<FileContexts>
core::extractCorpusContexts(const Corpus &Corpus,
                            const std::vector<size_t> &Indices,
                            const CrfExperimentOptions &Options,
                            PathTable &Table) {
  parallel::StageTimer Stage("extract");
  std::vector<FileContexts> Out(Indices.size());

  // Per file, the intern order into the table is pairwise contexts first,
  // then (when enabled) 3-wise contexts — exactly the order the serial
  // experiment loop produces.
  auto ExtractFile = [&](size_t I, PathTable &Into) {
    const Tree &T = Corpus.Files[Indices[I]].Tree;
    Out[I].Contexts = contextsFor(T, Options, Into);
    if (Options.TriContexts)
      Out[I].Tris = extractTriContexts(T, Options.Extraction, Into);
  };

  size_t Threads = parallel::resolveThreads(Options.Threads);
  // Cost-balanced plan over tree sizes: extraction work scales with node
  // count, so a giant tree gets an (oversubscribed, stealable) chunk of
  // its own instead of anchoring a straggler.
  std::vector<uint64_t> Costs;
  Costs.reserve(Indices.size());
  for (size_t I : Indices)
    Costs.push_back(Corpus.Files[I].Tree.size());
  parallel::ChunkPlan Plan =
      parallel::planChunks(Indices.size(), Threads, Costs);
  size_t NumChunks = Plan.count();
  if (NumChunks <= 1) {
    for (size_t I = 0; I < Indices.size(); ++I)
      ExtractFile(I, Table);
    return Out;
  }

  // Chunk 0 extracts serially into the shared table, warming it with the
  // common paths; the remaining chunks extract into delta overlays that
  // read the then-frozen shared table and store only novel paths.
  for (size_t I = Plan.begin(0); I < Plan.end(0); ++I)
    ExtractFile(I, Table);
  std::vector<std::unique_ptr<PathTable>> Overlays(NumChunks);
  parallel::parallelChunks(
      Plan, Threads,
      [&](size_t Chunk, size_t Begin, size_t End) {
        Overlays[Chunk] =
            std::make_unique<PathTable>(PathTable::Delta, Table);
        for (size_t I = Begin; I < End; ++I)
          ExtractFile(I, *Overlays[Chunk]);
      },
      /*FirstChunk=*/1);

  // Absorbing the overlays' novel paths in chunk order replays the serial
  // first-encounter order of path bytes, so the rewritten PathIds (and
  // Table itself) match a single-threaded extraction bit for bit. Only
  // provisional ids need rewriting — final ids were already assigned by
  // the shared table — and the fix-up runs parallel again.
  std::vector<std::vector<PathId>> Maps(NumChunks);
  for (size_t Chunk = 1; Chunk < NumChunks; ++Chunk)
    if (Overlays[Chunk])
      Maps[Chunk] = Table.absorb(*Overlays[Chunk]);
  parallel::parallelChunks(
      Plan, Threads,
      [&](size_t Chunk, size_t Begin, size_t End) {
        const std::vector<PathId> &Map = Maps[Chunk];
        constexpr PathId Bit = PathTable::ProvisionalBit;
        for (size_t I = Begin; I < End; ++I) {
          for (PathContext &Ctx : Out[I].Contexts)
            if (Ctx.Path != InvalidPath && (Ctx.Path & Bit))
              Ctx.Path = Map[Ctx.Path & ~Bit];
          for (TriContext &Tri : Out[I].Tris)
            if (Tri.Path != InvalidPath && (Tri.Path & Bit))
              Tri.Path = Map[Tri.Path & ~Bit];
        }
      },
      /*FirstChunk=*/1);
  return Out;
}

ExperimentResult
core::runCrfNameExperiment(const Corpus &Corpus, Task Task,
                           const CrfExperimentOptions &Options) {
  assert(Task != Task::FullTypes && "use runCrfTypeExperiment");
  ExperimentResult Result;
  Split S = splitByProject(Corpus, Options.TestFraction, Options.Seed);
  ElementSelector Selector = selectorFor(Task);
  PathTable Table;
  Rng Sampler = Rng::forStream(Options.Seed, "downsample");

  // Serial per-file graph assembly over pre-extracted contexts. Kept
  // sequential on purpose: the downsampler draws from one shared Rng
  // stream and addTriFactors interns composite labels into the corpus
  // interner, both of which must happen in file order to stay
  // bit-identical to a single-threaded run.
  auto AssembleGraphs = [&](const std::vector<size_t> &Indices,
                            std::vector<FileContexts> &Extracted,
                            bool Downsample) {
    std::vector<CrfGraph> Graphs;
    Graphs.reserve(Indices.size());
    for (size_t I = 0; I < Indices.size(); ++I) {
      const Tree &T = Corpus.Files[Indices[I]].Tree;
      FileContexts &FC = Extracted[I];
      if (Downsample) {
        downsample(FC.Contexts, Options.DownsampleP, Sampler);
        Result.TrainContexts += FC.Contexts.size();
      }
      CrfGraph G = buildGraph(T, FC.Contexts, Selector);
      if (Options.TriContexts)
        addTriFactors(G, T, FC.Tris, Selector, *Corpus.Interner);
      Graphs.push_back(std::move(G));
    }
    return Graphs;
  };

  CrfModel Model(Options.Crf);
  {
    telemetry::TraceScope TrainPhase("train");
    std::vector<CrfGraph> TrainGraphs;
    {
      telemetry::TraceScope ExtractPhase("extract");
      auto Extracted = extractCorpusContexts(Corpus, S.Train, Options, Table);
      TrainGraphs = AssembleGraphs(S.Train, Extracted, /*Downsample=*/true);
    }
    Model.train(TrainGraphs);
    Result.TrainSeconds = TrainPhase.seconds();
  }
  Result.NumFeatures = Model.numFeatures();
  Result.DistinctPaths = Table.size();

  telemetry::TraceScope EvalPhase("eval");
  telemetry::EventLog &Log = telemetry::EventLog::global();
  const char *Tag = metricTaskTag(Task);
  ml::AccuracyMeter Meter;
  ml::SubTokenMeter SubMeter;
  const StringInterner &SI = *Corpus.Interner;
  auto TestExtracted = extractCorpusContexts(Corpus, S.Test, Options, Table);
  std::vector<CrfGraph> TestGraphs =
      AssembleGraphs(S.Test, TestExtracted, /*Downsample=*/false);
  std::vector<std::vector<Symbol>> Preds =
      Model.predictBatch(TestGraphs, Options.Threads);
  for (size_t I = 0; I < TestGraphs.size(); ++I) {
    const CrfGraph &G = TestGraphs[I];
    for (uint32_t N : G.Unknowns) {
      std::string Gold(SI.str(G.Nodes[N].Gold));
      std::string Predicted(Preds[I][N].isValid() ? SI.str(Preds[I][N])
                                                  : std::string_view());
      Meter.add(Predicted, Gold);
      SubMeter.add(Predicted, Gold);
      // Misprediction provenance: with the event log open, every wrong
      // answer leaves the per-path evidence it was scored on.
      if (Log.enabled() && Preds[I][N].isValid() && Predicted != Gold)
        logPredictionProvenance(
            Tag, SI, Table, Gold, Predicted,
            Model.explain(G, N, Preds[I][N], Preds[I], 5));
    }
  }
  Result.Accuracy = Meter.accuracy();
  Result.SubtokenF1 = SubMeter.f1();
  Result.Predictions = Meter.total();
  telemetry::MetricsRegistry::global()
      .gauge(std::string("eval.") + Tag + ".accuracy")
      .set(Result.Accuracy);
  return Result;
}

std::vector<CrfGraph>
core::buildTypeGraphs(const Corpus &Corpus,
                      const std::vector<size_t> &Indices,
                      const CrfExperimentOptions &Options, PathTable &Table,
                      size_t *ContextCount) {
  // Sharded like extractCorpusContexts: chunk 0 warms the shared table,
  // the other chunks extract through delta overlays and build graphs
  // whose factors may carry provisional PathIds; the commit absorbs
  // overlays in chunk order and the fix-up rewrites only provisional
  // factor paths, reproducing the serial ids exactly (buildTypeGraph
  // itself interns nothing).
  auto FileGraphs = [&](size_t I, PathTable &Into, size_t &Contexts,
                        std::vector<CrfGraph> &Graphs) {
    const Tree &T = Corpus.Files[I].Tree;
    for (NodeId Target : T.typedNodes()) {
      if (!isApiTypeTarget(Corpus, T, Target))
        continue;
      auto Paths = extractPathsToNode(T, Target, Options.Extraction, Into);
      Contexts += Paths.size();
      Graphs.push_back(buildTypeGraph(T, Target, Paths));
    }
  };

  size_t Threads = parallel::resolveThreads(Options.Threads);
  std::vector<uint64_t> Costs;
  Costs.reserve(Indices.size());
  for (size_t I : Indices)
    Costs.push_back(Corpus.Files[I].Tree.size());
  parallel::ChunkPlan Plan =
      parallel::planChunks(Indices.size(), Threads, Costs);
  size_t NumChunks = Plan.count();
  std::vector<CrfGraph> Graphs;
  size_t Contexts = 0;
  if (NumChunks <= 1) {
    for (size_t I : Indices)
      FileGraphs(I, Table, Contexts, Graphs);
  } else {
    struct ChunkOut {
      std::unique_ptr<PathTable> Overlay;
      std::vector<CrfGraph> Graphs;
      size_t Contexts = 0;
    };
    std::vector<ChunkOut> Chunks(NumChunks);
    // Chunk 0 warms the shared table serially; the rest extract into
    // delta overlays over the then-frozen table (same shape as
    // extractCorpusContexts above).
    for (size_t P = Plan.begin(0); P < Plan.end(0); ++P)
      FileGraphs(Indices[P], Table, Chunks[0].Contexts, Chunks[0].Graphs);
    parallel::parallelChunks(
        Plan, Threads,
        [&](size_t Chunk, size_t Begin, size_t End) {
          Chunks[Chunk].Overlay =
              std::make_unique<PathTable>(PathTable::Delta, Table);
          for (size_t P = Begin; P < End; ++P)
            FileGraphs(Indices[P], *Chunks[Chunk].Overlay,
                       Chunks[Chunk].Contexts, Chunks[Chunk].Graphs);
        },
        /*FirstChunk=*/1);
    std::vector<std::vector<PathId>> Maps(NumChunks);
    for (size_t Chunk = 1; Chunk < NumChunks; ++Chunk)
      if (Chunks[Chunk].Overlay)
        Maps[Chunk] = Table.absorb(*Chunks[Chunk].Overlay);
    parallel::parallelChunks(
        Plan, Threads,
        [&](size_t Chunk, size_t, size_t) {
          const std::vector<PathId> &Map = Maps[Chunk];
          constexpr PathId Bit = PathTable::ProvisionalBit;
          for (CrfGraph &G : Chunks[Chunk].Graphs)
            for (Factor &F : G.Factors)
              if (F.Path != InvalidPath && (F.Path & Bit))
                F.Path = Map[F.Path & ~Bit];
        },
        /*FirstChunk=*/1);
    for (ChunkOut &C : Chunks) {
      for (CrfGraph &G : C.Graphs)
        Graphs.push_back(std::move(G));
      Contexts += C.Contexts;
    }
  }
  if (ContextCount)
    *ContextCount += Contexts;
  return Graphs;
}

ExperimentResult
core::runCrfTypeExperiment(const Corpus &Corpus,
                           const CrfExperimentOptions &Options) {
  ExperimentResult Result;
  Split S = splitByProject(Corpus, Options.TestFraction, Options.Seed);
  PathTable Table;

  CrfModel Model(Options.Crf);
  {
    telemetry::TraceScope TrainPhase("train");
    std::optional<telemetry::TraceScope> ExtractPhase;
    ExtractPhase.emplace("extract");
    std::vector<CrfGraph> TrainGraphs =
        buildTypeGraphs(Corpus, S.Train, Options, Table,
                        &Result.TrainContexts);
    ExtractPhase.reset();
    Model.train(TrainGraphs);
    Result.TrainSeconds = TrainPhase.seconds();
  }
  Result.NumFeatures = Model.numFeatures();
  Result.DistinctPaths = Table.size();

  // Types are compared by exact string ("int[]" must not match "int", so
  // the name-normalising metric is too lenient here).
  telemetry::TraceScope EvalPhase("eval");
  telemetry::EventLog &Log = telemetry::EventLog::global();
  const StringInterner &SI = *Corpus.Interner;
  size_t Total = 0, Correct = 0;
  std::vector<CrfGraph> TestGraphs =
      buildTypeGraphs(Corpus, S.Test, Options, Table, nullptr);
  std::vector<std::vector<Symbol>> Preds =
      Model.predictBatch(TestGraphs, Options.Threads);
  for (size_t I = 0; I < TestGraphs.size(); ++I) {
    const CrfGraph &G = TestGraphs[I];
    for (uint32_t N : G.Unknowns) {
      ++Total;
      bool Right = Preds[I][N].isValid() &&
                   SI.str(Preds[I][N]) == SI.str(G.Nodes[N].Gold);
      if (Right)
        ++Correct;
      else if (Log.enabled() && Preds[I][N].isValid())
        logPredictionProvenance(
            "types", SI, Table, SI.str(G.Nodes[N].Gold),
            SI.str(Preds[I][N]),
            Model.explain(G, N, Preds[I][N], Preds[I], 5));
    }
  }
  Result.Predictions = Total;
  Result.Accuracy =
      Total == 0 ? 0.0
                 : static_cast<double>(Correct) / static_cast<double>(Total);
  telemetry::MetricsRegistry::global()
      .gauge("eval.types.accuracy")
      .set(Result.Accuracy);
  return Result;
}

ExperimentResult core::runRuleBasedJava(const Corpus &Corpus,
                                        double TestFraction, uint64_t Seed) {
  ExperimentResult Result;
  Split S = splitByProject(Corpus, TestFraction, Seed);
  const StringInterner &SI = *Corpus.Interner;
  ml::AccuracyMeter Meter;
  ElementSelector Selector = selectorFor(Task::VariableNames);
  for (size_t I : S.Test) {
    const Tree &T = Corpus.Files[I].Tree;
    auto Predictions = baselines::ruleBasedJavaNames(T);
    for (ElementId E = 0; E < T.elements().size(); ++E) {
      const ElementInfo &Info = T.element(E);
      if (!Selector(Info) || T.occurrences(E).empty())
        continue;
      auto It = Predictions.find(E);
      Meter.add(It == Predictions.end() ? "" : It->second,
                SI.str(Info.Name));
    }
  }
  Result.Accuracy = Meter.accuracy();
  Result.Predictions = Meter.total();
  return Result;
}

ExperimentResult core::runSubtokenMethodNamer(const Corpus &Corpus,
                                              double TestFraction,
                                              uint64_t Seed) {
  ExperimentResult Result;
  Split S = splitByProject(Corpus, TestFraction, Seed);
  baselines::SubtokenMethodNamer Namer;
  std::vector<baselines::SubtokenMethodNamer::Example> TrainExamples;
  {
    telemetry::TraceScope TrainPhase("train");
    for (size_t I : S.Train) {
      auto Examples = baselines::methodExamples(Corpus.Files[I].Tree);
      TrainExamples.insert(TrainExamples.end(), Examples.begin(),
                           Examples.end());
    }
    Namer.train(TrainExamples);
    Result.TrainSeconds = TrainPhase.seconds();
  }

  ml::AccuracyMeter Meter;
  ml::SubTokenMeter SubMeter;
  for (size_t I : S.Test) {
    for (const auto &Ex : baselines::methodExamples(Corpus.Files[I].Tree)) {
      std::string Predicted = Namer.predict(Ex.BodyIdentifiers);
      Meter.add(Predicted, Ex.Name);
      SubMeter.add(Predicted, Ex.Name);
    }
  }
  Result.Accuracy = Meter.accuracy();
  Result.SubtokenF1 = SubMeter.f1();
  Result.Predictions = Meter.total();
  return Result;
}

ExperimentResult core::runStringTypeBaseline(const Corpus &Corpus,
                                             double TestFraction,
                                             uint64_t Seed) {
  ExperimentResult Result;
  Split S = splitByProject(Corpus, TestFraction, Seed);
  const StringInterner &SI = *Corpus.Interner;
  size_t Total = 0, Correct = 0;
  for (size_t I : S.Test) {
    const Tree &T = Corpus.Files[I].Tree;
    for (NodeId Target : T.typedNodes()) {
      if (!isApiTypeTarget(Corpus, T, Target))
        continue;
      ++Total;
      if (SI.str(T.typeOf(Target)) == "java.lang.String")
        ++Correct;
    }
  }
  Result.Predictions = Total;
  Result.Accuracy =
      Total == 0 ? 0.0
                 : static_cast<double>(Correct) / static_cast<double>(Total);
  return Result;
}

//===----------------------------------------------------------------------===//
// word2vec experiments
//===----------------------------------------------------------------------===//

namespace {

/// Per-element word2vec context strings under one encoding. Only contexts
/// whose other end is *known* (not itself a prediction target) are used,
/// in both training and testing.
std::vector<std::pair<ElementId, std::string>>
w2vContextsOf(const Tree &T, const ElementSelector &Selector,
              W2vContexts Kind, const ExtractionConfig &Extraction,
              PathTable &Table) {
  const StringInterner &SI = T.interner();
  std::vector<std::pair<ElementId, std::string>> Out;
  auto SelectedElement = [&](NodeId Leaf) -> ElementId {
    const Node &N = T.node(Leaf);
    if (N.Element == InvalidElement || !Selector(T.element(N.Element)))
      return InvalidElement;
    return N.Element;
  };

  if (Kind == W2vContexts::TokenStream) {
    const std::vector<NodeId> &Leaves = T.terminals();
    for (size_t I = 0; I < Leaves.size(); ++I) {
      ElementId E = SelectedElement(Leaves[I]);
      if (E == InvalidElement)
        continue;
      for (int Offset = -2; Offset <= 2; ++Offset) {
        if (Offset == 0)
          continue;
        long J = static_cast<long>(I) + Offset;
        if (J < 0 || J >= static_cast<long>(Leaves.size()))
          continue;
        NodeId Neighbor = Leaves[static_cast<size_t>(J)];
        // A neighbouring prediction target is itself unknown at test
        // time; its node kind is all the information available.
        std::string Value(SelectedElement(Neighbor) != InvalidElement
                              ? SI.str(T.node(Neighbor).Kind)
                              : SI.str(T.node(Neighbor).Value));
        // Original word2vec windows are position-free bags.
        Out.emplace_back(E, "tok|" + Value);
      }
    }
    return Out;
  }

  auto Contexts = extractPathContexts(T, Extraction, Table);
  for (const PathContext &Ctx : Contexts) {
    ElementId StartElem = SelectedElement(Ctx.Start);
    ElementId EndElem = Ctx.Semi ? InvalidElement : SelectedElement(Ctx.End);
    // Exactly one end must be a prediction target.
    if ((StartElem == InvalidElement) == (EndElem == InvalidElement))
      continue;
    ElementId E = StartElem != InvalidElement ? StartElem : EndElem;
    NodeId Other = StartElem != InvalidElement ? Ctx.End : Ctx.Start;
    std::string OtherValue(SI.str(endValue(T, Other)));
    std::string CtxString;
    if (Kind == W2vContexts::AstPaths) {
      const char *Dir = StartElem != InvalidElement ? ">" : "<";
      CtxString = Dir + Table.render(Ctx.Path, SI) + "|" + OtherValue;
    } else { // PathNeighbors: the same neighbours, path hidden.
      CtxString = "nb|" + OtherValue;
    }
    Out.emplace_back(E, CtxString);
  }
  return Out;
}

} // namespace

ExperimentResult
core::runW2vNameExperiment(const Corpus &Corpus,
                           const W2vExperimentOptions &Options) {
  ExperimentResult Result;
  Split S = splitByProject(Corpus, Options.TestFraction, Options.Seed);
  ElementSelector Selector = selectorFor(Task::VariableNames);
  const StringInterner &SI = *Corpus.Interner;
  PathTable Table;

  // Dense word/context vocabularies from the training split.
  std::unordered_map<Symbol, uint32_t> WordIds;
  std::vector<Symbol> Words;
  StringInterner CtxInterner;
  std::vector<w2v::Pair> Pairs;

  w2v::Sgns Model(Options.Sgns);
  {
    telemetry::TraceScope TrainPhase("train");
    {
      telemetry::TraceScope ExtractPhase("extract");
      for (size_t I : S.Train) {
        const Tree &T = Corpus.Files[I].Tree;
        auto Contexts = w2vContextsOf(T, Selector, Options.Contexts,
                                      Options.Extraction, Table);
        Result.TrainContexts += Contexts.size();
        for (const auto &[E, CtxString] : Contexts) {
          Symbol Name = T.element(E).Name;
          auto [It, Inserted] =
              WordIds.emplace(Name, static_cast<uint32_t>(Words.size()));
          if (Inserted)
            Words.push_back(Name);
          uint32_t Ctx = CtxInterner.intern(CtxString).index();
          Pairs.push_back({It->second, Ctx});
        }
      }
    }
    Model.train(Pairs, static_cast<uint32_t>(Words.size()),
                static_cast<uint32_t>(CtxInterner.size()));
    Result.TrainSeconds = TrainPhase.seconds();
  }
  Result.DistinctPaths = Table.size();

  // Evaluate: Eq. 4 over each test element's known contexts.
  telemetry::TraceScope EvalPhase("eval");
  telemetry::EventLog &Log = telemetry::EventLog::global();
  ml::AccuracyMeter Meter;
  for (size_t I : S.Test) {
    const Tree &T = Corpus.Files[I].Tree;
    auto Contexts = w2vContextsOf(T, Selector, Options.Contexts,
                                  Options.Extraction, Table);
    std::unordered_map<ElementId, std::vector<uint32_t>> ByElement;
    for (const auto &[E, CtxString] : Contexts) {
      Symbol Known = CtxInterner.lookup(CtxString);
      if (Known.isValid())
        ByElement[E].push_back(Known.index());
    }
    // Every selected element with occurrences is a prediction target,
    // whether or not any of its contexts were seen in training.
    for (ElementId E = 0; E < T.elements().size(); ++E) {
      if (!Selector(T.element(E)) || T.occurrences(E).empty())
        continue;
      std::string Gold(SI.str(T.element(E).Name));
      auto It = ByElement.find(E);
      if (It == ByElement.end()) {
        Meter.addWrong();
        continue;
      }
      uint32_t Predicted = Model.predict(It->second);
      std::string PredStr(Predicted == UINT32_MAX
                              ? std::string_view()
                              : SI.str(Words[Predicted]));
      Meter.add(PredStr, Gold);
      // Misprediction provenance for Eq. 4: each contributing context's
      // summed dot product. Contexts are strings here (not PathIds), so
      // the records carry a "context" field instead of "path".
      if (Log.enabled() && Predicted != UINT32_MAX && PredStr != Gold) {
        auto Contribs = Model.explain(Predicted, It->second, 0);
        double Score = 0;
        for (const auto &[Ctx, S] : Contribs)
          Score += S;
        using telemetry::jsonNumber;
        using telemetry::jsonString;
        Log.record("prediction",
                   {{"task", jsonString("w2v")},
                    {"gold", jsonString(Gold)},
                    {"predicted", jsonString(PredStr)},
                    {"correct", "false"},
                    {"score", jsonNumber(Score)},
                    {"paths", std::to_string(Contribs.size())}});
        if (Contribs.size() > 5)
          Contribs.resize(5);
        for (const auto &[Ctx, S] : Contribs)
          Log.record(
              "attribution",
              {{"task", jsonString("w2v")},
               {"predicted", jsonString(PredStr)},
               {"context",
                jsonString(CtxInterner.str(Symbol::fromIndex(Ctx)))},
               {"score", jsonNumber(S)}});
      }
    }
  }
  Result.Accuracy = Meter.accuracy();
  Result.Predictions = Meter.total();
  telemetry::MetricsRegistry::global()
      .gauge("eval.w2v.accuracy")
      .set(Result.Accuracy);
  return Result;
}

//===----------------------------------------------------------------------===//
// Prediction provenance
//===----------------------------------------------------------------------===//

void core::logPredictionProvenance(std::string_view Task,
                                   const StringInterner &SI,
                                   const PathTable &Table,
                                   std::string_view Gold,
                                   std::string_view Predicted,
                                   const crf::NodeExplanation &Ex) {
  telemetry::EventLog &Log = telemetry::EventLog::global();
  if (!Log.enabled())
    return;
  using telemetry::jsonNumber;
  using telemetry::jsonString;
  Log.record("prediction", {{"task", jsonString(Task)},
                            {"gold", jsonString(Gold)},
                            {"predicted", jsonString(Predicted)},
                            {"correct", Gold == Predicted ? "true" : "false"},
                            {"score", jsonNumber(Ex.Total)},
                            {"bias", jsonNumber(Ex.Bias)},
                            {"paths", std::to_string(Ex.Paths.size())}});
  for (const crf::Attribution &A : Ex.Paths)
    Log.record(
        "attribution",
        {{"task", jsonString(Task)},
         {"predicted", jsonString(Predicted)},
         {"path",
          jsonString(A.Path != InvalidPath ? Table.render(A.Path, SI)
                                           : std::string())},
         {"neighbor",
          jsonString(A.Neighbor.isValid() ? SI.str(A.Neighbor) : "")},
         {"unary", A.Unary ? "true" : "false"},
         {"score", jsonNumber(A.Score)},
         {"weight", jsonNumber(A.Weight)},
         {"vote", jsonNumber(A.Vote)}});
}

std::vector<ExplainedPrediction>
core::explainCrfPredictions(const Corpus &Corpus, Task Task,
                            const CrfExperimentOptions &Options, int TopK,
                            size_t MaxNodes) {
  Split S = splitByProject(Corpus, Options.TestFraction, Options.Seed);
  PathTable Table;
  CrfModel Model(Options.Crf);
  std::vector<CrfGraph> TestGraphs;

  if (Task == Task::FullTypes) {
    {
      telemetry::TraceScope TrainPhase("train");
      Model.train(buildTypeGraphs(Corpus, S.Train, Options, Table, nullptr));
    }
    TestGraphs = buildTypeGraphs(Corpus, S.Test, Options, Table, nullptr);
  } else {
    ElementSelector Selector = selectorFor(Task);
    Rng Sampler = Rng::forStream(Options.Seed, "downsample");
    auto Assemble = [&](const std::vector<size_t> &Indices, bool Sample) {
      auto Extracted = extractCorpusContexts(Corpus, Indices, Options, Table);
      std::vector<CrfGraph> Graphs;
      Graphs.reserve(Indices.size());
      for (size_t I = 0; I < Indices.size(); ++I) {
        const Tree &T = Corpus.Files[Indices[I]].Tree;
        if (Sample)
          downsample(Extracted[I].Contexts, Options.DownsampleP, Sampler);
        CrfGraph G = buildGraph(T, Extracted[I].Contexts, Selector);
        if (Options.TriContexts)
          addTriFactors(G, T, Extracted[I].Tris, Selector, *Corpus.Interner);
        Graphs.push_back(std::move(G));
      }
      return Graphs;
    };
    {
      telemetry::TraceScope TrainPhase("train");
      Model.train(Assemble(S.Train, /*Sample=*/true));
    }
    TestGraphs = Assemble(S.Test, /*Sample=*/false);
  }

  telemetry::TraceScope ExplainPhase("explain");
  const StringInterner &SI = *Corpus.Interner;
  const char *Tag = metricTaskTag(Task);
  std::vector<ExplainedPrediction> Out;
  std::vector<std::vector<Symbol>> Preds =
      Model.predictBatch(TestGraphs, Options.Threads);
  for (size_t I = 0; I < TestGraphs.size() && Out.size() < MaxNodes; ++I) {
    const CrfGraph &G = TestGraphs[I];
    for (uint32_t N : G.Unknowns) {
      if (Out.size() >= MaxNodes)
        break;
      Symbol Pred = Preds[I][N];
      if (!Pred.isValid())
        continue; // No candidates: nothing to attribute.
      crf::NodeExplanation Ex = Model.explain(G, N, Pred, Preds[I], TopK);
      ExplainedPrediction E;
      E.Gold = SI.str(G.Nodes[N].Gold);
      E.Predicted = SI.str(Pred);
      E.Correct = E.Gold == E.Predicted;
      E.Score = Ex.Total;
      E.Bias = Ex.Bias;
      E.Paths.reserve(Ex.Paths.size());
      for (const crf::Attribution &A : Ex.Paths) {
        ExplainedPrediction::PathLine L;
        L.Path = A.Path != InvalidPath ? Table.render(A.Path, SI) : "";
        L.Neighbor = A.Neighbor.isValid() ? SI.str(A.Neighbor) : "";
        L.Unary = A.Unary;
        L.Score = A.Score;
        L.Weight = A.Weight;
        L.Vote = A.Vote;
        E.Paths.push_back(std::move(L));
      }
      logPredictionProvenance(Tag, SI, Table, E.Gold, E.Predicted, Ex);
      Out.push_back(std::move(E));
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// TrainedNameModel
//===----------------------------------------------------------------------===//

TrainedNameModel::TrainedNameModel(const Corpus &Corpus, Task Task,
                                   const CrfExperimentOptions &Options)
    : TaskKind(Task), Options(Options), Model(Options.Crf) {
  telemetry::TraceScope TrainPhase("train");
  ElementSelector Selector = selectorFor(Task);
  std::vector<size_t> All(Corpus.Files.size());
  std::iota(All.begin(), All.end(), size_t(0));
  std::vector<CrfGraph> Graphs;
  Graphs.reserve(Corpus.Files.size());
  {
    telemetry::TraceScope ExtractPhase("extract");
    auto Extracted = extractCorpusContexts(Corpus, All, Options, Table);
    for (size_t I = 0; I < All.size(); ++I)
      Graphs.push_back(
          buildGraph(Corpus.Files[I].Tree, Extracted[I].Contexts, Selector));
  }
  Model.train(Graphs);
}

CrfGraph TrainedNameModel::buildFor(const Tree &Tree) const {
  auto Contexts = contextsFor(Tree, Options, Table);
  return buildGraph(Tree, Contexts, selectorFor(TaskKind));
}

std::map<ElementId, Symbol>
TrainedNameModel::predict(const Tree &Tree) const {
  CrfGraph G = buildFor(Tree);
  std::vector<Symbol> Pred = Model.predict(G);
  std::map<ElementId, Symbol> Out;
  for (uint32_t N : G.Unknowns)
    if (G.Nodes[N].Element != InvalidElement)
      Out[G.Nodes[N].Element] = Pred[N];
  return Out;
}

std::vector<std::pair<Symbol, double>>
TrainedNameModel::topKFor(const Tree &Tree, ElementId Element, int K) const {
  CrfGraph G = buildFor(Tree);
  std::vector<Symbol> Pred = Model.predict(G);
  for (uint32_t N : G.Unknowns)
    if (G.Nodes[N].Element == Element)
      return Model.topK(G, N, Pred, K);
  return {};
}
