//===- ContextsIO.cpp - On-disk extracted path-contexts ----------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ContextsIO.h"

#include "core/ModelIO.h"

#include "support/BinaryIO.h"
#include "support/Telemetry.h"

#include <istream>
#include <limits>
#include <ostream>
#include <unordered_map>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using namespace pigeon::crf;
using namespace pigeon::paths;

namespace {

constexpr uint32_t ContextsMagic = 0x50494743; // "PIGC"
constexpr uint32_t ContextsVersion = 1;

/// Upper bound on any single element/context/file count read from disk;
/// corrupted counts fail fast instead of allocating terabytes.
constexpr uint64_t MaxCount = 1u << 30;

template <typename T> void writePod(std::ostream &OS, const T &Value) {
  OS.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

template <typename T> bool readPod(std::istream &IS, T &Value) {
  IS.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return static_cast<bool>(IS);
}

/// ElementIds are encoded off-by-one so the InvalidElement sentinel
/// becomes the single-byte varint 0.
void writeElemId(std::ostream &OS, ElementId Id) {
  io::writeVarint(OS, static_cast<uint32_t>(Id + 1));
}

bool readElemId(std::istream &IS, ElementId &Id, size_t NumElements) {
  uint64_t Raw = 0;
  if (!io::readVarint(IS, Raw))
    return false;
  if (Raw == 0) {
    Id = InvalidElement;
    return true;
  }
  if (Raw > NumElements)
    return false;
  Id = static_cast<ElementId>(Raw - 1);
  return true;
}

bool readSymbol(std::istream &IS, Symbol &Out, size_t InternerSize) {
  uint64_t Idx = 0;
  if (!io::readVarint(IS, Idx) || Idx >= InternerSize)
    return false;
  Out = Symbol::fromIndex(static_cast<uint32_t>(Idx));
  return true;
}

bool readPathId(std::istream &IS, PathId &Out, size_t TableSize) {
  uint64_t Id = 0;
  if (!io::readVarint(IS, Id) || Id < 1 || Id > TableSize)
    return false;
  Out = static_cast<PathId>(Id);
  return true;
}

} // namespace

ContextsArtifact
core::buildContextsArtifact(Corpus &Corpus, Task TaskKind,
                            const CrfExperimentOptions &Options) {
  ContextsArtifact Art;
  Art.Lang = Corpus.Lang;
  Art.TaskKind = TaskKind;
  Art.Extraction = Options.Extraction;
  Art.Repr = Options.Repr;
  Art.TriContexts = Options.TriContexts;

  std::vector<size_t> Indices(Corpus.Files.size());
  for (size_t I = 0; I < Indices.size(); ++I)
    Indices[I] = I;
  auto Extracted = extractCorpusContexts(Corpus, Indices, Options, Art.Table);

  telemetry::TraceScope Phase("records");
  Art.Files.resize(Corpus.Files.size());
  for (size_t F = 0; F < Corpus.Files.size(); ++F) {
    const ParsedFile &PF = Corpus.Files[F];
    const Tree &T = PF.Tree;
    FileRecord &Rec = Art.Files[F];
    Rec.Project = PF.Project;
    Rec.FileName = PF.FileName;
    Rec.Elements.assign(T.elements().begin(), T.elements().end());
    Rec.Contexts.reserve(Extracted[F].Contexts.size());
    for (const PathContext &Ctx : Extracted[F].Contexts) {
      ContextRecord R;
      R.Path = Ctx.Path;
      const Node &Start = T.node(Ctx.Start);
      R.StartElem = Start.Element;
      R.StartValue = Start.Value;
      const Node &End = T.node(Ctx.End);
      R.Semi = Ctx.Semi;
      if (Ctx.Semi) {
        // The graph labels a semi-path's ancestor end by its kind.
        R.EndValue = End.Kind;
      } else {
        R.EndElem = End.Element;
        R.EndValue = End.Value;
      }
      Rec.Contexts.push_back(R);
    }
    Rec.Tris.reserve(Extracted[F].Tris.size());
    for (const TriContext &Tri : Extracted[F].Tris) {
      TriRecord R;
      R.Path = Tri.Path;
      NodeId Ends[3] = {Tri.A, Tri.B, Tri.C};
      for (int I = 0; I < 3; ++I) {
        R.Elem[I] = T.node(Ends[I]).Element;
        R.Value[I] = T.node(Ends[I]).Value;
      }
      Rec.Tris.push_back(R);
    }
  }
  // The artifact owns the symbol space its records and paths refer to.
  Art.Interner = std::move(Corpus.Interner);
  return Art;
}

void core::saveContexts(std::ostream &OS, const ContextsArtifact &Art) {
  writePod(OS, ContextsMagic);
  writePod(OS, ContextsVersion);
  writePod(OS, static_cast<uint8_t>(Art.Lang));
  writePod(OS, static_cast<uint8_t>(Art.TaskKind));
  writePod(OS, static_cast<uint8_t>(Art.Repr));
  writePod(OS, static_cast<uint8_t>(Art.TriContexts));
  writePod(OS, static_cast<int32_t>(Art.Extraction.MaxLength));
  writePod(OS, static_cast<int32_t>(Art.Extraction.MaxWidth));
  writePod(OS, static_cast<uint8_t>(Art.Extraction.Abst));
  writePod(OS, static_cast<uint8_t>(Art.Extraction.IncludeSemiPaths));

  io::writeVarint(OS, Art.Interner->size());
  for (uint32_t I = 1; I < Art.Interner->size(); ++I)
    io::writeString(OS, Art.Interner->str(Symbol::fromIndex(I)));

  io::writeVarint(OS, Art.Table.size());
  for (uint32_t I = 1; I <= Art.Table.size(); ++I)
    io::writeBytes(OS, Art.Table.bytes(I));

  io::writeVarint(OS, Art.Files.size());
  for (const FileRecord &Rec : Art.Files) {
    io::writeString(OS, Rec.Project);
    io::writeString(OS, Rec.FileName);
    io::writeVarint(OS, Rec.Elements.size());
    for (const ElementInfo &E : Rec.Elements) {
      io::writeVarint(OS, E.Name.index());
      writePod(OS, static_cast<uint8_t>(E.Kind));
      writePod(OS, static_cast<uint8_t>(E.Predictable));
    }
    io::writeVarint(OS, Rec.Contexts.size());
    for (const ContextRecord &C : Rec.Contexts) {
      io::writeVarint(OS, C.Path);
      writeElemId(OS, C.StartElem);
      io::writeVarint(OS, C.StartValue.index());
      writeElemId(OS, C.EndElem);
      io::writeVarint(OS, C.EndValue.index());
      writePod(OS, static_cast<uint8_t>(C.Semi));
    }
    io::writeVarint(OS, Rec.Tris.size());
    for (const TriRecord &T : Rec.Tris) {
      io::writeVarint(OS, T.Path);
      for (int I = 0; I < 3; ++I) {
        writeElemId(OS, T.Elem[I]);
        io::writeVarint(OS, T.Value[I].index());
      }
    }
  }
}

std::unique_ptr<ContextsArtifact> core::loadContexts(std::istream &IS) {
  uint32_t Magic = 0, Version = 0;
  if (!readPod(IS, Magic) || Magic != ContextsMagic)
    return nullptr;
  if (!readPod(IS, Version) || Version != ContextsVersion)
    return nullptr;
  auto Art = std::make_unique<ContextsArtifact>();
  Art->Interner = std::make_unique<StringInterner>();
  uint8_t LangByte = 0, TaskByte = 0, ReprByte = 0, TriByte = 0;
  uint8_t AbstByte = 0, SemiByte = 0;
  int32_t Length = 0, Width = 0;
  if (!readPod(IS, LangByte) || !readPod(IS, TaskByte) ||
      !readPod(IS, ReprByte) || !readPod(IS, TriByte) ||
      !readPod(IS, Length) || !readPod(IS, Width) ||
      !readPod(IS, AbstByte) || !readPod(IS, SemiByte))
    return nullptr;
  Art->Lang = static_cast<lang::Language>(LangByte);
  Art->TaskKind = static_cast<Task>(TaskByte);
  Art->Repr = static_cast<Representation>(ReprByte);
  Art->TriContexts = TriByte != 0;
  Art->Extraction.MaxLength = Length;
  Art->Extraction.MaxWidth = Width;
  Art->Extraction.Abst = static_cast<Abstraction>(AbstByte);
  Art->Extraction.IncludeSemiPaths = SemiByte != 0;

  uint64_t InternerSize = 0;
  if (!io::readVarint(IS, InternerSize) || InternerSize < 1 ||
      InternerSize > MaxCount)
    return nullptr;
  std::string Str;
  for (uint64_t I = 1; I < InternerSize; ++I) {
    if (!io::readString(IS, Str))
      return nullptr;
    if (Art->Interner->intern(Str).index() != I)
      return nullptr; // Duplicate string: not a saved interner.
  }

  uint64_t TableSize = 0;
  if (!io::readVarint(IS, TableSize) || TableSize > MaxCount)
    return nullptr;
  std::vector<uint8_t> Bytes;
  for (uint64_t I = 1; I <= TableSize; ++I) {
    if (!io::readBytes(IS, Bytes))
      return nullptr;
    if (Art->Table.intern(Bytes) != I)
      return nullptr; // Duplicate path bytes: not a saved table.
  }

  uint64_t NumFiles = 0;
  if (!io::readVarint(IS, NumFiles) || NumFiles > MaxCount)
    return nullptr;
  Art->Files.resize(NumFiles);
  for (FileRecord &Rec : Art->Files) {
    if (!io::readString(IS, Rec.Project) ||
        !io::readString(IS, Rec.FileName))
      return nullptr;
    uint64_t NumElements = 0;
    if (!io::readVarint(IS, NumElements) || NumElements > MaxCount)
      return nullptr;
    Rec.Elements.resize(NumElements);
    for (ElementInfo &E : Rec.Elements) {
      uint8_t Kind = 0, Predictable = 0;
      if (!readSymbol(IS, E.Name, InternerSize) || !readPod(IS, Kind) ||
          !readPod(IS, Predictable))
        return nullptr;
      E.Kind = static_cast<ElementKind>(Kind);
      E.Predictable = Predictable != 0;
    }
    uint64_t NumContexts = 0;
    if (!io::readVarint(IS, NumContexts) || NumContexts > MaxCount)
      return nullptr;
    Rec.Contexts.resize(NumContexts);
    for (ContextRecord &C : Rec.Contexts) {
      uint8_t Semi = 0;
      if (!readPathId(IS, C.Path, TableSize) ||
          !readElemId(IS, C.StartElem, NumElements) ||
          !readSymbol(IS, C.StartValue, InternerSize) ||
          !readElemId(IS, C.EndElem, NumElements) ||
          !readSymbol(IS, C.EndValue, InternerSize) || !readPod(IS, Semi))
        return nullptr;
      C.Semi = Semi != 0;
    }
    uint64_t NumTris = 0;
    if (!io::readVarint(IS, NumTris) || NumTris > MaxCount)
      return nullptr;
    Rec.Tris.resize(NumTris);
    for (TriRecord &T : Rec.Tris) {
      if (!readPathId(IS, T.Path, TableSize))
        return nullptr;
      for (int I = 0; I < 3; ++I)
        if (!readElemId(IS, T.Elem[I], NumElements) ||
            !readSymbol(IS, T.Value[I], InternerSize))
          return nullptr;
    }
  }
  return Art;
}

//===----------------------------------------------------------------------===//
// Record-based graph assembly
//===----------------------------------------------------------------------===//

CrfGraph core::buildGraphFromRecord(const FileRecord &File,
                                    const ElementSelector &Selector) {
  // Mirrors crf::buildGraph / GraphAssembler exactly: same node-creation
  // order, same merging keys, same factor rules — so a record round-trip
  // yields a graph identical to tree-based assembly.
  CrfGraph G;
  std::unordered_map<ElementId, uint32_t> ElementNodes;
  std::unordered_map<Symbol, uint32_t> ValueNodes;
  auto ElementNode = [&](ElementId E) {
    auto It = ElementNodes.find(E);
    if (It != ElementNodes.end())
      return It->second;
    const ElementInfo &Info = File.Elements[E];
    uint32_t Id = static_cast<uint32_t>(G.Nodes.size());
    bool Unknown = Selector(Info);
    G.Nodes.push_back({Info.Name, /*Known=*/!Unknown, E});
    if (Unknown)
      G.Unknowns.push_back(Id);
    ElementNodes.emplace(E, Id);
    return Id;
  };
  auto KnownNode = [&](Symbol Value) {
    auto It = ValueNodes.find(Value);
    if (It != ValueNodes.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(G.Nodes.size());
    G.Nodes.push_back({Value, /*Known=*/true, InvalidElement});
    ValueNodes.emplace(Value, Id);
    return Id;
  };

  for (const ContextRecord &Ctx : File.Contexts) {
    uint32_t A = Ctx.StartElem != InvalidElement ? ElementNode(Ctx.StartElem)
                                                 : KnownNode(Ctx.StartValue);
    uint32_t B;
    if (Ctx.Semi || Ctx.EndElem == InvalidElement)
      B = KnownNode(Ctx.EndValue);
    else
      B = ElementNode(Ctx.EndElem);
    bool AKnown = G.Nodes[A].Known;
    bool BKnown = G.Nodes[B].Known;
    if (AKnown && BKnown)
      continue; // Constant factor: no influence on any prediction.
    if (A == B) {
      G.Factors.push_back({A, A, Ctx.Path, /*Unary=*/true});
      continue;
    }
    G.Factors.push_back({A, B, Ctx.Path, /*Unary=*/false});
  }
  return G;
}

void core::addTriFactorsFromRecord(CrfGraph &Graph, const FileRecord &File,
                                   const ElementSelector &Selector,
                                   StringInterner &Interner) {
  // Mirrors crf::addTriFactors: reuse the graph's existing node set.
  std::unordered_map<ElementId, uint32_t> ElementNodes;
  std::unordered_map<Symbol, uint32_t> ValueNodes;
  for (uint32_t N = 0; N < Graph.Nodes.size(); ++N) {
    const GraphNode &Node = Graph.Nodes[N];
    if (Node.Element != InvalidElement)
      ElementNodes.emplace(Node.Element, N);
    else
      ValueNodes.emplace(Node.Gold, N);
  }
  auto KnownNode = [&](Symbol Value) {
    auto It = ValueNodes.find(Value);
    if (It != ValueNodes.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Graph.Nodes.size());
    Graph.Nodes.push_back({Value, /*Known=*/true, InvalidElement});
    ValueNodes.emplace(Value, Id);
    return Id;
  };
  auto UnknownOf = [&](ElementId Elem) -> uint32_t {
    if (Elem == InvalidElement || !Selector(File.Elements[Elem]))
      return UINT32_MAX;
    auto It = ElementNodes.find(Elem);
    return It == ElementNodes.end() ? UINT32_MAX : It->second;
  };

  for (const TriRecord &Ctx : File.Tris) {
    uint32_t Unknown = UINT32_MAX;
    int UnknownCount = 0;
    for (int I = 0; I < 3; ++I) {
      uint32_t U = UnknownOf(Ctx.Elem[I]);
      if (U != UINT32_MAX) {
        Unknown = U;
        ++UnknownCount;
      }
    }
    if (UnknownCount != 1)
      continue;
    // Composite label of the two known ends, in source order.
    std::string Composite;
    for (int I = 0; I < 3; ++I) {
      if (UnknownOf(Ctx.Elem[I]) != UINT32_MAX)
        continue;
      if (!Composite.empty())
        Composite += '+';
      Composite += Interner.str(Ctx.Value[I]);
    }
    uint32_t Known = KnownNode(Interner.intern(Composite));
    // Order: unknown on the A side if it is the triple's first end.
    bool UnknownFirst = UnknownOf(Ctx.Elem[0]) != UINT32_MAX;
    if (UnknownFirst)
      Graph.Factors.push_back({Unknown, Known, Ctx.Path, /*Unary=*/false});
    else
      Graph.Factors.push_back({Known, Unknown, Ctx.Path, /*Unary=*/false});
  }
}

bool core::rebaseArtifact(ContextsArtifact &Art, StringInterner &TargetSI,
                          PathTable &TargetTable) {
  // Symbol map: intern every artifact string into the target space, in
  // index order (so a target that equals the artifact space maps to
  // itself and new strings append after the existing ones).
  std::vector<Symbol> SymMap(Art.Interner->size());
  for (uint32_t I = 1; I < Art.Interner->size(); ++I)
    SymMap[I] = TargetSI.intern(Art.Interner->str(Symbol::fromIndex(I)));

  std::vector<PathId> PathMap(Art.Table.size() + 1, InvalidPath);
  std::vector<uint8_t> Buf;
  for (PathId Id = 1; Id <= Art.Table.size(); ++Id) {
    if (!remapPackedPath(Art.Table.bytes(Id), SymMap, Buf))
      return false;
    PathMap[Id] = TargetTable.intern(Buf);
  }

  auto MapSym = [&](Symbol &S) {
    if (S.index() >= SymMap.size())
      return false;
    S = SymMap[S.index()];
    return true;
  };
  for (FileRecord &Rec : Art.Files) {
    for (ElementInfo &E : Rec.Elements)
      if (!MapSym(E.Name))
        return false;
    for (ContextRecord &C : Rec.Contexts) {
      if (C.Path == InvalidPath || C.Path > Art.Table.size())
        return false;
      C.Path = PathMap[C.Path];
      if (!MapSym(C.StartValue) || !MapSym(C.EndValue))
        return false;
    }
    for (TriRecord &T : Rec.Tris) {
      if (T.Path == InvalidPath || T.Path > Art.Table.size())
        return false;
      T.Path = PathMap[T.Path];
      for (int I = 0; I < 3; ++I)
        if (!MapSym(T.Value[I]))
          return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Evaluation over a rebased artifact
//===----------------------------------------------------------------------===//

double EvalStats::accuracy() const {
  if (Total == 0)
    return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(Correct) / static_cast<double>(Total);
}

EvalStats core::evalArtifact(ModelBundle &Bundle,
                             const ContextsArtifact &Artifact) {
  ElementSelector Selector = selectorFor(Artifact.TaskKind);
  std::vector<CrfGraph> Graphs;
  Graphs.reserve(Artifact.Files.size());
  {
    telemetry::TraceScope Phase("assemble");
    for (const FileRecord &Rec : Artifact.Files) {
      CrfGraph G = buildGraphFromRecord(Rec, Selector);
      if (Artifact.TriContexts)
        addTriFactorsFromRecord(G, Rec, Selector, *Bundle.Interner);
      Graphs.push_back(std::move(G));
    }
  }

  telemetry::TraceScope Phase("eval");
  std::vector<std::vector<Symbol>> Preds = Bundle.Model.predictBatch(Graphs);
  EvalStats Stats;
  const StringInterner &SI = *Bundle.Interner;
  for (size_t I = 0; I < Graphs.size(); ++I) {
    for (uint32_t N : Graphs[I].Unknowns) {
      ++Stats.Total;
      if (Preds[I][N].isValid() &&
          SI.str(Preds[I][N]) == SI.str(Graphs[I].Nodes[N].Gold))
        ++Stats.Correct;
    }
  }
  return Stats;
}
