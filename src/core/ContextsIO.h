//===- ContextsIO.h - On-disk extracted path-contexts -----------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extracted-contexts artifact (format `pigeon.contexts.v1`): every
/// piece of a corpus the learners consume after extraction — interner,
/// packed path table, and per-file context records — decoupled from the
/// trees that produced it. `pigeon extract --out` writes one; `pigeon
/// train/eval --from-contexts` stream it back, so the expensive
/// parse+extract front half of the pipeline runs once per corpus instead
/// of once per training run.
///
/// A context record resolves each path-context end to exactly what CRF
/// graph assembly reads off the tree — the element id (if any), the end's
/// value symbol, and for semi-paths the ancestor kind — so
/// buildGraphFromRecord() reproduces crf::buildGraph() node for node and
/// factor for factor without an AST. The same corpus therefore yields
/// bit-identical models through either route, at any thread count (the
/// determinism contract extended to disk).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_CORE_CONTEXTSIO_H
#define PIGEON_CORE_CONTEXTSIO_H

#include "core/Experiments.h"
#include "core/Pipeline.h"
#include "ml/crf/Crf.h"
#include "paths/Paths.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace pigeon {
namespace core {

struct ModelBundle;

/// One path-context with its ends resolved to graph-assembly inputs.
/// For semi-paths EndElem is invalid and EndValue is the ancestor's
/// *kind* symbol (the known pseudo-node label); otherwise EndValue is the
/// terminal's value symbol, used only when the end has no element.
struct ContextRecord {
  paths::PathId Path = paths::InvalidPath;
  ast::ElementId StartElem = ast::InvalidElement;
  Symbol StartValue;
  ast::ElementId EndElem = ast::InvalidElement;
  Symbol EndValue;
  bool Semi = false;
};

/// One 3-wise context: the path plus each end's element and value.
struct TriRecord {
  paths::PathId Path = paths::InvalidPath;
  ast::ElementId Elem[3] = {ast::InvalidElement, ast::InvalidElement,
                            ast::InvalidElement};
  Symbol Value[3];
};

/// All contexts of one corpus file, with the element table graph
/// assembly selects unknowns from.
struct FileRecord {
  std::string Project;
  std::string FileName;
  std::vector<ast::ElementInfo> Elements;
  std::vector<ContextRecord> Contexts;
  std::vector<TriRecord> Tris;
};

/// A complete extracted corpus: the `pigeon.contexts.v1` artifact.
struct ContextsArtifact {
  lang::Language Lang = lang::Language::JavaScript;
  Task TaskKind = Task::VariableNames;
  paths::ExtractionConfig Extraction;
  Representation Repr = Representation::AstPaths;
  bool TriContexts = false;
  std::unique_ptr<StringInterner> Interner;
  paths::PathTable Table;
  std::vector<FileRecord> Files;
};

/// Extracts every file of \p Corpus (sharded over Options.Threads, same
/// bit-identical merge as extractCorpusContexts) and resolves the results
/// into records. CONSUMES the corpus interner: the artifact takes
/// ownership, so \p Corpus must not be used for symbol lookups afterwards
/// (its trees stay readable structurally).
ContextsArtifact buildContextsArtifact(Corpus &Corpus, Task TaskKind,
                                       const CrfExperimentOptions &Options);

/// Writes \p Artifact in the versioned `pigeon.contexts.v1` binary format.
void saveContexts(std::ostream &OS, const ContextsArtifact &Artifact);

/// Restores an artifact written by saveContexts(). \returns nullptr on a
/// malformed or version-mismatched stream.
std::unique_ptr<ContextsArtifact> loadContexts(std::istream &IS);

/// crf::buildGraph() over a record instead of a tree: same node merging
/// (one unknown per selected element, known nodes by value / ancestor
/// kind), same known-known skip, same unary-factor rule, same order.
crf::CrfGraph buildGraphFromRecord(const FileRecord &File,
                                   const crf::ElementSelector &Selector);

/// crf::addTriFactors() over a record: exactly-one-unknown triples become
/// factors against a composite known node, whose '+'-joined label is
/// interned into \p Interner (the record's symbol space).
void addTriFactorsFromRecord(crf::CrfGraph &Graph, const FileRecord &File,
                             const crf::ElementSelector &Selector,
                             StringInterner &Interner);

/// Accuracy tally of one evaluation run. Total == 0 means the corpus had
/// nothing to evaluate (no predictable elements) — callers must surface
/// that explicitly instead of presenting a 0-of-0 run as a real score
/// (the CLI prints an "n=0, no elements" note and exits nonzero; a
/// previous version fed the degenerate 0.0 straight into the trajectory).
struct EvalStats {
  size_t Total = 0;
  size_t Correct = 0;
  /// Correct / Total; NaN when Total == 0 — there is no meaningful
  /// accuracy of nothing (mirrors Histogram::percentile's empty
  /// contract; NaN serializes as `null`, never as a fake score).
  double accuracy() const;
};

/// Scores \p Bundle on \p Artifact, which must already be rebased onto
/// the bundle's interner and path table (see rebaseArtifact): assembles
/// the CRF graphs — tri factors included when the artifact carries them —
/// batch-predicts sharded over the process-default workers, and tallies
/// unknown-element accuracy. Takes the bundle mutably because composite
/// tri-factor labels intern into its symbol space.
EvalStats evalArtifact(ModelBundle &Bundle, const ContextsArtifact &Artifact);

/// Rebases \p Artifact onto an existing symbol/path space (a loaded model
/// bundle's): interns every artifact string into \p TargetSI, rewrites
/// every record symbol through the resulting map, and re-interns every
/// packed path into \p TargetTable (re-encoding symbol payloads via
/// remapPackedPath). After this the artifact's records speak the target
/// space directly. \returns false if the artifact references symbols or
/// paths out of range (corrupt artifact).
bool rebaseArtifact(ContextsArtifact &Artifact, StringInterner &TargetSI,
                    paths::PathTable &TargetTable);

} // namespace core
} // namespace pigeon

#endif // PIGEON_CORE_CONTEXTSIO_H
