//===- ModelIO.cpp - Whole-model persistence ---------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ModelIO.h"

#include "support/BinaryIO.h"

#include <istream>
#include <ostream>
#include <sstream>

using namespace pigeon;
using namespace pigeon::core;

namespace {

constexpr uint32_t BundleMagic = 0x50494742; // "PIGB"
// Version 2: the path table is serialized as packed path bytes (tag +
// varint symbol indices) instead of rendered strings, and the interner
// and table use the shared varint/length-prefixed codecs (BinaryIO).
// Version 3 is the mmap format — same magic, different loader
// (MappedBundle.cpp); this stream reader rejects it with a pointer to
// the mapped route.
constexpr uint32_t BundleVersion = 2;

template <typename T> void writePod(std::ostream &OS, const T &Value) {
  OS.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

template <typename T> bool readPod(std::istream &IS, T &Value) {
  IS.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return static_cast<bool>(IS);
}

std::string hex32(uint32_t Value) {
  std::ostringstream OS;
  OS << "0x" << std::hex << Value;
  return OS.str();
}

void setDiag(LoadDiag *Diag, uint64_t Offset, std::string Error) {
  if (!Diag)
    return;
  Diag->Offset = Offset;
  Diag->Error = std::move(Error);
}

/// Current read position, for failure offsets. A failed stream reports
/// tellg() == -1; fall back to the last known-good offset.
uint64_t posOf(std::istream &IS, uint64_t Fallback) {
  std::streampos P = IS.tellg();
  return P < 0 ? Fallback : static_cast<uint64_t>(P);
}

/// Interners assign ids densely in intern order, so (re)interning the
/// strings in index order reproduces every id.
void writeInterner(std::ostream &OS, const StringInterner &Interner) {
  // Index 0 is the reserved invalid slot; indices 1.. are real strings.
  io::writeVarint(OS, Interner.size());
  for (uint32_t I = 1; I < Interner.size(); ++I)
    io::writeString(OS, Interner.str(Symbol::fromIndex(I)));
}

bool readInterner(std::istream &IS, StringInterner &Interner,
                  LoadDiag *Diag) {
  uint64_t Start = posOf(IS, 0);
  uint64_t Size = 0;
  if (!io::readVarint(IS, Size)) {
    setDiag(Diag, Start, "interner: truncated string count");
    return false;
  }
  std::string Str;
  for (uint64_t I = 1; I < Size; ++I) {
    uint64_t At = posOf(IS, Start);
    if (!io::readString(IS, Str)) {
      setDiag(Diag, At, "interner: truncated string " + std::to_string(I) +
                            " of " + std::to_string(Size - 1));
      return false;
    }
    Symbol S = Interner.intern(Str);
    if (S.index() != I) {
      // Duplicate string: not a saved interner.
      setDiag(Diag, At,
              "interner: string " + std::to_string(I) +
                  " re-interned to id " + std::to_string(S.index()) +
                  " (duplicate — not a saved interner)");
      return false;
    }
  }
  return true;
}

/// The table stores packed bytes; persisting them verbatim keeps the
/// saved ids meaningful without ever rendering a path string.
void writePathTable(std::ostream &OS, const paths::PathTable &Table) {
  io::writeVarint(OS, Table.size());
  for (uint32_t I = 1; I <= Table.size(); ++I)
    io::writeBytes(OS, Table.bytes(I));
}

bool readPathTable(std::istream &IS, paths::PathTable &Table,
                   LoadDiag *Diag) {
  uint64_t Start = posOf(IS, 0);
  uint64_t Size = 0;
  if (!io::readVarint(IS, Size)) {
    setDiag(Diag, Start, "path table: truncated path count");
    return false;
  }
  std::vector<uint8_t> Bytes;
  for (uint64_t I = 1; I <= Size; ++I) {
    uint64_t At = posOf(IS, Start);
    if (!io::readBytes(IS, Bytes)) {
      setDiag(Diag, At, "path table: truncated path " + std::to_string(I) +
                            " of " + std::to_string(Size));
      return false;
    }
    if (Table.intern(Bytes) != I) {
      // Duplicate path bytes: not a saved table.
      setDiag(Diag, At, "path table: path " + std::to_string(I) +
                            " re-interned to a different id (duplicate "
                            "bytes — not a saved table)");
      return false;
    }
  }
  return true;
}

} // namespace

void core::saveModel(std::ostream &OS, const ModelBundle &Bundle) {
  writePod(OS, BundleMagic);
  writePod(OS, BundleVersion);
  writePod(OS, static_cast<uint8_t>(Bundle.Lang));
  writePod(OS, static_cast<uint8_t>(Bundle.TaskKind));
  writePod(OS, static_cast<int32_t>(Bundle.Extraction.MaxLength));
  writePod(OS, static_cast<int32_t>(Bundle.Extraction.MaxWidth));
  writePod(OS, static_cast<uint8_t>(Bundle.Extraction.Abst));
  writePod(OS, static_cast<uint8_t>(Bundle.Extraction.IncludeSemiPaths));
  writeInterner(OS, *Bundle.Interner);
  writePathTable(OS, Bundle.Table);
  Bundle.Model.save(OS);
}

std::unique_ptr<ModelBundle> core::loadModel(std::istream &IS,
                                             LoadDiag *Diag) {
  uint32_t Magic = 0, Version = 0;
  if (!readPod(IS, Magic)) {
    setDiag(Diag, 0, "truncated before bundle magic: expected " +
                         hex32(BundleMagic) + " (\"PIGB\")");
    return nullptr;
  }
  if (Magic != BundleMagic) {
    setDiag(Diag, 0, "bad bundle magic: expected " + hex32(BundleMagic) +
                         " (\"PIGB\"), found " + hex32(Magic));
    return nullptr;
  }
  if (!readPod(IS, Version)) {
    setDiag(Diag, 4, "truncated before bundle version: expected " +
                         std::to_string(BundleVersion));
    return nullptr;
  }
  if (Version != BundleVersion) {
    std::string Hint =
        Version == 3
            ? " (a v3 mmap bundle — load it with loadModelFile / "
              "openMappedBundle, or convert with `pigeon migrate-bundle`)"
            : "";
    setDiag(Diag, 4, "bundle version mismatch: expected " +
                         std::to_string(BundleVersion) + ", found " +
                         std::to_string(Version) + Hint);
    return nullptr;
  }
  auto Bundle = std::make_unique<ModelBundle>();
  Bundle->Interner = std::make_unique<StringInterner>();
  uint8_t LangByte = 0, TaskByte = 0, AbstByte = 0, Semi = 0;
  int32_t Length = 0, Width = 0;
  if (!readPod(IS, LangByte) || !readPod(IS, TaskByte) ||
      !readPod(IS, Length) ||
      !readPod(IS, Width) || !readPod(IS, AbstByte) || !readPod(IS, Semi)) {
    setDiag(Diag, 8, "truncated bundle header (lang/task/extraction)");
    return nullptr;
  }
  Bundle->Lang = static_cast<lang::Language>(LangByte);
  Bundle->TaskKind = static_cast<Task>(TaskByte);
  Bundle->Extraction.MaxLength = Length;
  Bundle->Extraction.MaxWidth = Width;
  Bundle->Extraction.Abst = static_cast<paths::Abstraction>(AbstByte);
  Bundle->Extraction.IncludeSemiPaths = Semi != 0;
  if (!readInterner(IS, *Bundle->Interner, Diag))
    return nullptr;
  if (!readPathTable(IS, Bundle->Table, Diag))
    return nullptr;
  if (!Bundle->Model.load(IS)) {
    setDiag(Diag, posOf(IS, 0), "CRF section: malformed or truncated");
    return nullptr;
  }
  return Bundle;
}
