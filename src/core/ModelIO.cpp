//===- ModelIO.cpp - Whole-model persistence ---------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ModelIO.h"

#include "support/BinaryIO.h"

#include <istream>
#include <ostream>

using namespace pigeon;
using namespace pigeon::core;

namespace {

constexpr uint32_t BundleMagic = 0x50494742; // "PIGB"
// Version 2: the path table is serialized as packed path bytes (tag +
// varint symbol indices) instead of rendered strings, and the interner
// and table use the shared varint/length-prefixed codecs (BinaryIO).
constexpr uint32_t BundleVersion = 2;

template <typename T> void writePod(std::ostream &OS, const T &Value) {
  OS.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

template <typename T> bool readPod(std::istream &IS, T &Value) {
  IS.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return static_cast<bool>(IS);
}

/// Interners assign ids densely in intern order, so (re)interning the
/// strings in index order reproduces every id.
void writeInterner(std::ostream &OS, const StringInterner &Interner) {
  // Index 0 is the reserved invalid slot; indices 1.. are real strings.
  io::writeVarint(OS, Interner.size());
  for (uint32_t I = 1; I < Interner.size(); ++I)
    io::writeString(OS, Interner.str(Symbol::fromIndex(I)));
}

bool readInterner(std::istream &IS, StringInterner &Interner) {
  uint64_t Size = 0;
  if (!io::readVarint(IS, Size))
    return false;
  std::string Str;
  for (uint64_t I = 1; I < Size; ++I) {
    if (!io::readString(IS, Str))
      return false;
    Symbol S = Interner.intern(Str);
    if (S.index() != I)
      return false; // Duplicate string: not a saved interner.
  }
  return true;
}

/// The table stores packed bytes; persisting them verbatim keeps the
/// saved ids meaningful without ever rendering a path string.
void writePathTable(std::ostream &OS, const paths::PathTable &Table) {
  io::writeVarint(OS, Table.size());
  for (uint32_t I = 1; I <= Table.size(); ++I)
    io::writeBytes(OS, Table.bytes(I));
}

bool readPathTable(std::istream &IS, paths::PathTable &Table) {
  uint64_t Size = 0;
  if (!io::readVarint(IS, Size))
    return false;
  std::vector<uint8_t> Bytes;
  for (uint64_t I = 1; I <= Size; ++I) {
    if (!io::readBytes(IS, Bytes))
      return false;
    if (Table.intern(Bytes) != I)
      return false; // Duplicate path bytes: not a saved table.
  }
  return true;
}

} // namespace

void core::saveModel(std::ostream &OS, const ModelBundle &Bundle) {
  writePod(OS, BundleMagic);
  writePod(OS, BundleVersion);
  writePod(OS, static_cast<uint8_t>(Bundle.Lang));
  writePod(OS, static_cast<uint8_t>(Bundle.TaskKind));
  writePod(OS, static_cast<int32_t>(Bundle.Extraction.MaxLength));
  writePod(OS, static_cast<int32_t>(Bundle.Extraction.MaxWidth));
  writePod(OS, static_cast<uint8_t>(Bundle.Extraction.Abst));
  writePod(OS, static_cast<uint8_t>(Bundle.Extraction.IncludeSemiPaths));
  writeInterner(OS, *Bundle.Interner);
  writePathTable(OS, Bundle.Table);
  Bundle.Model.save(OS);
}

std::unique_ptr<ModelBundle> core::loadModel(std::istream &IS) {
  uint32_t Magic = 0, Version = 0;
  if (!readPod(IS, Magic) || Magic != BundleMagic)
    return nullptr;
  if (!readPod(IS, Version) || Version != BundleVersion)
    return nullptr;
  auto Bundle = std::make_unique<ModelBundle>();
  Bundle->Interner = std::make_unique<StringInterner>();
  uint8_t LangByte = 0, TaskByte = 0, AbstByte = 0, Semi = 0;
  int32_t Length = 0, Width = 0;
  if (!readPod(IS, LangByte) || !readPod(IS, TaskByte) ||
      !readPod(IS, Length) ||
      !readPod(IS, Width) || !readPod(IS, AbstByte) || !readPod(IS, Semi))
    return nullptr;
  Bundle->Lang = static_cast<lang::Language>(LangByte);
  Bundle->TaskKind = static_cast<Task>(TaskByte);
  Bundle->Extraction.MaxLength = Length;
  Bundle->Extraction.MaxWidth = Width;
  Bundle->Extraction.Abst = static_cast<paths::Abstraction>(AbstByte);
  Bundle->Extraction.IncludeSemiPaths = Semi != 0;
  if (!readInterner(IS, *Bundle->Interner))
    return nullptr;
  if (!readPathTable(IS, Bundle->Table))
    return nullptr;
  if (!Bundle->Model.load(IS))
    return nullptr;
  return Bundle;
}
