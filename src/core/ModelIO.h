//===- ModelIO.h - Whole-model persistence -----------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Saves and restores a complete, usable name-prediction model: the
/// string interner (all symbols the model's labels and values refer to),
/// the path table (PathIds the features hash over), the extraction
/// configuration, the task, and the trained CRF. A restored bundle can
/// parse and predict on new files — new strings and paths intern after
/// the saved ones, so every saved id keeps its meaning.
///
/// Two on-disk formats coexist:
///  * version 2 — the stream format (varint/length-prefixed records,
///    this file): portable, but loading re-interns every string and
///    path and rebuilds every hash table;
///  * version 3 — the mmap format (MappedBundle.h): one contiguous
///    offset-based file served in place with no deserialization.
/// loadModelFile (MappedBundle.h) routes by sniffing the version.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_CORE_MODELIO_H
#define PIGEON_CORE_MODELIO_H

#include "core/Pipeline.h"
#include "ml/crf/Crf.h"
#include "paths/Paths.h"

#include <iosfwd>
#include <memory>
#include <string>

namespace pigeon {
namespace core {

class MappedRegion;

/// Structured failure report of a bundle load. Error spells out what was
/// expected versus what the bytes actually held; Offset is the byte
/// position (within the stream / mapped file) where validation failed.
struct LoadDiag {
  std::string Error;
  uint64_t Offset = 0;
};

/// A self-contained trained model.
///
/// Mapping, when set, owns the mmap'ed file the other members read in
/// place (frozen-view interner/table, frozen CRF arrays). It is declared
/// first so it is destroyed last — after every member that references
/// its pages.
struct ModelBundle {
  std::shared_ptr<const MappedRegion> Mapping;
  lang::Language Lang = lang::Language::JavaScript;
  std::unique_ptr<StringInterner> Interner;
  paths::PathTable Table;
  paths::ExtractionConfig Extraction;
  Task TaskKind = Task::VariableNames;
  crf::CrfModel Model;
};

/// Writes \p Bundle to \p OS in the version-2 stream format.
void saveModel(std::ostream &OS, const ModelBundle &Bundle);

/// Restores a bundle written by saveModel(). \returns nullptr on a
/// malformed or version-mismatched stream; when \p Diag is non-null it
/// receives the expected-vs-found detail and byte offset of the failure.
std::unique_ptr<ModelBundle> loadModel(std::istream &IS,
                                       LoadDiag *Diag = nullptr);

} // namespace core
} // namespace pigeon

#endif // PIGEON_CORE_MODELIO_H
