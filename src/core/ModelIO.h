//===- ModelIO.h - Whole-model persistence -----------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Saves and restores a complete, usable name-prediction model: the
/// string interner (all symbols the model's labels and values refer to),
/// the path table (PathIds the features hash over), the extraction
/// configuration, the task, and the trained CRF. A restored bundle can
/// parse and predict on new files — new strings and paths intern after
/// the saved ones, so every saved id keeps its meaning.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_CORE_MODELIO_H
#define PIGEON_CORE_MODELIO_H

#include "core/Pipeline.h"
#include "ml/crf/Crf.h"
#include "paths/Paths.h"

#include <iosfwd>
#include <memory>

namespace pigeon {
namespace core {

/// A self-contained trained model.
struct ModelBundle {
  lang::Language Lang = lang::Language::JavaScript;
  std::unique_ptr<StringInterner> Interner;
  paths::PathTable Table;
  paths::ExtractionConfig Extraction;
  Task TaskKind = Task::VariableNames;
  crf::CrfModel Model;
};

/// Writes \p Bundle to \p OS (versioned binary).
void saveModel(std::ostream &OS, const ModelBundle &Bundle);

/// Restores a bundle written by saveModel(). \returns nullptr on a
/// malformed or version-mismatched stream.
std::unique_ptr<ModelBundle> loadModel(std::istream &IS);

} // namespace core
} // namespace pigeon

#endif // PIGEON_CORE_MODELIO_H
