//===- Experiments.h - Experiment runners for the evaluation ----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reusable experiment drivers behind every table and figure of §5:
/// CRF name prediction under interchangeable representations (AST paths,
/// no-paths, single-statement relations, token n-grams), full-type
/// prediction, the rule-based and sub-token baselines, and the three
/// word2vec context encodings of Table 3. Each driver returns the metrics
/// the paper reports (accuracy, sub-token F1, training time, model size).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_CORE_EXPERIMENTS_H
#define PIGEON_CORE_EXPERIMENTS_H

#include "core/Pipeline.h"
#include "ml/crf/Crf.h"
#include "ml/word2vec/Sgns.h"
#include "paths/Paths.h"

#include <map>
#include <string>

namespace pigeon {
namespace core {

/// The input representation fed to the (unchanged) CRF learner — the
/// paper's central variable.
enum class Representation {
  AstPaths,       ///< PIGEON: abstract AST path-contexts.
  NoPaths,        ///< "bag of near identifiers" (α = no-path).
  IntraStatement, ///< UnuglifyJS-style single-statement relations.
  Ngrams,         ///< Sequential token n-gram factors.
};

const char *representationName(Representation R);

/// Options shared by the CRF experiments.
struct CrfExperimentOptions {
  paths::ExtractionConfig Extraction;
  crf::CrfConfig Crf;
  Representation Repr = Representation::AstPaths;
  /// n for Representation::Ngrams (the paper's Java baseline uses 4).
  int NgramN = 4;
  /// Keep-probability p for training path-context downsampling (Fig. 11).
  double DownsampleP = 1.0;
  /// Also add 3-wise path-context factors (§4's n-wise generalization).
  bool TriContexts = false;
  double TestFraction = 0.25;
  uint64_t Seed = 42;
  /// Worker threads for the extraction and inference stages (0 = process
  /// default; see parallel::resolveThreads). Results are identical at any
  /// thread count.
  size_t Threads = 0;
};

/// Metrics every experiment reports.
struct ExperimentResult {
  double Accuracy = 0;
  double SubtokenF1 = 0;
  double TrainSeconds = 0;
  size_t NumFeatures = 0;
  size_t TrainContexts = 0;
  size_t Predictions = 0;
  size_t DistinctPaths = 0;
};

/// Path-contexts (and optional 3-wise contexts) of one corpus file, as
/// produced by the sharded extraction stage.
struct FileContexts {
  std::vector<paths::PathContext> Contexts;
  std::vector<paths::TriContext> Tris;
};

/// Extracts the representation contexts of Corpus.Files[Indices[I]] for
/// every I, sharded over Options.Threads workers with a private PathTable
/// per shard. Shard tables are merged into \p Table in file order, so the
/// PathIds in the result (and the contents of \p Table) are bit-identical
/// to a serial extraction — the determinism contract the parallel
/// pipeline is built on (DESIGN.md §Parallelism).
std::vector<FileContexts>
extractCorpusContexts(const Corpus &Corpus,
                      const std::vector<size_t> &Indices,
                      const CrfExperimentOptions &Options,
                      paths::PathTable &Table);

/// Trains and evaluates a CRF for variable- or method-name prediction.
ExperimentResult runCrfNameExperiment(const Corpus &Corpus, Task Task,
                                      const CrfExperimentOptions &Options);

/// Trains and evaluates the full-type CRF (paths from leaves to the
/// expression nonterminal, §5.3.3). Types are compared by exact string.
ExperimentResult runCrfTypeExperiment(const Corpus &Corpus,
                                      const CrfExperimentOptions &Options);

/// Builds the single-unknown full-type graphs of Corpus.Files[I] for
/// every I in \p Indices — one graph per API-shaped typed expression —
/// sharded like extractCorpusContexts with the same bit-identical merge.
/// Factored out of runCrfTypeExperiment so `pigeon explain` builds the
/// exact graphs the type experiment evaluates. \p ContextCount, when
/// non-null, accumulates the number of extracted leaf-to-target paths.
std::vector<crf::CrfGraph>
buildTypeGraphs(const Corpus &Corpus, const std::vector<size_t> &Indices,
                const CrfExperimentOptions &Options, paths::PathTable &Table,
                size_t *ContextCount);

//===----------------------------------------------------------------------===//
// Prediction provenance
//===----------------------------------------------------------------------===//

/// One explained prediction for the `pigeon explain` report: gold and
/// predicted labels plus the strongest contributing AST paths, with all
/// symbols/paths rendered to strings so callers only need TablePrinter.
struct ExplainedPrediction {
  std::string Gold;
  std::string Predicted;
  bool Correct = false;
  double Score = 0; ///< Total score of the predicted label (= Bias + Σ).
  double Bias = 0;
  struct PathLine {
    std::string Path;     ///< Rendered abstract path.
    std::string Neighbor; ///< Other-end label (empty for unary factors).
    bool Unary = false;
    double Score = 0;  ///< VotePrior × Vote + Weight.
    double Weight = 0; ///< Learned factor-weight part.
    double Vote = 0;   ///< Empirical candidate-vote part.
  };
  std::vector<PathLine> Paths;
};

/// Writes one `prediction` record plus one `attribution` record per path
/// of \p Ex into the global event log (no-op when the log is closed).
/// \p Task tags the records ("vars", "methods", "types"); \p Ex carries
/// the decomposition of the *predicted* label's score.
void logPredictionProvenance(std::string_view Task, const StringInterner &SI,
                             const paths::PathTable &Table,
                             std::string_view Gold,
                             std::string_view Predicted,
                             const crf::NodeExplanation &Ex);

/// The `pigeon explain` driver: trains a CRF on the train split of
/// \p Corpus (any task, including FullTypes) and explains the first
/// \p MaxNodes test-split predictions — each with its top-\p TopK
/// contributing paths. Every explained prediction is also written into
/// the event log via logPredictionProvenance.
std::vector<ExplainedPrediction>
explainCrfPredictions(const Corpus &Corpus, Task Task,
                      const CrfExperimentOptions &Options, int TopK,
                      size_t MaxNodes);

/// The rule-based Java namer on the test split (no training involved).
ExperimentResult runRuleBasedJava(const Corpus &Corpus, double TestFraction,
                                  uint64_t Seed);

/// The sub-token bag method namer (the Allamanis et al. stand-in).
ExperimentResult runSubtokenMethodNamer(const Corpus &Corpus,
                                        double TestFraction, uint64_t Seed);

/// The naive java.lang.String type baseline (§5.3.3).
ExperimentResult runStringTypeBaseline(const Corpus &Corpus,
                                       double TestFraction, uint64_t Seed);

//===----------------------------------------------------------------------===//
// word2vec experiments (Table 3)
//===----------------------------------------------------------------------===//

/// Context encodings compared in Table 3.
enum class W2vContexts {
  AstPaths,      ///< (path, other-end value) pairs — PIGEON.
  TokenStream,   ///< Surrounding tokens with relative offsets.
  PathNeighbors, ///< Path-context neighbours without the path itself.
};

const char *w2vContextsName(W2vContexts C);

struct W2vExperimentOptions {
  paths::ExtractionConfig Extraction;
  w2v::SgnsConfig Sgns;
  W2vContexts Contexts = W2vContexts::AstPaths;
  double TestFraction = 0.25;
  uint64_t Seed = 42;
};

/// Variable-name prediction with SGNS + Eq. 4 under the chosen context
/// encoding.
ExperimentResult runW2vNameExperiment(const Corpus &Corpus,
                                      const W2vExperimentOptions &Options);

//===----------------------------------------------------------------------===//
// Qualitative API (Table 4, Figs. 7-9, examples)
//===----------------------------------------------------------------------===//

/// A name-prediction model trained on a whole corpus, usable on newly
/// parsed snippets (they must share the corpus interner).
class TrainedNameModel {
public:
  /// Trains on every file of \p Corpus.
  TrainedNameModel(const Corpus &Corpus, Task Task,
                   const CrfExperimentOptions &Options);

  /// Predicts names for the selected elements of \p Tree.
  std::map<ast::ElementId, Symbol> predict(const ast::Tree &Tree) const;

  /// Top-k candidates for one element of \p Tree (Table 4a).
  std::vector<std::pair<Symbol, double>>
  topKFor(const ast::Tree &Tree, ast::ElementId Element, int K) const;

  const crf::CrfModel &model() const { return Model; }

private:
  Task TaskKind;
  CrfExperimentOptions Options;
  crf::CrfModel Model;
  mutable paths::PathTable Table;

  crf::CrfGraph buildFor(const ast::Tree &Tree) const;
};

} // namespace core
} // namespace pigeon

#endif // PIGEON_CORE_EXPERIMENTS_H
