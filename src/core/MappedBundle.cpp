//===- MappedBundle.cpp - Zero-copy mmap model bundles (v3) ------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/MappedBundle.h"

#include "support/BinaryIO.h"
#include "support/Hashing.h"

#include <cerrno>
#include <algorithm>
#include <cassert>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace pigeon;
using namespace pigeon::core;

//===----------------------------------------------------------------------===//
// MappedRegion
//===----------------------------------------------------------------------===//

std::shared_ptr<const MappedRegion>
MappedRegion::open(const std::string &Path, std::string *Error) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot open '" + Path + "': " + std::strerror(errno);
    return nullptr;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    if (Error)
      *Error = "cannot stat '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  size_t Size = static_cast<size_t>(St.st_size);
  void *Data = nullptr;
  if (Size > 0) {
    Data = ::mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
    if (Data == MAP_FAILED) {
      if (Error)
        *Error = "cannot mmap '" + Path + "': " + std::strerror(errno);
      ::close(Fd);
      return nullptr;
    }
  }
  // The mapping outlives the descriptor.
  ::close(Fd);
  return std::shared_ptr<const MappedRegion>(new MappedRegion(Data, Size));
}

MappedRegion::~MappedRegion() {
  if (Data)
    ::munmap(Data, Size);
}

//===----------------------------------------------------------------------===//
// Format constants
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t BundleMagic = 0x50494742;  // "PIGB"
constexpr uint32_t MappedVersion = 3;
constexpr uint32_t TrailerMagic = 0x33544750; // "PGT3"

constexpr uint64_t HeaderBytes = 48;
constexpr uint32_t NumSections = 13;
constexpr uint64_t SectionEntryBytes = 24;
constexpr uint64_t SectionsStart =
    HeaderBytes + NumSections * SectionEntryBytes; // 360
constexpr uint64_t TrailerBytes = 16;
constexpr uint64_t MinFileBytes = SectionsStart + TrailerBytes;

/// Section kinds, in the fixed order they appear in the section table
/// and in the file. Values are 1-based so a zeroed entry is detectably
/// invalid.
enum SectionKind : uint32_t {
  SecStrArena = 1,  ///< Concatenated string bytes, ids 0..StrCount-1.
  SecStrOffsets,    ///< u64 x (StrCount+1), [0] == 0.
  SecStrIndex,      ///< u32 x pow2 slots, value = string id + 1.
  SecPathArena,     ///< Concatenated packed-path bytes, ids 1..PathCount.
  SecPathOffsets,   ///< u64 x (PathCount+1), [0] == 0.
  SecPathIndex,     ///< u32 x pow2 slots, value = path id.
  SecWeightKeys,    ///< u64 x NumWeights, sorted ascending.
  SecWeightVals,    ///< f64 x NumWeights, parallel to keys.
  SecCandKeys,      ///< u64 x NumCands, sorted ascending.
  SecCandOffsets,   ///< u64 x (NumCands+1) entry offsets into CandPairs.
  SecCandPairs,     ///< u32 x 2*TotalEntries: (label, count) pairs.
  SecPruned,        ///< u64 x NumPruned, sorted ascending.
  SecGlobalTop,     ///< u32 x NumGlobal label indices, rank order.
};

struct SectionDesc {
  uint64_t Offset = 0;
  uint64_t Length = 0;
};

uint64_t align8(uint64_t V) { return (V + 7) & ~uint64_t(7); }

std::string hex32(uint32_t Value) {
  std::ostringstream OS;
  OS << "0x" << std::hex << Value;
  return OS.str();
}

void setDiag(LoadDiag *Diag, uint64_t Offset, std::string Error) {
  if (!Diag)
    return;
  Diag->Offset = Offset;
  Diag->Error = std::move(Error);
}

/// Builds the stored open-addressed linear-probe index: \p Hashes[I] is
/// the stable hash of the item whose slot value is \p Values[I]. Matches
/// the probe sequence of StringInterner::findFrozen /
/// PathTable::findFrozen and the live table's <7/8 load factor.
std::vector<uint32_t> buildStoredIndex(const std::vector<uint64_t> &Hashes,
                                       const std::vector<uint32_t> &Values) {
  size_t Cap = 64;
  while (Hashes.size() * 8 >= Cap * 7)
    Cap *= 2;
  std::vector<uint32_t> Slots(Cap, 0);
  uint64_t Mask = Cap - 1;
  for (size_t I = 0; I < Hashes.size(); ++I) {
    uint64_t Slot = Hashes[I] & Mask;
    while (Slots[Slot] != 0)
      Slot = (Slot + 1) & Mask;
    Slots[Slot] = Values[I];
  }
  return Slots;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

/// Accumulates the file image in memory (the checksum needs the final
/// bytes anyway), tracking 8-byte alignment.
class ImageBuilder {
public:
  template <typename T> void pod(const T &Value) {
    Buf.append(reinterpret_cast<const char *>(&Value), sizeof(Value));
  }
  void bytes(const void *Data, size_t Len) {
    if (Len)
      Buf.append(static_cast<const char *>(Data), Len);
  }
  void padTo8() {
    while (Buf.size() % 8)
      Buf.push_back('\0');
  }
  uint64_t size() const { return Buf.size(); }
  const std::string &str() const { return Buf; }

private:
  std::string Buf;
};

} // namespace

void core::saveModelV3(std::ostream &OS, const ModelBundle &Bundle) {
  const StringInterner &SI = *Bundle.Interner;
  const paths::PathTable &PT = Bundle.Table;
  uint32_t StrCount = static_cast<uint32_t>(SI.size());
  uint32_t PathCount = static_cast<uint32_t>(PT.size());
  assert(StrCount >= 1 && "interner always holds the reserved id 0");

  // Gather arenas and offset tables in id order (deterministic).
  std::string StrArena;
  std::vector<uint64_t> StrOffsets;
  StrOffsets.reserve(size_t(StrCount) + 1);
  StrOffsets.push_back(0);
  std::vector<uint64_t> StrHashes;
  std::vector<uint32_t> StrValues;
  StrHashes.reserve(StrCount);
  for (uint32_t I = 0; I < StrCount; ++I) {
    std::string_view S = SI.str(Symbol::fromIndex(I));
    StrArena.append(S);
    StrOffsets.push_back(StrArena.size());
    if (I > 0) {
      // Id 0 is the reserved empty slot and never resolves via lookup.
      StrHashes.push_back(stableHashBytes(S.data(), S.size()));
      StrValues.push_back(I + 1); // Slot bias: 0 stays the empty sentinel.
    }
  }
  std::vector<uint32_t> StrIndex = buildStoredIndex(StrHashes, StrValues);

  std::vector<uint8_t> PathArena;
  std::vector<uint64_t> PathOffsets;
  PathOffsets.reserve(size_t(PathCount) + 1);
  PathOffsets.push_back(0);
  std::vector<uint64_t> PathHashes;
  std::vector<uint32_t> PathValues;
  PathHashes.reserve(PathCount);
  for (uint32_t I = 1; I <= PathCount; ++I) {
    std::span<const uint8_t> B = PT.bytes(I);
    PathArena.insert(PathArena.end(), B.begin(), B.end());
    PathOffsets.push_back(PathArena.size());
    PathHashes.push_back(stableHashBytes(B.data(), B.size()));
    PathValues.push_back(I);
  }
  std::vector<uint32_t> PathIndex = buildStoredIndex(PathHashes, PathValues);

  crf::FlatCrf F = Bundle.Model.flatten();

  // Lay out the section table: every section starts 8-byte aligned.
  uint64_t Lengths[NumSections] = {
      StrArena.size(),
      StrOffsets.size() * 8,
      StrIndex.size() * 4,
      PathArena.size(),
      PathOffsets.size() * 8,
      PathIndex.size() * 4,
      F.WeightKeys.size() * 8,
      F.WeightVals.size() * 8,
      F.CandKeys.size() * 8,
      F.CandOffsets.size() * 8,
      F.CandPairs.size() * 4,
      F.PrunedKeys.size() * 8,
      F.GlobalTop.size() * 4,
  };
  SectionDesc Sections[NumSections];
  uint64_t At = SectionsStart;
  for (uint32_t I = 0; I < NumSections; ++I) {
    Sections[I].Offset = At;
    Sections[I].Length = Lengths[I];
    At = align8(At + Lengths[I]);
  }
  uint64_t TrailerOff = At;
  uint64_t FileSize = TrailerOff + TrailerBytes;

  ImageBuilder Img;
  // Header.
  Img.pod(BundleMagic);
  Img.pod(MappedVersion);
  Img.pod(FileSize);
  Img.pod(static_cast<uint8_t>(Bundle.Lang));
  Img.pod(static_cast<uint8_t>(Bundle.TaskKind));
  Img.pod(static_cast<uint8_t>(Bundle.Extraction.Abst));
  Img.pod(static_cast<uint8_t>(Bundle.Extraction.IncludeSemiPaths));
  Img.pod(static_cast<int32_t>(Bundle.Extraction.MaxLength));
  Img.pod(static_cast<int32_t>(Bundle.Extraction.MaxWidth));
  Img.pod(NumSections);
  Img.pod(StrCount);
  Img.pod(PathCount);
  Img.pod(static_cast<uint64_t>(0)); // Reserved: pads the header to 48.
  assert(Img.size() == HeaderBytes && "header layout drifted");
  // Section table.
  for (uint32_t I = 0; I < NumSections; ++I) {
    Img.pod(static_cast<uint32_t>(I + 1)); // Kind.
    Img.pod(static_cast<uint32_t>(0));     // Reserved.
    Img.pod(Sections[I].Offset);
    Img.pod(Sections[I].Length);
  }
  assert(Img.size() == SectionsStart && "section table layout drifted");
  // Sections, zero-padded to 8-byte starts.
  auto Emit = [&Img](const void *Data, size_t Len) {
    Img.bytes(Data, Len);
    Img.padTo8();
  };
  Emit(StrArena.data(), StrArena.size());
  Emit(StrOffsets.data(), StrOffsets.size() * 8);
  Emit(StrIndex.data(), StrIndex.size() * 4);
  Emit(PathArena.data(), PathArena.size());
  Emit(PathOffsets.data(), PathOffsets.size() * 8);
  Emit(PathIndex.data(), PathIndex.size() * 4);
  Emit(F.WeightKeys.data(), F.WeightKeys.size() * 8);
  Emit(F.WeightVals.data(), F.WeightVals.size() * 8);
  Emit(F.CandKeys.data(), F.CandKeys.size() * 8);
  Emit(F.CandOffsets.data(), F.CandOffsets.size() * 8);
  Emit(F.CandPairs.data(), F.CandPairs.size() * 4);
  Emit(F.PrunedKeys.data(), F.PrunedKeys.size() * 8);
  Emit(F.GlobalTop.data(), F.GlobalTop.size() * 4);
  assert(Img.size() == TrailerOff && "section layout drifted");
  // Trailer: checksum over everything before it.
  uint64_t Checksum = stableHashBytes(Img.str().data(), Img.size());
  Img.pod(Checksum);
  Img.pod(TrailerMagic);
  Img.pod(static_cast<uint32_t>(0)); // Reserved.
  assert(Img.size() == FileSize && "trailer layout drifted");

  OS.write(Img.str().data(), static_cast<std::streamsize>(Img.size()));
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

namespace {

template <typename T> T readAt(const uint8_t *Base, uint64_t Offset) {
  T Value;
  std::memcpy(&Value, Base + Offset, sizeof(T));
  return Value;
}

const char *sectionName(uint32_t Kind) {
  switch (Kind) {
  case SecStrArena: return "string arena";
  case SecStrOffsets: return "string offsets";
  case SecStrIndex: return "string index";
  case SecPathArena: return "path arena";
  case SecPathOffsets: return "path offsets";
  case SecPathIndex: return "path index";
  case SecWeightKeys: return "weight keys";
  case SecWeightVals: return "weight values";
  case SecCandKeys: return "candidate keys";
  case SecCandOffsets: return "candidate offsets";
  case SecCandPairs: return "candidate pairs";
  case SecPruned: return "pruned paths";
  case SecGlobalTop: return "global candidates";
  }
  return "unknown";
}

/// Validation context: every check funnels through fail() so each
/// rejection carries the failing byte offset and an expected-vs-found
/// message.
struct Validator {
  const uint8_t *Base;
  uint64_t Size;
  LoadDiag *Diag;
  bool Failed = false;

  bool fail(uint64_t Offset, std::string Error) {
    if (!Failed) // First failure wins: later checks may be cascades.
      setDiag(Diag, Offset, std::move(Error));
    Failed = true;
    return false;
  }

  /// Checks the offsets array invariant: [0] == 0, monotonic
  /// non-decreasing, last == ArenaLen.
  bool checkOffsets(const uint64_t *Offsets, uint64_t Count,
                    uint64_t ArenaLen, uint64_t SectionOff,
                    const char *What) {
    if (Offsets[0] != 0)
      return fail(SectionOff, std::string(What) +
                                  ": first offset must be 0, found " +
                                  std::to_string(Offsets[0]));
    for (uint64_t I = 0; I < Count; ++I)
      if (Offsets[I + 1] < Offsets[I])
        return fail(SectionOff + (I + 1) * 8,
                    std::string(What) + ": offsets not monotonic at entry " +
                        std::to_string(I + 1));
    if (Offsets[Count] != ArenaLen)
      return fail(SectionOff + Count * 8,
                  std::string(What) + ": last offset " +
                      std::to_string(Offsets[Count]) +
                      " does not equal the arena length " +
                      std::to_string(ArenaLen));
    return true;
  }

  /// Checks a stored index section: power-of-two slot count, every slot
  /// value within [0, MaxValue].
  bool checkIndex(const uint32_t *Slots, uint64_t Count, uint64_t MaxValue,
                  uint64_t SectionOff, const char *What) {
    if (Count == 0 || (Count & (Count - 1)) != 0)
      return fail(SectionOff, std::string(What) + ": slot count " +
                                  std::to_string(Count) +
                                  " is not a power of two");
    for (uint64_t I = 0; I < Count; ++I)
      if (Slots[I] > MaxValue)
        return fail(SectionOff + I * 4,
                    std::string(What) + ": slot " + std::to_string(I) +
                        " value " + std::to_string(Slots[I]) +
                        " exceeds the maximum " + std::to_string(MaxValue));
    return true;
  }
};

} // namespace

std::unique_ptr<ModelBundle> core::openMappedBundle(const std::string &Path,
                                                    LoadDiag *Diag,
                                                    bool VerifyChecksum) {
  std::string MapError;
  std::shared_ptr<const MappedRegion> Region =
      MappedRegion::open(Path, &MapError);
  if (!Region) {
    setDiag(Diag, 0, MapError);
    return nullptr;
  }
  const uint8_t *Base = Region->data();
  uint64_t Size = Region->size();
  Validator V{Base, Size, Diag};

  if (Size < MinFileBytes) {
    V.fail(0, "truncated: file is " + std::to_string(Size) +
                  " bytes, a v3 bundle needs at least " +
                  std::to_string(MinFileBytes));
    return nullptr;
  }
  uint32_t Magic = readAt<uint32_t>(Base, 0);
  if (Magic != BundleMagic) {
    V.fail(0, "bad bundle magic: expected " + hex32(BundleMagic) +
                  " (\"PIGB\"), found " + hex32(Magic));
    return nullptr;
  }
  uint32_t Version = readAt<uint32_t>(Base, 4);
  if (Version != MappedVersion) {
    std::string Hint =
        Version == 2 ? " (a v2 stream bundle — use the stream loader, or "
                       "convert with `pigeon migrate-bundle`)"
                     : "";
    V.fail(4, "bundle version mismatch: expected " +
                  std::to_string(MappedVersion) + ", found " +
                  std::to_string(Version) + Hint);
    return nullptr;
  }
  uint64_t FileSize = readAt<uint64_t>(Base, 8);
  if (FileSize != Size) {
    V.fail(8, "file size mismatch: header claims " +
                  std::to_string(FileSize) + " bytes, file is " +
                  std::to_string(Size));
    return nullptr;
  }
  uint8_t LangByte = Base[16], TaskByte = Base[17], AbstByte = Base[18],
          SemiByte = Base[19];
  int32_t MaxLength = readAt<int32_t>(Base, 20);
  int32_t MaxWidth = readAt<int32_t>(Base, 24);
  uint32_t SectionCount = readAt<uint32_t>(Base, 28);
  uint32_t StrCount = readAt<uint32_t>(Base, 32);
  uint32_t PathCount = readAt<uint32_t>(Base, 36);
  if (SectionCount != NumSections) {
    V.fail(28, "section count mismatch: expected " +
                   std::to_string(NumSections) + ", found " +
                   std::to_string(SectionCount));
    return nullptr;
  }
  if (StrCount < 1) {
    V.fail(32, "string count 0: the interner always holds the reserved "
               "empty id 0");
    return nullptr;
  }
  if (LangByte > static_cast<uint8_t>(lang::Language::CSharp)) {
    V.fail(16, "language byte " + std::to_string(LangByte) +
                   " out of range (max " +
                   std::to_string(
                       static_cast<uint8_t>(lang::Language::CSharp)) +
                   ")");
    return nullptr;
  }
  if (TaskByte > static_cast<uint8_t>(Task::FullTypes)) {
    V.fail(17, "task byte " + std::to_string(TaskByte) +
                   " out of range (max " +
                   std::to_string(static_cast<uint8_t>(Task::FullTypes)) +
                   ")");
    return nullptr;
  }
  if (AbstByte > static_cast<uint8_t>(paths::Abstraction::NoPath)) {
    V.fail(18, "abstraction byte " + std::to_string(AbstByte) +
                   " out of range (max " +
                   std::to_string(
                       static_cast<uint8_t>(paths::Abstraction::NoPath)) +
                   ")");
    return nullptr;
  }

  // Trailer.
  uint64_t TrailerOff = Size - TrailerBytes;
  uint32_t TMagic = readAt<uint32_t>(Base, TrailerOff + 8);
  if (TMagic != TrailerMagic) {
    V.fail(TrailerOff + 8, "bad trailer magic: expected " +
                               hex32(TrailerMagic) + " (\"PGT3\"), found " +
                               hex32(TMagic));
    return nullptr;
  }
  // Section table: fixed kind order, 8-byte aligned, overflow-checked
  // bounds, non-overlapping and ascending.
  SectionDesc S[NumSections];
  uint64_t PrevEnd = SectionsStart;
  for (uint32_t I = 0; I < NumSections; ++I) {
    uint64_t EntryOff = HeaderBytes + uint64_t(I) * SectionEntryBytes;
    uint32_t Kind = readAt<uint32_t>(Base, EntryOff);
    if (Kind != I + 1) {
      V.fail(EntryOff, "section table entry " + std::to_string(I) +
                           ": expected kind " + std::to_string(I + 1) +
                           " (" + sectionName(I + 1) + "), found " +
                           std::to_string(Kind));
      return nullptr;
    }
    uint64_t Offset = readAt<uint64_t>(Base, EntryOff + 8);
    uint64_t Length = readAt<uint64_t>(Base, EntryOff + 16);
    std::string Name = sectionName(Kind);
    if (Offset % 8 != 0) {
      V.fail(EntryOff + 8, Name + " section: offset " +
                               std::to_string(Offset) +
                               " is not 8-byte aligned");
      return nullptr;
    }
    if (Offset < PrevEnd) {
      V.fail(EntryOff + 8,
             Name + " section: offset " + std::to_string(Offset) +
                 " overlaps the previous section (which ends at " +
                 std::to_string(PrevEnd) + ")");
      return nullptr;
    }
    uint64_t End = 0;
    // Checked arithmetic: a crafted offset near UINT64_MAX must be
    // rejected, not wrapped past the bounds check.
    if (!io::checkedAdd(Offset, Length, End) || End > TrailerOff) {
      V.fail(EntryOff + 16,
             Name + " section: offset " + std::to_string(Offset) +
                 " + length " + std::to_string(Length) +
                 " overflows or passes the trailer at " +
                 std::to_string(TrailerOff));
      return nullptr;
    }
    S[I] = {Offset, Length};
    PrevEnd = End;
  }

  // Per-section shape checks. Element sizes first, then cross-section
  // count consistency, then content invariants — after this block every
  // pointer handed to the frozen views is safe to dereference over its
  // full validated range.
  auto DivisibleBy = [&](uint32_t Kind, uint64_t Elem) -> bool {
    const SectionDesc &D = S[Kind - 1];
    if (D.Length % Elem == 0)
      return true;
    V.fail(HeaderBytes + uint64_t(Kind - 1) * SectionEntryBytes + 16,
           std::string(sectionName(Kind)) + " section: length " +
               std::to_string(D.Length) + " is not a multiple of " +
               std::to_string(Elem));
    return false;
  };
  for (uint32_t Kind : {SecStrOffsets, SecPathOffsets, SecWeightKeys,
                        SecWeightVals, SecCandKeys, SecCandOffsets,
                        SecPruned})
    if (!DivisibleBy(Kind, 8))
      return nullptr;
  for (uint32_t Kind : {SecStrIndex, SecPathIndex, SecCandPairs,
                        SecGlobalTop})
    if (!DivisibleBy(Kind, 4))
      return nullptr;

  auto SecPtr = [&](uint32_t Kind) { return Base + S[Kind - 1].Offset; };
  auto SecLen = [&](uint32_t Kind) { return S[Kind - 1].Length; };
  auto SecOff = [&](uint32_t Kind) { return S[Kind - 1].Offset; };
  auto CountMismatch = [&](uint32_t Kind, uint64_t Expect,
                           const char *Why) {
    V.fail(HeaderBytes + uint64_t(Kind - 1) * SectionEntryBytes + 16,
           std::string(sectionName(Kind)) + " section: length " +
               std::to_string(SecLen(Kind)) + " does not match " + Why +
               " (expected " + std::to_string(Expect) + " bytes)");
    return nullptr;
  };

  if (SecLen(SecStrOffsets) != (uint64_t(StrCount) + 1) * 8)
    return CountMismatch(SecStrOffsets, (uint64_t(StrCount) + 1) * 8,
                         "the header string count");
  if (SecLen(SecPathOffsets) != (uint64_t(PathCount) + 1) * 8)
    return CountMismatch(SecPathOffsets, (uint64_t(PathCount) + 1) * 8,
                         "the header path count");
  if (SecLen(SecWeightVals) != SecLen(SecWeightKeys))
    return CountMismatch(SecWeightVals, SecLen(SecWeightKeys),
                         "the weight-key section");
  uint64_t NumCands = SecLen(SecCandKeys) / 8;
  if (SecLen(SecCandOffsets) != (NumCands + 1) * 8)
    return CountMismatch(SecCandOffsets, (NumCands + 1) * 8,
                         "the candidate-key section");

  const auto *StrOffsets =
      reinterpret_cast<const uint64_t *>(SecPtr(SecStrOffsets));
  if (!V.checkOffsets(StrOffsets, StrCount, SecLen(SecStrArena),
                      SecOff(SecStrOffsets), "string offsets"))
    return nullptr;
  if (StrOffsets[1] != 0) {
    V.fail(SecOff(SecStrOffsets) + 8,
           "string id 0 must be the empty string, found " +
               std::to_string(StrOffsets[1]) + " bytes");
    return nullptr;
  }
  const auto *PathOffsets =
      reinterpret_cast<const uint64_t *>(SecPtr(SecPathOffsets));
  if (!V.checkOffsets(PathOffsets, PathCount, SecLen(SecPathArena),
                      SecOff(SecPathOffsets), "path offsets"))
    return nullptr;

  const auto *StrIndex =
      reinterpret_cast<const uint32_t *>(SecPtr(SecStrIndex));
  // String slots are biased by +1, so the maximum legal value is
  // StrCount (naming id StrCount - 1).
  if (!V.checkIndex(StrIndex, SecLen(SecStrIndex) / 4, StrCount,
                    SecOff(SecStrIndex), "string index"))
    return nullptr;
  const auto *PathIndex =
      reinterpret_cast<const uint32_t *>(SecPtr(SecPathIndex));
  if (!V.checkIndex(PathIndex, SecLen(SecPathIndex) / 4, PathCount,
                    SecOff(SecPathIndex), "path index"))
    return nullptr;

  const auto *CandOffsets =
      reinterpret_cast<const uint64_t *>(SecPtr(SecCandOffsets));
  // Candidate offsets count entries; each entry is a (label, count)
  // pair of u32 — 8 bytes in the pair section.
  if (!V.checkOffsets(CandOffsets, NumCands, SecLen(SecCandPairs) / 8,
                      SecOff(SecCandOffsets), "candidate offsets"))
    return nullptr;
  const auto *CandPairs =
      reinterpret_cast<const uint32_t *>(SecPtr(SecCandPairs));
  for (uint64_t I = 0; I < SecLen(SecCandPairs) / 8; ++I)
    if (CandPairs[2 * I] >= StrCount) {
      V.fail(SecOff(SecCandPairs) + I * 8,
             "candidate pair " + std::to_string(I) + ": label index " +
                 std::to_string(CandPairs[2 * I]) +
                 " exceeds the string count " + std::to_string(StrCount));
      return nullptr;
    }
  const auto *GlobalTop =
      reinterpret_cast<const uint32_t *>(SecPtr(SecGlobalTop));
  for (uint64_t I = 0; I < SecLen(SecGlobalTop) / 4; ++I)
    if (GlobalTop[I] >= StrCount) {
      V.fail(SecOff(SecGlobalTop) + I * 4,
             "global candidate " + std::to_string(I) + ": label index " +
                 std::to_string(GlobalTop[I]) +
                 " exceeds the string count " + std::to_string(StrCount));
      return nullptr;
    }

  // Checksum last: it touches every page (defeating lazy paging, which
  // is why it is opt-in), and running it after the structural checks
  // keeps diagnostics specific — a corrupt section table reports the
  // section, not a blanket hash mismatch.
  if (VerifyChecksum) {
    uint64_t Stored = readAt<uint64_t>(Base, TrailerOff);
    uint64_t Actual = stableHashBytes(Base, TrailerOff);
    if (Stored != Actual) {
      std::ostringstream OS;
      OS << "checksum mismatch: trailer stores 0x" << std::hex << Stored
         << ", file hashes to 0x" << Actual;
      V.fail(TrailerOff, OS.str());
      return nullptr;
    }
  }

  // All validated — wire the frozen views straight into the mapping.
  auto Bundle = std::make_unique<ModelBundle>();
  Bundle->Mapping = Region;
  Bundle->Lang = static_cast<lang::Language>(LangByte);
  Bundle->TaskKind = static_cast<Task>(TaskByte);
  Bundle->Extraction.MaxLength = MaxLength;
  Bundle->Extraction.MaxWidth = MaxWidth;
  Bundle->Extraction.Abst = static_cast<paths::Abstraction>(AbstByte);
  Bundle->Extraction.IncludeSemiPaths = SemiByte != 0;

  StringInterner::FrozenStrings SV;
  SV.Bytes = reinterpret_cast<const char *>(SecPtr(SecStrArena));
  SV.Offsets = StrOffsets;
  SV.Slots = StrIndex;
  SV.Mask = SecLen(SecStrIndex) / 4 - 1;
  SV.Count = StrCount;
  Bundle->Interner = std::make_unique<StringInterner>(StringInterner::Frozen,
                                                      SV);

  paths::PathTable::FrozenPaths PV;
  PV.Bytes = SecPtr(SecPathArena);
  PV.Offsets = PathOffsets;
  PV.Slots = PathIndex;
  PV.Mask = SecLen(SecPathIndex) / 4 - 1;
  PV.NumPaths = PathCount;
  Bundle->Table = paths::PathTable(paths::PathTable::Frozen, PV);

  crf::FrozenCrf CV;
  CV.WeightKeys = reinterpret_cast<const uint64_t *>(SecPtr(SecWeightKeys));
  CV.WeightVals = reinterpret_cast<const double *>(SecPtr(SecWeightVals));
  CV.NumWeights = SecLen(SecWeightKeys) / 8;
  CV.CandKeys = reinterpret_cast<const uint64_t *>(SecPtr(SecCandKeys));
  CV.CandOffsets = CandOffsets;
  CV.CandPairs = CandPairs;
  CV.NumCands = NumCands;
  CV.PrunedKeys = reinterpret_cast<const uint64_t *>(SecPtr(SecPruned));
  CV.NumPruned = SecLen(SecPruned) / 8;
  CV.GlobalTop = GlobalTop;
  CV.NumGlobal = static_cast<uint32_t>(SecLen(SecGlobalTop) / 4);
  Bundle->Model.adoptFrozen(CV);
  return Bundle;
}

std::unique_ptr<ModelBundle> core::loadModelFile(const std::string &Path,
                                                 LoadDiag *Diag,
                                                 bool VerifyChecksum) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    setDiag(Diag, 0,
            "cannot read " + Path + ": " + std::strerror(errno));
    return nullptr;
  }
  uint32_t Magic = 0, Version = 0;
  IS.read(reinterpret_cast<char *>(&Magic), sizeof(Magic));
  IS.read(reinterpret_cast<char *>(&Version), sizeof(Version));
  if (IS && Magic == BundleMagic && Version == MappedVersion)
    return openMappedBundle(Path, Diag, VerifyChecksum);
  // Anything else — v2, truncated, or garbage — takes the stream route,
  // whose own validation produces the structured error.
  IS.clear();
  IS.seekg(0);
  return loadModel(IS, Diag);
}
