//===- Pipeline.cpp - Corpus parsing, splitting, task selectors -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "datagen/DomainClasses.h"
#include "lang/csharp/CsParser.h"
#include "lang/java/JavaParser.h"
#include "lang/java/TypeChecker.h"
#include "lang/js/JsParser.h"
#include "lang/python/PyParser.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <span>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

size_t Corpus::numProjects() const {
  std::set<std::string> Projects;
  for (const ParsedFile &File : Files)
    Projects.insert(File.Project);
  return Projects.size();
}

namespace {

/// Short metric-name key per language ("parse.js.files.ok" etc.).
const char *langKey(Language Lang) {
  switch (Lang) {
  case Language::JavaScript:
    return "js";
  case Language::Java:
    return "java";
  case Language::Python:
    return "py";
  case Language::CSharp:
    return "cs";
  }
  return "unknown";
}

/// One dropped file as a shard worker saw it: the record for the corpus
/// plus the raw first-diagnostic text for reason accounting.
struct ShardFailure {
  ParseFailureRecord Record;
  std::string RawReason;
};

/// Everything one shard worker produced from its contiguous file range.
/// Files and failures are in file order; the interner holds exactly the
/// strings a serial parse of the same range would have interned, in the
/// same first-encounter order.
struct ParseShard {
  std::unique_ptr<StringInterner> Interner;
  std::vector<ParsedFile> Files;
  std::vector<ShardFailure> Failures;
  size_t SourceBytes = 0;
  uint64_t FilesOk = 0;
};

/// Parses one contiguous range of sources with a private interner. This
/// is the exact per-file sequence of the serial parse — including the
/// inline Java type annotation, which interns type strings between files
/// — so shard interners concatenate back into the serial intern order.
ParseShard parseShard(std::span<const datagen::SourceFile> Sources,
                      Language Lang) {
  ParseShard Shard;
  Shard.Interner = std::make_unique<StringInterner>();

  java::ClassPath CP = java::ClassPath::standard();
  datagen::addDomainClasses(CP);

  for (const datagen::SourceFile &Src : Sources) {
    Shard.SourceBytes += Src.Text.size();
    lang::ParseResult R;
    switch (Lang) {
    case Language::JavaScript:
      R = js::parse(Src.Text, *Shard.Interner);
      break;
    case Language::Java:
      R = java::parse(Src.Text, *Shard.Interner);
      break;
    case Language::Python:
      R = py::parse(Src.Text, *Shard.Interner);
      break;
    case Language::CSharp:
      R = cs::parse(Src.Text, *Shard.Interner);
      break;
    }
    if (!R.Tree || !R.Diags.empty()) {
      std::string Reason =
          R.Diags.empty() ? "no tree" : R.Diags.front().Message;
      Shard.Failures.push_back(
          {{Src.FileName, R.Diags.empty() ? Reason : R.Diags.front().str()},
           std::move(Reason)});
      continue;
    }
    ++Shard.FilesOk;
    if (Lang == Language::Java)
      java::annotateTypes(*R.Tree, CP);
    Shard.Files.push_back({Src.Project, Src.FileName, std::move(*R.Tree)});
  }
  return Shard;
}

/// Process-global budget of distinct `parse.fail.reason.*` counters.
struct ReasonBudget {
  std::mutex Mutex;
  std::set<std::string> Seen;
  size_t Remaining = 16;
};

ReasonBudget &reasonBudget() {
  static ReasonBudget Budget;
  return Budget;
}

} // namespace

std::string core::metricSafeReason(std::string_view Raw) {
  constexpr size_t MaxLen = 48;
  std::string Out;
  Out.reserve(std::min(Raw.size(), MaxLen));
  for (char Ch : Raw) {
    if (Out.size() >= MaxLen)
      break;
    unsigned char U = static_cast<unsigned char>(Ch);
    if ((U >= 'a' && U <= 'z') || (U >= '0' && U <= '9') || U == '.' ||
        U == '-' || U == '_')
      Out += Ch;
    else if (U >= 'A' && U <= 'Z')
      Out += static_cast<char>(U - 'A' + 'a');
    else if (!Out.empty() && Out.back() != '_')
      Out += '_';
  }
  while (!Out.empty() && Out.back() == '_')
    Out.pop_back();
  return Out.empty() ? "unknown" : Out;
}

void core::recordParseFailureReason(std::string_view RawReason) {
  auto &Reg = telemetry::MetricsRegistry::global();
  std::string Key = metricSafeReason(RawReason);
  ReasonBudget &Budget = reasonBudget();
  std::lock_guard<std::mutex> Lock(Budget.Mutex);
  if (!Budget.Seen.count(Key)) {
    if (Budget.Remaining == 0) {
      Reg.counter("parse.fail.reason.other").inc();
      return;
    }
    Budget.Seen.insert(Key);
    --Budget.Remaining;
  }
  Reg.counter("parse.fail.reason." + Key).inc();
}

Corpus core::parseCorpus(const std::vector<datagen::SourceFile> &Sources,
                         Language Lang, size_t Threads) {
  telemetry::TraceScope Phase("parse");
  parallel::StageTimer Stage("parse");
  auto &Reg = telemetry::MetricsRegistry::global();
  const std::string Prefix = std::string("parse.") + langKey(Lang);

  size_t T = parallel::resolveThreads(Threads);
  size_t NumShards = parallel::chunkCountFor(Sources.size(), T);

  // Shard workers: contiguous file ranges, private interners.
  std::vector<ParseShard> Shards(std::max<size_t>(NumShards, 1));
  if (NumShards <= 1) {
    Shards[0] = parseShard({Sources.data(), Sources.size()}, Lang);
  } else {
    parallel::parallelChunks(
        Sources.size(), T, [&](size_t Chunk, size_t Begin, size_t End) {
          Shards[Chunk] =
              parseShard({Sources.data() + Begin, End - Begin}, Lang);
        });
  }

  // Merge pass, sequential in shard (= file) order. Interning each
  // shard's strings in shard-local id order replays the serial
  // first-encounter order, so the merged symbol ids are bit-identical to
  // a single-threaded parse; trees are then rewritten onto the merged
  // interner.
  Corpus Out;
  Out.Lang = Lang;
  Out.Interner = std::make_unique<StringInterner>();
  if (NumShards == 1 && Shards[0].Interner) {
    Out.Interner = std::move(Shards[0].Interner);
    Out.Files = std::move(Shards[0].Files);
  } else {
    for (ParseShard &Shard : Shards) {
      const StringInterner &SI = *Shard.Interner;
      std::vector<uint32_t> Remap(SI.size());
      for (uint32_t Id = 1; Id < SI.size(); ++Id)
        Remap[Id] = Out.Interner->intern(SI.str(Symbol::fromIndex(Id)))
                        .index();
      for (ParsedFile &File : Shard.Files) {
        File.Tree.remapSymbols(Remap, *Out.Interner);
        Out.Files.push_back(std::move(File));
      }
    }
  }
  for (ParseShard &Shard : Shards) {
    Out.SourceBytes += Shard.SourceBytes;
    Out.ParseFailures += Shard.Failures.size();
    for (ShardFailure &Failure : Shard.Failures) {
      if (Out.FailureRecords.size() < Corpus::MaxFailureRecords)
        Out.FailureRecords.push_back(std::move(Failure.Record));
      recordParseFailureReason(Failure.RawReason);
    }
    Reg.counter("parse.files.ok").add(Shard.FilesOk);
    Reg.counter(Prefix + ".files.ok").add(Shard.FilesOk);
  }
  Reg.counter("parse.files.failed").add(Out.ParseFailures);
  Reg.counter(Prefix + ".files.failed").add(Out.ParseFailures);
  Reg.counter("parse.bytes").add(Out.SourceBytes);
  return Out;
}

Split core::splitByProject(const Corpus &Corpus, double TestFraction,
                           uint64_t Seed) {
  // Deterministic project ordering, shuffled by seed, cut by fraction.
  std::map<std::string, std::vector<size_t>> ByProject;
  for (size_t I = 0; I < Corpus.Files.size(); ++I)
    ByProject[Corpus.Files[I].Project].push_back(I);
  std::vector<std::string> Projects;
  Projects.reserve(ByProject.size());
  for (const auto &[Project, Indices] : ByProject)
    Projects.push_back(Project);
  Rng R = Rng::forStream(Seed, "project-split");
  R.shuffle(Projects);

  // A non-positive fraction means "no test split" — don't steal a
  // project into test. A positive fraction reserves at least one project
  // (but never the whole corpus when there is more than one project).
  size_t NumTest =
      TestFraction <= 0.0
          ? 0
          : std::max<size_t>(
                1, static_cast<size_t>(
                       TestFraction * static_cast<double>(Projects.size())));
  NumTest = std::min(NumTest, Projects.size() > 1 ? Projects.size() - 1
                                                  : Projects.size());
  Split Out;
  for (size_t P = 0; P < Projects.size(); ++P) {
    const std::vector<size_t> &Indices = ByProject[Projects[P]];
    auto &Dest = P < NumTest ? Out.Test : Out.Train;
    Dest.insert(Dest.end(), Indices.begin(), Indices.end());
  }
  std::sort(Out.Train.begin(), Out.Train.end());
  std::sort(Out.Test.begin(), Out.Test.end());
  return Out;
}

const char *core::taskName(Task T) {
  switch (T) {
  case Task::VariableNames:
    return "variable names";
  case Task::MethodNames:
    return "method names";
  case Task::FullTypes:
    return "full types";
  }
  return "invalid";
}

paths::ExtractionConfig core::tunedExtraction(Language Lang, Task T) {
  paths::ExtractionConfig Config;
  switch (T) {
  case Task::VariableNames:
    switch (Lang) {
    case Language::JavaScript:
      Config.MaxLength = 4;
      Config.MaxWidth = 3;
      break;
    case Language::Java:
      Config.MaxLength = 6;
      Config.MaxWidth = 3;
      break;
    case Language::Python:
      Config.MaxLength = 7;
      Config.MaxWidth = 4;
      break;
    case Language::CSharp:
      Config.MaxLength = 7;
      Config.MaxWidth = 4;
      break;
    }
    break;
  case Task::MethodNames:
    switch (Lang) {
    case Language::JavaScript:
      Config.MaxLength = 8;
      Config.MaxWidth = 4;
      break;
    case Language::Java:
      Config.MaxLength = 6;
      Config.MaxWidth = 2;
      break;
    case Language::Python:
      Config.MaxLength = 8;
      Config.MaxWidth = 6;
      break;
    case Language::CSharp:
      Config.MaxLength = 8;
      Config.MaxWidth = 4;
      break;
    }
    break;
  case Task::FullTypes:
    Config.MaxLength = 4;
    Config.MaxWidth = 1;
    break;
  }
  return Config;
}

crf::ElementSelector core::selectorFor(Task T) {
  switch (T) {
  case Task::VariableNames:
    return [](const ast::ElementInfo &Info) {
      return Info.Predictable &&
             (Info.Kind == ast::ElementKind::LocalVar ||
              Info.Kind == ast::ElementKind::Parameter);
    };
  case Task::MethodNames:
    return [](const ast::ElementInfo &Info) {
      return Info.Predictable && Info.Kind == ast::ElementKind::Method;
    };
  case Task::FullTypes:
    return [](const ast::ElementInfo &) { return false; };
  }
  return [](const ast::ElementInfo &) { return false; };
}
