//===- Pipeline.cpp - Corpus parsing, splitting, task selectors -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "datagen/DomainClasses.h"
#include "lang/csharp/CsParser.h"
#include "lang/java/JavaParser.h"
#include "lang/java/TypeChecker.h"
#include "lang/js/JsParser.h"
#include "lang/python/PyParser.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <map>
#include <set>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

size_t Corpus::numProjects() const {
  std::set<std::string> Projects;
  for (const ParsedFile &File : Files)
    Projects.insert(File.Project);
  return Projects.size();
}

namespace {

/// Short metric-name key per language ("parse.js.files.ok" etc.).
const char *langKey(Language Lang) {
  switch (Lang) {
  case Language::JavaScript:
    return "js";
  case Language::Java:
    return "java";
  case Language::Python:
    return "py";
  case Language::CSharp:
    return "cs";
  }
  return "unknown";
}

} // namespace

Corpus core::parseCorpus(const std::vector<datagen::SourceFile> &Sources,
                         Language Lang) {
  telemetry::TraceScope Phase("parse");
  auto &Reg = telemetry::MetricsRegistry::global();
  const std::string Prefix = std::string("parse.") + langKey(Lang);
  telemetry::Counter &FilesOk = Reg.counter("parse.files.ok");
  telemetry::Counter &FilesFailed = Reg.counter("parse.files.failed");
  telemetry::Counter &LangOk = Reg.counter(Prefix + ".files.ok");
  telemetry::Counter &LangFailed = Reg.counter(Prefix + ".files.failed");
  telemetry::Counter &Bytes = Reg.counter("parse.bytes");
  // Distinct diagnostic-reason counters created by this call are capped so
  // a pathological corpus cannot flood the registry.
  size_t NewReasonBudget = 16;
  std::set<std::string> SeenReasons;

  Corpus Out;
  Out.Lang = Lang;
  Out.Interner = std::make_unique<StringInterner>();

  java::ClassPath CP = java::ClassPath::standard();
  datagen::addDomainClasses(CP);

  for (const datagen::SourceFile &Src : Sources) {
    Out.SourceBytes += Src.Text.size();
    Bytes.add(Src.Text.size());
    lang::ParseResult R;
    switch (Lang) {
    case Language::JavaScript:
      R = js::parse(Src.Text, *Out.Interner);
      break;
    case Language::Java:
      R = java::parse(Src.Text, *Out.Interner);
      break;
    case Language::Python:
      R = py::parse(Src.Text, *Out.Interner);
      break;
    case Language::CSharp:
      R = cs::parse(Src.Text, *Out.Interner);
      break;
    }
    if (!R.Tree || !R.Diags.empty()) {
      ++Out.ParseFailures;
      FilesFailed.inc();
      LangFailed.inc();
      std::string Reason =
          R.Diags.empty() ? "no tree" : R.Diags.front().Message;
      if (Out.FailureRecords.size() < Corpus::MaxFailureRecords)
        Out.FailureRecords.push_back(
            {Src.FileName,
             R.Diags.empty() ? Reason : R.Diags.front().str()});
      if (SeenReasons.count(Reason) || NewReasonBudget > 0) {
        if (SeenReasons.insert(Reason).second)
          --NewReasonBudget;
        Reg.counter("parse.fail.reason." + Reason).inc();
      }
      continue;
    }
    FilesOk.inc();
    LangOk.inc();
    if (Lang == Language::Java)
      java::annotateTypes(*R.Tree, CP);
    Out.Files.push_back({Src.Project, Src.FileName, std::move(*R.Tree)});
  }
  return Out;
}

Split core::splitByProject(const Corpus &Corpus, double TestFraction,
                           uint64_t Seed) {
  // Deterministic project ordering, shuffled by seed, cut by fraction.
  std::map<std::string, std::vector<size_t>> ByProject;
  for (size_t I = 0; I < Corpus.Files.size(); ++I)
    ByProject[Corpus.Files[I].Project].push_back(I);
  std::vector<std::string> Projects;
  Projects.reserve(ByProject.size());
  for (const auto &[Project, Indices] : ByProject)
    Projects.push_back(Project);
  Rng R = Rng::forStream(Seed, "project-split");
  R.shuffle(Projects);

  size_t NumTest = std::max<size_t>(
      1, static_cast<size_t>(TestFraction *
                             static_cast<double>(Projects.size())));
  NumTest = std::min(NumTest, Projects.size() > 1 ? Projects.size() - 1
                                                  : Projects.size());
  Split Out;
  for (size_t P = 0; P < Projects.size(); ++P) {
    const std::vector<size_t> &Indices = ByProject[Projects[P]];
    auto &Dest = P < NumTest ? Out.Test : Out.Train;
    Dest.insert(Dest.end(), Indices.begin(), Indices.end());
  }
  std::sort(Out.Train.begin(), Out.Train.end());
  std::sort(Out.Test.begin(), Out.Test.end());
  return Out;
}

const char *core::taskName(Task T) {
  switch (T) {
  case Task::VariableNames:
    return "variable names";
  case Task::MethodNames:
    return "method names";
  case Task::FullTypes:
    return "full types";
  }
  return "invalid";
}

paths::ExtractionConfig core::tunedExtraction(Language Lang, Task T) {
  paths::ExtractionConfig Config;
  switch (T) {
  case Task::VariableNames:
    switch (Lang) {
    case Language::JavaScript:
      Config.MaxLength = 4;
      Config.MaxWidth = 3;
      break;
    case Language::Java:
      Config.MaxLength = 6;
      Config.MaxWidth = 3;
      break;
    case Language::Python:
      Config.MaxLength = 7;
      Config.MaxWidth = 4;
      break;
    case Language::CSharp:
      Config.MaxLength = 7;
      Config.MaxWidth = 4;
      break;
    }
    break;
  case Task::MethodNames:
    switch (Lang) {
    case Language::JavaScript:
      Config.MaxLength = 8;
      Config.MaxWidth = 4;
      break;
    case Language::Java:
      Config.MaxLength = 6;
      Config.MaxWidth = 2;
      break;
    case Language::Python:
      Config.MaxLength = 8;
      Config.MaxWidth = 6;
      break;
    case Language::CSharp:
      Config.MaxLength = 8;
      Config.MaxWidth = 4;
      break;
    }
    break;
  case Task::FullTypes:
    Config.MaxLength = 4;
    Config.MaxWidth = 1;
    break;
  }
  return Config;
}

crf::ElementSelector core::selectorFor(Task T) {
  switch (T) {
  case Task::VariableNames:
    return [](const ast::ElementInfo &Info) {
      return Info.Predictable &&
             (Info.Kind == ast::ElementKind::LocalVar ||
              Info.Kind == ast::ElementKind::Parameter);
    };
  case Task::MethodNames:
    return [](const ast::ElementInfo &Info) {
      return Info.Predictable && Info.Kind == ast::ElementKind::Method;
    };
  case Task::FullTypes:
    return [](const ast::ElementInfo &) { return false; };
  }
  return [](const ast::ElementInfo &) { return false; };
}
