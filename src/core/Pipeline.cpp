//===- Pipeline.cpp - Corpus parsing, splitting, task selectors -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "datagen/DomainClasses.h"
#include "lang/csharp/CsParser.h"
#include "lang/java/JavaParser.h"
#include "lang/java/TypeChecker.h"
#include "lang/js/JsParser.h"
#include "lang/python/PyParser.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>

using namespace pigeon;
using namespace pigeon::core;
using pigeon::lang::Language;

size_t Corpus::numProjects() const {
  std::set<std::string> Projects;
  for (const ParsedFile &File : Files)
    Projects.insert(File.Project);
  return Projects.size();
}

namespace {

/// Short metric-name key per language ("parse.js.files.ok" etc.).
const char *langKey(Language Lang) {
  switch (Lang) {
  case Language::JavaScript:
    return "js";
  case Language::Java:
    return "java";
  case Language::Python:
    return "py";
  case Language::CSharp:
    return "cs";
  }
  return "unknown";
}

/// One dropped file as a shard worker saw it: the record for the corpus
/// plus the raw first-diagnostic text for reason accounting.
struct ShardFailure {
  ParseFailureRecord Record;
  std::string RawReason;
};

/// Everything one shard worker produced from its contiguous file range.
/// Files and failures are in file order; trees parsed against a delta
/// overlay carry provisional symbols for the shard's novel strings, fixed
/// up by the commit/remap passes of parseCorpus.
struct ParseShard {
  std::vector<ParsedFile> Files;
  std::vector<ShardFailure> Failures;
  size_t SourceBytes = 0;
  uint64_t FilesOk = 0;
};

/// Parses one contiguous range of sources into \p SI (the shared corpus
/// interner for chunk 0 and serial parses, a delta overlay over it for
/// the other shards). This is the exact per-file sequence of the serial
/// parse — including the inline Java type annotation, which interns type
/// strings between files — so committing shard overlays in shard order
/// replays the serial intern order. \p CP is the shared read-only Java
/// class path (null for other languages, which never consult it).
ParseShard parseShard(std::span<const datagen::SourceFile> Sources,
                      Language Lang, StringInterner &SI,
                      const java::ClassPath *CP) {
  ParseShard Shard;
  for (const datagen::SourceFile &Src : Sources) {
    Shard.SourceBytes += Src.Text.size();
    lang::ParseResult R;
    switch (Lang) {
    case Language::JavaScript:
      R = js::parse(Src.Text, SI);
      break;
    case Language::Java:
      R = java::parse(Src.Text, SI);
      break;
    case Language::Python:
      R = py::parse(Src.Text, SI);
      break;
    case Language::CSharp:
      R = cs::parse(Src.Text, SI);
      break;
    }
    if (!R.Tree || !R.Diags.empty()) {
      std::string Reason =
          R.Diags.empty() ? "no tree" : R.Diags.front().Message;
      Shard.Failures.push_back(
          {{Src.FileName, R.Diags.empty() ? Reason : R.Diags.front().str()},
           std::move(Reason)});
      continue;
    }
    ++Shard.FilesOk;
    if (Lang == Language::Java)
      java::annotateTypes(*R.Tree, *CP);
    Shard.Files.push_back({Src.Project, Src.FileName, std::move(*R.Tree)});
  }
  return Shard;
}

/// Process-global budget of distinct `parse.fail.reason.*` counters.
struct ReasonBudget {
  std::mutex Mutex;
  std::set<std::string> Seen;
  size_t Remaining = 16;
};

ReasonBudget &reasonBudget() {
  static ReasonBudget Budget;
  return Budget;
}

} // namespace

std::string core::metricSafeReason(std::string_view Raw) {
  constexpr size_t MaxLen = 48;
  std::string Out;
  Out.reserve(std::min(Raw.size(), MaxLen));
  for (char Ch : Raw) {
    if (Out.size() >= MaxLen)
      break;
    unsigned char U = static_cast<unsigned char>(Ch);
    if ((U >= 'a' && U <= 'z') || (U >= '0' && U <= '9') || U == '.' ||
        U == '-' || U == '_')
      Out += Ch;
    else if (U >= 'A' && U <= 'Z')
      Out += static_cast<char>(U - 'A' + 'a');
    else if (!Out.empty() && Out.back() != '_')
      Out += '_';
  }
  while (!Out.empty() && Out.back() == '_')
    Out.pop_back();
  return Out.empty() ? "unknown" : Out;
}

void core::recordParseFailureReason(std::string_view RawReason) {
  auto &Reg = telemetry::MetricsRegistry::global();
  std::string Key = metricSafeReason(RawReason);
  ReasonBudget &Budget = reasonBudget();
  std::lock_guard<std::mutex> Lock(Budget.Mutex);
  if (!Budget.Seen.count(Key)) {
    if (Budget.Remaining == 0) {
      Reg.counter("parse.fail.reason.other").inc();
      return;
    }
    Budget.Seen.insert(Key);
    --Budget.Remaining;
  }
  Reg.counter("parse.fail.reason." + Key).inc();
}

Corpus core::parseCorpus(const std::vector<datagen::SourceFile> &Sources,
                         Language Lang, size_t Threads) {
  telemetry::TraceScope Phase("parse");
  parallel::StageTimer Stage("parse");
  auto &Reg = telemetry::MetricsRegistry::global();
  const std::string Prefix = std::string("parse.") + langKey(Lang);

  size_t T = parallel::resolveThreads(Threads);

  // Cost-balanced chunk plan over source bytes: parse time tracks input
  // size, so one outsized file lands in its own (stealable) chunk.
  std::vector<uint64_t> Costs;
  Costs.reserve(Sources.size());
  for (const datagen::SourceFile &Src : Sources)
    Costs.push_back(Src.Text.size());
  parallel::ChunkPlan Plan = parallel::planChunks(Sources.size(), T, Costs);
  size_t NumShards = Plan.count();

  Corpus Out;
  Out.Lang = Lang;
  Out.Interner = std::make_unique<StringInterner>();

  // The Java class path is immutable once built and only read by the
  // type checker, so one instance is shared by every shard. Other
  // languages never consult it — don't pay for its construction.
  std::optional<java::ClassPath> CP;
  if (Lang == Language::Java) {
    CP.emplace(java::ClassPath::standard());
    datagen::addDomainClasses(*CP);
  }
  const java::ClassPath *CPPtr = CP ? &*CP : nullptr;

  // Chunk 0 parses serially, straight into the shared corpus interner.
  // This warms the symbol table with the corpus' common vocabulary, so
  // the overlays of the remaining chunks — which read the now-frozen
  // shared interner lock-free — stay small: they hold only strings whose
  // serial first encounter falls inside their own chunk.
  std::vector<ParseShard> Shards(std::max<size_t>(NumShards, 1));
  if (NumShards > 0)
    Shards[0] = parseShard(
        {Sources.data() + Plan.begin(0), Plan.end(0) - Plan.begin(0)}, Lang,
        *Out.Interner, CPPtr);
  Out.Files = std::move(Shards[0].Files);

  if (NumShards > 1) {
    std::vector<std::unique_ptr<StringInterner>> Overlays(NumShards);
    parallel::parallelChunks(
        Plan, T,
        [&](size_t Chunk, size_t Begin, size_t End) {
          Overlays[Chunk] = std::make_unique<StringInterner>(
              StringInterner::Delta, *Out.Interner);
          Shards[Chunk] = parseShard({Sources.data() + Begin, End - Begin},
                                     Lang, *Overlays[Chunk], CPPtr);
        },
        /*FirstChunk=*/1);

    // Ordered commit: interning each overlay's novel strings in overlay
    // id order, chunk by chunk, replays the serial first-encounter
    // order, so the shared interner ends up bit-identical to a
    // single-threaded parse. Cost is one intern per *novel* string —
    // the per-shard full re-intern and O(corpus) remap walk are gone.
    std::vector<std::vector<uint32_t>> Maps(NumShards);
    for (size_t Chunk = 1; Chunk < NumShards; ++Chunk)
      if (Overlays[Chunk])
        Maps[Chunk] = Out.Interner->commitDelta(*Overlays[Chunk]);

    // Provisional fix-up runs parallel again: each tree only swaps the
    // few symbols its own shard discovered. Shards whose overlay stayed
    // empty still need the interner repointed (cheap, no symbol walk).
    parallel::parallelChunks(
        Plan, T,
        [&](size_t Chunk, size_t, size_t) {
          if (!Overlays[Chunk] || Overlays[Chunk]->deltaSize() == 0) {
            for (ParsedFile &File : Shards[Chunk].Files)
              File.Tree.remapProvisional({}, *Out.Interner);
            return;
          }
          for (ParsedFile &File : Shards[Chunk].Files)
            File.Tree.remapProvisional(Maps[Chunk], *Out.Interner);
        },
        /*FirstChunk=*/1);
    for (size_t Chunk = 1; Chunk < NumShards; ++Chunk)
      for (ParsedFile &File : Shards[Chunk].Files)
        Out.Files.push_back(std::move(File));
  }
  for (ParseShard &Shard : Shards) {
    Out.SourceBytes += Shard.SourceBytes;
    Out.ParseFailures += Shard.Failures.size();
    for (ShardFailure &Failure : Shard.Failures) {
      if (Out.FailureRecords.size() < Corpus::MaxFailureRecords)
        Out.FailureRecords.push_back(std::move(Failure.Record));
      recordParseFailureReason(Failure.RawReason);
    }
    Reg.counter("parse.files.ok").add(Shard.FilesOk);
    Reg.counter(Prefix + ".files.ok").add(Shard.FilesOk);
  }
  Reg.counter("parse.files.failed").add(Out.ParseFailures);
  Reg.counter(Prefix + ".files.failed").add(Out.ParseFailures);
  Reg.counter("parse.bytes").add(Out.SourceBytes);
  return Out;
}

Split core::splitByProject(const Corpus &Corpus, double TestFraction,
                           uint64_t Seed) {
  // Deterministic project ordering, shuffled by seed, cut by fraction.
  std::map<std::string, std::vector<size_t>> ByProject;
  for (size_t I = 0; I < Corpus.Files.size(); ++I)
    ByProject[Corpus.Files[I].Project].push_back(I);
  std::vector<std::string> Projects;
  Projects.reserve(ByProject.size());
  for (const auto &[Project, Indices] : ByProject)
    Projects.push_back(Project);
  Rng R = Rng::forStream(Seed, "project-split");
  R.shuffle(Projects);

  // A non-positive fraction means "no test split" — don't steal a
  // project into test. A positive fraction reserves at least one project
  // (but never the whole corpus when there is more than one project).
  size_t NumTest =
      TestFraction <= 0.0
          ? 0
          : std::max<size_t>(
                1, static_cast<size_t>(
                       TestFraction * static_cast<double>(Projects.size())));
  NumTest = std::min(NumTest, Projects.size() > 1 ? Projects.size() - 1
                                                  : Projects.size());
  Split Out;
  for (size_t P = 0; P < Projects.size(); ++P) {
    const std::vector<size_t> &Indices = ByProject[Projects[P]];
    auto &Dest = P < NumTest ? Out.Test : Out.Train;
    Dest.insert(Dest.end(), Indices.begin(), Indices.end());
  }
  std::sort(Out.Train.begin(), Out.Train.end());
  std::sort(Out.Test.begin(), Out.Test.end());
  return Out;
}

const char *core::taskName(Task T) {
  switch (T) {
  case Task::VariableNames:
    return "variable names";
  case Task::MethodNames:
    return "method names";
  case Task::FullTypes:
    return "full types";
  }
  return "invalid";
}

paths::ExtractionConfig core::tunedExtraction(Language Lang, Task T) {
  paths::ExtractionConfig Config;
  switch (T) {
  case Task::VariableNames:
    switch (Lang) {
    case Language::JavaScript:
      Config.MaxLength = 4;
      Config.MaxWidth = 3;
      break;
    case Language::Java:
      Config.MaxLength = 6;
      Config.MaxWidth = 3;
      break;
    case Language::Python:
      Config.MaxLength = 7;
      Config.MaxWidth = 4;
      break;
    case Language::CSharp:
      Config.MaxLength = 7;
      Config.MaxWidth = 4;
      break;
    }
    break;
  case Task::MethodNames:
    switch (Lang) {
    case Language::JavaScript:
      Config.MaxLength = 8;
      Config.MaxWidth = 4;
      break;
    case Language::Java:
      Config.MaxLength = 6;
      Config.MaxWidth = 2;
      break;
    case Language::Python:
      Config.MaxLength = 8;
      Config.MaxWidth = 6;
      break;
    case Language::CSharp:
      Config.MaxLength = 8;
      Config.MaxWidth = 4;
      break;
    }
    break;
  case Task::FullTypes:
    Config.MaxLength = 4;
    Config.MaxWidth = 1;
    break;
  }
  return Config;
}

crf::ElementSelector core::selectorFor(Task T) {
  switch (T) {
  case Task::VariableNames:
    return [](const ast::ElementInfo &Info) {
      return Info.Predictable &&
             (Info.Kind == ast::ElementKind::LocalVar ||
              Info.Kind == ast::ElementKind::Parameter);
    };
  case Task::MethodNames:
    return [](const ast::ElementInfo &Info) {
      return Info.Predictable && Info.Kind == ast::ElementKind::Method;
    };
  case Task::FullTypes:
    return [](const ast::ElementInfo &) { return false; };
  }
  return [](const ast::ElementInfo &) { return false; };
}
