//===- MappedBundle.h - Zero-copy mmap model bundles (v3) -------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundle format v3: one contiguous, offset-based, 8-byte-aligned,
/// little-endian file served directly from an mmap'ed region with no
/// deserialization. The string arena, packed-path arena, their stored
/// lookup indexes and the flat CRF tables are read in place — loading a
/// bundle costs one mmap plus O(index) validation instead of re-interning
/// every string and path, and every `pigeon serve` process on a host
/// shares the model's pages through the page cache.
///
/// On-disk layout (all integers little-endian; see DESIGN.md §11 for the
/// full specification):
///
///   [0, 48)    fixed header: magic "PIGB", version 3, file size,
///              lang/task/abstraction/semi-paths, max_length/max_width,
///              section count, string count, path count
///   [48, 360)  section table: 13 x 24-byte entries {kind, reserved,
///              offset, length}, in fixed kind order 1..13
///   [360, ...) sections, each starting 8-byte aligned (zero padding
///              between), in table order
///   last 16    trailer: FNV-1a 64 checksum over [0, trailer), trailer
///              magic "PGT3"
///
/// Validation is fail-closed: magic/version (with expected-vs-found
/// diagnostics and byte offsets), exact file size, section alignment,
/// overflow-checked bounds, non-overlap, element-size divisibility,
/// monotonic offset arrays, stored-index slot ranges and label-index
/// ranges are all checked before any section pointer is handed to the
/// frozen views, so a hostile file is rejected instead of read out of
/// bounds. Checksum verification is opt-in (it touches every page, which
/// defeats lazy paging; `pigeon migrate-bundle --check` and the tests
/// turn it on).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_CORE_MAPPEDBUNDLE_H
#define PIGEON_CORE_MAPPEDBUNDLE_H

#include "core/ModelIO.h"

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace pigeon {
namespace core {

/// RAII read-only mapping of a whole file. The region stays valid (and
/// the pages stay shared with other processes mapping the same file)
/// until destruction.
class MappedRegion {
public:
  /// Maps \p Path read-only. \returns nullptr with \p Error set on open,
  /// stat or mmap failure. Empty files map as a null region of size 0.
  static std::shared_ptr<const MappedRegion> open(const std::string &Path,
                                                  std::string *Error);

  ~MappedRegion();

  MappedRegion(const MappedRegion &) = delete;
  MappedRegion &operator=(const MappedRegion &) = delete;

  const uint8_t *data() const { return static_cast<const uint8_t *>(Data); }
  size_t size() const { return Size; }

private:
  MappedRegion(void *Data, size_t Size) : Data(Data), Size(Size) {}

  void *Data = nullptr;
  size_t Size = 0;
};

/// Writes \p Bundle to \p OS in the v3 mmap format. The output is fully
/// deterministic: arenas in id order, flat CRF tables sorted by key,
/// stored indexes built with the stable hash in id order.
void saveModelV3(std::ostream &OS, const ModelBundle &Bundle);

/// Maps the v3 bundle at \p Path and serves it in place: the returned
/// bundle's interner, path table and CRF read the mapped sections
/// directly (ModelBundle::Mapping keeps the region alive). \returns
/// nullptr with \p Diag filled on any validation failure. \p
/// VerifyChecksum additionally verifies the trailer checksum (touches
/// every page).
std::unique_ptr<ModelBundle> openMappedBundle(const std::string &Path,
                                              LoadDiag *Diag = nullptr,
                                              bool VerifyChecksum = false);

/// Loads the bundle at \p Path by sniffing its version: v3 maps in
/// place (openMappedBundle), anything else takes the v2 stream loader.
/// The graceful-fallback entry point every tool should use.
std::unique_ptr<ModelBundle> loadModelFile(const std::string &Path,
                                           LoadDiag *Diag = nullptr,
                                           bool VerifyChecksum = false);

} // namespace core
} // namespace pigeon

#endif // PIGEON_CORE_MAPPEDBUNDLE_H
