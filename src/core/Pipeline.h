//===- Pipeline.h - Corpus parsing, splitting, task selectors ---*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PIGEON's plumbing: parse generated corpora with the right frontend,
/// split by project (no train/test leakage, as in the paper's per-project
/// GitHub splits), and define which program elements each prediction task
/// targets.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_CORE_PIPELINE_H
#define PIGEON_CORE_PIPELINE_H

#include "ast/Ast.h"
#include "datagen/Sketch.h"
#include "lang/common/Frontend.h"
#include "ml/crf/Crf.h"
#include "paths/Paths.h"

#include <memory>
#include <string>
#include <vector>

namespace pigeon {
namespace core {

/// One parsed file of a corpus.
struct ParsedFile {
  std::string Project;
  std::string FileName;
  ast::Tree Tree;
};

/// One dropped file: which file, and the first diagnostic that killed it
/// ("no tree" when the frontend produced no AST at all).
struct ParseFailureRecord {
  std::string FileName;
  std::string Reason;
};

/// A parsed corpus. Owns the interner all its trees point into.
struct Corpus {
  lang::Language Lang = lang::Language::JavaScript;
  std::unique_ptr<StringInterner> Interner;
  std::vector<ParsedFile> Files;
  /// Total source bytes (Table 1's size column).
  size_t SourceBytes = 0;
  /// Number of files that failed to parse (dropped).
  size_t ParseFailures = 0;
  /// The first MaxFailureRecords dropped files with their first
  /// diagnostic, for triage; ParseFailures is the authoritative count.
  static constexpr size_t MaxFailureRecords = 32;
  std::vector<ParseFailureRecord> FailureRecords;

  size_t numProjects() const;
};

/// Parses every file of \p Sources with the frontend for \p Lang. Files
/// with diagnostics are dropped (and counted), like unparsable GitHub
/// files. For Java, expression types are annotated with the type oracle.
Corpus parseCorpus(const std::vector<datagen::SourceFile> &Sources,
                   lang::Language Lang);

/// Train/test file index split, grouped by project so no project spans
/// the boundary.
struct Split {
  std::vector<size_t> Train;
  std::vector<size_t> Test;
};
Split splitByProject(const Corpus &Corpus, double TestFraction,
                     uint64_t Seed);

/// The paper's three prediction tasks (§5.3).
enum class Task {
  VariableNames, ///< Locals and parameters (§5.3.1).
  MethodNames,   ///< Methods defined in the file (§5.3.2).
  FullTypes,     ///< Fully-qualified expression types, Java (§5.3.3).
};

const char *taskName(Task T);

/// The unknown-element selector the CRF uses for \p T (FullTypes builds
/// per-expression graphs instead and has no selector).
crf::ElementSelector selectorFor(Task T);

/// Validation-tuned max_length/max_width per language and task — the
/// analogue of the paper's Table 2 "Params" column. (Our optimal lengths
/// are shorter than the paper's for some languages because the synthetic
/// functions are smaller than real GitHub functions; see EXPERIMENTS.md.)
paths::ExtractionConfig tunedExtraction(lang::Language Lang, Task T);

} // namespace core
} // namespace pigeon

#endif // PIGEON_CORE_PIPELINE_H
