//===- Pipeline.h - Corpus parsing, splitting, task selectors ---*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PIGEON's plumbing: parse generated corpora with the right frontend,
/// split by project (no train/test leakage, as in the paper's per-project
/// GitHub splits), and define which program elements each prediction task
/// targets.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_CORE_PIPELINE_H
#define PIGEON_CORE_PIPELINE_H

#include "ast/Ast.h"
#include "datagen/Sketch.h"
#include "lang/common/Frontend.h"
#include "ml/crf/Crf.h"
#include "paths/Paths.h"

#include <memory>
#include <string>
#include <vector>

namespace pigeon {
namespace core {

/// One parsed file of a corpus.
struct ParsedFile {
  std::string Project;
  std::string FileName;
  ast::Tree Tree;
};

/// One dropped file: which file, and the first diagnostic that killed it
/// ("no tree" when the frontend produced no AST at all).
struct ParseFailureRecord {
  std::string FileName;
  std::string Reason;
};

/// A parsed corpus. Owns the interner all its trees point into.
struct Corpus {
  lang::Language Lang = lang::Language::JavaScript;
  std::unique_ptr<StringInterner> Interner;
  std::vector<ParsedFile> Files;
  /// Total source bytes (Table 1's size column).
  size_t SourceBytes = 0;
  /// Number of files that failed to parse (dropped).
  size_t ParseFailures = 0;
  /// The first MaxFailureRecords dropped files with their first
  /// diagnostic, for triage; ParseFailures is the authoritative count.
  static constexpr size_t MaxFailureRecords = 32;
  std::vector<ParseFailureRecord> FailureRecords;

  size_t numProjects() const;
};

/// Parses every file of \p Sources with the frontend for \p Lang. Files
/// with diagnostics are dropped (and counted), like unparsable GitHub
/// files. For Java, expression types are annotated with the type oracle.
///
/// The parse is sharded over \p Threads workers (0 = the process default,
/// see parallel::resolveThreads), each with a private StringInterner;
/// shards are merged in file order through a symbol-remap pass, so the
/// returned Corpus — interner contents *and* symbol ids — is bit-identical
/// to a serial parse at any thread count.
Corpus parseCorpus(const std::vector<datagen::SourceFile> &Sources,
                   lang::Language Lang, size_t Threads = 0);

/// Sanitizes raw diagnostic text into a metric-name component: lowercased,
/// runs of characters outside [a-z0-9_.-] collapsed to '_', truncated.
/// Keeps free-form parse errors from leaking spaces/quotes into
/// `parse.fail.reason.*` counter names (and thus JSON keys).
std::string metricSafeReason(std::string_view Raw);

/// Counts one parse failure under `parse.fail.reason.<sanitized>`. The
/// number of distinct reason counters is capped per *process* (not per
/// call); reasons past the cap fold into `parse.fail.reason.other`, so a
/// pathological corpus or repeated parses cannot flood the registry.
void recordParseFailureReason(std::string_view RawReason);

/// Train/test file index split, grouped by project so no project spans
/// the boundary.
struct Split {
  std::vector<size_t> Train;
  std::vector<size_t> Test;
};
/// A \p TestFraction <= 0 yields an empty test split (train on
/// everything); a positive fraction reserves at least one project for
/// test, but never the only project of a multi-project corpus.
Split splitByProject(const Corpus &Corpus, double TestFraction,
                     uint64_t Seed);

/// The paper's three prediction tasks (§5.3).
enum class Task {
  VariableNames, ///< Locals and parameters (§5.3.1).
  MethodNames,   ///< Methods defined in the file (§5.3.2).
  FullTypes,     ///< Fully-qualified expression types, Java (§5.3.3).
};

const char *taskName(Task T);

/// The unknown-element selector the CRF uses for \p T (FullTypes builds
/// per-expression graphs instead and has no selector).
crf::ElementSelector selectorFor(Task T);

/// Validation-tuned max_length/max_width per language and task — the
/// analogue of the paper's Table 2 "Params" column. (Our optimal lengths
/// are shorter than the paper's for some languages because the synthetic
/// functions are smaller than real GitHub functions; see EXPERIMENTS.md.)
paths::ExtractionConfig tunedExtraction(lang::Language Lang, Task T);

} // namespace core
} // namespace pigeon

#endif // PIGEON_CORE_PIPELINE_H
