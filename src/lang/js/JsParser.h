//===- JsParser.h - MiniJS frontend ------------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a rich JavaScript subset (MiniJS) into the generic AST, using
/// UglifyJS-flavoured node kinds so the trees match the paper's figures:
/// SymbolRef, SymbolVar, SymbolFunarg, VarDef, Assign=, UnaryPrefix!,
/// Binary+, While, If, Call, Dot, Sub, ... (Figs. 1, 2, 4, 5).
///
/// Element linking: declared vars/params/functions resolve lexically;
/// occurrences of one binding share an ElementId. Undeclared names become
/// file-global elements — predictable locals unless they are only ever
/// used as call targets (external API functions, which minifiers keep).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_JS_JSPARSER_H
#define PIGEON_LANG_JS_JSPARSER_H

#include "lang/common/Frontend.h"
#include "support/StringInterner.h"

#include <string_view>

namespace pigeon {
namespace js {

/// Parses MiniJS \p Source. Node kind and value symbols are interned into
/// \p Interner, which must outlive the returned tree.
lang::ParseResult parse(std::string_view Source, StringInterner &Interner);

} // namespace js
} // namespace pigeon

#endif // PIGEON_LANG_JS_JSPARSER_H
