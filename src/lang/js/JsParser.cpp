//===- JsParser.cpp - MiniJS frontend ---------------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/js/JsParser.h"

#include "lang/common/Lexer.h"
#include "lang/common/ParserBase.h"
#include "lang/common/ScopeStack.h"

#include <string>

using namespace pigeon;
using namespace pigeon::lang;
using namespace pigeon::ast;

namespace {

const LexerConfig &jsLexerConfig() {
  static const LexerConfig Config = [] {
    LexerConfig C;
    C.Keywords = {"var",      "let",    "const",   "function", "return",
                  "if",       "else",   "while",   "do",       "for",
                  "break",    "continue", "new",   "delete",   "typeof",
                  "in",       "of",     "instanceof", "true",  "false",
                  "null",     "undefined", "this", "throw",    "try",
                  "catch",    "finally"};
    C.Punctuators = {
        "===", "!==", ">>>", "...", "=>",  "==", "!=", "<=", ">=", "&&",
        "||",  "++",  "--",  "+=",  "-=",  "*=", "/=", "%=", "&=", "|=",
        "^=",  "<<",  ">>",  "(",   ")",   "{",  "}",  "[",  "]",  ";",
        ",",   ".",   ":",   "?",   "=",   "+",  "-",  "*",  "/",  "%",
        "<",   ">",   "!",   "~",   "&",   "|",  "^"};
    C.SlashSlashComments = true;
    C.SlashStarComments = true;
    C.DollarInIdentifiers = true;
    return C;
  }();
  return Config;
}

/// Recursive-descent parser for MiniJS, emitting UglifyJS-style nodes.
class JsParser : ParserBase {
public:
  JsParser(const std::vector<Token> &Tokens, Diagnostics &Diags,
           StringInterner &Interner)
      : ParserBase(Tokens, Diags), Interner(Interner), Builder(Interner) {}

  Tree run() {
    Builder.begin("Toplevel");
    while (!atEnd()) {
      size_t Before = Cursor;
      parseStatement();
      if (Cursor == Before)
        advance(); // Guarantee progress on malformed input.
    }
    Builder.end();
    return std::move(Builder).finish();
  }

private:
  StringInterner &Interner;
  TreeBuilder Builder;
  ScopeStack Scopes;
  /// Undeclared names that have (so far) only appeared in callee position.
  std::unordered_map<Symbol, ElementId> GlobalCallees;

  Symbol intern(std::string_view S) { return Interner.intern(S); }

  //===--------------------------------------------------------------------===//
  // Element resolution
  //===--------------------------------------------------------------------===//

  ElementId declareVar(Symbol Name, ElementKind Kind) {
    ElementId Id = Builder.addElement(Name, Kind, /*Predictable=*/true);
    Scopes.declare(Name, Id);
    return Id;
  }

  /// Resolves a name use. Undeclared names become file-global elements:
  /// callee uses are treated as known external functions, other uses as
  /// predictable (minified) variables.
  ElementId resolveUse(Symbol Name, bool CalleePosition) {
    ElementId Id = Scopes.lookup(Name);
    if (Id != InvalidElement)
      return Id;
    auto It = GlobalCallees.find(Name);
    if (It != GlobalCallees.end())
      return It->second;
    ElementId New =
        CalleePosition
            ? Builder.addElement(Name, ElementKind::Method,
                                 /*Predictable=*/false)
            : Builder.addElement(Name, ElementKind::LocalVar,
                                 /*Predictable=*/true);
    if (CalleePosition)
      GlobalCallees.emplace(Name, New);
    else
      Scopes.declareGlobal(Name, New);
    return New;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void parseStatement() {
    if (at("function")) {
      parseFunctionDecl();
      return;
    }
    if (at("var") || at("let") || at("const")) {
      parseVarStatement();
      accept(";");
      return;
    }
    if (at("if")) {
      parseIf();
      return;
    }
    if (at("while")) {
      parseWhile();
      return;
    }
    if (at("do")) {
      parseDoWhile();
      return;
    }
    if (at("for")) {
      parseFor();
      return;
    }
    if (at("return")) {
      advance();
      Builder.begin("Return");
      if (!at(";") && !at("}") && !atEnd())
        parseExpression();
      Builder.end();
      accept(";");
      return;
    }
    if (at("break")) {
      advance();
      Builder.begin("Break");
      Builder.end();
      accept(";");
      return;
    }
    if (at("continue")) {
      advance();
      Builder.begin("Continue");
      Builder.end();
      accept(";");
      return;
    }
    if (at("throw")) {
      advance();
      Builder.begin("Throw");
      parseExpression();
      Builder.end();
      accept(";");
      return;
    }
    if (at("try")) {
      parseTry();
      return;
    }
    if (at("{")) {
      parseBlock();
      return;
    }
    if (accept(";"))
      return;
    // Expression statement.
    Builder.begin("SimpleStatement");
    parseExpression();
    Builder.end();
    accept(";");
  }

  void parseBlock() {
    expect("{");
    Scopes.push();
    Builder.begin("Block");
    while (!at("}") && !atEnd()) {
      size_t Before = Cursor;
      parseStatement();
      if (Cursor == Before)
        advance();
    }
    Builder.end();
    Scopes.pop();
    expect("}");
  }

  /// Parses a statement body that may or may not be a block, without
  /// introducing a Block node for single statements (UglifyJS-style).
  void parseBody() {
    if (at("{")) {
      parseBlock();
      return;
    }
    parseStatement();
  }

  void parseFunctionDecl() {
    expect("function");
    Token Name = expectIdentifier("function name");
    Symbol NameSym = intern(Name.Text);
    ElementId Fn = Builder.addElement(NameSym, ElementKind::Method,
                                      /*Predictable=*/true);
    Scopes.declare(NameSym, Fn);
    Builder.begin("Defun");
    Builder.terminal(intern("SymbolDefun"), NameSym, Fn);
    Scopes.push();
    parseParamsAndBody();
    Scopes.pop();
    Builder.end();
  }

  void parseParamsAndBody() {
    expect("(");
    while (!at(")") && !atEnd()) {
      Token Param = expectIdentifier("parameter");
      Symbol ParamSym = intern(Param.Text);
      ElementId Id = declareVar(ParamSym, ElementKind::Parameter);
      Builder.terminal(intern("SymbolFunarg"), ParamSym, Id);
      if (!accept(","))
        break;
    }
    expect(")");
    expect("{");
    while (!at("}") && !atEnd()) {
      size_t Before = Cursor;
      parseStatement();
      if (Cursor == Before)
        advance();
    }
    expect("}");
  }

  void parseVarStatement() {
    std::string Kw(advance().Text); // var / let / const.
    Builder.begin(Kw == "const" ? "Const" : (Kw == "let" ? "Let" : "Var"));
    do {
      Builder.begin("VarDef");
      Token Name = expectIdentifier("variable name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id = declareVar(NameSym, ElementKind::LocalVar);
      Builder.terminal(intern("SymbolVar"), NameSym, Id);
      if (accept("="))
        parseAssignment();
      Builder.end();
    } while (accept(","));
    Builder.end();
  }

  void parseIf() {
    expect("if");
    Builder.begin("If");
    expect("(");
    parseExpression();
    expect(")");
    parseBody();
    if (accept("else"))
      parseBody();
    Builder.end();
  }

  void parseWhile() {
    expect("while");
    Builder.begin("While");
    expect("(");
    parseExpression();
    expect(")");
    parseBody();
    Builder.end();
  }

  void parseDoWhile() {
    expect("do");
    Builder.begin("Do");
    parseBody();
    expect("while");
    expect("(");
    parseExpression();
    expect(")");
    accept(";");
    Builder.end();
  }

  void parseFor() {
    expect("for");
    expect("(");
    // Distinguish for-in/of from the classic three-clause form.
    size_t Save = Cursor;
    bool IsForIn = false;
    {
      // Lookahead: [var|let|const] ident (in|of).
      if (at("var") || at("let") || at("const"))
        advance();
      if (atKind(TokenKind::Identifier)) {
        advance();
        if (at("in") || at("of"))
          IsForIn = true;
      }
      Cursor = Save;
    }
    if (IsForIn) {
      Builder.begin(peek(1).is("of") || peek(2).is("of") ? "ForOf" : "ForIn");
      Scopes.push();
      bool Declared = at("var") || at("let") || at("const");
      if (Declared)
        advance();
      Token Name = expectIdentifier("loop variable");
      Symbol NameSym = intern(Name.Text);
      if (Declared) {
        ElementId Id = declareVar(NameSym, ElementKind::LocalVar);
        Builder.terminal(intern("SymbolVar"), NameSym, Id);
      } else {
        ElementId Id = resolveUse(NameSym, /*CalleePosition=*/false);
        Builder.terminal(intern("SymbolRef"), NameSym, Id);
      }
      advance(); // in / of.
      parseExpression();
      expect(")");
      parseBody();
      Scopes.pop();
      Builder.end();
      return;
    }
    Builder.begin("For");
    Scopes.push();
    if (!accept(";")) {
      if (at("var") || at("let") || at("const"))
        parseVarStatement();
      else
        parseExpression();
      expect(";");
    }
    if (!accept(";")) {
      parseExpression();
      expect(";");
    }
    if (!at(")"))
      parseExpression();
    expect(")");
    parseBody();
    Scopes.pop();
    Builder.end();
  }

  void parseTry() {
    expect("try");
    Builder.begin("Try");
    parseBlock();
    if (accept("catch")) {
      Builder.begin("Catch");
      Scopes.push();
      if (accept("(")) {
        Token Name = expectIdentifier("catch parameter");
        Symbol NameSym = intern(Name.Text);
        ElementId Id = declareVar(NameSym, ElementKind::Parameter);
        Builder.terminal(intern("SymbolCatch"), NameSym, Id);
        expect(")");
      }
      parseBlock();
      Scopes.pop();
      Builder.end();
    }
    if (accept("finally")) {
      Builder.begin("Finally");
      parseBlock();
      Builder.end();
    }
    Builder.end();
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  void parseExpression() {
    parseAssignment();
    while (accept(",")) {
      // Comma expression: flatten as Seq.
      parseAssignment();
    }
  }

  static bool isAssignOp(std::string_view Op) {
    return Op == "=" || Op == "+=" || Op == "-=" || Op == "*=" ||
           Op == "/=" || Op == "%=" || Op == "&=" || Op == "|=" || Op == "^=";
  }

  void parseAssignment() {
    // Parse the LHS first into a pending subtree: we cannot know whether an
    // Assign node wraps it until we see the operator, so parse-then-wrap is
    // not possible with a streaming builder. Instead, detect assignments
    // with lookahead on simple LHS shapes (identifier / member chains),
    // which covers MiniJS (and the corpora the generator produces).
    if (isAssignmentAhead()) {
      // Scan the operator to name the node (Assign=, Assign+=, ...).
      std::string Op = findAssignOp();
      Builder.begin(std::string("Assign") + Op);
      parseCallChain(/*StopAtAssign=*/true);
      expect(Op);
      parseAssignment();
      Builder.end();
      return;
    }
    parseConditional();
  }

  /// Lookahead: does an assignment operator terminate the upcoming
  /// primary/member chain at the current bracket depth?
  bool isAssignmentAhead() const {
    size_t I = Cursor;
    int Depth = 0;
    // A simple LHS: identifier/this followed by .prop, [expr], or nothing.
    if (!(peek().is(TokenKind::Identifier) || peek().is("this")))
      return false;
    ++I;
    auto Tok = [&](size_t J) -> const Token & {
      return J < Tokens.size() ? Tokens[J] : Tokens.back();
    };
    while (I < Tokens.size()) {
      const Token &T = Tok(I);
      if (Depth == 0 && T.is(TokenKind::Punct) && isAssignOp(T.Text) &&
          !Tok(I + 1).is("=")) // Exclude '==' family (not produced anyway).
        return true;
      if (T.is(".")) {
        I += 2; // Skip '.' and the property name.
        continue;
      }
      if (T.is("[")) {
        ++Depth;
        ++I;
        continue;
      }
      if (T.is("]")) {
        if (Depth == 0)
          return false;
        --Depth;
        ++I;
        continue;
      }
      if (Depth > 0) {
        ++I;
        continue;
      }
      return false;
    }
    return false;
  }

  std::string findAssignOp() const {
    size_t I = Cursor;
    int Depth = 0;
    while (I < Tokens.size()) {
      const Token &T = Tokens[I];
      if (Depth == 0 && T.is(TokenKind::Punct) && isAssignOp(T.Text))
        return std::string(T.Text);
      if (T.is("["))
        ++Depth;
      else if (T.is("]"))
        --Depth;
      ++I;
    }
    return "=";
  }

  void parseConditional() {
    // Parse condition; on '?', wrap into Conditional. Since the builder
    // streams, parse the condition inside a tentative Conditional only when
    // '?' is ahead at depth 0 before any terminator.
    if (isConditionalAhead()) {
      Builder.begin("Conditional");
      parseBinary(0, /*StopAtQuestion=*/true);
      expect("?");
      parseAssignment();
      expect(":");
      parseAssignment();
      Builder.end();
      return;
    }
    parseBinary(0, /*StopAtQuestion=*/false);
  }

  bool isConditionalAhead() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is("(") || T.is("[") || T.is("{"))
        ++Depth;
      else if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          return false;
        --Depth;
      } else if (Depth == 0) {
        if (T.is("?"))
          return true;
        if (T.is(";") || T.is(",") || T.is(":") || T.is(TokenKind::Eof) ||
            (T.is(TokenKind::Punct) && isAssignOp(T.Text)))
          return false;
      }
    }
    return false;
  }

  /// Binary operator precedence levels, loosest first.
  static int precedenceOf(std::string_view Op) {
    if (Op == "||")
      return 1;
    if (Op == "&&")
      return 2;
    if (Op == "|")
      return 3;
    if (Op == "^")
      return 4;
    if (Op == "&")
      return 5;
    if (Op == "==" || Op == "!=" || Op == "===" || Op == "!==")
      return 6;
    if (Op == "<" || Op == ">" || Op == "<=" || Op == ">=" || Op == "in" ||
        Op == "instanceof")
      return 7;
    if (Op == "<<" || Op == ">>" || Op == ">>>")
      return 8;
    if (Op == "+" || Op == "-")
      return 9;
    if (Op == "*" || Op == "/" || Op == "%")
      return 10;
    return 0;
  }

  /// Collects the operand token ranges of a left-associative binary chain
  /// by precedence climbing over the token stream, then emits nested
  /// Binary<op> nodes. To keep the streaming builder, we parse operands
  /// recursively and wrap via begin-before-parse using lookahead for the
  /// next operator at this precedence level.
  void parseBinary(int MinPrec, bool StopAtQuestion) {
    // Count how many operators of each precedence chain follow, so we can
    // open the right number of Binary nodes (left-assoc => left-nested).
    parseBinaryLevel(1, StopAtQuestion);
    (void)MinPrec;
  }

  /// Parses one precedence level: operand (next level) followed by zero or
  /// more (op operand) pairs. Left-associativity with a streaming preorder
  /// builder requires knowing the chain length ahead of time; we count
  /// same-level operators via lookahead.
  void parseBinaryLevel(int Prec, bool StopAtQuestion) {
    if (Prec > 10) {
      parseUnary();
      return;
    }
    // A streaming preorder builder must open wrapper nodes before their
    // contents, so pre-scan the operator spellings of this level.
    std::vector<std::string> Ops =
        operatorSpellingsAtLevel(Prec, StopAtQuestion);
    int Count = static_cast<int>(Ops.size());
    // Left-nested: ((a op1 b) op2 c). Outermost node is the *last* op.
    for (auto It = Ops.rbegin(); It != Ops.rend(); ++It)
      Builder.begin(std::string("Binary") + *It);
    parseBinaryLevel(Prec + 1, StopAtQuestion);
    for (int I = 0; I < Count; ++I) {
      std::string Op = std::string(advance().Text);
      // Operator drift: the lookahead scan and the actual parse disagree
      // about this level's operator chain. A bare assert here is compiled
      // out of Release builds — the exact builds CI benches — so this is
      // an always-on diagnostic instead: the file gets dropped by the
      // corpus pipeline (counted under parse.fail.reason.*) rather than
      // silently producing a wrong AST.
      if (Op != Ops[static_cast<size_t>(I)])
        error("operator drift: expected '" + Ops[static_cast<size_t>(I)] +
              "', found '" + Op + "'");
      parseBinaryLevel(Prec + 1, StopAtQuestion);
      Builder.end();
    }
  }

  /// Scans forward from the cursor, at bracket depth 0, collecting the
  /// spellings of operators of exactly precedence \p Prec until an
  /// expression terminator or a looser operator.
  std::vector<std::string>
  operatorSpellingsAtLevel(int Prec, bool StopAtQuestion) const {
    std::vector<std::string> Ops;
    int Depth = 0;
    bool PrevWasOperand = false;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is("(") || T.is("[") || T.is("{")) {
        ++Depth;
        PrevWasOperand = false;
        continue;
      }
      if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          break;
        --Depth;
        PrevWasOperand = true;
        continue;
      }
      if (Depth > 0)
        continue;
      if (T.is(TokenKind::Eof) || T.is(";") || T.is(",") || T.is(":"))
        break;
      if (StopAtQuestion && T.is("?"))
        break;
      if (T.is(TokenKind::Punct) || T.is("in") || T.is("instanceof")) {
        int P = precedenceOf(T.Text);
        if (P > 0 && PrevWasOperand) {
          if (P < Prec)
            break; // Looser operator ends this level.
          if (P == Prec)
            Ops.push_back(std::string(T.Text));
          PrevWasOperand = false;
          continue;
        }
        if (T.is(TokenKind::Punct) && isAssignOp(T.Text))
          break;
      }
      PrevWasOperand = !T.is("!") && !T.is("~") && !T.is("new") &&
                       !T.is("typeof") && !T.is("delete");
    }
    return Ops;
  }

  void parseUnary() {
    if (at("!") || at("~") || at("typeof") || at("delete") ||
        (at("-") ) || (at("+")) || at("++") || at("--")) {
      std::string Op(advance().Text);
      Builder.begin(std::string("UnaryPrefix") + Op);
      parseUnary();
      Builder.end();
      return;
    }
    parsePostfix();
  }

  void parsePostfix() {
    // Member/call chain with optional postfix ++/--.
    if (peekPostfixIncrement()) {
      std::string Op = postfixOpSpelling();
      Builder.begin(std::string("UnaryPostfix") + Op);
      parseCallChain(/*StopAtAssign=*/false);
      advance(); // The ++/--.
      Builder.end();
      return;
    }
    parseCallChain(/*StopAtAssign=*/false);
  }

  bool peekPostfixIncrement() const {
    // Lookahead: a primary/member chain followed immediately by ++/--.
    size_t I = Cursor;
    int Depth = 0;
    if (!(Tokens[I].is(TokenKind::Identifier) || Tokens[I].is("this")))
      return false;
    ++I;
    while (I < Tokens.size()) {
      const Token &T = Tokens[I];
      if (Depth == 0 && (T.is("++") || T.is("--")))
        return true;
      if (T.is(".")) {
        I += 2;
        continue;
      }
      if (T.is("[")) {
        ++Depth;
        ++I;
        continue;
      }
      if (T.is("]")) {
        if (Depth == 0)
          return false;
        --Depth;
        ++I;
        continue;
      }
      if (Depth > 0) {
        ++I;
        continue;
      }
      return false;
    }
    return false;
  }

  std::string postfixOpSpelling() const {
    size_t I = Cursor;
    int Depth = 0;
    while (I < Tokens.size()) {
      const Token &T = Tokens[I];
      if (Depth == 0 && (T.is("++") || T.is("--")))
        return std::string(T.Text);
      if (T.is("["))
        ++Depth;
      else if (T.is("]"))
        --Depth;
      ++I;
    }
    return "++";
  }

  /// Parses primary expressions followed by .prop / [index] / (args)
  /// chains. The streaming-builder problem (wrap-after-parse) is solved by
  /// pre-scanning the chain links and opening the wrapper nodes outermost
  /// first.
  void parseCallChain(bool StopAtAssign) {
    (void)StopAtAssign;
    struct Link {
      enum Kind { DotLink, SubLink, CallLink } K;
    };
    // Pre-scan chain links following the primary expression.
    std::vector<Link::Kind> Links;
    {
      size_t I = Cursor;
      int Depth = 0;
      // Skip the primary: identifier/this/literal or parenthesised expr or
      // array/object literal or function expr or new-expr.
      if (I < Tokens.size()) {
        const Token &T = Tokens[I];
        if (T.is("(") || T.is("[") || T.is("{")) {
          int D = 0;
          do {
            const Token &U = Tokens[I];
            if (U.is("(") || U.is("[") || U.is("{"))
              ++D;
            else if (U.is(")") || U.is("]") || U.is("}"))
              --D;
            ++I;
          } while (I < Tokens.size() && D > 0);
        } else if (T.is("function")) {
          // function [name] (args) { ... }  — skip to matching brace.
          ++I;
          if (I < Tokens.size() && Tokens[I].is(TokenKind::Identifier))
            ++I;
          int D = 0;
          bool SeenBrace = false;
          while (I < Tokens.size()) {
            const Token &U = Tokens[I];
            if (U.is("(") || U.is("[") || U.is("{")) {
              ++D;
              if (U.is("{"))
                SeenBrace = true;
            } else if (U.is(")") || U.is("]") || U.is("}")) {
              --D;
              if (SeenBrace && D == 0) {
                ++I;
                break;
              }
            }
            ++I;
          }
        } else if (T.is("new")) {
          // Links after a new-expression attach inside parseNew; treat the
          // whole new-expr as opaque here (no outer links pre-scanned).
          Links.clear();
          I = Cursor;
          parseNewOrPrimaryWithLinks();
          return;
        } else {
          ++I;
        }
      }
      while (I < Tokens.size()) {
        const Token &T = Tokens[I];
        if (Depth == 0 && T.is(".")) {
          Links.push_back(Link::DotLink);
          I += 2;
          continue;
        }
        if (Depth == 0 && T.is("[")) {
          Links.push_back(Link::SubLink);
          ++Depth;
          ++I;
          continue;
        }
        if (Depth == 0 && T.is("(")) {
          Links.push_back(Link::CallLink);
          ++Depth;
          ++I;
          continue;
        }
        if (T.is("(") || T.is("[") || T.is("{")) {
          ++Depth;
          ++I;
          continue;
        }
        if (T.is(")") || T.is("]") || T.is("}")) {
          if (Depth == 0)
            break;
          --Depth;
          ++I;
          continue;
        }
        if (Depth > 0) {
          ++I;
          continue;
        }
        break;
      }
    }

    // Open wrappers outermost-first: the last link is the outermost node.
    for (auto It = Links.rbegin(); It != Links.rend(); ++It) {
      switch (*It) {
      case Link::DotLink:
        Builder.begin("Dot");
        break;
      case Link::SubLink:
        Builder.begin("Sub");
        break;
      case Link::CallLink:
        Builder.begin("Call");
        break;
      }
    }

    bool CalleeNext = !Links.empty() && Links.front() == Link::CallLink;
    parsePrimary(CalleeNext);

    for (Link::Kind K : Links) {
      switch (K) {
      case Link::DotLink: {
        expect(".");
        Token Prop = expectIdentifierOrKeyword("property name");
        Builder.terminal(intern("Property"), intern(Prop.Text));
        break;
      }
      case Link::SubLink:
        expect("[");
        parseExpression();
        expect("]");
        break;
      case Link::CallLink:
        expect("(");
        while (!at(")") && !atEnd()) {
          parseAssignment();
          if (!accept(","))
            break;
        }
        expect(")");
        break;
      }
      Builder.end();
    }
  }

  Token expectIdentifierOrKeyword(const char *What) {
    if (atKind(TokenKind::Identifier) || atKind(TokenKind::Keyword))
      return advance();
    return expectIdentifier(What);
  }

  void parseNewOrPrimaryWithLinks() {
    expect("new");
    Builder.begin("New");
    // Callee: identifier or dotted name.
    Token Name = expectIdentifier("constructor name");
    ElementId Id = resolveUse(intern(Name.Text), /*CalleePosition=*/true);
    // Dotted constructor names: a.B — emit Dot chains.
    if (at(".")) {
      // Pre-scan dotted links.
      std::vector<Token> Props;
      while (accept(".")) {
        Props.push_back(expectIdentifierOrKeyword("property name"));
      }
      for (size_t I = 0; I < Props.size(); ++I)
        Builder.begin("Dot");
      Builder.terminal(intern("SymbolRef"), intern(Name.Text), Id);
      for (Token &P : Props) {
        Builder.terminal(intern("Property"), intern(P.Text));
        Builder.end();
      }
    } else {
      Builder.terminal(intern("SymbolRef"), intern(Name.Text), Id);
    }
    if (accept("(")) {
      while (!at(")") && !atEnd()) {
        parseAssignment();
        if (!accept(","))
          break;
      }
      expect(")");
    }
    Builder.end();
  }

  void parsePrimary(bool CalleePosition) {
    const Token &T = peek();
    if (T.is(TokenKind::Identifier)) {
      advance();
      Symbol NameSym = intern(T.Text);
      ElementId Id = resolveUse(NameSym, CalleePosition);
      Builder.terminal(intern("SymbolRef"), NameSym, Id);
      return;
    }
    if (T.is("this")) {
      advance();
      Builder.begin("This");
      Builder.end();
      return;
    }
    if (T.is(TokenKind::IntLiteral) || T.is(TokenKind::FloatLiteral)) {
      advance();
      Builder.terminal(intern("Num"), intern(T.Text));
      return;
    }
    if (T.is(TokenKind::StringLiteral)) {
      advance();
      Builder.terminal(intern("Str"), intern(T.stringValue()));
      return;
    }
    if (T.is("true")) {
      advance();
      Builder.terminal(intern("True"), intern("true"));
      return;
    }
    if (T.is("false")) {
      advance();
      Builder.terminal(intern("False"), intern("false"));
      return;
    }
    if (T.is("null")) {
      advance();
      Builder.terminal(intern("Null"), intern("null"));
      return;
    }
    if (T.is("undefined")) {
      advance();
      Builder.terminal(intern("Undefined"), intern("undefined"));
      return;
    }
    if (T.is("(")) {
      advance();
      parseExpression();
      expect(")");
      return;
    }
    if (T.is("[")) {
      advance();
      Builder.begin("Array");
      while (!at("]") && !atEnd()) {
        parseAssignment();
        if (!accept(","))
          break;
      }
      expect("]");
      Builder.end();
      return;
    }
    if (T.is("{")) {
      advance();
      Builder.begin("Object");
      while (!at("}") && !atEnd()) {
        Builder.begin("ObjectKeyVal");
        Token Key = peek();
        if (Key.is(TokenKind::StringLiteral)) {
          advance();
          Builder.terminal(intern("ObjectKey"), intern(Key.stringValue()));
        } else {
          Token K = expectIdentifierOrKeyword("object key");
          Builder.terminal(intern("ObjectKey"), intern(K.Text));
        }
        expect(":");
        parseAssignment();
        Builder.end();
        if (!accept(","))
          break;
      }
      expect("}");
      Builder.end();
      return;
    }
    if (T.is("function")) {
      advance();
      Builder.begin("Function");
      Scopes.push();
      if (atKind(TokenKind::Identifier)) {
        Token Name = advance();
        Symbol NameSym = intern(Name.Text);
        ElementId Id = Builder.addElement(NameSym, ElementKind::Method,
                                          /*Predictable=*/true);
        Scopes.declare(NameSym, Id);
        Builder.terminal(intern("SymbolLambda"), NameSym, Id);
      }
      parseParamsAndBody();
      Scopes.pop();
      Builder.end();
      return;
    }
    if (T.is("new")) {
      parseNewOrPrimaryWithLinks();
      return;
    }
    error(std::string("unexpected token '") + std::string(T.Text) +
          "' in expression");
    advance();
    Builder.terminal(intern("Error"), intern("<error>"));
  }
};

} // namespace

lang::ParseResult js::parse(std::string_view Source,
                            StringInterner &Interner) {
  Diagnostics Diags(Source);
  Lexer Lex(Source, jsLexerConfig(), Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  JsParser Parser(Tokens, Diags, Interner);
  lang::ParseResult Result;
  Result.Tree = Parser.run();
  Result.Diags = Diags.all();
  return Result;
}
