//===- Diagnostics.h - Parse diagnostics ------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error collection for the frontends. Library code never exits or throws;
/// parsers report diagnostics here and return best-effort trees, and the
/// pipeline decides whether a file is usable.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_COMMON_DIAGNOSTICS_H
#define PIGEON_LANG_COMMON_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pigeon {
namespace lang {

/// One reported problem, with a resolved line/column position.
struct Diagnostic {
  std::string Message;
  uint32_t Line = 0;   ///< 1-based.
  uint32_t Column = 0; ///< 1-based.

  /// Renders as "line:col: message".
  std::string str() const;
};

/// Collects diagnostics for a single source buffer.
class Diagnostics {
public:
  explicit Diagnostics(std::string_view Source) : Source(Source) {}

  /// Reports an error at byte \p Offset of the source buffer.
  void error(uint32_t Offset, std::string Message);

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Concatenates all diagnostics, newline-separated.
  std::string str() const;

private:
  std::string_view Source;
  std::vector<Diagnostic> Diags;
};

} // namespace lang
} // namespace pigeon

#endif // PIGEON_LANG_COMMON_DIAGNOSTICS_H
