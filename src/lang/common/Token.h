//===- Token.h - Language-neutral token model -------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A token model shared by all four frontends. The lexer is configured per
/// language (keyword set, punctuators, comment styles, significant
/// indentation) but emits the same Token type, so parser machinery and the
/// token-stream baselines are language-independent.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_COMMON_TOKEN_H
#define PIGEON_LANG_COMMON_TOKEN_H

#include <cstdint>
#include <string>
#include <string_view>

namespace pigeon {
namespace lang {

/// Coarse lexical category of a token.
enum class TokenKind : uint8_t {
  Identifier,
  Keyword,
  IntLiteral,
  FloatLiteral,
  StringLiteral,
  Punct,   ///< Operator or delimiter, e.g. "+", "(", "=>".
  Newline, ///< Logical line break (indentation-sensitive mode only).
  Indent,  ///< Indentation increased (indentation-sensitive mode only).
  Dedent,  ///< Indentation decreased (indentation-sensitive mode only).
  Eof,
  Error, ///< Unrecognised input; Text holds the offending character(s).
};

/// \returns a printable name for \p Kind.
const char *tokenKindName(TokenKind Kind);

/// A single lexed token. Text views into the source buffer, which must
/// outlive the token (the SourceFile owns it).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  /// Exact source spelling. For StringLiteral this includes the quotes.
  std::string_view Text;
  /// Byte offset of the first character within the source buffer.
  uint32_t Offset = 0;

  bool is(TokenKind K) const { return Kind == K; }

  /// True if this is a keyword or punctuator spelled exactly \p Spelling.
  bool is(std::string_view Spelling) const {
    return (Kind == TokenKind::Keyword || Kind == TokenKind::Punct) &&
           Text == Spelling;
  }

  /// The literal's contents without quotes (StringLiteral only).
  std::string_view stringValue() const;
};

} // namespace lang
} // namespace pigeon

#endif // PIGEON_LANG_COMMON_TOKEN_H
