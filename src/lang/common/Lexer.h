//===- Lexer.h - Configurable lexer for all frontends -----------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One lexer serves all four languages; a LexerConfig selects the keyword
/// set, punctuators, comment styles and whether indentation is significant
/// (Python). Indentation-sensitive mode emits Newline/Indent/Dedent tokens
/// with bracket-nesting suppression, mirroring CPython's tokenizer.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_COMMON_LEXER_H
#define PIGEON_LANG_COMMON_LEXER_H

#include "lang/common/Diagnostics.h"
#include "lang/common/Token.h"

#include <string_view>
#include <unordered_set>
#include <vector>

namespace pigeon {
namespace lang {

/// Static description of a language's lexical grammar.
struct LexerConfig {
  /// Reserved words; identifiers matching one lex as Keyword.
  std::unordered_set<std::string_view> Keywords;
  /// Multi- and single-character operators/delimiters. Matched longest
  /// first; every single character that can start a punctuator should also
  /// appear on its own if legal.
  std::vector<std::string_view> Punctuators;
  bool SlashSlashComments = false; ///< `// ...`
  bool SlashStarComments = false;  ///< `/* ... */`
  bool HashComments = false;       ///< `# ...`
  bool SignificantIndentation = false;
  bool SingleQuoteStrings = true;
  bool DoubleQuoteStrings = true;
  bool DollarInIdentifiers = false; ///< `$` is an identifier char (JS).
};

/// Lexes a whole buffer into a token vector (always terminated by Eof).
class Lexer {
public:
  Lexer(std::string_view Source, const LexerConfig &Config,
        Diagnostics &Diags);

  /// Runs the lexer over the whole buffer.
  std::vector<Token> lexAll();

private:
  std::string_view Source;
  const LexerConfig &Config;
  Diagnostics &Diags;

  size_t Pos = 0;
  int BracketDepth = 0;
  std::vector<int> IndentStack;
  std::vector<Token> Out;
  /// True when at least one real token was emitted since the last Newline,
  /// so blank/comment-only lines produce no Newline token.
  bool LineHasTokens = false;

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  bool atEnd() const { return Pos >= Source.size(); }

  void emit(TokenKind Kind, size_t Start);
  void handleLineStart();
  void lexNumber();
  void lexIdentifier();
  void lexString(char Quote);
  bool lexPunctuator();
  void skipBlockComment();
};

} // namespace lang
} // namespace pigeon

#endif // PIGEON_LANG_COMMON_LEXER_H
