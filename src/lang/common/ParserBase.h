//===- ParserBase.h - Shared recursive-descent machinery --------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-cursor plumbing shared by the four recursive-descent parsers:
/// lookahead, conditional consumption, expectation with diagnostics, and
/// panic-mode recovery helpers.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_COMMON_PARSERBASE_H
#define PIGEON_LANG_COMMON_PARSERBASE_H

#include "lang/common/Diagnostics.h"
#include "lang/common/Token.h"

#include <cassert>
#include <string>
#include <vector>

namespace pigeon {
namespace lang {

/// Base class holding the token cursor. Each frontend derives its parser
/// from this and emits into an ast::TreeBuilder.
class ParserBase {
protected:
  ParserBase(const std::vector<Token> &Tokens, Diagnostics &Diags)
      : Tokens(Tokens), Diags(Diags) {
    assert(!Tokens.empty() && Tokens.back().is(TokenKind::Eof) &&
           "token stream must be Eof-terminated");
  }

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Cursor + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  bool atEnd() const { return peek().is(TokenKind::Eof); }

  /// Consumes and returns the current token.
  Token advance() {
    Token T = peek();
    if (Cursor + 1 < Tokens.size())
      ++Cursor;
    return T;
  }

  /// True if the current token is the keyword/punctuator \p Spelling.
  bool at(std::string_view Spelling) const { return peek().is(Spelling); }

  bool atKind(TokenKind Kind) const { return peek().is(Kind); }

  /// Consumes the current token if it is \p Spelling.
  bool accept(std::string_view Spelling) {
    if (!at(Spelling))
      return false;
    advance();
    return true;
  }

  /// Consumes \p Spelling or reports an error (without consuming).
  bool expect(std::string_view Spelling) {
    if (accept(Spelling))
      return true;
    error(std::string("expected '") + std::string(Spelling) + "', found '" +
          std::string(peek().Text) + "'");
    return false;
  }

  /// Consumes an identifier or reports an error and returns a placeholder.
  Token expectIdentifier(const char *What = "identifier") {
    if (atKind(TokenKind::Identifier))
      return advance();
    error(std::string("expected ") + What + ", found '" +
          std::string(peek().Text) + "'");
    Token Bad = peek();
    Bad.Kind = TokenKind::Identifier;
    Bad.Text = "<error>";
    // Consume one token so panic recovery makes progress, unless we are at
    // a closer/Eof where skipping would lose structure.
    if (!atEnd() && !at(")") && !at("}") && !at("]") && !at(";"))
      advance();
    return Bad;
  }

  void error(std::string Message) { Diags.error(peek().Offset, Message); }

  /// Skips tokens until one of \p Spellings or Eof; does not consume the
  /// stop token. Used for statement-level recovery.
  void skipUntil(std::initializer_list<std::string_view> Spellings) {
    while (!atEnd()) {
      for (std::string_view S : Spellings)
        if (at(S))
          return;
      advance();
    }
  }

  const std::vector<Token> &Tokens;
  Diagnostics &Diags;
  size_t Cursor = 0;
};

} // namespace lang
} // namespace pigeon

#endif // PIGEON_LANG_COMMON_PARSERBASE_H
