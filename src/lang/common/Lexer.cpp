//===- Lexer.cpp - Configurable lexer for all frontends --------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/common/Lexer.h"

#include <algorithm>
#include <cassert>
#include <cctype>

using namespace pigeon;
using namespace pigeon::lang;

const char *lang::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Keyword:
    return "keyword";
  case TokenKind::IntLiteral:
    return "int";
  case TokenKind::FloatLiteral:
    return "float";
  case TokenKind::StringLiteral:
    return "string";
  case TokenKind::Punct:
    return "punct";
  case TokenKind::Newline:
    return "newline";
  case TokenKind::Indent:
    return "indent";
  case TokenKind::Dedent:
    return "dedent";
  case TokenKind::Eof:
    return "eof";
  case TokenKind::Error:
    return "error";
  }
  return "invalid";
}

std::string_view Token::stringValue() const {
  // Always-on precondition (asserts are compiled out in Release): a
  // non-string token has no quotes to strip, so return its text verbatim
  // instead of corrupting it — callers treat the value opaquely and the
  // parser diagnostics cover the underlying confusion.
  if (Kind != TokenKind::StringLiteral)
    return Text;
  if (Text.size() >= 2)
    return Text.substr(1, Text.size() - 2);
  return Text;
}

std::string Diagnostic::str() const {
  return std::to_string(Line) + ":" + std::to_string(Column) + ": " + Message;
}

void Diagnostics::error(uint32_t Offset, std::string Message) {
  uint32_t Line = 1, Col = 1;
  size_t End = std::min<size_t>(Offset, Source.size());
  for (size_t I = 0; I < End; ++I) {
    if (Source[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
  }
  Diags.push_back({std::move(Message), Line, Col});
}

std::string Diagnostics::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}

static bool isIdentStart(char C, bool Dollar) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
         (Dollar && C == '$');
}
static bool isIdentCont(char C, bool Dollar) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         (Dollar && C == '$');
}

Lexer::Lexer(std::string_view Source, const LexerConfig &Config,
             Diagnostics &Diags)
    : Source(Source), Config(Config), Diags(Diags) {
  IndentStack.push_back(0);
}

void Lexer::emit(TokenKind Kind, size_t Start) {
  Out.push_back({Kind, Source.substr(Start, Pos - Start),
                 static_cast<uint32_t>(Start)});
  if (Kind != TokenKind::Newline && Kind != TokenKind::Indent &&
      Kind != TokenKind::Dedent)
    LineHasTokens = true;
}

void Lexer::skipBlockComment() {
  // Always-on precondition: called off a "/*" the cursor math below would
  // walk garbage. Raise a diagnostic and consume one character so the
  // lexer keeps making progress in Release builds too.
  if (peek() != '/' || peek(1) != '*') {
    Diags.error(static_cast<uint32_t>(Pos),
                "lexer desync: expected block comment");
    if (!atEnd())
      ++Pos;
    return;
  }
  size_t Start = Pos;
  Pos += 2;
  while (!atEnd()) {
    if (peek() == '*' && peek(1) == '/') {
      Pos += 2;
      return;
    }
    ++Pos;
  }
  Diags.error(static_cast<uint32_t>(Start), "unterminated block comment");
}

void Lexer::handleLineStart() {
  // Measure indentation of the next non-blank, non-comment-only line, then
  // emit Indent/Dedent tokens against the indent stack.
  while (true) {
    size_t LineStart = Pos;
    int Indent = 0;
    while (peek() == ' ' || peek() == '\t') {
      Indent += peek() == '\t' ? 8 - (Indent % 8) : 1;
      ++Pos;
    }
    // Blank line or comment-only line: swallow and continue measuring.
    if (peek() == '\n') {
      ++Pos;
      continue;
    }
    if (Config.HashComments && peek() == '#') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (atEnd()) {
      // Close all open indentation levels at EOF.
      while (IndentStack.back() > 0) {
        IndentStack.pop_back();
        emit(TokenKind::Dedent, Pos);
      }
      return;
    }
    if (Indent > IndentStack.back()) {
      IndentStack.push_back(Indent);
      emit(TokenKind::Indent, LineStart);
    } else {
      while (Indent < IndentStack.back()) {
        IndentStack.pop_back();
        emit(TokenKind::Dedent, LineStart);
      }
      if (Indent != IndentStack.back())
        Diags.error(static_cast<uint32_t>(LineStart),
                    "inconsistent indentation");
    }
    return;
  }
}

void Lexer::lexNumber() {
  size_t Start = Pos;
  bool IsFloat = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      ++Pos;
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t Save = Pos;
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        IsFloat = true;
        while (std::isdigit(static_cast<unsigned char>(peek())))
          ++Pos;
      } else {
        Pos = Save;
      }
    }
  }
  // Trailing type suffixes (Java/C#: 1L, 2.0f, 3.5d).
  if (peek() == 'L' || peek() == 'l' || peek() == 'f' || peek() == 'F' ||
      peek() == 'd' || peek() == 'D') {
    if (peek() == 'f' || peek() == 'F' || peek() == 'd' || peek() == 'D')
      IsFloat = true;
    ++Pos;
  }
  emit(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral, Start);
}

void Lexer::lexIdentifier() {
  size_t Start = Pos;
  while (isIdentCont(peek(), Config.DollarInIdentifiers))
    ++Pos;
  std::string_view Text = Source.substr(Start, Pos - Start);
  emit(Config.Keywords.count(Text) ? TokenKind::Keyword
                                   : TokenKind::Identifier,
       Start);
}

void Lexer::lexString(char Quote) {
  size_t Start = Pos;
  ++Pos; // Opening quote.
  while (!atEnd() && peek() != Quote && peek() != '\n') {
    if (peek() == '\\' && Pos + 1 < Source.size())
      ++Pos; // Skip the escaped character.
    ++Pos;
  }
  if (peek() == Quote) {
    ++Pos;
    emit(TokenKind::StringLiteral, Start);
    return;
  }
  Diags.error(static_cast<uint32_t>(Start), "unterminated string literal");
  emit(TokenKind::Error, Start);
}

bool Lexer::lexPunctuator() {
  size_t Start = Pos;
  std::string_view Rest = Source.substr(Pos);
  // Longest match wins; config lists are short so a linear scan is fine.
  std::string_view Best;
  for (std::string_view P : Config.Punctuators)
    if (P.size() > Best.size() && Rest.substr(0, P.size()) == P)
      Best = P;
  if (Best.empty())
    return false;
  Pos += Best.size();
  emit(TokenKind::Punct, Start);
  return true;
}

std::vector<Token> Lexer::lexAll() {
  bool AtLineStart = Config.SignificantIndentation;
  while (true) {
    if (Config.SignificantIndentation && AtLineStart) {
      // Inside brackets a physical newline does not start a logical line.
      if (BracketDepth == 0) {
        handleLineStart();
        LineHasTokens = false;
      }
      AtLineStart = false;
    }
    if (atEnd())
      break;

    char C = peek();
    if (C == '\n') {
      if (Config.SignificantIndentation && BracketDepth == 0) {
        if (LineHasTokens)
          emit(TokenKind::Newline, Pos);
        AtLineStart = true;
      }
      ++Pos;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++Pos;
      continue;
    }
    if (Config.SlashSlashComments && C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (Config.SlashStarComments && C == '/' && peek(1) == '*') {
      skipBlockComment();
      continue;
    }
    if (Config.HashComments && C == '#') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (isIdentStart(C, Config.DollarInIdentifiers)) {
      lexIdentifier();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber();
      continue;
    }
    if ((C == '"' && Config.DoubleQuoteStrings) ||
        (C == '\'' && Config.SingleQuoteStrings)) {
      lexString(C);
      continue;
    }
    if (C == '(' || C == '[' || C == '{')
      ++BracketDepth;
    else if (C == ')' || C == ']' || C == '}')
      BracketDepth = std::max(0, BracketDepth - 1);
    if (lexPunctuator())
      continue;

    Diags.error(static_cast<uint32_t>(Pos), std::string("unexpected "
                                                        "character '") +
                                                C + "'");
    size_t Start = Pos++;
    emit(TokenKind::Error, Start);
  }

  // Close the last logical line and any open indentation.
  if (Config.SignificantIndentation) {
    if (LineHasTokens)
      emit(TokenKind::Newline, Pos);
    while (IndentStack.back() > 0) {
      IndentStack.pop_back();
      emit(TokenKind::Dedent, Pos);
    }
  }
  Out.push_back({TokenKind::Eof, Source.substr(Pos > Source.size()
                                                   ? Source.size()
                                                   : Pos,
                                               0),
                 static_cast<uint32_t>(Source.size())});
  return std::move(Out);
}
