//===- Frontend.h - Uniform frontend interface ------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shape every language frontend exposes: parse source text into the
/// generic AST plus diagnostics. PIGEON's pipeline only depends on this.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_COMMON_FRONTEND_H
#define PIGEON_LANG_COMMON_FRONTEND_H

#include "ast/Ast.h"
#include "lang/common/Diagnostics.h"

#include <optional>
#include <vector>

namespace pigeon {
namespace lang {

/// The four languages PIGEON supports (§5.1).
enum class Language : uint8_t { JavaScript, Java, Python, CSharp };

/// \returns the display name used in the paper's tables.
const char *languageName(Language Lang);

/// Outcome of parsing one source buffer. Tree is present whenever a
/// best-effort AST could be built, even if diagnostics were reported;
/// callers decide whether errored files are usable.
struct ParseResult {
  std::optional<ast::Tree> Tree;
  std::vector<Diagnostic> Diags;

  bool ok() const { return Tree.has_value() && Diags.empty(); }
};

inline const char *languageName(Language Lang) {
  switch (Lang) {
  case Language::JavaScript:
    return "JavaScript";
  case Language::Java:
    return "Java";
  case Language::Python:
    return "Python";
  case Language::CSharp:
    return "C#";
  }
  return "invalid";
}

} // namespace lang
} // namespace pigeon

#endif // PIGEON_LANG_COMMON_FRONTEND_H
