//===- ScopeStack.h - Lexical scoping for element resolution ----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps names to program-element ids through a stack of lexical scopes.
/// Frontends use this to link every occurrence of a variable/parameter/
/// method to one ast::ElementId, which is what makes CRF nodes (merged
/// occurrences) and the paper's unary factors possible.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_COMMON_SCOPESTACK_H
#define PIGEON_LANG_COMMON_SCOPESTACK_H

#include "ast/Ast.h"
#include "support/StringInterner.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace pigeon {
namespace lang {

/// A stack of name->element maps with innermost-first lookup.
class ScopeStack {
public:
  ScopeStack() { Scopes.emplace_back(); } // Global scope.

  /// Opens a nested scope.
  void push() { Scopes.emplace_back(); }

  /// Closes the innermost scope. The global scope cannot be popped.
  void pop() {
    assert(Scopes.size() > 1 && "cannot pop the global scope");
    Scopes.pop_back();
  }

  size_t depth() const { return Scopes.size(); }

  /// Binds \p Name in the innermost scope, shadowing outer bindings.
  void declare(Symbol Name, ast::ElementId Id) {
    Scopes.back()[Name] = Id;
  }

  /// Binds \p Name in the outermost (global) scope.
  void declareGlobal(Symbol Name, ast::ElementId Id) {
    Scopes.front()[Name] = Id;
  }

  /// Innermost binding of \p Name, or InvalidElement.
  ast::ElementId lookup(Symbol Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return ast::InvalidElement;
  }

  /// True if \p Name is bound in the innermost scope specifically.
  bool declaredInCurrent(Symbol Name) const {
    return Scopes.back().count(Name) != 0;
  }

private:
  std::vector<std::unordered_map<Symbol, ast::ElementId>> Scopes;
};

} // namespace lang
} // namespace pigeon

#endif // PIGEON_LANG_COMMON_SCOPESTACK_H
