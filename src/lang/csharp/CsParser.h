//===- CsParser.h - MiniC# frontend ------------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a rich C# subset (MiniC#) into the generic AST with
/// Roslyn-flavoured node kinds. The C# trees are deliberately more
/// elaborate than the Java ones — IdentifierName wraps its Identifier
/// token, arguments are wrapped in ArgumentList/Argument, initializers in
/// EqualsValueClause — mirroring the paper's observation (§5.5) that "the
/// C# AST is slightly more elaborate than the one we used for Java", which
/// is why its best path parameters differ.
///
/// Supported: namespaces, using directives, classes with fields, methods
/// and auto-properties, predefined and generic types, var declarations,
/// foreach, and the usual statements/expressions.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_CSHARP_CSPARSER_H
#define PIGEON_LANG_CSHARP_CSPARSER_H

#include "lang/common/Frontend.h"
#include "support/StringInterner.h"

#include <string_view>

namespace pigeon {
namespace cs {

/// Parses MiniC# \p Source into a generic AST.
lang::ParseResult parse(std::string_view Source, StringInterner &Interner);

} // namespace cs
} // namespace pigeon

#endif // PIGEON_LANG_CSHARP_CSPARSER_H
