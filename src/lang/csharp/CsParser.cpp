//===- CsParser.cpp - MiniC# frontend -----------------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/csharp/CsParser.h"

#include "lang/common/Lexer.h"
#include "lang/common/ParserBase.h"
#include "lang/common/ScopeStack.h"

#include <string>

using namespace pigeon;
using namespace pigeon::lang;
using namespace pigeon::ast;

namespace {

const LexerConfig &csLexerConfig() {
  static const LexerConfig Config = [] {
    LexerConfig C;
    C.Keywords = {"namespace", "using",   "class",    "interface",
                  "public",    "private", "protected", "internal",
                  "static",    "readonly", "const",   "void",
                  "int",       "long",    "double",   "float",
                  "bool",      "string",  "char",     "byte",
                  "object",    "var",     "if",       "else",
                  "while",     "do",      "for",      "foreach",
                  "in",        "return",  "break",    "continue",
                  "new",       "this",    "base",     "true",
                  "false",     "null",    "try",      "catch",
                  "finally",   "throw",   "is",       "as",
                  "get",       "set",     "override", "virtual",
                  "sealed",    "abstract"};
    C.Punctuators = {"==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=",
                     "-=", "*=", "/=", "%=", "=>", "??", "(",  ")",  "{",
                     "}",  "[",  "]",  ";",  ",",  ".",  ":",  "?",  "=",
                     "+",  "-",  "*",  "/",  "%",  "<",  ">",  "!",  "&",
                     "|",  "^",  "~",  "@"};
    C.SlashSlashComments = true;
    C.SlashStarComments = true;
    return C;
  }();
  return Config;
}

bool isPredefinedType(std::string_view S) {
  return S == "int" || S == "long" || S == "double" || S == "float" ||
         S == "bool" || S == "string" || S == "char" || S == "byte" ||
         S == "object" || S == "void";
}

bool isCsModifier(std::string_view S) {
  return S == "public" || S == "private" || S == "protected" ||
         S == "internal" || S == "static" || S == "readonly" ||
         S == "const" || S == "override" || S == "virtual" ||
         S == "sealed" || S == "abstract";
}

/// Recursive-descent parser for MiniC#, emitting Roslyn-style nodes.
class CsParser : ParserBase {
public:
  CsParser(const std::vector<Token> &Tokens, Diagnostics &Diags,
           StringInterner &Interner)
      : ParserBase(Tokens, Diags), Interner(Interner), Builder(Interner) {}

  Tree run() {
    Builder.begin("CompilationUnit");
    while (at("using")) {
      advance();
      Builder.begin("UsingDirective");
      Builder.terminal(intern("Name"), intern(parseDottedName()));
      Builder.end();
      expect(";");
    }
    while (!atEnd()) {
      size_t Before = Cursor;
      if (at("namespace")) {
        advance();
        Builder.begin("NamespaceDeclaration");
        Builder.terminal(intern("Name"), intern(parseDottedName()));
        expect("{");
        while (!at("}") && !atEnd()) {
          size_t B2 = Cursor;
          parseTopLevel();
          if (Cursor == B2)
            advance();
        }
        expect("}");
        Builder.end();
      } else {
        parseTopLevel();
      }
      if (Cursor == Before && !atEnd())
        advance();
    }
    Builder.end();
    return std::move(Builder).finish();
  }

private:
  StringInterner &Interner;
  TreeBuilder Builder;
  ScopeStack Scopes;
  std::unordered_map<Symbol, ElementId> ClassFields;
  std::unordered_map<Symbol, ElementId> ClassMethods;
  std::unordered_map<Symbol, ElementId> ClassProperties;

  Symbol intern(std::string_view S) { return Interner.intern(S); }

  void parseTopLevel() {
    skipModifiers();
    if (at("class") || at("interface")) {
      parseClass();
      return;
    }
    if (!atEnd()) {
      error("expected type declaration");
      advance();
    }
  }

  void skipModifiers() {
    while ((atKind(TokenKind::Keyword) && isCsModifier(peek().Text)) ||
           at("@"))
      advance();
  }

  std::string parseDottedName() {
    std::string Name(expectIdentifier("name").Text);
    while (at(".") && peek(1).is(TokenKind::Identifier)) {
      advance();
      Name += '.';
      Name += std::string(advance().Text);
    }
    return Name;
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  bool scanType(size_t I, size_t &End) const {
    auto Tok = [&](size_t J) -> const Token & {
      return J < Tokens.size() ? Tokens[J] : Tokens.back();
    };
    if (Tok(I).is(TokenKind::Keyword) &&
        (isPredefinedType(Tok(I).Text) || Tok(I).is("var"))) {
      ++I;
    } else if (Tok(I).is(TokenKind::Identifier)) {
      ++I;
      while (Tok(I).is(".") && Tok(I + 1).is(TokenKind::Identifier))
        I += 2;
      if (Tok(I).is("<")) {
        int Depth = 0;
        size_t J = I;
        while (J < Tokens.size()) {
          const Token &T = Tok(J);
          if (T.is("<"))
            ++Depth;
          else if (T.is(">")) {
            --Depth;
            if (Depth == 0) {
              ++J;
              break;
            }
          } else if (!(T.is(TokenKind::Identifier) || T.is(",") || T.is(".") ||
                       T.is("[") || T.is("]") ||
                       (T.is(TokenKind::Keyword) &&
                        isPredefinedType(T.Text))))
            return false;
          ++J;
        }
        if (Depth != 0)
          return false;
        I = J;
      }
    } else {
      return false;
    }
    while (Tok(I).is("[") && Tok(I + 1).is("]"))
      I += 2;
    End = I;
    return true;
  }

  void parseType() {
    size_t End = Cursor;
    int ArrayDims = 0;
    if (scanType(Cursor, End)) {
      size_t J = End;
      while (J >= 2 && Tokens[J - 1].is("]") && Tokens[J - 2].is("[")) {
        ++ArrayDims;
        J -= 2;
      }
    }
    for (int I = 0; I < ArrayDims; ++I)
      Builder.begin("ArrayType");
    parseNonArrayType();
    for (int I = 0; I < ArrayDims; ++I) {
      expect("[");
      expect("]");
      Builder.end();
    }
  }

  void parseNonArrayType() {
    if (atKind(TokenKind::Keyword) &&
        (isPredefinedType(peek().Text) || at("var"))) {
      Token T = advance();
      Builder.terminal(intern("PredefinedType"), intern(T.Text));
      return;
    }
    std::string Name = parseDottedName();
    if (at("<")) {
      Builder.begin("GenericName");
      Builder.terminal(intern("Identifier"), intern(Name));
      Builder.begin("TypeArgumentList");
      expect("<");
      do {
        parseType();
      } while (accept(","));
      expect(">");
      Builder.end();
      Builder.end();
      return;
    }
    Builder.begin("IdentifierName");
    Builder.terminal(intern("Identifier"), intern(Name));
    Builder.end();
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void parseClass() {
    bool IsInterface = at("interface");
    advance();
    Token Name = expectIdentifier("class name");
    Symbol NameSym = intern(Name.Text);
    ElementId ClassElem =
        Builder.addElement(NameSym, ElementKind::Class, /*Predictable=*/false);
    Scopes.declareGlobal(NameSym, ClassElem);
    Builder.begin(IsInterface ? "InterfaceDeclaration" : "ClassDeclaration");
    Builder.terminal(intern("Identifier"), NameSym, ClassElem);
    if (accept(":")) {
      Builder.begin("BaseList");
      do {
        Builder.begin("SimpleBaseType");
        parseNonArrayType();
        Builder.end();
      } while (accept(","));
      Builder.end();
    }
    expect("{");
    ClassFields.clear();
    ClassMethods.clear();
    ClassProperties.clear();
    prescanMembers(Name.Text);
    Scopes.push();
    while (!at("}") && !atEnd()) {
      size_t Before = Cursor;
      parseMember(Name.Text);
      if (Cursor == Before)
        advance();
    }
    Scopes.pop();
    expect("}");
    Builder.end();
  }

  void prescanMembers(std::string_view ClassName) {
    size_t I = Cursor;
    int Depth = 1;
    auto Tok = [&](size_t J) -> const Token & {
      return J < Tokens.size() ? Tokens[J] : Tokens.back();
    };
    while (I < Tokens.size() && Depth > 0) {
      const Token &T = Tok(I);
      if (T.is("{")) {
        ++Depth;
        ++I;
        continue;
      }
      if (T.is("}")) {
        --Depth;
        ++I;
        continue;
      }
      if (Depth != 1) {
        ++I;
        continue;
      }
      size_t J = I;
      while (Tok(J).is(TokenKind::Keyword) && isCsModifier(Tok(J).Text))
        ++J;
      if (Tok(J).is(TokenKind::Identifier) && Tok(J).Text == ClassName &&
          Tok(J + 1).is("(")) {
        I = J + 1;
        continue;
      }
      size_t AfterType = J;
      if (scanType(J, AfterType) && Tok(AfterType).is(TokenKind::Identifier)) {
        Symbol Name = intern(Tok(AfterType).Text);
        const Token &Next = Tok(AfterType + 1);
        if (Next.is("(")) {
          if (!ClassMethods.count(Name))
            ClassMethods.emplace(Name,
                                 Builder.addElement(Name, ElementKind::Method,
                                                    /*Predictable=*/true));
          I = AfterType + 1;
          continue;
        }
        if (Next.is("{")) { // Property: Type Name { get; set; }
          if (!ClassProperties.count(Name))
            ClassProperties.emplace(
                Name, Builder.addElement(Name, ElementKind::Property,
                                         /*Predictable=*/true));
          I = AfterType + 1;
          continue;
        }
        if (Next.is("=") || Next.is(";") || Next.is(",")) {
          if (!ClassFields.count(Name))
            ClassFields.emplace(Name,
                                Builder.addElement(Name, ElementKind::Field,
                                                   /*Predictable=*/true));
          I = AfterType + 1;
          continue;
        }
      }
      ++I;
    }
  }

  void parseMember(std::string_view ClassName) {
    skipModifiers();
    if (at("}"))
      return;
    if (atKind(TokenKind::Identifier) && peek().Text == ClassName &&
        peek(1).is("(")) {
      Token Name = advance();
      Builder.begin("ConstructorDeclaration");
      Builder.terminal(intern("Identifier"), intern(Name.Text));
      Scopes.push();
      parseParameterList();
      parseBlock();
      Scopes.pop();
      Builder.end();
      return;
    }
    size_t AfterType = Cursor;
    if (!scanType(Cursor, AfterType)) {
      error("expected member declaration");
      skipUntil({";", "}"});
      accept(";");
      return;
    }
    bool IsMethod = Tokens[AfterType].is(TokenKind::Identifier) &&
                    AfterType + 1 < Tokens.size() &&
                    Tokens[AfterType + 1].is("(");
    bool IsProperty = Tokens[AfterType].is(TokenKind::Identifier) &&
                      AfterType + 1 < Tokens.size() &&
                      Tokens[AfterType + 1].is("{");
    if (IsMethod) {
      Builder.begin("MethodDeclaration");
      parseType();
      Token Name = expectIdentifier("method name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id;
      auto It = ClassMethods.find(NameSym);
      if (It != ClassMethods.end()) {
        Id = It->second;
      } else {
        Id = Builder.addElement(NameSym, ElementKind::Method,
                                /*Predictable=*/true);
        ClassMethods.emplace(NameSym, Id);
      }
      Builder.terminal(intern("Identifier"), NameSym, Id);
      Scopes.push();
      parseParameterList();
      if (accept(";")) { // Interface method.
        Scopes.pop();
        Builder.end();
        return;
      }
      parseBlock();
      Scopes.pop();
      Builder.end();
      return;
    }
    if (IsProperty) {
      Builder.begin("PropertyDeclaration");
      parseType();
      Token Name = expectIdentifier("property name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id;
      auto It = ClassProperties.find(NameSym);
      if (It != ClassProperties.end()) {
        Id = It->second;
      } else {
        Id = Builder.addElement(NameSym, ElementKind::Property,
                                /*Predictable=*/true);
        ClassProperties.emplace(NameSym, Id);
      }
      Builder.terminal(intern("Identifier"), NameSym, Id);
      expect("{");
      Builder.begin("AccessorList");
      while (!at("}") && !atEnd()) {
        if (accept("get")) {
          Builder.begin("GetAccessor");
          if (at("{"))
            parseBlock();
          else
            expect(";");
          Builder.end();
          continue;
        }
        if (accept("set")) {
          Builder.begin("SetAccessor");
          if (at("{"))
            parseBlock();
          else
            expect(";");
          Builder.end();
          continue;
        }
        skipModifiers();
        if (!at("get") && !at("set") && !at("}"))
          advance();
      }
      Builder.end();
      expect("}");
      Builder.end();
      return;
    }
    // Field.
    Builder.begin("FieldDeclaration");
    Builder.begin("VariableDeclaration");
    parseType();
    do {
      Builder.begin("VariableDeclarator");
      Token Name = expectIdentifier("field name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id;
      auto It = ClassFields.find(NameSym);
      if (It != ClassFields.end()) {
        Id = It->second;
      } else {
        Id = Builder.addElement(NameSym, ElementKind::Field,
                                /*Predictable=*/true);
        ClassFields.emplace(NameSym, Id);
      }
      Builder.terminal(intern("Identifier"), NameSym, Id);
      if (accept("=")) {
        Builder.begin("EqualsValueClause");
        parseExpressionNoComma();
        Builder.end();
      }
      Builder.end();
    } while (accept(","));
    Builder.end();
    expect(";");
    Builder.end();
  }

  void parseParameterList() {
    expect("(");
    Builder.begin("ParameterList");
    while (!at(")") && !atEnd()) {
      Builder.begin("Parameter");
      parseType();
      Token Name = expectIdentifier("parameter name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id = Builder.addElement(NameSym, ElementKind::Parameter,
                                        /*Predictable=*/true);
      Scopes.declare(NameSym, Id);
      Builder.terminal(intern("Identifier"), NameSym, Id);
      Builder.end();
      if (!accept(","))
        break;
    }
    Builder.end();
    expect(")");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void parseBlock() {
    expect("{");
    Scopes.push();
    Builder.begin("Block");
    while (!at("}") && !atEnd()) {
      size_t Before = Cursor;
      parseStatement();
      if (Cursor == Before)
        advance();
    }
    Builder.end();
    Scopes.pop();
    expect("}");
  }

  void parseStatement() {
    if (at("{")) {
      parseBlock();
      return;
    }
    if (at("if")) {
      advance();
      Builder.begin("IfStatement");
      expect("(");
      parseExpression();
      expect(")");
      parseStatement();
      if (accept("else")) {
        Builder.begin("ElseClause");
        parseStatement();
        Builder.end();
      }
      Builder.end();
      return;
    }
    if (at("while")) {
      advance();
      Builder.begin("WhileStatement");
      expect("(");
      parseExpression();
      expect(")");
      parseStatement();
      Builder.end();
      return;
    }
    if (at("do")) {
      advance();
      Builder.begin("DoStatement");
      parseStatement();
      expect("while");
      expect("(");
      parseExpression();
      expect(")");
      accept(";");
      Builder.end();
      return;
    }
    if (at("for")) {
      advance();
      Builder.begin("ForStatement");
      Scopes.push();
      expect("(");
      if (!accept(";")) {
        if (isLocalDeclAhead())
          parseLocalDecl();
        else
          parseExpression();
        expect(";");
      }
      if (!accept(";")) {
        parseExpression();
        expect(";");
      }
      if (!at(")"))
        parseExpression();
      expect(")");
      parseStatement();
      Scopes.pop();
      Builder.end();
      return;
    }
    if (at("foreach")) {
      advance();
      Builder.begin("ForEachStatement");
      Scopes.push();
      expect("(");
      parseType();
      Token Name = expectIdentifier("loop variable");
      Symbol NameSym = intern(Name.Text);
      ElementId Id = Builder.addElement(NameSym, ElementKind::LocalVar,
                                        /*Predictable=*/true);
      Scopes.declare(NameSym, Id);
      Builder.terminal(intern("Identifier"), NameSym, Id);
      expect("in");
      parseExpression();
      expect(")");
      parseStatement();
      Scopes.pop();
      Builder.end();
      return;
    }
    if (at("return")) {
      advance();
      Builder.begin("ReturnStatement");
      if (!at(";"))
        parseExpression();
      Builder.end();
      expect(";");
      return;
    }
    if (at("break")) {
      advance();
      Builder.begin("BreakStatement");
      Builder.end();
      accept(";");
      return;
    }
    if (at("continue")) {
      advance();
      Builder.begin("ContinueStatement");
      Builder.end();
      accept(";");
      return;
    }
    if (at("throw")) {
      advance();
      Builder.begin("ThrowStatement");
      parseExpression();
      Builder.end();
      expect(";");
      return;
    }
    if (at("try")) {
      advance();
      Builder.begin("TryStatement");
      parseBlock();
      while (at("catch")) {
        advance();
        Builder.begin("CatchClause");
        Scopes.push();
        if (accept("(")) {
          Builder.begin("CatchDeclaration");
          parseType();
          if (atKind(TokenKind::Identifier)) {
            Token Name = advance();
            Symbol NameSym = intern(Name.Text);
            ElementId Id = Builder.addElement(NameSym, ElementKind::Parameter,
                                              /*Predictable=*/true);
            Scopes.declare(NameSym, Id);
            Builder.terminal(intern("Identifier"), NameSym, Id);
          }
          Builder.end();
          expect(")");
        }
        parseBlock();
        Scopes.pop();
        Builder.end();
      }
      if (accept("finally")) {
        Builder.begin("FinallyClause");
        parseBlock();
        Builder.end();
      }
      Builder.end();
      return;
    }
    if (accept(";"))
      return;
    if (isLocalDeclAhead()) {
      Builder.begin("LocalDeclarationStatement");
      parseLocalDecl();
      Builder.end();
      expect(";");
      return;
    }
    Builder.begin("ExpressionStatement");
    parseExpression();
    Builder.end();
    expect(";");
  }

  bool isLocalDeclAhead() const {
    size_t End = Cursor;
    if (!scanType(Cursor, End))
      return false;
    return End < Tokens.size() && Tokens[End].is(TokenKind::Identifier) &&
           End + 1 < Tokens.size() &&
           (Tokens[End + 1].is("=") || Tokens[End + 1].is(";") ||
            Tokens[End + 1].is(","));
  }

  void parseLocalDecl() {
    Builder.begin("VariableDeclaration");
    parseType();
    do {
      Builder.begin("VariableDeclarator");
      Token Name = expectIdentifier("variable name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id = Builder.addElement(NameSym, ElementKind::LocalVar,
                                        /*Predictable=*/true);
      Scopes.declare(NameSym, Id);
      Builder.terminal(intern("Identifier"), NameSym, Id);
      if (accept("=")) {
        Builder.begin("EqualsValueClause");
        parseExpressionNoComma();
        Builder.end();
      }
      Builder.end();
    } while (accept(","));
    Builder.end();
  }

  //===--------------------------------------------------------------------===//
  // Expressions (Roslyn-style wrappers)
  //===--------------------------------------------------------------------===//

  void parseExpression() { parseAssignment(); }
  void parseExpressionNoComma() { parseAssignment(); }

  static bool isAssignOp(std::string_view Op) {
    return Op == "=" || Op == "+=" || Op == "-=" || Op == "*=" ||
           Op == "/=" || Op == "%=";
  }

  bool isAssignmentAhead() const {
    size_t I = Cursor;
    int Depth = 0;
    auto Tok = [&](size_t J) -> const Token & {
      return J < Tokens.size() ? Tokens[J] : Tokens.back();
    };
    if (!(Tok(I).is(TokenKind::Identifier) || Tok(I).is("this")))
      return false;
    ++I;
    while (I < Tokens.size()) {
      const Token &T = Tok(I);
      if (Depth == 0 && T.is(TokenKind::Punct) && isAssignOp(T.Text))
        return true;
      if (T.is(".")) {
        I += 2;
        continue;
      }
      if (T.is("[")) {
        ++Depth;
        ++I;
        continue;
      }
      if (T.is("]")) {
        if (Depth == 0)
          return false;
        --Depth;
        ++I;
        continue;
      }
      if (Depth > 0) {
        ++I;
        continue;
      }
      return false;
    }
    return false;
  }

  std::string findAssignOp() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (Depth == 0 && T.is(TokenKind::Punct) && isAssignOp(T.Text))
        return std::string(T.Text);
      if (T.is("["))
        ++Depth;
      else if (T.is("]"))
        --Depth;
    }
    return "=";
  }

  void parseAssignment() {
    if (isAssignmentAhead()) {
      std::string Op = findAssignOp();
      Builder.begin(std::string("AssignmentExpression") + Op);
      parseCallChain();
      expect(Op);
      parseAssignment();
      Builder.end();
      return;
    }
    parseConditional();
  }

  bool isConditionalAhead() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is("(") || T.is("[") || T.is("{"))
        ++Depth;
      else if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          return false;
        --Depth;
      } else if (Depth == 0) {
        if (T.is("?"))
          return true;
        if (T.is(";") || T.is(",") || T.is(":") || T.is(TokenKind::Eof) ||
            (T.is(TokenKind::Punct) && isAssignOp(T.Text)))
          return false;
      }
    }
    return false;
  }

  void parseConditional() {
    if (isConditionalAhead()) {
      Builder.begin("ConditionalExpression");
      parseBinaryLevel(1, /*StopAtQuestion=*/true);
      expect("?");
      parseAssignment();
      expect(":");
      parseAssignment();
      Builder.end();
      return;
    }
    parseBinaryLevel(1, /*StopAtQuestion=*/false);
  }

  static int precedenceOf(std::string_view Op) {
    if (Op == "??")
      return 1;
    if (Op == "||")
      return 1;
    if (Op == "&&")
      return 2;
    if (Op == "|")
      return 3;
    if (Op == "^")
      return 4;
    if (Op == "&")
      return 5;
    if (Op == "==" || Op == "!=")
      return 6;
    if (Op == "<" || Op == ">" || Op == "<=" || Op == ">=" || Op == "is" ||
        Op == "as")
      return 7;
    if (Op == "+" || Op == "-")
      return 9;
    if (Op == "*" || Op == "/" || Op == "%")
      return 10;
    return 0;
  }

  void parseBinaryLevel(int Prec, bool StopAtQuestion) {
    if (Prec > 10) {
      parseUnary();
      return;
    }
    std::vector<std::string> Ops =
        operatorSpellingsAtLevel(Prec, StopAtQuestion);
    for (auto It = Ops.rbegin(); It != Ops.rend(); ++It) {
      if (*It == "is" || *It == "as")
        Builder.begin(*It == "is" ? "IsExpression" : "AsExpression");
      else
        Builder.begin(std::string("BinaryExpression") + *It);
    }
    parseBinaryLevel(Prec + 1, StopAtQuestion);
    for (const std::string &ExpectedOp : Ops) {
      std::string Op = std::string(advance().Text);
      // Always-on drift check (asserts vanish in Release): a mismatch
      // between the lookahead scan and the parse raises a diagnostic so
      // the pipeline drops the file instead of keeping a wrong AST.
      if (Op != ExpectedOp)
        error("operator drift: expected '" + ExpectedOp + "', found '" +
              Op + "'");
      if (Op == "is" || Op == "as")
        parseType();
      else
        parseBinaryLevel(Prec + 1, StopAtQuestion);
      Builder.end();
    }
  }

  std::vector<std::string>
  operatorSpellingsAtLevel(int Prec, bool StopAtQuestion) const {
    std::vector<std::string> Ops;
    int Depth = 0;
    bool PrevWasOperand = false;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is("(") || T.is("[") || T.is("{")) {
        ++Depth;
        PrevWasOperand = false;
        continue;
      }
      if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          break;
        --Depth;
        PrevWasOperand = true;
        continue;
      }
      if (Depth > 0)
        continue;
      if (T.is(TokenKind::Eof) || T.is(";") || T.is(",") || T.is(":"))
        break;
      if (StopAtQuestion && T.is("?"))
        break;
      if (T.is("new")) {
        size_t End = I + 1;
        if (scanType(I + 1, End))
          I = End - 1;
        PrevWasOperand = false;
        continue;
      }
      if (T.is(TokenKind::Punct) || T.is("is") || T.is("as")) {
        int P = precedenceOf(T.Text);
        if (P > 0 && PrevWasOperand) {
          if (P < Prec)
            break;
          if (P == Prec)
            Ops.push_back(std::string(T.Text));
          PrevWasOperand = false;
          if (T.is("is") || T.is("as")) {
            size_t End = I + 1;
            if (scanType(I + 1, End))
              I = End - 1;
            PrevWasOperand = true;
          }
          continue;
        }
        if (T.is(TokenKind::Punct) && isAssignOp(T.Text))
          break;
      }
      PrevWasOperand = !T.is("!") && !T.is("~") && !T.is("new") &&
                       !T.is(TokenKind::Error);
    }
    return Ops;
  }

  void parseUnary() {
    if (at("!") || at("~") || at("-") || at("+") || at("++") || at("--")) {
      std::string Op(advance().Text);
      Builder.begin(std::string("PrefixUnaryExpression") + Op);
      parseUnary();
      Builder.end();
      return;
    }
    if (isCastAhead()) {
      Builder.begin("CastExpression");
      expect("(");
      parseType();
      expect(")");
      parseUnary();
      Builder.end();
      return;
    }
    parsePostfix();
  }

  bool isCastAhead() const {
    if (!at("("))
      return false;
    size_t End = Cursor + 1;
    if (!scanType(Cursor + 1, End))
      return false;
    if (End >= Tokens.size() || !Tokens[End].is(")"))
      return false;
    const Token &Next =
        End + 1 < Tokens.size() ? Tokens[End + 1] : Tokens.back();
    if (Next.is(TokenKind::Identifier) || Next.is(TokenKind::IntLiteral) ||
        Next.is(TokenKind::FloatLiteral) || Next.is(TokenKind::StringLiteral) ||
        Next.is("this") || Next.is("new") || Next.is("("))
      return true;
    const Token &Inner = Tokens[Cursor + 1];
    return Inner.is(TokenKind::Keyword) && isPredefinedType(Inner.Text);
  }

  void parsePostfix() {
    if (peekPostfixIncrement()) {
      std::string Op = postfixOpSpelling();
      Builder.begin(std::string("PostfixUnaryExpression") + Op);
      parseCallChain();
      advance();
      Builder.end();
      return;
    }
    parseCallChain();
  }

  bool peekPostfixIncrement() const {
    size_t I = Cursor;
    int Depth = 0;
    if (!(Tokens[I].is(TokenKind::Identifier) || Tokens[I].is("this")))
      return false;
    ++I;
    while (I < Tokens.size()) {
      const Token &T = Tokens[I];
      if (Depth == 0 && (T.is("++") || T.is("--")))
        return true;
      if (T.is(".")) {
        I += 2;
        continue;
      }
      if (T.is("[")) {
        ++Depth;
        ++I;
        continue;
      }
      if (T.is("]")) {
        if (Depth == 0)
          return false;
        --Depth;
        ++I;
        continue;
      }
      if (Depth > 0) {
        ++I;
        continue;
      }
      return false;
    }
    return false;
  }

  std::string postfixOpSpelling() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (Depth == 0 && (T.is("++") || T.is("--")))
        return std::string(T.Text);
      if (T.is("["))
        ++Depth;
      else if (T.is("]"))
        --Depth;
    }
    return "++";
  }

  /// Roslyn shape: member access and invocation are separate wrappers —
  /// `a.b(c)` is InvocationExpression(MemberAccessExpression(a, b),
  /// ArgumentList(Argument(c))). This yields deeper trees than Java.
  void parseCallChain() {
    enum LinkKind { Dot, CallLink, IndexLink };
    std::vector<LinkKind> Links;
    bool PrimaryIsBareCall = false;
    {
      size_t I = Cursor;
      auto Tok = [&](size_t J) -> const Token & {
        return J < Tokens.size() ? Tokens[J] : Tokens.back();
      };
      auto SkipGroup = [&](size_t &J) {
        int D = 0;
        do {
          if (Tok(J).is("(") || Tok(J).is("[") || Tok(J).is("{"))
            ++D;
          else if (Tok(J).is(")") || Tok(J).is("]") || Tok(J).is("}"))
            --D;
          ++J;
        } while (J < Tokens.size() && D > 0);
      };
      const Token &T = Tok(I);
      if (T.is("(")) {
        SkipGroup(I);
      } else if (T.is("new")) {
        ++I;
        size_t End = I;
        if (scanType(I, End))
          I = End;
        if (Tok(I).is("("))
          SkipGroup(I);
        else
          while (Tok(I).is("["))
            SkipGroup(I);
      } else if (T.is(TokenKind::Identifier) && Tok(I + 1).is("(")) {
        PrimaryIsBareCall = true;
        ++I;
        SkipGroup(I);
      } else {
        ++I;
      }
      while (I < Tokens.size()) {
        const Token &U = Tok(I);
        if (U.is(".")) {
          // `.name(` is a member access followed by an invocation.
          if (Tok(I + 2).is("(")) {
            Links.push_back(Dot);
            Links.push_back(CallLink);
            I += 2;
            SkipGroup(I);
            continue;
          }
          Links.push_back(Dot);
          I += 2;
          continue;
        }
        if (U.is("(")) {
          Links.push_back(CallLink);
          SkipGroup(I);
          continue;
        }
        if (U.is("[")) {
          Links.push_back(IndexLink);
          SkipGroup(I);
          continue;
        }
        break;
      }
    }

    for (auto It = Links.rbegin(); It != Links.rend(); ++It) {
      switch (*It) {
      case Dot:
        Builder.begin("MemberAccessExpression");
        break;
      case CallLink:
        Builder.begin("InvocationExpression");
        break;
      case IndexLink:
        Builder.begin("ElementAccessExpression");
        break;
      }
    }

    bool PrimaryIsThis = at("this");
    parsePrimary(PrimaryIsBareCall);

    bool FirstLink = true;
    for (LinkKind K : Links) {
      switch (K) {
      case Dot: {
        expect(".");
        Token Name = expectIdentifier("member name");
        Symbol NameSym = intern(Name.Text);
        ElementId Id = InvalidElement;
        if (PrimaryIsThis && FirstLink) {
          if (auto It = ClassFields.find(NameSym); It != ClassFields.end())
            Id = It->second;
          else if (auto It2 = ClassProperties.find(NameSym);
                   It2 != ClassProperties.end())
            Id = It2->second;
          else if (auto It3 = ClassMethods.find(NameSym);
                   It3 != ClassMethods.end())
            Id = It3->second;
        }
        Builder.begin("IdentifierName");
        Builder.terminal(intern("Identifier"), NameSym, Id);
        Builder.end();
        break;
      }
      case CallLink:
        parseArgumentList("ArgumentList", "(", ")");
        break;
      case IndexLink:
        parseArgumentList("BracketedArgumentList", "[", "]");
        break;
      }
      FirstLink = false;
      Builder.end();
    }
  }

  void parseArgumentList(const char *Kind, const char *Open,
                         const char *Close) {
    expect(Open);
    Builder.begin(Kind);
    while (!at(Close) && !atEnd()) {
      Builder.begin("Argument");
      parseExpressionNoComma();
      Builder.end();
      if (!accept(","))
        break;
    }
    Builder.end();
    expect(Close);
  }

  void parsePrimary(bool BareCall) {
    const Token &T = peek();
    if (BareCall) {
      Builder.begin("InvocationExpression");
      Token Name = expectIdentifier("method name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id = InvalidElement;
      auto It = ClassMethods.find(NameSym);
      if (It != ClassMethods.end())
        Id = It->second;
      Builder.begin("IdentifierName");
      Builder.terminal(intern("Identifier"), NameSym, Id);
      Builder.end();
      parseArgumentList("ArgumentList", "(", ")");
      Builder.end();
      return;
    }
    if (T.is(TokenKind::Identifier)) {
      advance();
      Symbol NameSym = intern(T.Text);
      ElementId Id = Scopes.lookup(NameSym);
      if (Id == InvalidElement) {
        if (auto It = ClassFields.find(NameSym); It != ClassFields.end())
          Id = It->second;
        else if (auto It2 = ClassProperties.find(NameSym);
                 It2 != ClassProperties.end())
          Id = It2->second;
      }
      Builder.begin("IdentifierName");
      Builder.terminal(intern("Identifier"), NameSym, Id);
      Builder.end();
      return;
    }
    if (T.is("this")) {
      advance();
      Builder.begin("ThisExpression");
      Builder.end();
      return;
    }
    if (T.is("base")) {
      advance();
      Builder.begin("BaseExpression");
      Builder.end();
      return;
    }
    if (T.is(TokenKind::IntLiteral)) {
      advance();
      Builder.terminal(intern("NumericLiteral"), intern(T.Text));
      return;
    }
    if (T.is(TokenKind::FloatLiteral)) {
      advance();
      Builder.terminal(intern("NumericLiteral"), intern(T.Text));
      return;
    }
    if (T.is(TokenKind::StringLiteral)) {
      advance();
      if (!T.Text.empty() && T.Text[0] == '\'')
        Builder.terminal(intern("CharacterLiteral"), intern(T.stringValue()));
      else
        Builder.terminal(intern("StringLiteral"), intern(T.stringValue()));
      return;
    }
    if (T.is("true") || T.is("false")) {
      advance();
      Builder.terminal(intern(T.is("true") ? "TrueLiteral" : "FalseLiteral"),
                       intern(T.Text));
      return;
    }
    if (T.is("null")) {
      advance();
      Builder.terminal(intern("NullLiteral"), intern("null"));
      return;
    }
    if (T.is("(")) {
      advance();
      Builder.begin("ParenthesizedExpression");
      parseExpression();
      Builder.end();
      expect(")");
      return;
    }
    if (T.is("new")) {
      advance();
      size_t End = Cursor;
      bool HaveType = scanType(Cursor, End);
      bool IsArray = HaveType && End < Tokens.size() && Tokens[End].is("[");
      if (IsArray) {
        Builder.begin("ArrayCreationExpression");
        parseType();
        while (accept("[")) {
          if (!at("]"))
            parseExpression();
          expect("]");
        }
        Builder.end();
        return;
      }
      Builder.begin("ObjectCreationExpression");
      parseNonArrayType();
      if (at("("))
        parseArgumentList("ArgumentList", "(", ")");
      Builder.end();
      return;
    }
    error(std::string("unexpected token '") + std::string(T.Text) +
          "' in expression");
    advance();
    Builder.terminal(intern("Error"), intern("<error>"));
  }
};

} // namespace

lang::ParseResult cs::parse(std::string_view Source,
                            StringInterner &Interner) {
  Diagnostics Diags(Source);
  Lexer Lex(Source, csLexerConfig(), Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  CsParser Parser(Tokens, Diags, Interner);
  lang::ParseResult Result;
  Result.Tree = Parser.run();
  Result.Diags = Diags.all();
  return Result;
}
