//===- PyParser.h - MiniPy frontend ------------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a rich Python subset (MiniPy) into the generic AST with
/// CPython-ast-flavoured node kinds: Module, FunctionDef, arguments/arg,
/// Assign, AugAssign+, Name, Attribute, Call, Compare<, BinOp+, If, While,
/// For, Try/ExceptHandler, Tuple, List, Dict, ... The lexer is
/// indentation-sensitive (Newline/Indent/Dedent), mirroring CPython's
/// tokenizer.
///
/// Element linking follows Python binding rules: assignment, loop targets
/// and parameters bind names in the enclosing function scope; `self.attr`
/// resolves to per-class field elements; unresolved names are known
/// globals (imports/builtins), never prediction targets.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_PYTHON_PYPARSER_H
#define PIGEON_LANG_PYTHON_PYPARSER_H

#include "lang/common/Frontend.h"
#include "support/StringInterner.h"

#include <string_view>

namespace pigeon {
namespace py {

/// Parses MiniPy \p Source into a generic AST.
lang::ParseResult parse(std::string_view Source, StringInterner &Interner);

} // namespace py
} // namespace pigeon

#endif // PIGEON_LANG_PYTHON_PYPARSER_H
