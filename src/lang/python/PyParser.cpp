//===- PyParser.cpp - MiniPy frontend ----------------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/python/PyParser.h"

#include "lang/common/Lexer.h"
#include "lang/common/ParserBase.h"
#include "lang/common/ScopeStack.h"

#include <string>

using namespace pigeon;
using namespace pigeon::lang;
using namespace pigeon::ast;

namespace {

const LexerConfig &pyLexerConfig() {
  static const LexerConfig Config = [] {
    LexerConfig C;
    C.Keywords = {"def",    "class",  "return", "if",     "elif",
                  "else",   "while",  "for",    "in",     "not",
                  "and",    "or",     "True",   "False",  "None",
                  "import", "from",   "as",     "pass",   "break",
                  "continue", "raise", "try",   "except", "finally",
                  "is",     "lambda", "with",   "del",    "global",
                  "print"};
    C.Punctuators = {"**", "//", "==", "!=", "<=", ">=", "+=", "-=", "*=",
                     "/=", "%=", "->", "(",  ")",  "[",  "]",  "{",  "}",
                     ":",  ",",  ".",  "=",  "+",  "-",  "*",  "/",  "%",
                     "<",  ">",  ";",  "@"};
    C.HashComments = true;
    C.SignificantIndentation = true;
    return C;
  }();
  return Config;
}

/// Recursive-descent parser for MiniPy over an indentation-token stream.
class PyParser : ParserBase {
public:
  PyParser(const std::vector<Token> &Tokens, Diagnostics &Diags,
           StringInterner &Interner)
      : ParserBase(Tokens, Diags), Interner(Interner), Builder(Interner) {}

  Tree run() {
    Builder.begin("Module");
    while (!atEnd()) {
      size_t Before = Cursor;
      parseStatement();
      if (Cursor == Before)
        advance();
    }
    Builder.end();
    return std::move(Builder).finish();
  }

private:
  StringInterner &Interner;
  TreeBuilder Builder;
  ScopeStack Scopes;
  /// Per-class field elements, keyed by (class depth marker) — we track
  /// only the innermost class.
  std::unordered_map<Symbol, ElementId> ClassFields;
  std::unordered_map<Symbol, ElementId> ClassMethods;
  std::unordered_map<Symbol, ElementId> Globals;
  bool InsideClass = false;

  Symbol intern(std::string_view S) { return Interner.intern(S); }

  bool atNewline() const { return atKind(TokenKind::Newline); }

  void expectNewline() {
    if (atNewline()) {
      advance();
      return;
    }
    if (!atEnd())
      error("expected end of line");
    skipUntilNewline();
  }

  void skipUntilNewline() {
    while (!atEnd() && !atNewline())
      advance();
    if (atNewline())
      advance();
  }

  //===--------------------------------------------------------------------===//
  // Element resolution
  //===--------------------------------------------------------------------===//

  /// Binding occurrence: declares in the current scope unless bound there
  /// already.
  ElementId bindName(Symbol Name) {
    if (Scopes.declaredInCurrent(Name))
      return Scopes.lookup(Name);
    ElementId Id = Builder.addElement(Name, ElementKind::LocalVar,
                                      /*Predictable=*/true);
    Scopes.declare(Name, Id);
    return Id;
  }

  /// Use occurrence. Unresolved names are known globals (imports or
  /// builtins) — not prediction targets.
  ElementId resolveUse(Symbol Name) {
    ElementId Id = Scopes.lookup(Name);
    if (Id != InvalidElement)
      return Id;
    auto It = Globals.find(Name);
    if (It != Globals.end())
      return It->second;
    ElementId New = Builder.addElement(Name, ElementKind::Unknown,
                                       /*Predictable=*/false);
    Globals.emplace(Name, New);
    return New;
  }

  ElementId fieldElement(Symbol Name) {
    auto It = ClassFields.find(Name);
    if (It != ClassFields.end())
      return It->second;
    ElementId Id =
        Builder.addElement(Name, ElementKind::Field, /*Predictable=*/true);
    ClassFields.emplace(Name, Id);
    return Id;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void parseStatement() {
    // Decorators: skip entirely.
    while (at("@")) {
      skipUntilNewline();
    }
    if (at("def")) {
      parseFunctionDef();
      return;
    }
    if (at("class")) {
      parseClassDef();
      return;
    }
    if (at("if")) {
      parseIf(/*IsElif=*/false);
      return;
    }
    if (at("while")) {
      advance();
      Builder.begin("While");
      parseExpression();
      expect(":");
      parseSuite();
      if (at("else")) {
        advance();
        expect(":");
        Builder.begin("OrElse");
        parseSuite();
        Builder.end();
      }
      Builder.end();
      return;
    }
    if (at("for")) {
      advance();
      Builder.begin("For");
      parseTargetList();
      expect("in");
      parseExpression();
      expect(":");
      parseSuite();
      Builder.end();
      return;
    }
    if (at("try")) {
      parseTry();
      return;
    }
    parseSimpleStatement();
  }

  void parseFunctionDef() {
    expect("def");
    Token Name = expectIdentifier("function name");
    Symbol NameSym = intern(Name.Text);
    ElementId Fn;
    if (InsideClass) {
      auto It = ClassMethods.find(NameSym);
      if (It != ClassMethods.end()) {
        Fn = It->second;
      } else {
        Fn = Builder.addElement(NameSym, ElementKind::Method,
                                /*Predictable=*/true);
        ClassMethods.emplace(NameSym, Fn);
      }
    } else {
      Fn = Builder.addElement(NameSym, ElementKind::Method,
                              /*Predictable=*/true);
      Scopes.declare(NameSym, Fn);
    }
    Builder.begin("FunctionDef");
    Builder.terminal(intern("FunctionName"), NameSym, Fn);
    Scopes.push();
    expect("(");
    Builder.begin("arguments");
    while (!at(")") && !atEnd()) {
      Token Param = expectIdentifier("parameter");
      Symbol ParamSym = intern(Param.Text);
      bool IsSelf = Param.Text == "self" || Param.Text == "cls";
      ElementId Id = Builder.addElement(ParamSym, ElementKind::Parameter,
                                        /*Predictable=*/!IsSelf);
      Scopes.declare(ParamSym, Id);
      Builder.terminal(intern("arg"), ParamSym, Id);
      if (accept("=")) { // Default value.
        Builder.begin("default");
        parseTernary();
        Builder.end();
      }
      if (!accept(","))
        break;
    }
    Builder.end();
    expect(")");
    if (accept("->")) { // Return annotation: consume an expression.
      Builder.begin("returns");
      parseTernary();
      Builder.end();
    }
    expect(":");
    parseSuite();
    Scopes.pop();
    Builder.end();
  }

  void parseClassDef() {
    expect("class");
    Token Name = expectIdentifier("class name");
    Symbol NameSym = intern(Name.Text);
    ElementId Id =
        Builder.addElement(NameSym, ElementKind::Class, /*Predictable=*/false);
    Scopes.declareGlobal(NameSym, Id);
    Builder.begin("ClassDef");
    Builder.terminal(intern("ClassName"), NameSym, Id);
    if (accept("(")) {
      while (!at(")") && !atEnd()) {
        Builder.begin("Base");
        parseTernary();
        Builder.end();
        if (!accept(","))
          break;
      }
      expect(")");
    }
    expect(":");
    bool SavedInsideClass = InsideClass;
    auto SavedFields = std::move(ClassFields);
    auto SavedMethods = std::move(ClassMethods);
    ClassFields.clear();
    ClassMethods.clear();
    InsideClass = true;
    parseSuite();
    InsideClass = SavedInsideClass;
    ClassFields = std::move(SavedFields);
    ClassMethods = std::move(SavedMethods);
    Builder.end();
  }

  void parseIf(bool IsElif) {
    advance(); // if / elif.
    Builder.begin("If");
    parseExpression();
    expect(":");
    parseSuite();
    if (at("elif")) {
      Builder.begin("OrElse");
      parseIf(/*IsElif=*/true);
      Builder.end();
    } else if (at("else")) {
      advance();
      expect(":");
      Builder.begin("OrElse");
      parseSuite();
      Builder.end();
    }
    Builder.end();
    (void)IsElif;
  }

  void parseTry() {
    expect("try");
    expect(":");
    Builder.begin("Try");
    parseSuite();
    while (at("except")) {
      advance();
      Builder.begin("ExceptHandler");
      Scopes.push();
      if (!at(":")) {
        Builder.begin("ExceptType");
        parseTernary();
        Builder.end();
        if (accept("as")) {
          Token Name = expectIdentifier("exception name");
          Symbol NameSym = intern(Name.Text);
          ElementId Id = Builder.addElement(NameSym, ElementKind::Parameter,
                                            /*Predictable=*/true);
          Scopes.declare(NameSym, Id);
          Builder.terminal(intern("ExceptName"), NameSym, Id);
        }
      }
      expect(":");
      parseSuite();
      Scopes.pop();
      Builder.end();
    }
    if (at("finally")) {
      advance();
      expect(":");
      Builder.begin("FinallyBody");
      parseSuite();
      Builder.end();
    }
    if (at("else")) {
      advance();
      expect(":");
      Builder.begin("OrElse");
      parseSuite();
      Builder.end();
    }
    Builder.end();
  }

  /// Parses a suite: inline statements on the same line, or NEWLINE INDENT
  /// statements DEDENT. Wraps the statements in a Body node.
  void parseSuite() {
    Builder.begin("Body");
    if (!atNewline()) {
      // Inline suite: simple statements separated by ';' to end of line.
      parseSimpleStatementLine();
      Builder.end();
      return;
    }
    advance(); // Newline.
    if (!atKind(TokenKind::Indent)) {
      error("expected an indented block");
      Builder.end();
      return;
    }
    advance(); // Indent.
    while (!atKind(TokenKind::Dedent) && !atEnd()) {
      size_t Before = Cursor;
      parseStatement();
      if (Cursor == Before)
        advance();
    }
    if (atKind(TokenKind::Dedent))
      advance();
    Builder.end();
  }

  /// One or more simple statements on a single line, ';'-separated.
  void parseSimpleStatementLine() {
    parseSmallStatement();
    while (accept(";")) {
      if (atNewline() || atEnd())
        break;
      parseSmallStatement();
    }
    expectNewline();
  }

  void parseSimpleStatement() { parseSimpleStatementLine(); }

  void parseSmallStatement() {
    if (at("return")) {
      advance();
      Builder.begin("Return");
      if (!atNewline() && !at(";") && !atEnd())
        parseExpressionList();
      Builder.end();
      return;
    }
    if (at("pass")) {
      advance();
      Builder.begin("Pass");
      Builder.end();
      return;
    }
    if (at("break")) {
      advance();
      Builder.begin("Break");
      Builder.end();
      return;
    }
    if (at("continue")) {
      advance();
      Builder.begin("Continue");
      Builder.end();
      return;
    }
    if (at("raise")) {
      advance();
      Builder.begin("Raise");
      if (!atNewline() && !at(";") && !atEnd())
        parseExpression();
      Builder.end();
      return;
    }
    if (at("import")) {
      advance();
      Builder.begin("Import");
      do {
        std::string Name = parseDottedName();
        Builder.terminal(intern("alias"), intern(Name));
        if (accept("as")) {
          Token Alias = expectIdentifier("import alias");
          Builder.terminal(intern("asname"), intern(Alias.Text));
        }
      } while (accept(","));
      Builder.end();
      expectNewline();
      return;
    }
    if (at("from")) {
      advance();
      Builder.begin("ImportFrom");
      Builder.terminal(intern("module"), intern(parseDottedName()));
      expect("import");
      if (accept("*")) {
        Builder.terminal(intern("alias"), intern("*"));
      } else {
        do {
          Token Name = expectIdentifier("imported name");
          Builder.terminal(intern("alias"), intern(Name.Text));
          if (accept("as")) {
            Token Alias = expectIdentifier("import alias");
            Builder.terminal(intern("asname"), intern(Alias.Text));
          }
        } while (accept(","));
      }
      Builder.end();
      expectNewline();
      return;
    }
    // Assignment / aug-assignment / bare expression.
    parseExprOrAssign();
  }

  std::string parseDottedName() {
    std::string Name(expectIdentifier("module name").Text);
    while (at(".") && peek(1).is(TokenKind::Identifier)) {
      advance();
      Name += '.';
      Name += std::string(advance().Text);
    }
    return Name;
  }

  static bool isAugOp(std::string_view Op) {
    return Op == "+=" || Op == "-=" || Op == "*=" || Op == "/=" || Op == "%=";
  }

  /// Scans to end of line at depth 0 for '=' or an augmented op.
  /// \returns "" (no assignment), "=" or the augmented spelling.
  std::string assignOpAhead() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is(TokenKind::Newline) || T.is(TokenKind::Eof) || T.is(";"))
        return "";
      if (T.is("(") || T.is("[") || T.is("{"))
        ++Depth;
      else if (T.is(")") || T.is("]") || T.is("}"))
        --Depth;
      else if (Depth == 0 && T.is(TokenKind::Punct)) {
        if (T.Text == "=")
          return "=";
        if (isAugOp(T.Text))
          return std::string(T.Text);
      }
    }
    return "";
  }

  void parseExprOrAssign() {
    std::string Op = assignOpAhead();
    if (Op.empty()) {
      Builder.begin("Expr");
      parseExpressionList();
      Builder.end();
      return;
    }
    if (Op == "=") {
      Builder.begin("Assign");
      parseTargetList();
      expect("=");
      // Chained assignment a = b = expr: treat each prefix as a target.
      while (assignOpAhead() == "=") {
        parseTargetList();
        expect("=");
      }
      parseExpressionList();
      Builder.end();
      return;
    }
    Builder.begin(std::string("AugAssign") + Op);
    parseTarget();
    expect(Op);
    parseExpressionList();
    Builder.end();
  }

  /// Number of top-level commas before '=' / end of the target list.
  int commasBeforeAssign() const {
    int Depth = 0, Commas = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is(TokenKind::Newline) || T.is(TokenKind::Eof))
        break;
      if (T.is("(") || T.is("[") || T.is("{"))
        ++Depth;
      else if (T.is(")") || T.is("]") || T.is("}"))
        --Depth;
      else if (Depth == 0 && T.is(","))
        ++Commas;
      else if (Depth == 0 && T.is(TokenKind::Punct) &&
               (T.Text == "=" || isAugOp(T.Text)))
        break;
    }
    return Commas;
  }

  /// Parses assignment targets: one target, or a Tuple of them.
  void parseTargetList() {
    int Commas = commasBeforeAssign();
    if (Commas == 0) {
      parseTarget();
      return;
    }
    Builder.begin("Tuple");
    parseTarget();
    while (accept(",")) {
      if (atAssignBoundary())
        break;
      parseTarget();
    }
    Builder.end();
  }

  bool atAssignBoundary() const {
    return at("=") || atNewline() || atEnd() ||
           (atKind(TokenKind::Punct) && isAugOp(peek().Text));
  }

  /// A single assignment target: Name (binding), self.attr, subscript or
  /// attribute chains.
  void parseTarget() {
    // Pre-scan chain links like the expression parser, but the *base* name
    // binds when there are no links.
    if (atKind(TokenKind::Identifier) && !peek(1).is(".") &&
        !peek(1).is("[") && !peek(1).is("(")) {
      Token Name = advance();
      Symbol NameSym = intern(Name.Text);
      ElementId Id = bindName(NameSym);
      Builder.terminal(intern("Name"), NameSym, Id);
      return;
    }
    // self.attr target: bind as class field.
    parseChainExpr(/*IsTargetContext=*/true);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// expr (',' expr)* — wraps multiple values in Tuple.
  void parseExpressionList() {
    int Commas = commasUntilLineEnd();
    if (Commas > 0)
      Builder.begin("Tuple");
    parseExpression();
    while (accept(",")) {
      if (atNewline() || atEnd() || at(")") || at("]") || at("}"))
        break;
      parseExpression();
    }
    if (Commas > 0)
      Builder.end();
  }

  int commasUntilLineEnd() const {
    int Depth = 0, Commas = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is(TokenKind::Newline) || T.is(TokenKind::Eof) || T.is(";"))
        break;
      if (T.is("(") || T.is("[") || T.is("{"))
        ++Depth;
      else if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          break;
        --Depth;
      } else if (Depth == 0 && T.is(",")) {
        ++Commas;
      }
    }
    return Commas;
  }

  void parseExpression() { parseTernary(); }

  /// Python conditional expression: a if cond else b.
  void parseTernary() {
    if (isTernaryAhead()) {
      Builder.begin("IfExp");
      parseBoolOr(/*StopAtIf=*/true);
      expect("if");
      parseBoolOr(/*StopAtIf=*/true);
      expect("else");
      parseTernary();
      Builder.end();
      return;
    }
    parseBoolOr(/*StopAtIf=*/false);
  }

  bool isTernaryAhead() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is(TokenKind::Newline) || T.is(TokenKind::Eof) || T.is(";") ||
          T.is(":"))
        return false;
      if (T.is("(") || T.is("[") || T.is("{"))
        ++Depth;
      else if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          return false;
        --Depth;
      } else if (Depth == 0) {
        if (T.is("if"))
          return true;
        if (T.is(",") || T.is("=") ||
            (T.is(TokenKind::Punct) && isAugOp(T.Text)))
          return false;
      }
    }
    return false;
  }

  /// Counts the same-level operators ahead so nested BoolOp/BinOp nodes
  /// can open before their contents. \p Spellings are the operators of
  /// this level.
  int countLevelOps(std::initializer_list<std::string_view> Spellings,
                    std::initializer_list<std::string_view> LooserOps,
                    bool StopAtIf) const {
    int Depth = 0, Count = 0;
    bool PrevWasOperand = false;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is(TokenKind::Newline) || T.is(TokenKind::Eof) || T.is(";") ||
          T.is(","))
        break;
      if (StopAtIf && Depth == 0 && (T.is("if") || T.is("else")))
        break;
      if (Depth == 0) {
        bool Looser = false;
        for (std::string_view S : LooserOps)
          if (T.is(S))
            Looser = true;
        if (Looser)
          break;
      }
      if (T.is("(") || T.is("[") || T.is("{")) {
        ++Depth;
        PrevWasOperand = false;
        continue;
      }
      if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          break;
        --Depth;
        PrevWasOperand = true;
        continue;
      }
      if (Depth > 0)
        continue;
      if (T.is(":") || T.is("=") ||
          (T.is(TokenKind::Punct) && isAugOp(T.Text)))
        break;
      bool Matched = false;
      for (std::string_view S : Spellings)
        if (T.is(S) && PrevWasOperand) {
          ++Count;
          Matched = true;
          break;
        }
      if (Matched) {
        PrevWasOperand = false;
        continue;
      }
      PrevWasOperand = !T.is("not") && !T.is("and") && !T.is("or") &&
                       !(T.is(TokenKind::Punct) &&
                         (T.Text == "+" || T.Text == "-" || T.Text == "*" ||
                          T.Text == "/" || T.Text == "%" || T.Text == "**" ||
                          T.Text == "//" || T.Text == "<" || T.Text == ">" ||
                          T.Text == "<=" || T.Text == ">=" ||
                          T.Text == "==" || T.Text == "!="));
      if (T.is("in") || T.is("is"))
        PrevWasOperand = false;
    }
    return Count;
  }

  void parseBoolOr(bool StopAtIf) {
    int N = countLevelOps({"or"}, {}, StopAtIf);
    if (N > 0)
      Builder.begin("BoolOpOr");
    parseBoolAnd(StopAtIf);
    for (int I = 0; I < N; ++I) {
      expect("or");
      parseBoolAnd(StopAtIf);
    }
    if (N > 0)
      Builder.end();
  }

  void parseBoolAnd(bool StopAtIf) {
    int N = countLevelOps({"and"}, {"or"}, StopAtIf);
    if (N > 0)
      Builder.begin("BoolOpAnd");
    parseNot(StopAtIf);
    for (int I = 0; I < N; ++I) {
      expect("and");
      parseNot(StopAtIf);
    }
    if (N > 0)
      Builder.end();
  }

  void parseNot(bool StopAtIf) {
    if (at("not")) {
      advance();
      Builder.begin("UnaryOpNot");
      parseNot(StopAtIf);
      Builder.end();
      return;
    }
    parseComparison(StopAtIf);
  }

  void parseComparison(bool StopAtIf) {
    // Python comparisons chain (a < b < c); we left-nest them like the
    // other frontends. Collect the spellings ahead.
    std::vector<std::string> Ops =
        comparisonOpsAhead(StopAtIf);
    for (auto It = Ops.rbegin(); It != Ops.rend(); ++It)
      Builder.begin(std::string("Compare") + *It);
    parseArith(StopAtIf);
    for (const std::string &Op : Ops) {
      if (Op == "not in") {
        expect("not");
        expect("in");
      } else if (Op == "is not") {
        expect("is");
        expect("not");
      } else {
        expect(Op);
      }
      parseArith(StopAtIf);
      Builder.end();
    }
  }

  std::vector<std::string> comparisonOpsAhead(bool StopAtIf) const {
    std::vector<std::string> Ops;
    int Depth = 0;
    bool PrevWasOperand = false;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is(TokenKind::Newline) || T.is(TokenKind::Eof) || T.is(";") ||
          T.is(",") || T.is(":"))
        break;
      if (StopAtIf && Depth == 0 && (T.is("if") || T.is("else")))
        break;
      if (Depth == 0 && (T.is("and") || T.is("or")))
        break;
      if (T.is("(") || T.is("[") || T.is("{")) {
        ++Depth;
        PrevWasOperand = false;
        continue;
      }
      if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          break;
        --Depth;
        PrevWasOperand = true;
        continue;
      }
      if (Depth > 0)
        continue;
      if (T.is("=") || (T.is(TokenKind::Punct) && isAugOp(T.Text)))
        break;
      if (PrevWasOperand) {
        if (T.is("<") || T.is(">") || T.is("<=") || T.is(">=") ||
            T.is("==") || T.is("!=")) {
          Ops.push_back(std::string(T.Text));
          PrevWasOperand = false;
          continue;
        }
        if (T.is("in")) {
          Ops.push_back("in");
          PrevWasOperand = false;
          continue;
        }
        if (T.is("not") && I + 1 < Tokens.size() && Tokens[I + 1].is("in")) {
          Ops.push_back("not in");
          PrevWasOperand = false;
          ++I;
          continue;
        }
        if (T.is("is")) {
          if (I + 1 < Tokens.size() && Tokens[I + 1].is("not")) {
            Ops.push_back("is not");
            ++I;
          } else {
            Ops.push_back("is");
          }
          PrevWasOperand = false;
          continue;
        }
      }
      PrevWasOperand =
          !T.is("not") &&
          !(T.is(TokenKind::Punct) &&
            (T.Text == "+" || T.Text == "-" || T.Text == "*" ||
             T.Text == "/" || T.Text == "%" || T.Text == "**" ||
             T.Text == "//"));
    }
    return Ops;
  }

  void parseArith(bool StopAtIf) { parseBinLevel(0, StopAtIf); }

  /// Arithmetic levels: 0: +,-  1: *,/,%,//  2: ** (right-assoc treated
  /// left for simplicity)  3: unary.
  void parseBinLevel(int Level, bool StopAtIf) {
    static const std::initializer_list<std::string_view> Levels[3] = {
        {"+", "-"}, {"*", "/", "%", "//"}, {"**"}};
    if (Level >= 3) {
      parseUnary(StopAtIf);
      return;
    }
    std::vector<std::string> Ops = binOpsAhead(Levels[Level], StopAtIf);
    for (auto It = Ops.rbegin(); It != Ops.rend(); ++It)
      Builder.begin(std::string("BinOp") + *It);
    parseBinLevel(Level + 1, StopAtIf);
    for (const std::string &Op : Ops) {
      expect(Op);
      parseBinLevel(Level + 1, StopAtIf);
      Builder.end();
    }
  }

  std::vector<std::string>
  binOpsAhead(std::initializer_list<std::string_view> Spellings,
              bool StopAtIf) const {
    std::vector<std::string> Ops;
    int Depth = 0;
    bool PrevWasOperand = false;
    auto LowerPrecedence = [&](const Token &T) {
      // Operators looser than this level end the scan.
      if (T.is("and") || T.is("or") || T.is("in") || T.is("is") ||
          T.is("not"))
        return true;
      if (T.is("<") || T.is(">") || T.is("<=") || T.is(">=") || T.is("==") ||
          T.is("!="))
        return true;
      // '+'/'-' are looser than '*' level.
      for (std::string_view S : {"+", "-"}) {
        bool InThisLevel = false;
        for (std::string_view L : Spellings)
          if (L == S)
            InThisLevel = true;
        if (!InThisLevel && T.is(S) && PrevWasOperand)
          return true;
      }
      return false;
    };
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is(TokenKind::Newline) || T.is(TokenKind::Eof) || T.is(";") ||
          T.is(",") || T.is(":"))
        break;
      if (StopAtIf && Depth == 0 && (T.is("if") || T.is("else")))
        break;
      if (T.is("(") || T.is("[") || T.is("{")) {
        ++Depth;
        PrevWasOperand = false;
        continue;
      }
      if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          break;
        --Depth;
        PrevWasOperand = true;
        continue;
      }
      if (Depth > 0)
        continue;
      if (T.is("=") || (T.is(TokenKind::Punct) && isAugOp(T.Text)))
        break;
      if (LowerPrecedence(T))
        break;
      bool Matched = false;
      for (std::string_view S : Spellings)
        if (T.is(S) && PrevWasOperand) {
          Ops.push_back(std::string(T.Text));
          Matched = true;
          break;
        }
      if (Matched) {
        PrevWasOperand = false;
        continue;
      }
      PrevWasOperand = !(T.is(TokenKind::Punct) &&
                         (T.Text == "+" || T.Text == "-" || T.Text == "*" ||
                          T.Text == "/" || T.Text == "%" || T.Text == "**" ||
                          T.Text == "//"));
    }
    return Ops;
  }

  void parseUnary(bool StopAtIf) {
    if (at("-") || at("+")) {
      std::string Op(advance().Text);
      Builder.begin(Op == "-" ? "UnaryOpUSub" : "UnaryOpUAdd");
      parseUnary(StopAtIf);
      Builder.end();
      return;
    }
    parseChainExpr(/*IsTargetContext=*/false);
  }

  /// Primary expression followed by .attr / (args) / [index] links.
  void parseChainExpr(bool IsTargetContext) {
    enum LinkKind { Attr, CallLink, SubLink };
    std::vector<LinkKind> Links;
    {
      size_t I = Cursor;
      auto Tok = [&](size_t J) -> const Token & {
        return J < Tokens.size() ? Tokens[J] : Tokens.back();
      };
      const Token &T = Tok(I);
      if (T.is("(") || T.is("[") || T.is("{")) {
        int D = 0;
        do {
          if (Tok(I).is("(") || Tok(I).is("[") || Tok(I).is("{"))
            ++D;
          else if (Tok(I).is(")") || Tok(I).is("]") || Tok(I).is("}"))
            --D;
          ++I;
        } while (I < Tokens.size() && D > 0);
      } else {
        ++I;
      }
      while (I < Tokens.size()) {
        const Token &U = Tok(I);
        if (U.is(".")) {
          Links.push_back(Attr);
          I += 2;
          continue;
        }
        if (U.is("(") || U.is("[")) {
          Links.push_back(U.is("(") ? CallLink : SubLink);
          int D = 0;
          do {
            if (Tok(I).is("(") || Tok(I).is("[") || Tok(I).is("{"))
              ++D;
            else if (Tok(I).is(")") || Tok(I).is("]") || Tok(I).is("}"))
              --D;
            ++I;
          } while (I < Tokens.size() && D > 0);
          continue;
        }
        break;
      }
    }

    for (auto It = Links.rbegin(); It != Links.rend(); ++It) {
      switch (*It) {
      case Attr:
        Builder.begin("Attribute");
        break;
      case CallLink:
        Builder.begin("Call");
        break;
      case SubLink:
        Builder.begin("Subscript");
        break;
      }
    }

    bool BaseIsSelf = at("self");
    bool BaseIsCallee = !Links.empty() && Links.front() == CallLink;
    parseAtom(BaseIsCallee);

    bool FirstLink = true;
    for (LinkKind K : Links) {
      switch (K) {
      case Attr: {
        expect(".");
        Token Name = expectIdentifierOrKeyword();
        Symbol NameSym = intern(Name.Text);
        ElementId Id = InvalidElement;
        // self.attr in a class: link to a field element (a write in
        // target context creates it; reads reuse it).
        if (BaseIsSelf && FirstLink && InsideClass) {
          bool NextIsCall = at("(");
          if (NextIsCall) {
            auto It = ClassMethods.find(NameSym);
            if (It == ClassMethods.end()) {
              ElementId New = Builder.addElement(
                  NameSym, ElementKind::Method, /*Predictable=*/true);
              It = ClassMethods.emplace(NameSym, New).first;
            }
            Id = It->second;
          } else {
            Id = fieldElement(NameSym);
          }
        }
        Builder.terminal(intern("attr"), NameSym, Id);
        break;
      }
      case CallLink: {
        expect("(");
        while (!at(")") && !atEnd()) {
          // Keyword argument: name '=' value.
          if (atKind(TokenKind::Identifier) && peek(1).is("=")) {
            Builder.begin("keyword");
            Token Name = advance();
            Builder.terminal(intern("KeywordArg"), intern(Name.Text));
            expect("=");
            parseTernary();
            Builder.end();
          } else {
            parseTernary();
          }
          if (!accept(","))
            break;
        }
        expect(")");
        break;
      }
      case SubLink: {
        expect("[");
        // Slices: a[1:2] — parse components, Slice node.
        if (sliceAhead()) {
          Builder.begin("Slice");
          if (!at(":"))
            parseTernary();
          expect(":");
          if (!at("]") && !at(":"))
            parseTernary();
          if (accept(":"))
            if (!at("]"))
              parseTernary();
          Builder.end();
        } else {
          parseTernary();
        }
        expect("]");
        break;
      }
      }
      FirstLink = false;
      Builder.end();
    }
    (void)IsTargetContext;
  }

  bool sliceAhead() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is("[") || T.is("(") || T.is("{"))
        ++Depth;
      else if (T.is("]") || T.is(")") || T.is("}")) {
        if (Depth == 0)
          return false;
        --Depth;
      } else if (Depth == 0 && T.is(":"))
        return true;
      else if (T.is(TokenKind::Newline) || T.is(TokenKind::Eof))
        return false;
    }
    return false;
  }

  Token expectIdentifierOrKeyword() {
    if (atKind(TokenKind::Identifier) || atKind(TokenKind::Keyword))
      return advance();
    return expectIdentifier("attribute name");
  }

  void parseAtom(bool CalleePosition) {
    const Token &T = peek();
    if (T.is(TokenKind::Identifier)) {
      advance();
      Symbol NameSym = intern(T.Text);
      ElementId Id = Scopes.lookup(NameSym);
      if (Id == InvalidElement) {
        if (CalleePosition) {
          // Unresolved callee: a known external function (len, range,
          // Popen, ...).
          auto It = Globals.find(NameSym);
          if (It == Globals.end()) {
            ElementId New = Builder.addElement(
                NameSym, ElementKind::Method, /*Predictable=*/false);
            It = Globals.emplace(NameSym, New).first;
          }
          Id = It->second;
        } else {
          Id = resolveUse(NameSym);
        }
      }
      Builder.terminal(intern("Name"), NameSym, Id);
      return;
    }
    if (T.is("self")) {
      // `self` lexes as an identifier normally; keep for safety.
      advance();
      Builder.terminal(intern("Name"), intern("self"));
      return;
    }
    if (T.is(TokenKind::IntLiteral) || T.is(TokenKind::FloatLiteral)) {
      advance();
      Builder.terminal(intern("Num"), intern(T.Text));
      return;
    }
    if (T.is(TokenKind::StringLiteral)) {
      advance();
      Builder.terminal(intern("Str"), intern(T.stringValue()));
      return;
    }
    if (T.is("True") || T.is("False") || T.is("None")) {
      advance();
      Builder.terminal(intern("NameConstant"), intern(T.Text));
      return;
    }
    if (T.is("print")) {
      // Python 3: print is just a builtin function name.
      advance();
      Builder.terminal(intern("Name"), intern("print"));
      return;
    }
    if (T.is("(")) {
      advance();
      // Tuple or parenthesised expression.
      if (at(")")) {
        advance();
        Builder.begin("Tuple");
        Builder.end();
        return;
      }
      int Commas = commasUntilCloser(')');
      if (Commas > 0)
        Builder.begin("Tuple");
      parseTernary();
      while (accept(",")) {
        if (at(")"))
          break;
        parseTernary();
      }
      if (Commas > 0)
        Builder.end();
      expect(")");
      return;
    }
    if (T.is("[")) {
      advance();
      Builder.begin("List");
      while (!at("]") && !atEnd()) {
        parseTernary();
        if (!accept(","))
          break;
      }
      expect("]");
      Builder.end();
      return;
    }
    if (T.is("{")) {
      advance();
      Builder.begin("Dict");
      while (!at("}") && !atEnd()) {
        Builder.begin("DictItem");
        parseTernary();
        expect(":");
        parseTernary();
        Builder.end();
        if (!accept(","))
          break;
      }
      expect("}");
      Builder.end();
      return;
    }
    error(std::string("unexpected token '") + std::string(T.Text) +
          "' in expression");
    advance();
    Builder.terminal(intern("Error"), intern("<error>"));
  }

  int commasUntilCloser(char Closer) const {
    int Depth = 0, Commas = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is(TokenKind::Eof))
        break;
      if (T.is("(") || T.is("[") || T.is("{"))
        ++Depth;
      else if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          break;
        --Depth;
      } else if (Depth == 0 && T.is(",")) {
        ++Commas;
      }
    }
    (void)Closer;
    return Commas;
  }
};

} // namespace

lang::ParseResult py::parse(std::string_view Source,
                            StringInterner &Interner) {
  Diagnostics Diags(Source);
  Lexer Lex(Source, pyLexerConfig(), Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  PyParser Parser(Tokens, Diags, Interner);
  lang::ParseResult Result;
  Result.Tree = Parser.run();
  Result.Diags = Diags.all();
  return Result;
}
