//===- ClassPath.cpp - Known classes for the Java type checker -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/java/ClassPath.h"

#include <cassert>
#include <cctype>

using namespace pigeon;
using namespace pigeon::java;

ParsedType java::parseTypeString(const std::string &Type) {
  ParsedType P;
  size_t Lt = Type.find('<');
  if (Lt == std::string::npos) {
    P.Base = Type;
    return P;
  }
  P.Base = Type.substr(0, Lt);
  // Split the argument list on top-level commas.
  int Depth = 0;
  std::string Cur;
  for (size_t I = Lt + 1; I + 1 <= Type.size(); ++I) {
    char C = Type[I];
    if (C == '<')
      ++Depth;
    else if (C == '>') {
      if (Depth == 0)
        break;
      --Depth;
    } else if (C == ',' && Depth == 0) {
      P.Args.push_back(Cur);
      Cur.clear();
      continue;
    }
    Cur += C;
  }
  if (!Cur.empty())
    P.Args.push_back(Cur);
  return P;
}

std::string java::substituteTypeArgs(const std::string &Template,
                                     const std::vector<std::string> &Args) {
  std::string Out;
  for (size_t I = 0; I < Template.size();) {
    if (Template[I] == 'T' && I + 1 < Template.size() &&
        (Template[I + 1] == '0' || Template[I + 1] == '1') &&
        (I + 2 >= Template.size() ||
         !std::isalnum(static_cast<unsigned char>(Template[I + 2])))) {
      size_t ArgIdx = static_cast<size_t>(Template[I + 1] - '0');
      if (ArgIdx < Args.size())
        Out += Args[ArgIdx];
      else
        Out += "java.lang.Object";
      I += 2;
      continue;
    }
    Out += Template[I++];
  }
  return Out;
}

void ClassPath::addClass(ClassDef Def) {
  std::string Name = Def.QualifiedName;
  Classes[Name] = std::move(Def);
}

const ClassDef *ClassPath::find(const std::string &Qualified) const {
  auto It = Classes.find(Qualified);
  return It == Classes.end() ? nullptr : &It->second;
}

std::optional<std::string>
ClassPath::methodReturn(const std::string &ReceiverType,
                        const std::string &Method) const {
  ParsedType P = parseTypeString(ReceiverType);
  // Walk the super chain (bounded, in case of accidental cycles).
  for (int Hop = 0; Hop < 8; ++Hop) {
    const ClassDef *Def = find(P.Base);
    if (!Def)
      return std::nullopt;
    auto It = Def->Methods.find(Method);
    if (It != Def->Methods.end())
      return substituteTypeArgs(It->second, P.Args);
    if (Def->Super.empty())
      return std::nullopt;
    ParsedType SuperP =
        parseTypeString(substituteTypeArgs(Def->Super, P.Args));
    P = SuperP;
  }
  return std::nullopt;
}

std::optional<std::string>
ClassPath::fieldType(const std::string &ReceiverType,
                     const std::string &Field) const {
  ParsedType P = parseTypeString(ReceiverType);
  for (int Hop = 0; Hop < 8; ++Hop) {
    const ClassDef *Def = find(P.Base);
    if (!Def)
      return std::nullopt;
    auto It = Def->Fields.find(Field);
    if (It != Def->Fields.end())
      return substituteTypeArgs(It->second, P.Args);
    if (Def->Super.empty())
      return std::nullopt;
    P = parseTypeString(substituteTypeArgs(Def->Super, P.Args));
  }
  return std::nullopt;
}

std::vector<std::string> ClassPath::classNames() const {
  std::vector<std::string> Names;
  Names.reserve(Classes.size());
  for (const auto &[Name, Def] : Classes)
    Names.push_back(Name);
  return Names;
}

ClassPath ClassPath::standard() {
  ClassPath CP;
  auto Add = [&](const char *Name, const char *Super,
                 std::unordered_map<std::string, std::string> Fields,
                 std::unordered_map<std::string, std::string> Methods) {
    ClassDef Def;
    Def.QualifiedName = Name;
    Def.Super = Super;
    Def.Fields = std::move(Fields);
    Def.Methods = std::move(Methods);
    CP.addClass(std::move(Def));
  };

  // java.lang --------------------------------------------------------------
  Add("java.lang.Object", "", {},
      {{"toString", "java.lang.String"},
       {"equals", "boolean"},
       {"hashCode", "int"}});
  Add("java.lang.String", "java.lang.Object", {},
      {{"length", "int"},
       {"isEmpty", "boolean"},
       {"charAt", "char"},
       {"substring", "java.lang.String"},
       {"indexOf", "int"},
       {"lastIndexOf", "int"},
       {"contains", "boolean"},
       {"startsWith", "boolean"},
       {"endsWith", "boolean"},
       {"toLowerCase", "java.lang.String"},
       {"toUpperCase", "java.lang.String"},
       {"trim", "java.lang.String"},
       {"replace", "java.lang.String"},
       {"split", "java.lang.String[]"},
       {"concat", "java.lang.String"},
       {"compareTo", "int"}});
  Add("java.lang.Integer", "java.lang.Object", {{"MAX_VALUE", "int"}},
      {{"parseInt", "int"},
       {"valueOf", "java.lang.Integer"},
       {"intValue", "int"},
       {"toString", "java.lang.String"}});
  Add("java.lang.Long", "java.lang.Object", {},
      {{"parseLong", "long"}, {"longValue", "long"}});
  Add("java.lang.Double", "java.lang.Object", {},
      {{"parseDouble", "double"}, {"doubleValue", "double"}});
  Add("java.lang.Boolean", "java.lang.Object", {},
      {{"parseBoolean", "boolean"}, {"booleanValue", "boolean"}});
  Add("java.lang.Character", "java.lang.Object", {},
      {{"isDigit", "boolean"}, {"isLetter", "boolean"}});
  Add("java.lang.Math", "java.lang.Object", {{"PI", "double"}},
      {{"abs", "int"},
       {"max", "int"},
       {"min", "int"},
       {"sqrt", "double"},
       {"pow", "double"},
       {"floor", "double"},
       {"ceil", "double"},
       {"random", "double"}});
  Add("java.lang.System", "java.lang.Object",
      {{"out", "java.io.PrintStream"}, {"err", "java.io.PrintStream"}},
      {{"currentTimeMillis", "long"}, {"nanoTime", "long"}});
  Add("java.lang.StringBuilder", "java.lang.Object", {},
      {{"append", "java.lang.StringBuilder"},
       {"toString", "java.lang.String"},
       {"length", "int"},
       {"reverse", "java.lang.StringBuilder"}});
  Add("java.lang.Exception", "java.lang.Object", {},
      {{"getMessage", "java.lang.String"}});
  Add("java.lang.RuntimeException", "java.lang.Exception", {}, {});
  Add("java.lang.IllegalArgumentException", "java.lang.RuntimeException", {},
      {});
  Add("java.lang.NumberFormatException", "java.lang.RuntimeException", {},
      {});

  // java.io ----------------------------------------------------------------
  Add("java.io.PrintStream", "java.lang.Object", {},
      {{"println", "void"}, {"print", "void"},
       {"printf", "java.io.PrintStream"}, {"flush", "void"}});
  Add("java.io.BufferedReader", "java.lang.Object", {},
      {{"readLine", "java.lang.String"}, {"close", "void"},
       {"ready", "boolean"}});
  Add("java.io.FileReader", "java.lang.Object", {}, {{"close", "void"}});
  Add("java.io.IOException", "java.lang.Exception", {}, {});
  Add("java.io.File", "java.lang.Object", {},
      {{"exists", "boolean"},
       {"getName", "java.lang.String"},
       {"length", "long"},
       {"isDirectory", "boolean"}});

  // java.util --------------------------------------------------------------
  Add("java.util.Collection", "java.lang.Object", {},
      {{"size", "int"}, {"isEmpty", "boolean"},
       {"iterator", "java.util.Iterator<T0>"}});
  Add("java.util.List", "java.util.Collection<T0>", {},
      {{"get", "T0"},
       {"add", "boolean"},
       {"set", "T0"},
       {"remove", "T0"},
       {"indexOf", "int"},
       {"contains", "boolean"},
       {"clear", "void"},
       {"subList", "java.util.List<T0>"}});
  Add("java.util.ArrayList", "java.util.List<T0>", {}, {});
  Add("java.util.LinkedList", "java.util.List<T0>", {}, {});
  Add("java.util.Map", "java.lang.Object", {},
      {{"get", "T1"},
       {"put", "T1"},
       {"remove", "T1"},
       {"containsKey", "boolean"},
       {"containsValue", "boolean"},
       {"size", "int"},
       {"isEmpty", "boolean"},
       {"clear", "void"},
       {"keySet", "java.util.Set<T0>"},
       {"values", "java.util.Collection<T1>"}});
  Add("java.util.HashMap", "java.util.Map<T0,T1>", {}, {});
  Add("java.util.TreeMap", "java.util.Map<T0,T1>", {}, {});
  Add("java.util.Set", "java.util.Collection<T0>", {},
      {{"add", "boolean"}, {"contains", "boolean"}, {"remove", "boolean"}});
  Add("java.util.HashSet", "java.util.Set<T0>", {}, {});
  Add("java.util.Iterator", "java.lang.Object", {},
      {{"next", "T0"}, {"hasNext", "boolean"}, {"remove", "void"}});
  Add("java.util.Random", "java.lang.Object", {},
      {{"nextInt", "int"}, {"nextDouble", "double"},
       {"nextBoolean", "boolean"}});
  Add("java.util.Scanner", "java.lang.Object", {},
      {{"nextLine", "java.lang.String"},
       {"nextInt", "int"},
       {"hasNext", "boolean"},
       {"hasNextLine", "boolean"},
       {"close", "void"}});
  Add("java.util.Collections", "java.lang.Object", {},
      {{"sort", "void"}, {"reverse", "void"}, {"shuffle", "void"}});
  Add("java.util.Optional", "java.lang.Object", {},
      {{"get", "T0"}, {"isPresent", "boolean"},
       {"orElse", "T0"}});

  return CP;
}
