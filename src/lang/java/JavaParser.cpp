//===- JavaParser.cpp - MiniJava frontend ------------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/java/JavaParser.h"

#include "lang/common/Lexer.h"
#include "lang/common/ParserBase.h"
#include "lang/common/ScopeStack.h"

#include <string>

using namespace pigeon;
using namespace pigeon::lang;
using namespace pigeon::ast;

namespace {

const LexerConfig &javaLexerConfig() {
  static const LexerConfig Config = [] {
    LexerConfig C;
    C.Keywords = {"package",  "import",     "class",   "interface",
                  "extends",  "implements", "public",  "private",
                  "protected", "static",    "final",   "void",
                  "int",      "long",       "double",  "float",
                  "boolean",  "char",       "byte",    "short",
                  "if",       "else",       "while",   "do",
                  "for",      "return",     "break",   "continue",
                  "new",      "this",       "super",   "true",
                  "false",    "null",       "try",     "catch",
                  "finally",  "throw",      "throws",  "instanceof",
                  "abstract", "synchronized"};
    C.Punctuators = {"==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=",
                     "-=", "*=", "/=", "%=", "(",  ")",  "{",  "}",  "[",
                     "]",  ";",  ",",  ".",  ":",  "?",  "=",  "+",  "-",
                     "*",  "/",  "%",  "<",  ">",  "!",  "&",  "|",  "^",
                     "~",  "@"};
    C.SlashSlashComments = true;
    C.SlashStarComments = true;
    C.SingleQuoteStrings = true; // Char literals lex as short strings.
    return C;
  }();
  return Config;
}

bool isPrimitiveTypeKeyword(std::string_view S) {
  return S == "int" || S == "long" || S == "double" || S == "float" ||
         S == "boolean" || S == "char" || S == "byte" || S == "short" ||
         S == "void";
}

bool isModifier(std::string_view S) {
  return S == "public" || S == "private" || S == "protected" ||
         S == "static" || S == "final" || S == "abstract" ||
         S == "synchronized";
}

/// Recursive-descent parser for MiniJava.
class JavaParser : ParserBase {
public:
  JavaParser(const std::vector<Token> &Tokens, Diagnostics &Diags,
             StringInterner &Interner)
      : ParserBase(Tokens, Diags), Interner(Interner), Builder(Interner) {}

  Tree run() {
    Builder.begin("CompilationUnit");
    if (at("package")) {
      advance();
      Builder.begin("PackageDeclaration");
      Builder.terminal(intern("Name"), intern(parseDottedName()));
      Builder.end();
      expect(";");
    }
    while (at("import")) {
      advance();
      Builder.begin("ImportDeclaration");
      Builder.terminal(intern("Name"), intern(parseDottedName()));
      Builder.end();
      expect(";");
    }
    while (!atEnd()) {
      size_t Before = Cursor;
      skipModifiersAndAnnotations();
      if (at("class") || at("interface"))
        parseClass();
      else if (!atEnd()) {
        error("expected class declaration");
        advance();
      }
      if (Cursor == Before && !atEnd())
        advance();
    }
    Builder.end();
    return std::move(Builder).finish();
  }

private:
  StringInterner &Interner;
  TreeBuilder Builder;
  ScopeStack Scopes;
  /// Field and method elements of the enclosing class, for `this.x` and
  /// unqualified-call resolution.
  std::unordered_map<Symbol, ElementId> ClassFields;
  std::unordered_map<Symbol, ElementId> ClassMethods;

  Symbol intern(std::string_view S) { return Interner.intern(S); }

  void skipModifiersAndAnnotations() {
    while (true) {
      if (at("@")) {
        advance();
        if (atKind(TokenKind::Identifier))
          advance();
        if (accept("(")) {
          int Depth = 1;
          while (!atEnd() && Depth > 0) {
            if (at("("))
              ++Depth;
            if (at(")"))
              --Depth;
            advance();
          }
        }
        continue;
      }
      if (atKind(TokenKind::Keyword) && isModifier(peek().Text)) {
        advance();
        continue;
      }
      return;
    }
  }

  std::string parseDottedName() {
    std::string Name(expectIdentifier("name").Text);
    while (at(".") && (peek(1).is(TokenKind::Identifier) || peek(1).is("*"))) {
      advance();
      Name += '.';
      if (accept("*")) {
        Name += '*';
        break;
      }
      Name += std::string(advance().Text);
    }
    return Name;
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  /// True if the tokens starting at \p I spell a type; sets \p End to one
  /// past the type. Types: primitive | dotted name [generic args], then
  /// zero or more "[]" pairs.
  bool scanType(size_t I, size_t &End) const {
    auto Tok = [&](size_t J) -> const Token & {
      return J < Tokens.size() ? Tokens[J] : Tokens.back();
    };
    if (Tok(I).is(TokenKind::Keyword) && isPrimitiveTypeKeyword(Tok(I).Text)) {
      ++I;
    } else if (Tok(I).is(TokenKind::Identifier)) {
      ++I;
      while (Tok(I).is(".") && Tok(I + 1).is(TokenKind::Identifier))
        I += 2;
      if (Tok(I).is("<")) {
        int Depth = 0;
        size_t J = I;
        while (J < Tokens.size()) {
          const Token &T = Tok(J);
          if (T.is("<"))
            ++Depth;
          else if (T.is(">")) {
            --Depth;
            if (Depth == 0) {
              ++J;
              break;
            }
          } else if (!(T.is(TokenKind::Identifier) || T.is(",") || T.is(".") ||
                       T.is("[") || T.is("]") || T.is("?") ||
                       (T.is(TokenKind::Keyword) &&
                        isPrimitiveTypeKeyword(T.Text))))
            return false;
          ++J;
        }
        if (Depth != 0)
          return false;
        I = J;
      }
    } else {
      return false;
    }
    while (Tok(I).is("[") && Tok(I + 1).is("]"))
      I += 2;
    End = I;
    return true;
  }

  /// Parses a type, emitting PrimitiveType / ClassOrInterfaceType /
  /// ArrayType nodes. \returns false (after diagnosing) on malformed input.
  void parseType() {
    // Count trailing "[]" pairs first so ArrayType wrappers can open
    // outermost-first.
    size_t End = Cursor;
    int ArrayDims = 0;
    if (scanType(Cursor, End)) {
      size_t J = End;
      while (J >= 2 && Tokens[J - 1].is("]") && Tokens[J - 2].is("[")) {
        ++ArrayDims;
        J -= 2;
      }
    }
    for (int I = 0; I < ArrayDims; ++I)
      Builder.begin("ArrayType");
    parseNonArrayType();
    for (int I = 0; I < ArrayDims; ++I) {
      expect("[");
      expect("]");
      Builder.end();
    }
  }

  void parseNonArrayType() {
    if (atKind(TokenKind::Keyword) && isPrimitiveTypeKeyword(peek().Text)) {
      Token T = advance();
      Builder.terminal(intern("PrimitiveType"), intern(T.Text));
      return;
    }
    Builder.begin("ClassOrInterfaceType");
    Builder.terminal(intern("TypeName"), intern(parseDottedName()));
    if (accept("<")) {
      if (!accept(">")) { // Diamond <> has no args.
        do {
          Builder.begin("TypeArg");
          if (accept("?"))
            Builder.terminal(intern("Wildcard"), intern("?"));
          else
            parseType();
          Builder.end();
        } while (accept(","));
        expect(">");
      }
    }
    Builder.end();
  }

  /// Renders the type starting at the cursor as a flat string (without
  /// consuming it). Used for recording nothing here; kept for symmetry.
  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void parseClass() {
    bool IsInterface = at("interface");
    advance(); // class / interface.
    Token Name = expectIdentifier("class name");
    Symbol NameSym = intern(Name.Text);
    ElementId ClassElem =
        Builder.addElement(NameSym, ElementKind::Class, /*Predictable=*/false);
    Scopes.declareGlobal(NameSym, ClassElem);
    Builder.begin(IsInterface ? "InterfaceDeclaration"
                              : "ClassOrInterfaceDeclaration");
    Builder.terminal(intern("SimpleName"), NameSym, ClassElem);
    if (accept("extends")) {
      Builder.begin("ExtendedType");
      parseNonArrayType();
      Builder.end();
    }
    if (accept("implements")) {
      do {
        Builder.begin("ImplementedType");
        parseNonArrayType();
        Builder.end();
      } while (accept(","));
    }
    expect("{");
    ClassFields.clear();
    ClassMethods.clear();
    // Pre-scan member names so forward references resolve: collect field
    // and method names at this brace depth.
    prescanMembers(Name.Text);
    Scopes.push();
    while (!at("}") && !atEnd()) {
      size_t Before = Cursor;
      parseMember(Name.Text);
      if (Cursor == Before)
        advance();
    }
    Scopes.pop();
    expect("}");
    Builder.end();
  }

  /// Registers elements for every field and method of the class before
  /// parsing bodies, so that uses preceding declarations link correctly.
  void prescanMembers(std::string_view ClassName) {
    size_t I = Cursor;
    int Depth = 1; // We are just inside the class brace.
    auto Tok = [&](size_t J) -> const Token & {
      return J < Tokens.size() ? Tokens[J] : Tokens.back();
    };
    while (I < Tokens.size() && Depth > 0) {
      const Token &T = Tok(I);
      if (T.is("{")) {
        ++Depth;
        ++I;
        continue;
      }
      if (T.is("}")) {
        --Depth;
        ++I;
        continue;
      }
      if (Depth != 1) {
        ++I;
        continue;
      }
      // At member level: skip modifiers, then try `Type name (` = method,
      // `Type name [=;,]` = field, `ClassName (` = constructor.
      size_t J = I;
      while (Tok(J).is(TokenKind::Keyword) && isModifier(Tok(J).Text))
        ++J;
      size_t AfterType = J;
      if (Tok(J).is(TokenKind::Identifier) && Tok(J).Text == ClassName &&
          Tok(J + 1).is("(")) {
        I = J + 1;
        continue; // Constructor; no element needed here.
      }
      if (scanType(J, AfterType) && Tok(AfterType).is(TokenKind::Identifier)) {
        Symbol Name = intern(Tok(AfterType).Text);
        if (Tok(AfterType + 1).is("(")) {
          if (!ClassMethods.count(Name)) {
            ElementId Id = Builder.addElement(Name, ElementKind::Method,
                                              /*Predictable=*/true);
            ClassMethods.emplace(Name, Id);
          }
          I = AfterType + 1;
          continue;
        }
        if (Tok(AfterType + 1).is("=") || Tok(AfterType + 1).is(";") ||
            Tok(AfterType + 1).is(",")) {
          if (!ClassFields.count(Name)) {
            ElementId Id = Builder.addElement(Name, ElementKind::Field,
                                              /*Predictable=*/true);
            ClassFields.emplace(Name, Id);
          }
          I = AfterType + 1;
          continue;
        }
      }
      ++I;
    }
  }

  void parseMember(std::string_view ClassName) {
    skipModifiersAndAnnotations();
    if (at("}"))
      return;
    // Constructor?
    if (atKind(TokenKind::Identifier) && peek().Text == ClassName &&
        peek(1).is("(")) {
      Token Name = advance();
      Builder.begin("ConstructorDeclaration");
      Builder.terminal(intern("SimpleName"), intern(Name.Text));
      Scopes.push();
      parseParams();
      skipThrows();
      parseBlock();
      Scopes.pop();
      Builder.end();
      return;
    }
    // Method or field: Type name ...
    size_t AfterType = Cursor;
    if (!scanType(Cursor, AfterType)) {
      error("expected member declaration");
      skipUntil({";", "}"});
      accept(";");
      return;
    }
    size_t NameIdx = AfterType;
    bool IsMethod = NameIdx < Tokens.size() &&
                    Tokens[NameIdx].is(TokenKind::Identifier) &&
                    NameIdx + 1 < Tokens.size() && Tokens[NameIdx + 1].is("(");
    if (IsMethod) {
      Builder.begin("MethodDeclaration");
      parseType();
      Token Name = expectIdentifier("method name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id;
      auto It = ClassMethods.find(NameSym);
      if (It != ClassMethods.end()) {
        Id = It->second;
      } else {
        Id = Builder.addElement(NameSym, ElementKind::Method,
                                /*Predictable=*/true);
        ClassMethods.emplace(NameSym, Id);
      }
      Builder.terminal(intern("SimpleName"), NameSym, Id);
      Scopes.push();
      parseParams();
      skipThrows();
      if (accept(";")) { // Abstract/interface method.
        Scopes.pop();
        Builder.end();
        return;
      }
      parseBlock();
      Scopes.pop();
      Builder.end();
      return;
    }
    // Field declaration.
    Builder.begin("FieldDeclaration");
    parseType();
    do {
      Builder.begin("VariableDeclarator");
      Token Name = expectIdentifier("field name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id;
      auto It = ClassFields.find(NameSym);
      if (It != ClassFields.end()) {
        Id = It->second;
      } else {
        Id = Builder.addElement(NameSym, ElementKind::Field,
                                /*Predictable=*/true);
        ClassFields.emplace(NameSym, Id);
      }
      Builder.terminal(intern("SimpleName"), NameSym, Id);
      if (accept("="))
        parseExpressionNoComma();
      Builder.end();
    } while (accept(","));
    expect(";");
    Builder.end();
  }

  void parseParams() {
    expect("(");
    Builder.begin("Parameters");
    while (!at(")") && !atEnd()) {
      Builder.begin("Parameter");
      parseType();
      Token Name = expectIdentifier("parameter name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id = Builder.addElement(NameSym, ElementKind::Parameter,
                                        /*Predictable=*/true);
      Scopes.declare(NameSym, Id);
      Builder.terminal(intern("SimpleName"), NameSym, Id);
      Builder.end();
      if (!accept(","))
        break;
    }
    Builder.end();
    expect(")");
  }

  void skipThrows() {
    if (accept("throws")) {
      do {
        parseDottedName();
      } while (accept(","));
    }
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void parseBlock() {
    expect("{");
    Scopes.push();
    Builder.begin("BlockStmt");
    while (!at("}") && !atEnd()) {
      size_t Before = Cursor;
      parseStatement();
      if (Cursor == Before)
        advance();
    }
    Builder.end();
    Scopes.pop();
    expect("}");
  }

  void parseStatement() {
    if (at("{")) {
      parseBlock();
      return;
    }
    if (at("if")) {
      advance();
      Builder.begin("IfStmt");
      expect("(");
      parseExpression();
      expect(")");
      parseStatement();
      if (accept("else"))
        parseStatement();
      Builder.end();
      return;
    }
    if (at("while")) {
      advance();
      Builder.begin("WhileStmt");
      expect("(");
      parseExpression();
      expect(")");
      parseStatement();
      Builder.end();
      return;
    }
    if (at("do")) {
      advance();
      Builder.begin("DoStmt");
      parseStatement();
      expect("while");
      expect("(");
      parseExpression();
      expect(")");
      accept(";");
      Builder.end();
      return;
    }
    if (at("for")) {
      parseFor();
      return;
    }
    if (at("return")) {
      advance();
      Builder.begin("ReturnStmt");
      if (!at(";"))
        parseExpression();
      Builder.end();
      expect(";");
      return;
    }
    if (at("break")) {
      advance();
      Builder.begin("BreakStmt");
      Builder.end();
      accept(";");
      return;
    }
    if (at("continue")) {
      advance();
      Builder.begin("ContinueStmt");
      Builder.end();
      accept(";");
      return;
    }
    if (at("throw")) {
      advance();
      Builder.begin("ThrowStmt");
      parseExpression();
      Builder.end();
      expect(";");
      return;
    }
    if (at("try")) {
      advance();
      Builder.begin("TryStmt");
      parseBlock();
      while (at("catch")) {
        advance();
        Builder.begin("CatchClause");
        Scopes.push();
        expect("(");
        Builder.begin("Parameter");
        parseType();
        Token Name = expectIdentifier("catch parameter");
        Symbol NameSym = intern(Name.Text);
        ElementId Id = Builder.addElement(NameSym, ElementKind::Parameter,
                                          /*Predictable=*/true);
        Scopes.declare(NameSym, Id);
        Builder.terminal(intern("SimpleName"), NameSym, Id);
        Builder.end();
        expect(")");
        parseBlock();
        Scopes.pop();
        Builder.end();
      }
      if (accept("finally")) {
        Builder.begin("FinallyBlock");
        parseBlock();
        Builder.end();
      }
      Builder.end();
      return;
    }
    if (accept(";"))
      return;
    // Local variable declaration?
    if (isLocalDeclAhead()) {
      Builder.begin("ExpressionStmt");
      parseVarDecl();
      Builder.end();
      expect(";");
      return;
    }
    Builder.begin("ExpressionStmt");
    parseExpression();
    Builder.end();
    expect(";");
  }

  bool isLocalDeclAhead() const {
    size_t End = Cursor;
    if (!scanType(Cursor, End))
      return false;
    return End < Tokens.size() && Tokens[End].is(TokenKind::Identifier) &&
           (Tokens[End + 1].is("=") || Tokens[End + 1].is(";") ||
            Tokens[End + 1].is(",") || Tokens[End + 1].is(":"));
  }

  /// Parses `Type a = e, b;` into VariableDeclarationExpr.
  void parseVarDecl() {
    Builder.begin("VariableDeclarationExpr");
    parseType();
    do {
      Builder.begin("VariableDeclarator");
      Token Name = expectIdentifier("variable name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id = Builder.addElement(NameSym, ElementKind::LocalVar,
                                        /*Predictable=*/true);
      Scopes.declare(NameSym, Id);
      Builder.terminal(intern("SimpleName"), NameSym, Id);
      if (accept("="))
        parseExpressionNoComma();
      Builder.end();
    } while (accept(","));
    Builder.end();
  }

  void parseFor() {
    expect("for");
    expect("(");
    // Foreach: Type name : expr.
    {
      size_t End = Cursor;
      if (scanType(Cursor, End) && End < Tokens.size() &&
          Tokens[End].is(TokenKind::Identifier) && End + 1 < Tokens.size() &&
          Tokens[End + 1].is(":")) {
        Builder.begin("ForEachStmt");
        Scopes.push();
        Builder.begin("VariableDeclarationExpr");
        parseType();
        Builder.begin("VariableDeclarator");
        Token Name = expectIdentifier("loop variable");
        Symbol NameSym = intern(Name.Text);
        ElementId Id = Builder.addElement(NameSym, ElementKind::LocalVar,
                                          /*Predictable=*/true);
        Scopes.declare(NameSym, Id);
        Builder.terminal(intern("SimpleName"), NameSym, Id);
        Builder.end();
        Builder.end();
        expect(":");
        parseExpression();
        expect(")");
        parseStatement();
        Scopes.pop();
        Builder.end();
        return;
      }
    }
    Builder.begin("ForStmt");
    Scopes.push();
    if (!accept(";")) {
      if (isLocalDeclAhead())
        parseVarDecl();
      else
        parseExpression();
      expect(";");
    }
    if (!accept(";")) {
      parseExpression();
      expect(";");
    }
    if (!at(")"))
      parseExpression();
    expect(")");
    parseStatement();
    Scopes.pop();
    Builder.end();
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  void parseExpression() { parseAssignment(); }
  void parseExpressionNoComma() { parseAssignment(); }

  static bool isAssignOp(std::string_view Op) {
    return Op == "=" || Op == "+=" || Op == "-=" || Op == "*=" ||
           Op == "/=" || Op == "%=";
  }

  bool isAssignmentAhead() const {
    size_t I = Cursor;
    int Depth = 0;
    auto Tok = [&](size_t J) -> const Token & {
      return J < Tokens.size() ? Tokens[J] : Tokens.back();
    };
    if (!(Tok(I).is(TokenKind::Identifier) || Tok(I).is("this")))
      return false;
    ++I;
    while (I < Tokens.size()) {
      const Token &T = Tok(I);
      if (Depth == 0 && T.is(TokenKind::Punct) && isAssignOp(T.Text))
        return true;
      if (T.is(".")) {
        I += 2;
        continue;
      }
      if (T.is("[")) {
        ++Depth;
        ++I;
        continue;
      }
      if (T.is("]")) {
        if (Depth == 0)
          return false;
        --Depth;
        ++I;
        continue;
      }
      if (Depth > 0) {
        ++I;
        continue;
      }
      return false;
    }
    return false;
  }

  std::string findAssignOp() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (Depth == 0 && T.is(TokenKind::Punct) && isAssignOp(T.Text))
        return std::string(T.Text);
      if (T.is("["))
        ++Depth;
      else if (T.is("]"))
        --Depth;
    }
    return "=";
  }

  void parseAssignment() {
    if (isAssignmentAhead()) {
      std::string Op = findAssignOp();
      Builder.begin(std::string("Assign") + Op);
      parseCallChain();
      expect(Op);
      parseAssignment();
      Builder.end();
      return;
    }
    parseConditional();
  }

  bool isConditionalAhead() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is("(") || T.is("[") || T.is("{"))
        ++Depth;
      else if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          return false;
        --Depth;
      } else if (Depth == 0) {
        if (T.is("?"))
          return true;
        if (T.is(";") || T.is(",") || T.is(":") || T.is(TokenKind::Eof) ||
            (T.is(TokenKind::Punct) && isAssignOp(T.Text)))
          return false;
      }
    }
    return false;
  }

  void parseConditional() {
    if (isConditionalAhead()) {
      Builder.begin("ConditionalExpr");
      parseBinaryLevel(1, /*StopAtQuestion=*/true);
      expect("?");
      parseAssignment();
      expect(":");
      parseAssignment();
      Builder.end();
      return;
    }
    parseBinaryLevel(1, /*StopAtQuestion=*/false);
  }

  static int precedenceOf(std::string_view Op) {
    if (Op == "||")
      return 1;
    if (Op == "&&")
      return 2;
    if (Op == "|")
      return 3;
    if (Op == "^")
      return 4;
    if (Op == "&")
      return 5;
    if (Op == "==" || Op == "!=")
      return 6;
    if (Op == "<" || Op == ">" || Op == "<=" || Op == ">=" ||
        Op == "instanceof")
      return 7;
    if (Op == "+" || Op == "-")
      return 9;
    if (Op == "*" || Op == "/" || Op == "%")
      return 10;
    return 0;
  }

  void parseBinaryLevel(int Prec, bool StopAtQuestion) {
    if (Prec > 10) {
      parseUnary();
      return;
    }
    std::vector<std::string> Ops =
        operatorSpellingsAtLevel(Prec, StopAtQuestion);
    for (auto It = Ops.rbegin(); It != Ops.rend(); ++It) {
      if (*It == "instanceof")
        Builder.begin("InstanceOfExpr");
      else
        Builder.begin(std::string("BinaryExpr") + *It);
    }
    parseBinaryLevel(Prec + 1, StopAtQuestion);
    for (const std::string &ExpectedOp : Ops) {
      std::string Op = std::string(advance().Text);
      // Always-on drift check (asserts vanish in Release): a mismatch
      // between the lookahead scan and the parse raises a diagnostic so
      // the pipeline drops the file instead of keeping a wrong AST.
      if (Op != ExpectedOp)
        error("operator drift: expected '" + ExpectedOp + "', found '" +
              Op + "'");
      if (Op == "instanceof")
        parseType();
      else
        parseBinaryLevel(Prec + 1, StopAtQuestion);
      Builder.end();
    }
  }

  std::vector<std::string>
  operatorSpellingsAtLevel(int Prec, bool StopAtQuestion) const {
    std::vector<std::string> Ops;
    int Depth = 0;
    bool PrevWasOperand = false;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.is("(") || T.is("[") || T.is("{")) {
        ++Depth;
        PrevWasOperand = false;
        continue;
      }
      if (T.is(")") || T.is("]") || T.is("}")) {
        if (Depth == 0)
          break;
        --Depth;
        PrevWasOperand = true;
        continue;
      }
      if (Depth > 0)
        continue;
      if (T.is(TokenKind::Eof) || T.is(";") || T.is(",") || T.is(":"))
        break;
      if (StopAtQuestion && T.is("?"))
        break;
      // Skip the type after `new` so generic-argument angle brackets are
      // not misread as comparison operators (`new ArrayList<Integer>()`).
      if (T.is("new")) {
        size_t End = I + 1;
        if (scanType(I + 1, End))
          I = End - 1;
        PrevWasOperand = false;
        continue;
      }
      if (T.is(TokenKind::Punct) || T.is("instanceof")) {
        int P = precedenceOf(T.Text);
        if (P > 0 && PrevWasOperand) {
          if (P < Prec)
            break;
          if (P == Prec)
            Ops.push_back(std::string(T.Text));
          PrevWasOperand = false;
          if (T.is("instanceof")) {
            // Skip the type tokens so they are not misread as operands.
            size_t End = I + 1;
            if (scanType(I + 1, End))
              I = End - 1;
            PrevWasOperand = true;
          }
          continue;
        }
        if (T.is(TokenKind::Punct) && isAssignOp(T.Text))
          break;
      }
      PrevWasOperand =
          !T.is("!") && !T.is("~") && !T.is("new") && !T.is(TokenKind::Error);
    }
    return Ops;
  }

  void parseUnary() {
    if (at("!") || at("~") || at("-") || at("+") || at("++") || at("--")) {
      std::string Op(advance().Text);
      Builder.begin(std::string("UnaryExpr") + Op);
      parseUnary();
      Builder.end();
      return;
    }
    // Cast expression: (Type) operand.
    if (isCastAhead()) {
      Builder.begin("CastExpr");
      expect("(");
      parseType();
      expect(")");
      parseUnary();
      Builder.end();
      return;
    }
    parsePostfix();
  }

  bool isCastAhead() const {
    if (!at("("))
      return false;
    size_t End = Cursor + 1;
    if (!scanType(Cursor + 1, End))
      return false;
    if (End >= Tokens.size() || !Tokens[End].is(")"))
      return false;
    const Token &Next = End + 1 < Tokens.size() ? Tokens[End + 1]
                                                : Tokens.back();
    // `(x) + 1` is arithmetic, `(int) x` is a cast. A cast is followed by
    // something that starts an operand.
    if (Next.is(TokenKind::Identifier) || Next.is(TokenKind::IntLiteral) ||
        Next.is(TokenKind::FloatLiteral) ||
        Next.is(TokenKind::StringLiteral) || Next.is("this") ||
        Next.is("new") || Next.is("("))
      return true;
    // Primitive types are unambiguous casts regardless of what follows.
    const Token &Inner = Tokens[Cursor + 1];
    return Inner.is(TokenKind::Keyword) && isPrimitiveTypeKeyword(Inner.Text);
  }

  void parsePostfix() {
    if (peekPostfixIncrement()) {
      std::string Op = postfixOpSpelling();
      Builder.begin(std::string("UnaryExprPostfix") + Op);
      parseCallChain();
      advance(); // ++/--.
      Builder.end();
      return;
    }
    parseCallChain();
  }

  bool peekPostfixIncrement() const {
    size_t I = Cursor;
    int Depth = 0;
    if (!(Tokens[I].is(TokenKind::Identifier) || Tokens[I].is("this")))
      return false;
    ++I;
    while (I < Tokens.size()) {
      const Token &T = Tokens[I];
      if (Depth == 0 && (T.is("++") || T.is("--")))
        return true;
      if (T.is(".")) {
        I += 2;
        continue;
      }
      if (T.is("[")) {
        ++Depth;
        ++I;
        continue;
      }
      if (T.is("]")) {
        if (Depth == 0)
          return false;
        --Depth;
        ++I;
        continue;
      }
      if (Depth > 0) {
        ++I;
        continue;
      }
      return false;
    }
    return false;
  }

  std::string postfixOpSpelling() const {
    int Depth = 0;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (Depth == 0 && (T.is("++") || T.is("--")))
        return std::string(T.Text);
      if (T.is("["))
        ++Depth;
      else if (T.is("]"))
        --Depth;
    }
    return "++";
  }

  /// Parses a primary followed by member/call/index links, fusing `.name(`
  /// into MethodCallExpr and `.name` into FieldAccessExpr (JavaParser
  /// style). Wrapper nodes open outermost-first via pre-scan.
  void parseCallChain() {
    enum LinkKind { DotCall, DotField, Sub };
    std::vector<LinkKind> Links;
    bool PrimaryIsBareCall = false;
    {
      size_t I = Cursor;
      auto Tok = [&](size_t J) -> const Token & {
        return J < Tokens.size() ? Tokens[J] : Tokens.back();
      };
      // Skip the primary.
      const Token &T = Tok(I);
      if (T.is("(")) {
        int D = 0;
        do {
          if (Tok(I).is("(") || Tok(I).is("[") || Tok(I).is("{"))
            ++D;
          else if (Tok(I).is(")") || Tok(I).is("]") || Tok(I).is("}"))
            --D;
          ++I;
        } while (I < Tokens.size() && D > 0);
      } else if (T.is("new")) {
        ++I; // new.
        size_t End = I;
        if (scanType(I, End))
          I = End;
        if (Tok(I).is("(")) {
          int D = 0;
          do {
            if (Tok(I).is("(") || Tok(I).is("[") || Tok(I).is("{"))
              ++D;
            else if (Tok(I).is(")") || Tok(I).is("]") || Tok(I).is("}"))
              --D;
            ++I;
          } while (I < Tokens.size() && D > 0);
        } else if (Tok(I).is("[")) {
          // Array creation; dims already inside scanType's "[]" pairs only
          // when empty, so consume "[expr]" groups here.
          while (Tok(I).is("[")) {
            int D = 0;
            do {
              if (Tok(I).is("["))
                ++D;
              else if (Tok(I).is("]"))
                --D;
              ++I;
            } while (I < Tokens.size() && D > 0);
          }
        }
      } else if (T.is(TokenKind::Identifier) && Tok(I + 1).is("(")) {
        PrimaryIsBareCall = true;
        ++I;
        int D = 0;
        do {
          if (Tok(I).is("(") || Tok(I).is("[") || Tok(I).is("{"))
            ++D;
          else if (Tok(I).is(")") || Tok(I).is("]") || Tok(I).is("}"))
            --D;
          ++I;
        } while (I < Tokens.size() && D > 0);
      } else {
        ++I; // Identifier, literal, this, ...
      }
      // Scan links.
      int Depth = 0;
      while (I < Tokens.size()) {
        const Token &U = Tok(I);
        if (Depth == 0 && U.is(".")) {
          if (Tok(I + 2).is("(")) {
            Links.push_back(DotCall);
            I += 2; // '.' name; the '(' group is scanned below.
            int D = 0;
            do {
              if (Tok(I).is("(") || Tok(I).is("[") || Tok(I).is("{"))
                ++D;
              else if (Tok(I).is(")") || Tok(I).is("]") || Tok(I).is("}"))
                --D;
              ++I;
            } while (I < Tokens.size() && D > 0);
            continue;
          }
          Links.push_back(DotField);
          I += 2;
          continue;
        }
        if (Depth == 0 && U.is("[")) {
          Links.push_back(Sub);
          int D = 0;
          do {
            if (Tok(I).is("["))
              ++D;
            else if (Tok(I).is("]"))
              --D;
            ++I;
          } while (I < Tokens.size() && D > 0);
          continue;
        }
        break;
      }
    }

    for (auto It = Links.rbegin(); It != Links.rend(); ++It) {
      switch (*It) {
      case DotCall:
        Builder.begin("MethodCallExpr");
        break;
      case DotField:
        Builder.begin("FieldAccessExpr");
        break;
      case Sub:
        Builder.begin("ArrayAccessExpr");
        break;
      }
    }

    bool PrimaryIsThis = at("this");
    parsePrimary(PrimaryIsBareCall);

    bool FirstLink = true;
    for (LinkKind K : Links) {
      switch (K) {
      case DotCall: {
        expect(".");
        Token Name = expectIdentifier("method name");
        Symbol NameSym = intern(Name.Text);
        // `this.helper()` resolves to the class method element.
        ElementId Id = InvalidElement;
        if (PrimaryIsThis && FirstLink) {
          auto It = ClassMethods.find(NameSym);
          if (It != ClassMethods.end())
            Id = It->second;
        }
        Builder.terminal(intern("SimpleName"), NameSym, Id);
        parseArguments();
        break;
      }
      case DotField: {
        expect(".");
        Token Name = expectIdentifier("field name");
        Symbol NameSym = intern(Name.Text);
        // `this.x` resolves to the class field element.
        ElementId Id = InvalidElement;
        if (PrimaryIsThis && FirstLink) {
          auto It = ClassFields.find(NameSym);
          if (It != ClassFields.end())
            Id = It->second;
        }
        Builder.terminal(intern("SimpleName"), NameSym, Id);
        break;
      }
      case Sub:
        expect("[");
        parseExpression();
        expect("]");
        break;
      }
      FirstLink = false;
      Builder.end();
    }
  }

  void parseArguments() {
    expect("(");
    Builder.begin("Arguments");
    while (!at(")") && !atEnd()) {
      parseExpressionNoComma();
      if (!accept(","))
        break;
    }
    Builder.end();
    expect(")");
  }

  void parsePrimary(bool BareCall) {
    const Token &T = peek();
    if (BareCall) {
      Builder.begin("MethodCallExpr");
      Token Name = expectIdentifier("method name");
      Symbol NameSym = intern(Name.Text);
      ElementId Id = InvalidElement;
      auto It = ClassMethods.find(NameSym);
      if (It != ClassMethods.end())
        Id = It->second;
      Builder.terminal(intern("SimpleName"), NameSym, Id);
      parseArguments();
      Builder.end();
      return;
    }
    if (T.is(TokenKind::Identifier)) {
      advance();
      Symbol NameSym = intern(T.Text);
      Builder.begin("NameExpr");
      ElementId Id = Scopes.lookup(NameSym);
      if (Id == InvalidElement) {
        auto It = ClassFields.find(NameSym);
        if (It != ClassFields.end())
          Id = It->second;
      }
      Builder.terminal(intern("SimpleName"), NameSym, Id);
      Builder.end();
      return;
    }
    if (T.is("this")) {
      advance();
      // `this.field` is handled by the chain; a ThisExpr leaf stands in
      // for the receiver.
      Builder.begin("ThisExpr");
      Builder.end();
      return;
    }
    if (T.is(TokenKind::IntLiteral)) {
      advance();
      Builder.terminal(intern("IntegerLiteralExpr"), intern(T.Text));
      return;
    }
    if (T.is(TokenKind::FloatLiteral)) {
      advance();
      Builder.terminal(intern("DoubleLiteralExpr"), intern(T.Text));
      return;
    }
    if (T.is(TokenKind::StringLiteral)) {
      advance();
      if (T.Text.size() >= 2 && T.Text[0] == '\'')
        Builder.terminal(intern("CharLiteralExpr"), intern(T.stringValue()));
      else
        Builder.terminal(intern("StringLiteralExpr"),
                         intern(T.stringValue()));
      return;
    }
    if (T.is("true") || T.is("false")) {
      advance();
      Builder.terminal(intern("BooleanLiteralExpr"), intern(T.Text));
      return;
    }
    if (T.is("null")) {
      advance();
      Builder.terminal(intern("NullLiteralExpr"), intern("null"));
      return;
    }
    if (T.is("(")) {
      advance();
      parseExpression();
      expect(")");
      return;
    }
    if (T.is("new")) {
      advance();
      // Object creation or array creation.
      size_t End = Cursor;
      bool HaveType = scanType(Cursor, End);
      bool IsArray = HaveType && End < Tokens.size() && Tokens[End].is("[");
      if (IsArray) {
        Builder.begin("ArrayCreationExpr");
        parseType();
        while (accept("[")) {
          if (!at("]"))
            parseExpression();
          expect("]");
        }
        Builder.end();
        return;
      }
      Builder.begin("ObjectCreationExpr");
      parseNonArrayType();
      if (at("("))
        parseArguments();
      Builder.end();
      return;
    }
    error(std::string("unexpected token '") + std::string(T.Text) +
          "' in expression");
    advance();
    Builder.terminal(intern("Error"), intern("<error>"));
  }
};

} // namespace

lang::ParseResult java::parse(std::string_view Source,
                              StringInterner &Interner) {
  Diagnostics Diags(Source);
  Lexer Lex(Source, javaLexerConfig(), Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  JavaParser Parser(Tokens, Diags, Interner);
  lang::ParseResult Result;
  Result.Tree = Parser.run();
  Result.Diags = Diags.all();
  return Result;
}
