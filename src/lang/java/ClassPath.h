//===- ClassPath.h - Known classes for the Java type checker ----*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature "classpath": the set of classes the MiniJava type checker
/// knows about, with field types and method return types (including
/// generic placeholders T0/T1 referring to the receiver's type arguments).
/// This substitutes for the global type-inference engine the paper used as
/// its labelling oracle for the full-type prediction task (§5.3.3).
///
/// Types are represented as fully-qualified strings, e.g.
/// "java.lang.String", "java.util.List<java.lang.Integer>", "int[]".
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_JAVA_CLASSPATH_H
#define PIGEON_LANG_JAVA_CLASSPATH_H

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pigeon {
namespace java {

/// A class known to the checker. Method maps hold return types; fields
/// hold field types. Generic placeholders T0, T1 refer to the receiver's
/// first/second type argument.
struct ClassDef {
  std::string QualifiedName;
  /// Superclass as a (possibly generic) type string, e.g.
  /// "java.util.List<T0>" for ArrayList. Empty for none.
  std::string Super;
  std::unordered_map<std::string, std::string> Fields;
  std::unordered_map<std::string, std::string> Methods;
};

/// Splits "base<a,b>" into its base name and top-level type arguments.
struct ParsedType {
  std::string Base;
  std::vector<std::string> Args;
};
ParsedType parseTypeString(const std::string &Type);

/// Replaces T0/T1 placeholders in \p Template with \p Args.
std::string substituteTypeArgs(const std::string &Template,
                               const std::vector<std::string> &Args);

/// The set of classes visible to one compilation unit's type check.
class ClassPath {
public:
  /// Registers \p Def (overwrites an existing class of the same name).
  void addClass(ClassDef Def);

  /// \returns the class named \p Qualified, or nullptr.
  const ClassDef *find(const std::string &Qualified) const;

  /// \returns the return type of \p Method called on a receiver of
  /// (possibly generic) type \p ReceiverType, walking the super chain and
  /// substituting type arguments. nullopt if unknown.
  std::optional<std::string> methodReturn(const std::string &ReceiverType,
                                          const std::string &Method) const;

  /// \returns the type of field \p Field on \p ReceiverType, walking the
  /// super chain. nullopt if unknown.
  std::optional<std::string> fieldType(const std::string &ReceiverType,
                                       const std::string &Field) const;

  /// All registered qualified names (for tests and corpus stats).
  std::vector<std::string> classNames() const;

  /// The built-in classpath: a slice of java.lang / java.util / java.io
  /// wide enough for the generated corpora and the paper's examples.
  static ClassPath standard();

private:
  std::unordered_map<std::string, ClassDef> Classes;
};

} // namespace java
} // namespace pigeon

#endif // PIGEON_LANG_JAVA_CLASSPATH_H
