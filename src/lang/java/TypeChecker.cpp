//===- TypeChecker.cpp - MiniJava static type annotation -------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "lang/java/TypeChecker.h"

#include <unordered_map>
#include <vector>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::java;

namespace {

/// One checking pass over a compilation unit.
class Checker {
public:
  Checker(Tree &T, const ClassPath &Base)
      : T(T), SI(T.interner()), CP(Base) {}

  size_t run() {
    collectImports();
    collectLocalClasses();
    for (NodeId Id = 0; Id < T.size(); ++Id)
      if (isKind(Id, "ClassOrInterfaceDeclaration") ||
          isKind(Id, "InterfaceDeclaration"))
        checkClass(Id);
    return NumAnnotated;
  }

private:
  Tree &T;
  StringInterner &SI;
  ClassPath CP;
  std::unordered_map<std::string, std::string> Imports;
  std::string Package;
  std::string CurrentClass;
  /// Local variable / parameter environment: name -> type string. Scoped
  /// by saving/restoring size markers on block entry/exit.
  std::vector<std::pair<std::string, std::string>> Env;
  size_t NumAnnotated = 0;

  //===--------------------------------------------------------------------===//
  // Tree helpers
  //===--------------------------------------------------------------------===//

  std::string_view kindOf(NodeId Id) const {
    return SI.str(T.node(Id).Kind);
  }
  bool isKind(NodeId Id, std::string_view K) const { return kindOf(Id) == K; }
  bool kindStartsWith(NodeId Id, std::string_view Prefix) const {
    std::string_view K = kindOf(Id);
    return K.substr(0, std::min(Prefix.size(), K.size())) == Prefix;
  }
  std::string_view valueOf(NodeId Id) const {
    return SI.str(T.node(Id).Value);
  }
  NodeId child(NodeId Id, size_t I) const {
    auto Kids = T.children(Id);
    return I < Kids.size() ? Kids[I] : InvalidNode;
  }

  //===--------------------------------------------------------------------===//
  // Name resolution
  //===--------------------------------------------------------------------===//

  void collectImports() {
    for (NodeId Id = 0; Id < T.size(); ++Id) {
      if (isKind(Id, "PackageDeclaration")) {
        NodeId Name = child(Id, 0);
        if (Name != InvalidNode)
          Package = valueOf(Name);
      }
      if (!isKind(Id, "ImportDeclaration"))
        continue;
      NodeId Name = child(Id, 0);
      if (Name == InvalidNode)
        continue;
      std::string_view Qualified = valueOf(Name);
      size_t Dot = Qualified.rfind('.');
      if (Dot == std::string::npos)
        continue;
      std::string Simple(Qualified.substr(Dot + 1));
      if (Simple == "*")
        continue; // Wildcards resolve via the classpath probe below.
      Imports[Simple] = Qualified;
    }
  }

  /// Adds classes declared in this file to the classpath so intra-file
  /// references type-check.
  void collectLocalClasses() {
    for (NodeId Id = 0; Id < T.size(); ++Id) {
      if (!isKind(Id, "ClassOrInterfaceDeclaration") &&
          !isKind(Id, "InterfaceDeclaration"))
        continue;
      NodeId NameNode = child(Id, 0);
      if (NameNode == InvalidNode)
        continue;
      ClassDef Def;
      std::string Simple(valueOf(NameNode));
      Def.QualifiedName = Package.empty() ? Simple : Package + "." + Simple;
      Imports[Simple] = Def.QualifiedName;
      for (NodeId Member : T.children(Id)) {
        if (isKind(Member, "ExtendedType")) {
          NodeId SuperType = child(Member, 0);
          if (SuperType != InvalidNode)
            Def.Super = typeNodeToString(SuperType);
          continue;
        }
        if (isKind(Member, "FieldDeclaration")) {
          NodeId TypeNode = child(Member, 0);
          std::string FieldType = typeNodeToString(TypeNode);
          for (NodeId Decl : T.children(Member)) {
            if (!isKind(Decl, "VariableDeclarator"))
              continue;
            NodeId FieldName = child(Decl, 0);
            if (FieldName != InvalidNode)
              Def.Fields[std::string(valueOf(FieldName))] = FieldType;
          }
          continue;
        }
        if (isKind(Member, "MethodDeclaration")) {
          NodeId TypeNode = child(Member, 0);
          NodeId MethodName = child(Member, 1);
          if (TypeNode != InvalidNode && MethodName != InvalidNode)
            Def.Methods[std::string(valueOf(MethodName))] = typeNodeToString(TypeNode);
          continue;
        }
      }
      if (Def.Super.empty())
        Def.Super = "java.lang.Object";
      CP.addClass(std::move(Def));
    }
  }

  /// Resolves a (possibly simple) class name to a qualified one.
  std::string resolveClassName(std::string_view NameView) const {
    std::string Name(NameView);
    if (Name.find('.') != std::string::npos)
      return Name;
    auto It = Imports.find(Name);
    if (It != Imports.end())
      return It->second;
    std::string Lang = "java.lang." + Name;
    if (CP.find(Lang))
      return Lang;
    std::string Util = "java.util." + Name;
    if (CP.find(Util))
      return Util;
    return Name;
  }

  /// Renders a Type subtree (PrimitiveType / ClassOrInterfaceType /
  /// ArrayType) as a qualified type string.
  std::string typeNodeToString(NodeId Id) const {
    if (Id == InvalidNode)
      return "";
    if (isKind(Id, "PrimitiveType"))
      return std::string(valueOf(Id));
    if (isKind(Id, "ArrayType"))
      return typeNodeToString(child(Id, 0)) + "[]";
    if (isKind(Id, "ClassOrInterfaceType")) {
      NodeId NameNode = child(Id, 0);
      std::string Out =
          NameNode == InvalidNode ? "" : resolveClassName(valueOf(NameNode));
      auto Kids = T.children(Id);
      if (Kids.size() > 1) {
        Out += '<';
        bool First = true;
        for (size_t I = 1; I < Kids.size(); ++I) {
          if (!isKind(Kids[I], "TypeArg"))
            continue;
          if (!First)
            Out += ',';
          First = false;
          NodeId Arg = child(Kids[I], 0);
          if (Arg != InvalidNode && isKind(Arg, "Wildcard"))
            Out += "java.lang.Object";
          else
            Out += boxIfPrimitive(typeNodeToString(Arg));
        }
        Out += '>';
      }
      return Out;
    }
    return "";
  }

  static std::string boxIfPrimitive(const std::string &Type) {
    if (Type == "int")
      return "java.lang.Integer";
    if (Type == "long")
      return "java.lang.Long";
    if (Type == "double")
      return "java.lang.Double";
    if (Type == "boolean")
      return "java.lang.Boolean";
    if (Type == "char")
      return "java.lang.Character";
    return Type;
  }

  //===--------------------------------------------------------------------===//
  // Environment
  //===--------------------------------------------------------------------===//

  std::string lookupEnv(std::string_view Name) const {
    for (auto It = Env.rbegin(); It != Env.rend(); ++It)
      if (It->first == Name)
        return It->second;
    return "";
  }

  //===--------------------------------------------------------------------===//
  // Checking
  //===--------------------------------------------------------------------===//

  void checkClass(NodeId ClassNode) {
    NodeId NameNode = child(ClassNode, 0);
    if (NameNode == InvalidNode)
      return;
    CurrentClass = resolveClassName(valueOf(NameNode));
    for (NodeId Member : T.children(ClassNode)) {
      if (isKind(Member, "MethodDeclaration") ||
          isKind(Member, "ConstructorDeclaration"))
        checkMethod(Member);
      if (isKind(Member, "FieldDeclaration")) {
        // Type field initializers.
        for (NodeId Decl : T.children(Member))
          if (isKind(Decl, "VariableDeclarator") &&
              T.children(Decl).size() > 1)
            typeOf(child(Decl, 1));
      }
    }
  }

  void checkMethod(NodeId MethodNode) {
    size_t Mark = Env.size();
    for (NodeId Kid : T.children(MethodNode)) {
      if (isKind(Kid, "Parameters")) {
        for (NodeId Param : T.children(Kid))
          bindParameter(Param);
      }
      if (isKind(Kid, "BlockStmt"))
        checkStatement(Kid);
    }
    Env.resize(Mark);
  }

  void bindParameter(NodeId Param) {
    if (!isKind(Param, "Parameter"))
      return;
    NodeId TypeNode = child(Param, 0);
    NodeId NameNode = child(Param, 1);
    if (TypeNode == InvalidNode || NameNode == InvalidNode)
      return;
    Env.emplace_back(valueOf(NameNode), typeNodeToString(TypeNode));
  }

  void checkStatement(NodeId Stmt) {
    std::string_view K = kindOf(Stmt);
    if (K == "BlockStmt") {
      size_t Mark = Env.size();
      for (NodeId Kid : T.children(Stmt))
        checkStatement(Kid);
      Env.resize(Mark);
      return;
    }
    if (K == "ExpressionStmt") {
      for (NodeId Kid : T.children(Stmt)) {
        if (isKind(Kid, "VariableDeclarationExpr"))
          bindLocals(Kid);
        else
          typeOf(Kid);
      }
      return;
    }
    if (K == "IfStmt" || K == "WhileStmt" || K == "DoStmt") {
      for (NodeId Kid : T.children(Stmt)) {
        if (isStatementKind(Kid))
          checkStatement(Kid);
        else
          typeOf(Kid);
      }
      return;
    }
    if (K == "ForStmt") {
      size_t Mark = Env.size();
      for (NodeId Kid : T.children(Stmt)) {
        if (isKind(Kid, "VariableDeclarationExpr"))
          bindLocals(Kid);
        else if (isStatementKind(Kid))
          checkStatement(Kid);
        else
          typeOf(Kid);
      }
      Env.resize(Mark);
      return;
    }
    if (K == "ForEachStmt") {
      size_t Mark = Env.size();
      for (NodeId Kid : T.children(Stmt)) {
        if (isKind(Kid, "VariableDeclarationExpr"))
          bindLocals(Kid);
        else if (isStatementKind(Kid))
          checkStatement(Kid);
        else
          typeOf(Kid);
      }
      Env.resize(Mark);
      return;
    }
    if (K == "ReturnStmt" || K == "ThrowStmt") {
      for (NodeId Kid : T.children(Stmt))
        typeOf(Kid);
      return;
    }
    if (K == "TryStmt") {
      for (NodeId Kid : T.children(Stmt))
        checkStatement(Kid);
      return;
    }
    if (K == "CatchClause") {
      size_t Mark = Env.size();
      for (NodeId Kid : T.children(Stmt)) {
        if (isKind(Kid, "Parameter"))
          bindParameter(Kid);
        else
          checkStatement(Kid);
      }
      Env.resize(Mark);
      return;
    }
    if (K == "FinallyBlock") {
      for (NodeId Kid : T.children(Stmt))
        checkStatement(Kid);
      return;
    }
    // Leaf statements (BreakStmt, ContinueStmt) and anything else: type
    // any expression children defensively.
    for (NodeId Kid : T.children(Stmt))
      if (!isStatementKind(Kid))
        typeOf(Kid);
  }

  bool isStatementKind(NodeId Id) const {
    std::string_view K = kindOf(Id);
    return K == "BlockStmt" || K == "ExpressionStmt" || K == "IfStmt" ||
           K == "WhileStmt" || K == "DoStmt" || K == "ForStmt" ||
           K == "ForEachStmt" || K == "ReturnStmt" || K == "BreakStmt" ||
           K == "ContinueStmt" || K == "ThrowStmt" || K == "TryStmt" ||
           K == "CatchClause" || K == "FinallyBlock";
  }

  void bindLocals(NodeId DeclExpr) {
    NodeId TypeNode = child(DeclExpr, 0);
    std::string DeclType = typeNodeToString(TypeNode);
    for (NodeId Decl : T.children(DeclExpr)) {
      if (!isKind(Decl, "VariableDeclarator"))
        continue;
      NodeId NameNode = child(Decl, 0);
      if (NameNode == InvalidNode)
        continue;
      Env.emplace_back(valueOf(NameNode), DeclType);
      if (T.children(Decl).size() > 1)
        typeOf(child(Decl, 1));
    }
  }

  /// Records \p Type for \p Id when it is a real value type.
  void annotate(NodeId Id, const std::string &Type) {
    if (Type.empty() || Type == "void" || Type == "null")
      return;
    // Class references (static receiver position) are not expressions.
    if (Type.rfind("class:", 0) == 0)
      return;
    T.setType(Id, SI.intern(Type));
    ++NumAnnotated;
  }

  /// Computes (and annotates) the type of expression \p Id. Returns "" if
  /// unknown; returns "class:Qualified" pseudo-types for static receivers.
  std::string typeOf(NodeId Id) {
    if (Id == InvalidNode)
      return "";
    std::string_view K = kindOf(Id);

    if (K == "IntegerLiteralExpr") {
      std::string_view V = valueOf(Id);
      return !V.empty() && (V.back() == 'L' || V.back() == 'l') ? "long"
                                                                : "int";
    }
    if (K == "DoubleLiteralExpr")
      return "double";
    if (K == "StringLiteralExpr")
      return "java.lang.String";
    if (K == "CharLiteralExpr")
      return "char";
    if (K == "BooleanLiteralExpr")
      return "boolean";
    if (K == "NullLiteralExpr")
      return "null";
    if (K == "ThisExpr")
      return CurrentClass;

    if (K == "NameExpr") {
      NodeId NameNode = child(Id, 0);
      if (NameNode == InvalidNode)
        return "";
      std::string Name(valueOf(NameNode));
      std::string FromEnv = lookupEnv(Name);
      if (!FromEnv.empty()) {
        annotate(Id, FromEnv);
        return FromEnv;
      }
      if (auto Field = CP.fieldType(CurrentClass, Name)) {
        annotate(Id, *Field);
        return *Field;
      }
      // A class reference (e.g. `Math` in `Math.abs(x)`).
      std::string Qualified = resolveClassName(Name);
      if (CP.find(Qualified))
        return "class:" + Qualified;
      return "";
    }

    if (K == "FieldAccessExpr") {
      NodeId Scope = child(Id, 0);
      NodeId NameNode = child(Id, 1);
      if (NameNode == InvalidNode)
        return "";
      std::string ScopeType = typeOf(Scope);
      if (ScopeType.empty())
        return "";
      if (ScopeType.rfind("class:", 0) == 0)
        ScopeType = ScopeType.substr(6);
      // Arrays expose `length`.
      if (ScopeType.size() > 2 &&
          ScopeType.compare(ScopeType.size() - 2, 2, "[]") == 0 &&
          valueOf(NameNode) == "length") {
        annotate(Id, "int");
        return "int";
      }
      if (auto Field = CP.fieldType(ScopeType, std::string(valueOf(NameNode)))) {
        annotate(Id, *Field);
        return *Field;
      }
      return "";
    }

    if (K == "MethodCallExpr") {
      auto Kids = T.children(Id);
      std::string Receiver;
      NodeId NameNode = InvalidNode;
      NodeId Args = InvalidNode;
      if (!Kids.empty() && isKind(Kids[0], "SimpleName")) {
        Receiver = CurrentClass; // Bare call on the current class.
        NameNode = Kids[0];
        if (Kids.size() > 1)
          Args = Kids[1];
      } else if (Kids.size() >= 2) {
        Receiver = typeOf(Kids[0]);
        NameNode = Kids[1];
        if (Kids.size() > 2)
          Args = Kids[2];
      }
      if (Args != InvalidNode)
        for (NodeId Arg : T.children(Args))
          typeOf(Arg);
      if (NameNode == InvalidNode || Receiver.empty())
        return "";
      if (Receiver.rfind("class:", 0) == 0)
        Receiver = Receiver.substr(6);
      if (auto Ret = CP.methodReturn(Receiver, std::string(valueOf(NameNode)))) {
        annotate(Id, *Ret);
        return *Ret;
      }
      return "";
    }

    if (K == "ObjectCreationExpr") {
      NodeId TypeNode = child(Id, 0);
      std::string Type = typeNodeToString(TypeNode);
      auto Kids = T.children(Id);
      for (size_t I = 1; I < Kids.size(); ++I)
        if (isKind(Kids[I], "Arguments"))
          for (NodeId Arg : T.children(Kids[I]))
            typeOf(Arg);
      annotate(Id, Type);
      return Type;
    }

    if (K == "ArrayCreationExpr") {
      NodeId TypeNode = child(Id, 0);
      std::string Type = typeNodeToString(TypeNode) + "[]";
      auto Kids = T.children(Id);
      for (size_t I = 1; I < Kids.size(); ++I)
        typeOf(Kids[I]);
      annotate(Id, Type);
      return Type;
    }

    if (K == "ArrayAccessExpr") {
      NodeId Arr = child(Id, 0);
      NodeId Index = child(Id, 1);
      std::string ArrType = typeOf(Arr);
      typeOf(Index);
      if (ArrType.size() > 2 &&
          ArrType.compare(ArrType.size() - 2, 2, "[]") == 0) {
        std::string Elem = ArrType.substr(0, ArrType.size() - 2);
        annotate(Id, Elem);
        return Elem;
      }
      return "";
    }

    if (K == "CastExpr") {
      NodeId TypeNode = child(Id, 0);
      NodeId Operand = child(Id, 1);
      typeOf(Operand);
      std::string Type = typeNodeToString(TypeNode);
      annotate(Id, Type);
      return Type;
    }

    if (K == "ConditionalExpr") {
      auto Kids = T.children(Id);
      if (Kids.size() != 3)
        return "";
      typeOf(Kids[0]);
      std::string Then = typeOf(Kids[1]);
      std::string Else = typeOf(Kids[2]);
      std::string Result = !Then.empty() && Then != "null" ? Then : Else;
      annotate(Id, Result);
      return Result;
    }

    if (K == "InstanceOfExpr") {
      for (NodeId Kid : T.children(Id))
        typeOf(Kid);
      annotate(Id, "boolean");
      return "boolean";
    }

    if (K.rfind("BinaryExpr", 0) == 0) {
      std::string Op(K.substr(10));
      auto Kids = T.children(Id);
      std::string L = Kids.size() > 0 ? typeOf(Kids[0]) : "";
      std::string R = Kids.size() > 1 ? typeOf(Kids[1]) : "";
      std::string Result;
      if (Op == "==" || Op == "!=" || Op == "<" || Op == ">" || Op == "<=" ||
          Op == ">=" || Op == "&&" || Op == "||") {
        Result = "boolean";
      } else if (Op == "+" &&
                 (L == "java.lang.String" || R == "java.lang.String")) {
        Result = "java.lang.String";
      } else if (!L.empty() && !R.empty()) {
        Result = promote(L, R);
      }
      annotate(Id, Result);
      return Result;
    }

    if (K.rfind("Assign", 0) == 0) {
      auto Kids = T.children(Id);
      std::string L = Kids.size() > 0 ? typeOf(Kids[0]) : "";
      if (Kids.size() > 1)
        typeOf(Kids[1]);
      return L; // Assignments themselves are not prediction targets.
    }

    if (K.rfind("UnaryExpr", 0) == 0) {
      std::string Op(K.substr(9));
      NodeId Operand = child(Id, 0);
      std::string OperandType = typeOf(Operand);
      if (Op == "!")
        return "boolean";
      return OperandType;
    }

    if (K == "VariableDeclarationExpr") {
      bindLocals(Id);
      return "";
    }

    // Unknown kind: recurse defensively so nested expressions get typed.
    for (NodeId Kid : T.children(Id))
      typeOf(Kid);
    return "";
  }

  static std::string promote(const std::string &L, const std::string &R) {
    auto Rank = [](const std::string &Ty) {
      if (Ty == "double" || Ty == "float")
        return 3;
      if (Ty == "long")
        return 2;
      if (Ty == "int" || Ty == "char" || Ty == "short" || Ty == "byte")
        return 1;
      return 0;
    };
    int RL = Rank(L), RR = Rank(R);
    if (RL == 0 || RR == 0)
      return "";
    int Max = std::max(RL, RR);
    if (Max == 3)
      return "double";
    if (Max == 2)
      return "long";
    return "int";
  }
};

} // namespace

size_t java::annotateTypes(Tree &Tree, const ClassPath &CP) {
  Checker C(Tree, CP);
  return C.run();
}
