//===- TypeChecker.h - MiniJava static type annotation ----------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks a parsed MiniJava tree and annotates expression nodes with their
/// fully-qualified static types (via ast::Tree::setType). This plays the
/// role of the paper's global type-inference oracle for the full-type
/// prediction task (§5.3.3): "the evaluated types were only those that
/// could be solved by a global type inference engine", i.e. the nodes this
/// checker manages to type.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_JAVA_TYPECHECKER_H
#define PIGEON_LANG_JAVA_TYPECHECKER_H

#include "ast/Ast.h"
#include "lang/java/ClassPath.h"

namespace pigeon {
namespace java {

/// Annotates the expression nodes of \p Tree with fully-qualified types.
/// Classes declared in the compilation unit itself are added to a local
/// copy of \p CP, so intra-file references resolve. \returns the number of
/// nodes annotated.
size_t annotateTypes(ast::Tree &Tree, const ClassPath &CP);

} // namespace java
} // namespace pigeon

#endif // PIGEON_LANG_JAVA_TYPECHECKER_H
