//===- JavaParser.h - MiniJava frontend --------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a rich Java subset (MiniJava) into the generic AST with
/// JavaParser-flavoured node kinds: CompilationUnit, ClassOrInterface-
/// Declaration, MethodDeclaration, Parameter, VariableDeclarationExpr,
/// NameExpr, MethodCallExpr, FieldAccessExpr, BinaryExpr+, ...
///
/// Supported: packages, imports, classes with fields/methods/constructors,
/// primitive & class types with generics-lite and arrays, the usual
/// statements (if/while/for/foreach/try/return/...) and expressions
/// (assignments, conditional, binary/unary, calls, field & array access,
/// object/array creation, casts, literals, this).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_LANG_JAVA_JAVAPARSER_H
#define PIGEON_LANG_JAVA_JAVAPARSER_H

#include "lang/common/Frontend.h"
#include "support/StringInterner.h"

#include <string_view>

namespace pigeon {
namespace java {

/// Parses MiniJava \p Source into a generic AST.
lang::ParseResult parse(std::string_view Source, StringInterner &Interner);

} // namespace java
} // namespace pigeon

#endif // PIGEON_LANG_JAVA_JAVAPARSER_H
