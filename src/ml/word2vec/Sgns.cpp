//===- Sgns.cpp - Skip-gram with negative sampling ---------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/word2vec/Sgns.h"

#include "support/Rng.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace pigeon;
using namespace pigeon::w2v;

double Sgns::dot(const float *A, const float *B) const {
  double Sum = 0;
  for (int I = 0; I < Config.Dim; ++I)
    Sum += static_cast<double>(A[I]) * static_cast<double>(B[I]);
  return Sum;
}

static double sigmoid(double X) {
  if (X > 12)
    return 1.0;
  if (X < -12)
    return 0.0;
  return 1.0 / (1.0 + std::exp(-X));
}

void Sgns::train(const std::vector<Pair> &Pairs, uint32_t Words,
                 uint32_t Contexts) {
  telemetry::TraceScope TrainPhase("sgns.train");
  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.counter("sgns.train.calls").inc();
  Reg.gauge("sgns.words").set(Words);
  Reg.gauge("sgns.contexts").set(Contexts);

  NumWords = Words;
  NumContexts = Contexts;
  size_t Dim = static_cast<size_t>(Config.Dim);
  WordVecs.assign(static_cast<size_t>(Words) * Dim, 0.0f);
  CtxVecs.assign(static_cast<size_t>(Contexts) * Dim, 0.0f);
  if (Pairs.empty() || Words == 0 || Contexts == 0)
    return;

  Rng Init = Rng::forStream(Config.Seed, "sgns-init");
  // Standard word2vec init: words uniform in [-0.5/dim, 0.5/dim],
  // contexts at zero.
  for (float &V : WordVecs)
    V = static_cast<float>((Init.nextDouble() - 0.5) /
                           static_cast<double>(Dim));

  // Noise distribution: unigram(word)^0.75 alias-free sampling via a
  // cumulative table (vocabularies here are small).
  std::vector<double> Cumulative(Words, 0.0);
  {
    std::vector<double> Freq(Words, 0.0);
    for (const Pair &P : Pairs) {
      assert(P.Word < Words && P.Context < Contexts && "id out of range");
      Freq[P.Word] += 1.0;
    }
    double Total = 0;
    for (uint32_t W = 0; W < Words; ++W) {
      Freq[W] = std::pow(Freq[W], Config.NoiseExponent);
      Total += Freq[W];
    }
    double Acc = 0;
    for (uint32_t W = 0; W < Words; ++W) {
      Acc += Freq[W] / Total;
      Cumulative[W] = Acc;
    }
    Cumulative.back() = 1.0;
  }
  auto SampleNoise = [&](Rng &R) -> uint32_t {
    double X = R.nextDouble();
    auto It = std::lower_bound(Cumulative.begin(), Cumulative.end(), X);
    return static_cast<uint32_t>(It - Cumulative.begin());
  };

  Rng Order = Rng::forStream(Config.Seed, "sgns-order");
  Rng Noise = Rng::forStream(Config.Seed, "sgns-noise");
  std::vector<uint32_t> Indices(Pairs.size());
  for (size_t I = 0; I < Pairs.size(); ++I)
    Indices[I] = static_cast<uint32_t>(I);

  std::vector<double> Grad(Dim);
  double Lr = Config.LearningRate;
  const double LrMin = Config.LearningRate * 1e-3;
  const double TotalSteps =
      static_cast<double>(Pairs.size()) * Config.Epochs;
  double Step = 0;

  telemetry::Counter &EpochsCounter = Reg.counter("sgns.epochs");
  telemetry::Counter &PairsCounter = Reg.counter("sgns.pairs.trained");
  telemetry::Counter &Collisions = Reg.counter("sgns.negative.collisions");
  telemetry::Histogram &EpochSeconds =
      Reg.histogram("sgns.epoch.seconds", telemetry::timeBounds());

  for (int Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    telemetry::TraceScope EpochScope("epoch");
    Order.shuffle(Indices);
    for (uint32_t Idx : Indices) {
      const Pair &P = Pairs[Idx];
      float *W = &WordVecs[static_cast<size_t>(P.Word) * Dim];
      std::fill(Grad.begin(), Grad.end(), 0.0);
      // One positive update (w, c), then NegativeSamples corrupted pairs
      // (w', c) with w' drawn from the unigram^0.75 word noise
      // distribution. Corrupting the word side makes the objective
      // discriminate words given contexts — exactly the direction Eq. 4
      // predicts in.
      float *C = &CtxVecs[static_cast<size_t>(P.Context) * Dim];
      // Positive update on (W, C).
      {
        double G = (1.0 - sigmoid(dot(W, C))) * Lr;
        for (size_t I = 0; I < Dim; ++I) {
          Grad[I] += G * C[I];
          C[I] += static_cast<float>(G * W[I]);
        }
      }
      // Negative updates: sampled words against this context. A noise
      // draw that hits the positive word would push C in exactly the
      // direction the positive update pulled it (cancelling signal), so
      // colliding draws are redrawn — bounded, because a degenerate
      // near-singleton noise distribution may have nothing else to offer.
      for (int N = 0; N < Config.NegativeSamples; ++N) {
        uint32_t NegWord = SampleNoise(Noise);
        for (int Retry = 0; NegWord == P.Word && Retry < 8; ++Retry) {
          Collisions.inc();
          NegWord = SampleNoise(Noise);
        }
        if (NegWord == P.Word)
          continue;
        float *NW = &WordVecs[static_cast<size_t>(NegWord) * Dim];
        double G = -sigmoid(dot(NW, C)) * Lr;
        for (size_t I = 0; I < Dim; ++I) {
          double CDelta = G * NW[I];
          NW[I] += static_cast<float>(G * C[I]);
          C[I] += static_cast<float>(CDelta);
        }
      }
      for (size_t I = 0; I < Dim; ++I)
        W[I] += static_cast<float>(Grad[I]);
      // Linear learning-rate decay.
      Step += 1;
      Lr = std::max(LrMin,
                    Config.LearningRate * (1.0 - Step / TotalSteps));
    }
    EpochsCounter.inc();
    PairsCounter.add(Indices.size());
    EpochSeconds.observe(EpochScope.seconds());
  }
  double Elapsed = TrainPhase.seconds();
  if (Elapsed > 0)
    Reg.gauge("sgns.pairs_per_sec")
        .set(static_cast<double>(Pairs.size()) * Config.Epochs / Elapsed);
}

uint32_t Sgns::predict(std::span<const uint32_t> Contexts) const {
  auto Top = topK(Contexts, 1);
  return Top.empty() ? UINT32_MAX : Top.front().first;
}

std::vector<std::pair<uint32_t, double>>
Sgns::topK(std::span<const uint32_t> Contexts, int K) const {
  std::vector<std::pair<uint32_t, double>> Scored;
  if (NumWords == 0 || Contexts.empty())
    return Scored;
  size_t Dim = static_cast<size_t>(Config.Dim);
  // Sum the context vectors once, then a single matrix-vector product.
  std::vector<double> CtxSum(Dim, 0.0);
  for (uint32_t C : Contexts) {
    assert(C < NumContexts && "context id out of range");
    const float *V = &CtxVecs[static_cast<size_t>(C) * Dim];
    for (size_t I = 0; I < Dim; ++I)
      CtxSum[I] += V[I];
  }
  Scored.reserve(NumWords);
  for (uint32_t W = 0; W < NumWords; ++W) {
    const float *V = &WordVecs[static_cast<size_t>(W) * Dim];
    double S = 0;
    for (size_t I = 0; I < Dim; ++I)
      S += V[I] * CtxSum[I];
    Scored.emplace_back(W, S);
  }
  std::sort(Scored.begin(), Scored.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (Scored.size() > static_cast<size_t>(K))
    Scored.resize(static_cast<size_t>(K));
  return Scored;
}

std::vector<std::pair<uint32_t, double>>
Sgns::explain(uint32_t Word, std::span<const uint32_t> Contexts,
              int K) const {
  std::vector<std::pair<uint32_t, double>> Out;
  if (Word >= NumWords || Contexts.empty())
    return Out;
  size_t Dim = static_cast<size_t>(Config.Dim);
  const float *WV = &WordVecs[static_cast<size_t>(Word) * Dim];
  // A context appearing m times contributes m × (w · c); fold repeats so
  // the report has one line per distinct context.
  std::map<uint32_t, double> ByContext;
  for (uint32_t C : Contexts) {
    assert(C < NumContexts && "context id out of range");
    ByContext[C] += dot(WV, &CtxVecs[static_cast<size_t>(C) * Dim]);
  }
  Out.assign(ByContext.begin(), ByContext.end());
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    double MagA = std::abs(A.second), MagB = std::abs(B.second);
    if (MagA != MagB)
      return MagA > MagB;
    return A.first < B.first;
  });
  if (K > 0 && Out.size() > static_cast<size_t>(K))
    Out.resize(static_cast<size_t>(K));
  return Out;
}

std::vector<std::pair<uint32_t, double>> Sgns::similarWords(uint32_t Word,
                                                            int K) const {
  std::vector<std::pair<uint32_t, double>> Scored;
  if (Word >= NumWords)
    return Scored;
  size_t Dim = static_cast<size_t>(Config.Dim);
  const float *WV = &WordVecs[static_cast<size_t>(Word) * Dim];
  double WNorm = std::sqrt(dot(WV, WV));
  if (WNorm == 0)
    return Scored;
  for (uint32_t W = 0; W < NumWords; ++W) {
    if (W == Word)
      continue;
    const float *V = &WordVecs[static_cast<size_t>(W) * Dim];
    double Norm = std::sqrt(dot(V, V));
    if (Norm == 0)
      continue;
    Scored.emplace_back(W, dot(WV, V) / (WNorm * Norm));
  }
  std::sort(Scored.begin(), Scored.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (Scored.size() > static_cast<size_t>(K))
    Scored.resize(static_cast<size_t>(K));
  return Scored;
}

std::span<const float> Sgns::wordVector(uint32_t Word) const {
  assert(Word < NumWords && "word id out of range");
  size_t Dim = static_cast<size_t>(Config.Dim);
  return {&WordVecs[static_cast<size_t>(Word) * Dim], Dim};
}
