//===- Sgns.h - Skip-gram with negative sampling -----------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Skip-gram with negative sampling (SGNS), the word2vec variant of
/// Mikolov et al. extended to arbitrary contexts per Levy & Goldberg [26]
/// (§3.2). Words are the names to predict; contexts are abstract
/// path-contexts (or, for the baselines, surrounding tokens).
///
/// Prediction follows the paper's Eq. 4: unlike lexical substitution, the
/// unknown name is found purely from context —
///     prediction = argmax_w Σ_{c∈C} (w · c).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_ML_WORD2VEC_SGNS_H
#define PIGEON_ML_WORD2VEC_SGNS_H

#include <cstdint>
#include <span>
#include <vector>

namespace pigeon {
namespace w2v {

/// Training hyper-parameters.
struct SgnsConfig {
  int Dim = 48;            ///< Embedding dimensionality.
  int NegativeSamples = 5; ///< Negative samples per positive pair.
  int Epochs = 5;
  double LearningRate = 0.05;
  /// Noise distribution exponent (unigram^0.75, Mikolov et al.).
  double NoiseExponent = 0.75;
  uint64_t Seed = 0x5eed;
};

/// One (word, context) training pair, as dense ids. Callers own the
/// mapping from ids to names / path-contexts.
struct Pair {
  uint32_t Word;
  uint32_t Context;
};

/// The SGNS model: word and context embedding matrices.
class Sgns {
public:
  explicit Sgns(SgnsConfig Config = SgnsConfig()) : Config(Config) {}

  /// Trains on \p Pairs with vocabularies of the given sizes. Pair ids
  /// must be < the respective vocabulary size.
  void train(const std::vector<Pair> &Pairs, uint32_t NumWords,
             uint32_t NumContexts);

  /// Eq. 4: the word maximizing the summed dot product with the given
  /// context ids. \returns the word id, or UINT32_MAX if untrained or
  /// \p Contexts is empty.
  uint32_t predict(std::span<const uint32_t> Contexts) const;

  /// Top-\p K words by Eq. 4 score.
  std::vector<std::pair<uint32_t, double>>
  topK(std::span<const uint32_t> Contexts, int K) const;

  /// Provenance for Eq. 4: per unique context id in \p Contexts, its
  /// summed dot-product contribution (w · c × multiplicity) to the score
  /// of \p Word. The \p K largest by magnitude, strongest first (K <= 0
  /// keeps all); the contributions sum to the word's topK() score
  /// exactly, since Eq. 4 is itself a sum over contexts.
  std::vector<std::pair<uint32_t, double>>
  explain(uint32_t Word, std::span<const uint32_t> Contexts, int K) const;

  /// Top-\p K words most cosine-similar to \p Word (Table 4b's semantic
  /// similarity neighbourhoods). Excludes \p Word itself.
  std::vector<std::pair<uint32_t, double>> similarWords(uint32_t Word,
                                                        int K) const;

  uint32_t numWords() const { return NumWords; }
  uint32_t numContexts() const { return NumContexts; }
  int dim() const { return Config.Dim; }

  /// Raw word vector (for tests).
  std::span<const float> wordVector(uint32_t Word) const;

private:
  SgnsConfig Config;
  uint32_t NumWords = 0;
  uint32_t NumContexts = 0;
  std::vector<float> WordVecs;
  std::vector<float> CtxVecs;

  double dot(const float *A, const float *B) const;
};

} // namespace w2v
} // namespace pigeon

#endif // PIGEON_ML_WORD2VEC_SGNS_H
