//===- Vocab.h - Label vocabularies ------------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counts label occurrences over a training corpus and exposes the label
/// set and frequency ranking. Both learners draw their label spaces and
/// global fallback candidates from here. The vocabulary is closed: test
/// labels outside it are unknowable ("UNK") and always scored wrong,
/// matching the paper's treatment of out-of-vocabulary names (§5.3).
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_ML_COMMON_VOCAB_H
#define PIGEON_ML_COMMON_VOCAB_H

#include "support/StringInterner.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace pigeon {
namespace ml {

/// Frequency-counted closed label vocabulary.
class LabelVocab {
public:
  /// Counts one training occurrence of \p Label.
  void add(Symbol Label) { ++Counts[Label]; }

  /// True if \p Label was seen in training.
  bool contains(Symbol Label) const { return Counts.count(Label) != 0; }

  /// Number of training occurrences of \p Label.
  uint64_t count(Symbol Label) const {
    auto It = Counts.find(Label);
    return It == Counts.end() ? 0 : It->second;
  }

  size_t size() const { return Counts.size(); }

  /// Labels ordered by descending frequency (ties by symbol index, for
  /// determinism). \p Limit <= 0 returns all.
  std::vector<Symbol> topLabels(int Limit = -1) const {
    std::vector<std::pair<Symbol, uint64_t>> Entries(Counts.begin(),
                                                     Counts.end());
    std::sort(Entries.begin(), Entries.end(),
              [](const auto &A, const auto &B) {
                if (A.second != B.second)
                  return A.second > B.second;
                return A.first.index() < B.first.index();
              });
    std::vector<Symbol> Out;
    size_t N = Limit < 0 ? Entries.size()
                         : std::min(Entries.size(),
                                    static_cast<size_t>(Limit));
    Out.reserve(N);
    for (size_t I = 0; I < N; ++I)
      Out.push_back(Entries[I].first);
    return Out;
  }

  /// Total number of counted occurrences.
  uint64_t totalCount() const {
    uint64_t Sum = 0;
    for (const auto &[Label, N] : Counts)
      Sum += N;
    return Sum;
  }

private:
  std::unordered_map<Symbol, uint64_t> Counts;
};

} // namespace ml
} // namespace pigeon

#endif // PIGEON_ML_COMMON_VOCAB_H
