//===- Metrics.h - Evaluation metrics ---------------------------*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation metrics (§5.2): exact-match accuracy that is
/// case-insensitive and ignores non-alphabetical characters (totalCount ==
/// total_count), and sub-token precision/recall/F1 for the Java
/// method-name comparison against Allamanis et al. Unknown test labels
/// always count as incorrect; models never predict UNK.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_ML_COMMON_METRICS_H
#define PIGEON_ML_COMMON_METRICS_H

#include "support/SubToken.h"

#include <cstddef>
#include <string_view>

namespace pigeon {
namespace ml {

/// Accumulates exact-match accuracy over predictions.
class AccuracyMeter {
public:
  /// Records one prediction. Empty \p Predicted counts as wrong.
  void add(std::string_view Predicted, std::string_view Actual) {
    ++Total;
    if (!Predicted.empty() && namesMatch(Predicted, Actual))
      ++Correct;
  }

  /// Records an unconditionally wrong prediction (e.g. UNK test label).
  void addWrong() { ++Total; }

  size_t total() const { return Total; }
  size_t correct() const { return Correct; }

  /// Fraction correct in [0,1]; 0 if nothing was recorded.
  double accuracy() const {
    return Total == 0 ? 0.0
                      : static_cast<double>(Correct) /
                            static_cast<double>(Total);
  }

private:
  size_t Total = 0;
  size_t Correct = 0;
};

/// Accumulates micro-averaged sub-token precision/recall/F1.
class SubTokenMeter {
public:
  void add(std::string_view Predicted, std::string_view Actual) {
    auto P = splitSubTokens(Predicted);
    auto A = splitSubTokens(Actual);
    SubTokenScore S = scoreSubTokens(Predicted, Actual);
    // Recover the hit count from precision (multiset intersection size).
    size_t Hits = static_cast<size_t>(S.Precision *
                                          static_cast<double>(P.size()) +
                                      0.5);
    PredictedTokens += P.size();
    ActualTokens += A.size();
    HitTokens += Hits;
  }

  double precision() const {
    return PredictedTokens == 0 ? 0.0
                                : static_cast<double>(HitTokens) /
                                      static_cast<double>(PredictedTokens);
  }
  double recall() const {
    return ActualTokens == 0 ? 0.0
                             : static_cast<double>(HitTokens) /
                                   static_cast<double>(ActualTokens);
  }
  double f1() const {
    double P = precision(), R = recall();
    return P + R == 0 ? 0.0 : 2 * P * R / (P + R);
  }

private:
  size_t PredictedTokens = 0;
  size_t ActualTokens = 0;
  size_t HitTokens = 0;
};

} // namespace ml
} // namespace pigeon

#endif // PIGEON_ML_COMMON_METRICS_H
