//===- Crf.cpp - Conditional random field over program elements ------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/crf/Crf.h"

#include "support/Hashing.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <tuple>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::crf;
using namespace pigeon::paths;

//===----------------------------------------------------------------------===//
// Feature hashing
//===----------------------------------------------------------------------===//

uint64_t crf::pairKey(PathId Path, Symbol LabelA, Symbol LabelB) {
  uint64_t H = hashCombine(0x5041u, Path); // "PA"
  H = hashCombine(H, LabelA.index());
  H = hashCombine(H, LabelB.index());
  return hashFinalize(H);
}

uint64_t crf::unaryKey(PathId Path, Symbol Label) {
  uint64_t H = hashCombine(0x554eu, Path); // "UN"
  H = hashCombine(H, Label.index());
  return hashFinalize(H);
}

uint64_t crf::contextKey(PathId Path, bool UnknownIsA, Symbol Other) {
  uint64_t H = hashCombine(0x4358u, Path); // "CX"
  H = hashCombine(H, UnknownIsA ? 1 : 2);
  H = hashCombine(H, Other.index());
  return hashFinalize(H);
}

uint64_t crf::biasKey(Symbol Label) {
  return hashFinalize(hashCombine(0x4249u, Label.index())); // "BI"
}

//===----------------------------------------------------------------------===//
// Graph construction
//===----------------------------------------------------------------------===//

std::vector<std::vector<uint32_t>> CrfGraph::adjacency() const {
  std::vector<std::vector<uint32_t>> Adj(Nodes.size());
  for (uint32_t F = 0; F < Factors.size(); ++F) {
    Adj[Factors[F].A].push_back(F);
    if (!Factors[F].Unary && Factors[F].B != Factors[F].A)
      Adj[Factors[F].B].push_back(F);
  }
  return Adj;
}

namespace {

/// Shared node-mapping logic for graph building.
class GraphAssembler {
public:
  GraphAssembler(const Tree &T, CrfGraph &G) : T(T), G(G) {}

  /// Node for a terminal: element node if it has one, else a known node
  /// merged by value.
  uint32_t terminalNode(NodeId Leaf, const ElementSelector &Selector) {
    const Node &N = T.node(Leaf);
    if (N.Element != InvalidElement)
      return elementNode(N.Element, Selector);
    return knownNode(N.Value);
  }

  uint32_t elementNode(ElementId E, const ElementSelector &Selector) {
    auto It = ElementNodes.find(E);
    if (It != ElementNodes.end())
      return It->second;
    const ElementInfo &Info = T.element(E);
    uint32_t Id = static_cast<uint32_t>(G.Nodes.size());
    bool Unknown = Selector(Info);
    G.Nodes.push_back({Info.Name, /*Known=*/!Unknown, E});
    if (Unknown)
      G.Unknowns.push_back(Id);
    ElementNodes.emplace(E, Id);
    return Id;
  }

  uint32_t knownNode(Symbol Value) {
    auto It = ValueNodes.find(Value);
    if (It != ValueNodes.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(G.Nodes.size());
    G.Nodes.push_back({Value, /*Known=*/true, InvalidElement});
    ValueNodes.emplace(Value, Id);
    return Id;
  }

private:
  const Tree &T;
  CrfGraph &G;
  std::unordered_map<ElementId, uint32_t> ElementNodes;
  std::unordered_map<Symbol, uint32_t> ValueNodes;
};

} // namespace

CrfGraph crf::buildGraph(const Tree &Tree,
                         const std::vector<PathContext> &Contexts,
                         const ElementSelector &Selector) {
  CrfGraph G;
  GraphAssembler Asm(Tree, G);
  for (const PathContext &Ctx : Contexts) {
    uint32_t A = Asm.terminalNode(Ctx.Start, Selector);
    uint32_t B;
    if (Ctx.Semi) {
      // Semi-path: the ancestor end is a known pseudo-node labelled by
      // its kind.
      B = Asm.knownNode(Tree.node(Ctx.End).Kind);
    } else {
      B = Asm.terminalNode(Ctx.End, Selector);
    }
    bool AKnown = G.Nodes[A].Known;
    bool BKnown = G.Nodes[B].Known;
    if (AKnown && BKnown)
      continue; // Constant factor: no influence on any prediction.
    if (A == B) {
      // Two occurrences of the same element: the paper's unary factor.
      G.Factors.push_back({A, A, Ctx.Path, /*Unary=*/true});
      continue;
    }
    G.Factors.push_back({A, B, Ctx.Path, /*Unary=*/false});
  }
  return G;
}

CrfGraph crf::buildTypeGraph(const Tree &Tree, NodeId Target,
                             const std::vector<PathContext> &Contexts) {
  CrfGraph G;
  GraphAssembler Asm(Tree, G);
  Symbol Type = Tree.typeOf(Target);
  assert(Type.isValid() && "type target must be annotated");
  // The single unknown node: the expression whose type we predict.
  uint32_t TargetNode = static_cast<uint32_t>(G.Nodes.size());
  G.Nodes.push_back({Type, /*Known=*/false, InvalidElement});
  G.Unknowns.push_back(TargetNode);
  auto NeverUnknown = [](const ElementInfo &) { return false; };
  for (const PathContext &Ctx : Contexts) {
    if (Ctx.End != Target)
      continue;
    uint32_t A = Asm.terminalNode(Ctx.Start, NeverUnknown);
    G.Factors.push_back({A, TargetNode, Ctx.Path, /*Unary=*/false});
  }
  return G;
}

void crf::addTriFactors(CrfGraph &Graph, const Tree &Tree,
                        const std::vector<paths::TriContext> &Contexts,
                        const ElementSelector &Selector,
                        StringInterner &Interner) {
  // Reuse the graph's existing node set: rebuild the terminal→node maps.
  std::unordered_map<ElementId, uint32_t> ElementNodes;
  std::unordered_map<Symbol, uint32_t> ValueNodes;
  for (uint32_t N = 0; N < Graph.Nodes.size(); ++N) {
    const GraphNode &Node = Graph.Nodes[N];
    if (Node.Element != InvalidElement)
      ElementNodes.emplace(Node.Element, N);
    else
      ValueNodes.emplace(Node.Gold, N);
  }
  auto KnownNode = [&](Symbol Value) {
    auto It = ValueNodes.find(Value);
    if (It != ValueNodes.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Graph.Nodes.size());
    Graph.Nodes.push_back({Value, /*Known=*/true, InvalidElement});
    ValueNodes.emplace(Value, Id);
    return Id;
  };
  auto UnknownOf = [&](NodeId Leaf) -> uint32_t {
    const Node &N = Tree.node(Leaf);
    if (N.Element == InvalidElement || !Selector(Tree.element(N.Element)))
      return UINT32_MAX;
    auto It = ElementNodes.find(N.Element);
    return It == ElementNodes.end() ? UINT32_MAX : It->second;
  };

  for (const paths::TriContext &Ctx : Contexts) {
    NodeId Ends[3] = {Ctx.A, Ctx.B, Ctx.C};
    uint32_t Unknown = UINT32_MAX;
    int UnknownCount = 0;
    for (NodeId End : Ends) {
      uint32_t U = UnknownOf(End);
      if (U != UINT32_MAX) {
        Unknown = U;
        ++UnknownCount;
      }
    }
    if (UnknownCount != 1)
      continue;
    // Composite label of the two known ends, in source order.
    std::string Composite;
    for (NodeId End : Ends) {
      if (UnknownOf(End) != UINT32_MAX)
        continue;
      if (!Composite.empty())
        Composite += '+';
      Composite += Tree.interner().str(Tree.node(End).Value);
    }
    uint32_t Known = KnownNode(Interner.intern(Composite));
    // Order: unknown on the A side if it is the triple's first end.
    bool UnknownFirst = UnknownOf(Ctx.A) != UINT32_MAX;
    if (UnknownFirst)
      Graph.Factors.push_back({Unknown, Known, Ctx.Path, /*Unary=*/false});
    else
      Graph.Factors.push_back({Known, Unknown, Ctx.Path, /*Unary=*/false});
  }
}

//===----------------------------------------------------------------------===//
// Model
//===----------------------------------------------------------------------===//

void CrfModel::bump(uint64_t Key, double Delta) {
  Weights[Key] += Delta;
  Totals[Key] += static_cast<double>(Time) * Delta;
}

double CrfModel::weight(uint64_t Key) const {
  if (IsFrozen) {
    const uint64_t *End = FC.WeightKeys + FC.NumWeights;
    const uint64_t *It = std::lower_bound(FC.WeightKeys, End, Key);
    return (It != End && *It == Key) ? FC.WeightVals[It - FC.WeightKeys]
                                     : 0.0;
  }
  auto It = Weights.find(Key);
  return It == Weights.end() ? 0.0 : It->second;
}

bool CrfModel::pathPruned(paths::PathId Path) const {
  if (IsFrozen)
    return std::binary_search(FC.PrunedKeys, FC.PrunedKeys + FC.NumPruned,
                              static_cast<uint64_t>(Path));
  return PrunedPaths.count(Path) != 0;
}

CrfModel::CandRef CrfModel::findCandidates(uint64_t Ctx) const {
  CandRef R;
  if (IsFrozen) {
    const uint64_t *End = FC.CandKeys + FC.NumCands;
    const uint64_t *It = std::lower_bound(FC.CandKeys, End, Ctx);
    if (It == End || *It != Ctx)
      return R;
    size_t I = static_cast<size_t>(It - FC.CandKeys);
    R.Flat = FC.CandPairs + 2 * FC.CandOffsets[I];
    R.N = static_cast<size_t>(FC.CandOffsets[I + 1] - FC.CandOffsets[I]);
    return R;
  }
  auto It = Candidates.find(Ctx);
  if (It == Candidates.end())
    return R;
  R.Vec = It->second.data();
  R.N = It->second.size();
  return R;
}

void CrfModel::adoptFrozen(const FrozenCrf &View) {
  Weights.clear();
  Totals.clear();
  Candidates.clear();
  PrunedPaths.clear();
  Time = 1;
  FC = View;
  IsFrozen = true;
  // The global fallback list is rank-ordered and tiny (GlobalCandidates
  // entries); copying it keeps candidatesFor() oblivious to freezing.
  GlobalTop.clear();
  GlobalTop.reserve(View.NumGlobal);
  for (uint32_t I = 0; I < View.NumGlobal; ++I)
    GlobalTop.push_back(Symbol::fromIndex(View.GlobalTop[I]));
}

FlatCrf CrfModel::flatten() const {
  FlatCrf F;
  if (IsFrozen) {
    F.WeightKeys.assign(FC.WeightKeys, FC.WeightKeys + FC.NumWeights);
    F.WeightVals.assign(FC.WeightVals, FC.WeightVals + FC.NumWeights);
    F.CandKeys.assign(FC.CandKeys, FC.CandKeys + FC.NumCands);
    F.CandOffsets.assign(FC.CandOffsets, FC.CandOffsets + FC.NumCands + 1);
    F.CandPairs.assign(FC.CandPairs,
                       FC.CandPairs + 2 * FC.CandOffsets[FC.NumCands]);
    F.PrunedKeys.assign(FC.PrunedKeys, FC.PrunedKeys + FC.NumPruned);
    F.GlobalTop.assign(FC.GlobalTop, FC.GlobalTop + FC.NumGlobal);
    return F;
  }
  F.WeightKeys.reserve(Weights.size());
  for (const auto &[Key, W] : Weights)
    F.WeightKeys.push_back(Key);
  std::sort(F.WeightKeys.begin(), F.WeightKeys.end());
  F.WeightVals.reserve(Weights.size());
  for (uint64_t Key : F.WeightKeys)
    F.WeightVals.push_back(Weights.at(Key));

  F.CandKeys.reserve(Candidates.size());
  for (const auto &[Ctx, Labels] : Candidates)
    F.CandKeys.push_back(Ctx);
  std::sort(F.CandKeys.begin(), F.CandKeys.end());
  F.CandOffsets.reserve(Candidates.size() + 1);
  F.CandOffsets.push_back(0);
  for (uint64_t Ctx : F.CandKeys) {
    // Per-context order is preserved exactly: votes accumulate in list
    // order, so reordering here would perturb float sums downstream.
    const auto &Labels = Candidates.at(Ctx);
    for (const auto &[Label, Count] : Labels) {
      F.CandPairs.push_back(Label.index());
      F.CandPairs.push_back(Count);
    }
    F.CandOffsets.push_back(F.CandOffsets.back() + Labels.size());
  }

  F.PrunedKeys.assign(PrunedPaths.begin(), PrunedPaths.end());
  std::sort(F.PrunedKeys.begin(), F.PrunedKeys.end());
  F.GlobalTop.reserve(GlobalTop.size());
  for (Symbol S : GlobalTop)
    F.GlobalTop.push_back(S.index());
  return F;
}

std::vector<std::pair<Symbol, double>>
CrfModel::candidatesFor(const CrfGraph &Graph, uint32_t Node,
                        const std::vector<uint32_t> &Incident) const {
  // Each context votes with its empirical label distribution P(label |
  // context): informative contexts concentrate their vote, noisy
  // (e.g. long-distance) contexts spread it thinly. The resulting list is
  // vote-ordered, so the first candidate is a good empirical argmax and a
  // good inference initialisation.
  std::unordered_map<Symbol, double> Counts;
  for (uint32_t F : Incident) {
    const Factor &Fac = Graph.Factors[F];
    if (pathPruned(Fac.Path))
      continue;
    uint64_t Ctx;
    if (Fac.Unary) {
      // Unary factors (paths between occurrences of one element) carry
      // exactly the long-range signal single-statement models lack; they
      // vote for candidates through their own context table.
      Ctx = unaryKey(Fac.Path, Symbol());
    } else {
      uint32_t Other = Fac.A == Node ? Fac.B : Fac.A;
      if (!Graph.Nodes[Other].Known)
        continue;
      Ctx = contextKey(Fac.Path, Fac.A == Node, Graph.Nodes[Other].Gold);
    }
    CandRef Cand = findCandidates(Ctx);
    if (!Cand)
      continue;
    double Total = Config.VoteSmoothing;
    for (size_t I = 0; I < Cand.size(); ++I)
      Total += static_cast<double>(Cand.count(I));
    for (size_t I = 0; I < Cand.size(); ++I)
      Counts[Cand.label(I)] += static_cast<double>(Cand.count(I)) / Total;
  }
  std::vector<std::pair<Symbol, double>> Sorted(Counts.begin(),
                                                Counts.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first.index() < B.first.index();
  });
  for (Symbol S : GlobalTop)
    if (!Counts.count(S))
      Sorted.emplace_back(S, 0.0);
  return Sorted;
}

double CrfModel::scoreLabel(const CrfGraph &Graph, uint32_t Node,
                            Symbol Label,
                            const std::vector<Symbol> &Assignment,
                            const std::vector<uint32_t> &Incident) const {
  double Score = weight(biasKey(Label));
  for (uint32_t F : Incident) {
    const Factor &Fac = Graph.Factors[F];
    if (pathPruned(Fac.Path))
      continue;
    if (Fac.Unary) {
      if (Config.UnaryFactors)
        Score += weight(unaryKey(Fac.Path, Label));
      continue;
    }
    uint32_t Other = Fac.A == Node ? Fac.B : Fac.A;
    if (!Config.UnknownUnknownFactors && !Graph.Nodes[Other].Known)
      continue;
    if (Fac.A == Node)
      Score += weight(pairKey(Fac.Path, Label, Assignment[Fac.B]));
    else
      Score += weight(pairKey(Fac.Path, Assignment[Fac.A], Label));
  }
  return Score;
}

std::vector<Symbol>
CrfModel::infer(const CrfGraph &Graph,
                const std::vector<std::vector<uint32_t>> &Adj) const {
  std::vector<Symbol> Assignment(Graph.Nodes.size());
  for (uint32_t N = 0; N < Graph.Nodes.size(); ++N)
    Assignment[N] = Graph.Nodes[N].Gold;
  // Initialise unknowns with their strongest candidate (vote-ordered, so
  // this is the empirical argmax given contexts).
  std::vector<std::vector<std::pair<Symbol, double>>> Cands(
      Graph.Unknowns.size());
  for (size_t I = 0; I < Graph.Unknowns.size(); ++I) {
    uint32_t N = Graph.Unknowns[I];
    Cands[I] = candidatesFor(Graph, N, Adj[N]);
    Assignment[N] = Cands[I].empty() ? Symbol() : Cands[I].front().first;
  }
  // Iterated conditional ascent over score = vote prior + factor weights.
  for (int Pass = 0; Pass < Config.InferencePasses; ++Pass) {
    bool Changed = false;
    for (size_t I = 0; I < Graph.Unknowns.size(); ++I) {
      uint32_t N = Graph.Unknowns[I];
      if (Cands[I].empty())
        continue;
      Symbol Best;
      double BestScore = 0;
      bool First = true;
      for (const auto &[C, Vote] : Cands[I]) {
        double S = Config.VotePrior * Vote +
                   scoreLabel(Graph, N, C, Assignment, Adj[N]);
        if (First || S > BestScore) {
          BestScore = S;
          Best = C;
          First = false;
        }
      }
      if (Best != Assignment[N]) {
        Assignment[N] = Best;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return Assignment;
}

void CrfModel::train(const std::vector<CrfGraph> &Graphs) {
  telemetry::TraceScope TrainPhase("crf.train");
  auto &Reg = telemetry::MetricsRegistry::global();
  Reg.counter("crf.train.calls").inc();
  Reg.counter("crf.train.graphs").add(Graphs.size());
  // Training repopulates the mutable maps; thaw a frozen model first.
  IsFrozen = false;
  FC = FrozenCrf();

  std::optional<telemetry::TraceScope> Pass;
  Pass.emplace("candidates");
  // Pass 1: candidate tables and global label frequencies.
  std::unordered_map<uint64_t, std::unordered_map<Symbol, uint32_t>>
      RawCandidates;
  std::unordered_map<Symbol, uint64_t> LabelCounts;
  std::unordered_map<uint64_t, uint64_t> CtxToPath;
  for (const CrfGraph &G : Graphs) {
    for (uint32_t N : G.Unknowns)
      ++LabelCounts[G.Nodes[N].Gold];
    for (const Factor &F : G.Factors) {
      if (F.Unary) {
        if (!G.Nodes[F.A].Known) {
          uint64_t Ctx = unaryKey(F.Path, Symbol());
          ++RawCandidates[Ctx][G.Nodes[F.A].Gold];
          CtxToPath[Ctx] = F.Path;
        }
        continue;
      }
      bool AKnown = G.Nodes[F.A].Known;
      bool BKnown = G.Nodes[F.B].Known;
      if (AKnown == BKnown)
        continue; // Candidate proposal needs exactly one known side.
      uint32_t Unknown = AKnown ? F.B : F.A;
      uint32_t Known = AKnown ? F.A : F.B;
      uint64_t Ctx =
          contextKey(F.Path, Unknown == F.A, G.Nodes[Known].Gold);
      ++RawCandidates[Ctx][G.Nodes[Unknown].Gold];
      CtxToPath[Ctx] = F.Path;
    }
  }
  // Path purity: how concentrated the label distributions of a path's
  // contexts are. Near-uniform paths carry no naming signal (they are
  // typically long-distance cross-unit paths) and are pruned.
  PrunedPaths.clear();
  if (Config.MinPathLift > 0) {
    // The label marginal's own concentration is the baseline: a path is
    // informative only if its contexts concentrate labels beyond it.
    uint64_t MarginalMax = 0, MarginalTotal = 0;
    for (const auto &[Label, Count] : LabelCounts) {
      MarginalMax = std::max(MarginalMax, Count);
      MarginalTotal += Count;
    }
    double MarginalShare =
        MarginalTotal == 0 ? 1.0
                           : static_cast<double>(MarginalMax) /
                                 static_cast<double>(MarginalTotal);
    std::unordered_map<uint64_t, std::pair<double, double>> PathStats;
    for (const auto &[Ctx, Map] : RawCandidates) {
      uint32_t Max = 0, Total = 0;
      for (const auto &[Label, Count] : Map) {
        Max = std::max(Max, Count);
        Total += Count;
      }
      auto &[SumMax, SumTotal] = PathStats[CtxToPath.at(Ctx)];
      SumMax += Max;
      SumTotal += Total;
    }
    for (const auto &[Path, Stats] : PathStats) {
      if (Stats.second <= 0)
        continue;
      double Lift = (Stats.first / Stats.second) / MarginalShare;
      if (Lift < Config.MinPathLift)
        PrunedPaths.insert(Path);
    }
  }
  Candidates.clear();
  for (auto &[Ctx, Map] : RawCandidates) {
    std::vector<std::pair<Symbol, uint32_t>> Sorted(Map.begin(), Map.end());
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &A, const auto &B) {
                if (A.second != B.second)
                  return A.second > B.second;
                return A.first.index() < B.first.index();
              });
    if (Sorted.size() > static_cast<size_t>(Config.CandidatesPerContext))
      Sorted.resize(static_cast<size_t>(Config.CandidatesPerContext));
    Candidates.emplace(Ctx, std::move(Sorted));
  }
  {
    std::vector<std::pair<Symbol, uint64_t>> Sorted(LabelCounts.begin(),
                                                    LabelCounts.end());
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &A, const auto &B) {
                if (A.second != B.second)
                  return A.second > B.second;
                return A.first.index() < B.first.index();
              });
    GlobalTop.clear();
    for (size_t I = 0;
         I < Sorted.size() &&
         I < static_cast<size_t>(Config.GlobalCandidates);
         ++I)
      GlobalTop.push_back(Sorted[I].first);
  }

  // Pass 2: averaged structured perceptron.
  Pass.emplace("perceptron");
  telemetry::Counter &EpochsCounter = Reg.counter("crf.epochs");
  telemetry::Counter &ViolationsCounter = Reg.counter("crf.violations");
  telemetry::Counter &UpdatesCounter = Reg.counter("crf.updates");
  telemetry::Histogram &EpochSeconds =
      Reg.histogram("crf.epoch.seconds", telemetry::timeBounds());
  Weights.clear();
  Totals.clear();
  Time = 1;
  std::vector<std::vector<std::vector<uint32_t>>> Adjacencies;
  Adjacencies.reserve(Graphs.size());
  for (const CrfGraph &G : Graphs)
    Adjacencies.push_back(G.adjacency());

  for (int Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    telemetry::TraceScope EpochScope("epoch");
    uint64_t Violations = 0, Updates = 0;
    for (size_t GI = 0; GI < Graphs.size(); ++GI) {
      const CrfGraph &G = Graphs[GI];
      if (G.Unknowns.empty())
        continue;
      std::vector<Symbol> Pred = infer(G, Adjacencies[GI]);
      // Gold assignment is just the Gold labels.
      bool AnyMistake = false;
      for (uint32_t N : G.Unknowns)
        AnyMistake |= (Pred[N] != G.Nodes[N].Gold);
      if (AnyMistake) {
        ++Violations;
        for (uint32_t N : G.Unknowns) {
          if (Pred[N] == G.Nodes[N].Gold)
            continue;
          ++Updates;
          bump(biasKey(G.Nodes[N].Gold), Config.LearningRate);
          bump(biasKey(Pred[N]), -Config.LearningRate);
        }
        for (const Factor &F : G.Factors) {
          if (pathPruned(F.Path))
            continue;
          if (F.Unary) {
            if (!Config.UnaryFactors)
              continue;
            Symbol GoldL = G.Nodes[F.A].Gold;
            Symbol PredL = Pred[F.A];
            if (GoldL != PredL) {
              bump(unaryKey(F.Path, GoldL), Config.LearningRate);
              bump(unaryKey(F.Path, PredL), -Config.LearningRate);
            }
            continue;
          }
          if (!Config.UnknownUnknownFactors && !G.Nodes[F.A].Known &&
              !G.Nodes[F.B].Known)
            continue;
          Symbol GoldA = G.Nodes[F.A].Gold, GoldB = G.Nodes[F.B].Gold;
          Symbol PredA = Pred[F.A], PredB = Pred[F.B];
          if (GoldA == PredA && GoldB == PredB)
            continue;
          bump(pairKey(F.Path, GoldA, GoldB), Config.LearningRate);
          bump(pairKey(F.Path, PredA, PredB), -Config.LearningRate);
        }
      }
      ++Time;
    }
    EpochsCounter.inc();
    ViolationsCounter.add(Violations);
    UpdatesCounter.add(Updates);
    if (Config.L2Shrink > 0) {
      // Multiplicative shrinkage keeps noisy high-degree features from
      // accumulating; consistently-pushed informative weights survive.
      double Keep = 1.0 - Config.L2Shrink;
      for (auto &[Key, W] : Weights)
        W *= Keep;
      for (auto &[Key, U] : Totals)
        U *= Keep;
    }
    EpochSeconds.observe(EpochScope.seconds());
  }
  // Finalize averaging: w_avg = w - totals / T.
  for (auto &[Key, W] : Weights) {
    auto It = Totals.find(Key);
    if (It != Totals.end())
      W -= It->second / static_cast<double>(Time);
  }
  Totals.clear();
  Reg.gauge("crf.features").set(static_cast<double>(Weights.size()));
  Reg.gauge("crf.candidate_table")
      .set(static_cast<double>(Candidates.size()));
  Reg.gauge("crf.pruned_paths")
      .set(static_cast<double>(PrunedPaths.size()));
}

std::vector<Symbol> CrfModel::predict(const CrfGraph &Graph) const {
  return infer(Graph, Graph.adjacency());
}

std::vector<std::vector<Symbol>>
CrfModel::predictBatch(const std::vector<CrfGraph> &Graphs,
                       size_t Threads) const {
  telemetry::TraceScope Phase("crf.predict");
  parallel::StageTimer Stage("crf.predict");
  telemetry::MetricsRegistry::global()
      .counter("crf.predict.graphs")
      .add(Graphs.size());
  std::vector<std::vector<Symbol>> Out(Graphs.size());
  parallel::parallelFor(Graphs.size(), Threads,
                        [&](size_t I) { Out[I] = predict(Graphs[I]); });
  return Out;
}

std::vector<std::pair<Symbol, double>>
CrfModel::topK(const CrfGraph &Graph, uint32_t Node,
               const std::vector<Symbol> &Assignment, int K) const {
  auto Adj = Graph.adjacency();
  auto Cands = candidatesFor(Graph, Node, Adj[Node]);
  std::vector<std::pair<Symbol, double>> Scored;
  Scored.reserve(Cands.size());
  for (const auto &[C, Vote] : Cands)
    Scored.emplace_back(
        C, Config.VotePrior * Vote +
               scoreLabel(Graph, Node, C, Assignment, Adj[Node]));
  std::sort(Scored.begin(), Scored.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first.index() < B.first.index();
  });
  if (Scored.size() > static_cast<size_t>(K))
    Scored.resize(static_cast<size_t>(K));
  return Scored;
}

NodeExplanation CrfModel::explain(const CrfGraph &Graph, uint32_t Node,
                                  Symbol Label,
                                  const std::vector<Symbol> &Assignment,
                                  int K) const {
  NodeExplanation Ex;
  Ex.Label = Label;
  Ex.Bias = weight(biasKey(Label));

  // This label's share of one context's (smoothed) vote mass — the exact
  // per-context term candidatesFor() accumulates.
  auto VoteOf = [this, Label](uint64_t Ctx) {
    CandRef Cand = findCandidates(Ctx);
    if (!Cand)
      return 0.0;
    double Total = Config.VoteSmoothing;
    uint32_t Mine = 0;
    for (size_t I = 0; I < Cand.size(); ++I) {
      Total += static_cast<double>(Cand.count(I));
      if (Cand.label(I) == Label)
        Mine = Cand.count(I);
    }
    return static_cast<double>(Mine) / Total;
  };

  // Aggregate factor contributions by (path, unary, neighbour): a path
  // occurring twice between the same pair is one line in the report.
  std::map<std::tuple<paths::PathId, bool, uint32_t>, Attribution> Agg;
  auto Adj = Graph.adjacency();
  for (uint32_t F : Adj[Node]) {
    const Factor &Fac = Graph.Factors[F];
    if (pathPruned(Fac.Path))
      continue;
    double Weight = 0, Vote = 0;
    Symbol Neighbor;
    if (Fac.Unary) {
      if (Config.UnaryFactors)
        Weight = weight(unaryKey(Fac.Path, Label));
      Vote = VoteOf(unaryKey(Fac.Path, Symbol()));
    } else {
      uint32_t Other = Fac.A == Node ? Fac.B : Fac.A;
      bool OtherKnown = Graph.Nodes[Other].Known;
      if (Config.UnknownUnknownFactors || OtherKnown) {
        if (Fac.A == Node)
          Weight = weight(pairKey(Fac.Path, Label, Assignment[Fac.B]));
        else
          Weight = weight(pairKey(Fac.Path, Assignment[Fac.A], Label));
      }
      // Only known neighbours vote (candidatesFor skips the rest).
      if (OtherKnown)
        Vote = VoteOf(
            contextKey(Fac.Path, Fac.A == Node, Graph.Nodes[Other].Gold));
      Neighbor = Assignment[Other];
    }
    Attribution &A =
        Agg[std::make_tuple(Fac.Path, Fac.Unary, Neighbor.index())];
    A.Path = Fac.Path;
    A.Unary = Fac.Unary;
    A.Neighbor = Neighbor;
    A.Weight += Weight;
    A.Vote += Vote;
  }

  Ex.Total = Ex.Bias;
  Ex.Paths.reserve(Agg.size());
  for (auto &[Key, A] : Agg) {
    A.Score = Config.VotePrior * A.Vote + A.Weight;
    Ex.Total += A.Score;
    Ex.Paths.push_back(A);
  }
  std::sort(Ex.Paths.begin(), Ex.Paths.end(),
            [](const Attribution &A, const Attribution &B) {
              double MagA = std::abs(A.Score), MagB = std::abs(B.Score);
              if (MagA != MagB)
                return MagA > MagB;
              if (A.Path != B.Path)
                return A.Path < B.Path;
              return A.Neighbor.index() < B.Neighbor.index();
            });
  if (K > 0 && Ex.Paths.size() > static_cast<size_t>(K))
    Ex.Paths.resize(static_cast<size_t>(K));
  return Ex;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t CrfMagic = 0x43524631;   // "CRF1"
constexpr uint32_t CrfVersion = 1;

template <typename T> void writePod(std::ostream &OS, const T &Value) {
  OS.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

template <typename T> bool readPod(std::istream &IS, T &Value) {
  IS.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return static_cast<bool>(IS);
}

} // namespace

void CrfModel::save(std::ostream &OS) const {
  writePod(OS, CrfMagic);
  writePod(OS, CrfVersion);

  if (IsFrozen) {
    // A frozen model's state lives in the flat arrays; emit them in
    // their (sorted/deterministic) stored order.
    writePod(OS, FC.NumWeights);
    for (uint64_t I = 0; I < FC.NumWeights; ++I) {
      writePod(OS, FC.WeightKeys[I]);
      writePod(OS, FC.WeightVals[I]);
    }
    writePod(OS, FC.NumCands);
    for (uint64_t I = 0; I < FC.NumCands; ++I) {
      writePod(OS, FC.CandKeys[I]);
      uint32_t N =
          static_cast<uint32_t>(FC.CandOffsets[I + 1] - FC.CandOffsets[I]);
      writePod(OS, N);
      const uint32_t *Pairs = FC.CandPairs + 2 * FC.CandOffsets[I];
      for (uint32_t L = 0; L < N; ++L) {
        writePod(OS, Pairs[2 * L]);
        writePod(OS, Pairs[2 * L + 1]);
      }
    }
    writePod(OS, FC.NumPruned);
    for (uint64_t I = 0; I < FC.NumPruned; ++I)
      writePod(OS, FC.PrunedKeys[I]);
    writePod(OS, FC.NumGlobal);
    for (uint32_t I = 0; I < FC.NumGlobal; ++I)
      writePod(OS, FC.GlobalTop[I]);
    return;
  }

  writePod(OS, static_cast<uint64_t>(Weights.size()));
  for (const auto &[Key, W] : Weights) {
    writePod(OS, Key);
    writePod(OS, W);
  }

  writePod(OS, static_cast<uint64_t>(Candidates.size()));
  for (const auto &[Ctx, Labels] : Candidates) {
    writePod(OS, Ctx);
    writePod(OS, static_cast<uint32_t>(Labels.size()));
    for (const auto &[Label, Count] : Labels) {
      writePod(OS, Label.index());
      writePod(OS, Count);
    }
  }

  writePod(OS, static_cast<uint64_t>(PrunedPaths.size()));
  for (uint64_t Path : PrunedPaths)
    writePod(OS, Path);

  writePod(OS, static_cast<uint32_t>(GlobalTop.size()));
  for (Symbol S : GlobalTop)
    writePod(OS, S.index());
}

bool CrfModel::load(std::istream &IS) {
  Weights.clear();
  Totals.clear();
  Candidates.clear();
  PrunedPaths.clear();
  GlobalTop.clear();
  Time = 1;
  IsFrozen = false;
  FC = FrozenCrf();

  uint32_t Magic = 0, Version = 0;
  if (!readPod(IS, Magic) || Magic != CrfMagic)
    return false;
  if (!readPod(IS, Version) || Version != CrfVersion)
    return false;

  uint64_t NumWeights = 0;
  if (!readPod(IS, NumWeights))
    return false;
  for (uint64_t I = 0; I < NumWeights; ++I) {
    uint64_t Key;
    double W;
    if (!readPod(IS, Key) || !readPod(IS, W))
      return false;
    Weights.emplace(Key, W);
  }

  uint64_t NumContexts = 0;
  if (!readPod(IS, NumContexts))
    return false;
  for (uint64_t I = 0; I < NumContexts; ++I) {
    uint64_t Ctx;
    uint32_t NumLabels;
    if (!readPod(IS, Ctx) || !readPod(IS, NumLabels))
      return false;
    std::vector<std::pair<Symbol, uint32_t>> Labels;
    Labels.reserve(NumLabels);
    for (uint32_t L = 0; L < NumLabels; ++L) {
      uint32_t Index, Count;
      if (!readPod(IS, Index) || !readPod(IS, Count))
        return false;
      Labels.emplace_back(Symbol::fromIndex(Index), Count);
    }
    Candidates.emplace(Ctx, std::move(Labels));
  }

  uint64_t NumPruned = 0;
  if (!readPod(IS, NumPruned))
    return false;
  for (uint64_t I = 0; I < NumPruned; ++I) {
    uint64_t Path;
    if (!readPod(IS, Path))
      return false;
    PrunedPaths.insert(Path);
  }

  uint32_t NumGlobal = 0;
  if (!readPod(IS, NumGlobal))
    return false;
  for (uint32_t I = 0; I < NumGlobal; ++I) {
    uint32_t Index;
    if (!readPod(IS, Index))
      return false;
    GlobalTop.push_back(Symbol::fromIndex(Index));
  }
  return true;
}
