//===- Crf.h - Conditional random field over program elements ---*- C++ -*-===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conditional random field over program elements, used exactly as
/// Raychev et al. [40] use Nice2Predict but with AST paths as factors
/// (§3.1, §5.1). Differences from stock Nice2Predict are the paper's two
/// extensions: unary factors (paths between occurrences of the same
/// element, worth ~1.5% accuracy) and a top-k candidates API.
///
/// Nodes are program elements: *unknown* nodes carry the labels to
/// predict (merged across all their occurrences), *known* nodes carry
/// fixed labels (literals, API names, ancestor kinds of semi-paths).
/// Pairwise factors are abstract path-contexts between two elements;
/// unary factors are paths between two occurrences of one element.
///
/// Training is an averaged structured perceptron (a max-margin flavoured
/// online learner); MAP inference is iterated conditional ascent over
/// candidate labels, with candidates proposed from per-context tables
/// learned during training — the same regime Nice2Predict uses.
///
//===----------------------------------------------------------------------===//

#ifndef PIGEON_ML_CRF_CRF_H
#define PIGEON_ML_CRF_CRF_H

#include "ast/Ast.h"
#include "paths/Paths.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pigeon {
namespace crf {

/// One CRF node: a program element (unknown, label to be predicted) or a
/// fixed-context value (known).
struct GraphNode {
  /// Ground-truth label (element name / type / fixed context value).
  Symbol Gold;
  /// Known nodes keep their label during inference.
  bool Known = true;
  /// Originating program element, when the node stems from one.
  ast::ElementId Element = ast::InvalidElement;
};

/// A factor connecting one or two nodes through an abstracted AST path.
struct Factor {
  uint32_t A = 0;
  uint32_t B = 0;
  paths::PathId Path = paths::InvalidPath;
  /// Unary factors (A == B) connect two occurrences of the same element.
  bool Unary = false;
};

/// The CRF for one program.
struct CrfGraph {
  std::vector<GraphNode> Nodes;
  std::vector<Factor> Factors;
  /// Indices of unknown nodes, in deterministic order.
  std::vector<uint32_t> Unknowns;

  /// Factor indices incident to each node.
  std::vector<std::vector<uint32_t>> adjacency() const;
};

/// Selects which elements a task predicts (unknown nodes). Everything
/// else becomes known context.
using ElementSelector = std::function<bool(const ast::ElementInfo &)>;

/// Builds a CRF from a tree and its extracted path-contexts. Terminals of
/// selected elements merge into one unknown node per element; other
/// terminals merge into known nodes by value; semi-path ancestor ends
/// merge into known nodes by kind.
CrfGraph buildGraph(const ast::Tree &Tree,
                    const std::vector<paths::PathContext> &Contexts,
                    const ElementSelector &Selector);

/// Builds a single-unknown CRF for the full-type task: \p Target is the
/// expression node whose type (its tree annotation) is the label, and
/// \p Contexts are leaf-to-target paths.
CrfGraph buildTypeGraph(const ast::Tree &Tree, ast::NodeId Target,
                        const std::vector<paths::PathContext> &Contexts);

/// Appends factors for 3-wise path-contexts (§4's n-wise generalization)
/// to \p Graph. A triple with exactly one unknown end becomes a factor
/// between the unknown and a composite known node labelled by the two
/// known end values joined with "+" (interned into \p Interner); other
/// triples carry no usable signal for the pairwise CRF and are skipped.
void addTriFactors(CrfGraph &Graph, const ast::Tree &Tree,
                   const std::vector<paths::TriContext> &Contexts,
                   const ElementSelector &Selector,
                   StringInterner &Interner);

/// Training/inference configuration.
struct CrfConfig {
  int Epochs = 4;
  int InferencePasses = 3;
  /// Candidate labels retained per (path, direction, neighbour) context.
  int CandidatesPerContext = 12;
  /// Global most-frequent-label fallback candidates.
  int GlobalCandidates = 8;
  double LearningRate = 1.0;
  /// Include pairwise factors between two unknown nodes (joint
  /// inference). Ablatable; unary factors are controlled separately.
  bool UnknownUnknownFactors = true;
  /// Include unary factors (the paper's §5.1 extension). Ablatable.
  bool UnaryFactors = true;
  /// Per-epoch multiplicative L2 shrinkage (0 disables). Regularizes the
  /// perceptron so high-degree noisy features cannot accumulate.
  double L2Shrink = 0.0;
  /// Weight of the empirical candidate vote P(label | contexts) added to
  /// the factor score. Acts as a generative prior that stabilizes
  /// synonym choice; the perceptron weights learn the correction.
  double VotePrior = 1.0;
  /// Additive pseudo-count in the vote denominator: a context seen once
  /// votes 1/(1+smoothing) rather than 1.0, so rare highly-specific paths
  /// cannot cast confident arbitrary votes.
  double VoteSmoothing = 3.0;
  /// Minimum *lift* of a path: the average max-label share of its
  /// training contexts divided by the marginal max-label share. Paths
  /// whose contexts are no more concentrated than the label marginal
  /// (typically long-distance cross-unit paths) carry no naming signal
  /// and are pruned — the feature-selection analogue of the
  /// regularization a batch-trained CRF applies. 0 disables.
  double MinPathLift = 0.0;
};

/// One AST path's contribution to a label's score: the factor-weight part
/// plus the empirical-vote part, aggregated over every incident factor
/// sharing (Path, Unary, Neighbor). This is the provenance unit — the
/// per-path evidence the path-based representation makes inspectable by
/// construction.
struct Attribution {
  paths::PathId Path = paths::InvalidPath;
  /// Total contribution: VotePrior × Vote + Weight.
  double Score = 0;
  /// Learned factor-weight part (pair or unary feature weights).
  double Weight = 0;
  /// Empirical candidate-vote part, P(label | context) mass.
  double Vote = 0;
  bool Unary = false;
  /// Label at the factor's other end (invalid for unary factors).
  Symbol Neighbor;
};

/// Full decomposition of one node/label score. The invariant
/// Total == Bias + Σ Paths[i].Score == the topK() score of (Node, Label)
/// is what makes the report trustworthy (pinned by provenance_test).
struct NodeExplanation {
  Symbol Label;
  double Total = 0;
  double Bias = 0;
  /// Strongest contributions first (by |Score|, ties by Path id). When
  /// truncated to k entries, Total still reflects *all* paths.
  std::vector<Attribution> Paths;
};

/// Flat, position-independent image of a trained model's learned state:
/// sorted key arrays with parallel payloads, readable in place with
/// binary search. This is exactly the representation bundle format v3
/// lays into the file — a mapped bundle hands the section pointers to
/// CrfModel::adoptFrozen() and serves without deserializing anything.
/// All pointers reference memory the caller keeps alive for the model's
/// lifetime.
struct FrozenCrf {
  const uint64_t *WeightKeys = nullptr; ///< Feature keys, sorted ascending.
  const double *WeightVals = nullptr;   ///< WeightVals[I] pairs WeightKeys[I].
  uint64_t NumWeights = 0;
  const uint64_t *CandKeys = nullptr;    ///< Context keys, sorted ascending.
  const uint64_t *CandOffsets = nullptr; ///< NumCands+1 entry offsets into
                                         ///< CandPairs, [0] == 0.
  const uint32_t *CandPairs = nullptr;   ///< (label index, count) uint32
                                         ///< pairs, per-context order as
                                         ///< trained (vote order matters).
  uint64_t NumCands = 0;
  const uint64_t *PrunedKeys = nullptr;  ///< Pruned path ids, sorted.
  uint64_t NumPruned = 0;
  const uint32_t *GlobalTop = nullptr;   ///< Label indices, rank order.
  uint32_t NumGlobal = 0;
};

/// Owned flat image produced by CrfModel::flatten(): the same layout as
/// FrozenCrf but with owning vectors — what the v3 writer serializes.
struct FlatCrf {
  std::vector<uint64_t> WeightKeys;
  std::vector<double> WeightVals;
  std::vector<uint64_t> CandKeys;
  std::vector<uint64_t> CandOffsets;
  std::vector<uint32_t> CandPairs;
  std::vector<uint64_t> PrunedKeys;
  std::vector<uint32_t> GlobalTop;
};

/// The learned model.
class CrfModel {
public:
  explicit CrfModel(CrfConfig Config = CrfConfig()) : Config(Config) {}

  /// Trains on \p Graphs (gold labels in GraphNode::Gold).
  void train(const std::vector<CrfGraph> &Graphs);

  /// MAP assignment: one label per node (known nodes keep Gold; unknown
  /// nodes that end with no candidates get an invalid symbol).
  std::vector<Symbol> predict(const CrfGraph &Graph) const;

  /// predict() for every graph, sharded over \p Threads workers (0 = the
  /// process default). Inference per graph is independent and the model
  /// is read-only here, so result I equals predict(Graphs[I]) exactly at
  /// any thread count.
  std::vector<std::vector<Symbol>>
  predictBatch(const std::vector<CrfGraph> &Graphs,
               size_t Threads = 0) const;

  /// Top-\p K candidate labels with scores for unknown node \p Node,
  /// holding the rest of \p Assignment fixed (the paper's top-k
  /// suggestion API, §5.1).
  std::vector<std::pair<Symbol, double>>
  topK(const CrfGraph &Graph, uint32_t Node,
       const std::vector<Symbol> &Assignment, int K) const;

  /// Decomposes the score of labelling \p Node with \p Label (under
  /// \p Assignment) into per-path attributions, keeping the \p K
  /// strongest (K <= 0 keeps all). The returned Total equals the score
  /// topK() would assign to (Node, Label) exactly — same gates, same
  /// vote smoothing — so the explanation *is* the score, not an
  /// approximation of it.
  NodeExplanation explain(const CrfGraph &Graph, uint32_t Node,
                          Symbol Label,
                          const std::vector<Symbol> &Assignment,
                          int K) const;

  /// Serializes the trained model (weights, candidate tables, pruning
  /// set, global candidates) to \p OS in a versioned binary format.
  /// Feature keys are hashes over PathIds and Symbol indices, so a saved
  /// model is only meaningful together with the StringInterner and
  /// PathTable it was trained against (persist those alongside).
  void save(std::ostream &OS) const;

  /// Restores a model previously written by save(). \returns false (and
  /// leaves the model empty) on a malformed or version-mismatched stream.
  bool load(std::istream &IS);

  /// Serves the model in place from \p View (typically sections of an
  /// mmap'ed v3 bundle): drops the mutable maps and routes weight,
  /// candidate and pruning lookups through binary search over the flat
  /// arrays. Only the (tiny) global-candidate list is copied. Read APIs
  /// produce bit-identical results to the map-backed model the image was
  /// flattened from; train() or load() thaw the model back to maps.
  void adoptFrozen(const FrozenCrf &View);

  /// \returns the learned state as an owned flat image — sorted keys,
  /// per-context candidate order preserved — suitable for the v3 writer.
  /// Works on both map-backed and frozen models.
  FlatCrf flatten() const;

  /// True when the model reads from a frozen flat image (adoptFrozen).
  bool frozen() const { return IsFrozen; }

  /// Number of nonzero feature weights (model size).
  size_t numFeatures() const {
    return IsFrozen ? FC.NumWeights : Weights.size();
  }

  /// Sum of training-time candidate-table entries (diagnostics).
  size_t candidateTableSize() const {
    return IsFrozen ? FC.NumCands : Candidates.size();
  }

private:
  CrfConfig Config;
  std::unordered_map<uint64_t, double> Weights;
  std::unordered_map<uint64_t, double> Totals; // For averaging.
  uint64_t Time = 1;
  std::unordered_map<uint64_t, std::vector<std::pair<Symbol, uint32_t>>>
      Candidates;
  std::vector<Symbol> GlobalTop;
  /// Paths whose training contexts were too impure to be informative.
  std::unordered_set<uint64_t> PrunedPaths;
  /// Flat read-only state of a frozen model (adoptFrozen); the maps
  /// above stay empty while IsFrozen is set.
  FrozenCrf FC;
  bool IsFrozen = false;

  /// One context's candidate list, readable uniformly over the
  /// map-backed vector and the frozen flat pairs.
  struct CandRef {
    const std::pair<Symbol, uint32_t> *Vec = nullptr;
    const uint32_t *Flat = nullptr;
    size_t N = 0;
    explicit operator bool() const { return Vec || Flat; }
    size_t size() const { return N; }
    Symbol label(size_t I) const {
      return Vec ? Vec[I].first : Symbol::fromIndex(Flat[2 * I]);
    }
    uint32_t count(size_t I) const {
      return Vec ? Vec[I].second : Flat[2 * I + 1];
    }
  };
  /// \returns the candidate list of \p Ctx, or an empty ref on a miss.
  CandRef findCandidates(uint64_t Ctx) const;

  bool pathPruned(paths::PathId Path) const;
  double weight(uint64_t Key) const;
  void bump(uint64_t Key, double Delta);

  /// Candidate labels for one unknown node with their empirical vote
  /// masses, strongest first.
  std::vector<std::pair<Symbol, double>>
  candidatesFor(const CrfGraph &Graph, uint32_t Node,
                const std::vector<uint32_t> &Incident) const;

  /// Score of labelling \p Node with \p Label under \p Assignment.
  double scoreLabel(const CrfGraph &Graph, uint32_t Node, Symbol Label,
                    const std::vector<Symbol> &Assignment,
                    const std::vector<uint32_t> &Incident) const;

  std::vector<Symbol> infer(const CrfGraph &Graph,
                            const std::vector<std::vector<uint32_t>> &Adj)
      const;
};

//===----------------------------------------------------------------------===//
// Feature hashing
//===----------------------------------------------------------------------===//

/// Feature key for a pairwise factor (order-sensitive: A precedes B in
/// source order).
uint64_t pairKey(paths::PathId Path, Symbol LabelA, Symbol LabelB);

/// Feature key for a unary factor.
uint64_t unaryKey(paths::PathId Path, Symbol Label);

/// Candidate-table context key: the path, which side the unknown is on,
/// and the neighbour's (known) label.
uint64_t contextKey(paths::PathId Path, bool UnknownIsA, Symbol Other);

/// Per-label bias feature key. The learned bias encodes each label's
/// marginal frequency, breaking ties between role-synonyms toward the
/// modal name.
uint64_t biasKey(Symbol Label);

} // namespace crf
} // namespace pigeon

#endif // PIGEON_ML_CRF_CRF_H
