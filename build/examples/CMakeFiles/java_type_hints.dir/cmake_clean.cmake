file(REMOVE_RECURSE
  "CMakeFiles/java_type_hints.dir/java_type_hints.cpp.o"
  "CMakeFiles/java_type_hints.dir/java_type_hints.cpp.o.d"
  "java_type_hints"
  "java_type_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/java_type_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
