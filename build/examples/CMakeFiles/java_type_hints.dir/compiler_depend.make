# Empty compiler generated dependencies file for java_type_hints.
# This may be replaced when dependencies are built.
