# Empty dependencies file for method_namer.
# This may be replaced when dependencies are built.
