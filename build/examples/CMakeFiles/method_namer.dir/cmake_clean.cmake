file(REMOVE_RECURSE
  "CMakeFiles/method_namer.dir/method_namer.cpp.o"
  "CMakeFiles/method_namer.dir/method_namer.cpp.o.d"
  "method_namer"
  "method_namer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_namer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
