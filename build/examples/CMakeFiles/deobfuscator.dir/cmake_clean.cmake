file(REMOVE_RECURSE
  "CMakeFiles/deobfuscator.dir/deobfuscator.cpp.o"
  "CMakeFiles/deobfuscator.dir/deobfuscator.cpp.o.d"
  "deobfuscator"
  "deobfuscator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deobfuscator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
