# Empty compiler generated dependencies file for deobfuscator.
# This may be replaced when dependencies are built.
