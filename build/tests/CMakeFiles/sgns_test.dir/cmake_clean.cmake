file(REMOVE_RECURSE
  "CMakeFiles/sgns_test.dir/sgns_test.cpp.o"
  "CMakeFiles/sgns_test.dir/sgns_test.cpp.o.d"
  "sgns_test"
  "sgns_test.pdb"
  "sgns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
