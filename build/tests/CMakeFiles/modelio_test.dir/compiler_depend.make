# Empty compiler generated dependencies file for modelio_test.
# This may be replaced when dependencies are built.
