file(REMOVE_RECURSE
  "CMakeFiles/modelio_test.dir/modelio_test.cpp.o"
  "CMakeFiles/modelio_test.dir/modelio_test.cpp.o.d"
  "modelio_test"
  "modelio_test.pdb"
  "modelio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modelio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
