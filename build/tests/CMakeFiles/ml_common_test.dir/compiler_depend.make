# Empty compiler generated dependencies file for ml_common_test.
# This may be replaced when dependencies are built.
