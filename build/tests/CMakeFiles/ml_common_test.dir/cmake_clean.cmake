file(REMOVE_RECURSE
  "CMakeFiles/ml_common_test.dir/ml_common_test.cpp.o"
  "CMakeFiles/ml_common_test.dir/ml_common_test.cpp.o.d"
  "ml_common_test"
  "ml_common_test.pdb"
  "ml_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
