file(REMOVE_RECURSE
  "CMakeFiles/java_parser_test.dir/java_parser_test.cpp.o"
  "CMakeFiles/java_parser_test.dir/java_parser_test.cpp.o.d"
  "java_parser_test"
  "java_parser_test.pdb"
  "java_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/java_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
