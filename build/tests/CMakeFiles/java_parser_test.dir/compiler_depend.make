# Empty compiler generated dependencies file for java_parser_test.
# This may be replaced when dependencies are built.
