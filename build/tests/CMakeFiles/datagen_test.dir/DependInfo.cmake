
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datagen_test.cpp" "tests/CMakeFiles/datagen_test.dir/datagen_test.cpp.o" "gcc" "tests/CMakeFiles/datagen_test.dir/datagen_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/pigeon_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/js/CMakeFiles/pigeon_lang_js.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/java/CMakeFiles/pigeon_lang_java.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/python/CMakeFiles/pigeon_lang_python.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/csharp/CMakeFiles/pigeon_lang_csharp.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/common/CMakeFiles/pigeon_lang_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/pigeon_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pigeon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
