file(REMOVE_RECURSE
  "CMakeFiles/nwise_test.dir/nwise_test.cpp.o"
  "CMakeFiles/nwise_test.dir/nwise_test.cpp.o.d"
  "nwise_test"
  "nwise_test.pdb"
  "nwise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
