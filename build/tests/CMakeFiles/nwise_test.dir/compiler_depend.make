# Empty compiler generated dependencies file for nwise_test.
# This may be replaced when dependencies are built.
