# Empty dependencies file for py_parser_test.
# This may be replaced when dependencies are built.
