file(REMOVE_RECURSE
  "CMakeFiles/py_parser_test.dir/py_parser_test.cpp.o"
  "CMakeFiles/py_parser_test.dir/py_parser_test.cpp.o.d"
  "py_parser_test"
  "py_parser_test.pdb"
  "py_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/py_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
