file(REMOVE_RECURSE
  "CMakeFiles/cs_parser_test.dir/cs_parser_test.cpp.o"
  "CMakeFiles/cs_parser_test.dir/cs_parser_test.cpp.o.d"
  "cs_parser_test"
  "cs_parser_test.pdb"
  "cs_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
