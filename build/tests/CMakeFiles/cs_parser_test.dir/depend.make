# Empty dependencies file for cs_parser_test.
# This may be replaced when dependencies are built.
