file(REMOVE_RECURSE
  "CMakeFiles/scopestack_test.dir/scopestack_test.cpp.o"
  "CMakeFiles/scopestack_test.dir/scopestack_test.cpp.o.d"
  "scopestack_test"
  "scopestack_test.pdb"
  "scopestack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scopestack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
