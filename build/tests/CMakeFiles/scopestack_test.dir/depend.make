# Empty dependencies file for scopestack_test.
# This may be replaced when dependencies are built.
