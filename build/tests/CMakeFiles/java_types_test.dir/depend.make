# Empty dependencies file for java_types_test.
# This may be replaced when dependencies are built.
