file(REMOVE_RECURSE
  "CMakeFiles/java_types_test.dir/java_types_test.cpp.o"
  "CMakeFiles/java_types_test.dir/java_types_test.cpp.o.d"
  "java_types_test"
  "java_types_test.pdb"
  "java_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/java_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
