file(REMOVE_RECURSE
  "CMakeFiles/js_parser_test.dir/js_parser_test.cpp.o"
  "CMakeFiles/js_parser_test.dir/js_parser_test.cpp.o.d"
  "js_parser_test"
  "js_parser_test.pdb"
  "js_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
