# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/js_parser_test[1]_include.cmake")
include("/root/repo/build/tests/java_parser_test[1]_include.cmake")
include("/root/repo/build/tests/java_types_test[1]_include.cmake")
include("/root/repo/build/tests/py_parser_test[1]_include.cmake")
include("/root/repo/build/tests/cs_parser_test[1]_include.cmake")
include("/root/repo/build/tests/paths_test[1]_include.cmake")
include("/root/repo/build/tests/ml_common_test[1]_include.cmake")
include("/root/repo/build/tests/crf_test[1]_include.cmake")
include("/root/repo/build/tests/sgns_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/modelio_test[1]_include.cmake")
include("/root/repo/build/tests/nwise_test[1]_include.cmake")
include("/root/repo/build/tests/scopestack_test[1]_include.cmake")
