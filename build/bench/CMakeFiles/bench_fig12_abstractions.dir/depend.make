# Empty dependencies file for bench_fig12_abstractions.
# This may be replaced when dependencies are built.
