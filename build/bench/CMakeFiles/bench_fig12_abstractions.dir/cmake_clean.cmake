file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_abstractions.dir/bench_fig12_abstractions.cpp.o"
  "CMakeFiles/bench_fig12_abstractions.dir/bench_fig12_abstractions.cpp.o.d"
  "bench_fig12_abstractions"
  "bench_fig12_abstractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_abstractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
