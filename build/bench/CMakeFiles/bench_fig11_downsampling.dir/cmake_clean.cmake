file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_downsampling.dir/bench_fig11_downsampling.cpp.o"
  "CMakeFiles/bench_fig11_downsampling.dir/bench_fig11_downsampling.cpp.o.d"
  "bench_fig11_downsampling"
  "bench_fig11_downsampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_downsampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
