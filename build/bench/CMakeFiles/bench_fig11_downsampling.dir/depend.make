# Empty dependencies file for bench_fig11_downsampling.
# This may be replaced when dependencies are built.
