# Empty dependencies file for bench_fig10_length_width.
# This may be replaced when dependencies are built.
