file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_varnames.dir/bench_table2_varnames.cpp.o"
  "CMakeFiles/bench_table2_varnames.dir/bench_table2_varnames.cpp.o.d"
  "bench_table2_varnames"
  "bench_table2_varnames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_varnames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
