# Empty compiler generated dependencies file for bench_table3_word2vec.
# This may be replaced when dependencies are built.
