file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_word2vec.dir/bench_table3_word2vec.cpp.o"
  "CMakeFiles/bench_table3_word2vec.dir/bench_table3_word2vec.cpp.o.d"
  "bench_table3_word2vec"
  "bench_table3_word2vec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_word2vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
