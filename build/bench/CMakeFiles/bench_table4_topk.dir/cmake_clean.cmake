file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_topk.dir/bench_table4_topk.cpp.o"
  "CMakeFiles/bench_table4_topk.dir/bench_table4_topk.cpp.o.d"
  "bench_table4_topk"
  "bench_table4_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
