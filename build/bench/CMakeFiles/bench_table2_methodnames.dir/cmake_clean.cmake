file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_methodnames.dir/bench_table2_methodnames.cpp.o"
  "CMakeFiles/bench_table2_methodnames.dir/bench_table2_methodnames.cpp.o.d"
  "bench_table2_methodnames"
  "bench_table2_methodnames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_methodnames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
