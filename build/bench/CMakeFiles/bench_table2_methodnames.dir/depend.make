# Empty dependencies file for bench_table2_methodnames.
# This may be replaced when dependencies are built.
