file(REMOVE_RECURSE
  "libpigeon_w2v.a"
)
