# Empty compiler generated dependencies file for pigeon_w2v.
# This may be replaced when dependencies are built.
