file(REMOVE_RECURSE
  "CMakeFiles/pigeon_w2v.dir/Sgns.cpp.o"
  "CMakeFiles/pigeon_w2v.dir/Sgns.cpp.o.d"
  "libpigeon_w2v.a"
  "libpigeon_w2v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_w2v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
