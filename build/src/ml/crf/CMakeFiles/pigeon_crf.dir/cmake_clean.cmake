file(REMOVE_RECURSE
  "CMakeFiles/pigeon_crf.dir/Crf.cpp.o"
  "CMakeFiles/pigeon_crf.dir/Crf.cpp.o.d"
  "libpigeon_crf.a"
  "libpigeon_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
