# Empty compiler generated dependencies file for pigeon_crf.
# This may be replaced when dependencies are built.
