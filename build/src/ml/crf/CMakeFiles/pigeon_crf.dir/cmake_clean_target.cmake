file(REMOVE_RECURSE
  "libpigeon_crf.a"
)
