file(REMOVE_RECURSE
  "CMakeFiles/pigeon_lang_csharp.dir/CsParser.cpp.o"
  "CMakeFiles/pigeon_lang_csharp.dir/CsParser.cpp.o.d"
  "libpigeon_lang_csharp.a"
  "libpigeon_lang_csharp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_lang_csharp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
