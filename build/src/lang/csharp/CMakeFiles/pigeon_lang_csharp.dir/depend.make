# Empty dependencies file for pigeon_lang_csharp.
# This may be replaced when dependencies are built.
