file(REMOVE_RECURSE
  "libpigeon_lang_csharp.a"
)
