file(REMOVE_RECURSE
  "libpigeon_lang_js.a"
)
