file(REMOVE_RECURSE
  "CMakeFiles/pigeon_lang_js.dir/JsParser.cpp.o"
  "CMakeFiles/pigeon_lang_js.dir/JsParser.cpp.o.d"
  "libpigeon_lang_js.a"
  "libpigeon_lang_js.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_lang_js.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
