# Empty dependencies file for pigeon_lang_js.
# This may be replaced when dependencies are built.
