# Empty dependencies file for pigeon_lang_java.
# This may be replaced when dependencies are built.
