file(REMOVE_RECURSE
  "CMakeFiles/pigeon_lang_java.dir/ClassPath.cpp.o"
  "CMakeFiles/pigeon_lang_java.dir/ClassPath.cpp.o.d"
  "CMakeFiles/pigeon_lang_java.dir/JavaParser.cpp.o"
  "CMakeFiles/pigeon_lang_java.dir/JavaParser.cpp.o.d"
  "CMakeFiles/pigeon_lang_java.dir/TypeChecker.cpp.o"
  "CMakeFiles/pigeon_lang_java.dir/TypeChecker.cpp.o.d"
  "libpigeon_lang_java.a"
  "libpigeon_lang_java.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_lang_java.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
