file(REMOVE_RECURSE
  "libpigeon_lang_java.a"
)
