file(REMOVE_RECURSE
  "libpigeon_lang_common.a"
)
