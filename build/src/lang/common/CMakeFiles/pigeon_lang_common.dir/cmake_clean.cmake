file(REMOVE_RECURSE
  "CMakeFiles/pigeon_lang_common.dir/Lexer.cpp.o"
  "CMakeFiles/pigeon_lang_common.dir/Lexer.cpp.o.d"
  "libpigeon_lang_common.a"
  "libpigeon_lang_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_lang_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
