# Empty compiler generated dependencies file for pigeon_lang_common.
# This may be replaced when dependencies are built.
