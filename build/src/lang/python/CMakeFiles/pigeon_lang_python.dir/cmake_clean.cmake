file(REMOVE_RECURSE
  "CMakeFiles/pigeon_lang_python.dir/PyParser.cpp.o"
  "CMakeFiles/pigeon_lang_python.dir/PyParser.cpp.o.d"
  "libpigeon_lang_python.a"
  "libpigeon_lang_python.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_lang_python.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
