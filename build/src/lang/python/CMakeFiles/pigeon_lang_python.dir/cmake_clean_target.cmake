file(REMOVE_RECURSE
  "libpigeon_lang_python.a"
)
