# Empty compiler generated dependencies file for pigeon_lang_python.
# This may be replaced when dependencies are built.
