
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Experiments.cpp" "src/core/CMakeFiles/pigeon_core.dir/Experiments.cpp.o" "gcc" "src/core/CMakeFiles/pigeon_core.dir/Experiments.cpp.o.d"
  "/root/repo/src/core/ModelIO.cpp" "src/core/CMakeFiles/pigeon_core.dir/ModelIO.cpp.o" "gcc" "src/core/CMakeFiles/pigeon_core.dir/ModelIO.cpp.o.d"
  "/root/repo/src/core/Pipeline.cpp" "src/core/CMakeFiles/pigeon_core.dir/Pipeline.cpp.o" "gcc" "src/core/CMakeFiles/pigeon_core.dir/Pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/pigeon_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pigeon_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/crf/CMakeFiles/pigeon_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/word2vec/CMakeFiles/pigeon_w2v.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/pigeon_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/js/CMakeFiles/pigeon_lang_js.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/java/CMakeFiles/pigeon_lang_java.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/python/CMakeFiles/pigeon_lang_python.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/csharp/CMakeFiles/pigeon_lang_csharp.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/common/CMakeFiles/pigeon_lang_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/pigeon_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pigeon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
