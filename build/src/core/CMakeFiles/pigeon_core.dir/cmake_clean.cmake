file(REMOVE_RECURSE
  "CMakeFiles/pigeon_core.dir/Experiments.cpp.o"
  "CMakeFiles/pigeon_core.dir/Experiments.cpp.o.d"
  "CMakeFiles/pigeon_core.dir/ModelIO.cpp.o"
  "CMakeFiles/pigeon_core.dir/ModelIO.cpp.o.d"
  "CMakeFiles/pigeon_core.dir/Pipeline.cpp.o"
  "CMakeFiles/pigeon_core.dir/Pipeline.cpp.o.d"
  "libpigeon_core.a"
  "libpigeon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
