file(REMOVE_RECURSE
  "libpigeon_core.a"
)
