# Empty compiler generated dependencies file for pigeon_core.
# This may be replaced when dependencies are built.
