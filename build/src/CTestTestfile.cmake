# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ast")
subdirs("lang/common")
subdirs("lang/js")
subdirs("lang/java")
subdirs("lang/python")
subdirs("lang/csharp")
subdirs("paths")
subdirs("ml/common")
subdirs("ml/crf")
subdirs("ml/word2vec")
subdirs("baselines")
subdirs("datagen")
subdirs("core")
