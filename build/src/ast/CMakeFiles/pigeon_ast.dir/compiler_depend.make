# Empty compiler generated dependencies file for pigeon_ast.
# This may be replaced when dependencies are built.
