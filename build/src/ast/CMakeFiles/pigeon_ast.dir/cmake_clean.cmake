file(REMOVE_RECURSE
  "CMakeFiles/pigeon_ast.dir/Ast.cpp.o"
  "CMakeFiles/pigeon_ast.dir/Ast.cpp.o.d"
  "libpigeon_ast.a"
  "libpigeon_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
