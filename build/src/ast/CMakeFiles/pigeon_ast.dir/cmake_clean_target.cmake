file(REMOVE_RECURSE
  "libpigeon_ast.a"
)
