# Empty compiler generated dependencies file for pigeon_support.
# This may be replaced when dependencies are built.
