file(REMOVE_RECURSE
  "CMakeFiles/pigeon_support.dir/SubToken.cpp.o"
  "CMakeFiles/pigeon_support.dir/SubToken.cpp.o.d"
  "CMakeFiles/pigeon_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/pigeon_support.dir/TablePrinter.cpp.o.d"
  "libpigeon_support.a"
  "libpigeon_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
