file(REMOVE_RECURSE
  "libpigeon_support.a"
)
