file(REMOVE_RECURSE
  "libpigeon_paths.a"
)
