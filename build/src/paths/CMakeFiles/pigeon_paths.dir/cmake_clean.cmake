file(REMOVE_RECURSE
  "CMakeFiles/pigeon_paths.dir/Paths.cpp.o"
  "CMakeFiles/pigeon_paths.dir/Paths.cpp.o.d"
  "libpigeon_paths.a"
  "libpigeon_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
