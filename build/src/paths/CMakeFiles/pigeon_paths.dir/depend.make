# Empty dependencies file for pigeon_paths.
# This may be replaced when dependencies are built.
