file(REMOVE_RECURSE
  "libpigeon_baselines.a"
)
