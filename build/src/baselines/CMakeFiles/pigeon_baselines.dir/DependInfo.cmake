
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/Baselines.cpp" "src/baselines/CMakeFiles/pigeon_baselines.dir/Baselines.cpp.o" "gcc" "src/baselines/CMakeFiles/pigeon_baselines.dir/Baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/paths/CMakeFiles/pigeon_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/pigeon_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pigeon_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/common/CMakeFiles/pigeon_lang_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
