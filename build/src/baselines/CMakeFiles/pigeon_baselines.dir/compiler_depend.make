# Empty compiler generated dependencies file for pigeon_baselines.
# This may be replaced when dependencies are built.
