file(REMOVE_RECURSE
  "CMakeFiles/pigeon_baselines.dir/Baselines.cpp.o"
  "CMakeFiles/pigeon_baselines.dir/Baselines.cpp.o.d"
  "libpigeon_baselines.a"
  "libpigeon_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
