# Empty compiler generated dependencies file for pigeon_datagen.
# This may be replaced when dependencies are built.
