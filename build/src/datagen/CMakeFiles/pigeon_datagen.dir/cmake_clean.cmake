file(REMOVE_RECURSE
  "CMakeFiles/pigeon_datagen.dir/Generate.cpp.o"
  "CMakeFiles/pigeon_datagen.dir/Generate.cpp.o.d"
  "CMakeFiles/pigeon_datagen.dir/Names.cpp.o"
  "CMakeFiles/pigeon_datagen.dir/Names.cpp.o.d"
  "CMakeFiles/pigeon_datagen.dir/Render.cpp.o"
  "CMakeFiles/pigeon_datagen.dir/Render.cpp.o.d"
  "libpigeon_datagen.a"
  "libpigeon_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
