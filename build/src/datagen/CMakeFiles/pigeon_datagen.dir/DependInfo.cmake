
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/Generate.cpp" "src/datagen/CMakeFiles/pigeon_datagen.dir/Generate.cpp.o" "gcc" "src/datagen/CMakeFiles/pigeon_datagen.dir/Generate.cpp.o.d"
  "/root/repo/src/datagen/Names.cpp" "src/datagen/CMakeFiles/pigeon_datagen.dir/Names.cpp.o" "gcc" "src/datagen/CMakeFiles/pigeon_datagen.dir/Names.cpp.o.d"
  "/root/repo/src/datagen/Render.cpp" "src/datagen/CMakeFiles/pigeon_datagen.dir/Render.cpp.o" "gcc" "src/datagen/CMakeFiles/pigeon_datagen.dir/Render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/common/CMakeFiles/pigeon_lang_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/java/CMakeFiles/pigeon_lang_java.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pigeon_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/pigeon_ast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
