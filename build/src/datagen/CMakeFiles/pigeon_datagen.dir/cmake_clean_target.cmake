file(REMOVE_RECURSE
  "libpigeon_datagen.a"
)
