file(REMOVE_RECURSE
  "CMakeFiles/pigeon.dir/pigeon.cpp.o"
  "CMakeFiles/pigeon.dir/pigeon.cpp.o.d"
  "pigeon"
  "pigeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
