# Empty dependencies file for pigeon.
# This may be replaced when dependencies are built.
