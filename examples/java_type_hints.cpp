//===- java_type_hints.cpp - Statistical type hints for Java snippets -------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The paper motivates full-type prediction with code snippets (e.g. from
/// StackOverflow) where global type inference is impossible (§1, §5.3.3).
/// This example trains the full-type CRF on a Java corpus and then plays
/// "type oracle" for a held-out file: for every API-shaped expression it
/// prints the predicted fully-qualified type next to the checker's ground
/// truth.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using namespace pigeon::crf;
using namespace pigeon::paths;
using pigeon::lang::Language;

namespace {

bool isApiTarget(const StringInterner &SI, const Tree &T, NodeId Id) {
  std::string_view K = SI.str(T.node(Id).Kind);
  return K == "MethodCallExpr" || K == "FieldAccessExpr" ||
         K == "ObjectCreationExpr" || K == "CastExpr" ||
         K == "ArrayCreationExpr";
}

} // namespace

int main() {
  datagen::CorpusSpec Spec = datagen::defaultSpec(Language::Java, 2018);
  Spec.NumProjects = 48;
  Corpus C = parseCorpus(datagen::generateCorpus(Spec), Language::Java);
  Split S = splitByProject(C, 0.25, 2018);

  ExtractionConfig Extraction = tunedExtraction(Language::Java,
                                                Task::FullTypes);
  PathTable Table;
  std::vector<CrfGraph> TrainGraphs;
  for (size_t I : S.Train) {
    const Tree &T = C.Files[I].Tree;
    for (NodeId Target : T.typedNodes()) {
      if (!isApiTarget(*C.Interner, T, Target))
        continue;
      TrainGraphs.push_back(buildTypeGraph(
          T, Target, extractPathsToNode(T, Target, Extraction, Table)));
    }
  }
  CrfModel Model;
  Model.train(TrainGraphs);
  std::cout << "trained the full-type CRF on " << TrainGraphs.size()
            << " expressions (" << Model.numFeatures() << " features)\n\n";

  // Type-annotate held-out files, as if they were snippets pasted from
  // the web. Print the first dozen API expressions across test files.
  TablePrinter Out("type hints for held-out expressions");
  Out.setHeader({"File", "Expression", "Predicted type", "Oracle type",
                 ""});
  int Shown = 0;
  for (size_t I : S.Test) {
    if (Shown >= 14)
      break;
    const ParsedFile &File = C.Files[I];
    for (NodeId Target : File.Tree.typedNodes()) {
      if (!isApiTarget(*C.Interner, File.Tree, Target))
        continue;
      CrfGraph G = buildTypeGraph(
          File.Tree, Target,
          extractPathsToNode(File.Tree, Target, Extraction, Table));
      std::vector<Symbol> Pred = Model.predict(G);
      std::string Predicted(Pred[G.Unknowns[0]].isValid()
                                ? C.Interner->str(Pred[G.Unknowns[0]])
                                : std::string_view("<unknown>"));
      std::string Oracle(C.Interner->str(File.Tree.typeOf(Target)));
      Out.addRow({File.FileName,
                  std::string(C.Interner->str(File.Tree.node(Target).Kind)),
                  Predicted, Oracle, Predicted == Oracle ? "ok" : "MISS"});
      if (++Shown >= 14)
        break;
    }
  }
  Out.print(std::cout);
  return 0;
}
