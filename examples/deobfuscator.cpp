//===- deobfuscator.cpp - Recovering stripped names (Figs. 7-9) -------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The paper's headline application (Figs. 7, 8, 9): given a program with
/// stripped (minified/obfuscated) variable names, recover meaningful
/// names. This example trains a CRF name model per language, strips the
/// names of held-out programs, predicts replacements, and prints the
/// stripped and recovered sources side by side — one JavaScript, one Java
/// and one Python listing, like the paper's figures.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include "lang/java/JavaParser.h"
#include "lang/js/JsParser.h"
#include "lang/python/PyParser.h"

#include <cctype>
#include <iostream>
#include <map>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using pigeon::lang::Language;

namespace {

lang::ParseResult parseAs(Language Lang, const std::string &Text,
                          StringInterner &SI) {
  switch (Lang) {
  case Language::JavaScript:
    return js::parse(Text, SI);
  case Language::Java:
    return java::parse(Text, SI);
  case Language::Python:
    return py::parse(Text, SI);
  case Language::CSharp:
    break;
  }
  return {};
}

/// Replaces whole-word occurrences of single-letter placeholders with
/// their predicted names.
std::string recover(const std::string &Stripped,
                    const std::map<std::string, std::string> &Renames) {
  std::string Out;
  size_t I = 0;
  auto IsWord = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  };
  while (I < Stripped.size()) {
    if (IsWord(Stripped[I])) {
      size_t J = I;
      while (J < Stripped.size() && IsWord(Stripped[J]))
        ++J;
      std::string Word = Stripped.substr(I, J - I);
      auto It = Renames.find(Word);
      Out += It == Renames.end() ? Word : It->second;
      I = J;
      continue;
    }
    Out += Stripped[I++];
  }
  return Out;
}

void demo(Language Lang) {
  datagen::CorpusSpec Spec = datagen::defaultSpec(Lang, /*Seed=*/2018);
  Spec.NumProjects = 32;
  auto Sources = datagen::generateCorpus(Spec);
  Corpus C = parseCorpus(Sources, Lang);

  TrainedNameModel Model(C, Task::VariableNames,
                         [&] {
                           CrfExperimentOptions Options;
                           Options.Extraction = tunedExtraction(
                               Lang, Task::VariableNames);
                           return Options;
                         }());

  // Strip a file the model has never seen (fresh project seed).
  datagen::CorpusSpec Fresh = datagen::defaultSpec(Lang, /*Seed=*/777);
  Fresh.NumProjects = 1;
  Fresh.FilesPerProject = 3;
  auto FreshSources = datagen::generateCorpus(Fresh);
  const datagen::SourceFile &Sample = FreshSources.front();
  std::string Stripped =
      datagen::render(Sample.Sketch, Lang, /*StripNames=*/true);

  lang::ParseResult R = parseAs(Lang, Stripped, *C.Interner);
  if (!R.Tree) {
    std::cerr << "stripped sample failed to parse\n";
    return;
  }
  auto Predictions = Model.predict(*R.Tree);
  std::map<std::string, std::string> Renames;
  for (const auto &[E, Name] : Predictions) {
    if (!Name.isValid())
      continue;
    Renames[std::string(C.Interner->str(R.Tree->element(E).Name))] =
        std::string(C.Interner->str(Name));
  }

  std::cout << "== " << lang::languageName(Lang)
            << ": stripped names ==\n"
            << Stripped << "\n== " << lang::languageName(Lang)
            << ": AST paths + CRFs ==\n"
            << recover(Stripped, Renames) << "\n== original names ==\n"
            << Sample.Text << "\n";
}

} // namespace

int main() {
  // One listing per language, mirroring Figs. 8 (JS), 9 (Java), 7 (Py).
  demo(Language::JavaScript);
  demo(Language::Java);
  demo(Language::Python);
  return 0;
}
