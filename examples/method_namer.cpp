//===- method_namer.cpp - Suggesting method names (§5.3.2) ------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The paper's method-name task as an IDE-style assistant: train the
/// method-name CRF on a Python corpus, then for held-out functions print
/// the top-3 name suggestions next to the author's actual name — the
/// "top-k candidates" extension of §5.1 in action.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "support/SubToken.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::core;
using pigeon::lang::Language;

int main() {
  datagen::CorpusSpec Spec = datagen::defaultSpec(Language::Python, 2018);
  Spec.NumProjects = 40;
  Corpus C = parseCorpus(datagen::generateCorpus(Spec), Language::Python);
  Split S = splitByProject(C, 0.25, 2018);

  // Train on the training projects only.
  Corpus TrainOnly;
  TrainOnly.Lang = C.Lang;
  TrainOnly.Interner = std::move(C.Interner);
  for (size_t I : S.Train)
    TrainOnly.Files.push_back(std::move(C.Files[I]));

  CrfExperimentOptions Options;
  Options.Extraction = tunedExtraction(Language::Python, Task::MethodNames);
  TrainedNameModel Model(TrainOnly, Task::MethodNames, Options);

  std::cout << "method-name suggestions for held-out functions "
               "(Python):\n\n";
  TablePrinter Out("");
  Out.setHeader({"Actual name", "Top-3 suggestions", ""});
  int Shown = 0;
  for (size_t I : S.Test) {
    if (Shown >= 12)
      break;
    const Tree &T = C.Files[I].Tree;
    for (ElementId E = 0; E < T.elements().size(); ++E) {
      const ElementInfo &Info = T.element(E);
      if (!Info.Predictable || Info.Kind != ElementKind::Method ||
          T.occurrences(E).empty())
        continue;
      auto Top = Model.topKFor(T, E, 3);
      std::string Suggestions;
      for (const auto &[Name, Score] : Top) {
        if (!Suggestions.empty())
          Suggestions += ", ";
        Suggestions += TrainOnly.Interner->str(Name);
      }
      std::string Actual(TrainOnly.Interner->str(Info.Name));
      bool Hit = !Top.empty() &&
                 namesMatch(TrainOnly.Interner->str(Top[0].first), Actual);
      Out.addRow({Actual, Suggestions, Hit ? "ok" : ""});
      ++Shown;
      break; // One method per file is enough for the demo.
    }
  }
  Out.print(std::cout);
  std::cout << "\n(The paper's §5.1 top-k extension: when the top "
               "candidates capture similar notions, the prediction is "
               "stable.)\n";
  return 0;
}
