//===- quickstart.cpp - PIGEON in five minutes ------------------------------===//
//
// Part of the PIGEON project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The smallest useful tour of the public API, following the paper's own
/// figures:
///   1. parse the Fig. 1a JavaScript snippet into the generic AST;
///   2. extract AST path-contexts (Fig. 2), printing the two paths the
///      paper walks through (p1 between the two `d`s, p4 from `d` to
///      `true`);
///   3. show the Fig. 4 statement and its path;
///   4. show the Fig. 5 width example;
///   5. apply the §5.6 abstraction ladder to one path.
///
//===----------------------------------------------------------------------===//

#include "lang/js/JsParser.h"
#include "paths/Paths.h"

#include <iostream>

using namespace pigeon;
using namespace pigeon::ast;
using namespace pigeon::paths;

int main() {
  StringInterner Interner;

  // 1. Parse the paper's Fig. 1a program.
  const char *Fig1a = "while (!d) {\n"
                      "  if (someCondition()) {\n"
                      "    d = true;\n"
                      "  }\n"
                      "}\n";
  std::cout << "== Fig. 1a ==\n" << Fig1a << "\n";
  lang::ParseResult R = js::parse(Fig1a, Interner);
  if (!R.Tree || !R.Diags.empty()) {
    std::cerr << "parse failed\n";
    return 1;
  }
  const Tree &T = *R.Tree;
  std::cout << "AST:\n" << T.dump() << "\n";

  // 2. Extract path-contexts and print the paper's p1 and p4.
  PathTable Table;
  ExtractionConfig Config;
  Config.MaxLength = 12; // Generous, to show the long path of Fig. 1b.
  Config.MaxWidth = 4;
  auto Contexts = extractPathContexts(T, Config, Table);
  std::cout << "extracted " << Contexts.size()
            << " path-contexts (length<=12, width<=4)\n\n";

  auto ValueOf = [&](NodeId Id) { return Interner.str(endValue(T, Id)); };
  std::cout << "path-contexts between occurrences of `d` and to `true` "
               "(the paper's p1 and p4):\n";
  for (const PathContext &Ctx : Contexts) {
    if (Ctx.Semi)
      continue;
    std::string Start(ValueOf(Ctx.Start)), End(ValueOf(Ctx.End));
    bool IsP1 = Start == "d" && End == "d";
    bool IsP4 = Start == "d" && End == "true";
    if (IsP1 || IsP4)
      std::cout << "  <" << Start << ", " << Table.render(Ctx.Path, Interner)
                << ", "
                << End << ">\n";
  }

  // 3. Fig. 4: var item = array[i];
  std::cout << "\n== Fig. 4: var item = array[i]; ==\n";
  lang::ParseResult R4 = js::parse("var item = array[i];", Interner);
  const Tree &T4 = *R4.Tree;
  NodeId Item = T4.terminals()[0], Array = T4.terminals()[1];
  std::cout << "  <item, " << pathString(T4, Item, Array, Abstraction::Full)
            << ", array>\n";

  // 4. Fig. 5: var a, b, c, d; — length 4, width 3 between a and d.
  std::cout << "\n== Fig. 5: var a, b, c, d; ==\n";
  lang::ParseResult R5 = js::parse("var a, b, c, d;", Interner);
  const Tree &T5 = *R5.Tree;
  NodeId A = T5.terminals().front(), D = T5.terminals().back();
  PathShape Shape = pathShape(T5, A, D);
  std::cout << "  path a→d: " << pathString(T5, A, D, Abstraction::Full)
            << "\n  length = " << Shape.Length
            << ", width = " << Shape.Width << " (the paper reports 4/3)\n";

  // 5. The §5.6 abstraction ladder applied to p1.
  std::cout << "\n== Abstractions of the a→d path (§5.6) ==\n";
  for (Abstraction Abst : AllAbstractions)
    std::cout << "  " << abstractionName(Abst) << ": "
              << pathString(T5, A, D, Abst) << "\n";

  // 6. §4's n-wise generalization: a 3-wise path joining three leaves.
  std::cout << "\n== A 3-wise path (the n-wise family, §4) ==\n";
  lang::ParseResult R6 = js::parse("x = a + b;", Interner);
  const Tree &T6 = *R6.Tree;
  auto L6 = T6.terminals();
  std::cout << "  <x, a, b> joined by "
            << triPathString(T6, L6[0], L6[1], L6[2], Abstraction::Full)
            << "\n";

  return 0;
}
